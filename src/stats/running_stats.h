#pragma once
// Streaming summary statistics (Welford's algorithm).

#include <cstddef>

namespace hcs::stats {

/// Accumulates count / mean / variance / min / max in one pass.
/// Numerically stable (Welford); suitable for the long per-trial streams the
/// experiment framework aggregates.
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return n_ > 0 ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator). Zero for fewer than two samples.
  double variance() const;
  double stddev() const;
  /// Standard error of the mean. Zero for fewer than two samples.
  double stderrMean() const;
  double min() const { return min_; }
  double max() const { return max_; }

  /// Merges another accumulator into this one (parallel reduction).
  void merge(const RunningStats& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace hcs::stats
