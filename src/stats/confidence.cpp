#include "stats/confidence.h"

#include <array>
#include <cmath>
#include <stdexcept>

namespace hcs::stats {

namespace {

// Two-sided 95% Student-t critical values for df = 1..30.
constexpr std::array<double, 30> kT95 = {
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
    2.201,  2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
    2.080,  2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042};

// Two-sided 99% values for df = 1..30.
constexpr std::array<double, 30> kT99 = {
    63.657, 9.925, 5.841, 4.604, 4.032, 3.707, 3.499, 3.355, 3.250, 3.169,
    3.106,  3.055, 3.012, 2.977, 2.947, 2.921, 2.898, 2.878, 2.861, 2.845,
    2.831,  2.819, 2.807, 2.797, 2.787, 2.779, 2.771, 2.763, 2.756, 2.750};

// Two-sided 90% values for df = 1..30.
constexpr std::array<double, 30> kT90 = {
    6.314, 2.920, 2.353, 2.132, 2.015, 1.943, 1.895, 1.860, 1.833, 1.812,
    1.796, 1.782, 1.771, 1.761, 1.753, 1.746, 1.740, 1.734, 1.729, 1.725,
    1.721, 1.717, 1.714, 1.711, 1.708, 1.706, 1.703, 1.701, 1.699, 1.697};

// Inverse standard-normal CDF (Acklam's rational approximation).
double normalQuantile(double p) {
  if (p <= 0.0 || p >= 1.0) {
    throw std::invalid_argument("normalQuantile: p outside (0,1)");
  }
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  const double pl = 0.02425;
  double q, r;
  if (p < pl) {
    q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p <= 1.0 - pl) {
    q = p - 0.5;
    r = q * q;
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
            a[5]) *
           q /
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  }
  q = std::sqrt(-2.0 * std::log(1.0 - p));
  return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
           c[5]) /
         ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
}

}  // namespace

double tCritical(double confidence, std::size_t degreesOfFreedom) {
  if (confidence <= 0.0 || confidence >= 1.0) {
    throw std::invalid_argument("tCritical: confidence outside (0,1)");
  }
  if (degreesOfFreedom == 0) {
    throw std::invalid_argument("tCritical: zero degrees of freedom");
  }
  const std::array<double, 30>* table = nullptr;
  if (std::abs(confidence - 0.95) < 1e-9) table = &kT95;
  if (std::abs(confidence - 0.99) < 1e-9) table = &kT99;
  if (std::abs(confidence - 0.90) < 1e-9) table = &kT90;
  if (table != nullptr && degreesOfFreedom <= table->size()) {
    return (*table)[degreesOfFreedom - 1];
  }
  // Normal quantile with a first-order df correction: t ≈ z + (z + z^3) / 4df.
  const double z = normalQuantile(0.5 + confidence / 2.0);
  const double df = static_cast<double>(degreesOfFreedom);
  return z + (z + z * z * z) / (4.0 * df);
}

ConfidenceInterval meanConfidenceInterval(const RunningStats& stats,
                                          double confidence) {
  ConfidenceInterval ci;
  ci.mean = stats.mean();
  if (stats.count() >= 2) {
    ci.halfWidth = tCritical(confidence, stats.count() - 1) * stats.stderrMean();
  }
  return ci;
}

}  // namespace hcs::stats
