#pragma once
// Confidence intervals for trial means.
//
// The paper reports "the mean and 95% confidence interval" over 30 workload
// trials (§V-A); this header supplies the Student-t machinery the experiment
// framework uses to do the same.

#include <cstddef>

#include "stats/running_stats.h"

namespace hcs::stats {

/// Two-sided Student-t critical value for the given confidence level
/// (e.g. 0.95) and degrees of freedom.  Exact table for small df, normal
/// approximation with Cornish-Fisher-style correction beyond.
double tCritical(double confidence, std::size_t degreesOfFreedom);

/// A symmetric confidence interval around a sample mean.
struct ConfidenceInterval {
  double mean = 0.0;
  double halfWidth = 0.0;

  double lower() const { return mean - halfWidth; }
  double upper() const { return mean + halfWidth; }
  bool contains(double x) const { return x >= lower() && x <= upper(); }
};

/// 95%-by-default CI of the mean from accumulated samples.
ConfidenceInterval meanConfidenceInterval(const RunningStats& stats,
                                          double confidence = 0.95);

}  // namespace hcs::stats
