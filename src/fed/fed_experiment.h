#pragma once
// Multi-trial federated experiments: the federated counterpart of
// exp::runExperiment, reporting the identical aggregate statistics so sweep
// grids can put cluster counts and routing policies on the same axes as
// heuristics and pruning knobs.

#include <vector>

#include "exp/experiment.h"
#include "fed/federation.h"
#include "workload/pet_matrix.h"

namespace hcs::fed {

/// Runs `spec.trials` independent workload trials through a federation of
/// `models.size()` clusters (== fed.clusters) on `spec.jobs` threads,
/// aggregating in trial order.  Workloads and per-trial execution seeds are
/// derived exactly as exp::runExperiment derives them — same spec, same
/// seeds, same trials — so a 1-cluster federation with zero dispatch latency
/// reproduces exp::runExperiment bit-for-bit, and federated sweep points
/// stay paired with non-federated ones.  Deadlines come from models[0]'s
/// PET matrix (all clusters of a federation share one matrix).
exp::ExperimentResult runFederatedExperiment(
    const std::vector<const workload::BoundExecutionModel*>& models,
    const exp::ExperimentSpec& spec, const FederationSpec& fed);

}  // namespace hcs::fed
