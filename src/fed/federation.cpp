#include "fed/federation.h"

#include <limits>
#include <stdexcept>
#include <utility>

namespace hcs::fed {

std::uint64_t clusterExecutionSeed(std::uint64_t base, std::size_t cluster) {
  if (cluster == 0) return base;  // the N=1 identity: cluster 0 IS the trial
  // One splitmix64 scramble per cluster index: well-separated streams from
  // one trial seed, so adding clusters never perturbs existing ones.
  std::uint64_t z = base + 0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(cluster);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {

/// One cluster's full resource-allocation stack.
struct Cluster {
  std::vector<sim::Machine> machines;
  sim::EventQueue events;
  sim::Metrics metrics;
  prob::Rng rng;
  core::SimulationConfig config;  ///< per-cluster copy (trace sink wrap)
  std::unique_ptr<core::Scheduler> scheduler;
  /// Routing-side Eq. 2 machinery (multi-cluster gateways only): a
  /// persistent context + PCT cache of this cluster, separate from the
  /// scheduler's own so gateway queries never perturb mapping decisions.
  std::unique_ptr<heuristics::PctCache> routingCache;
  std::optional<heuristics::MappingContext> routingCtx;
  std::size_t inFlight = 0;
  std::size_t routed = 0;
  sim::Time lastEvent = 0;

  explicit Cluster(prob::Rng seeded) : rng(std::move(seeded)) {}
};

}  // namespace

FederatedSimulation::FederatedSimulation(
    std::vector<const sim::ExecutionModel*> models,
    const workload::Workload& workload, core::SimulationConfig config,
    FederationSpec spec)
    : models_(std::move(models)),
      workload_(workload),
      config_(std::move(config)),
      spec_(std::move(spec)) {
  if (spec_.clusters == 0) {
    throw std::invalid_argument("FederatedSimulation: need >= 1 cluster");
  }
  if (models_.size() != spec_.clusters) {
    throw std::invalid_argument(
        "FederatedSimulation: one execution model per cluster required");
  }
  for (const sim::ExecutionModel* model : models_) {
    if (model == nullptr) {
      throw std::invalid_argument("FederatedSimulation: null cluster model");
    }
    if (model->numTaskTypes() != workload.numTaskTypes()) {
      throw std::invalid_argument(
          "FederatedSimulation: workload / model task-type count mismatch");
    }
  }
  if (spec_.dispatchLatency < 0.0) {
    throw std::invalid_argument(
        "FederatedSimulation: dispatch latency must be >= 0");
  }
}

FederatedTrialResult FederatedSimulation::run() {
  const double binWidth = models_[0]->pet(0, 0).binWidth();
  const bool batchMode =
      core::allocationModeFor(config_) == core::AllocationMode::Batch;
  const std::size_t n = spec_.clusters;
  const int numTaskTypes = models_[0]->numTaskTypes();

  // One global task pool: ids are creation-order indices of the arrival
  // stream, exactly as core::Simulation numbers them.
  sim::TaskPool pool;
  std::vector<sim::TaskId> ids;
  ids.reserve(workload_.size());
  for (const workload::TaskSpec& spec : workload_.tasks()) {
    ids.push_back(
        pool.create(spec.type, spec.arrival, spec.deadline, spec.value));
  }
  const std::vector<bool> countedMask =
      workload_.countedMask(config_.warmupMargin);

  std::vector<Cluster> clusters;
  clusters.reserve(n);
  for (std::size_t c = 0; c < n; ++c) {
    clusters.emplace_back(
        prob::Rng(clusterExecutionSeed(config_.executionSeed, c)));
    Cluster& cl = clusters.back();
    const sim::ExecutionModel& model = *models_[c];
    cl.machines.reserve(static_cast<std::size_t>(model.numMachines()));
    for (int j = 0; j < model.numMachines(); ++j) {
      cl.machines.emplace_back(j, binWidth, /*trackTail=*/batchMode,
                               /*lazyTailRebuild=*/config_.pctCacheEnabled);
    }
    cl.metrics = sim::Metrics(numTaskTypes);
    cl.metrics.setCounted(countedMask);
    cl.config = config_;
    if (spec_.traceSink) {
      const auto fedSink = spec_.traceSink;
      const auto baseSink = config_.traceSink;
      cl.config.traceSink = [fedSink, baseSink, c](const sim::TraceEvent& e) {
        fedSink(c, e);
        if (baseSink) baseSink(e);
      };
    }
    cl.scheduler = std::make_unique<core::Scheduler>(cl.config, numTaskTypes);
    if (n > 1) {
      // Gateway-side Eq. 2 / ECT queries (least_ect, max_chance policies).
      if (config_.pctCacheEnabled) {
        cl.routingCache = std::make_unique<heuristics::PctCache>();
      }
      const std::size_t capacity =
          batchMode ? config_.machineQueueCapacity
                    : heuristics::MappingContext::kUnbounded;
      cl.routingCtx.emplace(sim::Time{0}, pool, cl.machines, model, capacity,
                            cl.routingCache.get());
      cl.routingCtx->enablePersistence();
    }
  }

  auto worldOf = [&](std::size_t c) -> core::World {
    Cluster& cl = clusters[c];
    return core::World{pool,       cl.machines, cl.events,
                       cl.metrics, cl.rng,      *models_[c]};
  };
  for (std::size_t c = 0; c < n; ++c) {
    const core::World world = worldOf(c);
    clusters[c].scheduler->beginTrial(world);
  }

  const std::unique_ptr<RoutingPolicy> policy =
      n > 1 ? makeRoutingPolicy(spec_.routing) : nullptr;
  if (policy != nullptr) policy->beginTrial();
  std::vector<ClusterView> views(n);

  // The gateway loop: merge the (time-sorted) arrival stream with every
  // cluster's event queue.  Arrivals win time ties — they carry lower
  // sequence numbers than any same-time completion in the single-cluster
  // engine — and cluster ties break toward the lowest index.
  const std::vector<workload::TaskSpec>& stream = workload_.tasks();
  std::size_t cursor = 0;
  sim::Time now = 0;
  constexpr std::size_t kNone = std::numeric_limits<std::size_t>::max();
  while (true) {
    std::size_t nextCluster = kNone;
    sim::Time nextEventTime = 0;
    for (std::size_t c = 0; c < n; ++c) {
      if (clusters[c].events.empty()) continue;
      const sim::Time t = clusters[c].events.top().time;
      if (nextCluster == kNone || t < nextEventTime) {
        nextCluster = c;
        nextEventTime = t;
      }
    }
    const bool haveArrival = cursor < stream.size();
    if (!haveArrival && nextCluster == kNone) break;

    if (haveArrival &&
        (nextCluster == kNone || stream[cursor].arrival <= nextEventTime)) {
      const sim::TaskId id = ids[cursor];
      now = stream[cursor].arrival;
      ++cursor;
      std::size_t target = 0;
      if (n > 1) {
        for (std::size_t c = 0; c < n; ++c) {
          Cluster& cl = clusters[c];
          cl.routingCtx->rebind(now);
          views[c] = ClusterView{&cl.machines,
                                 cl.scheduler->batchQueueLength(),
                                 cl.inFlight, &*cl.routingCtx};
        }
        target = policy->route(views, pool[id], now);
        if (target >= n) {
          throw std::logic_error(
              "FederatedSimulation: routing policy chose an invalid cluster");
        }
      }
      Cluster& cl = clusters[target];
      ++cl.routed;
      if (spec_.dispatchLatency <= 0.0) {
        cl.lastEvent = now;
        core::World world = worldOf(target);
        cl.scheduler->handleArrival(world, id, now);
      } else {
        ++cl.inFlight;
        cl.events.push(now + spec_.dispatchLatency,
                       sim::EventKind::TaskArrival, id);
      }
      continue;
    }

    Cluster& cl = clusters[nextCluster];
    const sim::Event event = cl.events.pop();
    now = event.time;
    cl.lastEvent = event.time;
    core::World world = worldOf(nextCluster);
    if (event.kind == sim::EventKind::TaskArrival) {
      --cl.inFlight;
      cl.scheduler->handleArrival(world, event.task, now);
    } else {
      cl.scheduler->handleCompletion(world, event.machine, event.task, now);
    }
  }

  for (std::size_t c = 0; c < n; ++c) {
    core::World world = worldOf(c);
    clusters[c].scheduler->finalize(world, now);
  }

  FederatedTrialResult result;
  result.total.metrics = sim::Metrics(numTaskTypes);
  result.total.makespan = now;
  result.clusters.reserve(n);
  for (std::size_t c = 0; c < n; ++c) {
    Cluster& cl = clusters[c];
    ClusterOutcome outcome;
    outcome.tasksRouted = cl.routed;
    outcome.mappingEvents = cl.scheduler->mappingEvents();
    outcome.lastEvent = cl.lastEvent;
    outcome.fairnessScores = cl.scheduler->pruner().fairness().scores();
    outcome.machineUtilization.reserve(cl.machines.size());
    for (const sim::Machine& m : cl.machines) {
      outcome.machineUtilization.push_back(now > 0 ? m.busyTime() / now : 0.0);
    }
    result.total.metrics.merge(cl.metrics);
    result.total.mappingEvents += outcome.mappingEvents;
    result.total.mappingEngineSeconds +=
        static_cast<double>(cl.scheduler->mappingEngineNanos()) * 1e-9;
    result.total.machineUtilization.insert(
        result.total.machineUtilization.end(),
        outcome.machineUtilization.begin(), outcome.machineUtilization.end());
    outcome.metrics = std::move(cl.metrics);
    result.clusters.push_back(std::move(outcome));
  }
  result.total.robustnessPercent = result.total.metrics.robustnessPercent();
  // Fairness scores are per-cluster state (each pruner adapts to its own
  // share of the stream); the aggregate carries cluster 0's only in the
  // degenerate single-cluster federation, where it IS the trial's.
  if (n == 1) {
    result.total.fairnessScores = result.clusters[0].fairnessScores;
  }
  return result;
}

}  // namespace hcs::fed
