#include "fed/federation.h"

#include <limits>
#include <queue>
#include <stdexcept>
#include <utility>

#include "sim/elasticity.h"
#include "sim/faults.h"

namespace hcs::fed {

std::uint64_t clusterExecutionSeed(std::uint64_t base, std::size_t cluster) {
  if (cluster == 0) return base;  // the N=1 identity: cluster 0 IS the trial
  // One splitmix64 scramble per cluster index: well-separated streams from
  // one trial seed, so adding clusters never perturbs existing ones.
  std::uint64_t z = base + 0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(cluster);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {

/// One cluster's full resource-allocation stack.
struct Cluster {
  std::vector<sim::Machine> machines;
  sim::EventQueue events;
  sim::Metrics metrics;
  prob::Rng rng;
  core::SimulationConfig config;  ///< per-cluster copy (trace sink wrap)
  std::unique_ptr<core::Scheduler> scheduler;
  /// Routing-side Eq. 2 machinery (multi-cluster gateways only): a
  /// persistent context + PCT cache of this cluster, separate from the
  /// scheduler's own so gateway queries never perturb mapping decisions.
  std::unique_ptr<heuristics::PctCache> routingCache;
  std::optional<heuristics::MappingContext> routingCtx;
  /// Per-cluster churn driver (faults active only), on its own
  /// seed-paired stream split from the trial's fault seed.
  std::optional<sim::FaultInjector> injector;
  /// Per-cluster capacity controller (elasticity active only), again on a
  /// split seed-paired stream.
  std::optional<sim::CapacityController> controller;
  std::size_t inFlight = 0;
  std::size_t routed = 0;
  sim::Time lastEvent = 0;

  explicit Cluster(prob::Rng seeded) : rng(std::move(seeded)) {}
};

/// A failure retry waiting to re-enter the gateway: re-routed and
/// re-admitted against the whole federation, not pinned to the cluster
/// that failed it.  Ordered by (time, issue order).
struct PendingRetry {
  sim::Time at = 0;
  std::uint64_t seq = 0;
  sim::TaskId task = sim::kInvalidTask;
};

struct RetryLater {
  bool operator()(const PendingRetry& a, const PendingRetry& b) const {
    return a.at > b.at || (a.at == b.at && a.seq > b.seq);
  }
};

/// Trace every machine transition one controller tick produced (cluster
/// sinks already carry the cluster index through the wrapper).
void emitCapacityTraces(const sim::TraceSink& sink,
                        const sim::CapacityDelta& delta, sim::Time now) {
  if (!sink) return;
  const auto emit = [&](sim::TraceEventKind kind, sim::MachineId m) {
    sink(sim::TraceEvent{now, kind, sim::kInvalidTask, m});
  };
  for (sim::MachineId m : delta.drained) {
    emit(sim::TraceEventKind::MachineDraining, m);
  }
  for (sim::MachineId m : delta.reclaimed) {
    emit(sim::TraceEventKind::DrainCancelled, m);
  }
  for (sim::MachineId m : delta.booting) {
    emit(sim::TraceEventKind::MachineBooting, m);
  }
  for (sim::MachineId m : delta.bootsCancelled) {
    emit(sim::TraceEventKind::BootCancelled, m);
  }
  for (sim::MachineId m : delta.retired) {
    emit(sim::TraceEventKind::MachineRetired, m);
  }
}

}  // namespace

FederatedSimulation::FederatedSimulation(
    std::vector<const sim::ExecutionModel*> models,
    const workload::Workload& workload, core::SimulationConfig config,
    FederationSpec spec)
    : models_(std::move(models)),
      workload_(&workload),
      config_(std::move(config)),
      spec_(std::move(spec)) {
  validate(workload.numTaskTypes());
}

FederatedSimulation::FederatedSimulation(
    std::vector<const sim::ExecutionModel*> models,
    workload::TaskStream& stream, core::SimulationConfig config,
    FederationSpec spec)
    : models_(std::move(models)),
      stream_(&stream),
      config_(std::move(config)),
      spec_(std::move(spec)) {
  validate(stream.numTaskTypes());
}

void FederatedSimulation::validate(int numTaskTypes) {
  if (spec_.clusters == 0) {
    throw std::invalid_argument("FederatedSimulation: need >= 1 cluster");
  }
  if (models_.size() != spec_.clusters) {
    throw std::invalid_argument(
        "FederatedSimulation: one execution model per cluster required");
  }
  for (const sim::ExecutionModel* model : models_) {
    if (model == nullptr) {
      throw std::invalid_argument("FederatedSimulation: null cluster model");
    }
    if (model->numTaskTypes() != numTaskTypes) {
      throw std::invalid_argument(
          "FederatedSimulation: workload / model task-type count mismatch");
    }
  }
  if (spec_.dispatchLatency < 0.0) {
    throw std::invalid_argument(
        "FederatedSimulation: dispatch latency must be >= 0");
  }
  if (!spec_.clusterElasticity.empty() &&
      spec_.clusterElasticity.size() != spec_.clusters) {
    throw std::invalid_argument(
        "FederatedSimulation: clusterElasticity must have one entry per "
        "cluster (or none)");
  }
  spec_.admission.validate();
}

FederatedTrialResult FederatedSimulation::run() {
  const bool streamingMode = stream_ != nullptr;
  const double binWidth = models_[0]->pet(0, 0).binWidth();
  const bool batchMode =
      core::allocationModeFor(config_) == core::AllocationMode::Batch;
  const std::size_t n = spec_.clusters;
  const int numTaskTypes = models_[0]->numTaskTypes();

  // One global task pool: materialized, ids are creation-order indices of
  // the arrival stream, exactly as core::Simulation numbers them; streamed,
  // tasks are created as the gateway reaches them and terminal tasks give
  // their slots back.
  sim::TaskPool pool;
  if (streamingMode) {
    pool.enableRecycling();
  } else {
    for (const workload::TaskSpec& spec : workload_->tasks()) {
      pool.create(spec.type, spec.arrival, spec.deadline, spec.value);
    }
  }
  std::vector<bool> countedMask;
  if (!streamingMode) {
    countedMask = workload_->countedMask(config_.warmupMargin);
  }

  // Gateway-level accounting (rejections, spillovers) and the retry heap
  // live above every cluster; the heap is declared before the clusters so
  // each scheduler's retryHook can capture it.
  sim::Metrics gatewayMetrics(numTaskTypes);
  if (streamingMode) {
    gatewayMetrics.enableOnlineCounting(config_.warmupMargin,
                                        pool.createdClock());
  } else {
    gatewayMetrics.setCounted(countedMask);
  }
  std::priority_queue<PendingRetry, std::vector<PendingRetry>, RetryLater>
      retries;
  std::uint64_t retrySeq = 0;
  const bool faultsActive = config_.faults.active();
  bool controllersActive = false;
  const bool admissionActive =
      spec_.admission.policy != AdmissionPolicyKind::AcceptAll;

  std::vector<Cluster> clusters;
  clusters.reserve(n);
  for (std::size_t c = 0; c < n; ++c) {
    clusters.emplace_back(
        prob::Rng(clusterExecutionSeed(config_.executionSeed, c)));
    Cluster& cl = clusters.back();
    const sim::ExecutionModel& model = *models_[c];
    cl.machines.reserve(static_cast<std::size_t>(model.numMachines()));
    for (int j = 0; j < model.numMachines(); ++j) {
      cl.machines.emplace_back(j, binWidth, /*trackTail=*/batchMode,
                               /*lazyTailRebuild=*/config_.pctCacheEnabled);
    }
    cl.metrics = sim::Metrics(numTaskTypes);
    if (streamingMode) {
      // All sections share the pool's creation clock: a terminal's counted
      // verdict depends on the global arrival ordinal, not on which cluster
      // (or the gateway) recorded it.
      cl.metrics.enableOnlineCounting(config_.warmupMargin,
                                      pool.createdClock());
    } else {
      cl.metrics.setCounted(countedMask);
    }
    cl.config = config_;
    // Resolve this cluster's controller config up front: the scheduler's
    // config copy must see it (it gates the immediate-mode unmappable-task
    // fallback), and the controller below references the cluster-local
    // copy.
    if (!spec_.clusterElasticity.empty()) {
      cl.config.elasticity = spec_.clusterElasticity[c];
    }
    if (spec_.traceSink) {
      const auto fedSink = spec_.traceSink;
      const auto baseSink = config_.traceSink;
      cl.config.traceSink = [fedSink, baseSink, c](const sim::TraceEvent& e) {
        fedSink(c, e);
        if (baseSink) baseSink(e);
      };
    }
    if (faultsActive) {
      // Retries re-enter at the GATEWAY (re-routed, re-admitted) instead
      // of the failing cluster's own event queue.
      cl.config.retryHook = [&retries, &retrySeq](sim::TaskId id,
                                                  sim::Time at) {
        retries.push(PendingRetry{at, retrySeq++, id});
      };
    }
    cl.scheduler = std::make_unique<core::Scheduler>(cl.config, numTaskTypes);
    if (n > 1 ||
        spec_.admission.policy == AdmissionPolicyKind::ChanceThreshold) {
      // Gateway-side Eq. 2 / ECT queries (least_ect, max_chance routing and
      // the chance_threshold admission bar, which needs them even at n=1).
      if (config_.pctCacheEnabled) {
        cl.routingCache = std::make_unique<heuristics::PctCache>();
      }
      const std::size_t capacity =
          batchMode ? config_.machineQueueCapacity
                    : heuristics::MappingContext::kUnbounded;
      cl.routingCtx.emplace(sim::Time{0}, pool, cl.machines, model, capacity,
                            cl.routingCache.get());
      cl.routingCtx->enablePersistence();
    }
    // The controller arms BEFORE the fault injector (exactly like the
    // single-cluster engine): surplus slots park at t = 0, so parked
    // capacity never gets a failure process.  Seed split off the trial's
    // elasticity seed with the same scheme the execution streams use.
    if (cl.config.elasticity.active()) {
      cl.controller.emplace(cl.config.elasticity,
                            clusterExecutionSeed(config_.elasticitySeed, c),
                            model, cl.machines.size(),
                            batchMode ? config_.machineQueueCapacity
                                      : heuristics::MappingContext::kUnbounded,
                            config_.pctCacheEnabled);
      cl.controller->beginTrial(cl.events, cl.machines, pool);
      controllersActive = true;
    }
    if (faultsActive) {
      // Split per-cluster fault stream off the trial's fault seed, the same
      // scheme the execution streams use (cluster 0 keeps the base).
      cl.injector.emplace(config_.faults,
                          clusterExecutionSeed(config_.faultSeed, c),
                          cl.machines.size());
      cl.injector->beginTrial(cl.events, cl.machines, pool, model);
    }
  }

  auto worldOf = [&](std::size_t c) -> core::World {
    Cluster& cl = clusters[c];
    core::World world{pool,       cl.machines, cl.events,
                      cl.metrics, cl.rng,      *models_[c]};
    if (cl.injector.has_value()) world.faultRng = &cl.injector->rng();
    return world;
  };
  // After a completion or recovery, a draining machine may have emptied —
  // the drain is done and the machine retires.
  auto maybeRetire = [&](std::size_t c, sim::MachineId machine,
                         sim::Time when) {
    Cluster& cl = clusters[c];
    if (!cl.controller.has_value()) return;
    sim::FaultInjector* injectorPtr =
        cl.injector.has_value() ? &*cl.injector : nullptr;
    if (cl.controller->maybeRetire(cl.events, cl.machines, pool, machine,
                                   when, injectorPtr) &&
        cl.config.traceSink) {
      cl.config.traceSink(sim::TraceEvent{
          when, sim::TraceEventKind::MachineRetired, sim::kInvalidTask,
          machine});
    }
  };
  for (std::size_t c = 0; c < n; ++c) {
    const core::World world = worldOf(c);
    clusters[c].scheduler->beginTrial(world);
  }

  const std::unique_ptr<RoutingPolicy> policy =
      n > 1 ? makeRoutingPolicy(spec_.routing) : nullptr;
  if (policy != nullptr) policy->beginTrial();
  const std::unique_ptr<AdmissionPolicy> admission =
      admissionActive ? makeAdmissionPolicy(spec_.admission) : nullptr;
  std::vector<ClusterView> views(n);

  auto refreshViews = [&](sim::Time when) {
    for (std::size_t c = 0; c < n; ++c) {
      Cluster& cl = clusters[c];
      if (cl.routingCtx.has_value()) cl.routingCtx->rebind(when);
      views[c] =
          ClusterView{&cl.machines, cl.scheduler->batchQueueLength(),
                      cl.inFlight,
                      cl.routingCtx.has_value() ? &*cl.routingCtx : nullptr};
    }
  };

  // Route, admit (with spillover), and deliver one gateway entrant — a
  // stream arrival or a failure retry.  A federation-wide refusal is a
  // terminal rejection priced into the aggregate metrics.
  sim::Time now = 0;
  auto admitAndDispatch = [&](sim::TaskId id, sim::Time when) {
    if (n > 1 || admissionActive) refreshViews(when);
    std::size_t target = 0;
    if (n > 1) {
      target = policy->route(views, pool[id], when);
      if (target >= n) {
        throw std::logic_error(
            "FederatedSimulation: routing policy chose an invalid cluster");
      }
    }
    if (admissionActive && !admission->admit(views[target], pool[id], when)) {
      bool placed = false;
      if (spec_.admission.spillover) {
        for (std::size_t c = 0; c < n && !placed; ++c) {
          if (c == target) continue;
          if (admission->admit(views[c], pool[id], when)) {
            target = c;
            placed = true;
            gatewayMetrics.recordSpillover();
          }
        }
      }
      if (!placed) {
        sim::Task& t = pool[id];
        t.status = sim::TaskStatus::Rejected;
        t.finishTime = when;
        gatewayMetrics.recordTerminal(t);
        // Terminal at the gateway, never entered a cluster: recycle the
        // slot (streaming mode; no-op otherwise).
        pool.retire(id);
        return;
      }
    }
    Cluster& cl = clusters[target];
    ++cl.routed;
    if (spec_.dispatchLatency <= 0.0) {
      cl.lastEvent = when;
      core::World world = worldOf(target);
      cl.scheduler->handleArrival(world, id, when);
    } else {
      ++cl.inFlight;
      cl.events.push(when + spec_.dispatchLatency, sim::EventKind::TaskArrival,
                     id);
    }
  };

  // The gateway loop: merge the (time-sorted) arrival stream, the retry
  // heap, and every cluster's event queue.  Stream arrivals win every time
  // tie (they carry lower sequence numbers than any same-time completion in
  // the single-cluster engine), retries beat cluster events at equal times
  // (they are gateway arrivals too), and cluster ties break toward the
  // lowest index.
  const std::vector<workload::TaskSpec>* materialized =
      streamingMode ? nullptr : &workload_->tasks();
  std::size_t cursor = 0;
  const auto peekArrival = [&]() -> const workload::TaskSpec* {
    if (streamingMode) return stream_->peek();
    return cursor < materialized->size() ? &(*materialized)[cursor] : nullptr;
  };
  constexpr std::size_t kNone = std::numeric_limits<std::size_t>::max();
  // With churn active, every cluster's fail/repair process re-arms on each
  // transition and its queue never drains — and controller ticks recur
  // forever the same way; the trial is over once every task reached a
  // terminal state somewhere in the federation.  A streamed trial is over
  // once the stream is dry AND everything created went terminal.
  auto allTasksTerminal = [&] {
    if (streamingMode && stream_->peek() != nullptr) return false;
    std::size_t terminal = gatewayMetrics.terminalCount();
    for (const Cluster& cl : clusters) terminal += cl.metrics.terminalCount();
    return terminal == static_cast<std::size_t>(pool.createdCount());
  };
  while (true) {
    if ((faultsActive || controllersActive) && allTasksTerminal()) break;
    std::size_t nextCluster = kNone;
    sim::Time nextEventTime = 0;
    for (std::size_t c = 0; c < n; ++c) {
      if (clusters[c].events.empty()) continue;
      const sim::Time t = clusters[c].events.top().time;
      if (nextCluster == kNone || t < nextEventTime) {
        nextCluster = c;
        nextEventTime = t;
      }
    }
    const workload::TaskSpec* nextArrival = peekArrival();
    const bool haveArrival = nextArrival != nullptr;
    const bool haveRetry = !retries.empty();
    if (!haveArrival && !haveRetry && nextCluster == kNone) break;

    if (haveArrival &&
        (!haveRetry || nextArrival->arrival <= retries.top().at) &&
        (nextCluster == kNone || nextArrival->arrival <= nextEventTime)) {
      now = nextArrival->arrival;
      sim::TaskId id;
      if (streamingMode) {
        const workload::TaskSpec spec = stream_->pop();
        id = pool.create(spec.type, spec.arrival, spec.deadline, spec.value);
      } else {
        id = static_cast<sim::TaskId>(cursor);  // create() numbered 0..N-1
        ++cursor;
      }
      admitAndDispatch(id, now);
      continue;
    }

    if (haveRetry &&
        (nextCluster == kNone || retries.top().at <= nextEventTime)) {
      const PendingRetry retry = retries.top();
      retries.pop();
      now = retry.at;
      admitAndDispatch(retry.task, now);
      continue;
    }

    // Mirror of the single-cluster engine's quiescence break: a tick
    // popping with the stream exhausted, no retries, nothing in flight, an
    // idle fleet everywhere, and no boot pending can never change a task's
    // fate again — break BEFORE processing it so every cluster's clock (and
    // the finalize sweep of deferred leftovers) stays at its last task
    // event, preserving the N=1 identity oracle.  Fault-active runs opt
    // out: recovery-driven mapping events can still resolve stuck tasks.
    if (!faultsActive &&
        clusters[nextCluster].events.top().kind ==
            sim::EventKind::ControllerTick &&
        !haveArrival && !haveRetry) {
      const auto quiescent = [&] {
        for (const Cluster& other : clusters) {
          if (other.inFlight > 0) return false;
          if (other.controller.has_value() &&
              other.controller->hasPendingBoot()) {
            return false;
          }
          for (const sim::Machine& m : other.machines) {
            if (m.busy() || m.queueLength() > 0) return false;
          }
        }
        return true;
      };
      if (quiescent()) break;
    }

    Cluster& cl = clusters[nextCluster];
    const sim::Event event = cl.events.pop();
    now = event.time;
    cl.lastEvent = event.time;
    core::World world = worldOf(nextCluster);
    switch (event.kind) {
      case sim::EventKind::TaskArrival:
        --cl.inFlight;
        cl.scheduler->handleArrival(world, event.task, now);
        break;
      case sim::EventKind::TaskCompletion:
        cl.scheduler->handleCompletion(world, event.machine, event.task, now);
        maybeRetire(nextCluster, event.machine, now);
        break;
      case sim::EventKind::MachineFailure:
      case sim::EventKind::MachineRecovery: {
        const auto j = static_cast<std::size_t>(event.machine);
        const sim::FaultInjector::Action action = cl.injector->onEvent(
            cl.events, event, cl.machines[j].online());
        if (action == sim::FaultInjector::Action::Fail) {
          cl.scheduler->handleMachineFailure(world, event.machine, now);
        } else if (action == sim::FaultInjector::Action::Recover) {
          cl.scheduler->handleMachineRecovery(world, event.machine, now);
          // A machine that failed while draining recovers empty and still
          // draining: the drain completes on the spot.
          maybeRetire(nextCluster, event.machine, now);
        }
        break;
      }
      case sim::EventKind::ControllerTick: {
        sim::LoadSignal signal;
        // In-flight (gateway-routed, latency-delayed) tasks are committed
        // load the controller should see before they land.
        signal.tasksInSystem = cl.scheduler->batchQueueLength() + cl.inFlight;
        for (const sim::Machine& m : cl.machines) {
          signal.tasksInSystem += m.queueLength() + (m.busy() ? 1u : 0u);
        }
        if (cl.controller->needsHeadTask()) {
          signal.headTask = cl.scheduler->batchQueueHead();
        }
        sim::FaultInjector* injectorPtr =
            cl.injector.has_value() ? &*cl.injector : nullptr;
        const sim::CapacityDelta delta =
            cl.controller->onTick(cl.events, cl.machines, pool, signal,
                                  cl.metrics, now, injectorPtr);
        emitCapacityTraces(cl.config.traceSink, delta, now);
        // Only added accepting capacity warrants a mapping event — drains
        // and retirements shrink the candidate set and the next natural
        // event prices that in (the min == max identity oracle).
        if (delta.capacityAdded()) {
          cl.scheduler->handleCapacityChanged(world, now);
        }
        break;
      }
      case sim::EventKind::CapacityOnline: {
        sim::FaultInjector* injectorPtr =
            cl.injector.has_value() ? &*cl.injector : nullptr;
        const bool accepting = cl.controller->onCapacityOnline(
            cl.events, event, cl.machines, pool, now, injectorPtr);
        if (accepting) {
          if (cl.config.traceSink) {
            cl.config.traceSink(sim::TraceEvent{
                now, sim::TraceEventKind::MachineBooted, sim::kInvalidTask,
                event.machine});
          }
          cl.scheduler->handleCapacityChanged(world, now);
        }
        break;
      }
    }
  }

  for (std::size_t c = 0; c < n; ++c) {
    core::World world = worldOf(c);
    clusters[c].scheduler->finalize(world, now);
  }
  // Stream drained, creation clock final: settle every section's pending
  // counted/uncounted verdicts before any merge reads them.
  gatewayMetrics.endStreamCounting();
  for (Cluster& cl : clusters) cl.metrics.endStreamCounting();

  FederatedTrialResult result;
  result.total.metrics = sim::Metrics(numTaskTypes);
  result.total.metrics.merge(gatewayMetrics);
  result.total.makespan = now;
  result.clusters.reserve(n);
  for (std::size_t c = 0; c < n; ++c) {
    Cluster& cl = clusters[c];
    // Machine-seconds cost accounting per cluster (merged into the
    // aggregate below), mirroring the single-cluster engine: integrated
    // against *online* capacity, not wall clock.
    const sim::ExecutionModel& model = *models_[c];
    for (std::size_t j = 0; j < cl.machines.size(); ++j) {
      const sim::Machine& m = cl.machines[j];
      cl.metrics.recordMachineSeconds(model.machineTypeOf(static_cast<int>(j)),
                                      m.onlineSeconds(now),
                                      m.drainingSeconds(now), m.busyTime());
    }
    ClusterOutcome outcome;
    outcome.tasksRouted = cl.routed;
    outcome.mappingEvents = cl.scheduler->mappingEvents();
    outcome.lastEvent = cl.lastEvent;
    outcome.fairnessScores = cl.scheduler->pruner().fairness().scores();
    outcome.machineUtilization.reserve(cl.machines.size());
    for (const sim::Machine& m : cl.machines) {
      outcome.machineUtilization.push_back(now > 0 ? m.busyTime() / now : 0.0);
    }
    result.total.metrics.merge(cl.metrics);
    result.total.mappingEvents += outcome.mappingEvents;
    result.total.mappingEngineSeconds +=
        static_cast<double>(cl.scheduler->mappingEngineNanos()) * 1e-9;
    result.total.machineUtilization.insert(
        result.total.machineUtilization.end(),
        outcome.machineUtilization.begin(), outcome.machineUtilization.end());
    outcome.metrics = std::move(cl.metrics);
    result.clusters.push_back(std::move(outcome));
  }
  result.total.robustnessPercent = result.total.metrics.robustnessPercent();
  // Fairness scores are per-cluster state (each pruner adapts to its own
  // share of the stream); the aggregate carries cluster 0's only in the
  // degenerate single-cluster federation, where it IS the trial's.
  if (n == 1) {
    result.total.fairnessScores = result.clusters[0].fairnessScores;
  }
  return result;
}

}  // namespace hcs::fed
