#pragma once
// Gateway admission control of the federation tier: decide whether a cluster
// may take an arriving (or retried) task at all, *after* routing picked it.
//
// Under churn a degraded federation can be offered more work than its
// surviving capacity; admission control is the knob that trades completed
// work against queueing collapse.  When the routed cluster refuses, the
// gateway spills the task to sibling clusters in ascending index order
// (spillover), and only a federation-wide refusal rejects the task outright
// (TaskStatus::Rejected — a terminal outcome priced into robustness).
//
// Policies mirror the routing roster's range: state-free (accept_all),
// load-bounded (queue_bound), and probabilistic (chance_threshold, which
// reuses the Eq. 2 success-chance machinery across the cluster's *online*
// machines).

#include <cstddef>
#include <memory>
#include <string>
#include <string_view>

#include "fed/routing.h"
#include "sim/task.h"
#include "sim/types.h"

namespace hcs::fed {

enum class AdmissionPolicyKind {
  AcceptAll,        ///< never refuse (the fault-free identity default)
  QueueBound,       ///< refuse when the cluster's system depth hits a bound
  ChanceThreshold,  ///< refuse when no online machine clears an Eq. 2 bar
};

/// Scenario-file spelling: "accept_all" | "queue_bound" | "chance_threshold".
std::string_view toString(AdmissionPolicyKind kind);

/// Inverse of toString; throws std::invalid_argument on unknown names.
AdmissionPolicyKind parseAdmissionPolicy(const std::string& name);

/// Gateway admission configuration (scenario `admission` block).
struct AdmissionConfig {
  AdmissionPolicyKind policy = AdmissionPolicyKind::AcceptAll;
  /// queue_bound: max tasks in a cluster's system (running + machine queues
  /// + batch queue + in-flight) before it refuses new work.
  std::size_t queueBound = 64;
  /// chance_threshold: minimum best-machine Eq. 2 success chance a cluster
  /// must offer the task.
  double chanceThreshold = 0.05;
  /// Try sibling clusters (ascending index) when the routed cluster
  /// refuses; off = a single refusal rejects outright.
  bool spillover = true;

  /// Throws std::invalid_argument on inconsistent knobs.
  void validate() const;
};

class AdmissionPolicy {
 public:
  virtual ~AdmissionPolicy() = default;

  /// True when `cluster` may take `task` at `now`.  The view's mapping
  /// context (when present) has been rebound to `now` before the call.
  virtual bool admit(const ClusterView& cluster, const sim::Task& task,
                     sim::Time now) = 0;
};

std::unique_ptr<AdmissionPolicy> makeAdmissionPolicy(
    const AdmissionConfig& config);

}  // namespace hcs::fed
