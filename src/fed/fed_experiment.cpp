#include "fed/fed_experiment.h"

#include <stdexcept>

#include "exp/parallel.h"

namespace hcs::fed {

exp::ExperimentResult runFederatedExperiment(
    const std::vector<const workload::BoundExecutionModel*>& models,
    const exp::ExperimentSpec& spec, const FederationSpec& fed) {
  if (spec.trials == 0) {
    throw std::invalid_argument(
        "runFederatedExperiment: need at least one trial");
  }
  if (models.empty() || models.size() != fed.clusters) {
    throw std::invalid_argument(
        "runFederatedExperiment: one model per cluster required");
  }

  std::vector<core::TrialResult> outcomes(spec.trials);
  exp::ParallelExecutor(spec.jobs).run(spec.trials, [&](std::size_t trial) {
    const std::uint64_t workloadSeed = spec.baseSeed + trial;

    core::SimulationConfig simConfig = spec.sim;
    simConfig.executionSeed = exp::executionSeedFor(workloadSeed);
    simConfig.faultSeed = exp::faultSeedFor(workloadSeed);
    simConfig.elasticitySeed = exp::elasticitySeedFor(workloadSeed);

    std::vector<const sim::ExecutionModel*> clusterModels(models.begin(),
                                                          models.end());
    if (spec.stream.enabled) {
      const std::unique_ptr<workload::TaskStream> stream =
          workload::openTaskStream(spec.stream, models[0]->matrix(),
                                   spec.arrival, spec.deadline, workloadSeed);
      outcomes[trial] = FederatedSimulation(std::move(clusterModels), *stream,
                                            simConfig, fed)
                            .run()
                            .total;
      return;
    }
    const workload::Workload wl = workload::Workload::generate(
        models[0]->matrix(), spec.arrival, spec.deadline, workloadSeed);
    outcomes[trial] =
        FederatedSimulation(std::move(clusterModels), wl, simConfig, fed)
            .run()
            .total;
  });

  return exp::aggregateTrialResults(outcomes);
}

}  // namespace hcs::fed
