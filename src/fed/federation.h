#pragma once
// The federated dispatch engine: N independent clusters behind a gateway.
//
// Real serverless platforms shard load across many clusters; this tier
// reproduces that shape on top of the single-cluster engine without touching
// it.  A FederatedSimulation owns one full resource-allocation stack per
// cluster — Scheduler (heuristic + pruner + PCT cache), EventQueue, machines,
// metrics, and a *split per-cluster RNG stream* — plus a gateway that walks
// the global arrival stream in time order and routes every task by a
// pluggable RoutingPolicy.  Routed tasks reach their cluster immediately or
// after a configurable inter-cluster dispatch latency.
//
// Reproducibility contracts:
//  - Cluster 0 keeps the trial's base execution-RNG stream and clusters run
//    their events in deterministic (time, cluster, seq) order, so a
//    federation of ONE cluster with ZERO dispatch latency is byte-identical
//    — trace-for-trace — to core::Simulation (the oracle the federation
//    tests pin down).
//  - Cluster c > 0 derives its stream from the same seed via a splitmix64
//    step, so paired-seed sweeps (same run.seed, different cluster counts or
//    routing policies) stay paired.

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "core/config.h"
#include "core/scheduler.h"
#include "core/simulation.h"
#include "fed/admission.h"
#include "fed/routing.h"
#include "heuristics/context.h"
#include "heuristics/pct_cache.h"
#include "prob/rng.h"
#include "sim/event_queue.h"
#include "sim/machine.h"
#include "sim/metrics.h"
#include "sim/task.h"
#include "sim/trace.h"
#include "workload/stream.h"
#include "workload/workload.h"

namespace hcs::fed {

/// Shape of a federation, independent of the per-cluster simulation config.
struct FederationSpec {
  std::size_t clusters = 1;
  RoutingPolicyKind routing = RoutingPolicyKind::RoundRobin;
  /// Gateway-to-cluster delivery delay (time units).  0 = a routed task
  /// arrives at its cluster at its global arrival time, exactly as the
  /// single-cluster engine sees it.
  double dispatchLatency = 0.0;
  /// Gateway admission control: applied after routing to every task that
  /// enters the gateway (stream arrivals AND failure retries).  A refused
  /// task spills to sibling clusters in ascending index order (when
  /// spillover is on); a federation-wide refusal rejects it outright.  The
  /// accept_all default keeps the fault-free identity contracts intact.
  AdmissionConfig admission;
  /// Per-cluster elastic-capacity overrides.  Empty = every cluster runs
  /// the shared SimulationConfig.elasticity block; otherwise exactly one
  /// fully-resolved config per cluster (the bind layer merges scenario
  /// overrides and fills each cluster's baseMachines/pool).
  std::vector<sim::ElasticityConfig> clusterElasticity;
  /// Optional sink receiving every task lifecycle transition together with
  /// the cluster it happened on.
  std::function<void(std::size_t cluster, const sim::TraceEvent&)> traceSink;
};

/// Execution-RNG seed of cluster `cluster`, split from the trial seed.
/// Cluster 0 keeps the base stream (the N=1 identity); higher clusters get
/// independent splitmix64-derived streams from the same seed.
std::uint64_t clusterExecutionSeed(std::uint64_t base, std::size_t cluster);

/// One cluster's share of a federated trial.
struct ClusterOutcome {
  sim::Metrics metrics;
  std::size_t tasksRouted = 0;
  std::size_t mappingEvents = 0;
  /// Time of the last event processed on this cluster (0 if none).
  sim::Time lastEvent = 0;
  std::vector<double> machineUtilization;
  std::vector<double> fairnessScores;
};

/// Everything a federated trial produces: the aggregate (cross-cluster)
/// trial result plus the per-cluster breakdown.
struct FederatedTrialResult {
  /// Aggregate result in the single-cluster shape — metrics merged across
  /// clusters, utilizations concatenated cluster-major — so the experiment
  /// layer aggregates federated and plain trials with the same code.
  core::TrialResult total;
  std::vector<ClusterOutcome> clusters;
};

/// Runs one workload trial through the federation.  Deterministic: the same
/// models, workload, config, and spec always produce the same result.
///
/// Like core::Simulation, the gateway accepts either a materialized
/// Workload (every task created up front, ids = arrival indices) or a
/// TaskStream (tasks created as the gateway reaches them, slots recycled on
/// terminal states, warm-up trimming decided online) — the streamed trial
/// reproduces the materialized TrialResult exactly.
class FederatedSimulation {
 public:
  /// `models` (one per cluster, all sharing the workload's task-type count
  /// and PET bin width) must outlive run().
  FederatedSimulation(std::vector<const sim::ExecutionModel*> models,
                      const workload::Workload& workload,
                      core::SimulationConfig config, FederationSpec spec);

  /// Streamed-arrival federated trial; `models` and `stream` must outlive
  /// run().
  FederatedSimulation(std::vector<const sim::ExecutionModel*> models,
                      workload::TaskStream& stream,
                      core::SimulationConfig config, FederationSpec spec);

  FederatedTrialResult run();

 private:
  void validate(int numTaskTypes);

  std::vector<const sim::ExecutionModel*> models_;
  const workload::Workload* workload_ = nullptr;
  workload::TaskStream* stream_ = nullptr;
  core::SimulationConfig config_;
  FederationSpec spec_;
};

}  // namespace hcs::fed
