#include "fed/routing.h"

#include <limits>
#include <stdexcept>

namespace hcs::fed {

std::string_view toString(RoutingPolicyKind kind) {
  switch (kind) {
    case RoutingPolicyKind::RoundRobin: return "round_robin";
    case RoutingPolicyKind::LeastQueueDepth: return "least_queue";
    case RoutingPolicyKind::LeastExpectedCompletion: return "least_ect";
    case RoutingPolicyKind::MaxChance: return "max_chance";
  }
  throw std::invalid_argument("toString: unknown RoutingPolicyKind");
}

RoutingPolicyKind parseRoutingPolicy(const std::string& name) {
  if (name == "round_robin") return RoutingPolicyKind::RoundRobin;
  if (name == "least_queue") return RoutingPolicyKind::LeastQueueDepth;
  if (name == "least_ect") return RoutingPolicyKind::LeastExpectedCompletion;
  if (name == "max_chance") return RoutingPolicyKind::MaxChance;
  throw std::invalid_argument(
      "parseRoutingPolicy: unknown policy \"" + name +
      "\" (round_robin|least_queue|least_ect|max_chance)");
}

std::size_t clusterDepth(const ClusterView& view) {
  std::size_t depth = view.batchQueueLength + view.inFlight;
  for (const sim::Machine& m : *view.machines) {
    depth += m.queueLength() + (m.busy() ? 1u : 0u);
  }
  return depth;
}

namespace {

class RoundRobinPolicy final : public RoutingPolicy {
 public:
  void beginTrial() override { next_ = 0; }
  std::size_t route(const std::vector<ClusterView>& clusters,
                    const sim::Task&, sim::Time) override {
    const std::size_t pick = next_;
    next_ = (next_ + 1) % clusters.size();
    return pick;
  }

 private:
  std::size_t next_ = 0;
};

class LeastQueueDepthPolicy final : public RoutingPolicy {
 public:
  std::size_t route(const std::vector<ClusterView>& clusters,
                    const sim::Task&, sim::Time) override {
    std::size_t best = 0;
    std::size_t bestDepth = std::numeric_limits<std::size_t>::max();
    for (std::size_t c = 0; c < clusters.size(); ++c) {
      const std::size_t depth = clusterDepth(clusters[c]);
      if (depth < bestDepth) {
        bestDepth = depth;
        best = c;
      }
    }
    return best;
  }
};

class LeastExpectedCompletionPolicy final : public RoutingPolicy {
 public:
  std::size_t route(const std::vector<ClusterView>& clusters,
                    const sim::Task& task, sim::Time) override {
    std::size_t best = 0;
    double bestEct = std::numeric_limits<double>::infinity();
    for (std::size_t c = 0; c < clusters.size(); ++c) {
      const heuristics::MappingContext& ctx = *clusters[c].ctx;
      // Offline (churned) machines offer no completion; an all-offline
      // cluster keeps infinite merit and is never chosen over a live one.
      double clusterEct = std::numeric_limits<double>::infinity();
      for (int j = 0; j < ctx.numMachines(); ++j) {
        if (!ctx.machine(j).acceptsWork()) continue;
        const double ect = ctx.expectedCompletionForType(task.type, j);
        if (ect < clusterEct) clusterEct = ect;
      }
      if (clusterEct < bestEct) {
        bestEct = clusterEct;
        best = c;
      }
    }
    return best;
  }
};

/// QoS-chance-aware argmax: each cluster's merit is the best Eq. 2 success
/// chance the task would have on any of its machines, computed through the
/// cluster's MappingContext (and therefore its PctCache, when attached) —
/// the exact machinery the single-cluster MaxChance heuristic and the
/// pruner's deferring check use.
class MaxChancePolicy final : public RoutingPolicy {
 public:
  std::size_t route(const std::vector<ClusterView>& clusters,
                    const sim::Task& task, sim::Time) override {
    std::size_t best = 0;
    double bestChance = -1.0;
    for (std::size_t c = 0; c < clusters.size(); ++c) {
      const heuristics::MappingContext& ctx = *clusters[c].ctx;
      const std::vector<double> chances = ctx.successChances(task.id);
      // Offline machines are skipped: a churned machine's (empty-queue) PCT
      // would otherwise advertise the best chance in the federation.
      double clusterChance = 0.0;
      for (int j = 0; j < ctx.numMachines(); ++j) {
        if (!ctx.machine(j).acceptsWork()) continue;
        const double chance = chances[static_cast<std::size_t>(j)];
        if (chance > clusterChance) clusterChance = chance;
      }
      if (clusterChance > bestChance) {
        bestChance = clusterChance;
        best = c;
      }
    }
    return best;
  }
};

}  // namespace

std::unique_ptr<RoutingPolicy> makeRoutingPolicy(RoutingPolicyKind kind) {
  switch (kind) {
    case RoutingPolicyKind::RoundRobin:
      return std::make_unique<RoundRobinPolicy>();
    case RoutingPolicyKind::LeastQueueDepth:
      return std::make_unique<LeastQueueDepthPolicy>();
    case RoutingPolicyKind::LeastExpectedCompletion:
      return std::make_unique<LeastExpectedCompletionPolicy>();
    case RoutingPolicyKind::MaxChance:
      return std::make_unique<MaxChancePolicy>();
  }
  throw std::invalid_argument("makeRoutingPolicy: unknown RoutingPolicyKind");
}

}  // namespace hcs::fed
