#include "fed/admission.h"

#include <stdexcept>
#include <vector>

namespace hcs::fed {

std::string_view toString(AdmissionPolicyKind kind) {
  switch (kind) {
    case AdmissionPolicyKind::AcceptAll: return "accept_all";
    case AdmissionPolicyKind::QueueBound: return "queue_bound";
    case AdmissionPolicyKind::ChanceThreshold: return "chance_threshold";
  }
  throw std::invalid_argument("toString: unknown AdmissionPolicyKind");
}

AdmissionPolicyKind parseAdmissionPolicy(const std::string& name) {
  if (name == "accept_all") return AdmissionPolicyKind::AcceptAll;
  if (name == "queue_bound") return AdmissionPolicyKind::QueueBound;
  if (name == "chance_threshold") return AdmissionPolicyKind::ChanceThreshold;
  throw std::invalid_argument(
      "parseAdmissionPolicy: unknown policy \"" + name +
      "\" (accept_all|queue_bound|chance_threshold)");
}

void AdmissionConfig::validate() const {
  if (policy == AdmissionPolicyKind::QueueBound && queueBound == 0) {
    throw std::invalid_argument(
        "AdmissionConfig: queue_bound must be >= 1 (0 admits nothing)");
  }
  if (policy == AdmissionPolicyKind::ChanceThreshold &&
      (chanceThreshold < 0.0 || chanceThreshold > 1.0)) {
    throw std::invalid_argument(
        "AdmissionConfig: chance_threshold must be in [0, 1]");
  }
}

namespace {

class AcceptAllPolicy final : public AdmissionPolicy {
 public:
  bool admit(const ClusterView&, const sim::Task&, sim::Time) override {
    return true;
  }
};

class QueueBoundPolicy final : public AdmissionPolicy {
 public:
  explicit QueueBoundPolicy(std::size_t bound) : bound_(bound) {}
  bool admit(const ClusterView& cluster, const sim::Task&,
             sim::Time) override {
    return clusterDepth(cluster) < bound_;
  }

 private:
  std::size_t bound_;
};

/// Eq. 2 as the admission criterion: the cluster must offer the task at
/// least `threshold` chance of on-time completion on one of the machines
/// accepting work (online and not draining).  A cluster with no accepting
/// machine admits nothing.
class ChanceThresholdPolicy final : public AdmissionPolicy {
 public:
  explicit ChanceThresholdPolicy(double threshold) : threshold_(threshold) {}
  bool admit(const ClusterView& cluster, const sim::Task& task,
             sim::Time) override {
    const std::vector<double> chances = cluster.ctx->successChances(task.id);
    for (std::size_t j = 0; j < chances.size(); ++j) {
      if (!(*cluster.machines)[j].acceptsWork()) continue;
      if (chances[j] >= threshold_) return true;
    }
    return false;
  }

 private:
  double threshold_;
};

}  // namespace

std::unique_ptr<AdmissionPolicy> makeAdmissionPolicy(
    const AdmissionConfig& config) {
  config.validate();
  switch (config.policy) {
    case AdmissionPolicyKind::AcceptAll:
      return std::make_unique<AcceptAllPolicy>();
    case AdmissionPolicyKind::QueueBound:
      return std::make_unique<QueueBoundPolicy>(config.queueBound);
    case AdmissionPolicyKind::ChanceThreshold:
      return std::make_unique<ChanceThresholdPolicy>(config.chanceThreshold);
  }
  throw std::invalid_argument(
      "makeAdmissionPolicy: unknown AdmissionPolicyKind");
}

}  // namespace hcs::fed
