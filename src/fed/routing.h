#pragma once
// Gateway routing policies of the federation tier: given the live state of
// every cluster, pick the cluster an arriving task is dispatched to.
//
// Policies range from state-free (round-robin) to fully probabilistic
// (QoS-chance-aware argmax, which reuses the Eq. 2 success-chance machinery
// — per-cluster MappingContext + PctCache — across clusters).  All ties
// break toward the lowest cluster index, so routing is deterministic and a
// 1-cluster federation degenerates to "always cluster 0".

#include <cstddef>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "heuristics/context.h"
#include "sim/machine.h"
#include "sim/task.h"
#include "sim/types.h"

namespace hcs::fed {

enum class RoutingPolicyKind {
  RoundRobin,               ///< cyclic, state-free
  LeastQueueDepth,          ///< fewest tasks in the cluster's system
  LeastExpectedCompletion,  ///< min over machines of ECT (scalar estimate)
  MaxChance,                ///< argmax of the best Eq. 2 success chance
};

/// Scenario-file spelling: "round_robin" | "least_queue" | "least_ect" |
/// "max_chance".
std::string_view toString(RoutingPolicyKind kind);

/// Inverse of toString; throws std::invalid_argument on unknown names.
RoutingPolicyKind parseRoutingPolicy(const std::string& name);

/// The slice of one cluster's live state the gateway may consult.  The
/// mapping context is persistent (owned by the federation engine) and has
/// been rebound to the routing decision's timestamp before route() runs.
struct ClusterView {
  const std::vector<sim::Machine>* machines = nullptr;
  /// Tasks waiting in the cluster scheduler's arrival (batch) queue.
  std::size_t batchQueueLength = 0;
  /// Tasks routed to this cluster but still in flight (dispatch latency).
  std::size_t inFlight = 0;
  heuristics::MappingContext* ctx = nullptr;
};

class RoutingPolicy {
 public:
  virtual ~RoutingPolicy() = default;

  /// Resets any internal state (e.g. the round-robin cursor) at the start
  /// of a trial, so trials are independent and reproducible.
  virtual void beginTrial() {}

  /// Picks the destination cluster for `task` arriving at `now`.  Must
  /// return an index in [0, clusters.size()).
  virtual std::size_t route(const std::vector<ClusterView>& clusters,
                            const sim::Task& task, sim::Time now) = 0;
};

std::unique_ptr<RoutingPolicy> makeRoutingPolicy(RoutingPolicyKind kind);

/// Tasks in a cluster's system as the gateway counts them: running + machine
/// queues + arrival queue + in-flight.  Exposed for tests and diagnostics.
std::size_t clusterDepth(const ClusterView& view);

}  // namespace hcs::fed
