#pragma once
// The Probabilistic Execution Time (PET) matrix: the execution-time
// distribution of each task type on each machine type (§II, §V-B).
//
// The paper built its 12 x 8 matrix by timing twelve SPECint benchmarks on
// eight physical machines and fitting Gamma means; those machines are not
// available here, so `specLike()` synthesizes a mean matrix with the same
// statistical structure (per-type base cost x per-machine speed x
// per-(type,machine) affinity jitter = inconsistent heterogeneity) and then
// applies the paper's recipe verbatim: for every (type, machine) pair, a
// histogram over 500 samples of a Gamma distribution with that mean and a
// shape drawn uniformly from [1, 20].  See DESIGN.md §7.

#include <memory>
#include <vector>

#include "prob/pmf.h"
#include "prob/rng.h"
#include "sim/types.h"

namespace hcs::workload {

/// Tuning knobs for specLike() synthesis.
struct PetSynthesisConfig {
  int numTaskTypes = 12;    ///< twelve SPECint benchmarks
  int numMachineTypes = 8;  ///< eight machines (§V-B, footnote 1)
  double binWidth = 1.0;

  /// Per-type base mean execution time, drawn uniformly from this range
  /// (time units).  Sized so that the default workloads oversubscribe an
  /// 8-machine cluster at the paper's 15k/20k/25k-equivalent intensities.
  double baseMeanLo = 4.0;
  double baseMeanHi = 24.0;

  /// Per-machine speed factor range (quantitative heterogeneity).
  double speedLo = 0.6;
  double speedHi = 1.8;

  /// Per-(type,machine) affinity jitter range (qualitative heterogeneity:
  /// task-machine affinity, e.g. GPU-friendly vs branchy workloads).
  double affinityLo = 0.5;
  double affinityHi = 2.0;

  /// Gamma shape range of the paper.
  double shapeLo = 1.0;
  double shapeHi = 20.0;

  /// Samples per histogram (paper: 500).
  std::size_t samplesPerHistogram = 500;
};

/// Immutable matrix of execution-time PMFs indexed by (task type, machine
/// type), with cached means.
class PetMatrix {
 public:
  /// Builds a matrix from explicit PMFs; pmfs[type][machineType].
  explicit PetMatrix(std::vector<std::vector<prob::DiscretePmf>> pmfs);

  /// Paper-recipe synthesis (see header comment).  Deterministic per seed.
  static PetMatrix specLike(const PetSynthesisConfig& config,
                            std::uint64_t seed);
  static PetMatrix specLike(std::uint64_t seed) {
    return specLike(PetSynthesisConfig{}, seed);
  }

  /// Builds an exact-mean matrix (Gamma histograms replaced by point-ish
  /// deterministic PMFs are NOT used; this still histograms Gammas but with
  /// the mean matrix given) — convenient for tests that need controlled
  /// heterogeneity.
  static PetMatrix fromMeans(const std::vector<std::vector<double>>& means,
                             double shape, std::uint64_t seed,
                             double binWidth = 1.0,
                             std::size_t samples = 500);

  /// A homogeneous variant: every machine column replaced by column
  /// `machineType` of this matrix (all machines identical, §V-F).
  PetMatrix homogenized(int machineType) const;

  int numTaskTypes() const { return static_cast<int>(pmfs_.size()); }
  int numMachineTypes() const {
    return static_cast<int>(pmfs_.front().size());
  }
  double binWidth() const { return pmfs_.front().front().binWidth(); }

  const prob::DiscretePmf& pet(sim::TaskType type, int machineType) const;
  double expectedExec(sim::TaskType type, int machineType) const;

  /// Mean execution time of a task type across machine types — the paper's
  /// avg_i in the deadline formula (Eq. 4).
  double typeMeanAcrossMachines(sim::TaskType type) const;

  /// Mean of typeMeanAcrossMachines over all types — the paper's avg_all.
  double overallMean() const;

 private:
  std::vector<std::vector<prob::DiscretePmf>> pmfs_;
  std::vector<std::vector<double>> means_;
  std::vector<double> typeMeans_;
  double overallMean_ = 0.0;
};

/// Binds a PetMatrix to a concrete cluster (machine -> machine type map),
/// implementing the simulator-facing ExecutionModel.  A heterogeneous
/// cluster maps machine i to type i; a homogeneous one maps every machine to
/// the same type.
class BoundExecutionModel final : public sim::ExecutionModel {
 public:
  BoundExecutionModel(std::shared_ptr<const PetMatrix> pet,
                      std::vector<int> machineTypes);

  /// Heterogeneous cluster with one machine per machine type.
  static BoundExecutionModel heterogeneous(std::shared_ptr<const PetMatrix> p);

  /// Homogeneous cluster: `numMachines` machines, all of `machineType`.
  static BoundExecutionModel homogeneous(std::shared_ptr<const PetMatrix> p,
                                         int numMachines, int machineType);

  int numMachines() const override {
    return static_cast<int>(machineTypes_.size());
  }
  int numTaskTypes() const override { return pet_->numTaskTypes(); }
  const prob::DiscretePmf& pet(sim::TaskType type,
                               sim::MachineId machine) const override;
  double expectedExec(sim::TaskType type,
                      sim::MachineId machine) const override;

  int machineType(sim::MachineId machine) const {
    return machineTypes_[static_cast<std::size_t>(machine)];
  }
  int machineTypeOf(sim::MachineId machine) const override {
    return machineType(machine);
  }
  const PetMatrix& matrix() const { return *pet_; }

 private:
  std::shared_ptr<const PetMatrix> pet_;
  std::vector<int> machineTypes_;
};

}  // namespace hcs::workload
