#include "workload/arrival.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace hcs::workload {

RateProfile::RateProfile(std::vector<Segment> segments)
    : segments_(std::move(segments)) {
  if (segments_.empty()) {
    throw std::invalid_argument("RateProfile: no segments");
  }
  double cum = 0.0;
  sim::Time cursor = 0.0;
  cumAtSegmentStart_.reserve(segments_.size());
  for (const Segment& s : segments_) {
    if (s.end <= s.start || s.rate < 0.0) {
      throw std::invalid_argument("RateProfile: malformed segment");
    }
    if (std::abs(s.start - cursor) > 1e-9) {
      throw std::invalid_argument("RateProfile: segments must be contiguous");
    }
    cumAtSegmentStart_.push_back(cum);
    cum += s.rate * (s.end - s.start);
    cursor = s.end;
  }
}

RateProfile RateProfile::constant(sim::Time span, double totalTasks) {
  if (span <= 0.0 || totalTasks <= 0.0) {
    throw std::invalid_argument("RateProfile::constant: invalid parameters");
  }
  return RateProfile({Segment{0.0, span, totalTasks / span}});
}

RateProfile RateProfile::spiky(sim::Time span, double totalTasks,
                               int numSpikes, double spikeFactor) {
  if (span <= 0.0 || totalTasks <= 0.0 || numSpikes <= 0 ||
      spikeFactor < 1.0) {
    throw std::invalid_argument("RateProfile::spiky: invalid parameters");
  }
  // Each period = lull + spike, spike = lull / 3 (paper: "Each spike lasts
  // for one third of the lull period").
  const sim::Time period = span / numSpikes;
  const sim::Time lull = period * 3.0 / 4.0;
  const sim::Time spike = period / 4.0;
  // Base rate so the expected total matches totalTasks:
  //   numSpikes * (lull * r + spike * spikeFactor * r) = totalTasks.
  const double r =
      totalTasks / (numSpikes * (lull + spike * spikeFactor));
  std::vector<Segment> segs;
  segs.reserve(static_cast<std::size_t>(numSpikes) * 2);
  sim::Time t = 0.0;
  for (int i = 0; i < numSpikes; ++i) {
    segs.push_back(Segment{t, t + lull, r});
    segs.push_back(Segment{t + lull, t + lull + spike, r * spikeFactor});
    t += period;
  }
  segs.back().end = span;  // absorb floating-point remainder
  return RateProfile(std::move(segs));
}

double RateProfile::rateAt(sim::Time t) const {
  for (const Segment& s : segments_) {
    if (t >= s.start && t < s.end) return s.rate;
  }
  return 0.0;
}

double RateProfile::cumulative(sim::Time t) const {
  double cum = 0.0;
  for (const Segment& s : segments_) {
    if (t <= s.start) break;
    cum += s.rate * (std::min(t, s.end) - s.start);
  }
  return cum;
}

sim::Time RateProfile::invertCumulative(double expected) const {
  if (expected <= 0.0) return segments_.front().start;
  for (std::size_t i = 0; i < segments_.size(); ++i) {
    const Segment& s = segments_[i];
    const double inSegment = expected - cumAtSegmentStart_[i];
    const double segmentMass = s.rate * (s.end - s.start);
    if (inSegment <= segmentMass) {
      if (s.rate == 0.0) return s.end;
      return s.start + inSegment / s.rate;
    }
  }
  return span();
}

namespace {

/// Lewis-Shedler thinning against the Gaussian burst-train intensity:
/// homogeneous exponential candidates at the intensity's ceiling
/// (base + peak), each kept with probability lambda(t) / ceiling.  The
/// task type of each accepted arrival is drawn uniformly, so the merged
/// stream needs no per-type sort pass.
std::vector<Arrival> generateBurstyArrivals(const ArrivalSpec& spec,
                                            prob::Rng& rng) {
  if (spec.span <= 0.0 || spec.burstBaseRate < 0.0 ||
      spec.burstPeakRate < 0.0 ||
      spec.burstBaseRate + spec.burstPeakRate <= 0.0 ||
      spec.burstWidth <= 0.0 || spec.burstPeriod <= 0.0) {
    throw std::invalid_argument("generateArrivals: invalid bursty spec");
  }
  // Majorant for the thinning: at the worst phase the Gaussian train sums
  // to 1 (its own center) plus two tails per neighbouring burst, so bound
  // the train by 1 + 2 * sum_k exp(-(k*period/width)^2 / 2).  For the
  // usual width << period this is 1 to machine precision (ceiling =
  // base + peak, the burst_stress construction); for overlapping bursts it
  // keeps lambda(t) <= ceiling, which thinning correctness requires.
  double trainBound = 1.0;
  for (int k = 1; k <= 64; ++k) {
    const double z = static_cast<double>(k) * spec.burstPeriod /
                     spec.burstWidth;
    const double tail = 2.0 * std::exp(-0.5 * z * z);
    if (tail < 1e-12) break;
    trainBound += tail;
  }
  const double ceiling =
      spec.burstBaseRate + spec.burstPeakRate * trainBound;
  // Centers farther than ~9 widths contribute below one double ulp of the
  // base rate, so the intensity only scans the O(1) nearby centers — the
  // evaluation stays cheap for any span/period ratio.
  const double reach = 9.0 * spec.burstWidth;
  const double firstCenter = spec.burstPeriod / 2;
  auto intensity = [&](double t) {
    double rate = spec.burstBaseRate;
    double k =
        std::ceil((t - reach - firstCenter) / spec.burstPeriod);
    if (k < 0.0) k = 0.0;
    for (double c = firstCenter + k * spec.burstPeriod;
         c < spec.span && c <= t + reach; c += spec.burstPeriod) {
      const double z = (t - c) / spec.burstWidth;
      rate += spec.burstPeakRate * std::exp(-0.5 * z * z);
    }
    return rate;
  };
  std::vector<Arrival> arrivals;
  arrivals.reserve(static_cast<std::size_t>(
      std::min(ceiling * spec.span, 1e6)));
  double t = 0.0;
  while (true) {
    t += -std::log(1.0 - rng.uniform01()) / ceiling;
    if (t >= spec.span) break;
    if (rng.uniform01() * ceiling > intensity(t)) continue;
    const auto type = static_cast<sim::TaskType>(
        rng.uniformInt(0, spec.numTaskTypes - 1));
    arrivals.push_back(Arrival{type, t});
  }
  return arrivals;
}

}  // namespace

std::vector<Arrival> generateArrivals(const ArrivalSpec& spec,
                                      prob::Rng& rng) {
  if (spec.numTaskTypes <= 0 ||
      (spec.totalTasks == 0 && spec.pattern != ArrivalPattern::Bursty)) {
    throw std::invalid_argument("generateArrivals: invalid spec");
  }
  if (spec.pattern == ArrivalPattern::Bursty) {
    return generateBurstyArrivals(spec, rng);
  }
  const double perType = static_cast<double>(spec.totalTasks) /
                         static_cast<double>(spec.numTaskTypes);
  // Unit-mean Gamma gaps with the paper's variance discipline.
  const double variance = spec.gapVarianceFraction;
  const double shape = 1.0 / variance;  // mean^2 / var with mean = 1
  const double scale = variance;        // mean / shape

  std::vector<Arrival> arrivals;
  arrivals.reserve(spec.totalTasks + spec.totalTasks / 8);
  for (sim::TaskType type = 0; type < spec.numTaskTypes; ++type) {
    const RateProfile profile =
        spec.pattern == ArrivalPattern::Constant
            ? RateProfile::constant(spec.span, perType)
            : RateProfile::spiky(spec.span, perType, spec.numSpikes,
                                 spec.spikeFactor);
    const double total = profile.totalExpected();
    // Offset the first arrival by a random fraction of a gap so types do not
    // all fire at t=0 in lock step.
    double position = rng.uniform01() * rng.gamma(shape, scale);
    while (position < total) {
      arrivals.push_back(Arrival{type, profile.invertCumulative(position)});
      position += rng.gamma(shape, scale);
    }
  }
  std::sort(arrivals.begin(), arrivals.end(),
            [](const Arrival& a, const Arrival& b) {
              if (a.time != b.time) return a.time < b.time;
              return a.type < b.type;
            });
  return arrivals;
}

}  // namespace hcs::workload
