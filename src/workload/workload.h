#pragma once
// A workload trial: the full, time-sorted list of task specs fed to one
// simulation run, plus the warm-up/cool-down trimming mask of §V-B
// ("The first and last 100 tasks in each workload trial are removed from
// the data").

#include <cstdint>
#include <vector>

#include "sim/types.h"
#include "workload/arrival.h"
#include "workload/deadline.h"
#include "workload/pet_matrix.h"

namespace hcs::workload {

struct TaskSpec {
  sim::TaskType type = 0;
  sim::Time arrival = 0;
  sim::Time deadline = 0;
  double value = 1.0;  ///< relative worth (priority-aware pruning, §VII)
};

/// One trial's task list.  Immutable after construction.
class Workload {
 public:
  Workload(std::vector<TaskSpec> tasks, int numTaskTypes);

  /// Generates a trial: arrivals per `arrivalSpec`, deadlines per
  /// `deadlineSpec` against the PET matrix.  Deterministic per seed —
  /// reruns with the same seed reproduce the trial exactly, which stands in
  /// for the paper's published trace files (dead link; DESIGN.md §7).
  static Workload generate(const PetMatrix& pet, const ArrivalSpec& arrival,
                           const DeadlineSpec& deadline, std::uint64_t seed);

  const std::vector<TaskSpec>& tasks() const { return tasks_; }
  std::size_t size() const { return tasks_.size(); }
  int numTaskTypes() const { return numTaskTypes_; }

  /// Mask (parallel to tasks(), by creation index) marking which tasks
  /// count toward robustness after trimming the first and last `margin`
  /// arrivals.
  std::vector<bool> countedMask(std::size_t margin = 100) const;

 private:
  std::vector<TaskSpec> tasks_;
  int numTaskTypes_ = 0;
};

}  // namespace hcs::workload
