#pragma once
// Pull-based arrival sources: the streaming twin of Workload.
//
// A Workload materializes a whole trial up front — fine for the paper's
// 15k-25k task experiments, linear in memory for the million-task service
// mode the roadmap targets.  A TaskStream produces the same TaskSpec
// sequence one pop at a time, so a trial never holds more than the
// in-flight window of tasks:
//
//  - GeneratedTaskStream reproduces Workload::generate EXACTLY (same seed,
//    same fork sequence, same draws) for every arrival pattern.  The
//    constant/spiky patterns draw per-type gap sequences from one shared
//    RNG; the stream snapshots that RNG at each type's start during a
//    value-free replay of the draw loop (O(types) memory), then re-draws
//    each type lazily and k-way-merges the per-type streams on
//    (time, type) — the exact order the eager sort produces.  The bursty
//    IPPP pattern is a single Lewis-Shedler thinning loop and streams
//    directly.
//  - WorkloadStream adapts an existing materialized Workload (replay,
//    tests, the byte-identity oracle).
//  - trace_io.h adds TraceTaskStream (saved hcs-workload traces) and
//    CsvTaskStream (Azure Functions / Borg-style cluster traces).
//  - LimitedTaskStream applies the scenario `stream` block's max_tasks /
//    max_time cutoffs to any source.
//
// Streams validate online what the Workload constructor validates up
// front: nondecreasing arrivals, type range, deadline >= arrival,
// positive value.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "prob/rng.h"
#include "sim/types.h"
#include "workload/arrival.h"
#include "workload/deadline.h"
#include "workload/pet_matrix.h"
#include "workload/workload.h"

namespace hcs::workload {

/// Pull-based source of one trial's task sequence, sorted by arrival.
class TaskStream {
 public:
  virtual ~TaskStream() = default;

  int numTaskTypes() const { return numTaskTypes_; }

  /// The next task, without consuming it; nullptr once the stream is
  /// exhausted.  The pointer is valid until the next pop().
  const TaskSpec* peek();

  /// Consumes and returns the next task; throws std::logic_error when the
  /// stream is exhausted (callers gate on peek()).
  TaskSpec pop();

 protected:
  explicit TaskStream(int numTaskTypes);

  /// Produces the next task spec; false once the source is exhausted.
  virtual bool produce(TaskSpec& out) = 0;

 private:
  void refill();

  TaskSpec buffered_{};
  bool haveBuffered_ = false;
  bool exhausted_ = false;
  bool first_ = true;
  sim::Time lastArrival_ = 0;
  int numTaskTypes_ = 0;
};

/// Streams Workload::generate(pet, arrival, deadline, seed) without ever
/// materializing it: popping the whole stream yields the exact TaskSpec
/// sequence (bit-for-bit, deadlines included) of the eager generator.
class GeneratedTaskStream : public TaskStream {
 public:
  /// `pet` must outlive the stream.
  GeneratedTaskStream(const PetMatrix& pet, const ArrivalSpec& arrival,
                      const DeadlineSpec& deadline, std::uint64_t seed);

 protected:
  bool produce(TaskSpec& out) override;

 private:
  /// One task type's lazy gap-sequence replay (constant/spiky patterns).
  struct TypeCursor {
    prob::Rng rng;          ///< snapshot at this type's draw-loop start
    double position = 0.0;  ///< cumulative expected-arrival index
    bool started = false;
    bool done = false;
    sim::Time nextTime = 0;

    explicit TypeCursor(prob::Rng snapshot) : rng(std::move(snapshot)) {}
  };

  void advanceType(std::size_t k);
  bool nextArrival(Arrival& out);
  bool nextBurstyArrival(Arrival& out);

  const PetMatrix& pet_;
  ArrivalSpec arrival_;
  DeadlineSpec deadline_;
  prob::Rng deadlineRng_;

  // Constant/spiky machinery (one profile: every type shares the shape).
  std::vector<TypeCursor> cursors_;
  std::unique_ptr<RateProfile> profile_;
  double totalExpected_ = 0.0;
  double gapShape_ = 0.0;
  double gapScale_ = 0.0;

  // Bursty (IPPP / Lewis-Shedler) machinery.
  prob::Rng burstyRng_;
  double burstyCeiling_ = 0.0;
  double burstyReach_ = 0.0;
  double burstyFirstCenter_ = 0.0;
  double burstyT_ = 0.0;
};

/// Adapts a materialized Workload to the pull interface (replay and the
/// streamed-vs-materialized oracle tests).  `workload` must outlive the
/// stream.
class WorkloadStream : public TaskStream {
 public:
  explicit WorkloadStream(const Workload& workload);

 protected:
  bool produce(TaskSpec& out) override;

 private:
  const Workload& workload_;
  std::size_t cursor_ = 0;
};

/// Applies the scenario `stream` block's cutoffs to any source: stop after
/// `maxTasks` pops (0 = unlimited) or at the first arrival past `maxTime`
/// (0 = unlimited).
class LimitedTaskStream : public TaskStream {
 public:
  LimitedTaskStream(std::unique_ptr<TaskStream> inner, std::uint64_t maxTasks,
                    sim::Time maxTime);

 protected:
  bool produce(TaskSpec& out) override;

 private:
  std::unique_ptr<TaskStream> inner_;
  std::uint64_t maxTasks_ = 0;
  sim::Time maxTime_ = 0;
  std::uint64_t emitted_ = 0;
};

/// The scenario `stream` block, resolved: how a streamed trial sources its
/// arrivals.  An empty `trace` generates from the experiment's arrival and
/// deadline specs; otherwise the named trace file is replayed in the given
/// format.
struct StreamSpec {
  bool enabled = false;
  std::uint64_t maxTasks = 0;  ///< cutoff after this many tasks (0 = off)
  sim::Time maxTime = 0;       ///< cutoff past this arrival time (0 = off)
  std::string trace;           ///< trace file to replay; empty = generate
  std::string format = "hcs";  ///< "hcs" | "azure" | "borg"
  double deadlineSlack = 1.0;  ///< CSV: deadline = arrival + slack * runtime
  double timeScale = 1.0;      ///< CSV: multiplier on trace timestamps
};

/// Builds the TaskStream a streamed trial runs on, per `spec`: a
/// GeneratedTaskStream seeded like Workload::generate, or a trace reader,
/// wrapped in the cutoffs when any are set.  `pet` must outlive the stream.
std::unique_ptr<TaskStream> openTaskStream(const StreamSpec& spec,
                                           const PetMatrix& pet,
                                           const ArrivalSpec& arrival,
                                           const DeadlineSpec& deadline,
                                           std::uint64_t seed);

}  // namespace hcs::workload
