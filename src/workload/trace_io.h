#pragma once
// Plain-text persistence for workload trials, and streaming trace replay.
//
// The paper published its workload trials for reproducibility (§V-B, the
// git.io link is dead); this module provides the equivalent: trials
// generated here can be saved, shared, and replayed bit-for-bit.
//
// Format (line-oriented, '#' comments allowed):
//   hcs-workload v2 <numTaskTypes>
//   <type> <arrival> <deadline> <value>   (one per task, sorted by arrival)
// v1 traces (three columns, value implicitly 1.0) are still read.
//
// TraceTaskStream replays the same format one record at a time (O(1)
// memory), and CsvTaskStream replays external cluster traces — Azure
// Functions invocation logs and Borg-style task events — mapped onto the
// simulator's task model.  Both reject malformed, truncated, and
// out-of-order records with the offending line number.

#include <fstream>
#include <iosfwd>
#include <string>

#include "workload/stream.h"
#include "workload/workload.h"

namespace hcs::workload {

void saveWorkload(const Workload& workload, std::ostream& out);
void saveWorkloadFile(const Workload& workload, const std::string& path);

/// Throws std::runtime_error on malformed input.
Workload loadWorkload(std::istream& in);
Workload loadWorkloadFile(const std::string& path);

/// Streams a saved hcs-workload trace record by record.  A header-only
/// trace is a valid empty stream.  Malformed records, a truncated final
/// record, and out-of-order arrivals throw std::runtime_error naming the
/// file and line.
class TraceTaskStream : public TaskStream {
 public:
  explicit TraceTaskStream(const std::string& path);

 protected:
  bool produce(TaskSpec& out) override;

 private:
  struct Opened {
    std::ifstream in;
    int numTaskTypes = 0;
    bool hasValues = true;
    std::size_t lineNo = 1;
  };
  static Opened open(const std::string& path);
  TraceTaskStream(Opened opened, std::string path);

  std::ifstream in_;
  std::string path_;
  bool hasValues_ = true;
  std::size_t lineNo_ = 1;
  bool firstRecord_ = true;
  sim::Time lastArrival_ = 0;
};

/// External cluster-trace formats CsvTaskStream understands.
enum class CsvTraceFormat {
  Azure,  ///< rows: timestamp,function,duration   (Azure Functions style)
  Borg,   ///< rows: time,jobid,priority,runtime   (Borg-style task events)
};

struct CsvTraceOptions {
  int numTaskTypes = 12;       ///< key hash is mapped onto this many types
  double deadlineSlack = 1.0;  ///< deadline = arrival + slack * runtime
  double timeScale = 1.0;      ///< multiplier on trace timestamps/runtimes
};

/// Streams an external CSV cluster trace as TaskSpecs: the function/job key
/// is hashed (FNV-1a) onto a task type, the record's runtime sets the
/// deadline via `deadlineSlack`, and Borg priorities become task values
/// (max(1.0, priority)).  One leading non-numeric header line is skipped
/// automatically.  Errors name the file and line.
class CsvTaskStream : public TaskStream {
 public:
  CsvTaskStream(const std::string& path, CsvTraceFormat format,
                const CsvTraceOptions& options);

 protected:
  bool produce(TaskSpec& out) override;

 private:
  std::ifstream in_;
  std::string path_;
  CsvTraceFormat format_;
  CsvTraceOptions options_;
  std::size_t lineNo_ = 0;
  bool checkedHeader_ = false;
  bool firstRecord_ = true;
  sim::Time lastArrival_ = 0;
};

}  // namespace hcs::workload
