#pragma once
// Plain-text persistence for workload trials.
//
// The paper published its workload trials for reproducibility (§V-B, the
// git.io link is dead); this module provides the equivalent: trials
// generated here can be saved, shared, and replayed bit-for-bit.
//
// Format (line-oriented, '#' comments allowed):
//   hcs-workload v2 <numTaskTypes>
//   <type> <arrival> <deadline> <value>   (one per task, sorted by arrival)
// v1 traces (three columns, value implicitly 1.0) are still read.

#include <iosfwd>
#include <string>

#include "workload/workload.h"

namespace hcs::workload {

void saveWorkload(const Workload& workload, std::ostream& out);
void saveWorkloadFile(const Workload& workload, const std::string& path);

/// Throws std::runtime_error on malformed input.
Workload loadWorkload(std::istream& in);
Workload loadWorkloadFile(const std::string& path);

}  // namespace hcs::workload
