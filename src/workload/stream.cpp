#include "workload/stream.h"

#include <cmath>
#include <stdexcept>
#include <utility>

#include "workload/trace_io.h"

namespace hcs::workload {

TaskStream::TaskStream(int numTaskTypes) : numTaskTypes_(numTaskTypes) {
  if (numTaskTypes_ <= 0) {
    throw std::invalid_argument("TaskStream: need at least one task type");
  }
}

void TaskStream::refill() {
  if (haveBuffered_ || exhausted_) return;
  TaskSpec next;
  if (!produce(next)) {
    exhausted_ = true;
    return;
  }
  // The Workload constructor's validation, applied online: the stream must
  // deliver exactly what a materialized trial would have been allowed to
  // hold.
  if (next.type < 0 || next.type >= numTaskTypes_) {
    throw std::runtime_error("TaskStream: task type out of range");
  }
  if (next.deadline < next.arrival) {
    throw std::runtime_error("TaskStream: deadline precedes arrival");
  }
  if (next.value <= 0.0) {
    throw std::runtime_error("TaskStream: task value must be positive");
  }
  if (!first_ && next.arrival < lastArrival_) {
    throw std::runtime_error("TaskStream: arrivals must be nondecreasing");
  }
  first_ = false;
  lastArrival_ = next.arrival;
  buffered_ = next;
  haveBuffered_ = true;
}

const TaskSpec* TaskStream::peek() {
  refill();
  return haveBuffered_ ? &buffered_ : nullptr;
}

TaskSpec TaskStream::pop() {
  refill();
  if (!haveBuffered_) {
    throw std::logic_error("TaskStream::pop: stream is exhausted");
  }
  haveBuffered_ = false;
  return buffered_;
}

GeneratedTaskStream::GeneratedTaskStream(const PetMatrix& pet,
                                         const ArrivalSpec& arrival,
                                         const DeadlineSpec& deadline,
                                         std::uint64_t seed)
    : TaskStream(arrival.numTaskTypes),
      pet_(pet),
      arrival_(arrival),
      deadline_(deadline),
      deadlineRng_(0),
      burstyRng_(0) {
  if (arrival.numTaskTypes != pet.numTaskTypes()) {
    throw std::invalid_argument(
        "GeneratedTaskStream: arrival spec / PET matrix type count mismatch");
  }
  if (arrival.totalTasks == 0 && arrival.pattern != ArrivalPattern::Bursty) {
    throw std::invalid_argument("GeneratedTaskStream: invalid spec");
  }
  // The exact fork sequence of Workload::generate, so the streamed trial is
  // draw-for-draw the materialized trial.
  prob::Rng rng(seed);
  prob::Rng arrivalRng = rng.fork();
  deadlineRng_ = rng.fork();

  if (arrival_.pattern == ArrivalPattern::Bursty) {
    if (arrival_.span <= 0.0 || arrival_.burstBaseRate < 0.0 ||
        arrival_.burstPeakRate < 0.0 ||
        arrival_.burstBaseRate + arrival_.burstPeakRate <= 0.0 ||
        arrival_.burstWidth <= 0.0 || arrival_.burstPeriod <= 0.0) {
      throw std::invalid_argument("GeneratedTaskStream: invalid bursty spec");
    }
    // Same majorant as the eager thinning loop (see arrival.cpp): the
    // Gaussian train is bounded by its center plus two tails per neighbour.
    double trainBound = 1.0;
    for (int k = 1; k <= 64; ++k) {
      const double z = static_cast<double>(k) * arrival_.burstPeriod /
                       arrival_.burstWidth;
      const double tail = 2.0 * std::exp(-0.5 * z * z);
      if (tail < 1e-12) break;
      trainBound += tail;
    }
    burstyCeiling_ = arrival_.burstBaseRate + arrival_.burstPeakRate * trainBound;
    burstyReach_ = 9.0 * arrival_.burstWidth;
    burstyFirstCenter_ = arrival_.burstPeriod / 2;
    burstyRng_ = std::move(arrivalRng);
    return;
  }

  const double perType = static_cast<double>(arrival_.totalTasks) /
                         static_cast<double>(arrival_.numTaskTypes);
  const double variance = arrival_.gapVarianceFraction;
  gapShape_ = 1.0 / variance;
  gapScale_ = variance;
  // Every type draws over the same profile shape; one instance serves all.
  profile_ = std::make_unique<RateProfile>(
      arrival_.pattern == ArrivalPattern::Constant
          ? RateProfile::constant(arrival_.span, perType)
          : RateProfile::spiky(arrival_.span, perType, arrival_.numSpikes,
                               arrival_.spikeFactor));
  totalExpected_ = profile_->totalExpected();

  // The eager generator draws every type's gap sequence from ONE shared
  // RNG, type by type.  Snapshot the RNG at each type's start (the
  // generator is copyable), then replay that type's draws value-free so the
  // next snapshot lands where the eager loop would be.  Each TypeCursor
  // later re-draws its own sequence lazily from its snapshot.
  cursors_.reserve(static_cast<std::size_t>(arrival_.numTaskTypes));
  for (sim::TaskType type = 0; type < arrival_.numTaskTypes; ++type) {
    cursors_.emplace_back(arrivalRng);
    double position =
        arrivalRng.uniform01() * arrivalRng.gamma(gapShape_, gapScale_);
    while (position < totalExpected_) {
      position += arrivalRng.gamma(gapShape_, gapScale_);
    }
  }
  for (std::size_t k = 0; k < cursors_.size(); ++k) advanceType(k);
}

void GeneratedTaskStream::advanceType(std::size_t k) {
  TypeCursor& c = cursors_[k];
  if (!c.started) {
    c.started = true;
    c.position = c.rng.uniform01() * c.rng.gamma(gapShape_, gapScale_);
  } else {
    c.position += c.rng.gamma(gapShape_, gapScale_);
  }
  if (c.position < totalExpected_) {
    c.nextTime = profile_->invertCumulative(c.position);
  } else {
    c.done = true;
  }
}

bool GeneratedTaskStream::nextArrival(Arrival& out) {
  // K-way merge on (time, type): per-type times are nondecreasing, so this
  // is exactly the order the eager generator's sort produces.  Scanning
  // types in ascending order with a strict < keeps the lowest type on time
  // ties, matching the sort's tie-break.
  std::size_t best = cursors_.size();
  for (std::size_t k = 0; k < cursors_.size(); ++k) {
    if (cursors_[k].done) continue;
    if (best == cursors_.size() ||
        cursors_[k].nextTime < cursors_[best].nextTime) {
      best = k;
    }
  }
  if (best == cursors_.size()) return false;
  out.type = static_cast<sim::TaskType>(best);
  out.time = cursors_[best].nextTime;
  advanceType(best);
  return true;
}

bool GeneratedTaskStream::nextBurstyArrival(Arrival& out) {
  // The eager Lewis-Shedler thinning loop, paused between acceptances.
  const auto intensity = [&](double t) {
    double rate = arrival_.burstBaseRate;
    double k = std::ceil((t - burstyReach_ - burstyFirstCenter_) /
                         arrival_.burstPeriod);
    if (k < 0.0) k = 0.0;
    for (double c = burstyFirstCenter_ + k * arrival_.burstPeriod;
         c < arrival_.span && c <= t + burstyReach_;
         c += arrival_.burstPeriod) {
      const double z = (t - c) / arrival_.burstWidth;
      rate += arrival_.burstPeakRate * std::exp(-0.5 * z * z);
    }
    return rate;
  };
  while (true) {
    burstyT_ += -std::log(1.0 - burstyRng_.uniform01()) / burstyCeiling_;
    if (burstyT_ >= arrival_.span) return false;
    if (burstyRng_.uniform01() * burstyCeiling_ > intensity(burstyT_)) {
      continue;
    }
    out.type = static_cast<sim::TaskType>(
        burstyRng_.uniformInt(0, arrival_.numTaskTypes - 1));
    out.time = burstyT_;
    return true;
  }
}

bool GeneratedTaskStream::produce(TaskSpec& out) {
  Arrival a;
  const bool have = arrival_.pattern == ArrivalPattern::Bursty
                        ? nextBurstyArrival(a)
                        : nextArrival(a);
  if (!have) return false;
  out.type = a.type;
  out.arrival = a.time;
  // Deadlines pop in merged (sorted) order — the exact order the eager
  // generator assigns them in, so the deadline stream stays draw-for-draw.
  out.deadline = assignDeadline(pet_, a.type, a.time, deadline_, deadlineRng_);
  out.value = 1.0;
  return true;
}

WorkloadStream::WorkloadStream(const Workload& workload)
    : TaskStream(workload.numTaskTypes()), workload_(workload) {}

bool WorkloadStream::produce(TaskSpec& out) {
  if (cursor_ >= workload_.size()) return false;
  out = workload_.tasks()[cursor_++];
  return true;
}

LimitedTaskStream::LimitedTaskStream(std::unique_ptr<TaskStream> inner,
                                     std::uint64_t maxTasks, sim::Time maxTime)
    : TaskStream(inner->numTaskTypes()),
      inner_(std::move(inner)),
      maxTasks_(maxTasks),
      maxTime_(maxTime) {}

bool LimitedTaskStream::produce(TaskSpec& out) {
  if (maxTasks_ > 0 && emitted_ >= maxTasks_) return false;
  const TaskSpec* next = inner_->peek();
  if (next == nullptr) return false;
  if (maxTime_ > 0 && next->arrival > maxTime_) return false;
  out = inner_->pop();
  ++emitted_;
  return true;
}

std::unique_ptr<TaskStream> openTaskStream(const StreamSpec& spec,
                                           const PetMatrix& pet,
                                           const ArrivalSpec& arrival,
                                           const DeadlineSpec& deadline,
                                           std::uint64_t seed) {
  std::unique_ptr<TaskStream> stream;
  if (spec.trace.empty()) {
    stream =
        std::make_unique<GeneratedTaskStream>(pet, arrival, deadline, seed);
  } else if (spec.format == "hcs") {
    stream = std::make_unique<TraceTaskStream>(spec.trace);
  } else if (spec.format == "azure" || spec.format == "borg") {
    CsvTraceOptions options;
    options.numTaskTypes = arrival.numTaskTypes;
    options.deadlineSlack = spec.deadlineSlack;
    options.timeScale = spec.timeScale;
    stream = std::make_unique<CsvTaskStream>(
        spec.trace,
        spec.format == "azure" ? CsvTraceFormat::Azure : CsvTraceFormat::Borg,
        options);
  } else {
    throw std::invalid_argument("openTaskStream: unknown trace format \"" +
                                spec.format + "\"");
  }
  if (spec.maxTasks > 0 || spec.maxTime > 0) {
    stream = std::make_unique<LimitedTaskStream>(std::move(stream),
                                                 spec.maxTasks, spec.maxTime);
  }
  return stream;
}

}  // namespace hcs::workload
