#pragma once
// Arrival-pattern generation (§V-B, Fig. 6).
//
// Two patterns:
//  (A) Constant rate — per task type, inter-arrival gaps drawn from a Gamma
//      distribution whose variance is 10% of its mean.
//  (B) Variable rate ("spiky") — the default: periodic spikes during which
//      the arrival rate rises to three times the base (lull) rate; each
//      spike lasts one third of the lull period.
//
// Both are realized through a piecewise-constant RateProfile and
// time-rescaling: gaps are drawn in *expected-arrival-index* space (mean 1,
// variance 0.1) and mapped back through the inverse cumulative rate, which
// preserves the Gamma inter-arrival discipline within every constant-rate
// segment while following the profile exactly.

#include <cstdint>
#include <vector>

#include "prob/rng.h"
#include "sim/types.h"

namespace hcs::workload {

enum class ArrivalPattern {
  Constant,
  Spiky,
  /// Inhomogeneous Poisson point process (IPPP) with a Gaussian burst-train
  /// intensity, realized by Lewis-Shedler thinning — the construction of
  /// examples/burst_stress.cpp promoted to a first-class pattern:
  ///   lambda(t) = base + peak * sum_k exp(-((t - c_k) / width)^2 / 2)
  /// with burst centers c_k at period/2, 3*period/2, ...  Rates are
  /// absolute (tasks per time unit across ALL types); task types are drawn
  /// uniformly per arrival, so `totalTasks` is ignored.
  Bursty,
};

/// A piecewise-constant arrival-rate function on [0, span).
class RateProfile {
 public:
  struct Segment {
    sim::Time start = 0;
    sim::Time end = 0;
    double rate = 0;  ///< tasks per time unit
  };

  explicit RateProfile(std::vector<Segment> segments);

  /// Flat profile delivering `totalTasks` over `span`.
  static RateProfile constant(sim::Time span, double totalTasks);

  /// Spiky profile delivering `totalTasks` over `span` with `numSpikes`
  /// spikes of `spikeFactor` x the lull rate, each spike lasting one third
  /// of the lull period (paper defaults).
  static RateProfile spiky(sim::Time span, double totalTasks, int numSpikes,
                           double spikeFactor = 3.0);

  sim::Time span() const { return segments_.back().end; }
  const std::vector<Segment>& segments() const { return segments_; }

  double rateAt(sim::Time t) const;

  /// Integral of the rate over [0, t] (expected arrivals by t).
  double cumulative(sim::Time t) const;

  /// Total expected arrivals over the whole span.
  double totalExpected() const { return cumulative(span()); }

  /// Inverse of cumulative(): the time by which `expected` arrivals have
  /// accumulated.  Returns span() if `expected` exceeds the total.
  sim::Time invertCumulative(double expected) const;

 private:
  std::vector<Segment> segments_;
  std::vector<double> cumAtSegmentStart_;
};

/// One generated arrival (deadlines are attached later; see deadline.h).
struct Arrival {
  sim::TaskType type = 0;
  sim::Time time = 0;
};

struct ArrivalSpec {
  ArrivalPattern pattern = ArrivalPattern::Spiky;
  sim::Time span = 1200;         ///< workload time span (time units)
  std::size_t totalTasks = 1500; ///< across all task types
  int numTaskTypes = 12;
  int numSpikes = 6;
  double spikeFactor = 3.0;
  /// Gamma gap discipline: variance of the unit-mean gap distribution
  /// (paper: variance is 10% of the mean).
  double gapVarianceFraction = 0.1;

  /// Bursty (IPPP) pattern only — see ArrivalPattern::Bursty.
  double burstBaseRate = 0.0;  ///< lull arrivals per time unit (all types)
  double burstPeakRate = 0.0;  ///< extra rate at a burst center
  double burstWidth = 1.0;     ///< burst standard deviation (time units)
  double burstPeriod = 0.0;    ///< burst spacing (time units)
};

/// Generates the merged, time-sorted arrival list for all task types.
/// Each type gets an equal share of the total and its own independent
/// arrival stream over the same profile shape.
std::vector<Arrival> generateArrivals(const ArrivalSpec& spec, prob::Rng& rng);

}  // namespace hcs::workload
