#include "workload/trace_io.h"

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>
#include <utility>
#include <vector>

namespace hcs::workload {

namespace {

[[noreturn]] void failAt(const std::string& path, std::size_t lineNo,
                         const std::string& what) {
  throw std::runtime_error(path + ": " + what + " on line " +
                           std::to_string(lineNo));
}

std::uint64_t fnv1a(const std::string& key) {
  std::uint64_t hash = 1469598103934665603ull;
  for (unsigned char c : key) {
    hash ^= c;
    hash *= 1099511628211ull;
  }
  return hash;
}

std::vector<std::string> splitCsv(const std::string& line) {
  std::vector<std::string> fields;
  std::size_t start = 0;
  while (true) {
    const std::size_t comma = line.find(',', start);
    if (comma == std::string::npos) {
      fields.push_back(line.substr(start));
      return fields;
    }
    fields.push_back(line.substr(start, comma - start));
    start = comma + 1;
  }
}

bool parseDouble(const std::string& field, double& out) {
  const char* begin = field.c_str();
  char* end = nullptr;
  out = std::strtod(begin, &end);
  if (end == begin) return false;
  while (*end == ' ' || *end == '\t' || *end == '\r') ++end;
  return *end == '\0';
}

}  // namespace

void saveWorkload(const Workload& workload, std::ostream& out) {
  out << "hcs-workload v2 " << workload.numTaskTypes() << "\n";
  out << std::setprecision(17);
  for (const TaskSpec& t : workload.tasks()) {
    out << t.type << ' ' << t.arrival << ' ' << t.deadline << ' ' << t.value
        << "\n";
  }
}

void saveWorkloadFile(const Workload& workload, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("saveWorkloadFile: cannot open " + path);
  }
  saveWorkload(workload, out);
}

Workload loadWorkload(std::istream& in) {
  std::string line;
  if (!std::getline(in, line)) {
    throw std::runtime_error("loadWorkload: empty input");
  }
  std::istringstream header(line);
  std::string magic, version;
  int numTaskTypes = 0;
  header >> magic >> version >> numTaskTypes;
  if (magic != "hcs-workload" || (version != "v1" && version != "v2") ||
      numTaskTypes <= 0) {
    throw std::runtime_error("loadWorkload: bad header: " + line);
  }
  const bool hasValues = version == "v2";
  std::vector<TaskSpec> tasks;
  std::size_t lineNo = 1;
  while (std::getline(in, line)) {
    ++lineNo;
    if (line.empty() || line.front() == '#') continue;
    std::istringstream row(line);
    TaskSpec t;
    if (!(row >> t.type >> t.arrival >> t.deadline)) {
      throw std::runtime_error("loadWorkload: malformed line " +
                               std::to_string(lineNo));
    }
    if (hasValues && !(row >> t.value)) {
      throw std::runtime_error("loadWorkload: missing value on line " +
                               std::to_string(lineNo));
    }
    tasks.push_back(t);
  }
  return Workload(std::move(tasks), numTaskTypes);
}

Workload loadWorkloadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("loadWorkloadFile: cannot open " + path);
  }
  return loadWorkload(in);
}

TraceTaskStream::Opened TraceTaskStream::open(const std::string& path) {
  Opened opened;
  opened.in.open(path);
  if (!opened.in) {
    throw std::runtime_error("TraceTaskStream: cannot open " + path);
  }
  std::string line;
  if (!std::getline(opened.in, line)) {
    throw std::runtime_error("TraceTaskStream: " + path + " is empty");
  }
  std::istringstream header(line);
  std::string magic, version;
  header >> magic >> version >> opened.numTaskTypes;
  if (magic != "hcs-workload" || (version != "v1" && version != "v2") ||
      opened.numTaskTypes <= 0) {
    throw std::runtime_error("TraceTaskStream: bad header in " + path + ": " +
                             line);
  }
  opened.hasValues = version == "v2";
  return opened;
}

TraceTaskStream::TraceTaskStream(const std::string& path)
    : TraceTaskStream(open(path), path) {}

TraceTaskStream::TraceTaskStream(Opened opened, std::string path)
    : TaskStream(opened.numTaskTypes),
      in_(std::move(opened.in)),
      path_(std::move(path)),
      hasValues_(opened.hasValues),
      lineNo_(opened.lineNo) {}

bool TraceTaskStream::produce(TaskSpec& out) {
  std::string line;
  while (std::getline(in_, line)) {
    ++lineNo_;
    if (line.empty() || line.front() == '#') continue;
    std::istringstream row(line);
    TaskSpec t;
    if (!(row >> t.type >> t.arrival >> t.deadline)) {
      failAt(path_, lineNo_, "malformed record");
    }
    if (hasValues_ && !(row >> t.value)) {
      failAt(path_, lineNo_, "truncated record (missing value)");
    }
    if (t.type < 0 || t.type >= numTaskTypes()) {
      failAt(path_, lineNo_, "task type out of range");
    }
    if (t.deadline < t.arrival) {
      failAt(path_, lineNo_, "deadline precedes arrival");
    }
    if (t.value <= 0.0) {
      failAt(path_, lineNo_, "non-positive task value");
    }
    if (!firstRecord_ && t.arrival < lastArrival_) {
      failAt(path_, lineNo_, "out-of-order arrival");
    }
    firstRecord_ = false;
    lastArrival_ = t.arrival;
    out = t;
    return true;
  }
  return false;
}

CsvTaskStream::CsvTaskStream(const std::string& path, CsvTraceFormat format,
                             const CsvTraceOptions& options)
    : TaskStream(options.numTaskTypes),
      path_(path),
      format_(format),
      options_(options) {
  if (options_.deadlineSlack < 0.0) {
    throw std::invalid_argument("CsvTaskStream: deadlineSlack must be >= 0");
  }
  if (options_.timeScale <= 0.0) {
    throw std::invalid_argument("CsvTaskStream: timeScale must be positive");
  }
  in_.open(path);
  if (!in_) {
    throw std::runtime_error("CsvTaskStream: cannot open " + path);
  }
}

bool CsvTaskStream::produce(TaskSpec& out) {
  const std::size_t needed = format_ == CsvTraceFormat::Azure ? 3 : 4;
  std::string line;
  while (std::getline(in_, line)) {
    ++lineNo_;
    if (line.empty() || line.front() == '#') continue;
    const std::vector<std::string> fields = splitCsv(line);
    double timestamp = 0.0;
    if (!checkedHeader_) {
      checkedHeader_ = true;
      // One leading non-numeric line is a column header; skip it.
      if (!parseDouble(fields.front(), timestamp)) continue;
    }
    if (fields.size() < needed) {
      failAt(path_, lineNo_, "truncated record (expected " +
                                 std::to_string(needed) + " fields, got " +
                                 std::to_string(fields.size()) + ")");
    }
    if (!parseDouble(fields[0], timestamp)) {
      failAt(path_, lineNo_, "malformed timestamp");
    }
    const std::string& key = fields[1];
    double runtime = 0.0;
    double value = 1.0;
    if (format_ == CsvTraceFormat::Azure) {
      if (!parseDouble(fields[2], runtime)) {
        failAt(path_, lineNo_, "malformed duration");
      }
    } else {
      double priority = 0.0;
      if (!parseDouble(fields[2], priority)) {
        failAt(path_, lineNo_, "malformed priority");
      }
      if (!parseDouble(fields[3], runtime)) {
        failAt(path_, lineNo_, "malformed runtime");
      }
      value = std::max(1.0, priority);
    }
    if (runtime < 0.0) {
      failAt(path_, lineNo_, "negative runtime");
    }
    TaskSpec t;
    t.type = static_cast<sim::TaskType>(
        fnv1a(key) % static_cast<std::uint64_t>(numTaskTypes()));
    t.arrival = timestamp * options_.timeScale;
    t.deadline = t.arrival + options_.deadlineSlack * runtime *
                                 options_.timeScale;
    t.value = value;
    if (!firstRecord_ && t.arrival < lastArrival_) {
      failAt(path_, lineNo_, "out-of-order arrival");
    }
    firstRecord_ = false;
    lastArrival_ = t.arrival;
    out = t;
    return true;
  }
  return false;
}

}  // namespace hcs::workload
