#include "workload/trace_io.h"

#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace hcs::workload {

void saveWorkload(const Workload& workload, std::ostream& out) {
  out << "hcs-workload v2 " << workload.numTaskTypes() << "\n";
  out << std::setprecision(17);
  for (const TaskSpec& t : workload.tasks()) {
    out << t.type << ' ' << t.arrival << ' ' << t.deadline << ' ' << t.value
        << "\n";
  }
}

void saveWorkloadFile(const Workload& workload, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("saveWorkloadFile: cannot open " + path);
  }
  saveWorkload(workload, out);
}

Workload loadWorkload(std::istream& in) {
  std::string line;
  if (!std::getline(in, line)) {
    throw std::runtime_error("loadWorkload: empty input");
  }
  std::istringstream header(line);
  std::string magic, version;
  int numTaskTypes = 0;
  header >> magic >> version >> numTaskTypes;
  if (magic != "hcs-workload" || (version != "v1" && version != "v2") ||
      numTaskTypes <= 0) {
    throw std::runtime_error("loadWorkload: bad header: " + line);
  }
  const bool hasValues = version == "v2";
  std::vector<TaskSpec> tasks;
  std::size_t lineNo = 1;
  while (std::getline(in, line)) {
    ++lineNo;
    if (line.empty() || line.front() == '#') continue;
    std::istringstream row(line);
    TaskSpec t;
    if (!(row >> t.type >> t.arrival >> t.deadline)) {
      throw std::runtime_error("loadWorkload: malformed line " +
                               std::to_string(lineNo));
    }
    if (hasValues && !(row >> t.value)) {
      throw std::runtime_error("loadWorkload: missing value on line " +
                               std::to_string(lineNo));
    }
    tasks.push_back(t);
  }
  return Workload(std::move(tasks), numTaskTypes);
}

Workload loadWorkloadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("loadWorkloadFile: cannot open " + path);
  }
  return loadWorkload(in);
}

}  // namespace hcs::workload
