#include "workload/deadline.h"

#include <stdexcept>

namespace hcs::workload {

sim::Time assignDeadline(const PetMatrix& pet, sim::TaskType type,
                         sim::Time arrival, const DeadlineSpec& spec,
                         prob::Rng& rng) {
  if (spec.betaHi < spec.betaLo || spec.betaLo < 0.0) {
    throw std::invalid_argument("assignDeadline: malformed beta range");
  }
  const double beta = rng.uniform(spec.betaLo, spec.betaHi);
  return arrival + pet.typeMeanAcrossMachines(type) +
         beta * pet.overallMean();
}

}  // namespace hcs::workload
