#include "workload/workload.h"

#include <algorithm>
#include <stdexcept>

namespace hcs::workload {

Workload::Workload(std::vector<TaskSpec> tasks, int numTaskTypes)
    : tasks_(std::move(tasks)), numTaskTypes_(numTaskTypes) {
  if (numTaskTypes_ <= 0) {
    throw std::invalid_argument("Workload: need at least one task type");
  }
  if (!std::is_sorted(tasks_.begin(), tasks_.end(),
                      [](const TaskSpec& a, const TaskSpec& b) {
                        return a.arrival < b.arrival;
                      })) {
    throw std::invalid_argument("Workload: tasks must be sorted by arrival");
  }
  for (const TaskSpec& t : tasks_) {
    if (t.type < 0 || t.type >= numTaskTypes_) {
      throw std::invalid_argument("Workload: task type out of range");
    }
    if (t.deadline < t.arrival) {
      throw std::invalid_argument("Workload: deadline precedes arrival");
    }
    if (t.value <= 0.0) {
      throw std::invalid_argument("Workload: task value must be positive");
    }
  }
}

Workload Workload::generate(const PetMatrix& pet, const ArrivalSpec& arrival,
                            const DeadlineSpec& deadline, std::uint64_t seed) {
  if (arrival.numTaskTypes != pet.numTaskTypes()) {
    throw std::invalid_argument(
        "Workload::generate: arrival spec / PET matrix type count mismatch");
  }
  prob::Rng rng(seed);
  prob::Rng arrivalRng = rng.fork();
  prob::Rng deadlineRng = rng.fork();
  const std::vector<Arrival> arrivals = generateArrivals(arrival, arrivalRng);
  std::vector<TaskSpec> tasks;
  tasks.reserve(arrivals.size());
  for (const Arrival& a : arrivals) {
    TaskSpec spec;
    spec.type = a.type;
    spec.arrival = a.time;
    spec.deadline = assignDeadline(pet, a.type, a.time, deadline, deadlineRng);
    tasks.push_back(spec);
  }
  return Workload(std::move(tasks), arrival.numTaskTypes);
}

std::vector<bool> Workload::countedMask(std::size_t margin) const {
  std::vector<bool> mask(tasks_.size(), true);
  if (tasks_.size() <= 2 * margin) {
    // Degenerate trial: everything is warm-up; count nothing.
    std::fill(mask.begin(), mask.end(), false);
    return mask;
  }
  for (std::size_t i = 0; i < margin; ++i) {
    mask[i] = false;
    mask[mask.size() - 1 - i] = false;
  }
  return mask;
}

}  // namespace hcs::workload
