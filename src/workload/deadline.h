#pragma once
// Deadline assignment (Eq. 4):
//   delta_i = arr_i + avg_i + beta * avg_all
// where avg_i is the mean execution time of the task's type (across machine
// types), avg_all is the mean over all types, and beta is drawn uniformly
// from [0.8, 2.5] per task (§V-B).

#include "prob/rng.h"
#include "sim/types.h"
#include "workload/pet_matrix.h"

namespace hcs::workload {

struct DeadlineSpec {
  double betaLo = 0.8;
  double betaHi = 2.5;
};

/// Computes a task's deadline given its arrival time and type (Eq. 4).
sim::Time assignDeadline(const PetMatrix& pet, sim::TaskType type,
                         sim::Time arrival, const DeadlineSpec& spec,
                         prob::Rng& rng);

}  // namespace hcs::workload
