#include "workload/pet_matrix.h"

#include <numeric>
#include <stdexcept>

#include "prob/histogram.h"

namespace hcs::workload {

PetMatrix::PetMatrix(std::vector<std::vector<prob::DiscretePmf>> pmfs)
    : pmfs_(std::move(pmfs)) {
  if (pmfs_.empty() || pmfs_.front().empty()) {
    throw std::invalid_argument("PetMatrix: empty matrix");
  }
  const std::size_t machines = pmfs_.front().size();
  const double width = pmfs_.front().front().binWidth();
  means_.reserve(pmfs_.size());
  typeMeans_.reserve(pmfs_.size());
  for (const auto& row : pmfs_) {
    if (row.size() != machines) {
      throw std::invalid_argument("PetMatrix: ragged matrix");
    }
    std::vector<double> rowMeans;
    rowMeans.reserve(machines);
    for (const auto& pmf : row) {
      if (std::abs(pmf.binWidth() - width) > 1e-12) {
        throw std::invalid_argument("PetMatrix: mixed bin widths");
      }
      // PETs are queried for the life of the experiment (Eq. 2 CDFs,
      // inverse-CDF sampling on every task execution): build the prefix-sum
      // tables once, up front, off every trial's hot path.
      pmf.ensureCdfCache();
      rowMeans.push_back(pmf.mean());
    }
    typeMeans_.push_back(
        std::accumulate(rowMeans.begin(), rowMeans.end(), 0.0) /
        static_cast<double>(machines));
    means_.push_back(std::move(rowMeans));
  }
  overallMean_ =
      std::accumulate(typeMeans_.begin(), typeMeans_.end(), 0.0) /
      static_cast<double>(typeMeans_.size());
}

PetMatrix PetMatrix::specLike(const PetSynthesisConfig& config,
                              std::uint64_t seed) {
  if (config.numTaskTypes <= 0 || config.numMachineTypes <= 0) {
    throw std::invalid_argument("specLike: dimensions must be positive");
  }
  prob::Rng rng(seed);
  std::vector<double> baseMean(static_cast<std::size_t>(config.numTaskTypes));
  for (double& m : baseMean) {
    m = rng.uniform(config.baseMeanLo, config.baseMeanHi);
  }
  std::vector<double> speed(static_cast<std::size_t>(config.numMachineTypes));
  for (double& s : speed) s = rng.uniform(config.speedLo, config.speedHi);

  std::vector<std::vector<prob::DiscretePmf>> pmfs;
  pmfs.reserve(baseMean.size());
  for (double typeMean : baseMean) {
    std::vector<prob::DiscretePmf> row;
    row.reserve(speed.size());
    for (double machineSpeed : speed) {
      const double affinity = rng.uniform(config.affinityLo, config.affinityHi);
      const double mean =
          std::max(typeMean * machineSpeed * affinity, config.binWidth);
      const double shape = rng.uniform(config.shapeLo, config.shapeHi);
      row.push_back(prob::gammaHistogramPmf(
          rng, mean, shape, config.samplesPerHistogram, config.binWidth));
    }
    pmfs.push_back(std::move(row));
  }
  return PetMatrix(std::move(pmfs));
}

PetMatrix PetMatrix::fromMeans(const std::vector<std::vector<double>>& means,
                               double shape, std::uint64_t seed,
                               double binWidth, std::size_t samples) {
  if (means.empty() || means.front().empty()) {
    throw std::invalid_argument("fromMeans: empty matrix");
  }
  prob::Rng rng(seed);
  std::vector<std::vector<prob::DiscretePmf>> pmfs;
  pmfs.reserve(means.size());
  for (const auto& row : means) {
    std::vector<prob::DiscretePmf> out;
    out.reserve(row.size());
    for (double mean : row) {
      out.push_back(prob::gammaHistogramPmf(rng, mean, shape, samples,
                                            binWidth));
    }
    pmfs.push_back(std::move(out));
  }
  return PetMatrix(std::move(pmfs));
}

PetMatrix PetMatrix::homogenized(int machineType) const {
  if (machineType < 0 || machineType >= numMachineTypes()) {
    throw std::out_of_range("homogenized: machine type out of range");
  }
  std::vector<std::vector<prob::DiscretePmf>> pmfs;
  pmfs.reserve(pmfs_.size());
  for (const auto& row : pmfs_) {
    pmfs.emplace_back(
        row.size(), row[static_cast<std::size_t>(machineType)]);
  }
  return PetMatrix(std::move(pmfs));
}

const prob::DiscretePmf& PetMatrix::pet(sim::TaskType type,
                                        int machineType) const {
  return pmfs_[static_cast<std::size_t>(type)]
              [static_cast<std::size_t>(machineType)];
}

double PetMatrix::expectedExec(sim::TaskType type, int machineType) const {
  return means_[static_cast<std::size_t>(type)]
               [static_cast<std::size_t>(machineType)];
}

double PetMatrix::typeMeanAcrossMachines(sim::TaskType type) const {
  return typeMeans_[static_cast<std::size_t>(type)];
}

double PetMatrix::overallMean() const { return overallMean_; }

BoundExecutionModel::BoundExecutionModel(std::shared_ptr<const PetMatrix> pet,
                                         std::vector<int> machineTypes)
    : pet_(std::move(pet)), machineTypes_(std::move(machineTypes)) {
  if (pet_ == nullptr) {
    throw std::invalid_argument("BoundExecutionModel: null matrix");
  }
  if (machineTypes_.empty()) {
    throw std::invalid_argument("BoundExecutionModel: no machines");
  }
  for (int t : machineTypes_) {
    if (t < 0 || t >= pet_->numMachineTypes()) {
      throw std::out_of_range("BoundExecutionModel: machine type out of range");
    }
  }
}

BoundExecutionModel BoundExecutionModel::heterogeneous(
    std::shared_ptr<const PetMatrix> p) {
  std::vector<int> types(static_cast<std::size_t>(p->numMachineTypes()));
  std::iota(types.begin(), types.end(), 0);
  return BoundExecutionModel(std::move(p), std::move(types));
}

BoundExecutionModel BoundExecutionModel::homogeneous(
    std::shared_ptr<const PetMatrix> p, int numMachines, int machineType) {
  if (numMachines <= 0) {
    throw std::invalid_argument("homogeneous: need at least one machine");
  }
  std::vector<int> types(static_cast<std::size_t>(numMachines), machineType);
  return BoundExecutionModel(std::move(p), std::move(types));
}

const prob::DiscretePmf& BoundExecutionModel::pet(
    sim::TaskType type, sim::MachineId machine) const {
  return pet_->pet(type, machineTypes_[static_cast<std::size_t>(machine)]);
}

double BoundExecutionModel::expectedExec(sim::TaskType type,
                                         sim::MachineId machine) const {
  return pet_->expectedExec(type,
                            machineTypes_[static_cast<std::size_t>(machine)]);
}

}  // namespace hcs::workload
