#pragma once
// Minimal, dependency-free JSON for the scenario subsystem.
//
// Deliberately small: the value tree keeps object members in insertion
// order (so serialized scenarios stay diffable), every parsed value
// remembers its source line (so schema errors point at the offending line
// of the scenario file), and the writer emits a canonical form whose
// numbers round-trip bit-exactly (parse(write(v)) == v).  No external
// dependency — this is the whole reader/writer.

#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace hcs::util {

/// Thrown by the parser and by typed accessors; the message already carries
/// "file:line:" context where available.
class JsonError : public std::runtime_error {
 public:
  explicit JsonError(const std::string& message)
      : std::runtime_error(message) {}
};

class JsonValue {
 public:
  enum class Type { Null, Bool, Number, String, Array, Object };

  using Array = std::vector<JsonValue>;
  using Member = std::pair<std::string, JsonValue>;
  using Object = std::vector<Member>;

  JsonValue() = default;  ///< null
  JsonValue(bool b) : type_(Type::Bool), bool_(b) {}
  JsonValue(double n) : type_(Type::Number), number_(n) {}
  JsonValue(int n) : JsonValue(static_cast<double>(n)) {}
  JsonValue(std::size_t n) : JsonValue(static_cast<double>(n)) {}
  JsonValue(const char* s) : type_(Type::String), string_(s) {}
  JsonValue(std::string s) : type_(Type::String), string_(std::move(s)) {}
  static JsonValue makeArray() {
    JsonValue v;
    v.type_ = Type::Array;
    return v;
  }
  static JsonValue makeObject() {
    JsonValue v;
    v.type_ = Type::Object;
    return v;
  }

  Type type() const { return type_; }
  bool isNull() const { return type_ == Type::Null; }
  bool isBool() const { return type_ == Type::Bool; }
  bool isNumber() const { return type_ == Type::Number; }
  bool isString() const { return type_ == Type::String; }
  bool isArray() const { return type_ == Type::Array; }
  bool isObject() const { return type_ == Type::Object; }

  /// 1-based source line of this value's first token (0 = synthesized).
  int line() const { return line_; }
  void setLine(int line) { line_ = line; }

  /// Typed accessors; throw JsonError mentioning the source line on
  /// mismatch.
  bool asBool() const;
  double asNumber() const;
  const std::string& asString() const;
  const Array& array() const;
  Array& array();
  const Object& object() const;
  Object& object();

  /// Object lookup; nullptr when absent (or when not an object).
  const JsonValue* find(const std::string& key) const;
  JsonValue* find(const std::string& key);

  /// Object: appends or overwrites `key` (insertion order preserved;
  /// overwrite keeps the original position).  Throws on non-objects.
  JsonValue& set(const std::string& key, JsonValue value);

  /// Array append.  Throws on non-arrays.
  JsonValue& append(JsonValue value);

  /// Deep structural equality; numbers compare as exact doubles.  Source
  /// lines are ignored.
  bool operator==(const JsonValue& other) const;
  bool operator!=(const JsonValue& other) const { return !(*this == other); }

 private:
  Type type_ = Type::Null;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
  int line_ = 0;
};

/// Parses a complete JSON document.  `origin` (typically a file name)
/// prefixes error messages: "scenario.json:12: expected ':'".  Trailing
/// non-whitespace is an error.  Comments are not JSON and are rejected.
JsonValue parseJson(const std::string& text, const std::string& origin = "");

/// Reads and parses `path`; parse errors carry the path as origin.
JsonValue parseJsonFile(const std::string& path);

/// Canonical serialization: 2-space indent, members in stored order,
/// numbers formatted with the shortest decimal form that parses back to
/// the identical double.  Ends with a newline at top level.
std::string writeJson(const JsonValue& value);

/// The number formatting used by writeJson, exposed for reports that want
/// identical numeric text.
std::string formatJsonNumber(double value);

}  // namespace hcs::util
