#include "util/json.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace hcs::util {

namespace {

const char* typeName(JsonValue::Type type) {
  switch (type) {
    case JsonValue::Type::Null: return "null";
    case JsonValue::Type::Bool: return "bool";
    case JsonValue::Type::Number: return "number";
    case JsonValue::Type::String: return "string";
    case JsonValue::Type::Array: return "array";
    case JsonValue::Type::Object: return "object";
  }
  return "?";
}

[[noreturn]] void typeError(const JsonValue& value, JsonValue::Type wanted) {
  std::ostringstream out;
  if (value.line() > 0) out << "line " << value.line() << ": ";
  out << "expected " << typeName(wanted) << ", got "
      << typeName(value.type());
  throw JsonError(out.str());
}

}  // namespace

bool JsonValue::asBool() const {
  if (type_ != Type::Bool) typeError(*this, Type::Bool);
  return bool_;
}

double JsonValue::asNumber() const {
  if (type_ != Type::Number) typeError(*this, Type::Number);
  return number_;
}

const std::string& JsonValue::asString() const {
  if (type_ != Type::String) typeError(*this, Type::String);
  return string_;
}

const JsonValue::Array& JsonValue::array() const {
  if (type_ != Type::Array) typeError(*this, Type::Array);
  return array_;
}

JsonValue::Array& JsonValue::array() {
  if (type_ != Type::Array) typeError(*this, Type::Array);
  return array_;
}

const JsonValue::Object& JsonValue::object() const {
  if (type_ != Type::Object) typeError(*this, Type::Object);
  return object_;
}

JsonValue::Object& JsonValue::object() {
  if (type_ != Type::Object) typeError(*this, Type::Object);
  return object_;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  if (type_ != Type::Object) return nullptr;
  for (const Member& m : object_) {
    if (m.first == key) return &m.second;
  }
  return nullptr;
}

JsonValue* JsonValue::find(const std::string& key) {
  if (type_ != Type::Object) return nullptr;
  for (Member& m : object_) {
    if (m.first == key) return &m.second;
  }
  return nullptr;
}

JsonValue& JsonValue::set(const std::string& key, JsonValue value) {
  if (type_ != Type::Object) typeError(*this, Type::Object);
  for (Member& m : object_) {
    if (m.first == key) {
      m.second = std::move(value);
      return m.second;
    }
  }
  object_.emplace_back(key, std::move(value));
  return object_.back().second;
}

JsonValue& JsonValue::append(JsonValue value) {
  if (type_ != Type::Array) typeError(*this, Type::Array);
  array_.push_back(std::move(value));
  return array_.back();
}

bool JsonValue::operator==(const JsonValue& other) const {
  if (type_ != other.type_) return false;
  switch (type_) {
    case Type::Null: return true;
    case Type::Bool: return bool_ == other.bool_;
    case Type::Number: return number_ == other.number_;
    case Type::String: return string_ == other.string_;
    case Type::Array: return array_ == other.array_;
    case Type::Object: return object_ == other.object_;
  }
  return false;
}

// --- Parser -----------------------------------------------------------------

namespace {

class Parser {
 public:
  Parser(const std::string& text, const std::string& origin)
      : text_(text), origin_(origin) {}

  JsonValue parseDocument() {
    JsonValue value = parseValue();
    skipWhitespace();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    std::ostringstream out;
    if (!origin_.empty()) out << origin_ << ":";
    out << "line " << line_ << ": " << message;
    throw JsonError(out.str());
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  char take() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    const char c = text_[pos_++];
    if (c == '\n') ++line_;
    return c;
  }

  void expect(char wanted) {
    const char c = take();
    if (c != wanted) {
      fail(std::string("expected '") + wanted + "', got '" + c + "'");
    }
  }

  void skipWhitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\r') {
        ++pos_;
      } else if (c == '\n') {
        ++pos_;
        ++line_;
      } else {
        break;
      }
    }
  }

  bool consumeKeyword(const char* word) {
    const std::size_t n = std::char_traits<char>::length(word);
    if (text_.compare(pos_, n, word) != 0) return false;
    pos_ += n;
    return true;
  }

  JsonValue parseValue() {
    skipWhitespace();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    if (++depth_ > kMaxDepth) {
      fail("nesting deeper than 200 levels");
    }
    const int line = line_;
    JsonValue value;
    const char c = peek();
    if (c == '{') {
      value = parseObject();
    } else if (c == '[') {
      value = parseArray();
    } else if (c == '"') {
      value = JsonValue(parseString());
    } else if (c == 't' && consumeKeyword("true")) {
      value = JsonValue(true);
    } else if (c == 'f' && consumeKeyword("false")) {
      value = JsonValue(false);
    } else if (c == 'n' && consumeKeyword("null")) {
      value = JsonValue();
    } else if (c == '-' || (c >= '0' && c <= '9')) {
      value = JsonValue(parseNumber());
    } else {
      fail(std::string("unexpected character '") + c + "'");
    }
    --depth_;
    value.setLine(line);
    return value;
  }

  JsonValue parseObject() {
    expect('{');
    JsonValue object = JsonValue::makeObject();
    skipWhitespace();
    if (peek() == '}') {
      take();
      return object;
    }
    while (true) {
      skipWhitespace();
      if (peek() != '"') fail("expected object key string");
      const int keyLine = line_;
      std::string key = parseString();
      if (object.find(key) != nullptr) {
        std::ostringstream out;
        out << "duplicate key \"" << key << "\"";
        fail(out.str());
      }
      skipWhitespace();
      expect(':');
      JsonValue value = parseValue();
      if (value.line() == 0) value.setLine(keyLine);
      object.object().emplace_back(std::move(key), std::move(value));
      skipWhitespace();
      const char c = take();
      if (c == '}') return object;
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  JsonValue parseArray() {
    expect('[');
    JsonValue array = JsonValue::makeArray();
    skipWhitespace();
    if (peek() == ']') {
      take();
      return array;
    }
    while (true) {
      array.append(parseValue());
      skipWhitespace();
      const char c = take();
      if (c == ']') return array;
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  std::string parseString() {
    expect('"');
    std::string out;
    while (true) {
      const char c = take();
      if (c == '"') return out;
      if (c == '\\') {
        const char e = take();
        switch (e) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'u': {
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = take();
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                fail("invalid \\u escape");
              }
            }
            // UTF-8 encode the BMP code point (surrogate pairs are not
            // needed by scenario files; reject them explicitly).
            if (code >= 0xD800 && code <= 0xDFFF) {
              fail("surrogate \\u escapes are not supported");
            }
            if (code < 0x80) {
              out.push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out.push_back(static_cast<char>(0xC0 | (code >> 6)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out.push_back(static_cast<char>(0xE0 | (code >> 12)));
              out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default: fail("invalid escape sequence");
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        fail("unescaped control character in string");
      } else {
        out.push_back(c);
      }
    }
  }

  double parseNumber() {
    const std::size_t start = pos_;
    if (peek() == '-') take();
    if (!std::isdigit(static_cast<unsigned char>(peek()))) {
      fail("malformed number");
    }
    // JSON forbids leading zeros ("01"): a 0 integer part stands alone.
    if (peek() == '0') {
      take();
      if (std::isdigit(static_cast<unsigned char>(peek()))) {
        fail("malformed number: leading zero");
      }
    }
    while (std::isdigit(static_cast<unsigned char>(peek()))) take();
    if (peek() == '.') {
      take();
      if (!std::isdigit(static_cast<unsigned char>(peek()))) {
        fail("malformed number: digit required after '.'");
      }
      while (std::isdigit(static_cast<unsigned char>(peek()))) take();
    }
    if (peek() == 'e' || peek() == 'E') {
      take();
      if (peek() == '+' || peek() == '-') take();
      if (!std::isdigit(static_cast<unsigned char>(peek()))) {
        fail("malformed number: digit required in exponent");
      }
      while (std::isdigit(static_cast<unsigned char>(peek()))) take();
    }
    const std::string token = text_.substr(start, pos_ - start);
    errno = 0;
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) fail("malformed number");
    if (errno == ERANGE && !std::isfinite(value)) {
      fail("number out of double range");
    }
    return value;
  }

  /// Recursion bound: a hostile/corrupted document must produce the
  /// line-numbered error contract, not a stack overflow.
  static constexpr int kMaxDepth = 200;

  const std::string& text_;
  std::string origin_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int depth_ = 0;
};

}  // namespace

JsonValue parseJson(const std::string& text, const std::string& origin) {
  return Parser(text, origin).parseDocument();
}

JsonValue parseJsonFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw JsonError(path + ": cannot open file");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parseJson(buffer.str(), path);
}

// --- Writer -----------------------------------------------------------------

std::string formatJsonNumber(double value) {
  if (!std::isfinite(value)) {
    throw JsonError("JSON cannot represent non-finite numbers");
  }
  if (value == 0.0) return "0";  // collapse -0.0: compares equal anyway
  // Integers within exact-double range print without a fraction.
  if (value == std::floor(value) && std::fabs(value) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", value);
    return buf;
  }
  // Shortest precision that round-trips to the identical double.
  char buf[40];
  for (int precision = 15; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof buf, "%.*g", precision, value);
    if (std::strtod(buf, nullptr) == value) return buf;
  }
  return buf;  // %.17g always round-trips
}

namespace {

void writeString(std::string& out, const std::string& s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void writeValue(std::string& out, const JsonValue& value, int depth) {
  const std::string indent(static_cast<std::size_t>(depth) * 2, ' ');
  const std::string childIndent(static_cast<std::size_t>(depth + 1) * 2, ' ');
  switch (value.type()) {
    case JsonValue::Type::Null:
      out += "null";
      break;
    case JsonValue::Type::Bool:
      out += value.asBool() ? "true" : "false";
      break;
    case JsonValue::Type::Number:
      out += formatJsonNumber(value.asNumber());
      break;
    case JsonValue::Type::String:
      writeString(out, value.asString());
      break;
    case JsonValue::Type::Array: {
      const auto& items = value.array();
      if (items.empty()) {
        out += "[]";
        break;
      }
      // Scalar-only arrays stay on one line (ranges, label lists).
      bool scalarOnly = true;
      for (const JsonValue& item : items) {
        if (item.isArray() || item.isObject()) {
          scalarOnly = false;
          break;
        }
      }
      if (scalarOnly) {
        out.push_back('[');
        for (std::size_t i = 0; i < items.size(); ++i) {
          if (i > 0) out += ", ";
          writeValue(out, items[i], depth);
        }
        out.push_back(']');
      } else {
        out += "[\n";
        for (std::size_t i = 0; i < items.size(); ++i) {
          out += childIndent;
          writeValue(out, items[i], depth + 1);
          if (i + 1 < items.size()) out.push_back(',');
          out.push_back('\n');
        }
        out += indent;
        out.push_back(']');
      }
      break;
    }
    case JsonValue::Type::Object: {
      const auto& members = value.object();
      if (members.empty()) {
        out += "{}";
        break;
      }
      out += "{\n";
      for (std::size_t i = 0; i < members.size(); ++i) {
        out += childIndent;
        writeString(out, members[i].first);
        out += ": ";
        writeValue(out, members[i].second, depth + 1);
        if (i + 1 < members.size()) out.push_back(',');
        out.push_back('\n');
      }
      out += indent;
      out.push_back('}');
      break;
    }
  }
}

}  // namespace

std::string writeJson(const JsonValue& value) {
  std::string out;
  writeValue(out, value, 0);
  out.push_back('\n');
  return out;
}

}  // namespace hcs::util
