#include "exp/scenario.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <stdexcept>
#include <vector>

namespace hcs::exp {

namespace {

/// Effective mean service time of the cluster: halfway between "every task
/// runs on its best machine" and "tasks land on average machines" —
/// mapping heuristics under load sit between those extremes.
double effectiveMeanService(const workload::PetMatrix& pet) {
  double acc = 0.0;
  for (int t = 0; t < pet.numTaskTypes(); ++t) {
    double best = pet.expectedExec(t, 0);
    double avg = 0.0;
    for (int j = 0; j < pet.numMachineTypes(); ++j) {
      best = std::min(best, pet.expectedExec(t, j));
      avg += pet.expectedExec(t, j);
    }
    avg /= static_cast<double>(pet.numMachineTypes());
    acc += 0.5 * (best + avg);
  }
  return acc / static_cast<double>(pet.numTaskTypes());
}

/// Machine type with the median column-mean execution time — the
/// "representative" machine used for the homogeneous cluster.
int medianMachineType(const workload::PetMatrix& pet) {
  std::vector<std::pair<double, int>> columns;
  for (int j = 0; j < pet.numMachineTypes(); ++j) {
    double avg = 0.0;
    for (int t = 0; t < pet.numTaskTypes(); ++t) {
      avg += pet.expectedExec(t, j);
    }
    columns.emplace_back(avg, j);
  }
  std::sort(columns.begin(), columns.end());
  return columns[columns.size() / 2].second;
}

}  // namespace

PaperScenario::PaperScenario(const Options& options)
    : options_(options),
      pet_(std::make_shared<const workload::PetMatrix>(
          workload::PetMatrix::specLike(options.synthesis, options.petSeed))),
      homoPet_(std::make_shared<const workload::PetMatrix>(
          pet_->homogenized(medianMachineType(*pet_)))),
      hetero_(workload::BoundExecutionModel::heterogeneous(pet_)) {
  if (options.scale <= 0.0) {
    throw std::invalid_argument("PaperScenario: scale must be positive");
  }
  if (options.targetRhoAt15k <= 0.0) {
    throw std::invalid_argument("PaperScenario: target rho must be positive");
  }
  homo_ = std::make_unique<workload::BoundExecutionModel>(
      workload::BoundExecutionModel::homogeneous(
          homoPet_, pet_->numMachineTypes(), medianMachineType(*pet_)));
  // Self-calibrate the span: the 15k-equivalent workload should offer
  // targetRhoAt15k times the cluster's capacity.
  const double service = effectiveMeanService(*pet_);
  const double tasks15k =
      static_cast<double>(kRate15k) * options_.scale;
  span_ = tasks15k * service /
          (static_cast<double>(pet_->numMachineTypes()) *
           options_.targetRhoAt15k);
}

PaperScenario::Options PaperScenario::optionsFromEnv() {
  Options options;
  if (const char* full = std::getenv("HCS_FULL");
      full != nullptr && full[0] == '1') {
    options.scale = 1.0;
    options.trials = 30;
  }
  if (const char* scale = std::getenv("HCS_SCALE"); scale != nullptr) {
    options.scale = std::strtod(scale, nullptr);
  }
  if (const char* trials = std::getenv("HCS_TRIALS"); trials != nullptr) {
    options.trials = static_cast<std::size_t>(std::strtoul(trials, nullptr, 10));
  }
  if (const char* jobs = std::getenv("HCS_JOBS"); jobs != nullptr) {
    options.jobs = static_cast<std::size_t>(std::strtoul(jobs, nullptr, 10));
  }
  return options;
}

std::size_t PaperScenario::scaledTasks(std::size_t paperRate) const {
  return static_cast<std::size_t>(std::llround(
      static_cast<double>(paperRate) * options_.scale));
}

std::size_t PaperScenario::warmupMargin(std::size_t paperRate) const {
  // Paper trims 100 of 15000; keep the ratio, with a floor.
  const auto margin = static_cast<std::size_t>(
      std::llround(static_cast<double>(scaledTasks(paperRate)) * 100.0 /
                   15000.0));
  return std::max<std::size_t>(margin, 10);
}

workload::ArrivalSpec PaperScenario::arrivalSpec(
    std::size_t paperRate, workload::ArrivalPattern pattern) const {
  workload::ArrivalSpec spec;
  spec.pattern = pattern;
  spec.span = span_;
  spec.totalTasks = scaledTasks(paperRate);
  spec.numTaskTypes = pet_->numTaskTypes();
  return spec;
}

ExperimentSpec PaperScenario::experimentSpec(
    std::size_t paperRate, workload::ArrivalPattern pattern) const {
  ExperimentSpec spec;
  spec.arrival = arrivalSpec(paperRate, pattern);
  spec.trials = options_.trials;
  spec.jobs = options_.jobs;
  spec.sim.warmupMargin = warmupMargin(paperRate);
  return spec;
}

}  // namespace hcs::exp
