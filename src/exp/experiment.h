#pragma once
// Multi-trial experiments: the paper's methodology of §V-A — "30 workload
// trials were performed using different task arrival times built from the
// same arrival rate and pattern. In each case, the mean and 95% confidence
// interval of the results are reported."

#include <cstdint>
#include <vector>

#include "core/config.h"
#include "core/simulation.h"
#include "stats/confidence.h"
#include "stats/running_stats.h"
#include "workload/pet_matrix.h"
#include "workload/workload.h"

namespace hcs::exp {

struct ExperimentSpec {
  workload::ArrivalSpec arrival;
  workload::DeadlineSpec deadline;
  core::SimulationConfig sim;
  std::size_t trials = 8;
  /// Trial t uses workload seed baseSeed + t (and a derived execution
  /// seed), so different specs with the same baseSeed see the *same*
  /// workload trials — the paper's paired-comparison setup.
  std::uint64_t baseSeed = 2019;
};

struct ExperimentResult {
  stats::RunningStats robustness;       ///< % completed on time, per trial
  stats::ConfidenceInterval robustnessCi;
  std::vector<double> perTrialRobustness;

  stats::RunningStats completedLatePct;
  stats::RunningStats droppedReactivePct;
  stats::RunningStats droppedProactivePct;
  stats::RunningStats deferralsPerTask;
  stats::RunningStats meanUtilization;

  double robustnessMean() const { return robustnessCi.mean; }
};

/// Runs `spec.trials` independent workload trials against the given cluster
/// model and aggregates the outcomes.  The PET matrix behind `model` is also
/// used for deadline assignment (Eq. 4 needs avg_i / avg_all).
ExperimentResult runExperiment(const workload::BoundExecutionModel& model,
                               const ExperimentSpec& spec);

}  // namespace hcs::exp
