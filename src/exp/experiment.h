#pragma once
// Multi-trial experiments: the paper's methodology of §V-A — "30 workload
// trials were performed using different task arrival times built from the
// same arrival rate and pattern. In each case, the mean and 95% confidence
// interval of the results are reported."

#include <cstdint>
#include <vector>

#include "core/config.h"
#include "core/simulation.h"
#include "stats/confidence.h"
#include "stats/running_stats.h"
#include "workload/pet_matrix.h"
#include "workload/stream.h"
#include "workload/workload.h"

namespace hcs::exp {

struct ExperimentSpec {
  workload::ArrivalSpec arrival;
  workload::DeadlineSpec deadline;
  core::SimulationConfig sim;
  /// Streamed-arrival mode (the scenario `stream` block): when enabled,
  /// each trial pulls its tasks from a TaskStream — generated on the fly
  /// from `arrival`/`deadline` with the trial's workload seed (identical
  /// results, bounded memory) or replayed from an external trace — instead
  /// of materializing a Workload up front.
  workload::StreamSpec stream;
  std::size_t trials = 8;
  /// Trial t uses workload seed baseSeed + t (and a derived execution
  /// seed), so different specs with the same baseSeed see the *same*
  /// workload trials — the paper's paired-comparison setup.
  std::uint64_t baseSeed = 2019;
  /// Worker threads for trial execution: 1 = serial (default), 0 = one per
  /// hardware thread, N = exactly N.  Trials are independent and results
  /// are merged in trial order, so every value produces bit-identical
  /// aggregates.
  std::size_t jobs = 1;
};

struct ExperimentResult {
  stats::RunningStats robustness;       ///< % completed on time, per trial
  stats::ConfidenceInterval robustnessCi;
  std::vector<double> perTrialRobustness;

  stats::RunningStats completedLatePct;
  stats::RunningStats droppedReactivePct;
  stats::RunningStats droppedProactivePct;
  stats::RunningStats deferralsPerTask;
  stats::RunningStats meanUtilization;

  // Robustness-under-churn outcomes (all zero for fault-free runs).
  stats::RunningStats abandonedPct;     ///< retry policy gave up, % counted
  stats::RunningStats rejectedPct;      ///< gateway refusals, % counted
  stats::RunningStats retriesPerTask;   ///< retry re-arrivals per counted task
  stats::RunningStats failedThenMetPct; ///< survived >=1 failure AND met
  stats::RunningStats machineFailures;  ///< failure transitions per trial

  // Capacity-cost outcomes (meaningful for every trial; the elastic knobs
  // move them, fixed capacity just reports the flat baseline).
  stats::RunningStats utilizationPct;   ///< busy / *online* machine-seconds
  stats::RunningStats machineSeconds;   ///< online machine-seconds (cost)
  stats::RunningStats scaleUps;         ///< controller scale-up actions
  stats::RunningStats scaleDowns;       ///< controller scale-down actions

  double robustnessMean() const { return robustnessCi.mean; }
};

/// Executes the independent trials of one experiment.  Each trial
/// generates its own workload (seeded from the spec) and owns every piece
/// of mutable simulation state, so any number of trials may run
/// concurrently against the shared immutable model.
class TrialRunner {
 public:
  /// `model` and `spec` must outlive the runner.
  TrialRunner(const workload::BoundExecutionModel& model,
              const ExperimentSpec& spec);

  std::size_t trials() const { return spec_->trials; }

  /// Runs trial `trial` (0-based) to completion.  Deterministic in
  /// (model, spec, trial) — thread-safe by construction.
  core::TrialResult runTrial(std::size_t trial) const;

 private:
  const workload::BoundExecutionModel* model_;
  const ExperimentSpec* spec_;
};

/// Runs `spec.trials` independent workload trials against the given cluster
/// model — on `spec.jobs` threads — and aggregates the outcomes in trial
/// order (bit-identical for any job count).  The PET matrix behind `model`
/// is also used for deadline assignment (Eq. 4 needs avg_i / avg_all).
ExperimentResult runExperiment(const workload::BoundExecutionModel& model,
                               const ExperimentSpec& spec);

/// Folds per-trial outcomes — already in trial order — into the aggregate
/// statistics.  Shared by runExperiment and the federated runner
/// (fed/fed_experiment.h), so both report identical aggregates for
/// identical trials.
ExperimentResult aggregateTrialResults(
    const std::vector<core::TrialResult>& outcomes);

/// The per-trial execution seed derived from a workload seed; exposed so
/// every runner (single-cluster, federated) derives the identical stream.
std::uint64_t executionSeedFor(std::uint64_t workloadSeed);

/// The per-trial FAULT-stream seed derived from the same workload seed but
/// through a different mix, so the fault stream is independent of both the
/// workload and execution streams.  Because workload and execution draws
/// never touch it, a fault-enabled sweep point sees the exact same arrivals
/// and execution samples as its fault-free twin — the seed-pairing contract
/// the robustness sweeps rely on.
std::uint64_t faultSeedFor(std::uint64_t workloadSeed);

/// The per-trial ELASTICITY-stream seed, again from the same workload seed
/// through its own mix.  The controller's reserved RNG draws nothing in the
/// shipped (deterministic) policies, but the stream exists and is derived
/// here so a future stochastic policy cannot be tempted to tap the
/// execution or fault streams and break seed pairing.
std::uint64_t elasticitySeedFor(std::uint64_t workloadSeed);

}  // namespace hcs::exp
