#pragma once
// Parameter sweeps over scenario files: the "sweep" key of a scenario
// document is an ordered list of axes, each either
//
//   { "field": "workload.rate", "values": [15000, 20000, 25000],
//     "labels": ["15k", "20k", "25k"] }          // labels optional
//   { "field": "sim.pruning.threshold",
//     "range": { "from": 0.25, "to": 0.75, "step": 0.25 } }
//   { "label": "variant", "cases": [
//       { "name": "MM",   "set": { "sim.heuristic": "MM" } },
//       { "name": "MM-P", "set": { "sim.heuristic": "MM",
//                                  "sim.pruning": {} } } ] }
//
// A values/range axis sweeps one dotted-path field; a cases axis names
// arbitrary multi-field patches (each `set` entry assigns a JSON value at
// a dotted path — objects replace the whole subtree, so `"sim.pruning":
// {}` means "paper-default pruning").  The grid is the Cartesian product
// in declared order with the LAST axis varying fastest, every grid point
// keeps the document's base seed (the paper's paired-trials methodology),
// and each point's trials execute through the existing ParallelExecutor.

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "exp/experiment.h"
#include "exp/scenario_spec.h"
#include "util/json.h"

namespace hcs::exp {

struct SweepCase {
  std::string name;
  /// Dotted-path assignments applied to the base document.
  std::vector<std::pair<std::string, util::JsonValue>> sets;
};

struct SweepAxis {
  /// Swept field (values/range axes); empty for cases axes.
  std::string field;
  /// Axis display name: explicit "label", else the field path, else
  /// "cases".
  std::string label;
  /// Expanded values (values/range axes).
  std::vector<util::JsonValue> values;
  /// Per-value display labels (same length as values or cases).
  std::vector<std::string> valueLabels;
  /// Cases axes.
  std::vector<SweepCase> cases;

  bool isCases() const { return !cases.empty(); }
  std::size_t size() const {
    return isCases() ? cases.size() : values.size();
  }
};

/// A parsed scenario file: the base scenario JSON (sweep key removed) plus
/// the sweep axes.
struct ScenarioDoc {
  util::JsonValue base;  ///< scenario object, validated against the schema
  std::vector<SweepAxis> axes;
  std::string origin;  ///< file name for error messages ("" = inline)

  /// The base document parsed as a spec (grid point 0 of an empty sweep).
  ScenarioSpec baseSpec() const { return parseScenarioSpec(base); }
};

/// Parses a scenario document from JSON text; validates the base scenario
/// and every axis (including that each grid point's patched document still
/// parses).  Throws ScenarioError / util::JsonError with line context.
ScenarioDoc parseScenarioDoc(const std::string& text,
                             const std::string& origin = "");

/// parseScenarioDoc over a file's contents.
ScenarioDoc loadScenarioDoc(const std::string& path);

/// Canonical serialization of base + sweep; parse -> write -> parse is the
/// identity on the expanded grid.
std::string writeScenarioDoc(const ScenarioDoc& doc);

/// Assigns `value` at dotted `path` inside `root`, creating intermediate
/// objects as needed.  Object values replace the whole subtree.  Throws
/// ScenarioError when the path traverses a non-object.
void setJsonPath(util::JsonValue& root, const std::string& path,
                 util::JsonValue value);

/// Parses "path=value" (value as JSON; bare words become strings) and
/// applies it — the CLI's --set and the sweep cases share this code path.
void applySetDirective(util::JsonValue& root, const std::string& directive);

/// One expanded grid point.
struct GridPoint {
  std::vector<std::size_t> index;       ///< per-axis selection
  std::vector<std::string> labels;      ///< per-axis display label
  util::JsonValue json;                 ///< patched scenario object
  ScenarioSpec spec;                    ///< parsed + validated
};

/// Expands the document's sweep axes into the full grid (row-major, last
/// axis fastest).  A document with no axes yields exactly one point.
std::vector<GridPoint> expandGrid(const ScenarioDoc& doc);

/// A grid point plus its experiment outcome.
struct SweepOutcome {
  GridPoint point;
  ExperimentResult result;
};

/// Runs every grid point (sequentially; each point's trials run on the
/// point's `run.jobs` ParallelExecutor threads) against models cached by
/// scenarioModelKey(), so a sweep that only varies heuristics synthesizes
/// the PET matrix once.  `progress` (optional) is invoked before each
/// point with (pointIndex, pointCount, label).
std::vector<SweepOutcome> runSweep(
    const ScenarioDoc& doc,
    const std::function<void(std::size_t, std::size_t, const std::string&)>&
        progress = {});

}  // namespace hcs::exp
