#include "exp/scenario_spec.h"

#include <cmath>
#include <sstream>
#include <tuple>

#include "heuristics/registry.h"

namespace hcs::exp {

namespace {

using util::JsonValue;

[[noreturn]] void fail(const JsonValue& at, const std::string& message) {
  std::ostringstream out;
  if (at.line() > 0) out << "line " << at.line() << ": ";
  out << message;
  throw ScenarioError(out.str());
}

/// Strict object reader: every key must be consumed via get(); done()
/// rejects the rest with their source lines.
class Fields {
 public:
  Fields(const JsonValue& json, const char* context)
      : json_(&json), context_(context) {
    if (!json.isObject()) fail(json, std::string(context) + ": expected an object");
    used_.assign(json.object().size(), false);
  }

  const JsonValue* get(const char* key) {
    const auto& members = json_->object();
    for (std::size_t i = 0; i < members.size(); ++i) {
      if (members[i].first == key) {
        used_[i] = true;
        return &members[i].second;
      }
    }
    return nullptr;
  }

  void done() const {
    const auto& members = json_->object();
    for (std::size_t i = 0; i < members.size(); ++i) {
      if (!used_[i]) {
        fail(members[i].second, std::string(context_) + ": unknown key \"" +
                                    members[i].first + "\"");
      }
    }
  }

 private:
  const JsonValue* json_;
  const char* context_;
  std::vector<bool> used_;
};

double getNumber(const JsonValue& v, const char* what) {
  if (!v.isNumber()) fail(v, std::string(what) + ": expected a number");
  return v.asNumber();
}

double getPositive(const JsonValue& v, const char* what) {
  const double x = getNumber(v, what);
  if (!(x > 0.0)) fail(v, std::string(what) + ": must be positive");
  return x;
}

double getFraction(const JsonValue& v, const char* what) {
  const double x = getNumber(v, what);
  if (!(x >= 0.0 && x <= 1.0)) fail(v, std::string(what) + ": must be in [0, 1]");
  return x;
}

/// Largest integer every JSON double represents exactly (2^53); beyond it
/// the cast would be lossy (and above SIZE_MAX, undefined behavior).
constexpr double kMaxExactInteger = 9007199254740992.0;

std::size_t getCount(const JsonValue& v, const char* what) {
  const double x = getNumber(v, what);
  if (!(x >= 0.0) || x != std::floor(x)) {
    fail(v, std::string(what) + ": must be a non-negative integer");
  }
  if (x > kMaxExactInteger) {
    fail(v, std::string(what) + ": exceeds the exactly-representable "
                                "integer range (2^53)");
  }
  return static_cast<std::size_t>(x);
}

int getPositiveInt(const JsonValue& v, const char* what) {
  const double x = getNumber(v, what);
  if (!(x > 0.0) || x != std::floor(x)) {
    fail(v, std::string(what) + ": must be a positive integer");
  }
  if (x > 2147483647.0) {
    fail(v, std::string(what) + ": out of int range");
  }
  return static_cast<int>(x);
}

bool getBool(const JsonValue& v, const char* what) {
  if (!v.isBool()) fail(v, std::string(what) + ": expected true/false");
  return v.asBool();
}

std::string getString(const JsonValue& v, const char* what) {
  if (!v.isString()) fail(v, std::string(what) + ": expected a string");
  return v.asString();
}

/// [lo, hi] range written as a 2-element array.
std::pair<double, double> getRangePair(const JsonValue& v, const char* what) {
  if (!v.isArray() || v.array().size() != 2) {
    fail(v, std::string(what) + ": expected [lo, hi]");
  }
  const double lo = getNumber(v.array()[0], what);
  const double hi = getNumber(v.array()[1], what);
  if (hi < lo) fail(v, std::string(what) + ": hi must be >= lo");
  return {lo, hi};
}

void parsePet(const JsonValue& json, ScenarioSpec& spec) {
  Fields pet(json, "pet");
  if (const auto* v = pet.get("seed")) {
    spec.petSeed = static_cast<std::uint64_t>(getCount(*v, "pet.seed"));
  }
  if (const auto* v = pet.get("target_rho_at_15k")) {
    spec.targetRhoAt15k = getPositive(*v, "pet.target_rho_at_15k");
  }
  if (const auto* v = pet.get("synthesis")) {
    Fields syn(*v, "pet.synthesis");
    auto& s = spec.synthesis;
    if (const auto* f = syn.get("task_types")) {
      s.numTaskTypes = getPositiveInt(*f, "pet.synthesis.task_types");
    }
    if (const auto* f = syn.get("machine_types")) {
      s.numMachineTypes = getPositiveInt(*f, "pet.synthesis.machine_types");
    }
    if (const auto* f = syn.get("bin_width")) {
      s.binWidth = getPositive(*f, "pet.synthesis.bin_width");
    }
    if (const auto* f = syn.get("base_mean")) {
      std::tie(s.baseMeanLo, s.baseMeanHi) =
          getRangePair(*f, "pet.synthesis.base_mean");
    }
    if (const auto* f = syn.get("speed")) {
      std::tie(s.speedLo, s.speedHi) = getRangePair(*f, "pet.synthesis.speed");
    }
    if (const auto* f = syn.get("affinity")) {
      std::tie(s.affinityLo, s.affinityHi) =
          getRangePair(*f, "pet.synthesis.affinity");
    }
    if (const auto* f = syn.get("shape")) {
      std::tie(s.shapeLo, s.shapeHi) = getRangePair(*f, "pet.synthesis.shape");
    }
    if (const auto* f = syn.get("samples_per_histogram")) {
      s.samplesPerHistogram = getCount(*f, "pet.synthesis.samples_per_histogram");
      if (s.samplesPerHistogram == 0) {
        fail(*f, "pet.synthesis.samples_per_histogram: must be positive");
      }
    }
    syn.done();
  }
  pet.done();
}

void parseCluster(const JsonValue& json, ScenarioSpec& spec) {
  Fields cluster(json, "cluster");
  if (const auto* v = cluster.get("kind")) {
    const std::string kind = getString(*v, "cluster.kind");
    if (kind == "heterogeneous") {
      spec.clusterKind = ScenarioSpec::ClusterKind::Heterogeneous;
    } else if (kind == "homogeneous") {
      spec.clusterKind = ScenarioSpec::ClusterKind::Homogeneous;
    } else if (kind == "custom") {
      spec.clusterKind = ScenarioSpec::ClusterKind::Custom;
    } else {
      fail(*v, "cluster.kind: unknown kind \"" + kind +
                   "\" (heterogeneous|homogeneous|custom)");
    }
  }
  if (const auto* v = cluster.get("machine_types")) {
    if (!v->isArray() || v->array().empty()) {
      fail(*v, "cluster.machine_types: expected a non-empty array");
    }
    spec.customMachineTypes.clear();
    for (const JsonValue& item : v->array()) {
      const double x = getNumber(item, "cluster.machine_types");
      if (x < 0.0 || x != std::floor(x) || x > 2147483647.0) {
        fail(item, "cluster.machine_types: entries must be machine-type indices");
      }
      // "pet" parses before "cluster", so the PET column count is final
      // here — reject out-of-range indices at load, with the line.
      if (x >= static_cast<double>(spec.synthesis.numMachineTypes)) {
        fail(item, "cluster.machine_types: machine type " +
                       std::to_string(static_cast<int>(x)) +
                       " out of range (PET has " +
                       std::to_string(spec.synthesis.numMachineTypes) +
                       " machine types)");
      }
      spec.customMachineTypes.push_back(static_cast<int>(x));
    }
  }
  cluster.done();
  if (spec.clusterKind == ScenarioSpec::ClusterKind::Custom &&
      spec.customMachineTypes.empty()) {
    fail(json, "cluster: kind \"custom\" requires machine_types");
  }
  if (spec.clusterKind != ScenarioSpec::ClusterKind::Custom &&
      !spec.customMachineTypes.empty()) {
    fail(json, "cluster: machine_types requires kind \"custom\"");
  }
}

void parseWorkload(const JsonValue& json, ScenarioSpec& spec) {
  Fields wl(json, "workload");
  if (const auto* v = wl.get("rate")) {
    spec.rate = getCount(*v, "workload.rate");
    if (spec.rate == 0) fail(*v, "workload.rate: must be positive");
  }
  if (const auto* v = wl.get("pattern")) {
    const std::string pattern = getString(*v, "workload.pattern");
    if (pattern == "spiky") {
      spec.pattern = workload::ArrivalPattern::Spiky;
    } else if (pattern == "constant") {
      spec.pattern = workload::ArrivalPattern::Constant;
    } else if (pattern == "bursty") {
      spec.pattern = workload::ArrivalPattern::Bursty;
    } else {
      fail(*v, "workload.pattern: unknown pattern \"" + pattern +
                   "\" (spiky|constant|bursty)");
    }
  }
  if (const auto* v = wl.get("spikes")) {
    spec.numSpikes = getPositiveInt(*v, "workload.spikes");
  }
  if (const auto* v = wl.get("spike_factor")) {
    spec.spikeFactor = getNumber(*v, "workload.spike_factor");
    if (spec.spikeFactor < 1.0) {
      fail(*v, "workload.spike_factor: must be >= 1");
    }
  }
  if (const auto* v = wl.get("gap_variance_fraction")) {
    spec.gapVarianceFraction = getPositive(*v, "workload.gap_variance_fraction");
  }
  if (const auto* v = wl.get("burst")) {
    Fields burst(*v, "workload.burst");
    if (const auto* f = burst.get("base_rate_factor")) {
      spec.burstBaseFactor = getNumber(*f, "workload.burst.base_rate_factor");
      if (spec.burstBaseFactor < 0.0) {
        fail(*f, "workload.burst.base_rate_factor: must be >= 0");
      }
    }
    if (const auto* f = burst.get("peak_rate_factor")) {
      spec.burstPeakFactor = getNumber(*f, "workload.burst.peak_rate_factor");
      if (spec.burstPeakFactor < 0.0) {
        fail(*f, "workload.burst.peak_rate_factor: must be >= 0");
      }
    }
    if (const auto* f = burst.get("width")) {
      spec.burstWidth = getPositive(*f, "workload.burst.width");
    }
    if (const auto* f = burst.get("period")) {
      spec.burstPeriod = getPositive(*f, "workload.burst.period");
    }
    if (const auto* f = burst.get("span")) {
      spec.burstSpan = getPositive(*f, "workload.burst.span");
    }
    burst.done();
    // Thinning-regime sanity: bursts narrower than their spacing (also
    // keeps the sampler's majorant and per-candidate intensity O(1)).
    if (spec.burstWidth > spec.burstPeriod) {
      fail(*v, "workload.burst: width must not exceed period");
    }
    if (spec.burstSpan / spec.burstPeriod > 1e6) {
      fail(*v, "workload.burst: span/period exceeds 1e6 burst centers");
    }
  }
  if (const auto* v = wl.get("deadline")) {
    Fields deadline(*v, "workload.deadline");
    if (const auto* f = deadline.get("beta")) {
      std::tie(spec.deadline.betaLo, spec.deadline.betaHi) =
          getRangePair(*f, "workload.deadline.beta");
    }
    deadline.done();
  }
  wl.done();
}

void parseStream(const JsonValue& json, ScenarioSpec& spec) {
  Fields st(json, "stream");
  auto& s = spec.stream;
  if (const auto* v = st.get("enabled")) {
    s.enabled = getBool(*v, "stream.enabled");
  }
  if (const auto* v = st.get("max_tasks")) {
    s.maxTasks = getCount(*v, "stream.max_tasks");
  }
  if (const auto* v = st.get("max_time")) {
    s.maxTime = getNumber(*v, "stream.max_time");
    if (s.maxTime < 0.0) fail(*v, "stream.max_time: must be >= 0");
  }
  const JsonValue* traceKey = st.get("trace");
  if (traceKey != nullptr) {
    s.trace = getString(*traceKey, "stream.trace");
  }
  if (const auto* v = st.get("format")) {
    s.format = getString(*v, "stream.format");
    if (s.format != "hcs" && s.format != "azure" && s.format != "borg") {
      fail(*v, "stream.format: unknown format \"" + s.format +
                   "\" (hcs|azure|borg)");
    }
    if (s.trace.empty()) {
      fail(*v, "stream.format: requires stream.trace (generated streams "
               "take their shape from the workload block)");
    }
  }
  if (const auto* v = st.get("deadline_slack")) {
    s.deadlineSlack = getNumber(*v, "stream.deadline_slack");
    if (s.deadlineSlack < 0.0) {
      fail(*v, "stream.deadline_slack: must be >= 0");
    }
  }
  if (const auto* v = st.get("time_scale")) {
    s.timeScale = getPositive(*v, "stream.time_scale");
  }
  st.done();
}

void parseSim(const JsonValue& json, ScenarioSpec& spec) {
  Fields sim(json, "sim");
  if (const auto* v = sim.get("heuristic")) {
    spec.heuristic = getString(*v, "sim.heuristic");
    if (!heuristics::isImmediateHeuristic(spec.heuristic) &&
        !heuristics::isBatchHeuristic(spec.heuristic)) {
      fail(*v, "sim.heuristic: unknown heuristic \"" + spec.heuristic + "\"");
    }
  }
  if (const auto* v = sim.get("kpb_percent")) {
    spec.heuristicOptions.kpbPercent = getFraction(*v, "sim.kpb_percent");
  }
  if (const auto* v = sim.get("queue_capacity")) {
    spec.machineQueueCapacity = getCount(*v, "sim.queue_capacity");
    if (spec.machineQueueCapacity == 0) {
      fail(*v, "sim.queue_capacity: must be positive");
    }
  }
  if (const auto* v = sim.get("abort_at_deadline")) {
    spec.abortRunningAtDeadline = getBool(*v, "sim.abort_at_deadline");
  }
  if (const auto* v = sim.get("pct_cache")) {
    spec.pctCacheEnabled = getBool(*v, "sim.pct_cache");
  }
  if (const auto* v = sim.get("incremental_mapping")) {
    spec.incrementalMappingEnabled = getBool(*v, "sim.incremental_mapping");
  }
  if (const auto* v = sim.get("incremental_map_min_queue")) {
    spec.incrementalMapMinQueue =
        getCount(*v, "sim.incremental_map_min_queue");
  }
  if (const auto* v = sim.get("pruning")) {
    Fields pruning(*v, "sim.pruning");
    auto& p = spec.pruning;
    if (const auto* f = pruning.get("enabled")) {
      p.enabled = getBool(*f, "sim.pruning.enabled");
    }
    if (const auto* f = pruning.get("reactive_drop")) {
      p.reactiveDropEnabled = getBool(*f, "sim.pruning.reactive_drop");
    }
    if (const auto* f = pruning.get("threshold")) {
      p.threshold = getFraction(*f, "sim.pruning.threshold");
    }
    if (const auto* f = pruning.get("toggle")) {
      const std::string toggle = getString(*f, "sim.pruning.toggle");
      if (toggle == "reactive") {
        p.toggle = pruning::ToggleMode::Reactive;
      } else if (toggle == "always") {
        p.toggle = pruning::ToggleMode::AlwaysDropping;
      } else if (toggle == "never") {
        p.toggle = pruning::ToggleMode::NoDropping;
      } else {
        fail(*f, "sim.pruning.toggle: unknown mode \"" + toggle +
                     "\" (reactive|always|never)");
      }
    }
    if (const auto* f = pruning.get("dropping_toggle")) {
      p.droppingToggle = getCount(*f, "sim.pruning.dropping_toggle");
    }
    if (const auto* f = pruning.get("defer")) {
      p.deferEnabled = getBool(*f, "sim.pruning.defer");
    }
    if (const auto* f = pruning.get("fairness_factor")) {
      p.fairnessFactor = getNumber(*f, "sim.pruning.fairness_factor");
      if (p.fairnessFactor < 0.0) {
        fail(*f, "sim.pruning.fairness_factor: must be >= 0");
      }
    }
    if (const auto* f = pruning.get("fairness_clamp")) {
      p.fairnessClamp = getFraction(*f, "sim.pruning.fairness_clamp");
    }
    if (const auto* f = pruning.get("priority_aware")) {
      p.priorityAware = getBool(*f, "sim.pruning.priority_aware");
    }
    if (const auto* f = pruning.get("priority_weight")) {
      p.priorityWeight = getNumber(*f, "sim.pruning.priority_weight");
    }
    if (const auto* f = pruning.get("priority_reference")) {
      p.priorityReference = getPositive(*f, "sim.pruning.priority_reference");
    }
    pruning.done();
  }
  sim.done();
}

void parseFaults(const JsonValue& json, ScenarioSpec& spec) {
  Fields f(json, "faults");
  auto& fc = spec.faults;
  if (const auto* v = f.get("enabled")) {
    fc.enabled = getBool(*v, "faults.enabled");
  }
  if (const auto* v = f.get("mtbf")) {
    fc.mtbf = getNumber(*v, "faults.mtbf");
    if (fc.mtbf < 0.0) fail(*v, "faults.mtbf: must be >= 0");
  }
  if (const auto* v = f.get("mttr")) {
    fc.mttr = getNumber(*v, "faults.mttr");
    if (fc.mttr < 0.0) fail(*v, "faults.mttr: must be >= 0");
  }
  if (const auto* v = f.get("max_attempts")) {
    fc.maxAttempts = getPositiveInt(*v, "faults.max_attempts");
  }
  if (const auto* v = f.get("backoff")) {
    Fields backoff(*v, "faults.backoff");
    if (const auto* b = backoff.get("base")) {
      fc.backoffBase = getPositive(*b, "faults.backoff.base");
    }
    if (const auto* b = backoff.get("factor")) {
      fc.backoffFactor = getNumber(*b, "faults.backoff.factor");
      if (fc.backoffFactor < 1.0) {
        fail(*b, "faults.backoff.factor: must be >= 1");
      }
    }
    if (const auto* b = backoff.get("jitter")) {
      fc.backoffJitter = getNumber(*b, "faults.backoff.jitter");
      if (fc.backoffJitter < 0.0) {
        fail(*b, "faults.backoff.jitter: must be >= 0");
      }
    }
    backoff.done();
  }
  if (const auto* v = f.get("events")) {
    if (!v->isArray()) {
      fail(*v, "faults.events: expected an array of {at, machine, kind}");
    }
    fc.events.clear();
    for (const JsonValue& item : v->array()) {
      Fields ev(item, "faults.events");
      sim::ScriptedFault sf;
      const auto* at = ev.get("at");
      if (at == nullptr) fail(item, "faults.events: missing \"at\"");
      sf.time = getNumber(*at, "faults.events.at");
      if (sf.time < 0.0) fail(*at, "faults.events.at: must be >= 0");
      const auto* machine = ev.get("machine");
      if (machine == nullptr) fail(item, "faults.events: missing \"machine\"");
      sf.machine = static_cast<sim::MachineId>(
          getCount(*machine, "faults.events.machine"));
      const auto* kind = ev.get("kind");
      if (kind == nullptr) fail(item, "faults.events: missing \"kind\"");
      const std::string name = getString(*kind, "faults.events.kind");
      if (name == "fail" || name == "leave") {
        sf.fail = true;
      } else if (name == "recover" || name == "join") {
        sf.fail = false;
      } else {
        fail(*kind, "faults.events.kind: unknown kind \"" + name +
                        "\" (fail|leave|recover|join)");
      }
      ev.done();
      fc.events.push_back(sf);
    }
  }
  if (const auto* v = f.get("initially_offline")) {
    if (!v->isArray()) {
      fail(*v, "faults.initially_offline: expected an array of machine "
               "indices");
    }
    fc.initiallyOffline.clear();
    for (const JsonValue& item : v->array()) {
      fc.initiallyOffline.push_back(static_cast<int>(
          getCount(item, "faults.initially_offline")));
    }
  }
  f.done();
  if (fc.enabled && fc.mtbf > 0.0 && fc.mttr <= 0.0) {
    fail(json, "faults: mttr must be positive when mtbf is");
  }
}

void parseAdmission(const JsonValue& json, ScenarioSpec& spec) {
  Fields a(json, "admission");
  if (const auto* v = a.get("policy")) {
    const std::string name = getString(*v, "admission.policy");
    try {
      spec.admission.policy = fed::parseAdmissionPolicy(name);
    } catch (const std::invalid_argument&) {
      fail(*v, "admission.policy: unknown policy \"" + name +
                   "\" (accept_all|queue_bound|chance_threshold)");
    }
  }
  if (const auto* v = a.get("queue_bound")) {
    spec.admission.queueBound = getCount(*v, "admission.queue_bound");
    if (spec.admission.queueBound == 0) {
      fail(*v, "admission.queue_bound: must be >= 1");
    }
  }
  if (const auto* v = a.get("chance_threshold")) {
    spec.admission.chanceThreshold =
        getFraction(*v, "admission.chance_threshold");
  }
  if (const auto* v = a.get("spillover")) {
    spec.admission.spillover = getBool(*v, "admission.spillover");
  }
  a.done();
}

void parseFederation(const JsonValue& json, ScenarioSpec& spec) {
  Fields f(json, "federation");
  if (const auto* v = f.get("enabled")) {
    spec.federationEnabled = getBool(*v, "federation.enabled");
  }
  if (const auto* v = f.get("clusters")) {
    spec.fedClusters = getCount(*v, "federation.clusters");
    if (spec.fedClusters == 0) {
      fail(*v, "federation.clusters: must be >= 1");
    }
  }
  if (const auto* v = f.get("routing")) {
    const std::string name = getString(*v, "federation.routing");
    try {
      spec.fedRouting = fed::parseRoutingPolicy(name);
    } catch (const std::invalid_argument&) {
      fail(*v, "federation.routing: unknown policy \"" + name +
                   "\" (round_robin|least_queue|least_ect|max_chance)");
    }
  }
  if (const auto* v = f.get("dispatch_latency")) {
    spec.fedDispatchLatency = getNumber(*v, "federation.dispatch_latency");
    if (spec.fedDispatchLatency < 0.0) {
      fail(*v, "federation.dispatch_latency: must be >= 0");
    }
  }
  if (const auto* v = f.get("cluster_shapes")) {
    if (!v->isArray() || v->array().empty()) {
      fail(*v, "federation.cluster_shapes: expected a non-empty array of "
               "machine-type arrays");
    }
    spec.fedClusterShapes.clear();
    for (const JsonValue& shape : v->array()) {
      if (!shape.isArray() || shape.array().empty()) {
        fail(shape, "federation.cluster_shapes: each cluster shape must be "
                    "a non-empty array of machine-type indices");
      }
      std::vector<int> types;
      for (const JsonValue& item : shape.array()) {
        const double x = getNumber(item, "federation.cluster_shapes");
        if (x < 0.0 || x != std::floor(x) || x > 2147483647.0) {
          fail(item, "federation.cluster_shapes: entries must be "
                     "machine-type indices");
        }
        // "pet" parses before "federation", so the PET column count is
        // final here.
        if (x >= static_cast<double>(spec.synthesis.numMachineTypes)) {
          fail(item, "federation.cluster_shapes: machine type " +
                         std::to_string(static_cast<int>(x)) +
                         " out of range (PET has " +
                         std::to_string(spec.synthesis.numMachineTypes) +
                         " machine types)");
        }
        types.push_back(static_cast<int>(x));
      }
      spec.fedClusterShapes.push_back(std::move(types));
    }
  }
  f.done();
  if (!spec.fedClusterShapes.empty() &&
      spec.fedClusterShapes.size() != spec.fedClusters) {
    fail(json, "federation: cluster_shapes must have exactly `clusters` (" +
                   std::to_string(spec.fedClusters) + ") entries, got " +
                   std::to_string(spec.fedClusterShapes.size()));
  }
}

/// Shared knob reader for the base `elasticity` block and each entry of
/// `elasticity.cluster_overrides` (an override starts from a copy of the
/// base config, so every key is optional in both).  Range checks mirror
/// ElasticityConfig::validate() but carry source lines.
void parseElasticityKnobs(const JsonValue& json, Fields& f,
                          const std::string& ctx, sim::ElasticityConfig& ec,
                          const ScenarioSpec& spec) {
  const auto key = [&ctx](const char* k) { return ctx + "." + k; };
  if (const auto* v = f.get("enabled")) {
    ec.enabled = getBool(*v, key("enabled").c_str());
  }
  if (const auto* v = f.get("policy")) {
    const std::string name = getString(*v, key("policy").c_str());
    if (name == "queue_bound") {
      ec.policy = sim::ElasticityPolicy::QueueBound;
    } else if (name == "target_utilization") {
      ec.policy = sim::ElasticityPolicy::TargetUtilization;
    } else if (name == "chance_slo") {
      ec.policy = sim::ElasticityPolicy::ChanceSlo;
    } else {
      fail(*v, key("policy") + ": unknown policy \"" + name +
                   "\" (queue_bound|target_utilization|chance_slo)");
    }
  }
  if (const auto* v = f.get("period")) {
    ec.period = getPositive(*v, key("period").c_str());
  }
  if (const auto* v = f.get("boot_latency")) {
    ec.bootLatency = getNumber(*v, key("boot_latency").c_str());
    if (ec.bootLatency < 0.0) fail(*v, key("boot_latency") + ": must be >= 0");
  }
  if (const auto* v = f.get("step")) {
    ec.step = getPositiveInt(*v, key("step").c_str());
  }
  if (const auto* v = f.get("scale_up_queue")) {
    ec.scaleUpQueue = getPositive(*v, key("scale_up_queue").c_str());
  }
  if (const auto* v = f.get("scale_down_queue")) {
    ec.scaleDownQueue = getNumber(*v, key("scale_down_queue").c_str());
    if (ec.scaleDownQueue < 0.0) {
      fail(*v, key("scale_down_queue") + ": must be >= 0");
    }
  }
  if (const auto* v = f.get("setpoint")) {
    ec.setpoint = getNumber(*v, key("setpoint").c_str());
    if (!(ec.setpoint > 0.0 && ec.setpoint < 1.0)) {
      fail(*v, key("setpoint") + ": must be in (0, 1)");
    }
  }
  if (const auto* v = f.get("ewma_alpha")) {
    ec.ewmaAlpha = getNumber(*v, key("ewma_alpha").c_str());
    if (!(ec.ewmaAlpha > 0.0 && ec.ewmaAlpha <= 1.0)) {
      fail(*v, key("ewma_alpha") + ": must be in (0, 1]");
    }
  }
  if (const auto* v = f.get("deadband")) {
    ec.deadband = getNumber(*v, key("deadband").c_str());
    if (ec.deadband < 0.0) fail(*v, key("deadband") + ": must be >= 0");
  }
  if (const auto* v = f.get("chance_threshold")) {
    ec.chanceThreshold = getFraction(*v, key("chance_threshold").c_str());
  }
  if (const auto* v = f.get("pool")) {
    if (!v->isArray() || v->array().empty()) {
      fail(*v, key("pool") + ": expected a non-empty array of "
                             "{machine_type, min, max}");
    }
    const std::string poolCtx = key("pool");
    ec.pool.clear();
    for (const JsonValue& item : v->array()) {
      Fields g(item, poolCtx.c_str());
      sim::ElasticGroup group;
      const auto* type = g.get("machine_type");
      if (type == nullptr) {
        fail(item, poolCtx + ": missing \"machine_type\"");
      }
      group.machineType = static_cast<int>(
          getCount(*type, (poolCtx + ".machine_type").c_str()));
      // "pet" parses before "elasticity", so the PET column count is final.
      if (group.machineType >= spec.synthesis.numMachineTypes) {
        fail(*type, poolCtx + ": machine type " +
                        std::to_string(group.machineType) +
                        " out of range (PET has " +
                        std::to_string(spec.synthesis.numMachineTypes) +
                        " machine types)");
      }
      if (const auto* lo = g.get("min")) {
        group.minMachines = getPositiveInt(*lo, (poolCtx + ".min").c_str());
      }
      const auto* hi = g.get("max");
      if (hi == nullptr) fail(item, poolCtx + ": missing \"max\"");
      group.maxMachines = getPositiveInt(*hi, (poolCtx + ".max").c_str());
      if (group.maxMachines < group.minMachines) {
        fail(*hi, poolCtx + ".max: must be >= min");
      }
      g.done();
      for (const sim::ElasticGroup& other : ec.pool) {
        if (other.machineType == group.machineType) {
          fail(item, poolCtx + ": duplicate entry for machine type " +
                         std::to_string(group.machineType));
        }
      }
      ec.pool.push_back(group);
    }
  }
  // Cross-field bands, at the block with its line.
  if (ec.scaleUpQueue <= ec.scaleDownQueue) {
    fail(json, ctx + ": need scale_down_queue < scale_up_queue "
                     "(the hysteresis band)");
  }
  if (ec.setpoint - ec.deadband <= 0.0 || ec.setpoint + ec.deadband >= 1.0) {
    fail(json, ctx + ": deadband must keep setpoint +/- deadband inside "
                     "(0, 1)");
  }
  if (ec.enabled && ec.pool.empty()) {
    fail(json, ctx + ": enabled requires a non-empty pool");
  }
}

void parseElasticity(const JsonValue& json, ScenarioSpec& spec) {
  Fields f(json, "elasticity");
  parseElasticityKnobs(json, f, "elasticity", spec.elasticity, spec);
  if (const auto* v = f.get("cluster_overrides")) {
    if (!v->isArray() || v->array().empty()) {
      fail(*v, "elasticity.cluster_overrides: expected a non-empty array");
    }
    if (!spec.federationEnabled) {
      fail(*v, "elasticity.cluster_overrides: requires federation.enabled "
               "(overrides are per federation cluster)");
    }
    spec.elasticityOverrides.clear();
    for (const JsonValue& item : v->array()) {
      Fields o(item, "elasticity.cluster_overrides");
      ScenarioSpec::ElasticityOverride ov;
      // Start from the fully-parsed base block; override keys refine it.
      ov.config = spec.elasticity;
      const auto* cl = o.get("cluster");
      if (cl == nullptr) {
        fail(item, "elasticity.cluster_overrides: missing \"cluster\"");
      }
      ov.cluster = getCount(*cl, "elasticity.cluster_overrides.cluster");
      // "federation" parses before "elasticity": fedClusters is final here.
      if (ov.cluster >= spec.fedClusters) {
        fail(*cl, "elasticity.cluster_overrides.cluster: cluster " +
                      std::to_string(ov.cluster) +
                      " out of range (federation has " +
                      std::to_string(spec.fedClusters) + " clusters)");
      }
      for (const ScenarioSpec::ElasticityOverride& prev :
           spec.elasticityOverrides) {
        if (prev.cluster == ov.cluster) {
          fail(*cl, "elasticity.cluster_overrides: duplicate entry for "
                    "cluster " +
                        std::to_string(ov.cluster));
        }
      }
      parseElasticityKnobs(item, o, "elasticity.cluster_overrides", ov.config,
                           spec);
      o.done();
      spec.elasticityOverrides.push_back(std::move(ov));
    }
  }
  f.done();
}

void parseRun(const JsonValue& json, ScenarioSpec& spec) {
  Fields run(json, "run");
  if (const auto* v = run.get("trials")) {
    spec.trials = getCount(*v, "run.trials");
    if (spec.trials == 0) fail(*v, "run.trials: must be positive");
  }
  if (const auto* v = run.get("jobs")) {
    spec.jobs = getCount(*v, "run.jobs");
  }
  if (const auto* v = run.get("seed")) {
    spec.seed = static_cast<std::uint64_t>(getCount(*v, "run.seed"));
  }
  if (const auto* v = run.get("scale")) {
    spec.scale = getPositive(*v, "run.scale");
  }
  if (const auto* v = run.get("warmup")) {
    const double x = getNumber(*v, "run.warmup");
    if (x != std::floor(x) || x < -1.0) {
      fail(*v, "run.warmup: must be an integer >= -1 (-1 = auto)");
    }
    if (x > kMaxExactInteger) {
      fail(*v, "run.warmup: exceeds the exactly-representable integer "
               "range (2^53)");
    }
    spec.warmup = static_cast<long>(x);
  }
  run.done();
}

/// A bound cluster's machine → PET-machine-type map, as the elasticity
/// expansion consumes it.
std::vector<int> machineTypesOf(const workload::BoundExecutionModel& model) {
  std::vector<int> types;
  types.reserve(static_cast<std::size_t>(model.numMachines()));
  for (int j = 0; j < model.numMachines(); ++j) {
    types.push_back(model.machineTypeOf(j));
  }
  return types;
}

/// Resolves one cluster's controller config against its base shape: fills
/// baseMachines, validates that the base count of every pooled type sits
/// inside [min, max], and appends the parked surplus (max - base count per
/// group) to `expandedTypes` — so machine ids 0..B-1 stay exactly the
/// fixed-capacity cluster.
sim::ElasticityConfig resolveElasticity(const sim::ElasticityConfig& base,
                                        const std::vector<int>& baseTypes,
                                        int numMachineTypes,
                                        std::vector<int>& expandedTypes,
                                        const std::string& what) {
  sim::ElasticityConfig resolved = base;
  resolved.baseMachines = baseTypes.size();
  expandedTypes = baseTypes;
  for (const sim::ElasticGroup& g : base.pool) {
    if (g.machineType >= numMachineTypes) {
      throw ScenarioError(what + ".pool: machine type " +
                          std::to_string(g.machineType) +
                          " out of range (PET has " +
                          std::to_string(numMachineTypes) +
                          " machine types)");
    }
    int count = 0;
    for (int t : baseTypes) {
      if (t == g.machineType) ++count;
    }
    if (count < g.minMachines || count > g.maxMachines) {
      throw ScenarioError(
          what + ".pool: the base cluster has " + std::to_string(count) +
          " machines of type " + std::to_string(g.machineType) +
          ", outside the pool bounds [" + std::to_string(g.minMachines) +
          ", " + std::to_string(g.maxMachines) + "]");
    }
    for (int i = count; i < g.maxMachines; ++i) {
      expandedTypes.push_back(g.machineType);
    }
  }
  resolved.validate();
  return resolved;
}

/// Canonical serialization of one controller config (shared by the base
/// block and each cluster override — overrides emit every key, which is why
/// the parse side may start them from a base copy and still round-trip).
JsonValue elasticityBlock(const sim::ElasticityConfig& ec) {
  JsonValue e = JsonValue::makeObject();
  e.set("enabled", ec.enabled);
  e.set("policy", std::string(sim::toString(ec.policy)));
  e.set("period", ec.period);
  e.set("boot_latency", ec.bootLatency);
  e.set("step", ec.step);
  e.set("scale_up_queue", ec.scaleUpQueue);
  e.set("scale_down_queue", ec.scaleDownQueue);
  e.set("setpoint", ec.setpoint);
  e.set("ewma_alpha", ec.ewmaAlpha);
  e.set("deadband", ec.deadband);
  e.set("chance_threshold", ec.chanceThreshold);
  // Emitted only when non-empty: absent parses to empty, matching the
  // faults.events convention.
  if (!ec.pool.empty()) {
    JsonValue pool = JsonValue::makeArray();
    for (const sim::ElasticGroup& g : ec.pool) {
      JsonValue entry = JsonValue::makeObject();
      entry.set("machine_type", g.machineType);
      entry.set("min", g.minMachines);
      entry.set("max", g.maxMachines);
      pool.append(std::move(entry));
    }
    e.set("pool", std::move(pool));
  }
  return e;
}

}  // namespace

ScenarioSpec parseScenarioSpec(const JsonValue& json) {
  ScenarioSpec spec;
  Fields top(json, "scenario");
  if (const auto* v = top.get("name")) spec.name = getString(*v, "name");
  if (const auto* v = top.get("description")) {
    spec.description = getString(*v, "description");
  }
  if (const auto* v = top.get("pet")) parsePet(*v, spec);
  if (const auto* v = top.get("cluster")) parseCluster(*v, spec);
  if (const auto* v = top.get("workload")) parseWorkload(*v, spec);
  if (const auto* v = top.get("stream")) parseStream(*v, spec);
  if (const auto* v = top.get("sim")) parseSim(*v, spec);
  if (const auto* v = top.get("faults")) parseFaults(*v, spec);
  if (const auto* v = top.get("federation")) parseFederation(*v, spec);
  if (const auto* v = top.get("elasticity")) parseElasticity(*v, spec);
  const JsonValue* admissionBlock = top.get("admission");
  if (admissionBlock != nullptr) parseAdmission(*admissionBlock, spec);
  if (const auto* v = top.get("run")) parseRun(*v, spec);
  if (const auto* v = top.get("sweep")) {
    fail(*v, "\"sweep\" is a scenario-document key; parseScenarioDoc "
             "handles it (a bare scenario object cannot sweep)");
  }
  top.done();
  if (spec.admission.policy != fed::AdmissionPolicyKind::AcceptAll &&
      !spec.federationEnabled) {
    fail(*admissionBlock,
         "admission: policy \"" +
             std::string(fed::toString(spec.admission.policy)) +
             "\" requires federation.enabled (the gateway applies it)");
  }
  return spec;
}

util::JsonValue scenarioSpecToJson(const ScenarioSpec& spec) {
  using util::JsonValue;
  JsonValue root = JsonValue::makeObject();
  root.set("name", spec.name);
  root.set("description", spec.description);

  JsonValue pet = JsonValue::makeObject();
  pet.set("seed", static_cast<double>(spec.petSeed));
  pet.set("target_rho_at_15k", spec.targetRhoAt15k);
  JsonValue synthesis = JsonValue::makeObject();
  const auto& s = spec.synthesis;
  synthesis.set("task_types", s.numTaskTypes);
  synthesis.set("machine_types", s.numMachineTypes);
  synthesis.set("bin_width", s.binWidth);
  auto pair = [](double lo, double hi) {
    JsonValue v = JsonValue::makeArray();
    v.append(lo);
    v.append(hi);
    return v;
  };
  synthesis.set("base_mean", pair(s.baseMeanLo, s.baseMeanHi));
  synthesis.set("speed", pair(s.speedLo, s.speedHi));
  synthesis.set("affinity", pair(s.affinityLo, s.affinityHi));
  synthesis.set("shape", pair(s.shapeLo, s.shapeHi));
  synthesis.set("samples_per_histogram", s.samplesPerHistogram);
  pet.set("synthesis", std::move(synthesis));
  root.set("pet", std::move(pet));

  JsonValue cluster = JsonValue::makeObject();
  switch (spec.clusterKind) {
    case ScenarioSpec::ClusterKind::Heterogeneous:
      cluster.set("kind", "heterogeneous");
      break;
    case ScenarioSpec::ClusterKind::Homogeneous:
      cluster.set("kind", "homogeneous");
      break;
    case ScenarioSpec::ClusterKind::Custom: {
      cluster.set("kind", "custom");
      JsonValue types = JsonValue::makeArray();
      for (int t : spec.customMachineTypes) types.append(t);
      cluster.set("machine_types", std::move(types));
      break;
    }
  }
  root.set("cluster", std::move(cluster));

  JsonValue wl = JsonValue::makeObject();
  wl.set("rate", spec.rate);
  switch (spec.pattern) {
    case workload::ArrivalPattern::Spiky: wl.set("pattern", "spiky"); break;
    case workload::ArrivalPattern::Constant:
      wl.set("pattern", "constant");
      break;
    case workload::ArrivalPattern::Bursty: wl.set("pattern", "bursty"); break;
  }
  wl.set("spikes", spec.numSpikes);
  wl.set("spike_factor", spec.spikeFactor);
  wl.set("gap_variance_fraction", spec.gapVarianceFraction);
  // Emitted for every pattern (like the spiky knobs above): the canonical
  // form must carry all fields or parse -> serialize -> parse would drop
  // burst parameters written under a non-bursty pattern.
  JsonValue burst = JsonValue::makeObject();
  burst.set("base_rate_factor", spec.burstBaseFactor);
  burst.set("peak_rate_factor", spec.burstPeakFactor);
  burst.set("width", spec.burstWidth);
  burst.set("period", spec.burstPeriod);
  burst.set("span", spec.burstSpan);
  wl.set("burst", std::move(burst));
  JsonValue deadline = JsonValue::makeObject();
  deadline.set("beta", pair(spec.deadline.betaLo, spec.deadline.betaHi));
  wl.set("deadline", std::move(deadline));
  root.set("workload", std::move(wl));

  JsonValue stream = JsonValue::makeObject();
  stream.set("enabled", spec.stream.enabled);
  stream.set("max_tasks", spec.stream.maxTasks);
  stream.set("max_time", spec.stream.maxTime);
  // trace/format emitted only for trace replay: "format" without "trace"
  // is a parse error, so the canonical form of a generated stream must
  // omit both for the round trip to hold.
  if (!spec.stream.trace.empty()) {
    stream.set("trace", spec.stream.trace);
    stream.set("format", spec.stream.format);
  }
  stream.set("deadline_slack", spec.stream.deadlineSlack);
  stream.set("time_scale", spec.stream.timeScale);
  root.set("stream", std::move(stream));

  JsonValue sim = JsonValue::makeObject();
  sim.set("heuristic", spec.heuristic);
  sim.set("kpb_percent", spec.heuristicOptions.kpbPercent);
  sim.set("queue_capacity", spec.machineQueueCapacity);
  sim.set("abort_at_deadline", spec.abortRunningAtDeadline);
  sim.set("pct_cache", spec.pctCacheEnabled);
  sim.set("incremental_mapping", spec.incrementalMappingEnabled);
  sim.set("incremental_map_min_queue", spec.incrementalMapMinQueue);
  JsonValue pruning = JsonValue::makeObject();
  const auto& p = spec.pruning;
  pruning.set("enabled", p.enabled);
  pruning.set("reactive_drop", p.reactiveDropEnabled);
  pruning.set("threshold", p.threshold);
  switch (p.toggle) {
    case pruning::ToggleMode::Reactive: pruning.set("toggle", "reactive"); break;
    case pruning::ToggleMode::AlwaysDropping:
      pruning.set("toggle", "always");
      break;
    case pruning::ToggleMode::NoDropping:
      pruning.set("toggle", "never");
      break;
  }
  pruning.set("dropping_toggle", p.droppingToggle);
  pruning.set("defer", p.deferEnabled);
  pruning.set("fairness_factor", p.fairnessFactor);
  pruning.set("fairness_clamp", p.fairnessClamp);
  pruning.set("priority_aware", p.priorityAware);
  pruning.set("priority_weight", p.priorityWeight);
  pruning.set("priority_reference", p.priorityReference);
  sim.set("pruning", std::move(pruning));
  root.set("sim", std::move(sim));

  JsonValue faults = JsonValue::makeObject();
  const auto& fc = spec.faults;
  faults.set("enabled", fc.enabled);
  faults.set("mtbf", fc.mtbf);
  faults.set("mttr", fc.mttr);
  faults.set("max_attempts", fc.maxAttempts);
  JsonValue backoff = JsonValue::makeObject();
  backoff.set("base", fc.backoffBase);
  backoff.set("factor", fc.backoffFactor);
  backoff.set("jitter", fc.backoffJitter);
  faults.set("backoff", std::move(backoff));
  // Emitted only when non-empty: absent parses to empty, so the round trip
  // holds without cluttering every fault-free canonical form.
  if (!fc.events.empty()) {
    JsonValue events = JsonValue::makeArray();
    for (const sim::ScriptedFault& e : fc.events) {
      JsonValue ev = JsonValue::makeObject();
      ev.set("at", e.time);
      ev.set("machine", static_cast<double>(e.machine));
      ev.set("kind", e.fail ? "fail" : "recover");
      events.append(std::move(ev));
    }
    faults.set("events", std::move(events));
  }
  if (!fc.initiallyOffline.empty()) {
    JsonValue offline = JsonValue::makeArray();
    for (int m : fc.initiallyOffline) offline.append(m);
    faults.set("initially_offline", std::move(offline));
  }
  root.set("faults", std::move(faults));

  JsonValue admission = JsonValue::makeObject();
  admission.set("policy", std::string(fed::toString(spec.admission.policy)));
  admission.set("queue_bound", spec.admission.queueBound);
  admission.set("chance_threshold", spec.admission.chanceThreshold);
  admission.set("spillover", spec.admission.spillover);
  root.set("admission", std::move(admission));

  JsonValue federation = JsonValue::makeObject();
  federation.set("enabled", spec.federationEnabled);
  federation.set("clusters", spec.fedClusters);
  federation.set("routing", std::string(fed::toString(spec.fedRouting)));
  federation.set("dispatch_latency", spec.fedDispatchLatency);
  // Emitted only when set: an empty shape list means "mirror the base
  // cluster", and round-tripping an explicit empty array would trip the
  // shapes-vs-clusters count check.
  if (!spec.fedClusterShapes.empty()) {
    JsonValue shapes = JsonValue::makeArray();
    for (const std::vector<int>& shape : spec.fedClusterShapes) {
      JsonValue types = JsonValue::makeArray();
      for (int t : shape) types.append(t);
      shapes.append(std::move(types));
    }
    federation.set("cluster_shapes", std::move(shapes));
  }
  root.set("federation", std::move(federation));

  JsonValue elasticity = elasticityBlock(spec.elasticity);
  if (!spec.elasticityOverrides.empty()) {
    JsonValue overrides = JsonValue::makeArray();
    for (const ScenarioSpec::ElasticityOverride& ov :
         spec.elasticityOverrides) {
      JsonValue o = elasticityBlock(ov.config);
      o.set("cluster", ov.cluster);
      overrides.append(std::move(o));
    }
    elasticity.set("cluster_overrides", std::move(overrides));
  }
  root.set("elasticity", std::move(elasticity));

  JsonValue run = JsonValue::makeObject();
  run.set("trials", spec.trials);
  run.set("jobs", spec.jobs);
  run.set("seed", static_cast<double>(spec.seed));
  run.set("scale", spec.scale);
  run.set("warmup", static_cast<double>(spec.warmup));
  root.set("run", std::move(run));
  return root;
}

std::string scenarioModelKey(const ScenarioSpec& spec) {
  // Serialize exactly the fields PaperScenario's constructor consumes (plus
  // the cluster shape, which custom models bind from the same PET).
  std::ostringstream key;
  const auto& s = spec.synthesis;
  key << spec.petSeed << '|' << util::formatJsonNumber(spec.scale) << '|'
      << util::formatJsonNumber(spec.targetRhoAt15k) << '|' << s.numTaskTypes
      << '|' << s.numMachineTypes << '|' << util::formatJsonNumber(s.binWidth)
      << '|' << util::formatJsonNumber(s.baseMeanLo) << '|'
      << util::formatJsonNumber(s.baseMeanHi) << '|'
      << util::formatJsonNumber(s.speedLo) << '|'
      << util::formatJsonNumber(s.speedHi) << '|'
      << util::formatJsonNumber(s.affinityLo) << '|'
      << util::formatJsonNumber(s.affinityHi) << '|'
      << util::formatJsonNumber(s.shapeLo) << '|'
      << util::formatJsonNumber(s.shapeHi) << '|' << s.samplesPerHistogram;
  return key.str();
}

BoundScenario bindScenario(const ScenarioSpec& spec,
                           std::shared_ptr<const PaperScenario> paper) {
  BoundScenario bound;
  if (paper == nullptr) {
    PaperScenario::Options options;
    options.petSeed = spec.petSeed;
    options.scale = spec.scale;
    options.trials = spec.trials;
    options.jobs = spec.jobs;
    options.targetRhoAt15k = spec.targetRhoAt15k;
    options.synthesis = spec.synthesis;
    paper = std::make_shared<const PaperScenario>(options);
  }
  bound.paper = paper;

  switch (spec.clusterKind) {
    case ScenarioSpec::ClusterKind::Heterogeneous:
      bound.model = &paper->hetero();
      break;
    case ScenarioSpec::ClusterKind::Homogeneous:
      bound.model = &paper->homo();
      break;
    case ScenarioSpec::ClusterKind::Custom: {
      for (int t : spec.customMachineTypes) {
        if (t >= spec.synthesis.numMachineTypes) {
          throw ScenarioError(
              "cluster.machine_types: machine type " + std::to_string(t) +
              " out of range (PET has " +
              std::to_string(spec.synthesis.numMachineTypes) +
              " machine types)");
        }
      }
      bound.customModel = std::make_unique<workload::BoundExecutionModel>(
          paper->pet(), spec.customMachineTypes);
      bound.model = bound.customModel.get();
      break;
    }
  }

  if (spec.federationEnabled) {
    bound.federated = true;
    bound.federation.clusters = spec.fedClusters;
    bound.federation.routing = spec.fedRouting;
    bound.federation.dispatchLatency = spec.fedDispatchLatency;
    bound.federation.admission = spec.admission;
    if (spec.fedClusterShapes.empty()) {
      // Every cluster mirrors the base cluster — share the one bound model.
      bound.fedModels.assign(spec.fedClusters, bound.model);
    } else {
      for (const std::vector<int>& shape : spec.fedClusterShapes) {
        for (int t : shape) {
          if (t >= spec.synthesis.numMachineTypes) {
            throw ScenarioError(
                "federation.cluster_shapes: machine type " +
                std::to_string(t) + " out of range (PET has " +
                std::to_string(spec.synthesis.numMachineTypes) +
                " machine types)");
          }
        }
        bound.fedOwned.push_back(
            std::make_unique<workload::BoundExecutionModel>(paper->pet(),
                                                            shape));
        bound.fedModels.push_back(bound.fedOwned.back().get());
      }
    }
  }

  ExperimentSpec& e = bound.experiment;
  if (spec.pattern == workload::ArrivalPattern::Bursty) {
    // Absolute-time IPPP intensity calibrated to the bound cluster's
    // capacity, exactly as examples/burst_stress.cpp derives it.
    double meanExec = 0.0;
    for (int k = 0; k < bound.model->numTaskTypes(); ++k) {
      for (int j = 0; j < bound.model->numMachines(); ++j) {
        meanExec += bound.model->expectedExec(k, j);
      }
    }
    meanExec /= static_cast<double>(bound.model->numTaskTypes() *
                                    bound.model->numMachines());
    const double capacity =
        static_cast<double>(bound.model->numMachines()) / meanExec;
    e.arrival.pattern = workload::ArrivalPattern::Bursty;
    e.arrival.span = spec.burstSpan;
    e.arrival.totalTasks = 0;
    e.arrival.numTaskTypes = spec.synthesis.numTaskTypes;
    e.arrival.burstBaseRate = spec.burstBaseFactor * capacity;
    e.arrival.burstPeakRate = spec.burstPeakFactor * capacity;
    e.arrival.burstWidth = spec.burstWidth;
    e.arrival.burstPeriod = spec.burstPeriod;
    e.sim.warmupMargin =
        spec.warmup < 0 ? 0 : static_cast<std::size_t>(spec.warmup);
  } else {
    e = paper->experimentSpec(spec.rate, spec.pattern);
    e.arrival.numSpikes = spec.numSpikes;
    e.arrival.spikeFactor = spec.spikeFactor;
    e.arrival.gapVarianceFraction = spec.gapVarianceFraction;
    e.sim.warmupMargin = spec.warmup < 0
                             ? paper->warmupMargin(spec.rate)
                             : static_cast<std::size_t>(spec.warmup);
  }
  e.deadline = spec.deadline;
  e.stream = spec.stream;
  e.trials = spec.trials;
  e.jobs = spec.jobs;
  e.baseSeed = spec.seed;

  core::SimulationConfig& sim = e.sim;
  sim.heuristic = spec.heuristic;
  sim.heuristicOptions = spec.heuristicOptions;
  sim.pruning = spec.pruning;
  sim.machineQueueCapacity = spec.machineQueueCapacity;
  sim.abortRunningAtDeadline = spec.abortRunningAtDeadline;
  sim.pctCacheEnabled = spec.pctCacheEnabled;
  sim.incrementalMappingEnabled = spec.incrementalMappingEnabled;
  sim.incrementalMapMinQueue = spec.incrementalMapMinQueue;
  sim.faults = spec.faults;
  sim.faults.validate();

  // --- elasticity binding ---
  // Runs LAST on purpose: the bursty arrival calibration above reads the
  // BASE cluster's capacity, so elastic and fixed-capacity variants of one
  // scenario see the identical workload (the frontier comparison depends
  // on it).  Parked surplus slots are appended after the base shape, so
  // machine ids 0..B-1 stay exactly the fixed-capacity cluster.
  if (!spec.federationEnabled && spec.elasticity.active()) {
    std::vector<int> expanded;
    sim.elasticity =
        resolveElasticity(spec.elasticity, machineTypesOf(*bound.model),
                          spec.synthesis.numMachineTypes, expanded,
                          "elasticity");
    if (expanded.size() > sim.elasticity.baseMachines) {
      bound.customModel = std::make_unique<workload::BoundExecutionModel>(
          paper->pet(), expanded);
      bound.model = bound.customModel.get();
    }
  } else if (spec.federationEnabled &&
             (spec.elasticity.active() || !spec.elasticityOverrides.empty())) {
    // Per-cluster resolution: an override replaces the base block for its
    // cluster; every cluster gets its own expanded model and a
    // fully-resolved FederationSpec.clusterElasticity entry (the engine
    // then never consults the shared SimulationConfig block).
    for (std::size_t c = 0; c < spec.fedClusters; ++c) {
      const sim::ElasticityConfig* src = &spec.elasticity;
      for (const ScenarioSpec::ElasticityOverride& ov :
           spec.elasticityOverrides) {
        if (ov.cluster == c) src = &ov.config;
      }
      if (!src->active()) {
        bound.federation.clusterElasticity.push_back(*src);
        continue;
      }
      std::vector<int> expanded;
      sim::ElasticityConfig resolved = resolveElasticity(
          *src, machineTypesOf(*bound.fedModels[c]),
          spec.synthesis.numMachineTypes, expanded, "elasticity");
      if (expanded.size() > resolved.baseMachines) {
        bound.fedOwned.push_back(
            std::make_unique<workload::BoundExecutionModel>(paper->pet(),
                                                            expanded));
        bound.fedModels[c] = bound.fedOwned.back().get();
      }
      bound.federation.clusterElasticity.push_back(std::move(resolved));
    }
  }
  return bound;
}

}  // namespace hcs::exp
