#pragma once
// Declarative scenario files: a JSON format that fully describes one
// experiment — PET synthesis/seed, cluster shape, arrival process
// (including the bursty IPPP pattern), deadline spec, heuristic/pruning/
// simulation config, and trials/jobs/scale — so the §V evaluation grid is
// data, not compiled-in C++.  scenario_spec covers a single experiment;
// sweep.h adds the parameter-sweep axes that expand one file into a grid.
//
// Design rules:
//  - Every field has the same default as the hand-written bench path, and
//    binding goes through the same PaperScenario + ExperimentSpec
//    machinery, so a scenario file reproduces its figure bench
//    byte-identically at the same scale/seed.
//  - Parsing is strict: unknown keys and ill-typed/out-of-range values are
//    rejected with line-numbered errors (util/json keeps source lines).
//  - parse -> serialize -> parse is the identity (canonical full form).

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/config.h"
#include "exp/experiment.h"
#include "exp/scenario.h"
#include "fed/federation.h"
#include "util/json.h"
#include "workload/arrival.h"
#include "workload/deadline.h"
#include "workload/pet_matrix.h"

namespace hcs::exp {

/// Schema violations (unknown key, bad type, out-of-range value); the
/// message carries "line N:" context from the scenario file.
class ScenarioError : public std::runtime_error {
 public:
  explicit ScenarioError(const std::string& message)
      : std::runtime_error(message) {}
};

/// One fully-described experiment.  Field defaults mirror the bench
/// defaults exactly (PaperScenario::Options, ExperimentSpec,
/// SimulationConfig), so an empty scenario object `{}` is the canonical
/// paper setup: MM, heterogeneous cluster, 15k spiky, full pruning.
struct ScenarioSpec {
  std::string name;
  std::string description;

  // --- pet ---
  std::uint64_t petSeed = 2019;
  double targetRhoAt15k = 1.25;
  workload::PetSynthesisConfig synthesis;

  // --- cluster ---
  enum class ClusterKind { Heterogeneous, Homogeneous, Custom };
  ClusterKind clusterKind = ClusterKind::Heterogeneous;
  /// Custom clusters: machine i is of PET machine type customMachineTypes[i]
  /// (any mix, any count — e.g. 6 fast + 2 slow).
  std::vector<int> customMachineTypes;

  // --- workload ---
  /// Paper-equivalent task count (15000/20000/25000 in §V); scaled by
  /// run.scale.  Ignored by the bursty pattern.
  std::size_t rate = 15000;
  workload::ArrivalPattern pattern = workload::ArrivalPattern::Spiky;
  int numSpikes = 6;
  double spikeFactor = 3.0;
  double gapVarianceFraction = 0.1;
  /// Bursty IPPP intensity, relative to the bound cluster's capacity
  /// (tasks/time-unit it can serve): lambda(t) = base + peak * Gaussian
  /// burst train.  Spans/periods/widths are absolute time units and are
  /// NOT scaled by run.scale.
  double burstBaseFactor = 0.9;
  double burstPeakFactor = 7.0;
  double burstWidth = 4.0;
  double burstPeriod = 80.0;
  double burstSpan = 400.0;
  workload::DeadlineSpec deadline;

  // --- stream ---
  /// Bounded-memory arrival mode (scenario `stream` block).  When enabled,
  /// every trial pulls its tasks from a TaskStream instead of materializing
  /// the full workload: generated on the fly (identical results to the
  /// materialized trial) or replayed from an external trace file
  /// (stream.trace + stream.format).  max_tasks / max_time cut the stream
  /// short, which is how a scenario replays "the first N tasks" of a
  /// million-task trace.
  workload::StreamSpec stream;

  // --- sim ---
  std::string heuristic = "MM";
  heuristics::HeuristicOptions heuristicOptions;
  pruning::PruningConfig pruning;
  std::size_t machineQueueCapacity = 4;
  bool abortRunningAtDeadline = false;
  bool pctCacheEnabled = true;
  bool incrementalMappingEnabled = true;
  /// Adaptive-engine threshold (sim.incremental_map_min_queue): mapping
  /// rounds with fewer queued tasks than this run the reference evaluation;
  /// 0 forces every round down the incremental path.  Mirrors (and must
  /// stay in step with) core::SimulationConfig::incrementalMapMinQueue.
  std::size_t incrementalMapMinQueue = 16;

  // --- faults ---
  /// Machine churn + retry policy (scenario `faults` block).  The default
  /// (disabled) leaves the engine byte-identical to the fault-free build.
  /// Scripted events and initially_offline name machine indices, applied
  /// to the matching index in EVERY cluster of a federated scenario;
  /// out-of-range indices are rejected when the trial starts.
  sim::FaultConfig faults;

  // --- admission ---
  /// Gateway admission control (scenario `admission` block).  Any policy
  /// other than accept_all requires federation.enabled — the gateway is
  /// what applies it.
  fed::AdmissionConfig admission;

  // --- federation ---
  /// When enabled, the experiment runs through the federated dispatch
  /// engine (src/fed/): `fedClusters` clusters behind a gateway routing by
  /// `fedRouting` with `fedDispatchLatency` delivery delay.  A federation
  /// of 1 cluster with zero latency reproduces the plain engine
  /// bit-for-bit (the oracle contract in tests/federation_test.cpp).
  bool federationEnabled = false;
  std::size_t fedClusters = 1;
  fed::RoutingPolicyKind fedRouting = fed::RoutingPolicyKind::RoundRobin;
  double fedDispatchLatency = 0.0;
  /// Per-cluster machine shapes (capacity/heterogeneity skew): entry c is
  /// cluster c's machine → PET-machine-type map, like cluster.machine_types
  /// but per federation cluster.  Empty = every cluster mirrors the base
  /// cluster's shape.  When set, must have exactly fedClusters entries.
  std::vector<std::vector<int>> fedClusterShapes;

  // --- elasticity ---
  /// Elastic capacity control (scenario `elasticity` block).  The default
  /// (disabled) leaves the engine byte-identical to the fixed-capacity
  /// build.  `pool` bounds capacity per PET machine type; the bind layer
  /// expands the cluster with parked surplus slots up to each group's max
  /// (baseMachines is derived there, never parsed).
  sim::ElasticityConfig elasticity;
  /// Fully-resolved per-cluster controller configs (federated scenarios
  /// only): parsed from `elasticity.cluster_overrides`, each starting from
  /// the base block with its override keys applied — so serialization
  /// round-trips without a diff-vs-base merge step.
  struct ElasticityOverride {
    std::size_t cluster = 0;
    sim::ElasticityConfig config;
  };
  std::vector<ElasticityOverride> elasticityOverrides;

  // --- run ---
  std::size_t trials = 8;
  std::size_t jobs = 1;
  std::uint64_t seed = 2019;
  double scale = 0.1;
  /// Warm-up trim margin; -1 = auto (the paper's 100-of-15000 ratio for
  /// rate-based patterns, 0 for bursty).
  long warmup = -1;
};

/// Parses a scenario object.  Throws ScenarioError on unknown keys,
/// ill-typed values, or out-of-range values, naming the source line.
/// (The "sweep" key belongs to the document level — see sweep.h — and is
/// rejected here.)
ScenarioSpec parseScenarioSpec(const util::JsonValue& json);

/// Canonical full-form serialization; parseScenarioSpec(toJson(s))
/// reproduces `s` exactly.
util::JsonValue scenarioSpecToJson(const ScenarioSpec& spec);

/// A scenario bound to concrete models, ready to run.
struct BoundScenario {
  /// Owns the PET matrix and the hetero/homo clusters (shared so sweep
  /// grids reuse one synthesis across grid points).
  std::shared_ptr<const PaperScenario> paper;
  /// Set for ClusterKind::Custom, and for elastic scenarios (where the base
  /// shape is expanded with parked surplus slots up to each pool group's
  /// max).
  std::unique_ptr<workload::BoundExecutionModel> customModel;
  /// The cluster this scenario runs against (points into paper or
  /// customModel).
  const workload::BoundExecutionModel* model = nullptr;
  /// Fully-populated spec for runExperiment().
  ExperimentSpec experiment;

  /// Federated scenarios (spec.federationEnabled): the gateway shape and
  /// one bound model per cluster.  `fedModels` point into fedOwned (and/or
  /// `model` for clusters mirroring the base shape).
  bool federated = false;
  fed::FederationSpec federation;
  std::vector<std::unique_ptr<workload::BoundExecutionModel>> fedOwned;
  std::vector<const workload::BoundExecutionModel*> fedModels;
};

/// Key over the fields that determine PaperScenario construction (PET
/// seed/synthesis, scale, target rho); equal keys may share one
/// PaperScenario across bindScenario calls.
std::string scenarioModelKey(const ScenarioSpec& spec);

/// Binds `spec` to models and an ExperimentSpec.  Pass a `paper` previously
/// obtained from a spec with the same scenarioModelKey() to skip the PET
/// re-synthesis; pass nullptr to build fresh.
BoundScenario bindScenario(const ScenarioSpec& spec,
                           std::shared_ptr<const PaperScenario> paper = {});

}  // namespace hcs::exp
