#include "exp/parallel.h"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace hcs::exp {

namespace {
/// Test-only replacement for worker-thread creation (see
/// setSpawnHookForTesting).
std::thread (*g_spawnHook)(const std::function<void()>&) = nullptr;
}  // namespace

void ParallelExecutor::setSpawnHookForTesting(
    std::thread (*hook)(const std::function<void()>&)) {
  g_spawnHook = hook;
}

std::size_t resolveJobs(std::size_t jobs) {
  if (jobs != 0) return jobs;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

void ParallelExecutor::run(std::size_t n,
                           const std::function<void(std::size_t)>& fn) const {
  if (n == 0) return;
  const std::size_t workers = std::min(resolveJobs(jobs_), n);
  if (workers <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::mutex errorMutex;
  std::size_t firstErrorIndex = n;
  std::exception_ptr firstError;

  auto worker = [&]() {
    while (true) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        fn(i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(errorMutex);
        if (i < firstErrorIndex) {
          firstErrorIndex = i;
          firstError = std::current_exception();
        }
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(workers - 1);
  try {
    for (std::size_t w = 1; w < workers; ++w) {
      if (g_spawnHook != nullptr) {
        threads.emplace_back(g_spawnHook(worker));
      } else {
        threads.emplace_back(worker);
      }
    }
  } catch (...) {
    // A thread failed to spawn (resource limits).  Degrade instead of
    // aborting the experiment: the calling thread plus however many
    // workers DID spawn drain the same fetch-add queue, so every slot is
    // still filled and the trial-order merge stays byte-identical to the
    // serial path — only wall-clock suffers.
  }
  worker();
  for (std::thread& t : threads) t.join();

  if (firstError) std::rethrow_exception(firstError);
}

}  // namespace hcs::exp
