#pragma once
// Deterministic fork-join execution of independent trial indices.
//
// The experiment layer runs `spec.trials` fully independent simulations —
// the paper's §V-A methodology — so the only thing a thread pool must
// guarantee is that results land in per-trial slots and are *merged* in
// trial order afterwards.  ParallelExecutor provides exactly that: a
// fetch-add work queue over [0, n) with no ordering promises during
// execution and all-slots-filled semantics at the join, which keeps every
// aggregate bit-identical to the serial path regardless of the job count.

#include <cstddef>
#include <functional>
#include <thread>

namespace hcs::exp {

/// Resolves a jobs knob: 0 means one job per hardware thread (at least 1),
/// anything else is taken literally.
std::size_t resolveJobs(std::size_t jobs);

class ParallelExecutor {
 public:
  /// `jobs` as passed (0 = auto); the executor resolves it per run().
  explicit ParallelExecutor(std::size_t jobs = 1) : jobs_(jobs) {}

  std::size_t jobs() const { return jobs_; }

  /// Invokes fn(i) for every i in [0, n) and blocks until all calls have
  /// returned.  With an effective job count of 1 (or n <= 1) everything
  /// runs inline on the calling thread — zero threading overhead for the
  /// serial path.  If any fn(i) throws, the exception for the smallest
  /// such i is rethrown after the join (deterministic error reporting).
  void run(std::size_t n, const std::function<void(std::size_t)>& fn) const;

  /// Test seam: replaces worker-thread creation inside run() (throw from
  /// the hook to simulate resource exhaustion and exercise the degraded
  /// path).  Pass nullptr to restore the real std::thread path.  Not
  /// thread-safe; tests only.
  static void setSpawnHookForTesting(
      std::thread (*hook)(const std::function<void()>&));

 private:
  std::size_t jobs_;
};

}  // namespace hcs::exp
