#include "exp/report.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace hcs::exp {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  if (header_.empty()) {
    throw std::invalid_argument("Table: empty header");
  }
}

void Table::addRow(std::vector<std::string> cells) {
  if (cells.size() != header_.size()) {
    throw std::invalid_argument("Table: row width does not match header");
  }
  rows_.push_back(std::move(cells));
}

namespace {

/// Terminal cells occupied by a UTF-8 string (counts code points, not
/// bytes; the tables only use single-width characters such as '±').
std::size_t displayWidth(const std::string& s) {
  std::size_t width = 0;
  for (unsigned char c : s) {
    if ((c & 0xC0) != 0x80) ++width;  // skip UTF-8 continuation bytes
  }
  return width;
}

}  // namespace

void Table::print(std::ostream& out) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    width[c] = displayWidth(header_[c]);
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], displayWidth(row[c]));
    }
  }
  auto printRow = [&](const std::vector<std::string>& row) {
    out << '|';
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << ' ' << row[c]
          << std::string(width[c] - displayWidth(row[c]), ' ') << " |";
    }
    out << '\n';
  };
  printRow(header_);
  out << '|';
  for (std::size_t c = 0; c < header_.size(); ++c) {
    out << std::string(width[c] + 2, '-') << '|';
  }
  out << '\n';
  for (const auto& row : rows_) printRow(row);
}

void Table::printCsv(std::ostream& out) const {
  auto printRow = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out << ',';
      out << row[c];
    }
    out << '\n';
  };
  printRow(header_);
  for (const auto& row : rows_) printRow(row);
}

std::string formatValue(double value, int precision) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(precision) << value;
  return out.str();
}

std::string formatCi(const stats::ConfidenceInterval& ci, int precision) {
  return formatValue(ci.mean, precision) + " ±" +
         formatValue(ci.halfWidth, precision);
}

Table experimentMetricsTable(const ExperimentResult& result) {
  Table table({"metric", "mean ±95% CI"});
  table.addRow({"robustness (% on time)", formatCi(result.robustnessCi)});
  table.addRow({"completed late %",
                formatCi(stats::meanConfidenceInterval(
                    result.completedLatePct))});
  table.addRow({"dropped reactive %",
                formatCi(stats::meanConfidenceInterval(
                    result.droppedReactivePct))});
  table.addRow({"dropped proactive %",
                formatCi(stats::meanConfidenceInterval(
                    result.droppedProactivePct))});
  table.addRow({"deferrals per task",
                formatCi(stats::meanConfidenceInterval(
                    result.deferralsPerTask), 2)});
  table.addRow({"mean machine utilization",
                formatCi(stats::meanConfidenceInterval(
                    result.meanUtilization), 2)});
  table.addRow({"abandoned %",
                formatCi(stats::meanConfidenceInterval(
                    result.abandonedPct))});
  table.addRow({"rejected %",
                formatCi(stats::meanConfidenceInterval(
                    result.rejectedPct))});
  table.addRow({"retries per task",
                formatCi(stats::meanConfidenceInterval(
                    result.retriesPerTask), 2)});
  table.addRow({"failed-then-met %",
                formatCi(stats::meanConfidenceInterval(
                    result.failedThenMetPct))});
  table.addRow({"machine failures per trial",
                formatCi(stats::meanConfidenceInterval(
                    result.machineFailures), 2)});
  table.addRow({"utilization % (of online)",
                formatCi(stats::meanConfidenceInterval(
                    result.utilizationPct))});
  table.addRow({"machine-seconds (online)",
                formatCi(stats::meanConfidenceInterval(
                    result.machineSeconds))});
  table.addRow({"scale-ups per trial",
                formatCi(stats::meanConfidenceInterval(
                    result.scaleUps), 2)});
  table.addRow({"scale-downs per trial",
                formatCi(stats::meanConfidenceInterval(
                    result.scaleDowns), 2)});
  return table;
}

namespace {

/// The sweep metrics reported per grid point, in report order.
struct MetricColumn {
  const char* key;
  stats::ConfidenceInterval (*extract)(const ExperimentResult&);
};

stats::ConfidenceInterval ciOf(const stats::RunningStats& stats) {
  return stats::meanConfidenceInterval(stats);
}

constexpr MetricColumn kMetrics[] = {
    {"robustness_pct",
     [](const ExperimentResult& r) { return r.robustnessCi; }},
    {"completed_late_pct",
     [](const ExperimentResult& r) { return ciOf(r.completedLatePct); }},
    {"dropped_reactive_pct",
     [](const ExperimentResult& r) { return ciOf(r.droppedReactivePct); }},
    {"dropped_proactive_pct",
     [](const ExperimentResult& r) { return ciOf(r.droppedProactivePct); }},
    {"deferrals_per_task",
     [](const ExperimentResult& r) { return ciOf(r.deferralsPerTask); }},
    {"mean_utilization",
     [](const ExperimentResult& r) { return ciOf(r.meanUtilization); }},
    {"abandoned_pct",
     [](const ExperimentResult& r) { return ciOf(r.abandonedPct); }},
    {"rejected_pct",
     [](const ExperimentResult& r) { return ciOf(r.rejectedPct); }},
    {"retries_per_task",
     [](const ExperimentResult& r) { return ciOf(r.retriesPerTask); }},
    {"failed_then_met_pct",
     [](const ExperimentResult& r) { return ciOf(r.failedThenMetPct); }},
    {"machine_failures",
     [](const ExperimentResult& r) { return ciOf(r.machineFailures); }},
    {"utilization_pct",
     [](const ExperimentResult& r) { return ciOf(r.utilizationPct); }},
    {"machine_seconds",
     [](const ExperimentResult& r) { return ciOf(r.machineSeconds); }},
    {"scale_ups",
     [](const ExperimentResult& r) { return ciOf(r.scaleUps); }},
    {"scale_downs",
     [](const ExperimentResult& r) { return ciOf(r.scaleDowns); }},
};

void emitTable(std::ostream& out, const Table& table, bool csv) {
  if (csv) {
    table.printCsv(out);
  } else {
    table.print(out);
  }
}

}  // namespace

util::JsonValue sweepReportJson(const ScenarioDoc& doc,
                                const std::vector<SweepOutcome>& outcomes) {
  using util::JsonValue;
  const ScenarioSpec base = doc.baseSpec();
  JsonValue root = JsonValue::makeObject();
  root.set("schema", "hcs-scenario-report-v1");
  root.set("name", base.name);
  root.set("description", base.description);
  // The fully-resolved canonical config, so the golden report also locks
  // default resolution, not just the file's explicit keys.
  root.set("config", scenarioSpecToJson(base));

  JsonValue axes = JsonValue::makeArray();
  for (const SweepAxis& axis : doc.axes) {
    JsonValue a = JsonValue::makeObject();
    a.set("label", axis.label);
    if (!axis.field.empty()) a.set("field", axis.field);
    JsonValue points = JsonValue::makeArray();
    for (const std::string& l : axis.valueLabels) points.append(l);
    a.set("points", std::move(points));
    axes.append(std::move(a));
  }
  root.set("axes", std::move(axes));

  JsonValue results = JsonValue::makeArray();
  for (const SweepOutcome& outcome : outcomes) {
    JsonValue record = JsonValue::makeObject();
    JsonValue labels = JsonValue::makeArray();
    for (const std::string& l : outcome.point.labels) labels.append(l);
    record.set("labels", std::move(labels));
    for (const MetricColumn& metric : kMetrics) {
      const stats::ConfidenceInterval ci = metric.extract(outcome.result);
      JsonValue m = JsonValue::makeObject();
      m.set("mean", ci.mean);
      m.set("ci95", ci.halfWidth);
      record.set(metric.key, std::move(m));
    }
    JsonValue trials = JsonValue::makeArray();
    for (double r : outcome.result.perTrialRobustness) trials.append(r);
    record.set("per_trial_robustness", std::move(trials));
    results.append(std::move(record));
  }
  root.set("results", std::move(results));
  return root;
}

namespace {

/// RFC-4180 quoting for the flat CSV (axis labels like "no Toggle, no
/// dropping" contain commas).
void writeCsvField(std::ostream& out, const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) {
    out << field;
    return;
  }
  out << '"';
  for (const char c : field) {
    if (c == '"') out << '"';
    out << c;
  }
  out << '"';
}

}  // namespace

void printSweepCsv(std::ostream& out, const ScenarioDoc& doc,
                   const std::vector<SweepOutcome>& outcomes) {
  for (std::size_t a = 0; a < doc.axes.size(); ++a) {
    if (a > 0) out << ',';
    writeCsvField(out, doc.axes[a].label);
  }
  for (const MetricColumn& metric : kMetrics) {
    if (!doc.axes.empty() || &metric != &kMetrics[0]) out << ',';
    out << metric.key << "_mean," << metric.key << "_ci95";
  }
  out << '\n';
  for (const SweepOutcome& outcome : outcomes) {
    for (std::size_t a = 0; a < outcome.point.labels.size(); ++a) {
      if (a > 0) out << ',';
      writeCsvField(out, outcome.point.labels[a]);
    }
    for (const MetricColumn& metric : kMetrics) {
      const stats::ConfidenceInterval ci = metric.extract(outcome.result);
      if (!doc.axes.empty() || &metric != &kMetrics[0]) out << ',';
      out << util::formatJsonNumber(ci.mean) << ','
          << util::formatJsonNumber(ci.halfWidth);
    }
    out << '\n';
  }
}

void printSweepTables(std::ostream& out, const ScenarioDoc& doc,
                      const std::vector<SweepOutcome>& outcomes, bool csv) {
  const std::size_t numAxes = doc.axes.size();
  if (numAxes == 0) {
    if (!outcomes.empty()) {
      emitTable(out, experimentMetricsTable(outcomes.front().result), csv);
    }
    return;
  }
  if (numAxes == 1) {
    Table table({doc.axes[0].label, "robustness %", "late %",
                 "dropped reactive %", "dropped proactive %",
                 "deferrals/task", "utilization"});
    for (const SweepOutcome& outcome : outcomes) {
      const ExperimentResult& r = outcome.result;
      table.addRow(
          {outcome.point.labels[0], formatCi(r.robustnessCi),
           formatCi(ciOf(r.completedLatePct)),
           formatCi(ciOf(r.droppedReactivePct)),
           formatCi(ciOf(r.droppedProactivePct)),
           formatCi(ciOf(r.deferralsPerTask), 2),
           formatCi(ciOf(r.meanUtilization), 2)});
    }
    emitTable(out, table, csv);
    return;
  }

  const SweepAxis& rowAxis = doc.axes[numAxes - 2];
  const SweepAxis& colAxis = doc.axes[numAxes - 1];
  const std::size_t cols = colAxis.size();
  const std::size_t rows = rowAxis.size();
  const std::size_t sectionSize = rows * cols;
  const std::size_t sections = outcomes.size() / sectionSize;
  for (std::size_t s = 0; s < sections; ++s) {
    if (!csv && numAxes > 2) {
      out << "--- ";
      for (std::size_t a = 0; a + 2 < numAxes; ++a) {
        if (a > 0) out << ", ";
        out << doc.axes[a].label << "="
            << outcomes[s * sectionSize].point.labels[a];
      }
      out << " ---\n";
    }
    std::vector<std::string> header = {rowAxis.label};
    header.insert(header.end(), colAxis.valueLabels.begin(),
                  colAxis.valueLabels.end());
    Table table(std::move(header));
    for (std::size_t r = 0; r < rows; ++r) {
      std::vector<std::string> row = {rowAxis.valueLabels[r]};
      for (std::size_t c = 0; c < cols; ++c) {
        const SweepOutcome& outcome =
            outcomes[s * sectionSize + r * cols + c];
        row.push_back(formatCi(outcome.result.robustnessCi));
      }
      table.addRow(std::move(row));
    }
    emitTable(out, table, csv);
    if (!csv && s + 1 < sections) out << '\n';
  }
}

}  // namespace hcs::exp
