#include "exp/report.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace hcs::exp {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  if (header_.empty()) {
    throw std::invalid_argument("Table: empty header");
  }
}

void Table::addRow(std::vector<std::string> cells) {
  if (cells.size() != header_.size()) {
    throw std::invalid_argument("Table: row width does not match header");
  }
  rows_.push_back(std::move(cells));
}

namespace {

/// Terminal cells occupied by a UTF-8 string (counts code points, not
/// bytes; the tables only use single-width characters such as '±').
std::size_t displayWidth(const std::string& s) {
  std::size_t width = 0;
  for (unsigned char c : s) {
    if ((c & 0xC0) != 0x80) ++width;  // skip UTF-8 continuation bytes
  }
  return width;
}

}  // namespace

void Table::print(std::ostream& out) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    width[c] = displayWidth(header_[c]);
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], displayWidth(row[c]));
    }
  }
  auto printRow = [&](const std::vector<std::string>& row) {
    out << '|';
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << ' ' << row[c]
          << std::string(width[c] - displayWidth(row[c]), ' ') << " |";
    }
    out << '\n';
  };
  printRow(header_);
  out << '|';
  for (std::size_t c = 0; c < header_.size(); ++c) {
    out << std::string(width[c] + 2, '-') << '|';
  }
  out << '\n';
  for (const auto& row : rows_) printRow(row);
}

void Table::printCsv(std::ostream& out) const {
  auto printRow = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out << ',';
      out << row[c];
    }
    out << '\n';
  };
  printRow(header_);
  for (const auto& row : rows_) printRow(row);
}

std::string formatValue(double value, int precision) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(precision) << value;
  return out.str();
}

std::string formatCi(const stats::ConfidenceInterval& ci, int precision) {
  return formatValue(ci.mean, precision) + " ±" +
         formatValue(ci.halfWidth, precision);
}

}  // namespace hcs::exp
