#include "exp/sweep.h"

#include <cmath>
#include <fstream>
#include <map>
#include <sstream>

#include "fed/fed_experiment.h"

namespace hcs::exp {

namespace {

using util::JsonValue;

[[noreturn]] void fail(const JsonValue& at, const std::string& message) {
  std::ostringstream out;
  if (at.line() > 0) out << "line " << at.line() << ": ";
  out << message;
  throw ScenarioError(out.str());
}

std::string scalarLabel(const JsonValue& value) {
  switch (value.type()) {
    case JsonValue::Type::Null: return "null";
    case JsonValue::Type::Bool: return value.asBool() ? "true" : "false";
    case JsonValue::Type::Number:
      return util::formatJsonNumber(value.asNumber());
    case JsonValue::Type::String: return value.asString();
    default: return "<composite>";
  }
}

SweepAxis parseAxis(const JsonValue& json) {
  SweepAxis axis;
  if (!json.isObject()) fail(json, "sweep: each axis must be an object");
  const JsonValue* field = json.find("field");
  const JsonValue* values = json.find("values");
  const JsonValue* labels = json.find("labels");
  const JsonValue* range = json.find("range");
  const JsonValue* label = json.find("label");
  const JsonValue* cases = json.find("cases");
  for (const auto& member : json.object()) {
    if (member.first != "field" && member.first != "values" &&
        member.first != "labels" && member.first != "range" &&
        member.first != "label" && member.first != "cases") {
      fail(member.second, "sweep axis: unknown key \"" + member.first + "\"");
    }
  }

  if (label != nullptr) {
    if (!label->isString()) fail(*label, "sweep axis: label must be a string");
    axis.label = label->asString();
  }

  if (cases != nullptr) {
    if (field != nullptr || values != nullptr || range != nullptr ||
        labels != nullptr) {
      fail(json, "sweep axis: \"cases\" excludes field/values/range/labels");
    }
    if (!cases->isArray() || cases->array().empty()) {
      fail(*cases, "sweep axis: cases must be a non-empty array");
    }
    for (const JsonValue& c : cases->array()) {
      if (!c.isObject()) fail(c, "sweep axis: each case must be an object");
      SweepCase sweepCase;
      for (const auto& member : c.object()) {
        if (member.first == "name") {
          if (!member.second.isString()) {
            fail(member.second, "sweep case: name must be a string");
          }
          sweepCase.name = member.second.asString();
        } else if (member.first == "set") {
          if (!member.second.isObject()) {
            fail(member.second, "sweep case: set must be an object");
          }
          for (const auto& assignment : member.second.object()) {
            sweepCase.sets.emplace_back(assignment.first, assignment.second);
          }
        } else {
          fail(member.second,
               "sweep case: unknown key \"" + member.first + "\"");
        }
      }
      if (sweepCase.name.empty()) fail(c, "sweep case: missing name");
      axis.cases.push_back(std::move(sweepCase));
      axis.valueLabels.push_back(axis.cases.back().name);
    }
    if (axis.label.empty()) axis.label = "case";
    return axis;
  }

  if (field == nullptr || !field->isString() || field->asString().empty()) {
    fail(json, "sweep axis: needs a \"field\" path (or \"cases\")");
  }
  axis.field = field->asString();
  if (axis.label.empty()) axis.label = axis.field;

  if ((values != nullptr) == (range != nullptr)) {
    fail(json, "sweep axis: exactly one of \"values\" or \"range\" required");
  }
  if (values != nullptr) {
    if (!values->isArray() || values->array().empty()) {
      fail(*values, "sweep axis: values must be a non-empty array");
    }
    axis.values = values->array();
  } else {
    if (!range->isObject()) {
      fail(*range, "sweep axis: range must be {from, to, step}");
    }
    double from = 0, to = 0, step = 0;
    for (const auto& member : range->object()) {
      if (!member.second.isNumber()) {
        fail(member.second, "sweep axis range: values must be numbers");
      }
      if (member.first == "from") {
        from = member.second.asNumber();
      } else if (member.first == "to") {
        to = member.second.asNumber();
      } else if (member.first == "step") {
        step = member.second.asNumber();
      } else {
        fail(member.second,
             "sweep axis range: unknown key \"" + member.first + "\"");
      }
    }
    if (range->find("from") == nullptr || range->find("to") == nullptr ||
        range->find("step") == nullptr) {
      fail(*range, "sweep axis range: needs from, to and step");
    }
    if (step <= 0.0) fail(*range, "sweep axis range: step must be positive");
    if (to < from) fail(*range, "sweep axis range: to must be >= from");
    // Count-based expansion avoids accumulating step rounding error.
    const auto count =
        static_cast<std::size_t>(std::floor((to - from) / step + 1e-9)) + 1;
    axis.values.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      axis.values.emplace_back(from + static_cast<double>(i) * step);
    }
  }

  if (labels != nullptr) {
    if (!labels->isArray() || labels->array().size() != axis.values.size()) {
      fail(*labels,
           "sweep axis: labels must be an array matching values 1:1");
    }
    for (const JsonValue& l : labels->array()) {
      if (!l.isString()) fail(l, "sweep axis: labels must be strings");
      axis.valueLabels.push_back(l.asString());
    }
  } else {
    for (const JsonValue& v : axis.values) {
      axis.valueLabels.push_back(scalarLabel(v));
    }
  }
  return axis;
}

}  // namespace

void setJsonPath(JsonValue& root, const std::string& path, JsonValue value) {
  if (path.empty()) throw ScenarioError("set: empty path");
  JsonValue* node = &root;
  std::size_t start = 0;
  while (true) {
    const std::size_t dot = path.find('.', start);
    const std::string key = path.substr(start, dot - start);
    if (key.empty()) {
      throw ScenarioError("set: malformed path \"" + path + "\"");
    }
    if (!node->isObject()) {
      throw ScenarioError("set: \"" + path.substr(0, start) +
                          "\" is not an object");
    }
    if (dot == std::string::npos) {
      node->set(key, std::move(value));
      return;
    }
    JsonValue* child = node->find(key);
    if (child == nullptr) {
      child = &node->set(key, JsonValue::makeObject());
    }
    node = child;
    start = dot + 1;
  }
}

void applySetDirective(JsonValue& root, const std::string& directive) {
  const std::size_t eq = directive.find('=');
  if (eq == std::string::npos || eq == 0) {
    throw ScenarioError("--set expects path=value, got \"" + directive +
                        "\"");
  }
  const std::string path = directive.substr(0, eq);
  const std::string text = directive.substr(eq + 1);
  JsonValue value;
  try {
    value = util::parseJson(text);
  } catch (const util::JsonError&) {
    value = JsonValue(text);  // bare word: treat as a string
  }
  setJsonPath(root, path, std::move(value));
}

ScenarioDoc parseScenarioDoc(const std::string& text,
                             const std::string& origin) {
  ScenarioDoc doc;
  doc.origin = origin;
  JsonValue root = util::parseJson(text, origin);
  if (!root.isObject()) {
    throw ScenarioError(origin.empty()
                            ? "scenario: expected a JSON object"
                            : origin + ": expected a JSON object");
  }
  JsonValue::Object& members = root.object();
  doc.base = JsonValue::makeObject();
  const JsonValue* sweep = nullptr;
  for (JsonValue::Member& member : members) {
    if (member.first == "sweep") {
      sweep = &member.second;
    } else {
      doc.base.object().push_back(std::move(member));
    }
  }
  // Parse the axes, then validate eagerly: the base schema, then every
  // patched grid point (a sweep value of the wrong type should fail at
  // load, not mid-run).  Schema errors get the document origin prefixed,
  // so "line N" is attributable when several files (or a --set-patched
  // canonical form) are in play.
  try {
    if (sweep != nullptr) {
      if (!sweep->isArray()) {
        fail(*sweep, "sweep: expected an array of axes");
      }
      for (const JsonValue& axis : sweep->array()) {
        doc.axes.push_back(parseAxis(axis));
      }
    }
    (void)parseScenarioSpec(doc.base);
    (void)expandGrid(doc);
  } catch (const ScenarioError& e) {
    if (origin.empty()) throw;
    throw ScenarioError(origin + ": " + e.what());
  }
  return doc;
}

ScenarioDoc loadScenarioDoc(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw ScenarioError(path + ": cannot open file");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parseScenarioDoc(buffer.str(), path);
}

std::string writeScenarioDoc(const ScenarioDoc& doc) {
  JsonValue root = doc.base;
  if (!doc.axes.empty()) {
    JsonValue sweep = JsonValue::makeArray();
    for (const SweepAxis& axis : doc.axes) {
      JsonValue a = JsonValue::makeObject();
      a.set("label", axis.label);
      if (axis.isCases()) {
        JsonValue cases = JsonValue::makeArray();
        for (const SweepCase& c : axis.cases) {
          JsonValue obj = JsonValue::makeObject();
          obj.set("name", c.name);
          JsonValue set = JsonValue::makeObject();
          for (const auto& [path, value] : c.sets) set.set(path, value);
          obj.set("set", std::move(set));
          cases.append(std::move(obj));
        }
        a.set("cases", std::move(cases));
      } else {
        a.set("field", axis.field);
        JsonValue values = JsonValue::makeArray();
        for (const JsonValue& v : axis.values) values.append(v);
        a.set("values", std::move(values));
        JsonValue labels = JsonValue::makeArray();
        for (const std::string& l : axis.valueLabels) labels.append(l);
        a.set("labels", std::move(labels));
      }
      sweep.append(std::move(a));
    }
    root.set("sweep", std::move(sweep));
  }
  return util::writeJson(root);
}

std::vector<GridPoint> expandGrid(const ScenarioDoc& doc) {
  std::size_t total = 1;
  for (const SweepAxis& axis : doc.axes) total *= axis.size();

  std::vector<GridPoint> grid;
  grid.reserve(total);
  for (std::size_t flat = 0; flat < total; ++flat) {
    GridPoint point;
    point.index.resize(doc.axes.size());
    // Decompose row-major: last axis varies fastest.
    std::size_t rest = flat;
    for (std::size_t a = doc.axes.size(); a-- > 0;) {
      point.index[a] = rest % doc.axes[a].size();
      rest /= doc.axes[a].size();
    }
    point.json = doc.base;
    for (std::size_t a = 0; a < doc.axes.size(); ++a) {
      const SweepAxis& axis = doc.axes[a];
      const std::size_t pick = point.index[a];
      point.labels.push_back(axis.valueLabels[pick]);
      if (axis.isCases()) {
        for (const auto& [path, value] : axis.cases[pick].sets) {
          setJsonPath(point.json, path, value);
        }
      } else {
        setJsonPath(point.json, axis.field, axis.values[pick]);
      }
    }
    try {
      point.spec = parseScenarioSpec(point.json);
    } catch (const ScenarioError& e) {
      std::ostringstream out;
      out << "grid point [";
      for (std::size_t i = 0; i < point.labels.size(); ++i) {
        if (i > 0) out << ", ";
        out << point.labels[i];
      }
      out << "]: " << e.what();
      throw ScenarioError(out.str());
    }
    grid.push_back(std::move(point));
  }
  return grid;
}

std::vector<SweepOutcome> runSweep(
    const ScenarioDoc& doc,
    const std::function<void(std::size_t, std::size_t, const std::string&)>&
        progress) {
  std::vector<GridPoint> grid = expandGrid(doc);
  std::map<std::string, std::shared_ptr<const PaperScenario>> models;
  std::vector<SweepOutcome> outcomes;
  outcomes.reserve(grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    GridPoint& point = grid[i];
    if (progress) {
      std::ostringstream label;
      for (std::size_t a = 0; a < point.labels.size(); ++a) {
        if (a > 0) label << " ";
        label << doc.axes[a].label << "=" << point.labels[a];
      }
      progress(i, grid.size(), label.str());
    }
    std::shared_ptr<const PaperScenario>& cached =
        models[scenarioModelKey(point.spec)];
    BoundScenario bound = bindScenario(point.spec, cached);
    cached = bound.paper;
    SweepOutcome outcome;
    outcome.result =
        bound.federated
            ? fed::runFederatedExperiment(bound.fedModels, bound.experiment,
                                          bound.federation)
            : runExperiment(*bound.model, bound.experiment);
    outcome.point = std::move(point);
    outcomes.push_back(std::move(outcome));
  }
  return outcomes;
}

}  // namespace hcs::exp
