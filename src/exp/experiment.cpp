#include "exp/experiment.h"

#include <stdexcept>

namespace hcs::exp {

ExperimentResult runExperiment(const workload::BoundExecutionModel& model,
                               const ExperimentSpec& spec) {
  if (spec.trials == 0) {
    throw std::invalid_argument("runExperiment: need at least one trial");
  }
  ExperimentResult result;
  for (std::size_t trial = 0; trial < spec.trials; ++trial) {
    const std::uint64_t workloadSeed = spec.baseSeed + trial;
    const workload::Workload wl = workload::Workload::generate(
        model.matrix(), spec.arrival, spec.deadline, workloadSeed);

    core::SimulationConfig simConfig = spec.sim;
    // Independent execution randomness per trial, decoupled from the
    // workload stream.
    simConfig.executionSeed = workloadSeed * 0x9e3779b97f4a7c15ULL + 1;

    core::TrialResult tr = core::Simulation(model, wl, simConfig).run();

    result.robustness.add(tr.robustnessPercent);
    result.perTrialRobustness.push_back(tr.robustnessPercent);

    const double counted =
        static_cast<double>(tr.metrics.countedTasks());
    if (counted > 0) {
      result.completedLatePct.add(
          100.0 * static_cast<double>(tr.metrics.completedLate()) / counted);
      result.droppedReactivePct.add(
          100.0 * static_cast<double>(tr.metrics.droppedReactive()) / counted);
      result.droppedProactivePct.add(
          100.0 * static_cast<double>(tr.metrics.droppedProactive()) /
          counted);
      result.deferralsPerTask.add(
          static_cast<double>(tr.metrics.deferrals()) / counted);
    }
    double utilization = 0.0;
    for (double u : tr.machineUtilization) utilization += u;
    if (!tr.machineUtilization.empty()) {
      utilization /= static_cast<double>(tr.machineUtilization.size());
    }
    result.meanUtilization.add(utilization);
  }
  result.robustnessCi = stats::meanConfidenceInterval(result.robustness);
  return result;
}

}  // namespace hcs::exp
