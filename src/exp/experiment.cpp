#include "exp/experiment.h"

#include <stdexcept>
#include <vector>

#include "exp/parallel.h"

namespace hcs::exp {

std::uint64_t executionSeedFor(std::uint64_t workloadSeed) {
  // Independent execution randomness per trial, decoupled from the
  // workload stream.
  return workloadSeed * 0x9e3779b97f4a7c15ULL + 1;
}

std::uint64_t faultSeedFor(std::uint64_t workloadSeed) {
  // A full splitmix64 scramble (distinct increment from the execution
  // stream's golden-ratio step) keeps the fault stream well-separated from
  // both the workload and execution streams of the same trial.
  std::uint64_t z = workloadSeed + 0x632be59bd9b4e019ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t elasticitySeedFor(std::uint64_t workloadSeed) {
  // Same splitmix64 scramble shape as the fault stream, with its own
  // increment, so the controller's reserved stream is independent of the
  // workload, execution, and fault streams of the same trial.
  std::uint64_t z = workloadSeed + 0x7f4a7c159e3779b9ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

TrialRunner::TrialRunner(const workload::BoundExecutionModel& model,
                         const ExperimentSpec& spec)
    : model_(&model), spec_(&spec) {}

core::TrialResult TrialRunner::runTrial(std::size_t trial) const {
  const std::uint64_t workloadSeed = spec_->baseSeed + trial;

  core::SimulationConfig simConfig = spec_->sim;
  simConfig.executionSeed = executionSeedFor(workloadSeed);
  simConfig.faultSeed = faultSeedFor(workloadSeed);
  simConfig.elasticitySeed = elasticitySeedFor(workloadSeed);

  if (spec_->stream.enabled) {
    // Bounded-memory path: the trial pulls tasks as it reaches them —
    // generated (identical to the materialized trial below) or replayed
    // from an external trace — and never holds more than the in-flight
    // window.
    const std::unique_ptr<workload::TaskStream> stream =
        workload::openTaskStream(spec_->stream, model_->matrix(),
                                 spec_->arrival, spec_->deadline,
                                 workloadSeed);
    return core::Simulation(*model_, *stream, simConfig).run();
  }

  const workload::Workload wl = workload::Workload::generate(
      model_->matrix(), spec_->arrival, spec_->deadline, workloadSeed);
  return core::Simulation(*model_, wl, simConfig).run();
}

ExperimentResult aggregateTrialResults(
    const std::vector<core::TrialResult>& outcomes) {
  // Fold the per-trial slots in trial order, so the aggregates are
  // bit-identical to a serial run no matter how many jobs executed.
  ExperimentResult result;
  for (const core::TrialResult& tr : outcomes) {
    result.robustness.add(tr.robustnessPercent);
    result.perTrialRobustness.push_back(tr.robustnessPercent);

    const double counted =
        static_cast<double>(tr.metrics.countedTasks());
    if (counted > 0) {
      result.completedLatePct.add(
          100.0 * static_cast<double>(tr.metrics.completedLate()) / counted);
      result.droppedReactivePct.add(
          100.0 * static_cast<double>(tr.metrics.droppedReactive()) / counted);
      result.droppedProactivePct.add(
          100.0 * static_cast<double>(tr.metrics.droppedProactive()) /
          counted);
      result.deferralsPerTask.add(
          static_cast<double>(tr.metrics.deferrals()) / counted);
      result.abandonedPct.add(
          100.0 * static_cast<double>(tr.metrics.abandoned()) / counted);
      result.rejectedPct.add(
          100.0 * static_cast<double>(tr.metrics.rejected()) / counted);
      result.retriesPerTask.add(
          static_cast<double>(tr.metrics.retries()) / counted);
      result.failedThenMetPct.add(
          100.0 * static_cast<double>(tr.metrics.failedThenMet()) / counted);
    }
    result.machineFailures.add(
        static_cast<double>(tr.metrics.machineFailures()));
    result.utilizationPct.add(tr.metrics.utilizationPercent());
    result.machineSeconds.add(tr.metrics.onlineMachineSeconds());
    result.scaleUps.add(static_cast<double>(tr.metrics.scaleUps()));
    result.scaleDowns.add(static_cast<double>(tr.metrics.scaleDowns()));
    double utilization = 0.0;
    for (double u : tr.machineUtilization) utilization += u;
    if (!tr.machineUtilization.empty()) {
      utilization /= static_cast<double>(tr.machineUtilization.size());
    }
    result.meanUtilization.add(utilization);
  }
  result.robustnessCi = stats::meanConfidenceInterval(result.robustness);
  return result;
}

ExperimentResult runExperiment(const workload::BoundExecutionModel& model,
                               const ExperimentSpec& spec) {
  if (spec.trials == 0) {
    throw std::invalid_argument("runExperiment: need at least one trial");
  }
  const TrialRunner runner(model, spec);

  // Execute trials on the pool (each owns all of its mutable state)…
  std::vector<core::TrialResult> outcomes(spec.trials);
  ParallelExecutor(spec.jobs).run(
      spec.trials,
      [&](std::size_t trial) { outcomes[trial] = runner.runTrial(trial); });

  return aggregateTrialResults(outcomes);
}

}  // namespace hcs::exp
