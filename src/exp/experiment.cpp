#include "exp/experiment.h"

#include <stdexcept>
#include <vector>

#include "exp/parallel.h"

namespace hcs::exp {

std::uint64_t executionSeedFor(std::uint64_t workloadSeed) {
  // Independent execution randomness per trial, decoupled from the
  // workload stream.
  return workloadSeed * 0x9e3779b97f4a7c15ULL + 1;
}

TrialRunner::TrialRunner(const workload::BoundExecutionModel& model,
                         const ExperimentSpec& spec)
    : model_(&model), spec_(&spec) {}

core::TrialResult TrialRunner::runTrial(std::size_t trial) const {
  const std::uint64_t workloadSeed = spec_->baseSeed + trial;
  const workload::Workload wl = workload::Workload::generate(
      model_->matrix(), spec_->arrival, spec_->deadline, workloadSeed);

  core::SimulationConfig simConfig = spec_->sim;
  simConfig.executionSeed = executionSeedFor(workloadSeed);

  return core::Simulation(*model_, wl, simConfig).run();
}

ExperimentResult aggregateTrialResults(
    const std::vector<core::TrialResult>& outcomes) {
  // Fold the per-trial slots in trial order, so the aggregates are
  // bit-identical to a serial run no matter how many jobs executed.
  ExperimentResult result;
  for (const core::TrialResult& tr : outcomes) {
    result.robustness.add(tr.robustnessPercent);
    result.perTrialRobustness.push_back(tr.robustnessPercent);

    const double counted =
        static_cast<double>(tr.metrics.countedTasks());
    if (counted > 0) {
      result.completedLatePct.add(
          100.0 * static_cast<double>(tr.metrics.completedLate()) / counted);
      result.droppedReactivePct.add(
          100.0 * static_cast<double>(tr.metrics.droppedReactive()) / counted);
      result.droppedProactivePct.add(
          100.0 * static_cast<double>(tr.metrics.droppedProactive()) /
          counted);
      result.deferralsPerTask.add(
          static_cast<double>(tr.metrics.deferrals()) / counted);
    }
    double utilization = 0.0;
    for (double u : tr.machineUtilization) utilization += u;
    if (!tr.machineUtilization.empty()) {
      utilization /= static_cast<double>(tr.machineUtilization.size());
    }
    result.meanUtilization.add(utilization);
  }
  result.robustnessCi = stats::meanConfidenceInterval(result.robustness);
  return result;
}

ExperimentResult runExperiment(const workload::BoundExecutionModel& model,
                               const ExperimentSpec& spec) {
  if (spec.trials == 0) {
    throw std::invalid_argument("runExperiment: need at least one trial");
  }
  const TrialRunner runner(model, spec);

  // Execute trials on the pool (each owns all of its mutable state)…
  std::vector<core::TrialResult> outcomes(spec.trials);
  ParallelExecutor(spec.jobs).run(
      spec.trials,
      [&](std::size_t trial) { outcomes[trial] = runner.runTrial(trial); });

  return aggregateTrialResults(outcomes);
}

}  // namespace hcs::exp
