#pragma once
// Table/CSV reporting for bench binaries: prints the rows/series behind the
// paper's figures with mean +/- 95% CI, the way §V-A reports them.

#include <iosfwd>
#include <string>
#include <vector>

#include "stats/confidence.h"

namespace hcs::exp {

/// Fixed-width ASCII table.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void addRow(std::vector<std::string> cells);
  void print(std::ostream& out) const;
  void printCsv(std::ostream& out) const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// "62.3 ±1.8" — the mean and 95% CI half-width.
std::string formatCi(const stats::ConfidenceInterval& ci, int precision = 1);

/// "62.3" with fixed precision.
std::string formatValue(double value, int precision = 1);

}  // namespace hcs::exp
