#pragma once
// Reporting: ASCII/CSV tables for bench binaries (the rows/series behind
// the paper's figures, mean +/- 95% CI as §V-A reports them) and the
// machine-readable JSON/CSV reports of scenario sweeps.

#include <iosfwd>
#include <string>
#include <vector>

#include "exp/sweep.h"
#include "stats/confidence.h"

namespace hcs::exp {

/// Fixed-width ASCII table.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void addRow(std::vector<std::string> cells);
  void print(std::ostream& out) const;
  void printCsv(std::ostream& out) const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// "62.3 ±1.8" — the mean and 95% CI half-width.
std::string formatCi(const stats::ConfidenceInterval& ci, int precision = 1);

/// "62.3" with fixed precision.
std::string formatValue(double value, int precision = 1);

/// The single-experiment metric table hcs_sim prints (robustness, late %,
/// drop %, deferrals, utilization; mean ±95% CI rows).
Table experimentMetricsTable(const ExperimentResult& result);

/// Machine-readable sweep report: scenario name/description, the full
/// resolved config, the axes, and one record per grid point with every
/// aggregate metric (mean, 95% CI half-width, per-trial robustness).
/// Serialize with util::writeJson — the committed golden reports in
/// scenarios/golden/ are exactly this form.
util::JsonValue sweepReportJson(const ScenarioDoc& doc,
                                const std::vector<SweepOutcome>& outcomes);

/// Flat CSV: one row per grid point — axis labels, then the metric means
/// and CI half-widths (full precision, for spreadsheets/pandas).
void printSweepCsv(std::ostream& out, const ScenarioDoc& doc,
                   const std::vector<SweepOutcome>& outcomes);

/// Human-facing pivot rendering, shared by `hcs_sim run` and the figure
/// benches (which is what makes them thin wrappers):
///  - 0 axes: the experimentMetricsTable
///  - 1 axis: rows = axis points, columns = metrics
///  - >=2 axes: rows = second-to-last axis, columns = last axis, one
///    sectioned table per combination of the leading axes; cells are
///    robustness mean ±95% CI, the paper's figure quantity.
/// `csv` switches every table to CSV (cells byte-identical either way).
void printSweepTables(std::ostream& out, const ScenarioDoc& doc,
                      const std::vector<SweepOutcome>& outcomes, bool csv);

}  // namespace hcs::exp
