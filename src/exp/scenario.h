#pragma once
// The canonical experimental setup of Section V, shared by every figure
// bench and the integration tests.
//
// The paper runs a fixed 12-type x 8-machine PET matrix ("The PET matrix
// remains constant across all of our experiments") and workloads of
// 15k/20k/25k tasks over a fixed time span.  PaperScenario reproduces that
// setup, with a scale knob: scale 1.0 is paper size, scale 0.1 (default for
// benches) keeps the arrival *intensity* — and therefore the
// oversubscription ratio — identical while shrinking task counts and span
// tenfold.  The span is self-calibrated from the synthesized PET matrix so
// the 15k-equivalent point lands at the target oversubscription ratio.

#include <cstdint>
#include <memory>
#include <string>

#include "exp/experiment.h"
#include "workload/pet_matrix.h"

namespace hcs::exp {

class PaperScenario {
 public:
  /// Oversubscription levels used throughout Section V.
  static constexpr std::size_t kRate15k = 15000;
  static constexpr std::size_t kRate20k = 20000;
  static constexpr std::size_t kRate25k = 25000;

  struct Options {
    std::uint64_t petSeed = 2019;
    double scale = 0.1;
    std::size_t trials = 8;
    /// Trial-execution threads (ExperimentSpec::jobs): 1 = serial,
    /// 0 = one per hardware thread.
    std::size_t jobs = 1;
    /// Oversubscription ratio (offered load / cluster capacity) that the
    /// 15k-equivalent workload should hit; higher rates scale from it.
    double targetRhoAt15k = 1.25;
    workload::PetSynthesisConfig synthesis;
  };

  explicit PaperScenario(const Options& options);
  PaperScenario() : PaperScenario(Options{}) {}

  /// Reads HCS_SCALE / HCS_TRIALS / HCS_FULL / HCS_JOBS env vars (used by
  /// benches so `--full` or parallel runs are possible without
  /// recompiling).
  static Options optionsFromEnv();

  const Options& options() const { return options_; }
  std::shared_ptr<const workload::PetMatrix> pet() const { return pet_; }

  /// Heterogeneous cluster: one machine per machine type (the paper's 8).
  const workload::BoundExecutionModel& hetero() const { return hetero_; }

  /// Homogeneous cluster: same machine count, all of one (median-speed)
  /// machine type, PET rows homogenized accordingly (§V-F).
  const workload::BoundExecutionModel& homo() const { return *homo_; }

  /// Workload time span (time units) after scaling / self-calibration.
  double span() const { return span_; }

  /// Arrival spec for a paper-equivalent rate ("15k", "20k", "25k" tasks)
  /// and pattern, at this scenario's scale.
  workload::ArrivalSpec arrivalSpec(std::size_t paperRate,
                                    workload::ArrivalPattern pattern) const;

  /// Experiment spec preconfigured with this scenario's arrival/deadline
  /// setup; callers fill in spec.sim.
  ExperimentSpec experimentSpec(std::size_t paperRate,
                                workload::ArrivalPattern pattern) const;

  /// Tasks in a trial at `paperRate`, after scaling.
  std::size_t scaledTasks(std::size_t paperRate) const;

  /// Warm-up trim margin, scaled with the workload (paper: 100 of 15000).
  std::size_t warmupMargin(std::size_t paperRate) const;

 private:
  Options options_;
  std::shared_ptr<const workload::PetMatrix> pet_;
  std::shared_ptr<const workload::PetMatrix> homoPet_;
  workload::BoundExecutionModel hetero_;
  std::unique_ptr<workload::BoundExecutionModel> homo_;
  double span_ = 0;
};

}  // namespace hcs::exp
