#pragma once
// Simulation-level configuration: cluster shape, resource-allocation mode,
// mapping heuristic, and the pruning plug-in.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "heuristics/registry.h"
#include "pruning/config.h"
#include "sim/elasticity.h"
#include "sim/faults.h"
#include "sim/trace.h"

namespace hcs::core {

/// Immediate-mode maps on arrival only; batch-mode holds an arrival queue
/// and maps at every mapping event (Fig. 1).
enum class AllocationMode {
  Immediate,
  Batch,
};

struct SimulationConfig {
  /// Mapping heuristic name; see heuristics/registry.h for the roster.
  /// RR/MET/MCT/KPB imply immediate mode, the rest batch mode.
  std::string heuristic = "MM";

  heuristics::HeuristicOptions heuristicOptions;

  /// Bring-your-own batch heuristic: when set, overrides `heuristic` and
  /// forces batch mode.  The pruning mechanism wraps it unchanged — the
  /// paper's "plugged into any mapping heuristic" claim, as an API.
  std::function<std::unique_ptr<heuristics::BatchHeuristic>()>
      customBatchHeuristic;

  /// Same for immediate-mode heuristics.
  std::function<std::unique_ptr<heuristics::ImmediateHeuristic>()>
      customImmediateHeuristic;

  /// The pruning mechanism's configuration (PruningConfig::disabled() for
  /// the paper's baselines).
  pruning::PruningConfig pruning;

  /// Max tasks in a machine's system (running + waiting) in batch mode;
  /// immediate mode is always unbounded (an arriving task must be placed).
  std::size_t machineQueueCapacity = 4;

  /// If true, a running task is aborted (counted as a reactive drop) at the
  /// first mapping event after its deadline passes.  Default off: the paper
  /// lets started work finish (it just counts as late).
  bool abortRunningAtDeadline = false;

  /// Memoize PCT convolutions across mapping events, keyed on each
  /// machine's queue epoch (see heuristics/pct_cache.h).  Results are
  /// bit-identical either way; the knob exists so benches can measure the
  /// saving and tests can compare both paths.
  bool pctCacheEnabled = true;

  /// Drive mapping events through the incremental engine: one persistent
  /// MappingContext per trial (epoch-validated ready/exec memos), delta
  /// evaluation inside the two-phase batch heuristics, and the indexed
  /// batch queue's O(1) removal/deferral.  Off = the reference engine
  /// (fresh context and full re-evaluation every round, as Fig. 5 reads).
  /// Reports are bit-identical either way; the knob exists so benches can
  /// measure the saving and tests can compare both engines.
  bool incrementalMappingEnabled = true;

  /// Adaptive engine selection inside the incremental engine: a mapping
  /// round whose batch queue holds fewer than this many live tasks runs the
  /// reference two-phase evaluation (against the SAME persistent context —
  /// the trial-lifetime ready/exec memos still apply), because the
  /// delta-evaluation bookkeeping (journal replay, per-type buckets,
  /// phase-1 diffing) has a fixed per-round cost that only pays for itself
  /// on wide batches.  At or above the threshold the round runs the full
  /// incremental path.  Both evaluations are trace-identical, and the rule
  /// reads nothing but the queue depth — a pure function of simulation
  /// state, never wall clock — so runs stay deterministic and reports stay
  /// byte-identical at ANY threshold.  0 = always incremental (the pre-
  /// adaptive behaviour); ignored when incrementalMappingEnabled is false.
  std::size_t incrementalMapMinQueue = 16;

  /// Accumulate wall-clock time spent in the batch-mapping section of each
  /// mapping event into TrialResult.mappingEngineSeconds (two clock reads
  /// per event).  Off by default — for engine benchmarks only.
  bool measureMappingEngine = false;

  /// Seed for sampling actual execution times.
  std::uint64_t executionSeed = 0x5eed;

  /// Machine churn + retry policy (sim/faults.h).  Inactive configs — the
  /// default — leave the engine byte-identical to the fault-free build.
  sim::FaultConfig faults;

  /// Seed of the dedicated fault RNG stream (failure/repair draws, retry
  /// jitter).  Independent of executionSeed so fault-enabled runs stay
  /// seed-paired with their fault-free twins; exp::faultSeedFor derives it
  /// per trial.
  std::uint64_t faultSeed = 0xfa017;

  /// Elastic capacity control (sim/elasticity.h).  Inactive configs — the
  /// default — arm no controller and leave the engine byte-identical to
  /// the fixed-capacity build.
  sim::ElasticityConfig elasticity;

  /// Seed of the controller's reserved RNG stream.  Independent of the
  /// execution and fault seeds so elastic runs stay seed-paired with their
  /// fixed-capacity twins; exp::elasticitySeedFor derives it per trial.
  std::uint64_t elasticitySeed = 0xe1a5;

  /// Where a failed task's retry re-enters the system.  Unset (the
  /// single-cluster default), the scheduler pushes a TaskArrival event at
  /// the retry time into its own event queue.  The federation gateway
  /// installs a hook so retries come back to the GATEWAY instead — they
  /// are re-routed and re-admitted against the whole federation, not
  /// pinned to the cluster that failed them.
  std::function<void(sim::TaskId, sim::Time)> retryHook;

  /// First/last arrivals excluded from robustness (§V-B uses 100).
  std::size_t warmupMargin = 100;

  /// Optional sink receiving every task lifecycle transition (see
  /// sim/trace.h).  Null = no tracing (zero overhead).
  sim::TraceSink traceSink;
};

/// Mode implied by the configured heuristic name.
AllocationMode allocationModeFor(const std::string& heuristicName);

/// Mode of a full configuration (accounts for custom heuristic overrides;
/// setting both custom factories is an error).
AllocationMode allocationModeFor(const SimulationConfig& config);

}  // namespace hcs::core
