#include "core/scheduler.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <span>
#include <optional>
#include <stdexcept>
#include <unordered_set>

#include "prob/arena.h"
#include "prob/kernels.h"

namespace hcs::core {

namespace {

/// Decides a chance-vs-bar comparison from the candidate PCT's support
/// interval alone.  Returns exactly 0 when every bin misses the cutoff,
/// 1 when every bin makes it AND the bar sits far enough from 1 that the
/// true chance (within the PMF mass tolerance of 1) compares identically,
/// and nullopt when the comparison genuinely needs the convolution.
/// `cutoff` must use the same arithmetic as DiscretePmf::cdf
/// (deadline + binWidth * 1e-6); the bar guard mirrors Pruner::belowBar's
/// `chance <= bar` semantics.  Shared by the proactive dropping pass and
/// the deferring check so the delicate tolerance logic exists once.
std::optional<double> chanceFromSupportBounds(
    std::int64_t candMin, std::int64_t candMax, double binWidth,
    double cutoff, const pruning::Pruner& pruner, sim::TaskType type,
    double value) {
  if (static_cast<double>(candMin) * binWidth >= cutoff) return 0.0;
  if (static_cast<double>(candMax) * binWidth < cutoff) {
    const double bar = pruner.pruningBar(type, value);
    if (bar < 1.0 - 1e-6 || bar >= 1.0) return 1.0;
  }
  return std::nullopt;
}

}  // namespace

AllocationMode allocationModeFor(const std::string& heuristicName) {
  if (heuristics::isImmediateHeuristic(heuristicName)) {
    return AllocationMode::Immediate;
  }
  if (heuristics::isBatchHeuristic(heuristicName)) {
    return AllocationMode::Batch;
  }
  throw std::invalid_argument("allocationModeFor: unknown heuristic " +
                              heuristicName);
}

AllocationMode allocationModeFor(const SimulationConfig& config) {
  if (config.customBatchHeuristic && config.customImmediateHeuristic) {
    throw std::invalid_argument(
        "allocationModeFor: both custom heuristic factories set");
  }
  if (config.customBatchHeuristic) return AllocationMode::Batch;
  if (config.customImmediateHeuristic) return AllocationMode::Immediate;
  return allocationModeFor(config.heuristic);
}

Scheduler::Scheduler(const SimulationConfig& config, int numTaskTypes)
    : config_(config),
      mode_(allocationModeFor(config)),
      accounting_(numTaskTypes),
      pruner_(config.pruning, numTaskTypes) {
  if (config.customBatchHeuristic) {
    batch_ = config.customBatchHeuristic();
  } else if (config.customImmediateHeuristic) {
    immediate_ = config.customImmediateHeuristic();
  } else if (mode_ == AllocationMode::Immediate) {
    immediate_ =
        heuristics::makeImmediate(config.heuristic, config.heuristicOptions);
  } else {
    batch_ = heuristics::makeBatch(config.heuristic, config.heuristicOptions);
  }
  if ((mode_ == AllocationMode::Batch && batch_ == nullptr) ||
      (mode_ == AllocationMode::Immediate && immediate_ == nullptr)) {
    throw std::invalid_argument("Scheduler: heuristic factory returned null");
  }
  if (config.pctCacheEnabled) {
    pctCache_ = std::make_unique<heuristics::PctCache>();
  }
}

heuristics::MappingContext Scheduler::makeContext(World& world,
                                                  sim::Time now) const {
  const std::size_t capacity = mode_ == AllocationMode::Immediate
                                   ? heuristics::MappingContext::kUnbounded
                                   : config_.machineQueueCapacity;
  return heuristics::MappingContext(now, world.pool, world.machines,
                                    world.model, capacity, pctCache_.get());
}

void Scheduler::beginTrial(const World& world) {
  trialPrepared_ = true;
  // Sized once here instead of being re-checked by every scheduleCompletion.
  if (completionSeq_.size() < world.machines.size()) {
    completionSeq_.assign(world.machines.size(), 0);
  }
  if (config_.incrementalMappingEnabled && !ctx_.has_value() &&
      !world.machines.empty()) {
    const std::size_t capacity = mode_ == AllocationMode::Immediate
                                     ? heuristics::MappingContext::kUnbounded
                                     : config_.machineQueueCapacity;
    ctx_.emplace(sim::Time{0}, world.pool, world.machines, world.model,
                 capacity, pctCache_.get());
    ctx_->enablePersistence();
    if (mode_ == AllocationMode::Batch) {
      ctx_->attachBatchQueue(&batchQueue_);
    }
  }
  if (mode_ == AllocationMode::Batch) {
    // The mutation journal exists for the two-phase heuristics' bucket
    // sync; when no persistent context (reference engine) or no queue-
    // consuming heuristic is attached, nobody ever replays it — stop
    // recording instead of growing an unread log for the whole trial.
    batchQueue_.setJournalRecording(ctx_.has_value() &&
                                    batch_->consumesBatchQueue());
  }
}

void Scheduler::handleArrival(World& world, sim::TaskId task, sim::Time now) {
  if (!trialPrepared_) beginTrial(world);
  world.pool[task].status = sim::TaskStatus::Batched;
  emit(now, sim::TraceEventKind::Arrival, task);
  if (mode_ == AllocationMode::Batch) {
    batchQueue_.push(task);
    mappingEvent(world, now);
    return;
  }
  // Immediate mode: the pruning passes still run at this mapping event,
  // then the mapper must place the arriving task right away.
  mappingEvent(world, now);
  sim::MachineId machine;
  if (ctx_.has_value()) {
    machine = immediate_->selectMachine(*ctx_, task);
  } else {
    const heuristics::MappingContext ctx = makeContext(world, now);
    machine = immediate_->selectMachine(ctx, task);
  }
  if (machine == sim::kInvalidMachine &&
      (config_.faults.enabled || config_.elasticity.active())) {
    // Churn (or an elastic scale-down racing the arrival) left no machine
    // accepting work: a placement failure, routed through the retry policy
    // like any other churn casualty.
    emit(now, sim::TraceEventKind::TaskFailed, task);
    retryOrAbandon(world, task, now);
    return;
  }
  if (machine < 0 ||
      machine >= static_cast<sim::MachineId>(world.machines.size())) {
    throw std::logic_error("Scheduler: heuristic chose an invalid machine");
  }
  dispatch(world, task, machine, now);
}

void Scheduler::handleCompletion(World& world, sim::MachineId machine,
                                 sim::TaskId task, sim::Time now) {
  if (!trialPrepared_) beginTrial(world);
  sim::Machine& m = world.machines[static_cast<std::size_t>(machine)];
  if (m.runningTask() != task) {
    throw std::logic_error("Scheduler: completion for a non-running task");
  }
  sim::Task& t = world.pool[task];
  const bool onTime = now <= t.deadline + 1e-9;
  t.status = onTime ? sim::TaskStatus::CompletedOnTime
                    : sim::TaskStatus::CompletedLate;
  t.finishTime = now;
  world.metrics.recordTerminal(t);
  world.metrics.recordExecution(machine, now - t.startTime, onTime);
  emit(now, sim::TraceEventKind::Completed, task, machine);
  if (onTime) {
    accounting_.recordOnTimeCompletion(t.type);
  } else {
    accounting_.recordDeadlineMiss(t.type);
  }
  // Do NOT promote the next queued task yet: the mapping event's pruning
  // passes must see (and may drop) the queue's head first; idle machines
  // start their surviving head task at the end of the event.
  m.finishRunning(now, world.pool, world.model);
  // Terminal and fully unlinked: under a recycling pool (streaming mode)
  // the slot is free for the next arrival.  No-op otherwise.
  world.pool.retire(task);
  mappingEvent(world, now);
}

void Scheduler::handleMachineFailure(World& world, sim::MachineId machine,
                                     sim::Time now) {
  if (!trialPrepared_) beginTrial(world);
  sim::Machine& m = world.machines[static_cast<std::size_t>(machine)];
  world.metrics.recordMachineFailure();
  emit(now, sim::TraceEventKind::MachineFailed, sim::kInvalidTask, machine);
  if (m.busy()) {
    // The running task dies with the machine: cancel its pending
    // completion, charge the burned time as wasted execution, and hand the
    // task to the retry policy.
    const sim::TaskId running = m.runningTask();
    world.events.cancel(completionSeq_[static_cast<std::size_t>(machine)]);
    const sim::Time started = world.pool[running].startTime;
    m.abortRunning(now, world.pool, world.model);
    world.metrics.recordExecution(machine, now - started, /*useful=*/false);
    emit(now, sim::TraceEventKind::TaskFailed, running, machine);
    retryOrAbandon(world, running, now);
  }
  orphanScratch_.clear();
  m.goOffline(now, world.pool, world.model, orphanScratch_);
  for (sim::TaskId id : orphanScratch_) {
    emit(now, sim::TraceEventKind::TaskFailed, id, machine);
    retryOrAbandon(world, id, now);
  }
  // The machine-set edit is a mapping event: the Eq. 1/Eq. 2 machinery
  // re-prices the batch queue against the surviving cluster, and the
  // pruning passes see the scarcer capacity immediately.
  mappingEvent(world, now);
}

void Scheduler::handleMachineRecovery(World& world, sim::MachineId machine,
                                      sim::Time now) {
  if (!trialPrepared_) beginTrial(world);
  world.machines[static_cast<std::size_t>(machine)].comeOnline(
      now, world.pool, world.model);
  emit(now, sim::TraceEventKind::MachineRecovered, sim::kInvalidTask, machine);
  // Recovered capacity is claimable this very event: batch mode remaps and
  // the idle machine can start the surviving head of whatever it is given.
  mappingEvent(world, now);
}

void Scheduler::handleCapacityChanged(World& world, sim::Time now) {
  if (!trialPrepared_) beginTrial(world);
  mappingEvent(world, now);
}

void Scheduler::mappingEvent(World& world, sim::Time now) {
  ++mappingEvents_;
  if (ctx_.has_value()) ctx_->rebind(now);
  if (config_.abortRunningAtDeadline) {
    abortOverdueRunning(world, now);
  }
  // Step 1: reactive drops of expired pending tasks (part of the pruning
  // mechanism; the no-pruning baselines execute every mapped task).
  if (config_.pruning.reactiveDropEnabled) {
    reactiveDropPass(world, now);
  }
  // Steps 2-3: fairness update and Toggle evaluation over the interval.
  pruner_.beginMappingEvent(accounting_.harvest());
  // Steps 4-6: proactive drops from machine queues.
  if (pruner_.droppingEngaged()) {
    proactiveDropPass(world, now);
  }
  // Steps 7-11: map, defer, dispatch (batch mode only; immediate mode's
  // placement happens in handleArrival right after this returns).
  if (mode_ == AllocationMode::Batch) {
    if (config_.measureMappingEngine) {
      const auto start = std::chrono::steady_clock::now();
      runBatchMapping(world, now);
      engineNanos_ += static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - start)
              .count());
    } else {
      runBatchMapping(world, now);
    }
  }
  // Machines left idle by a completion/abort now start the surviving head
  // of their queue.
  startIdleMachines(world, now);
}

void Scheduler::startIdleMachines(World& world, sim::Time now) {
  for (sim::Machine& m : world.machines) {
    if (!m.online()) continue;
    const sim::TaskId started =
        m.startNextIfIdle(now, world.pool, world.model);
    if (started != sim::kInvalidTask) {
      emit(now, sim::TraceEventKind::Started, started, m.id());
      scheduleCompletion(world, m.id(), started, now);
    }
  }
}

void Scheduler::dropTask(World& world, sim::TaskId task, sim::Time now,
                         sim::TaskStatus reason) {
  sim::Task& t = world.pool[task];
  t.status = reason;
  t.finishTime = now;
  world.metrics.recordTerminal(t);
  sim::TraceEventKind kind;
  switch (reason) {
    case sim::TaskStatus::DroppedReactive:
      kind = sim::TraceEventKind::DroppedReactive;
      break;
    case sim::TaskStatus::DroppedProactive:
      kind = sim::TraceEventKind::DroppedProactive;
      break;
    case sim::TaskStatus::Abandoned:
      kind = sim::TraceEventKind::Abandoned;
      break;
    default:
      throw std::logic_error("dropTask: not a drop status");
  }
  emit(now, kind, task, t.machine);
  if (reason == sim::TaskStatus::DroppedProactive) {
    accounting_.recordProactiveDrop(t.type);
    // Fig. 5 step 6: gamma_k <- gamma_k + c on a *proactive* drop.  (§IV-D's
    // prose could be read as counting reactive drops too; the ablation bench
    // shows that variant grants suffering types such lax bars that they
    // occupy machines with hopeless work — we follow the pseudo-code.)
    pruner_.recordDrop(t.type);
  } else {
    // Reactive drops and retry-policy abandonments both read to the
    // fairness ledger as deadline misses: the task's deadline was (or was
    // about to be) missed through no choice of the pruner's.
    accounting_.recordDeadlineMiss(t.type);
  }
  // Every dropTask caller unlinks the task from its queue first, so the
  // slot can be recycled (streaming mode; no-op otherwise).
  world.pool.retire(task);
}

void Scheduler::retryOrAbandon(World& world, sim::TaskId task, sim::Time now) {
  sim::Task& t = world.pool[task];
  t.machine = sim::kInvalidMachine;
  t.status = sim::TaskStatus::Created;
  ++t.failures;
  const sim::FaultConfig& f = config_.faults;
  if (t.failures >= f.maxAttempts) {
    dropTask(world, task, now, sim::TaskStatus::Abandoned);
    return;
  }
  // Exponential backoff on the attempt index, stretched by a jitter draw
  // from the fault stream (never the execution stream — the draw must not
  // perturb seed-paired execution sampling).
  double backoff = f.backoffBase *
                   std::pow(f.backoffFactor, static_cast<double>(t.failures - 1));
  if (f.backoffJitter > 0.0 && world.faultRng != nullptr) {
    backoff *= 1.0 + f.backoffJitter * world.faultRng->uniform01();
  }
  const sim::Time retryAt = now + backoff;
  if (retryAt > t.deadline) {
    // Deadline-aware give-up: the retry could never arrive in time.
    dropTask(world, task, now, sim::TaskStatus::Abandoned);
    return;
  }
  world.metrics.recordRetry();
  emit(now, sim::TraceEventKind::Retried, task);
  if (config_.retryHook) {
    // Federation: the retry re-enters at the GATEWAY — re-routed and
    // re-admitted against the whole federation, not pinned to the cluster
    // that failed it.
    config_.retryHook(task, retryAt);
  } else {
    world.events.push(retryAt, sim::EventKind::TaskArrival, task);
  }
}

void Scheduler::reactiveDropPass(World& world, sim::Time now) {
  // Batch (arrival) queue: collect the overdue tasks, then drop them in
  // arrival order (identical drop order to the old in-iteration erase).
  overdueScratch_.clear();
  batchQueue_.forEachLive([&](sim::TaskId id, std::uint64_t /*seq*/) {
    if (world.pool[id].missedDeadline(now)) overdueScratch_.push_back(id);
  });
  for (sim::TaskId id : overdueScratch_) {
    batchQueue_.remove(id);
    dropTask(world, id, now, sim::TaskStatus::DroppedReactive);
  }
  // Machine queues (the running task is past saving only under the
  // abort-at-deadline policy, handled separately).  The overdue list is a
  // member scratch — this pass runs at every mapping event and is almost
  // always empty.
  for (sim::Machine& m : world.machines) {
    overdueScratch_.clear();
    for (sim::TaskId id : m.queue()) {
      if (world.pool[id].missedDeadline(now)) overdueScratch_.push_back(id);
    }
    for (sim::TaskId id : overdueScratch_) {
      m.removeQueued(id, now, world.pool, world.model);
      dropTask(world, id, now, sim::TaskStatus::DroppedReactive);
    }
  }
}

void Scheduler::proactiveDropPass(World& world, sim::Time now) {
  for (sim::Machine& m : world.machines) {
    if (m.queueLength() == 0) continue;
    // Walk the queue front to back, accumulating the PCT chain (Eq. 1).
    // A dropped task's PET is excluded from the accumulator, so tasks
    // behind it immediately see the improved (less uncertain) chain.
    //
    if (pctCache_ == nullptr) {
      // Reference path (pctCacheEnabled off): recompute the full chain per
      // candidate, exactly as the paper's Fig. 5 pseudo-code reads.  The
      // chain ping-pongs between two arena buffers — no allocation.
      prob::PmfArena& arena = prob::PmfArena::local();
      prob::DiscretePmf referenceAcc =
          m.availabilityPct(now, world.pool, world.model);
      std::vector<sim::TaskId>& referenceDrop = proactiveDropScratch_;
      referenceDrop.clear();
      for (sim::TaskId id : m.queue()) {
        const sim::Task& t = world.pool[id];
        prob::DiscretePmf pct = prob::convolveInto(
            arena, referenceAcc, world.model.pet(t.type, m.id()));
        const double chance = pct.successProbability(t.deadline);
        if (pruner_.shouldDrop(t.type, chance, t.value)) {
          referenceDrop.push_back(id);
          arena.recycle(std::move(pct));
        } else {
          arena.recycle(std::move(referenceAcc));
          referenceAcc = std::move(pct);
        }
      }
      arena.recycle(std::move(referenceAcc));
      for (sim::TaskId id : referenceDrop) {
        m.removeQueued(id, now, world.pool, world.model);
        dropTask(world, id, now, sim::TaskStatus::DroppedProactive);
      }
      continue;
    }
    // Incremental path: full convolutions are the expensive part, and some
    // drop decisions don't need them — the chain's support bounds (exact
    // integer sums of the factors' first/last bins) can already prove the
    // chance is 0 or within 1e-9 of 1, which decides shouldDrop
    // identically.  When a chance must actually be computed it comes from
    // the PCT cache's prefix chain (valid while no task has been dropped:
    // every earlier queued task was kept, which is exactly the prefix
    // invariant) and, after the first drop, from a live accumulator seeded
    // with the last kept prefix.
    const double w = m.binWidth();
    auto [accMinB, accMaxB] = m.availabilityBounds(now, world.pool,
                                                   world.model);
    // Prefix PCTs of the unmodified queue; built on first need.
    std::optional<heuristics::PctCache::QueueChainView> chain;
    std::optional<prob::DiscretePmf> acc;  // kept chain once a drop diverges
    // Kept PETs not yet folded into acc (and, pre-drop, the kept prefix in
    // case acc must be seeded without a materialized chain).
    std::vector<const prob::DiscretePmf*>& pending = pendingScratch_;
    pending.clear();
    bool droppedAny = false;
    std::vector<sim::TaskId>& toDrop = proactiveDropScratch_;
    toDrop.clear();
    std::size_t idx = 0;
    for (sim::TaskId id : m.queue()) {
      const sim::Task& t = world.pool[id];
      const prob::DiscretePmf& pet = world.model.pet(t.type, m.id());
      const std::int64_t candMin = accMinB + pet.firstBin();
      const std::int64_t candMax = accMaxB + pet.lastBin();
      const double cutoff = t.deadline + w * 1e-6;
      const std::optional<double> boundsChance = chanceFromSupportBounds(
          candMin, candMax, w, cutoff, pruner_, t.type, t.value);
      bool drop;
      bool keptViaAcc = false;
      if (boundsChance.has_value()) {
        // The whole support sits on one side of the deadline: the chance
        // (exactly 0, or within the mass tolerance of 1 with the bar far
        // from 1) decides shouldDrop without any convolution.
        drop = pruner_.shouldDrop(t.type, *boundsChance, t.value);
      } else if (!droppedAny) {
        if (!chain.has_value()) {
          chain.emplace(
              pctCache_->queueChain(m, now, world.pool, world.model));
        }
        const double chance =
            chain->rel[idx].cdfShiftedBy(chain->anchor, t.deadline);
        drop = pruner_.shouldDrop(t.type, chance, t.value);
      } else {
        prob::PmfArena& arena = prob::PmfArena::local();
        for (const prob::DiscretePmf* p : pending) {
          prob::convolveInPlace(arena, *acc, *p);
        }
        pending.clear();
        prob::DiscretePmf pct = prob::convolveInto(arena, *acc, pet);
        const double chance = pct.successProbability(t.deadline);
        drop = pruner_.shouldDrop(t.type, chance, t.value);
        if (!drop) {
          arena.recycle(std::move(*acc));
          acc = std::move(pct);
          keptViaAcc = true;
        } else {
          arena.recycle(std::move(pct));
        }
      }
      if (drop) {
        toDrop.push_back(id);
        if (!droppedAny) {
          // Seed the live accumulator with the PCT of the last kept prefix.
          droppedAny = true;
          if (chain.has_value() && idx > 0) {
            acc = chain->rel[idx - 1].shifted(chain->anchor);
          } else {
            acc = m.availabilityPct(now, world.pool, world.model);
            prob::PmfArena& arena = prob::PmfArena::local();
            for (const prob::DiscretePmf* p : pending) {
              prob::convolveInPlace(arena, *acc, *p);
            }
          }
          pending.clear();
        }
      } else {
        accMinB += pet.firstBin();
        accMaxB += pet.lastBin();
        if (!keptViaAcc && (droppedAny || !chain.has_value())) {
          pending.push_back(&pet);
        }
      }
      ++idx;
    }
    if (acc.has_value()) prob::PmfArena::local().recycle(std::move(*acc));
    for (sim::TaskId id : toDrop) {
      m.removeQueued(id, now, world.pool, world.model);
      dropTask(world, id, now, sim::TaskStatus::DroppedProactive);
    }
  }
}

double Scheduler::deferChance(World& world,
                              const heuristics::MappingContext& ctx,
                              const heuristics::Assignment& a,
                              const sim::Task& t, sim::Time now) const {
  if (pctCache_ != nullptr) {
    const sim::Machine& m = world.machines[static_cast<std::size_t>(a.machine)];
    const double w = m.binWidth();
    const double cutoff = t.deadline + w * 1e-6;
    const auto [tailLo, tailHi] = m.tailBounds(now, world.pool, world.model);
    const prob::DiscretePmf& pet = world.model.pet(t.type, m.id());
    const std::optional<double> boundsChance = chanceFromSupportBounds(
        tailLo + pet.firstBin(), tailHi + pet.lastBin(), w, cutoff, pruner_,
        t.type, t.value);
    if (boundsChance.has_value()) return *boundsChance;
  }
  return ctx.successChance(a.task, a.machine);
}

bool Scheduler::anyFreeSlot(const World& world) const {
  const std::size_t capacity = config_.machineQueueCapacity;
  for (const sim::Machine& m : world.machines) {
    if (!m.acceptsWork()) continue;
    if (m.queueLength() + (m.busy() ? 1u : 0u) < capacity) return true;
  }
  return false;
}

bool Scheduler::applyAssignments(
    World& world, const std::vector<heuristics::Assignment>& assignments,
    const heuristics::MappingContext& ctx, sim::Time now) {
  bool dispatchedAny = false;
  for (const heuristics::Assignment& a : assignments) {
    const sim::Task& t = world.pool[a.task];
    // Step 10: chance of success on the *live* machine state (earlier
    // dispatches in this event are already reflected in the tail PCT).
    // When the configuration can never defer, the chance is dead weight —
    // skip its convolution outright.  Otherwise try to decide the defer
    // comparison from support bounds alone (the same interval shortcut
    // the proactive pass uses): when the whole candidate PCT support
    // sits on one side of the deadline, the chance is exactly 0 or
    // within the mass tolerance of 1 and the convolution never runs.
    // Like the proactive pass, the shortcut belongs to the incremental
    // machinery — the --no-pct-cache reference path recomputes the full
    // chance per candidate, exactly as Fig. 5 reads.
    const double chance = pruner_.deferUsesChance()
                              ? deferChance(world, ctx, a, t, now)
                              : 1.0;
    if (pruner_.shouldDefer(t.type, chance, t.value)) {
      // Step 10 defers "to the next mapping event": the task is out of the
      // running for the rest of this one.
      if (ctx.persistent()) {
        batchQueue_.markDeferred(a.task);
      } else {
        deferredScratch_.insert(a.task);
      }
      ++world.pool[a.task].deferrals;
      world.metrics.recordDeferral();
      emit(now, sim::TraceEventKind::Deferred, a.task, a.machine);
      continue;
    }
    dispatch(world, a.task, a.machine, now);
    batchQueue_.remove(a.task);
    dispatchedAny = true;
  }
  return dispatchedAny;
}

void Scheduler::runBatchMapping(World& world, sim::Time now) {
  if (!ctx_.has_value()) {
    runBatchMappingReference(world, now);
    return;
  }
  // Incremental engine: deferral marks from the previous event expire in
  // O(1), the candidate list comes straight off the indexed queue, and the
  // free-slot guard skips the whole round — candidate rebuild, context
  // queries, heuristic call — once the cluster is saturated, which in a
  // burst is every mapping event after the first few.
  //
  // Adaptive per-round selection: the delta-evaluation machinery (journal
  // replay, per-type buckets, phase-1 diffing) has a fixed per-round cost
  // that only pays for itself on wide batches, so a round whose queue is
  // shallower than incrementalMapMinQueue hands the heuristic an explicit
  // candidate span — the reference evaluation, against the same persistent
  // context — instead of the empty "read the queue" signal.  The rule is a
  // pure function of the queue depth (never wall clock) and both
  // evaluations assign identically, so traces and reports are byte-
  // identical at any threshold.
  batchQueue_.beginEvent();
  const bool queueDirect = batch_->consumesBatchQueue();
  while (!batchQueue_.empty()) {
    if (!anyFreeSlot(world)) break;
    std::span<const sim::TaskId> candidates;
    const bool wide =
        queueDirect && batchQueue_.size() >= config_.incrementalMapMinQueue;
    if (!wide) {
      // Narrow rounds (and heuristics that ignore the indexed queue) get
      // the span of live, non-deferred tasks in arrival order.
      batchQueue_.liveCandidates(candidateScratch_);
      if (candidateScratch_.empty()) break;
      candidates = candidateScratch_;
    }
    const std::vector<heuristics::Assignment> assignments =
        batch_->map(*ctx_, candidates);
    if (assignments.empty()) break;  // nothing mappable (or all deferred)
    if (!applyAssignments(world, assignments, *ctx_, now)) {
      break;  // everything mappable was deferred
    }
  }
}

void Scheduler::runBatchMappingReference(World& world, sim::Time now) {
  // Reference engine: fresh context and full two-phase re-evaluation every
  // round, exactly as Fig. 5 reads.  Kept as the oracle the incremental
  // engine is benchmarked and equivalence-tested against.
  std::unordered_set<sim::TaskId>& deferredThisEvent = deferredScratch_;
  deferredThisEvent.clear();
  while (!batchQueue_.empty()) {
    // Tasks deferred in this event are out of the running until the next
    // mapping event (step 10 defers "to the next mapping event").
    std::vector<sim::TaskId>& candidates = candidateScratch_;
    candidates.clear();
    candidates.reserve(batchQueue_.size());
    batchQueue_.forEachLive([&](sim::TaskId id, std::uint64_t /*seq*/) {
      if (!deferredThisEvent.contains(id)) candidates.push_back(id);
    });
    if (candidates.empty()) break;

    const heuristics::MappingContext ctx = makeContext(world, now);
    const std::vector<heuristics::Assignment> assignments =
        batch_->map(ctx, candidates);
    if (assignments.empty()) break;  // queues full or nothing mappable
    if (!applyAssignments(world, assignments, ctx, now)) {
      break;  // everything mappable was deferred
    }
  }
}

void Scheduler::dispatch(World& world, sim::TaskId task, sim::MachineId machine,
                         sim::Time now) {
  sim::Machine& m = world.machines[static_cast<std::size_t>(machine)];
  emit(now, sim::TraceEventKind::Dispatched, task, machine);
  // When the deferring check reads chances, the cache either just computed
  // tailPct ⊛ PET for it or computes it now; either way the machine's
  // Eq. 1 update reuses it instead of convolving again.  When no deferring
  // check can ever read a chance, skip the append outright — the machine
  // queues the PET as a lazy pending append that only materializes if some
  // consumer actually reads the tail (in the no-defer configurations,
  // typically never).
  std::optional<prob::DiscretePmf> newTail;
  const std::uint64_t preEpoch = m.queueEpoch();
  if (pctCache_ != nullptr && m.tracksTail() && pruner_.deferUsesChance()) {
    newTail = pctCache_->peekAppendPct(m, now, world.pool[task].type);
  }
  const bool started =
      m.dispatch(task, now, world.pool, world.model,
                 newTail.has_value() ? &*newTail : nullptr);
  if (!started && pctCache_ != nullptr) {
    // The dispatch appended to the queue: extend the memoized proactive
    // chain by one convolution instead of rebuilding it at the next pass.
    pctCache_->noteAppend(m, now, world.pool, world.model,
                          world.pool[task].type, preEpoch);
  }
  if (started) {
    emit(now, sim::TraceEventKind::Started, task, machine);
    scheduleCompletion(world, machine, task, now);
  }
}

void Scheduler::scheduleCompletion(World& world, sim::MachineId machine,
                                   sim::TaskId task, sim::Time now) {
  const sim::Task& t = world.pool[task];
  const double exec = world.model.pet(t.type, machine).sample(world.execRng);
  // completionSeq_ was sized by beginTrial — no per-completion size check.
  completionSeq_[static_cast<std::size_t>(machine)] = world.events.nextSeq();
  world.events.push(now + exec, sim::EventKind::TaskCompletion, task, machine);
}

void Scheduler::abortOverdueRunning(World& world, sim::Time now) {
  for (sim::Machine& m : world.machines) {
    if (!m.busy()) continue;
    sim::TaskId running = m.runningTask();
    if (!world.pool[running].missedDeadline(now)) continue;
    world.events.cancel(completionSeq_[static_cast<std::size_t>(m.id())]);
    const sim::Time started = world.pool[running].startTime;
    m.abortRunning(now, world.pool, world.model);
    emit(now, sim::TraceEventKind::Aborted, running, m.id());
    dropTask(world, running, now, sim::TaskStatus::DroppedReactive);
    world.metrics.recordExecution(m.id(), now - started, /*useful=*/false);
    // The successor starts in startIdleMachines(), after the reactive and
    // proactive passes have had a chance to drop it.
  }
}

void Scheduler::finalize(World& world, sim::Time now) {
  // Tasks still in the batch queue when the trial drains can never run:
  // count overdue ones as reactive drops, the rest as proactive (they were
  // deferred until the system went idle).
  batchQueue_.forEachLive([&](sim::TaskId id, std::uint64_t /*seq*/) {
    const bool overdue = world.pool[id].missedDeadline(now);
    dropTask(world, id, now,
             overdue ? sim::TaskStatus::DroppedReactive
                     : sim::TaskStatus::DroppedProactive);
  });
  batchQueue_.clear();
}

void Scheduler::emit(sim::Time time, sim::TraceEventKind kind,
                     sim::TaskId task, sim::MachineId machine) const {
  if (config_.traceSink) {
    config_.traceSink(sim::TraceEvent{time, kind, task, machine});
  }
}

}  // namespace hcs::core
