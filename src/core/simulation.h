#pragma once
// Single-trial simulation: feeds one workload through a configured resource
// allocation system and reports the trial's outcome.

#include <vector>

#include "core/config.h"
#include "core/scheduler.h"
#include "sim/metrics.h"
#include "workload/stream.h"
#include "workload/workload.h"

namespace hcs::core {

/// Everything a trial produces.
struct TrialResult {
  sim::Metrics metrics;

  /// % of counted tasks completed on time — the paper's robustness metric.
  double robustnessPercent = 0.0;

  /// Per-machine busy-time / makespan.
  std::vector<double> machineUtilization;

  /// Final per-type sufferage scores (diagnostics for the Fairness module).
  std::vector<double> fairnessScores;

  std::size_t mappingEvents = 0;
  sim::Time makespan = 0;  ///< time of the last event in the trial

  /// Wall-clock seconds spent inside the batch-mapping section of mapping
  /// events (candidate assembly + heuristic + dispatch/defer decisions).
  /// Populated only when SimulationConfig.measureMappingEngine is set;
  /// 0 otherwise.  Lets benches compare mapping engines without the
  /// simulation substrate (event heap, sampling, metrics) diluting the
  /// signal.
  double mappingEngineSeconds = 0.0;
};

/// Runs one workload trial to completion.  Deterministic: the same model,
/// workload, and config always produce the same result.
///
/// Two arrival paths share one engine:
///  - materialized (a Workload): every task is created and its arrival
///    event pushed up front — the paper-scale path, byte-identical to every
///    golden ever recorded;
///  - streamed (a TaskStream): tasks are created on pop, completed tasks
///    return their TaskPool slots, warm-up trimming is decided online, and
///    memory stays bounded by the in-flight window however long the stream
///    runs.  A streamed trial of the same task sequence produces the
///    identical TrialResult (only internal TaskIds differ, under slot
///    reuse).
class Simulation {
 public:
  /// `model` must outlive run().
  Simulation(const sim::ExecutionModel& model,
             const workload::Workload& workload, SimulationConfig config);

  /// Streamed-arrival trial; `model` and `stream` must outlive run().
  Simulation(const sim::ExecutionModel& model, workload::TaskStream& stream,
             SimulationConfig config);

  TrialResult run();

 private:
  const sim::ExecutionModel& model_;
  const workload::Workload* workload_ = nullptr;
  workload::TaskStream* stream_ = nullptr;
  SimulationConfig config_;
};

}  // namespace hcs::core
