#pragma once
// The resource-allocation system (Fig. 1c): a mapping heuristic with the
// pruning mechanism attached.  Implements the per-mapping-event procedure of
// Fig. 5 against the simulator substrate.

#include <memory>
#include <unordered_set>
#include <vector>

#include "core/config.h"
#include "heuristics/heuristic.h"
#include "heuristics/pct_cache.h"
#include "prob/rng.h"
#include "pruning/accounting.h"
#include "pruning/pruner.h"
#include "sim/event_queue.h"
#include "sim/machine.h"
#include "sim/metrics.h"
#include "sim/task.h"
#include "sim/types.h"

namespace hcs::core {

/// The mutable simulation state a scheduler operates on; owned by
/// Simulation, borrowed per call (keeps the scheduler unit-testable with a
/// hand-built world).
struct World {
  sim::TaskPool& pool;
  std::vector<sim::Machine>& machines;
  sim::EventQueue& events;
  sim::Metrics& metrics;
  prob::Rng& execRng;
  const sim::ExecutionModel& model;
};

class Scheduler {
 public:
  Scheduler(const SimulationConfig& config, int numTaskTypes);

  AllocationMode mode() const { return mode_; }
  const pruning::Pruner& pruner() const { return pruner_; }
  const pruning::Accounting& accounting() const { return accounting_; }
  /// Null when the config disabled PCT memoization.
  const heuristics::PctCache* pctCache() const { return pctCache_.get(); }
  std::size_t mappingEvents() const { return mappingEvents_; }
  std::size_t batchQueueLength() const { return batchQueue_.size(); }

  /// A new task entered the system.  Immediate mode maps it on the spot;
  /// batch mode adds it to the arrival queue and runs a mapping event.
  void handleArrival(World& world, sim::TaskId task, sim::Time now);

  /// A machine finished its running task.  Records the outcome, promotes
  /// the next queued task, and (batch mode) runs a mapping event.
  void handleCompletion(World& world, sim::MachineId machine, sim::TaskId task,
                        sim::Time now);

  /// Drains bookkeeping after the last event (e.g. tasks still waiting in
  /// the batch queue when the trial ends count as reactive drops: they can
  /// no longer meet any deadline in a finished trial).
  void finalize(World& world, sim::Time now);

 private:
  // Fig. 5 steps, in order.
  void reactiveDropPass(World& world, sim::Time now);       // step 1
  void proactiveDropPass(World& world, sim::Time now);      // steps 4-6
  void runBatchMapping(World& world, sim::Time now);        // steps 7-11

  /// Chance of success for the step-10 deferring check: decided from the
  /// candidate PCT's support bounds when possible (identical decision,
  /// no convolution), otherwise computed through the context.
  double deferChance(World& world, const heuristics::MappingContext& ctx,
                     const heuristics::Assignment& a, const sim::Task& t,
                     sim::Time now) const;
  void startIdleMachines(World& world, sim::Time now);      // step 11 tail
  void mappingEvent(World& world, sim::Time now);           // the whole figure

  void dropTask(World& world, sim::TaskId task, sim::Time now,
                sim::TaskStatus reason);
  void dispatch(World& world, sim::TaskId task, sim::MachineId machine,
                sim::Time now);
  void scheduleCompletion(World& world, sim::MachineId machine,
                          sim::TaskId task, sim::Time now);
  void abortOverdueRunning(World& world, sim::Time now);

  heuristics::MappingContext makeContext(World& world, sim::Time now) const;
  void emit(sim::Time time, sim::TraceEventKind kind, sim::TaskId task,
            sim::MachineId machine = sim::kInvalidMachine) const;

  SimulationConfig config_;
  AllocationMode mode_;
  std::unique_ptr<heuristics::ImmediateHeuristic> immediate_;
  std::unique_ptr<heuristics::BatchHeuristic> batch_;
  std::unique_ptr<heuristics::PctCache> pctCache_;
  pruning::Accounting accounting_;
  pruning::Pruner pruner_;
  std::vector<sim::TaskId> batchQueue_;
  /// Pending completion-event sequence number per machine (for aborts).
  std::vector<std::uint64_t> completionSeq_;
  /// Reusable drop-candidate list shared by the reactive and proactive
  /// passes (their uses never overlap; usually empty).
  std::vector<sim::TaskId> overdueScratch_;
  /// Reusable kept-PET list for the proactive pass's incremental chain.
  std::vector<const prob::DiscretePmf*> pendingScratch_;
  /// Reusable per-event working sets for runBatchMapping.
  std::vector<sim::TaskId> candidateScratch_;
  std::unordered_set<sim::TaskId> deferredScratch_;
  std::size_t mappingEvents_ = 0;
};

}  // namespace hcs::core
