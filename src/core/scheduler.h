#pragma once
// The resource-allocation system (Fig. 1c): a mapping heuristic with the
// pruning mechanism attached.  Implements the per-mapping-event procedure of
// Fig. 5 against the simulator substrate.
//
// Two mapping-event engines share this class (SimulationConfig.
// incrementalMappingEnabled):
//
//  - The incremental engine keeps one MappingContext alive for the whole
//    trial (ready/exec memos invalidated per machine by queue epochs), lets
//    the two-phase batch heuristics delta-evaluate across rounds, and runs
//    the arrival queue through BatchQueue's O(1) removal/deferral.  Per-
//    event work is proportional to what a dispatch actually touched.
//  - The reference engine rebuilds a throwaway context and re-evaluates the
//    full O(batch × machines) two-phase process every round, exactly as the
//    paper's Fig. 5 pseudo-code reads.
//
// Both produce bit-identical experiment reports; the reference engine is
// the oracle the incremental one is tested against.

#include <memory>
#include <optional>
#include <unordered_set>
#include <vector>

#include "core/config.h"
#include "heuristics/heuristic.h"
#include "heuristics/pct_cache.h"
#include "prob/rng.h"
#include "pruning/accounting.h"
#include "pruning/pruner.h"
#include "sim/batch_queue.h"
#include "sim/event_queue.h"
#include "sim/machine.h"
#include "sim/metrics.h"
#include "sim/task.h"
#include "sim/types.h"

namespace hcs::core {

/// The mutable simulation state a scheduler operates on; owned by
/// Simulation, borrowed per call (keeps the scheduler unit-testable with a
/// hand-built world).
struct World {
  sim::TaskPool& pool;
  std::vector<sim::Machine>& machines;
  sim::EventQueue& events;
  sim::Metrics& metrics;
  prob::Rng& execRng;
  const sim::ExecutionModel& model;
  /// The fault stream (retry-backoff jitter), owned by the fault injector;
  /// null in fault-free trials — the default keeps hand-built worlds and
  /// the zero-fault engine untouched.
  prob::Rng* faultRng = nullptr;
};

class Scheduler {
 public:
  Scheduler(const SimulationConfig& config, int numTaskTypes);

  AllocationMode mode() const { return mode_; }
  const pruning::Pruner& pruner() const { return pruner_; }
  const pruning::Accounting& accounting() const { return accounting_; }
  /// Null when the config disabled PCT memoization.
  const heuristics::PctCache* pctCache() const { return pctCache_.get(); }
  std::size_t mappingEvents() const { return mappingEvents_; }
  std::size_t batchQueueLength() const { return batchQueue_.size(); }
  /// Accumulated batch-mapping wall clock (measureMappingEngine only).
  std::uint64_t mappingEngineNanos() const { return engineNanos_; }

  /// Per-trial setup against the world the scheduler will run in: sizes the
  /// completion-sequence table once (instead of re-checking on every
  /// completion) and, for the incremental engine, anchors the persistent
  /// mapping context.  Called by Simulation::run; the event handlers also
  /// self-prepare on first use so a hand-built World needs no ceremony.
  void beginTrial(const World& world);

  /// A new task entered the system.  Immediate mode maps it on the spot;
  /// batch mode adds it to the arrival queue and runs a mapping event.
  void handleArrival(World& world, sim::TaskId task, sim::Time now);

  /// A machine finished its running task.  Records the outcome, promotes
  /// the next queued task, and (batch mode) runs a mapping event.
  void handleCompletion(World& world, sim::MachineId machine, sim::TaskId task,
                        sim::Time now);

  /// A machine failed: its completion event is cancelled, the running task
  /// aborted (wasted execution) and its queue orphaned — every lost task
  /// re-enters through the retry policy or is abandoned — then the machine
  /// goes offline and a mapping event re-prices the batch queue against
  /// the surviving cluster.
  void handleMachineFailure(World& world, sim::MachineId machine,
                            sim::Time now);

  /// A failed machine rejoined: it comes back online (empty, with a lazily
  /// rebuilt Eq. 1 chain) and a mapping event lets waiting work claim the
  /// recovered capacity.
  void handleMachineRecovery(World& world, sim::MachineId machine,
                             sim::Time now);

  /// The capacity controller changed the set of machines accepting work
  /// (a boot completed, or a drain was cancelled): run a mapping event so
  /// waiting tasks can claim the new capacity at once.  Drains and
  /// retirements deliberately do NOT call this — a machine that stops
  /// accepting work only shrinks the candidate set, and the next natural
  /// mapping event prices that in (no-op controller ticks must cost the
  /// fixed-capacity engine nothing).
  void handleCapacityChanged(World& world, sim::Time now);

  /// Oldest live task in the batch (arrival) queue, kInvalidTask when
  /// empty — the chance_slo controller policy's observation point.
  sim::TaskId batchQueueHead() const {
    sim::TaskId head = sim::kInvalidTask;
    batchQueue_.forEachLive([&](sim::TaskId id, std::uint64_t /*seq*/) {
      if (head == sim::kInvalidTask) head = id;
    });
    return head;
  }

  /// Drains bookkeeping after the last event (e.g. tasks still waiting in
  /// the batch queue when the trial ends count as reactive drops if they
  /// are overdue and proactive drops otherwise: they can no longer meet any
  /// deadline in a finished trial).
  void finalize(World& world, sim::Time now);

 private:
  // Fig. 5 steps, in order.
  void reactiveDropPass(World& world, sim::Time now);       // step 1
  void proactiveDropPass(World& world, sim::Time now);      // steps 4-6
  void runBatchMapping(World& world, sim::Time now);        // steps 7-11
  void runBatchMappingReference(World& world, sim::Time now);

  /// Maps one round's assignments to dispatch/defer decisions (steps 10-11
  /// shared by both engines).  Returns true if anything was dispatched.
  bool applyAssignments(World& world,
                        const std::vector<heuristics::Assignment>& assignments,
                        const heuristics::MappingContext& ctx, sim::Time now);

  /// Chance of success for the step-10 deferring check: decided from the
  /// candidate PCT's support bounds when possible (identical decision,
  /// no convolution), otherwise computed through the context.
  double deferChance(World& world, const heuristics::MappingContext& ctx,
                     const heuristics::Assignment& a, const sim::Task& t,
                     sim::Time now) const;
  void startIdleMachines(World& world, sim::Time now);      // step 11 tail
  void mappingEvent(World& world, sim::Time now);           // the whole figure

  void dropTask(World& world, sim::TaskId task, sim::Time now,
                sim::TaskStatus reason);
  /// Applies the retry policy to a task lost to a machine failure (or an
  /// arrival with no online machine to take it): schedules a backed-off
  /// re-arrival — through config_.retryHook when the federation gateway
  /// owns re-admission — or abandons the task.
  void retryOrAbandon(World& world, sim::TaskId task, sim::Time now);
  void dispatch(World& world, sim::TaskId task, sim::MachineId machine,
                sim::Time now);
  void scheduleCompletion(World& world, sim::MachineId machine,
                          sim::TaskId task, sim::Time now);
  void abortOverdueRunning(World& world, sim::Time now);

  /// True when some machine still has a free queue slot — the O(machines)
  /// guard that lets the incremental engine skip a whole mapping round
  /// (candidate rebuild + heuristic call) once the cluster is saturated,
  /// the common case in a burst.
  bool anyFreeSlot(const World& world) const;

  heuristics::MappingContext makeContext(World& world, sim::Time now) const;
  void emit(sim::Time time, sim::TraceEventKind kind, sim::TaskId task,
            sim::MachineId machine = sim::kInvalidMachine) const;

  SimulationConfig config_;
  AllocationMode mode_;
  std::unique_ptr<heuristics::ImmediateHeuristic> immediate_;
  std::unique_ptr<heuristics::BatchHeuristic> batch_;
  std::unique_ptr<heuristics::PctCache> pctCache_;
  pruning::Accounting accounting_;
  pruning::Pruner pruner_;
  sim::BatchQueue batchQueue_;
  /// The incremental engine's trial-lifetime context (nullopt until
  /// beginTrial, and always nullopt for the reference engine).
  std::optional<heuristics::MappingContext> ctx_;
  bool trialPrepared_ = false;
  /// Pending completion-event sequence number per machine (for aborts);
  /// sized once per trial in beginTrial.
  std::vector<std::uint64_t> completionSeq_;
  /// Reusable drop-candidate list for the reactive pass (runs at every
  /// mapping event and is almost always empty).
  std::vector<sim::TaskId> overdueScratch_;
  /// Queue contents of a failing machine (goOffline's FIFO hand-back).
  std::vector<sim::TaskId> orphanScratch_;
  /// Drop-candidate list for the proactive pass — its own buffer, not an
  /// alias of overdueScratch_, so the two passes can never trample each
  /// other through a shared name.
  std::vector<sim::TaskId> proactiveDropScratch_;
  /// Reusable kept-PET list for the proactive pass's incremental chain.
  std::vector<const prob::DiscretePmf*> pendingScratch_;
  /// Reusable per-event working sets for the batch-mapping loop.
  std::vector<sim::TaskId> candidateScratch_;
  std::unordered_set<sim::TaskId> deferredScratch_;
  std::size_t mappingEvents_ = 0;
  std::uint64_t engineNanos_ = 0;
};

}  // namespace hcs::core
