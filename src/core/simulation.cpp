#include "core/simulation.h"

#include <optional>
#include <stdexcept>

#include "sim/faults.h"

namespace hcs::core {

Simulation::Simulation(const sim::ExecutionModel& model,
                       const workload::Workload& workload,
                       SimulationConfig config)
    : model_(model), workload_(workload), config_(std::move(config)) {
  if (workload.numTaskTypes() != model.numTaskTypes()) {
    throw std::invalid_argument(
        "Simulation: workload / model task-type count mismatch");
  }
}

TrialResult Simulation::run() {
  const double binWidth = model_.pet(0, 0).binWidth();
  const bool batchMode =
      allocationModeFor(config_) == AllocationMode::Batch;

  sim::TaskPool pool;
  std::vector<sim::Machine> machines;
  machines.reserve(static_cast<std::size_t>(model_.numMachines()));
  for (int j = 0; j < model_.numMachines(); ++j) {
    machines.emplace_back(j, binWidth, /*trackTail=*/batchMode,
                          /*lazyTailRebuild=*/config_.pctCacheEnabled);
  }
  sim::EventQueue events;
  sim::Metrics metrics(model_.numTaskTypes());
  metrics.setCounted(workload_.countedMask(config_.warmupMargin));
  prob::Rng execRng(config_.executionSeed);

  for (const workload::TaskSpec& spec : workload_.tasks()) {
    const sim::TaskId id =
        pool.create(spec.type, spec.arrival, spec.deadline, spec.value);
    events.push(spec.arrival, sim::EventKind::TaskArrival, id);
  }

  Scheduler scheduler(config_, model_.numTaskTypes());
  World world{pool, machines, events, metrics, execRng, model_};

  // Fault injection arms AFTER the arrivals are pushed, so arrivals keep
  // the lower sequence numbers (and win time ties); an inactive config
  // schedules nothing and the trial is byte-identical to the fault-free
  // engine.
  std::optional<sim::FaultInjector> injector;
  if (config_.faults.active()) {
    injector.emplace(config_.faults, config_.faultSeed, machines.size());
    world.faultRng = &injector->rng();
    injector->beginTrial(events, machines, pool, model_);
  }
  scheduler.beginTrial(world);

  // With churn active, the stochastic fail/repair process re-arms on every
  // transition and would keep the queue populated forever; the trial is
  // over once every task reached a terminal state (no task events can be
  // pending then — only fault events, which no longer matter).
  const std::size_t totalTasks = pool.size();
  sim::Time now = 0;
  while (auto event = events.tryPop()) {
    now = event->time;
    switch (event->kind) {
      case sim::EventKind::TaskArrival:
        scheduler.handleArrival(world, event->task, now);
        break;
      case sim::EventKind::TaskCompletion:
        scheduler.handleCompletion(world, event->machine, event->task, now);
        break;
      case sim::EventKind::MachineFailure:
      case sim::EventKind::MachineRecovery: {
        const auto j = static_cast<std::size_t>(event->machine);
        const sim::FaultInjector::Action action =
            injector->onEvent(events, *event, machines[j].online());
        if (action == sim::FaultInjector::Action::Fail) {
          scheduler.handleMachineFailure(world, event->machine, now);
        } else if (action == sim::FaultInjector::Action::Recover) {
          scheduler.handleMachineRecovery(world, event->machine, now);
        }
        break;
      }
    }
    if (injector.has_value() && metrics.terminalCount() == totalTasks) {
      break;
    }
  }
  scheduler.finalize(world, now);

  TrialResult result{.metrics = std::move(metrics),
                     .robustnessPercent = 0.0,
                     .machineUtilization = {},
                     .fairnessScores = {},
                     .mappingEvents = 0,
                     .makespan = 0};
  result.robustnessPercent = result.metrics.robustnessPercent();
  result.makespan = now;
  result.mappingEvents = scheduler.mappingEvents();
  result.mappingEngineSeconds =
      static_cast<double>(scheduler.mappingEngineNanos()) * 1e-9;
  result.fairnessScores = scheduler.pruner().fairness().scores();
  result.machineUtilization.reserve(machines.size());
  for (const sim::Machine& m : machines) {
    result.machineUtilization.push_back(now > 0 ? m.busyTime() / now : 0.0);
  }
  return result;
}

}  // namespace hcs::core
