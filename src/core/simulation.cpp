#include "core/simulation.h"

#include <stdexcept>

namespace hcs::core {

Simulation::Simulation(const sim::ExecutionModel& model,
                       const workload::Workload& workload,
                       SimulationConfig config)
    : model_(model), workload_(workload), config_(std::move(config)) {
  if (workload.numTaskTypes() != model.numTaskTypes()) {
    throw std::invalid_argument(
        "Simulation: workload / model task-type count mismatch");
  }
}

TrialResult Simulation::run() {
  const double binWidth = model_.pet(0, 0).binWidth();
  const bool batchMode =
      allocationModeFor(config_) == AllocationMode::Batch;

  sim::TaskPool pool;
  std::vector<sim::Machine> machines;
  machines.reserve(static_cast<std::size_t>(model_.numMachines()));
  for (int j = 0; j < model_.numMachines(); ++j) {
    machines.emplace_back(j, binWidth, /*trackTail=*/batchMode,
                          /*lazyTailRebuild=*/config_.pctCacheEnabled);
  }
  sim::EventQueue events;
  sim::Metrics metrics(model_.numTaskTypes());
  metrics.setCounted(workload_.countedMask(config_.warmupMargin));
  prob::Rng execRng(config_.executionSeed);

  for (const workload::TaskSpec& spec : workload_.tasks()) {
    const sim::TaskId id =
        pool.create(spec.type, spec.arrival, spec.deadline, spec.value);
    events.push(spec.arrival, sim::EventKind::TaskArrival, id);
  }

  Scheduler scheduler(config_, model_.numTaskTypes());
  World world{pool, machines, events, metrics, execRng, model_};
  scheduler.beginTrial(world);

  sim::Time now = 0;
  while (auto event = events.tryPop()) {
    now = event->time;
    switch (event->kind) {
      case sim::EventKind::TaskArrival:
        scheduler.handleArrival(world, event->task, now);
        break;
      case sim::EventKind::TaskCompletion:
        scheduler.handleCompletion(world, event->machine, event->task, now);
        break;
    }
  }
  scheduler.finalize(world, now);

  TrialResult result{.metrics = std::move(metrics),
                     .robustnessPercent = 0.0,
                     .machineUtilization = {},
                     .fairnessScores = {},
                     .mappingEvents = 0,
                     .makespan = 0};
  result.robustnessPercent = result.metrics.robustnessPercent();
  result.makespan = now;
  result.mappingEvents = scheduler.mappingEvents();
  result.mappingEngineSeconds =
      static_cast<double>(scheduler.mappingEngineNanos()) * 1e-9;
  result.fairnessScores = scheduler.pruner().fairness().scores();
  result.machineUtilization.reserve(machines.size());
  for (const sim::Machine& m : machines) {
    result.machineUtilization.push_back(now > 0 ? m.busyTime() / now : 0.0);
  }
  return result;
}

}  // namespace hcs::core
