#include "core/simulation.h"

#include <optional>
#include <stdexcept>

#include "heuristics/context.h"
#include "sim/elasticity.h"
#include "sim/faults.h"

namespace hcs::core {

namespace {

/// Trace every machine transition one controller tick produced.
void emitCapacityTraces(const sim::TraceSink& sink,
                        const sim::CapacityDelta& delta, sim::Time now) {
  if (!sink) return;
  const auto emit = [&](sim::TraceEventKind kind, sim::MachineId m) {
    sink(sim::TraceEvent{now, kind, sim::kInvalidTask, m});
  };
  for (sim::MachineId m : delta.drained) {
    emit(sim::TraceEventKind::MachineDraining, m);
  }
  for (sim::MachineId m : delta.reclaimed) {
    emit(sim::TraceEventKind::DrainCancelled, m);
  }
  for (sim::MachineId m : delta.booting) {
    emit(sim::TraceEventKind::MachineBooting, m);
  }
  for (sim::MachineId m : delta.bootsCancelled) {
    emit(sim::TraceEventKind::BootCancelled, m);
  }
  for (sim::MachineId m : delta.retired) {
    emit(sim::TraceEventKind::MachineRetired, m);
  }
}

}  // namespace

Simulation::Simulation(const sim::ExecutionModel& model,
                       const workload::Workload& workload,
                       SimulationConfig config)
    : model_(model), workload_(&workload), config_(std::move(config)) {
  if (workload.numTaskTypes() != model.numTaskTypes()) {
    throw std::invalid_argument(
        "Simulation: workload / model task-type count mismatch");
  }
}

Simulation::Simulation(const sim::ExecutionModel& model,
                       workload::TaskStream& stream, SimulationConfig config)
    : model_(model), stream_(&stream), config_(std::move(config)) {
  if (stream.numTaskTypes() != model.numTaskTypes()) {
    throw std::invalid_argument(
        "Simulation: stream / model task-type count mismatch");
  }
}

TrialResult Simulation::run() {
  const bool streaming = stream_ != nullptr;
  const double binWidth = model_.pet(0, 0).binWidth();
  const bool batchMode =
      allocationModeFor(config_) == AllocationMode::Batch;

  sim::TaskPool pool;
  if (streaming) pool.enableRecycling();
  std::vector<sim::Machine> machines;
  machines.reserve(static_cast<std::size_t>(model_.numMachines()));
  for (int j = 0; j < model_.numMachines(); ++j) {
    machines.emplace_back(j, binWidth, /*trackTail=*/batchMode,
                          /*lazyTailRebuild=*/config_.pctCacheEnabled);
  }
  sim::EventQueue events;
  sim::Metrics metrics(model_.numTaskTypes());
  if (streaming) {
    metrics.enableOnlineCounting(config_.warmupMargin, pool.createdClock());
  } else {
    metrics.setCounted(workload_->countedMask(config_.warmupMargin));
  }
  prob::Rng execRng(config_.executionSeed);

  if (!streaming) {
    for (const workload::TaskSpec& spec : workload_->tasks()) {
      const sim::TaskId id =
          pool.create(spec.type, spec.arrival, spec.deadline, spec.value);
      events.push(spec.arrival, sim::EventKind::TaskArrival, id);
    }
  }

  Scheduler scheduler(config_, model_.numTaskTypes());
  World world{pool, machines, events, metrics, execRng, model_};

  // The capacity controller arms first: its surplus slots park (go offline)
  // at t = 0 BEFORE the fault injector scans the fleet, so parked capacity
  // gets no failure process — exactly like initially-offline machines.  An
  // inactive config arms nothing and the trial is byte-identical to the
  // fixed-capacity engine.
  std::optional<sim::CapacityController> controller;
  if (config_.elasticity.active()) {
    controller.emplace(config_.elasticity, config_.elasticitySeed, model_,
                       machines.size(),
                       batchMode ? config_.machineQueueCapacity
                                 : heuristics::MappingContext::kUnbounded,
                       config_.pctCacheEnabled);
    controller->beginTrial(events, machines, pool);
  }

  // Fault injection arms AFTER the arrivals are pushed, so arrivals keep
  // the lower sequence numbers (and win time ties); an inactive config
  // schedules nothing and the trial is byte-identical to the fault-free
  // engine.
  std::optional<sim::FaultInjector> injector;
  if (config_.faults.active()) {
    injector.emplace(config_.faults, config_.faultSeed, machines.size());
    world.faultRng = &injector->rng();
    injector->beginTrial(events, machines, pool, model_);
  }
  scheduler.beginTrial(world);
  sim::FaultInjector* injectorPtr =
      injector.has_value() ? &*injector : nullptr;

  // After a completion or recovery, a draining machine may have emptied —
  // the drain is done and the machine retires.
  const auto maybeRetire = [&](sim::MachineId machine, sim::Time when) {
    if (!controller.has_value()) return;
    if (controller->maybeRetire(events, machines, pool, machine, when,
                                injectorPtr) &&
        config_.traceSink) {
      config_.traceSink(sim::TraceEvent{when, sim::TraceEventKind::MachineRetired,
                                        sim::kInvalidTask, machine});
    }
  };

  // With churn active, the stochastic fail/repair process re-arms on every
  // transition and would keep the queue populated forever; the trial is
  // over once every task reached a terminal state (no task events can be
  // pending then — only fault events, which no longer matter).  A streamed
  // trial learns its task count as the stream drains: it is over once the
  // stream is dry AND everything created went terminal.
  const std::size_t totalTasks = pool.size();
  std::size_t arrivalsSeen = 0;
  const auto allTerminal = [&]() {
    if (streaming) {
      return stream_->peek() == nullptr &&
             metrics.terminalCount() ==
                 static_cast<std::size_t>(pool.createdCount());
    }
    return metrics.terminalCount() == totalTasks;
  };
  // Ticks re-arm forever, so an elastic trial can not rely on queue
  // exhaustion.  A tick popping after the last arrival, with every machine
  // idle and empty and no boot in flight, can never change a task's fate
  // again (the only survivors are deferred batch-queue leftovers, which the
  // finalize pass sweeps exactly like the fixed engine): break BEFORE
  // processing it, so `now` — and with it makespan, machine-seconds, and
  // the finalize trace timestamps — stays at the last task event and the
  // min == max identity oracle holds.  Fault injectors opt out: their
  // recovery-driven mapping events can still resolve stuck tasks.
  const auto taskQuiescent = [&]() {
    const bool moreArrivals =
        streaming ? stream_->peek() != nullptr : arrivalsSeen < totalTasks;
    if (moreArrivals) return false;
    if (controller->hasPendingBoot()) return false;
    for (const sim::Machine& m : machines) {
      if (m.busy() || m.queueLength() > 0) return false;
    }
    return true;
  };
  sim::Time now = 0;
  for (;;) {
    // Streamed arrivals bypass the event queue: the next task is created
    // (and its slot allocated) only when its arrival time is due.  At equal
    // times the arrival wins — exactly the materialized tie-break, where
    // up-front arrival pushes hold the lowest sequence numbers.  TaskArrival
    // events *in the queue* are then only retry re-entries, same as the
    // materialized engine's.
    if (streaming) {
      const workload::TaskSpec* next = stream_->peek();
      if (next != nullptr &&
          (events.empty() || next->arrival <= events.top().time)) {
        const workload::TaskSpec spec = stream_->pop();
        now = spec.arrival;
        const sim::TaskId id =
            pool.create(spec.type, spec.arrival, spec.deadline, spec.value);
        ++arrivalsSeen;
        scheduler.handleArrival(world, id, now);
        if ((injector.has_value() || controller.has_value()) &&
            allTerminal()) {
          break;
        }
        continue;
      }
    }
    auto event = events.tryPop();
    if (!event.has_value()) break;
    if (event->kind == sim::EventKind::ControllerTick &&
        !injector.has_value() && taskQuiescent()) {
      break;
    }
    now = event->time;
    switch (event->kind) {
      case sim::EventKind::TaskArrival:
        ++arrivalsSeen;
        scheduler.handleArrival(world, event->task, now);
        break;
      case sim::EventKind::TaskCompletion:
        scheduler.handleCompletion(world, event->machine, event->task, now);
        maybeRetire(event->machine, now);
        break;
      case sim::EventKind::MachineFailure:
      case sim::EventKind::MachineRecovery: {
        const auto j = static_cast<std::size_t>(event->machine);
        const sim::FaultInjector::Action action =
            injector->onEvent(events, *event, machines[j].online());
        if (action == sim::FaultInjector::Action::Fail) {
          scheduler.handleMachineFailure(world, event->machine, now);
        } else if (action == sim::FaultInjector::Action::Recover) {
          scheduler.handleMachineRecovery(world, event->machine, now);
          // A machine that failed while draining recovers empty and still
          // draining: the drain completes on the spot.
          maybeRetire(event->machine, now);
        }
        break;
      }
      case sim::EventKind::ControllerTick: {
        sim::LoadSignal signal;
        signal.tasksInSystem = scheduler.batchQueueLength();
        for (const sim::Machine& m : machines) {
          signal.tasksInSystem += m.queueLength() + (m.busy() ? 1u : 0u);
        }
        if (controller->needsHeadTask()) {
          signal.headTask = scheduler.batchQueueHead();
        }
        const sim::CapacityDelta delta = controller->onTick(
            events, machines, pool, signal, metrics, now, injectorPtr);
        emitCapacityTraces(config_.traceSink, delta, now);
        // Only *added accepting capacity* warrants a mapping event — drains
        // and retirements shrink the candidate set and the next natural
        // event prices that in.  No-op ticks must not touch the scheduler
        // at all (the min == max identity oracle).
        if (delta.capacityAdded()) {
          scheduler.handleCapacityChanged(world, now);
        }
        break;
      }
      case sim::EventKind::CapacityOnline: {
        const bool accepting = controller->onCapacityOnline(
            events, *event, machines, pool, now, injectorPtr);
        if (accepting) {
          if (config_.traceSink) {
            config_.traceSink(sim::TraceEvent{now,
                                              sim::TraceEventKind::MachineBooted,
                                              sim::kInvalidTask,
                                              event->machine});
          }
          scheduler.handleCapacityChanged(world, now);
        }
        break;
      }
    }
    if ((injector.has_value() || controller.has_value()) && allTerminal()) {
      break;
    }
  }
  scheduler.finalize(world, now);
  // The stream is drained and the creation clock is final: settle the
  // terminals still awaiting their counted/uncounted verdict.
  metrics.endStreamCounting();

  // Machine-seconds cost accounting, recorded for every trial (elastic or
  // fixed) so the utilization/cost report columns always mean the same
  // thing: time integrated against *online* capacity, not wall clock.
  for (std::size_t j = 0; j < machines.size(); ++j) {
    const sim::Machine& m = machines[j];
    metrics.recordMachineSeconds(model_.machineTypeOf(static_cast<int>(j)),
                                 m.onlineSeconds(now), m.drainingSeconds(now),
                                 m.busyTime());
  }

  TrialResult result{.metrics = std::move(metrics),
                     .robustnessPercent = 0.0,
                     .machineUtilization = {},
                     .fairnessScores = {},
                     .mappingEvents = 0,
                     .makespan = 0};
  result.robustnessPercent = result.metrics.robustnessPercent();
  result.makespan = now;
  result.mappingEvents = scheduler.mappingEvents();
  result.mappingEngineSeconds =
      static_cast<double>(scheduler.mappingEngineNanos()) * 1e-9;
  result.fairnessScores = scheduler.pruner().fairness().scores();
  result.machineUtilization.reserve(machines.size());
  for (const sim::Machine& m : machines) {
    result.machineUtilization.push_back(now > 0 ? m.busyTime() / now : 0.0);
  }
  return result;
}

}  // namespace hcs::core
