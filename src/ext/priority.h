#pragma once
// Priority/value assignment for workloads — companion to the §VII
// priority-aware pruning knob (PruningConfig::priorityAware).

#include <cstdint>

#include "workload/workload.h"

namespace hcs::ext {

/// Two-class value assignment: a random `highFraction` of tasks get
/// `highValue`, the rest keep value 1.0 (e.g. premium-tier requests in a
/// serverless platform).
struct ValueSpec {
  double highValue = 4.0;
  double highFraction = 0.2;
};

/// Returns a copy of `workload` with values assigned per `spec`,
/// deterministically from `seed`.
workload::Workload assignValues(const workload::Workload& workload,
                                const ValueSpec& spec, std::uint64_t seed);

}  // namespace hcs::ext
