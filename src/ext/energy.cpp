#include "ext/energy.h"

#include <stdexcept>

namespace hcs::ext {

PowerModel PowerModel::uniform(int numMachines, double busy, double idle) {
  if (numMachines <= 0) {
    throw std::invalid_argument("PowerModel: need at least one machine");
  }
  if (busy < idle || idle < 0.0) {
    throw std::invalid_argument("PowerModel: need busy >= idle >= 0");
  }
  PowerModel model;
  model.busyPower.assign(static_cast<std::size_t>(numMachines), busy);
  model.idlePower.assign(static_cast<std::size_t>(numMachines), idle);
  return model;
}

PowerModel PowerModel::proportional(const std::vector<double>& speedFactors,
                                    double baseBusy, double baseIdle) {
  if (speedFactors.empty()) {
    throw std::invalid_argument("PowerModel: need at least one machine");
  }
  PowerModel model;
  model.busyPower.reserve(speedFactors.size());
  model.idlePower.reserve(speedFactors.size());
  for (double speed : speedFactors) {
    if (speed <= 0.0) {
      throw std::invalid_argument("PowerModel: speed factors must be positive");
    }
    model.busyPower.push_back(baseBusy * speed);
    model.idlePower.push_back(baseIdle);
  }
  return model;
}

CostModel CostModel::uniform(int numMachines, double price) {
  if (numMachines <= 0 || price < 0.0) {
    throw std::invalid_argument("CostModel: bad parameters");
  }
  CostModel model;
  model.pricePerTimeUnit.assign(static_cast<std::size_t>(numMachines), price);
  return model;
}

EnergyCostReport assess(const core::TrialResult& trial,
                        const PowerModel& power, const CostModel& cost) {
  const auto& split = trial.metrics.perMachineExecution();
  if (power.busyPower.size() < split.size() ||
      power.idlePower.size() < split.size() ||
      cost.pricePerTimeUnit.size() < split.size()) {
    throw std::invalid_argument("assess: models cover fewer machines than "
                                "the trial used");
  }
  EnergyCostReport report;
  for (std::size_t j = 0; j < power.busyPower.size(); ++j) {
    const double busy = power.busyPower[j];
    const double idle = power.idlePower[j];
    const sim::Metrics::ExecutionSplit machineSplit =
        j < split.size() ? split[j] : sim::Metrics::ExecutionSplit{};
    report.usefulEnergy += machineSplit.useful * busy;
    report.wastedEnergy += machineSplit.wasted * busy;
    const double idleTime = trial.makespan - machineSplit.total();
    report.idleEnergy += (idleTime > 0 ? idleTime : 0.0) * idle;
    if (j < cost.pricePerTimeUnit.size()) {
      report.totalCost += trial.makespan * cost.pricePerTimeUnit[j];
    }
  }
  report.totalEnergy =
      report.usefulEnergy + report.wastedEnergy + report.idleEnergy;
  const auto onTime = trial.metrics.completedOnTime();
  report.costPerOnTimeTask =
      onTime > 0 ? report.totalCost / static_cast<double>(onTime) : 0.0;
  return report;
}

}  // namespace hcs::ext
