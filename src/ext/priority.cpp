#include "ext/priority.h"

#include <stdexcept>

#include "prob/rng.h"

namespace hcs::ext {

workload::Workload assignValues(const workload::Workload& workload,
                                const ValueSpec& spec, std::uint64_t seed) {
  if (spec.highValue <= 0.0 || spec.highFraction < 0.0 ||
      spec.highFraction > 1.0) {
    throw std::invalid_argument("assignValues: malformed value spec");
  }
  prob::Rng rng(seed);
  std::vector<workload::TaskSpec> tasks = workload.tasks();
  for (workload::TaskSpec& t : tasks) {
    t.value = rng.uniform01() < spec.highFraction ? spec.highValue : 1.0;
  }
  return workload::Workload(std::move(tasks), workload.numTaskTypes());
}

}  // namespace hcs::ext
