#pragma once
// Energy and cost accounting — the paper's §VII future work:
//
//   "We believe that probabilistic task pruning improves energy efficiency
//    by saving the computing power that is otherwise wasted to execute
//    failing tasks.  Such saving in computing can also reduce the incurred
//    cost of using cloud resources ... In the future, we plan to measure
//    such improvements in energy and incurred cost."
//
// This module measures them.  Machine time is split by the simulator into
// useful (tasks that completed on time) and wasted (late or aborted
// executions); a per-machine power model and a per-machine price turn the
// split into joule-equivalents and currency.

#include <cstddef>
#include <vector>

#include "core/simulation.h"
#include "sim/types.h"

namespace hcs::ext {

/// Per-machine power draw (arbitrary power units, e.g. watts).
struct PowerModel {
  std::vector<double> busyPower;
  std::vector<double> idlePower;

  /// Every machine draws the same busy/idle power.
  static PowerModel uniform(int numMachines, double busy, double idle);

  /// Busy power proportional to machine speed (faster machines burn more):
  /// busy_j = baseBusy * speedFactor_j, idle_j = baseIdle.
  static PowerModel proportional(const std::vector<double>& speedFactors,
                                 double baseBusy, double baseIdle);
};

/// Per-machine price per time unit (e.g. cloud rental rate).
struct CostModel {
  std::vector<double> pricePerTimeUnit;

  static CostModel uniform(int numMachines, double price);
};

/// The energy/cost outcome of one trial.
struct EnergyCostReport {
  double usefulEnergy = 0;  ///< busy energy spent on on-time completions
  double wastedEnergy = 0;  ///< busy energy spent on failing tasks
  double idleEnergy = 0;    ///< idle draw over the makespan
  double totalEnergy = 0;

  double totalCost = 0;           ///< makespan rental of every machine
  double costPerOnTimeTask = 0;   ///< totalCost / on-time completions

  /// Fraction of busy energy that was wasted — the paper's §VII quantity.
  double wastedBusyFraction() const {
    const double busy = usefulEnergy + wastedEnergy;
    return busy > 0 ? wastedEnergy / busy : 0.0;
  }
};

/// Derives the energy/cost report of a finished trial.
/// Throws std::invalid_argument if the models' machine counts do not cover
/// the trial's machines.
EnergyCostReport assess(const core::TrialResult& trial,
                        const PowerModel& power, const CostModel& cost);

}  // namespace hcs::ext
