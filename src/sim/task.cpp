#include "sim/task.h"

namespace hcs::sim {

bool isTerminal(TaskStatus s) {
  switch (s) {
    case TaskStatus::CompletedOnTime:
    case TaskStatus::CompletedLate:
    case TaskStatus::DroppedReactive:
    case TaskStatus::DroppedProactive:
    case TaskStatus::Abandoned:
    case TaskStatus::Rejected:
      return true;
    case TaskStatus::Created:
    case TaskStatus::Batched:
    case TaskStatus::Queued:
    case TaskStatus::Running:
      return false;
  }
  return false;
}

std::string_view toString(TaskStatus s) {
  switch (s) {
    case TaskStatus::Created: return "Created";
    case TaskStatus::Batched: return "Batched";
    case TaskStatus::Queued: return "Queued";
    case TaskStatus::Running: return "Running";
    case TaskStatus::CompletedOnTime: return "CompletedOnTime";
    case TaskStatus::CompletedLate: return "CompletedLate";
    case TaskStatus::DroppedReactive: return "DroppedReactive";
    case TaskStatus::DroppedProactive: return "DroppedProactive";
    case TaskStatus::Abandoned: return "Abandoned";
    case TaskStatus::Rejected: return "Rejected";
  }
  return "Unknown";
}

TaskId TaskPool::create(TaskType type, Time arrival, Time deadline,
                        double value) {
  Task t;
  t.ordinal = created_++;
  t.type = type;
  t.arrival = arrival;
  t.deadline = deadline;
  t.value = value;
  if (recycling_ && !freeSlots_.empty()) {
    const TaskId id = freeSlots_.back();
    freeSlots_.pop_back();
    t.id = id;
    tasks_[static_cast<std::size_t>(id)] = t;
    return id;
  }
  const TaskId id = static_cast<TaskId>(tasks_.size());
  t.id = id;
  tasks_.push_back(t);
  return id;
}

void TaskPool::retire(TaskId id) {
  if (!recycling_) return;
  freeSlots_.push_back(id);
}

}  // namespace hcs::sim
