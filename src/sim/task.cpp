#include "sim/task.h"

namespace hcs::sim {

bool isTerminal(TaskStatus s) {
  switch (s) {
    case TaskStatus::CompletedOnTime:
    case TaskStatus::CompletedLate:
    case TaskStatus::DroppedReactive:
    case TaskStatus::DroppedProactive:
    case TaskStatus::Abandoned:
    case TaskStatus::Rejected:
      return true;
    case TaskStatus::Created:
    case TaskStatus::Batched:
    case TaskStatus::Queued:
    case TaskStatus::Running:
      return false;
  }
  return false;
}

std::string_view toString(TaskStatus s) {
  switch (s) {
    case TaskStatus::Created: return "Created";
    case TaskStatus::Batched: return "Batched";
    case TaskStatus::Queued: return "Queued";
    case TaskStatus::Running: return "Running";
    case TaskStatus::CompletedOnTime: return "CompletedOnTime";
    case TaskStatus::CompletedLate: return "CompletedLate";
    case TaskStatus::DroppedReactive: return "DroppedReactive";
    case TaskStatus::DroppedProactive: return "DroppedProactive";
    case TaskStatus::Abandoned: return "Abandoned";
    case TaskStatus::Rejected: return "Rejected";
  }
  return "Unknown";
}

TaskId TaskPool::create(TaskType type, Time arrival, Time deadline,
                        double value) {
  const TaskId id = static_cast<TaskId>(tasks_.size());
  Task t;
  t.id = id;
  t.type = type;
  t.arrival = arrival;
  t.deadline = deadline;
  t.value = value;
  tasks_.push_back(t);
  return id;
}

}  // namespace hcs::sim
