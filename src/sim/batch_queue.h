#pragma once
// The indexed arrival (batch) queue of the incremental mapping engine.
//
// The queue must iterate in arrival order (the batch heuristics' contract),
// but the hot mutations are random-access: a dispatch removes one task from
// the middle, and the step-10 deferring check marks one task as out of the
// running for the remainder of the current mapping event.  A plain vector
// made both O(queue) (std::erase plus a per-round rebuild that filtered a
// hash set of deferrals); here removal tombstones the slot in O(1) through
// a dense task-id position index, deferral is a generation stamp (cleared
// for the whole queue in O(1) by bumping the event generation), and
// tombstones are compacted away amortized-O(1) when they outnumber the
// live entries.
//
// Consumers that keep derived structures (the two-phase heuristics'
// per-type buckets) stay in sync *without rescanning*: every task carries a
// stable arrival sequence number, and every push/remove is appended to a
// mutation journal the consumer replays from its last position — per
// mapping event that is O(what changed), not O(queue).

#include <cstdint>
#include <vector>

#include "sim/types.h"

namespace hcs::sim {

class BatchQueue {
 public:
  struct JournalEntry {
    enum class Op : std::uint8_t { Push, Remove };
    Op op = Op::Push;
    TaskId task = kInvalidTask;
    /// The task's arrivalSeq — carried here so a Remove can still be
    /// located in seq-keyed consumer structures after the queue forgot it.
    std::uint64_t seq = 0;
  };

  bool empty() const { return liveCount_ == 0; }
  std::size_t size() const { return liveCount_; }

  /// Opens a new mapping event: all deferral marks from the previous event
  /// expire at once (no per-entry clearing).
  void beginEvent() { ++eventGen_; }

  void push(TaskId task) {
    const auto idx = static_cast<std::size_t>(task);
    if (posByTask_.size() <= idx) posByTask_.resize(idx + 1, kNoPos);
    posByTask_[idx] = static_cast<std::uint32_t>(entries_.size());
    const std::uint64_t seq = nextArrivalSeq_++;
    entries_.push_back(Entry{task, seq, 0});
    ++liveCount_;
    if (journalRecording_) {
      journal_.push_back(JournalEntry{JournalEntry::Op::Push, task, seq});
    }
  }

  bool contains(TaskId task) const {
    const auto idx = static_cast<std::size_t>(task);
    return idx < posByTask_.size() && posByTask_[idx] != kNoPos;
  }

  /// O(1) stable removal (dispatch or drop): the slot becomes a tombstone,
  /// every other task keeps its arrival order.
  void remove(TaskId task) {
    const std::uint32_t pos = posByTask_[static_cast<std::size_t>(task)];
    posByTask_[static_cast<std::size_t>(task)] = kNoPos;
    entries_[pos].task = kInvalidTask;
    --liveCount_;
    if (journalRecording_) {
      journal_.push_back(JournalEntry{JournalEntry::Op::Remove, task,
                                      entries_[pos].arrivalSeq});
    }
    maybeCompact();
  }

  /// Step 10: `task` is deferred to the next mapping event — it stays in
  /// the queue but candidate iteration skips it until beginEvent().
  void markDeferred(TaskId task) {
    entries_[posByTask_[static_cast<std::size_t>(task)]].deferGen = eventGen_;
  }

  bool deferredThisEvent(TaskId task) const {
    const auto idx = static_cast<std::size_t>(task);
    if (idx >= posByTask_.size() || posByTask_[idx] == kNoPos) return false;
    return entries_[posByTask_[idx]].deferGen == eventGen_;
  }

  /// Stable per-task arrival sequence number (assigned at push, never
  /// reused); iteration order == ascending arrivalSeq.  The task must be
  /// in the queue.
  std::uint64_t arrivalSeq(TaskId task) const {
    return entries_[posByTask_[static_cast<std::size_t>(task)]].arrivalSeq;
  }

  /// Calls `fn(taskId, arrivalSeq)` for every live task in arrival order.
  /// `fn` must not mutate the queue (collect first, then remove — the
  /// scheduler's existing drop idiom).
  template <class Fn>
  void forEachLive(Fn&& fn) const {
    for (const Entry& e : entries_) {
      if (e.task != kInvalidTask) fn(e.task, e.arrivalSeq);
    }
  }

  /// Fills `out` with the live tasks not deferred this event, in arrival
  /// order — the candidate set of one mapping round.
  void liveCandidates(std::vector<TaskId>& out) const {
    out.clear();
    out.reserve(liveCount_);
    for (const Entry& e : entries_) {
      if (e.task != kInvalidTask && e.deferGen != eventGen_) {
        out.push_back(e.task);
      }
    }
  }

  // --- Mutation journal --------------------------------------------------

  /// Monotone count of mutations since the last reset; journal_[i] is the
  /// i-th mutation.  A consumer that remembers its last position replays
  /// exactly the delta.  The journal lives until clear() — bounded by two
  /// entries per task of the trial, the same order as the task pool itself.
  std::size_t journalSize() const { return journal_.size(); }
  const JournalEntry& journalAt(std::size_t i) const { return journal_[i]; }

  /// Bumped whenever history is discarded (clear); consumers holding a
  /// journal position from another generation must rebuild from scratch.
  std::uint64_t resetGeneration() const { return resetGen_; }

  /// Turns mutation recording off (and back on) for queues nobody will
  /// ever replay — the reference engine and non-queue-consuming heuristics
  /// otherwise pay an append (and the journal's unbounded growth) per
  /// mutation for nothing.  Re-enabling counts as discarding history:
  /// mutations made while recording was off are gone, so consumers holding
  /// a position must rebuild — the reset generation is bumped to force it.
  void setJournalRecording(bool on) {
    if (on && !journalRecording_) {
      journal_.clear();
      ++resetGen_;
    }
    journalRecording_ = on;
  }

  void clear() {
    for (const Entry& e : entries_) {
      if (e.task != kInvalidTask) {
        posByTask_[static_cast<std::size_t>(e.task)] = kNoPos;
      }
    }
    entries_.clear();
    journal_.clear();
    liveCount_ = 0;
    ++resetGen_;
  }

 private:
  struct Entry {
    TaskId task;              ///< kInvalidTask once removed (tombstone)
    std::uint64_t arrivalSeq; ///< stable arrival-order stamp
    std::uint64_t deferGen;   ///< event generation of the last deferral
  };

  static constexpr std::uint32_t kNoPos = 0xffffffffu;

  void maybeCompact() {
    if (entries_.size() < 16 || liveCount_ * 2 >= entries_.size()) return;
    std::size_t write = 0;
    for (const Entry& e : entries_) {
      if (e.task == kInvalidTask) continue;
      posByTask_[static_cast<std::size_t>(e.task)] =
          static_cast<std::uint32_t>(write);
      entries_[write++] = e;
    }
    entries_.resize(write);
  }

  std::vector<Entry> entries_;  ///< arrival order, with tombstones
  /// task id → position in entries_ (task ids are dense pool indices, so a
  /// flat vector beats hashing); kNoPos when not in the queue.
  std::vector<std::uint32_t> posByTask_;
  std::vector<JournalEntry> journal_;
  std::size_t liveCount_ = 0;
  bool journalRecording_ = true;
  std::uint64_t eventGen_ = 1;
  std::uint64_t nextArrivalSeq_ = 0;
  std::uint64_t resetGen_ = 0;
};

}  // namespace hcs::sim
