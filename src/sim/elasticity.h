#pragma once
// Elastic capacity control: a deterministic controller that decides, at a
// fixed control period, whether the cluster should add or retire capacity —
// the "decides" half of the churn story (ROADMAP 5(b)) on top of the fault
// layer's machine-lifecycle machinery.
//
// The controller owns no randomness in its decisions: all three policies
// are pure functions of observed load, so a trial is reproducible from
// (config, workload, seeds) alone.  Scale-up pays a per-boot provisioning
// delay (`boot_latency`) before the machine accepts work; scale-down drains
// gracefully — the machine finishes its running/queued tasks, then retires —
// unlike a failure's abort-and-orphan path.  A trial with elasticity
// disabled, or with min == max pinning every group, performs no controller
// action and stays byte-identical to the fixed-capacity engine.

#include <cstdint>
#include <memory>
#include <vector>

#include "prob/rng.h"
#include "sim/event_queue.h"
#include "sim/machine.h"
#include "sim/metrics.h"
#include "sim/task.h"
#include "sim/types.h"

namespace hcs::heuristics {
class MappingContext;
class PctCache;
}  // namespace hcs::heuristics

namespace hcs::sim {

class FaultInjector;

/// How the controller reads load.
enum class ElasticityPolicy {
  QueueBound,          ///< tasks-in-system per provisioned machine, hysteresis
  TargetUtilization,   ///< EWMA of busy-fraction vs. a setpoint with deadband
  ChanceSlo,           ///< Eq. 2 best-machine success chance of the queue head
};

const char* toString(ElasticityPolicy policy);

/// Capacity bounds of one pooled machine type.  The bind layer appends
/// `maxMachines - <base count>` parked slots of this type after the base
/// cluster, so machine ids 0..B-1 stay exactly the fixed-capacity cluster.
struct ElasticGroup {
  int machineType = 0;
  int minMachines = 1;
  int maxMachines = 1;
};

struct ElasticityConfig {
  bool enabled = false;
  ElasticityPolicy policy = ElasticityPolicy::QueueBound;

  /// Control period: the controller re-evaluates every `period` time units
  /// (first tick at t = period — there is nothing to observe at t = 0).
  double period = 1.0;
  /// Provisioning delay paid by every scale-up before comeOnline.
  double bootLatency = 0.0;
  /// Machines added/retired per group per control action.
  int step = 1;

  // queue_bound: scale up when tasks-in-system exceeds scale_up_queue x
  // provisioned machines, down when it falls under scale_down_queue x.
  double scaleUpQueue = 4.0;
  double scaleDownQueue = 1.0;

  // target_utilization: EWMA(alpha) of the per-period busy fraction,
  // compared against setpoint +/- deadband.
  double setpoint = 0.7;
  double ewmaAlpha = 0.5;
  double deadband = 0.1;

  // chance_slo: scale up while the batch-queue head's best-machine Eq. 2
  // success chance sits below this threshold.
  double chanceThreshold = 0.5;

  /// Machines 0..baseMachines-1 start the trial active; the rest are parked
  /// capacity the controller may boot.  Filled by the bind layer.
  std::size_t baseMachines = 0;
  std::vector<ElasticGroup> pool;

  /// True when a controller should be armed at all.
  bool active() const { return enabled && !pool.empty(); }

  /// Throws std::invalid_argument on inconsistent knobs.
  void validate() const;
};

/// The load observation one tick works from; assembled by the engine
/// (the controller cannot see the scheduler's batch queue directly).
struct LoadSignal {
  /// Waiting (batch queue) + machine-queued + running tasks.
  std::size_t tasksInSystem = 0;
  /// Oldest waiting batch task, kInvalidTask when the queue is empty.
  /// Only read by the chance_slo policy (see needsHeadTask()).
  TaskId headTask = kInvalidTask;
};

/// What one controller step changed; the engine turns entries into trace
/// events and — for transitions that add *accepting* capacity — a mapping
/// event.  A tick that decided nothing returns all-empty and must cost the
/// engine nothing (no mapping event, no pruner contact).
struct CapacityDelta {
  std::vector<MachineId> drained;    ///< beginDrain issued
  std::vector<MachineId> reclaimed;  ///< drain cancelled: accepting again
  std::vector<MachineId> booting;    ///< CapacityOnline scheduled
  std::vector<MachineId> bootsCancelled;  ///< pending boot withdrawn
  std::vector<MachineId> retired;    ///< idle drained machine left at once

  bool capacityAdded() const { return !reclaimed.empty(); }
  bool empty() const {
    return drained.empty() && reclaimed.empty() && booting.empty() &&
           bootsCancelled.empty() && retired.empty();
  }
};

/// Per-trial capacity controller.  Deterministic: the same config, model,
/// and load history always produce the same scale decisions.  The seed
/// feeds a dedicated RNG stream (seed-paired with the execution/fault
/// streams) reserved for stochastic policies; none of the three shipped
/// policies draws from it.
class CapacityController {
 public:
  CapacityController(const ElasticityConfig& config, std::uint64_t seed,
                     const ExecutionModel& model, std::size_t numMachines,
                     std::size_t queueCapacity, bool pctCacheEnabled);
  ~CapacityController();
  CapacityController(CapacityController&&) noexcept;

  /// Parks the surplus slots (ids >= baseMachines) at t = 0 — call BEFORE
  /// the fault injector arms, so parked capacity gets no failure process —
  /// and pushes the first ControllerTick.  Throws std::invalid_argument if
  /// the group bounds are inconsistent with the machine list.
  void beginTrial(EventQueue& events, std::vector<Machine>& machines,
                  const TaskPool& pool);

  /// True when the engine must supply LoadSignal::headTask (chance_slo).
  bool needsHeadTask() const {
    return config_.policy == ElasticityPolicy::ChanceSlo;
  }

  /// Periodic evaluation: reads the signal, applies at most `step` scale
  /// actions per group, re-arms the next tick.  Mutates machines (drain
  /// flags, immediate retirement of idle drainees) and notifies the
  /// injector when a retirement invalidates its pending fault process.
  CapacityDelta onTick(EventQueue& events, std::vector<Machine>& machines,
                       const TaskPool& pool, const LoadSignal& signal,
                       Metrics& metrics, Time now, FaultInjector* injector);

  /// A CapacityOnline event popped: the machine's provisioning delay is
  /// over.  Brings it online (unless a scripted recover raced the boot) and
  /// arms the injector's failure process for it.  Returns true when the
  /// machine now accepts work — the engine follows with a mapping event.
  bool onCapacityOnline(EventQueue& events, const Event& event,
                        std::vector<Machine>& machines, const TaskPool& pool,
                        Time now, FaultInjector* injector);

  /// Retires `machine` if it is draining, online, and empty (the drain
  /// completed).  Called by the engine after completions and recoveries.
  /// Returns true if the machine was retired.
  bool maybeRetire(EventQueue& events, std::vector<Machine>& machines,
                   const TaskPool& pool, MachineId machine, Time now,
                   FaultInjector* injector);

  /// True while any boot's CapacityOnline event is still in flight.  The
  /// engine uses this for its quiescence check: a tick popping after the
  /// last task event, with an idle fleet and no boot pending, can never
  /// change a task's fate — the trial is over (deferred leftovers are swept
  /// by the scheduler's finalize pass, exactly like the fixed engine).
  bool hasPendingBoot() const {
    for (const Slot s : slots_) {
      if (s == Slot::Booting) return true;
    }
    return false;
  }

  prob::Rng& rng() { return rng_; }

 private:
  /// Controller-side slot lifecycle.  `draining` is machine state, not a
  /// slot state: a draining slot stays Active until it retires.
  enum class Slot : std::uint8_t {
    Fixed,    ///< unmanaged type: never scaled
    Active,   ///< counted capacity (may be offline-failed or draining)
    Parked,   ///< offline surplus the controller may boot
    Booting,  ///< CapacityOnline in flight
  };

  static constexpr std::uint64_t kNoEvent = ~std::uint64_t{0};

  void pushTick(EventQueue& events, Time now);
  /// +1 scale up, -1 scale down, 0 hold.
  int decide(const std::vector<Machine>& machines, const TaskPool& pool,
             const LoadSignal& signal, Time now);
  int decideTargetUtilization(const std::vector<Machine>& machines, Time now);
  int decideChanceSlo(const std::vector<Machine>& machines,
                      const TaskPool& pool, const LoadSignal& signal,
                      Time now);
  void scaleUpGroup(const ElasticGroup& g, EventQueue& events,
                    std::vector<Machine>& machines, Metrics& metrics,
                    Time now, CapacityDelta& delta);
  void scaleDownGroup(const ElasticGroup& g, EventQueue& events,
                      std::vector<Machine>& machines, const TaskPool& pool,
                      Metrics& metrics, Time now, FaultInjector* injector,
                      CapacityDelta& delta);
  /// #(Active, not draining) machines of the group (offline-failed ones
  /// count: they are capacity that will recover).
  int activeCount(const ElasticGroup& g,
                  const std::vector<Machine>& machines) const;
  int bootingCount(const ElasticGroup& g) const;
  bool inGroup(const ElasticGroup& g, MachineId m) const {
    return model_->machineTypeOf(m) == g.machineType;
  }

  const ElasticityConfig& config_;
  prob::Rng rng_;
  const ExecutionModel* model_;
  std::size_t numMachines_;
  std::vector<Slot> slots_;
  /// Per machine: seq of its pending CapacityOnline event (kNoEvent when
  /// none) — boot cancellation removes the event in place.
  std::vector<std::uint64_t> bootSeq_;

  // target_utilization observation state (per-period deltas + EWMA).
  double lastBusy_ = 0.0;
  double lastOnline_ = 0.0;
  double ewma_ = -1.0;  ///< <0 = no sample folded yet

  // chance_slo evaluation state: a persistent context + PCT cache over the
  // trial's machine list, rebound to each tick (the same reuse pattern as
  // the federation's routing context).
  std::unique_ptr<heuristics::PctCache> pctCache_;
  std::unique_ptr<heuristics::MappingContext> ctx_;
  std::size_t queueCapacity_;
  bool pctCacheEnabled_;
};

}  // namespace hcs::sim
