#pragma once
// Discrete-event queue driving the simulation.

#include <cstdint>
#include <optional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/types.h"

namespace hcs::sim {

/// Mapping events fire "when a task completes its execution or when a new
/// task arrives into the system" (§II); these are the two event kinds.
enum class EventKind {
  TaskArrival,
  TaskCompletion,
};

struct Event {
  Time time = 0;
  EventKind kind = EventKind::TaskArrival;
  TaskId task = kInvalidTask;
  MachineId machine = kInvalidMachine;
  /// Monotone sequence number breaking time ties deterministically
  /// (completions scheduled earlier pop earlier).
  std::uint64_t seq = 0;
};

/// Min-heap of events ordered by (time, seq).
class EventQueue {
 public:
  void push(Time time, EventKind kind, TaskId task,
            MachineId machine = kInvalidMachine);

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  const Event& top() const { return heap_.top(); }
  Event pop();

  /// Pops the next non-cancelled event, or returns nullopt if none remain.
  std::optional<Event> tryPop();

  /// Marks a previously scheduled completion as void (e.g. the running task
  /// was aborted); voided events are skipped transparently by pop().
  /// Cancelling the same seq twice, or a seq that was never pushed, is
  /// harmless (the entry is dropped the first time it surfaces, if ever).
  void cancel(std::uint64_t seq);

  /// Cancellations recorded but not yet skipped by a pop.
  std::size_t pendingCancellations() const { return cancelled_.size(); }

 private:
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  /// O(1) membership test per popped event; deep abort-heavy runs used to
  /// pay an O(n) scan of a vector here for every pop.
  std::unordered_set<std::uint64_t> cancelled_;
  std::uint64_t nextSeq_ = 0;

 public:
  /// Sequence number that the next push() will be assigned; lets callers
  /// remember a completion event so they can cancel it.
  std::uint64_t nextSeq() const { return nextSeq_; }
};

}  // namespace hcs::sim
