#pragma once
// Discrete-event queue driving the simulation.

#include <cstdint>
#include <optional>
#include <vector>

#include "sim/types.h"

namespace hcs::sim {

/// Mapping events fire "when a task completes its execution or when a new
/// task arrives into the system" (§II); those are the paper's two kinds.
/// The fault-injection layer adds machine churn through the same queue:
/// failures and recoveries are ordinary timed events, so fault-enabled runs
/// keep the engine's total (time, seq) order — and runs with no fault
/// events scheduled are byte-identical to the original two-kind engine.
enum class EventKind {
  TaskArrival,
  TaskCompletion,
  MachineFailure,   ///< the machine in Event.machine goes offline
  MachineRecovery,  ///< the machine in Event.machine rejoins the cluster
  ControllerTick,   ///< periodic capacity-controller evaluation
  CapacityOnline,   ///< a booted machine finishes its provisioning delay
};

struct Event {
  Time time = 0;
  EventKind kind = EventKind::TaskArrival;
  TaskId task = kInvalidTask;
  MachineId machine = kInvalidMachine;
  /// Monotone sequence number breaking time ties deterministically
  /// (completions scheduled earlier pop earlier).
  std::uint64_t seq = 0;
};

/// Indexed min-heap of events ordered by (time, seq).
///
/// The heap is 4-ary — shallower than a binary heap for the same size, and
/// the four-child minimum scan is friendlier to the cache line the children
/// share — and every live event's heap position is tracked by its sequence
/// number, so cancel() removes the event *in place*.  The previous
/// implementation parked cancellations in a tombstone set that each pop had
/// to consult and that abort-heavy runs grew without bound; here a
/// cancellation is one O(log4 n) heap repair and the entry is freed eagerly.
/// Because (time, seq) is a total order over unique keys, the pop sequence
/// is bit-identical to the tombstone implementation's.
class EventQueue {
 public:
  void push(Time time, EventKind kind, TaskId task,
            MachineId machine = kInvalidMachine);

  bool empty() const { return heap_.empty(); }
  /// Live (non-cancelled) events; cancelled entries leave the heap at once.
  std::size_t size() const { return heap_.size(); }

  /// The next event to pop.  Never a cancelled event: cancellation removes
  /// entries eagerly instead of hiding them behind a tombstone.
  const Event& top() const { return heap_.front(); }
  Event pop();

  /// Pops the next event, or returns nullopt if none remain.
  std::optional<Event> tryPop();

  /// Voids a previously scheduled event (e.g. the running task was
  /// aborted): the entry is unlinked from the heap immediately.  Cancelling
  /// a seq that is not live — already popped, already cancelled, or never
  /// pushed — is a harmless no-op; nothing is recorded, so a stray seq can
  /// never suppress a future event.
  void cancel(std::uint64_t seq);

  /// Cancellations recorded but not yet applied.  Always zero: cancel()
  /// frees entries eagerly instead of accumulating tombstones.  Kept so
  /// abort-heavy regression tests can assert the invariant.
  std::size_t pendingCancellations() const { return 0; }

  /// Sequence number that the next push() will be assigned; lets callers
  /// remember a completion event so they can cancel it.
  std::uint64_t nextSeq() const { return nextSeq_; }

  /// Width of the position-index window (a memory-bound test hook): the
  /// span from the oldest live event's seq to nextSeq().  Amortized
  /// compaction keeps this proportional to the live-event count rather
  /// than the total pushes of the trial.
  std::size_t posWindow() const { return pos_.size(); }

 private:
  static constexpr std::uint32_t kNotInHeap = 0xffffffffu;

  static bool earlier(const Event& a, const Event& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  }

  void siftUp(std::size_t i);
  void siftDown(std::size_t i);
  void removeAt(std::size_t i);
  void compact();
  void place(std::size_t i, Event e) {
    pos_[e.seq - posBase_] = static_cast<std::uint32_t>(i);
    heap_[i] = std::move(e);
  }

  std::vector<Event> heap_;
  /// pos_[seq - posBase_] = heap index of that event, or kNotInHeap once it
  /// popped or was cancelled.  Sequence numbers are dense (one per push),
  /// so a flat vector replaces the hash probe on every cancel; the window
  /// slides forward (posBase_) via amortized compaction so a long stream's
  /// dead prefix is reclaimed instead of growing 4 bytes per push forever.
  std::vector<std::uint32_t> pos_;
  std::uint64_t posBase_ = 0;
  std::size_t compactAt_ = 1024;
  std::uint64_t nextSeq_ = 0;
};

}  // namespace hcs::sim
