#include "sim/elasticity.h"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "heuristics/context.h"
#include "heuristics/pct_cache.h"
#include "sim/faults.h"

namespace hcs::sim {

const char* toString(ElasticityPolicy policy) {
  switch (policy) {
    case ElasticityPolicy::QueueBound: return "queue_bound";
    case ElasticityPolicy::TargetUtilization: return "target_utilization";
    case ElasticityPolicy::ChanceSlo: return "chance_slo";
  }
  return "unknown";
}

void ElasticityConfig::validate() const {
  if (!enabled) return;
  if (period <= 0.0) {
    throw std::invalid_argument("ElasticityConfig: period must be positive");
  }
  if (bootLatency < 0.0) {
    throw std::invalid_argument(
        "ElasticityConfig: boot latency must be >= 0");
  }
  if (step < 1) {
    throw std::invalid_argument("ElasticityConfig: step must be >= 1");
  }
  if (scaleDownQueue < 0.0 || scaleUpQueue <= scaleDownQueue) {
    throw std::invalid_argument(
        "ElasticityConfig: need 0 <= scale_down_queue < scale_up_queue "
        "(the hysteresis band)");
  }
  if (!(setpoint > 0.0 && setpoint < 1.0)) {
    throw std::invalid_argument(
        "ElasticityConfig: setpoint must be in (0, 1)");
  }
  if (!(ewmaAlpha > 0.0 && ewmaAlpha <= 1.0)) {
    throw std::invalid_argument(
        "ElasticityConfig: ewma_alpha must be in (0, 1]");
  }
  if (deadband < 0.0 || setpoint - deadband <= 0.0 ||
      setpoint + deadband >= 1.0) {
    throw std::invalid_argument(
        "ElasticityConfig: deadband must keep setpoint +/- deadband inside "
        "(0, 1)");
  }
  if (chanceThreshold < 0.0 || chanceThreshold > 1.0) {
    throw std::invalid_argument(
        "ElasticityConfig: chance_threshold must be in [0, 1]");
  }
  for (const ElasticGroup& g : pool) {
    if (g.machineType < 0) {
      throw std::invalid_argument(
          "ElasticityConfig: pool machine_type must be >= 0");
    }
    if (g.minMachines < 1) {
      throw std::invalid_argument("ElasticityConfig: pool min must be >= 1");
    }
    if (g.maxMachines < g.minMachines) {
      throw std::invalid_argument(
          "ElasticityConfig: pool max must be >= min");
    }
    for (const ElasticGroup& other : pool) {
      if (&other != &g && other.machineType == g.machineType) {
        throw std::invalid_argument(
            "ElasticityConfig: duplicate pool entry for machine type " +
            std::to_string(g.machineType));
      }
    }
  }
}

CapacityController::CapacityController(const ElasticityConfig& config,
                                       std::uint64_t seed,
                                       const ExecutionModel& model,
                                       std::size_t numMachines,
                                       std::size_t queueCapacity,
                                       bool pctCacheEnabled)
    : config_(config),
      rng_(seed),
      model_(&model),
      numMachines_(numMachines),
      queueCapacity_(queueCapacity),
      pctCacheEnabled_(pctCacheEnabled) {
  config.validate();
}

CapacityController::~CapacityController() = default;
CapacityController::CapacityController(CapacityController&&) noexcept = default;

void CapacityController::beginTrial(EventQueue& events,
                                    std::vector<Machine>& machines,
                                    const TaskPool& pool) {
  if (machines.size() != numMachines_) {
    throw std::invalid_argument(
        "CapacityController: machine count changed since construction");
  }
  slots_.assign(numMachines_, Slot::Fixed);
  bootSeq_.assign(numMachines_, kNoEvent);
  for (std::size_t j = 0; j < numMachines_; ++j) {
    const int type = model_->machineTypeOf(static_cast<MachineId>(j));
    const bool pooled =
        std::any_of(config_.pool.begin(), config_.pool.end(),
                    [&](const ElasticGroup& g) { return g.machineType == type; });
    if (!pooled) continue;
    slots_[j] = j < config_.baseMachines ? Slot::Active : Slot::Parked;
  }
  for (const ElasticGroup& g : config_.pool) {
    int active = 0, total = 0;
    for (std::size_t j = 0; j < numMachines_; ++j) {
      if (!inGroup(g, static_cast<MachineId>(j))) continue;
      if (slots_[j] == Slot::Active) ++active;
      if (slots_[j] != Slot::Fixed) ++total;
    }
    if (active < g.minMachines || active > g.maxMachines ||
        total > g.maxMachines) {
      throw std::invalid_argument(
          "CapacityController: machine type " +
          std::to_string(g.machineType) + " starts with " +
          std::to_string(active) + " active of " + std::to_string(total) +
          " slots, outside [min=" + std::to_string(g.minMachines) +
          ", max=" + std::to_string(g.maxMachines) + "]");
    }
  }
  // Surplus capacity starts parked: taken down at t = 0 like the fault
  // layer's initially-offline machines (nothing ran yet, nothing to abort,
  // no trace) — and before the injector arms, so no failure process is
  // attached to a slot that is not in service.
  std::vector<TaskId> orphans;
  for (std::size_t j = 0; j < numMachines_; ++j) {
    if (slots_[j] == Slot::Parked && machines[j].online()) {
      machines[j].goOffline(0, pool, *model_, orphans);
    }
  }
  if (config_.policy == ElasticityPolicy::ChanceSlo) {
    if (pctCacheEnabled_) {
      pctCache_ = std::make_unique<heuristics::PctCache>();
    }
    ctx_ = std::make_unique<heuristics::MappingContext>(
        Time{0}, pool, machines, *model_, queueCapacity_, pctCache_.get());
    ctx_->enablePersistence();
  }
  pushTick(events, 0);
}

void CapacityController::pushTick(EventQueue& events, Time now) {
  events.push(now + config_.period, EventKind::ControllerTick, kInvalidTask,
              kInvalidMachine);
}

int CapacityController::activeCount(const ElasticGroup& g,
                                    const std::vector<Machine>& machines)
    const {
  int count = 0;
  for (std::size_t j = 0; j < numMachines_; ++j) {
    if (slots_[j] == Slot::Active && inGroup(g, static_cast<MachineId>(j)) &&
        !machines[j].draining()) {
      ++count;
    }
  }
  return count;
}

int CapacityController::bootingCount(const ElasticGroup& g) const {
  int count = 0;
  for (std::size_t j = 0; j < numMachines_; ++j) {
    if (slots_[j] == Slot::Booting && inGroup(g, static_cast<MachineId>(j))) {
      ++count;
    }
  }
  return count;
}

int CapacityController::decideTargetUtilization(
    const std::vector<Machine>& machines, Time now) {
  double busy = 0.0, online = 0.0;
  for (const Machine& m : machines) {
    busy += m.busyTime() +
            (m.busy() ? now - m.runningSince() : Time{0});
    online += m.onlineSeconds(now);
  }
  const double busyDelta = busy - lastBusy_;
  const double onlineDelta = online - lastOnline_;
  lastBusy_ = busy;
  lastOnline_ = online;
  if (onlineDelta <= 0.0) return 0;
  const double inst = busyDelta / onlineDelta;
  ewma_ = ewma_ < 0.0 ? inst
                      : config_.ewmaAlpha * inst +
                            (1.0 - config_.ewmaAlpha) * ewma_;
  if (ewma_ > config_.setpoint + config_.deadband) return +1;
  if (ewma_ < config_.setpoint - config_.deadband) return -1;
  return 0;
}

int CapacityController::decideChanceSlo(const std::vector<Machine>& machines,
                                        const TaskPool& pool,
                                        const LoadSignal& signal, Time now) {
  (void)pool;
  if (signal.headTask == kInvalidTask) {
    // Nothing waiting: release capacity while some accepting machine sits
    // idle (the cluster is visibly overprovisioned for the moment).
    for (std::size_t j = 0; j < numMachines_; ++j) {
      if (slots_[j] == Slot::Active && machines[j].acceptsWork() &&
          machines[j].empty()) {
        return -1;
      }
    }
    return 0;
  }
  ctx_->rebind(now);
  double best = -1.0;
  for (std::size_t j = 0; j < numMachines_; ++j) {
    const auto id = static_cast<MachineId>(j);
    if (!machines[j].acceptsWork() || ctx_->freeSlots(id) == 0) continue;
    best = std::max(best, ctx_->successChance(signal.headTask, id));
  }
  // No machine can take the head task at all, or its best Eq. 2 chance
  // misses the SLO: add capacity.
  return best < config_.chanceThreshold ? +1 : 0;
}

int CapacityController::decide(const std::vector<Machine>& machines,
                               const TaskPool& pool, const LoadSignal& signal,
                               Time now) {
  switch (config_.policy) {
    case ElasticityPolicy::QueueBound: {
      // Provisioned capacity counts fixed + active-not-draining + booting:
      // in-flight boots must count, or every tick during the provisioning
      // delay re-triggers scale-up (a boot storm).
      double provisioned = 0.0;
      for (std::size_t j = 0; j < numMachines_; ++j) {
        if (slots_[j] == Slot::Booting) {
          provisioned += 1.0;
        } else if (slots_[j] != Slot::Parked && !machines[j].draining()) {
          provisioned += 1.0;
        }
      }
      const auto load = static_cast<double>(signal.tasksInSystem);
      if (load > config_.scaleUpQueue * provisioned) return +1;
      if (load < config_.scaleDownQueue * provisioned) return -1;
      return 0;
    }
    case ElasticityPolicy::TargetUtilization:
      return decideTargetUtilization(machines, now);
    case ElasticityPolicy::ChanceSlo:
      return decideChanceSlo(machines, pool, signal, now);
  }
  return 0;
}

void CapacityController::scaleUpGroup(const ElasticGroup& g,
                                      EventQueue& events,
                                      std::vector<Machine>& machines,
                                      Metrics& metrics, Time now,
                                      CapacityDelta& delta) {
  for (int k = 0; k < config_.step; ++k) {
    if (activeCount(g, machines) + bootingCount(g) >= g.maxMachines) return;
    // Cheapest capacity first: reclaim a draining machine (its queue and
    // Eq. 1 chain are intact), then boot a parked slot through the
    // provisioning delay.
    MachineId target = kInvalidMachine;
    for (std::size_t j = 0; j < numMachines_; ++j) {
      const auto id = static_cast<MachineId>(j);
      if (slots_[j] == Slot::Active && inGroup(g, id) &&
          machines[j].draining()) {
        target = id;
        break;
      }
    }
    if (target != kInvalidMachine) {
      machines[static_cast<std::size_t>(target)].cancelDrain(now);
      metrics.recordScaleUp();
      delta.reclaimed.push_back(target);
      continue;
    }
    for (std::size_t j = 0; j < numMachines_; ++j) {
      const auto id = static_cast<MachineId>(j);
      if (slots_[j] == Slot::Parked && inGroup(g, id)) {
        target = id;
        break;
      }
    }
    if (target == kInvalidMachine) return;
    const auto idx = static_cast<std::size_t>(target);
    slots_[idx] = Slot::Booting;
    bootSeq_[idx] = events.nextSeq();
    events.push(now + config_.bootLatency, EventKind::CapacityOnline,
                kInvalidTask, target);
    metrics.recordScaleUp();
    delta.booting.push_back(target);
  }
}

void CapacityController::scaleDownGroup(const ElasticGroup& g,
                                        EventQueue& events,
                                        std::vector<Machine>& machines,
                                        const TaskPool& pool,
                                        Metrics& metrics, Time now,
                                        FaultInjector* injector,
                                        CapacityDelta& delta) {
  for (int k = 0; k < config_.step; ++k) {
    // Cheapest release first: withdraw an in-flight boot (it never came
    // online, nothing to drain).
    MachineId target = kInvalidMachine;
    for (std::size_t j = numMachines_; j-- > 0;) {
      const auto id = static_cast<MachineId>(j);
      if (slots_[j] == Slot::Booting && inGroup(g, id)) {
        target = id;
        break;
      }
    }
    if (target != kInvalidMachine &&
        activeCount(g, machines) + bootingCount(g) - 1 >= g.minMachines) {
      const auto idx = static_cast<std::size_t>(target);
      events.cancel(bootSeq_[idx]);
      bootSeq_[idx] = kNoEvent;
      slots_[idx] = Slot::Parked;
      metrics.recordScaleDown();
      delta.bootsCancelled.push_back(target);
      continue;
    }
    // Drain the highest-index active machine; the lower bound counts only
    // active-not-draining machines, so `min` accepting machines survive
    // every instant of a fault-free trial.
    target = kInvalidMachine;
    for (std::size_t j = numMachines_; j-- > 0;) {
      const auto id = static_cast<MachineId>(j);
      if (slots_[j] == Slot::Active && inGroup(g, id) &&
          machines[j].online() && !machines[j].draining()) {
        target = id;
        break;
      }
    }
    if (target == kInvalidMachine ||
        activeCount(g, machines) - 1 < g.minMachines) {
      return;
    }
    const auto idx = static_cast<std::size_t>(target);
    machines[idx].beginDrain(now);
    metrics.recordScaleDown();
    delta.drained.push_back(target);
    if (machines[idx].empty()) {
      // Nothing to finish: the drain completes on the spot.
      std::vector<TaskId> orphans;
      machines[idx].goOffline(now, pool, *model_, orphans);
      machines[idx].cancelDrain(now);
      slots_[idx] = Slot::Parked;
      if (injector != nullptr) injector->onMachineRetired(events, target);
      delta.retired.push_back(target);
    }
  }
}

CapacityDelta CapacityController::onTick(EventQueue& events,
                                         std::vector<Machine>& machines,
                                         const TaskPool& pool,
                                         const LoadSignal& signal,
                                         Metrics& metrics, Time now,
                                         FaultInjector* injector) {
  CapacityDelta delta;
  const int direction = decide(machines, pool, signal, now);
  if (direction > 0) {
    for (const ElasticGroup& g : config_.pool) {
      scaleUpGroup(g, events, machines, metrics, now, delta);
    }
  } else if (direction < 0) {
    for (const ElasticGroup& g : config_.pool) {
      scaleDownGroup(g, events, machines, pool, metrics, now, injector,
                     delta);
    }
  }
  pushTick(events, now);
  return delta;
}

bool CapacityController::onCapacityOnline(EventQueue& events,
                                          const Event& event,
                                          std::vector<Machine>& machines,
                                          const TaskPool& pool, Time now,
                                          FaultInjector* injector) {
  const auto idx = static_cast<std::size_t>(event.machine);
  if (idx >= numMachines_ || slots_[idx] != Slot::Booting ||
      bootSeq_[idx] != event.seq) {
    return false;  // stale (the boot was withdrawn); cancel() makes this rare
  }
  bootSeq_[idx] = kNoEvent;
  slots_[idx] = Slot::Active;
  Machine& m = machines[idx];
  // A scripted recover aimed at this id may have raced the boot and revived
  // the machine already; comeOnline would throw, and there is nothing left
  // to do but adopt it.
  if (!m.online()) m.comeOnline(now, pool, *model_);
  if (injector != nullptr) {
    injector->onMachineBooted(events, event.machine, now);
  }
  return m.acceptsWork();
}

bool CapacityController::maybeRetire(EventQueue& events,
                                     std::vector<Machine>& machines,
                                     const TaskPool& pool, MachineId machine,
                                     Time now, FaultInjector* injector) {
  const auto idx = static_cast<std::size_t>(machine);
  if (idx >= numMachines_ || slots_[idx] != Slot::Active) return false;
  Machine& m = machines[idx];
  if (!m.draining() || !m.online() || !m.empty()) return false;
  std::vector<TaskId> orphans;
  m.goOffline(now, pool, *model_, orphans);
  m.cancelDrain(now);
  slots_[idx] = Slot::Parked;
  if (injector != nullptr) injector->onMachineRetired(events, machine);
  return true;
}

}  // namespace hcs::sim
