#pragma once
// Fundamental identifiers and the execution-model interface shared by the
// simulator, the heuristics, and the pruning mechanism.

#include <cstdint>

namespace hcs::prob {
class DiscretePmf;
}

namespace hcs::sim {

/// Simulation time, in abstract "time units" (the paper's axis in Fig. 6).
using Time = double;

/// Index into the trial's TaskPool.
using TaskId = std::int64_t;
inline constexpr TaskId kInvalidTask = -1;

/// Index of a machine within the cluster.
using MachineId = int;
inline constexpr MachineId kInvalidMachine = -1;

/// Index of a task type (0..numTaskTypes-1).
using TaskType = int;

/// Where the stochastic execution times come from.
///
/// The simulator and the heuristics only ever see this interface; the
/// workload layer binds it to a PET matrix plus a machine→machine-type map,
/// which is also how homogeneous systems are modelled (all machines bound to
/// the same row of the matrix).
class ExecutionModel {
 public:
  virtual ~ExecutionModel() = default;

  virtual int numMachines() const = 0;
  virtual int numTaskTypes() const = 0;

  /// Probabilistic Execution Time of `type` on machine `machine` (PET).
  virtual const prob::DiscretePmf& pet(TaskType type, MachineId machine)
      const = 0;

  /// Cached mean of pet(type, machine); heuristics call this in tight loops.
  virtual double expectedExec(TaskType type, MachineId machine) const = 0;

  /// Machine-type index of `machine` (0..numMachineTypes-1): the grouping
  /// key for per-type capacity bounds and machine-seconds cost accounting
  /// in the elasticity layer.  Models without a machine-type notion report
  /// a single type 0.
  virtual int machineTypeOf(MachineId) const { return 0; }
};

}  // namespace hcs::sim
