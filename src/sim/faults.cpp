#include "sim/faults.h"

#include <stdexcept>
#include <string>

namespace hcs::sim {

void FaultConfig::validate() const {
  if (!enabled) return;
  if (mtbf > 0.0 && mttr <= 0.0) {
    throw std::invalid_argument(
        "FaultConfig: mttr must be positive when mtbf is");
  }
  if (maxAttempts < 1) {
    throw std::invalid_argument("FaultConfig: max_attempts must be >= 1");
  }
  if (backoffBase <= 0.0) {
    throw std::invalid_argument("FaultConfig: backoff base must be positive");
  }
  if (backoffFactor < 1.0) {
    throw std::invalid_argument("FaultConfig: backoff factor must be >= 1");
  }
  if (backoffJitter < 0.0) {
    throw std::invalid_argument(
        "FaultConfig: backoff jitter must be >= 0");
  }
  for (const ScriptedFault& e : events) {
    if (e.time < 0 || e.machine < 0) {
      throw std::invalid_argument(
          "FaultConfig: scripted events need time >= 0 and machine >= 0");
    }
  }
  for (const int m : initiallyOffline) {
    if (m < 0) {
      throw std::invalid_argument(
          "FaultConfig: initially_offline machine must be >= 0");
    }
  }
}

FaultInjector::FaultInjector(const FaultConfig& config, std::uint64_t seed,
                             std::size_t numMachines)
    : config_(config), rng_(seed), numMachines_(numMachines) {
  config.validate();
  for (const ScriptedFault& e : config.events) {
    if (static_cast<std::size_t>(e.machine) >= numMachines) {
      throw std::invalid_argument(
          "FaultInjector: scripted event machine " +
          std::to_string(e.machine) + " out of range (cluster has " +
          std::to_string(numMachines) + ")");
    }
  }
  for (const int m : config.initiallyOffline) {
    if (static_cast<std::size_t>(m) >= numMachines) {
      throw std::invalid_argument(
          "FaultInjector: initially_offline machine " + std::to_string(m) +
          " out of range (cluster has " + std::to_string(numMachines) + ")");
    }
  }
}

void FaultInjector::armFailure(EventQueue& events, MachineId m, Time now) {
  outstanding_[static_cast<std::size_t>(m)] = events.nextSeq();
  events.push(now + drawUptime(), EventKind::MachineFailure, kInvalidTask, m);
}

void FaultInjector::armRecovery(EventQueue& events, MachineId m, Time now) {
  outstanding_[static_cast<std::size_t>(m)] = events.nextSeq();
  events.push(now + drawRepair(), EventKind::MachineRecovery, kInvalidTask,
              m);
}

void FaultInjector::beginTrial(EventQueue& events,
                               std::vector<Machine>& machines,
                               const TaskPool& pool,
                               const ExecutionModel& model) {
  outstanding_.assign(numMachines_, kNoEvent);
  // Dead-from-the-start capacity: taken down directly (nothing ran yet, so
  // there is nothing to abort and no trace to emit), stochastic process
  // not armed — only a scripted recover revives them.
  std::vector<TaskId> orphans;
  for (const int m : config_.initiallyOffline) {
    Machine& machine = machines[static_cast<std::size_t>(m)];
    if (machine.online()) machine.goOffline(0, pool, model, orphans);
  }
  for (const ScriptedFault& e : config_.events) {
    events.push(e.time,
                e.fail ? EventKind::MachineFailure : EventKind::MachineRecovery,
                kInvalidTask, e.machine);
  }
  if (config_.mtbf <= 0.0) return;
  for (std::size_t j = 0; j < numMachines_; ++j) {
    if (machines[j].online()) {
      armFailure(events, static_cast<MachineId>(j), 0);
    }
  }
}

void FaultInjector::onMachineRetired(EventQueue& events, MachineId m) {
  const auto idx = static_cast<std::size_t>(m);
  if (outstanding_[idx] != kNoEvent) {
    events.cancel(outstanding_[idx]);
    outstanding_[idx] = kNoEvent;
  }
}

void FaultInjector::onMachineBooted(EventQueue& events, MachineId m,
                                    Time now) {
  if (config_.mtbf > 0.0) armFailure(events, m, now);
}

FaultInjector::Action FaultInjector::onEvent(EventQueue& events,
                                             const Event& event,
                                             bool machineOnline) {
  const auto idx = static_cast<std::size_t>(event.machine);
  const bool stochastic = outstanding_[idx] == event.seq;
  if (stochastic) outstanding_[idx] = kNoEvent;
  if (event.kind == EventKind::MachineFailure) {
    // A scripted fail on an already-dead machine is a no-op (the machine is
    // in the target state); a stochastic fail is never stale — it would
    // have been cancelled by whichever transition took the machine down.
    if (!machineOnline) return Action::None;
    if (stochastic) {
      armRecovery(events, event.machine, event.time);
    } else {
      // Scripted fail pins the machine down: the pending stochastic
      // failure dies with it, and no repair is armed.
      if (outstanding_[idx] != kNoEvent) {
        events.cancel(outstanding_[idx]);
        outstanding_[idx] = kNoEvent;
      }
    }
    return Action::Fail;
  }
  if (event.kind != EventKind::MachineRecovery) {
    throw std::logic_error("FaultInjector::onEvent: not a fault event");
  }
  if (machineOnline) return Action::None;  // scripted join on an up machine
  if (!stochastic) {
    // Scripted recover: absorb any pending stochastic repair and re-arm
    // the up-time process from this instant.
    if (outstanding_[idx] != kNoEvent) {
      events.cancel(outstanding_[idx]);
      outstanding_[idx] = kNoEvent;
    }
  }
  if (config_.mtbf > 0.0) armFailure(events, event.machine, event.time);
  return Action::Recover;
}

}  // namespace hcs::sim
