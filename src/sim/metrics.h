#pragma once
// Per-trial outcome accounting.

#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

#include "sim/task.h"
#include "sim/types.h"

namespace hcs::sim {

/// Per-task-type terminal counters; the Fairness module reads these and the
/// experiment framework aggregates them across trials.
struct TypeOutcomes {
  std::size_t completedOnTime = 0;
  std::size_t completedLate = 0;
  std::size_t droppedReactive = 0;
  std::size_t droppedProactive = 0;
  std::size_t abandoned = 0;  ///< retry policy gave up after failures
  std::size_t rejected = 0;   ///< refused at the federation gateway

  std::size_t total() const {
    return completedOnTime + completedLate + droppedReactive +
           droppedProactive + abandoned + rejected;
  }
};

/// Trial-level metrics.  Robustness — the paper's headline number — is the
/// percentage of *counted* tasks that completed on time.  Following §V-B,
/// the first and last `warmupTasks` arrivals of a trial can be excluded so
/// the measurement covers only the oversubscribed steady state.
class Metrics {
 public:
  explicit Metrics(int numTaskTypes);

  /// Empty placeholder (no task types, all counters zero): lets result
  /// containers be sized before trials fill the slots.
  Metrics() = default;

  /// Records a terminal state transition for `task`.
  void recordTerminal(const Task& task);

  /// Records one deferral decision (a task pushed back to the batch queue).
  void recordDeferral() { ++deferrals_; }

  /// Records one machine failure event (the churn intensity of a trial).
  void recordMachineFailure() { ++machineFailures_; }

  /// Records one retry: a failed/orphaned task re-entering the arrival
  /// stream under the backoff policy.
  void recordRetry() { ++retries_; }

  /// Records one spillover: the gateway redirecting a task a degraded
  /// cluster refused to a sibling.
  void recordSpillover() { ++spillovers_; }

  /// Records machine time spent executing a task.  `useful` when the task
  /// completed on time; otherwise the time was wasted on a failing task —
  /// the quantity the paper's §VII energy argument is about.
  void recordExecution(MachineId machine, Time duration, bool useful);

  /// Records one capacity-controller scale action (for the scale-event
  /// report columns).
  void recordScaleUp() { ++scaleUps_; }
  void recordScaleDown() { ++scaleDowns_; }

  /// Folds one machine's end-of-trial cost clocks into the per-machine-type
  /// machine-seconds accounting: `online` is the total time the machine was
  /// part of the cluster (what capacity costs), `draining` the portion of
  /// that spent winding down, `busy` the portion spent executing.  Called
  /// once per machine when the trial ends — also for fixed-capacity trials,
  /// so utilization-vs-online reporting works everywhere.
  void recordMachineSeconds(int machineType, Time online, Time draining,
                            Time busy);

  /// Marks task ids excluded from robustness (warm-up / cool-down trimming).
  void setCounted(std::vector<bool> counted) { counted_ = std::move(counted); }

  /// Streaming replacement for setCounted: warm-up trimming decided online,
  /// without an O(total-tasks) mask.  A terminal task with ordinal `o` is
  /// counted iff `margin <= o < total - margin` — but `total` is unknown
  /// until the stream ends, so terminals sit in a bounded FIFO until the
  /// creation clock proves the cool-down margin can't reach them
  /// (`*createdClock > o + margin`), and endStreamCounting() settles the
  /// rest.  Counted accounting is applied in recordTerminal-call order
  /// either way, so every sum matches the materialized mask bit for bit.
  /// `createdClock` (TaskPool::createdClock()) must outlive the Metrics.
  void enableOnlineCounting(std::size_t margin,
                            const std::uint64_t* createdClock);

  /// Resolves terminals still pending when the stream is exhausted: the
  /// creation clock is now the trial's total.  Call after the event loop,
  /// before reading any counted metric.
  void endStreamCounting();

  /// Terminals awaiting a counted/uncounted verdict (bounded by the warm-up
  /// margin plus the in-flight window; a memory-bound test hook).
  std::size_t pendingTerminalCount() const { return pending_.size(); }

  /// Folds another trial-section's counters into this one — the federation
  /// tier aggregates per-cluster metrics into a trial total with it.  The
  /// per-machine execution splits are concatenated (machine ids are local to
  /// a cluster), everything else is summed.  The counted mask is a recording
  /// concern and is left untouched.
  void merge(const Metrics& other);

  std::size_t completedOnTime() const { return totals_.completedOnTime; }
  std::size_t completedLate() const { return totals_.completedLate; }
  std::size_t droppedReactive() const { return totals_.droppedReactive; }
  std::size_t droppedProactive() const { return totals_.droppedProactive; }
  std::size_t abandoned() const { return totals_.abandoned; }
  std::size_t rejected() const { return totals_.rejected; }
  std::size_t deferrals() const { return deferrals_; }
  std::size_t machineFailures() const { return machineFailures_; }
  std::size_t retries() const { return retries_; }
  std::size_t spillovers() const { return spillovers_; }
  /// Counted tasks that absorbed at least one machine failure and still
  /// completed on time — the payoff of the retry policy.
  std::size_t failedThenMet() const { return failedThenMet_; }
  std::size_t countedTasks() const { return countedTotal_; }
  /// Every recordTerminal call, counted or not — the engine's trial-over
  /// check under churn (totals() excludes warm-up-trimmed tasks, which
  /// still have to terminate before the fault process may stop).
  std::size_t terminalCount() const { return terminalTotal_; }

  /// % of counted tasks that completed on time (the robustness metric).
  double robustnessPercent() const;

  /// Value-weighted robustness: sum of values of on-time counted tasks over
  /// the total counted value (equals robustnessPercent() when every task
  /// has value 1).
  double weightedRobustnessPercent() const;

  const TypeOutcomes& totals() const { return totals_; }
  const std::vector<TypeOutcomes>& perType() const { return perType_; }

  /// Machine time split into useful (on-time completions) vs wasted (late
  /// or aborted executions).
  struct ExecutionSplit {
    Time useful = 0;
    Time wasted = 0;

    Time total() const { return useful + wasted; }
  };

  const std::vector<ExecutionSplit>& perMachineExecution() const {
    return perMachine_;
  }
  Time usefulBusyTime() const;
  Time wastedBusyTime() const;

  /// Machine-seconds cost accounting, per machine type and in total.
  struct MachineSeconds {
    Time online = 0;    ///< time as cluster capacity (the cost metric)
    Time draining = 0;  ///< subset of online spent winding down
    Time busy = 0;      ///< subset of online spent executing
  };

  const std::vector<MachineSeconds>& perTypeMachineSeconds() const {
    return perTypeSeconds_;
  }
  Time onlineMachineSeconds() const;
  Time drainingMachineSeconds() const;
  Time busyMachineSeconds() const;
  /// % of online machine-seconds spent executing — utilization measured
  /// against time the capacity actually existed, so churn/drain intervals
  /// don't skew it.
  double utilizationPercent() const;

  std::size_t scaleUps() const { return scaleUps_; }
  std::size_t scaleDowns() const { return scaleDowns_; }

 private:
  bool isCounted(TaskId id) const;

  /// One terminal outcome parked until its counted verdict is known.
  struct PendingTerminal {
    std::uint64_t ordinal;
    TaskType type;
    TaskStatus status;
    double value;
    bool hadFailures;
  };

  void applyCounted(const PendingTerminal& p);
  void flushPending(bool streamEnded);

  std::vector<TypeOutcomes> perType_;
  TypeOutcomes totals_;
  std::vector<bool> counted_;  ///< empty = count everything
  std::size_t countedTotal_ = 0;
  std::size_t terminalTotal_ = 0;
  std::size_t deferrals_ = 0;
  std::size_t machineFailures_ = 0;
  std::size_t retries_ = 0;
  std::size_t spillovers_ = 0;
  std::size_t failedThenMet_ = 0;
  std::vector<ExecutionSplit> perMachine_;
  std::vector<MachineSeconds> perTypeSeconds_;
  std::size_t scaleUps_ = 0;
  std::size_t scaleDowns_ = 0;
  double countedValue_ = 0.0;
  double onTimeValue_ = 0.0;
  std::deque<PendingTerminal> pending_;
  const std::uint64_t* createdClock_ = nullptr;
  std::size_t margin_ = 0;
  bool online_ = false;
};

}  // namespace hcs::sim
