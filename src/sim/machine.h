#pragma once
// A machine with a FIFO queue and incremental PCT tracking (Eq. 1).

#include <deque>
#include <optional>
#include <vector>

#include "prob/pmf.h"
#include "sim/task.h"
#include "sim/types.h"

namespace hcs::sim {

/// One machine of the cluster.
///
/// Tasks dispatched to a machine wait in its FIFO queue, then run to
/// completion without preemption (§II).  The machine maintains the PCT of
/// the most recently assigned task — the recursion state of Eq. 1 — so that
/// the PCT of a *new* candidate task is one convolution away.  Completions
/// and drops rebuild the chain from the running task's conditioned
/// remaining-time distribution, which is how queue shortening reduces
/// compound uncertainty (§II).
class Machine {
 public:
  /// `trackTail` keeps the Eq. 1 recursion state updated on every dispatch
  /// (one convolution) so tailPct() is O(1).  Immediate-mode resource
  /// allocation — unbounded queues, no deferring — turns it off and pays
  /// the full chain walk only if a PCT is actually requested.
  Machine(MachineId id, double binWidth, bool trackTail = true);

  MachineId id() const { return id_; }
  double binWidth() const { return binWidth_; }

  bool busy() const { return running_ != kInvalidTask; }
  TaskId runningTask() const { return running_; }
  Time runningSince() const { return runStart_; }

  const std::deque<TaskId>& queue() const { return queue_; }
  std::size_t queueLength() const { return queue_.size(); }
  bool empty() const { return !busy() && queue_.empty(); }

  /// Total time this machine has spent executing tasks (utilization metric).
  Time busyTime() const { return busyTime_; }

  // --- PCT (Eq. 1) ----------------------------------------------------------

  /// Distribution of when the machine becomes free of its *running* task:
  /// a point mass at `now` when idle, otherwise the running task's
  /// remaining-time PET conditioned on its elapsed execution, re-anchored
  /// to absolute time.  The base case of the Eq. 1 recursion.
  prob::DiscretePmf availabilityPct(Time now, const TaskPool& pool,
                                    const ExecutionModel& model) const;

  /// PCT of the last task in the machine's system (running + queued), on the
  /// absolute time grid.  For an empty machine this is a point mass at
  /// `now` — the machine is free immediately.
  prob::DiscretePmf tailPct(Time now, const TaskPool& pool,
                            const ExecutionModel& model) const;

  /// PCTs of every task currently on this machine, in order
  /// [running, queued...]; used when the pruner evaluates the chance of
  /// success of each queued task (Fig. 5, steps 4-5).
  std::vector<prob::DiscretePmf> chainPcts(Time now, const TaskPool& pool,
                                           const ExecutionModel& model) const;

  /// Expected time at which the machine will have drained all current work;
  /// the scalar completion estimate used by MCT-family heuristics.
  Time expectedReady(Time now, const TaskPool& pool,
                     const ExecutionModel& model) const;

  // --- Mutations (called by the scheduler / engine) --------------------------

  /// Dispatches a task to this machine: it starts running if the machine is
  /// completely empty, otherwise joins the back of the queue (FIFO order is
  /// preserved even while the machine is transiently idle between a
  /// completion and the end of the mapping event).  Returns true if the
  /// task started running immediately.
  bool dispatch(TaskId task, Time now, TaskPool& pool,
                const ExecutionModel& model);

  /// Finishes the running task at `now` WITHOUT promoting a successor — the
  /// scheduler runs the reactive/proactive pruning passes over the queue
  /// first ("the system drops any task that has missed its deadline"
  /// before any mapping decision, §II) and then calls startNextIfIdle().
  void finishRunning(Time now, TaskPool& pool, const ExecutionModel& model);

  /// Starts the queue's head task if the machine is idle.  Returns the
  /// started task or kInvalidTask.
  TaskId startNextIfIdle(Time now, TaskPool& pool, const ExecutionModel& model);

  /// finishRunning + startNextIfIdle in one step; convenience for direct
  /// machine-level use (and tests).  Returns the promoted task.
  TaskId completeRunning(Time now, TaskPool& pool, const ExecutionModel& model);

  /// Removes a *queued* (not running) task, e.g. a pruner drop.
  /// Throws std::logic_error if the task is not in this queue.
  void removeQueued(TaskId task, Time now, TaskPool& pool,
                    const ExecutionModel& model);

  /// Aborts the running task (optional abort-at-deadline policy) without
  /// promoting a successor.
  void abortRunning(Time now, TaskPool& pool, const ExecutionModel& model);

 private:
  std::int64_t binAt(Time t) const;
  void rebuildTail(Time now, const TaskPool& pool, const ExecutionModel& model);
  void startTask(TaskId task, Time now, TaskPool& pool);

  MachineId id_;
  double binWidth_;
  bool trackTail_;
  TaskId running_ = kInvalidTask;
  Time runStart_ = 0;
  std::deque<TaskId> queue_;
  /// Eq. 1 recursion state; empty when the machine has no work.
  std::optional<prob::DiscretePmf> tail_;
  Time busyTime_ = 0;
};

}  // namespace hcs::sim
