#pragma once
// A machine with a FIFO queue and incremental PCT tracking (Eq. 1).

#include <cstdint>
#include <deque>
#include <optional>
#include <utility>
#include <vector>

#include "prob/pmf.h"
#include "sim/task.h"
#include "sim/types.h"

namespace hcs::sim {

/// One machine of the cluster.
///
/// Tasks dispatched to a machine wait in its FIFO queue, then run to
/// completion without preemption (§II).  The machine maintains the PCT of
/// the most recently assigned task — the recursion state of Eq. 1 — so that
/// the PCT of a *new* candidate task is one convolution away.  Completions
/// and drops rebuild the chain from the running task's conditioned
/// remaining-time distribution, which is how queue shortening reduces
/// compound uncertainty (§II).
class Machine {
 public:
  /// `trackTail` keeps the Eq. 1 recursion state updated on every dispatch
  /// (one convolution) so tailPct() is O(1).  Immediate-mode resource
  /// allocation — unbounded queues, no deferring — turns it off and pays
  /// the full chain walk only if a PCT is actually requested.
  ///
  /// `lazyTailRebuild` defers the chain re-derivation after completions /
  /// removals to the next tailPct() read (bit-identical results, fewer
  /// rebuilds).  Off = eager rebuild on every mutation, the reference
  /// behavior the incremental path is validated against.
  Machine(MachineId id, double binWidth, bool trackTail = true,
          bool lazyTailRebuild = true);

  MachineId id() const { return id_; }
  double binWidth() const { return binWidth_; }

  /// Monotone counter bumped on every state mutation (dispatch, completion,
  /// queue removal, abort).  Downstream consumers — notably the PCT cache —
  /// key derived data on it to detect staleness: equal epochs guarantee the
  /// machine's (running, queue) configuration is unchanged.
  std::uint64_t queueEpoch() const { return epoch_; }

  /// True when the Eq. 1 recursion state is live, i.e. tailPct() is
  /// independent of `now` (trackTail on and the machine has work).
  bool tailTracked() const { return trackTail_ && !empty(); }

  /// Whether this machine maintains the Eq. 1 recursion state at all.
  bool tracksTail() const { return trackTail_; }

  bool busy() const { return running_ != kInvalidTask; }
  TaskId runningTask() const { return running_; }
  Time runningSince() const { return runStart_; }

  /// False while the machine is failed / has left the cluster (fault
  /// injection): it offers no capacity and refuses dispatches.  Both edges
  /// bump the queue epoch, so every epoch-keyed memo downstream (PCT cache,
  /// ready memos, phase-1 tables) invalidates exactly the churned machine.
  bool online() const { return online_; }

  /// True while the capacity controller is gracefully retiring this machine:
  /// it stays online and finishes its running/queued work, but accepts no
  /// new dispatches.  Unlike failure's abort-and-orphan path, drain is
  /// invisible to the tasks already placed here.  The flag survives a
  /// failure/recovery cycle (a draining machine that crashes recovers still
  /// draining); it is cleared by cancelDrain() — either a scale-up reusing
  /// the slot, or the controller retiring the emptied machine.
  bool draining() const { return draining_; }

  /// Whether mapping may place new work here: online and not draining.
  /// This is the single candidate gate for heuristics, routing, and
  /// admission; queue *promotion* (startIdleMachines / startNextIfIdle)
  /// deliberately keeps using online() so draining machines still finish
  /// their queues.
  bool acceptsWork() const { return online_ && !draining_; }

  /// Time this machine has spent online / draining up to `now` (machine-
  /// seconds cost accounting for the elasticity layer).  Draining time is a
  /// subset of online time; both clocks pause while the machine is offline.
  Time onlineSeconds(Time now) const {
    return accumOnline_ + (online_ ? now - onlineSince_ : 0);
  }
  Time drainingSeconds(Time now) const {
    return accumDraining_ + (online_ && draining_ ? now - drainingSince_ : 0);
  }

  const std::deque<TaskId>& queue() const { return queue_; }
  /// Task types of queue(), same order — a dense mirror so the hot queue
  /// walks (expected-ready sums, Eq. 1 chain rebuilds) read one contiguous
  /// array instead of gathering pool[id].type per task.
  const std::vector<TaskType>& queueTypes() const { return queueTypes_; }
  std::size_t queueLength() const { return queue_.size(); }
  bool empty() const { return !busy() && queue_.empty(); }

  /// Total time this machine has spent executing tasks (utilization metric).
  Time busyTime() const { return busyTime_; }

  // --- PCT (Eq. 1) ----------------------------------------------------------

  /// Distribution of when the machine becomes free of its *running* task:
  /// a point mass at `now` when idle, otherwise the running task's
  /// remaining-time PET conditioned on its elapsed execution, re-anchored
  /// to absolute time.  The base case of the Eq. 1 recursion.
  prob::DiscretePmf availabilityPct(Time now, const TaskPool& pool,
                                    const ExecutionModel& model) const;

  /// Exactly {availabilityPct(...).firstBin(), …lastBin()} without
  /// materializing the PMF: seeds interval bounds on completion times so
  /// chance-of-success comparisons can often skip the convolutions.
  std::pair<std::int64_t, std::int64_t> availabilityBounds(
      Time now, const TaskPool& pool, const ExecutionModel& model) const;

  /// PCT of the last task in the machine's system (running + queued), on the
  /// absolute time grid.  For an empty machine this is a point mass at
  /// `now` — the machine is free immediately.
  prob::DiscretePmf tailPct(Time now, const TaskPool& pool,
                            const ExecutionModel& model) const;

  /// The memoized Eq. 1 recursion state by reference, rebuilding it first if
  /// a lazy invalidation is pending.  Requires tailTracked(); throws
  /// std::logic_error otherwise.  The reference is valid until the next
  /// mutation — read-only consumers (the PCT cache's append convolutions)
  /// use it to skip tailPct()'s defensive copy.
  const prob::DiscretePmf& tailPctRef(Time now, const TaskPool& pool,
                                      const ExecutionModel& model) const;

  /// Support bounds of tailPct(now): {lo, hi} with lo exactly
  /// tailPct(now).firstBin() and hi >= tailPct(now).lastBin() (equal except
  /// when convolution capping folded tail mass inward, where the interval
  /// stays safely conservative).  Computed WITHOUT materializing a dirty
  /// tail: additive interval arithmetic over the chain's factors — the O(q)
  /// scalar query that lets chance-of-success comparisons skip the Eq. 1
  /// convolution when the whole support sits on one side of the deadline.
  std::pair<std::int64_t, std::int64_t> tailBounds(
      Time now, const TaskPool& pool, const ExecutionModel& model) const;

  /// PCTs of every task currently on this machine, in order
  /// [running, queued...]; used when the pruner evaluates the chance of
  /// success of each queued task (Fig. 5, steps 4-5).
  std::vector<prob::DiscretePmf> chainPcts(Time now, const TaskPool& pool,
                                           const ExecutionModel& model) const;

  /// Expected time at which the machine will have drained all current work;
  /// the scalar completion estimate used by MCT-family heuristics.
  Time expectedReady(Time now, const TaskPool& pool,
                     const ExecutionModel& model) const;

  // --- Mutations (called by the scheduler / engine) --------------------------

  /// Dispatches a task to this machine: it starts running if the machine is
  /// completely empty, otherwise joins the back of the queue (FIFO order is
  /// preserved even while the machine is transiently idle between a
  /// completion and the end of the mapping event).  Returns true if the
  /// task started running immediately.
  ///
  /// `newTail`, when given, must equal tailPct(now) ⊛ PET(task) — callers
  /// that already computed the appended PCT (e.g. through the PCT cache for
  /// the deferring check) hand it over instead of paying the Eq. 1
  /// convolution a second time.  Ignored when tail tracking is off.
  ///
  /// Without `newTail`, a lazy-rebuild machine with a live clean tail does
  /// not convolve at dispatch time either: the task's PET joins a pending-
  /// append list that the next tail read folds in (identical convolutions
  /// in identical order — bit-identical results).  Configurations where
  /// nothing reads the tail (no deferring, no chance-aware heuristic)
  /// therefore never pay the Eq. 1 append at all.
  bool dispatch(TaskId task, Time now, TaskPool& pool,
                const ExecutionModel& model,
                const prob::DiscretePmf* newTail = nullptr);

  /// Finishes the running task at `now` WITHOUT promoting a successor — the
  /// scheduler runs the reactive/proactive pruning passes over the queue
  /// first ("the system drops any task that has missed its deadline"
  /// before any mapping decision, §II) and then calls startNextIfIdle().
  void finishRunning(Time now, TaskPool& pool, const ExecutionModel& model);

  /// Starts the queue's head task if the machine is idle.  Returns the
  /// started task or kInvalidTask.
  TaskId startNextIfIdle(Time now, TaskPool& pool, const ExecutionModel& model);

  /// finishRunning + startNextIfIdle in one step; convenience for direct
  /// machine-level use (and tests).  Returns the promoted task.
  TaskId completeRunning(Time now, TaskPool& pool, const ExecutionModel& model);

  /// Removes a *queued* (not running) task, e.g. a pruner drop.
  /// Throws std::logic_error if the task is not in this queue.
  void removeQueued(TaskId task, Time now, TaskPool& pool,
                    const ExecutionModel& model);

  /// Aborts the running task (optional abort-at-deadline policy) without
  /// promoting a successor.
  void abortRunning(Time now, TaskPool& pool, const ExecutionModel& model);

  /// Takes the machine offline (a failure or scripted leave).  The caller
  /// must abort the running task first — it owns the completion event and
  /// the wasted-work accounting.  The queued tasks are orphaned into
  /// `orphans` in FIFO order; the queue empties under ONE tail
  /// invalidation, not one per task.  Throws std::logic_error if busy or
  /// already offline.
  void goOffline(Time now, const TaskPool& pool, const ExecutionModel& model,
                 std::vector<TaskId>& orphans);

  /// Brings a failed machine back online.  The machine is empty, so the
  /// Eq. 1 state rebuilds lazily to the trivial chain on the next tail
  /// read.  Throws std::logic_error if already online.
  void comeOnline(Time now, const TaskPool& pool, const ExecutionModel& model);

  /// Marks the machine draining (graceful scale-down).  Queue content is
  /// untouched and no epoch bump happens: both mapping engines re-derive
  /// eligibility from the free-slot gate on every mapping event, so flipping
  /// the flag cannot stale any epoch-keyed memo.  Throws std::logic_error if
  /// offline or already draining.
  void beginDrain(Time now);

  /// Clears the draining flag: a scale-up reclaiming the slot, or the
  /// controller retiring the now-empty machine (after goOffline).  Throws
  /// std::logic_error if not draining.
  void cancelDrain(Time now);

 private:
  std::int64_t binAt(Time t) const;
  /// Folds the pending lazy appends into tail_ (no-op when none).
  void foldPendingAppends(const ExecutionModel& model) const;
  void tailChanged(Time now, const TaskPool& pool, const ExecutionModel& model);
  void rebuildTail(Time now, const TaskPool& pool,
                   const ExecutionModel& model) const;
  void startTask(TaskId task, Time now, TaskPool& pool);

  MachineId id_;
  double binWidth_;
  bool trackTail_;
  bool lazyTailRebuild_;
  TaskId running_ = kInvalidTask;
  Time runStart_ = 0;
  std::deque<TaskId> queue_;
  std::vector<TaskType> queueTypes_;  ///< mirror of queue_ (types)
  /// Eq. 1 recursion state; empty when the machine has no work.  Rebuilt
  /// lazily: mutations mark it dirty (remembering the mutation time) and the
  /// next tailPct() read re-derives the chain at that time — so a burst of
  /// removals/completions between reads pays for one rebuild, not one per
  /// mutation, with bit-identical results.
  mutable std::optional<prob::DiscretePmf> tail_;
  mutable bool tailDirty_ = false;
  Time tailDirtyAt_ = 0;
  /// Task types dispatched since the last tail read, not yet folded into
  /// tail_ (lazy Eq. 1 appends).  Invariant: empty whenever tailDirty_ —
  /// a full rebuild re-derives the whole queue anyway.
  mutable std::vector<TaskType> pendingAppends_;
  std::uint64_t epoch_ = 0;
  Time busyTime_ = 0;
  bool online_ = true;
  bool draining_ = false;
  // Machine-seconds cost clocks (elasticity accounting).  Online time
  // accrues from construction; draining time only between beginDrain and
  // cancelDrain.  Both pause across an offline interval.
  Time accumOnline_ = 0;
  Time onlineSince_ = 0;
  Time accumDraining_ = 0;
  Time drainingSince_ = 0;
};

}  // namespace hcs::sim
