#include "sim/machine.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "prob/arena.h"
#include "prob/kernels.h"

namespace hcs::sim {

Machine::Machine(MachineId id, double binWidth, bool trackTail,
                 bool lazyTailRebuild)
    : id_(id),
      binWidth_(binWidth),
      trackTail_(trackTail),
      lazyTailRebuild_(lazyTailRebuild) {
  if (binWidth <= 0.0) {
    throw std::invalid_argument("Machine: bin width must be positive");
  }
}

std::int64_t Machine::binAt(Time t) const {
  return static_cast<std::int64_t>(std::llround(t / binWidth_));
}

prob::DiscretePmf Machine::availabilityPct(Time now, const TaskPool& pool,
                                           const ExecutionModel& model) const {
  prob::PmfArena& arena = prob::PmfArena::local();
  if (!busy()) {
    return prob::pointMassInto(arena, binAt(now), binWidth_);
  }
  // Remaining time of the running task, conditioned on the time it has
  // already executed, re-anchored to absolute time (the shift rides along in
  // the kernel call — no intermediate relative-grid PMF is materialized).
  const Task& task = pool[running_];
  return prob::conditionalRemainingInto(arena, model.pet(task.type, id_),
                                        now - runStart_, binAt(now));
}

std::pair<std::int64_t, std::int64_t> Machine::availabilityBounds(
    Time now, const TaskPool& pool, const ExecutionModel& model) const {
  const std::int64_t anchor = binAt(now);
  if (!busy()) return {anchor, anchor};
  const Task& task = pool[running_];
  const auto [lo, hi] = model.pet(task.type, id_)
                            .conditionalRemainingBounds(now - runStart_);
  return {lo + anchor, hi + anchor};
}

void Machine::foldPendingAppends(const ExecutionModel& model) const {
  // Replays exactly the convolutions an eager dispatch would have done, in
  // dispatch order, on the same accumulator — bit-identical, just deferred
  // until something actually reads the tail.
  if (pendingAppends_.empty()) return;
  prob::PmfArena& arena = prob::PmfArena::local();
  for (TaskType type : pendingAppends_) {
    prob::convolveInPlace(arena, *tail_, model.pet(type, id_));
  }
  pendingAppends_.clear();
}

prob::DiscretePmf Machine::tailPct(Time now, const TaskPool& pool,
                                   const ExecutionModel& model) const {
  if (tailDirty_) rebuildTail(tailDirtyAt_, pool, model);
  foldPendingAppends(model);
  if (tail_.has_value()) return *tail_;
  if (empty()) return availabilityPct(now, pool, model);
  // Tail tracking is off: derive the tail from the full chain on demand.
  prob::PmfArena& arena = prob::PmfArena::local();
  prob::DiscretePmf acc = availabilityPct(now, pool, model);
  for (TaskType type : queueTypes_) {
    prob::convolveInPlace(arena, acc, model.pet(type, id_));
  }
  return acc;
}

const prob::DiscretePmf& Machine::tailPctRef(Time now, const TaskPool& pool,
                                             const ExecutionModel& model) const {
  if (tailDirty_) rebuildTail(tailDirtyAt_, pool, model);
  foldPendingAppends(model);
  if (!tail_.has_value()) {
    throw std::logic_error("tailPctRef: Eq. 1 tail is not tracked");
  }
  (void)now;
  return *tail_;
}

std::pair<std::int64_t, std::int64_t> Machine::tailBounds(
    Time now, const TaskPool& pool, const ExecutionModel& model) const {
  if (tail_.has_value() && !tailDirty_) {
    std::int64_t lo = tail_->firstBin();
    std::int64_t hi = tail_->lastBin();
    // Pending lazy appends widen the interval by their PETs' support —
    // exactly what folding them would produce (hi stays conservative
    // under convolution capping, as documented).
    for (TaskType type : pendingAppends_) {
      const prob::DiscretePmf& pet = model.pet(type, id_);
      lo += pet.firstBin();
      hi += pet.lastBin();
    }
    return {lo, hi};
  }
  // No materialized tail (tracking off, machine empty, or a lazy rebuild
  // pending): derive the interval from the chain's factors.  A dirty tail
  // would be rebuilt at the mutation time, so anchor there — the result
  // brackets exactly what tailPct() would materialize.
  const Time anchor = tailDirty_ ? tailDirtyAt_ : now;
  auto [lo, hi] = availabilityBounds(anchor, pool, model);
  for (TaskType type : queueTypes_) {
    const prob::DiscretePmf& pet = model.pet(type, id_);
    lo += pet.firstBin();
    hi += pet.lastBin();
  }
  return {lo, hi};
}

std::vector<prob::DiscretePmf> Machine::chainPcts(
    Time now, const TaskPool& pool, const ExecutionModel& model) const {
  std::vector<prob::DiscretePmf> chain;
  if (empty()) return chain;
  prob::PmfArena& arena = prob::PmfArena::local();
  prob::DiscretePmf avail = availabilityPct(now, pool, model);
  chain.reserve(queue_.size() + (busy() ? 1u : 0u));
  const prob::DiscretePmf* prev;
  if (busy()) {
    chain.push_back(std::move(avail));
    prev = &chain.back();
  } else {
    prev = &avail;
  }
  for (TaskId id : queue_) {
    chain.push_back(
        prob::convolveInto(arena, *prev, model.pet(pool[id].type, id_)));
    prev = &chain.back();
  }
  if (!busy()) arena.recycle(std::move(avail));
  return chain;
}

Time Machine::expectedReady(Time now, const TaskPool& pool,
                            const ExecutionModel& model) const {
  Time ready = now;
  if (busy()) {
    const Task& task = pool[running_];
    // The closed-form mean mirrors conditionalRemaining().mean() bit for
    // bit without materializing the remaining-time PMF.
    ready += model.pet(task.type, id_)
                 .conditionalRemainingMean(now - runStart_);
  }
  for (TaskType type : queueTypes_) ready += model.expectedExec(type, id_);
  return ready;
}

void Machine::tailChanged(Time now, const TaskPool& pool,
                          const ExecutionModel& model) {
  ++epoch_;
  // Any reconditioning event re-derives the whole chain; un-folded lazy
  // appends are subsumed by the rebuild.
  pendingAppends_.clear();
  if (empty() || !trackTail_) {
    if (tail_.has_value()) {
      prob::PmfArena::local().recycle(std::move(*tail_));
      tail_.reset();
    }
    tailDirty_ = false;
    return;
  }
  if (lazyTailRebuild_) {
    tailDirty_ = true;
    tailDirtyAt_ = now;
  } else {
    rebuildTail(now, pool, model);
  }
}

void Machine::rebuildTail(Time now, const TaskPool& pool,
                          const ExecutionModel& model) const {
  tailDirty_ = false;
  pendingAppends_.clear();  // the rebuild walks the full queue
  prob::PmfArena& arena = prob::PmfArena::local();
  if (tail_.has_value()) {
    arena.recycle(std::move(*tail_));
    tail_.reset();
  }
  if (empty() || !trackTail_) return;
  prob::DiscretePmf acc = availabilityPct(now, pool, model);
  for (TaskType type : queueTypes_) {
    prob::convolveInPlace(arena, acc, model.pet(type, id_));
  }
  tail_ = std::move(acc);
}

void Machine::startTask(TaskId task, Time now, TaskPool& pool) {
  running_ = task;
  runStart_ = now;
  Task& t = pool[task];
  t.status = TaskStatus::Running;
  t.startTime = now;
}

bool Machine::dispatch(TaskId task, Time now, TaskPool& pool,
                       const ExecutionModel& model,
                       const prob::DiscretePmf* newTail) {
  if (!online_) {
    throw std::logic_error("dispatch: machine is offline");
  }
  if (draining_) {
    throw std::logic_error("dispatch: machine is draining");
  }
  Task& t = pool[task];
  t.machine = id_;
  t.queuedAt = now;
  ++epoch_;
  if (trackTail_) {
    if (newTail == nullptr && lazyTailRebuild_ &&
        (tailDirty_ || tail_.has_value())) {
      // Lazy Eq. 1 append: no caller handed over the convolution and
      // nothing has read the tail since — queue the PET instead of paying
      // now.  A pending full rebuild already covers the new task (it
      // re-walks the whole queue, which is about to contain it).
      if (!tailDirty_) pendingAppends_.push_back(t.type);
    } else {
      // Eq. 1: the new task's PCT extends the current tail by one
      // convolution.
      prob::PmfArena& arena = prob::PmfArena::local();
      prob::DiscretePmf next = [&]() -> prob::DiscretePmf {
        if (newTail != nullptr) return *newTail;
        if (tailDirty_) rebuildTail(tailDirtyAt_, pool, model);
        const prob::DiscretePmf& pet = model.pet(t.type, id_);
        if (tail_.has_value()) return prob::convolveInto(arena, *tail_, pet);
        // No live tail (empty machine): start the chain from availability.
        prob::DiscretePmf base = tailPct(now, pool, model);
        prob::DiscretePmf out = prob::convolveInto(arena, base, pet);
        arena.recycle(std::move(base));
        return out;
      }();
      if (tail_.has_value()) arena.recycle(std::move(*tail_));
      tail_ = std::move(next);
      tailDirty_ = false;
      pendingAppends_.clear();
    }
  }
  if (empty()) {
    startTask(task, now, pool);
    return true;
  }
  t.status = TaskStatus::Queued;
  queue_.push_back(task);
  queueTypes_.push_back(t.type);
  return false;
}

void Machine::finishRunning(Time now, TaskPool& pool,
                            const ExecutionModel& model) {
  if (!busy()) {
    throw std::logic_error("finishRunning: machine is idle");
  }
  busyTime_ += now - runStart_;
  running_ = kInvalidTask;
  // The finished task's actual completion time is now certain, so the whole
  // chain of successors is re-derived from reality (§II: shortening the
  // chain reduces compound uncertainty).
  tailChanged(now, pool, model);
}

TaskId Machine::startNextIfIdle(Time now, TaskPool& pool,
                                const ExecutionModel& model) {
  if (busy() || queue_.empty()) return kInvalidTask;
  const TaskId next = queue_.front();
  queue_.pop_front();
  queueTypes_.erase(queueTypes_.begin());
  startTask(next, now, pool);
  tailChanged(now, pool, model);
  return next;
}

TaskId Machine::completeRunning(Time now, TaskPool& pool,
                                const ExecutionModel& model) {
  finishRunning(now, pool, model);
  return startNextIfIdle(now, pool, model);
}

void Machine::removeQueued(TaskId task, Time now, TaskPool& pool,
                           const ExecutionModel& model) {
  auto it = std::find(queue_.begin(), queue_.end(), task);
  if (it == queue_.end()) {
    throw std::logic_error("removeQueued: task not queued on this machine");
  }
  queueTypes_.erase(queueTypes_.begin() + (it - queue_.begin()));
  queue_.erase(it);
  tailChanged(now, pool, model);
}

void Machine::abortRunning(Time now, TaskPool& pool,
                           const ExecutionModel& model) {
  if (!busy()) {
    throw std::logic_error("abortRunning: machine is idle");
  }
  busyTime_ += now - runStart_;
  running_ = kInvalidTask;
  tailChanged(now, pool, model);
}

void Machine::goOffline(Time now, const TaskPool& pool,
                        const ExecutionModel& model,
                        std::vector<TaskId>& orphans) {
  if (!online_) {
    throw std::logic_error("goOffline: machine is already offline");
  }
  if (busy()) {
    throw std::logic_error("goOffline: abort the running task first");
  }
  accumOnline_ += now - onlineSince_;
  if (draining_) accumDraining_ += now - drainingSince_;
  online_ = false;
  orphans.insert(orphans.end(), queue_.begin(), queue_.end());
  queue_.clear();
  queueTypes_.clear();
  tailChanged(now, pool, model);
}

void Machine::comeOnline(Time now, const TaskPool& pool,
                         const ExecutionModel& model) {
  if (online_) {
    throw std::logic_error("comeOnline: machine is already online");
  }
  online_ = true;
  onlineSince_ = now;
  if (draining_) drainingSince_ = now;
  tailChanged(now, pool, model);
}

void Machine::beginDrain(Time now) {
  if (!online_) {
    throw std::logic_error("beginDrain: machine is offline");
  }
  if (draining_) {
    throw std::logic_error("beginDrain: machine is already draining");
  }
  draining_ = true;
  drainingSince_ = now;
}

void Machine::cancelDrain(Time now) {
  if (!draining_) {
    throw std::logic_error("cancelDrain: machine is not draining");
  }
  if (online_) accumDraining_ += now - drainingSince_;
  draining_ = false;
}

}  // namespace hcs::sim
