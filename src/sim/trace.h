#pragma once
// Per-trial event tracing: an optional sink receives every task lifecycle
// transition, giving downstream tooling (debuggers, timeline visualizers,
// log auditors) the full story of a trial without touching the scheduler.

#include <functional>
#include <iosfwd>
#include <string_view>
#include <vector>

#include "sim/types.h"

namespace hcs::sim {

enum class TraceEventKind {
  Arrival,           ///< task entered the system
  Dispatched,        ///< task assigned to a machine queue
  Started,           ///< task began executing
  Completed,         ///< task finished (on time or late)
  Deferred,          ///< pruner pushed the task back to the batch queue
  DroppedReactive,   ///< evicted: deadline already passed
  DroppedProactive,  ///< evicted: chance of success below the bar
  Aborted,           ///< running task cut off at its deadline
  MachineFailed,     ///< machine went offline (task = kInvalidTask)
  MachineRecovered,  ///< machine rejoined the cluster (task = kInvalidTask)
  TaskFailed,        ///< task lost to a machine failure (aborted/orphaned)
  Retried,           ///< failed task rescheduled into the arrival stream
  Abandoned,         ///< retry policy gave up on the task
  Rejected,          ///< federation gateway refused admission
  MachineBooting,    ///< controller requested a scale-up (task = kInvalidTask)
  MachineBooted,     ///< provisioning delay elapsed; machine is accepting work
  BootCancelled,     ///< scale-down withdrew a boot before it completed
  MachineDraining,   ///< controller began a graceful scale-down
  DrainCancelled,    ///< a scale-up reclaimed a draining machine's slot
  MachineRetired,    ///< a drained machine emptied and left the cluster
};

std::string_view toString(TraceEventKind kind);

struct TraceEvent {
  Time time = 0;
  TraceEventKind kind = TraceEventKind::Arrival;
  TaskId task = kInvalidTask;
  MachineId machine = kInvalidMachine;  ///< where applicable

  bool operator==(const TraceEvent&) const = default;
};

/// Sink signature; install via core::SimulationConfig::traceSink.
using TraceSink = std::function<void(const TraceEvent&)>;

/// Convenience sink: collects events in memory, query/export helpers.
class TraceLog {
 public:
  /// Returns a sink bound to this log (the log must outlive the trial).
  TraceSink sink();

  const std::vector<TraceEvent>& events() const { return events_; }
  std::size_t size() const { return events_.size(); }

  /// Events of one task, in order.
  std::vector<TraceEvent> forTask(TaskId task) const;

  /// Events of one kind, in order.
  std::vector<TraceEvent> ofKind(TraceEventKind kind) const;

  /// "time,kind,task,machine" rows with a header.
  void writeCsv(std::ostream& out) const;

 private:
  std::vector<TraceEvent> events_;
};

}  // namespace hcs::sim
