#include "sim/trace.h"

#include <ostream>

namespace hcs::sim {

std::string_view toString(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::Arrival: return "Arrival";
    case TraceEventKind::Dispatched: return "Dispatched";
    case TraceEventKind::Started: return "Started";
    case TraceEventKind::Completed: return "Completed";
    case TraceEventKind::Deferred: return "Deferred";
    case TraceEventKind::DroppedReactive: return "DroppedReactive";
    case TraceEventKind::DroppedProactive: return "DroppedProactive";
    case TraceEventKind::Aborted: return "Aborted";
    case TraceEventKind::MachineFailed: return "MachineFailed";
    case TraceEventKind::MachineRecovered: return "MachineRecovered";
    case TraceEventKind::TaskFailed: return "TaskFailed";
    case TraceEventKind::Retried: return "Retried";
    case TraceEventKind::Abandoned: return "Abandoned";
    case TraceEventKind::Rejected: return "Rejected";
    case TraceEventKind::MachineBooting: return "MachineBooting";
    case TraceEventKind::MachineBooted: return "MachineBooted";
    case TraceEventKind::BootCancelled: return "BootCancelled";
    case TraceEventKind::MachineDraining: return "MachineDraining";
    case TraceEventKind::DrainCancelled: return "DrainCancelled";
    case TraceEventKind::MachineRetired: return "MachineRetired";
  }
  return "Unknown";
}

TraceSink TraceLog::sink() {
  return [this](const TraceEvent& event) { events_.push_back(event); };
}

std::vector<TraceEvent> TraceLog::forTask(TaskId task) const {
  std::vector<TraceEvent> out;
  for (const TraceEvent& e : events_) {
    if (e.task == task) out.push_back(e);
  }
  return out;
}

std::vector<TraceEvent> TraceLog::ofKind(TraceEventKind kind) const {
  std::vector<TraceEvent> out;
  for (const TraceEvent& e : events_) {
    if (e.kind == kind) out.push_back(e);
  }
  return out;
}

void TraceLog::writeCsv(std::ostream& out) const {
  out << "time,kind,task,machine\n";
  for (const TraceEvent& e : events_) {
    out << e.time << ',' << toString(e.kind) << ',' << e.task << ','
        << e.machine << '\n';
  }
}

}  // namespace hcs::sim
