#include "sim/metrics.h"

#include <stdexcept>

namespace hcs::sim {

Metrics::Metrics(int numTaskTypes)
    : perType_(static_cast<std::size_t>(numTaskTypes)) {
  if (numTaskTypes <= 0) {
    throw std::invalid_argument("Metrics: need at least one task type");
  }
}

bool Metrics::isCounted(TaskId id) const {
  if (counted_.empty()) return true;
  const auto idx = static_cast<std::size_t>(id);
  return idx < counted_.size() && counted_[idx];
}

void Metrics::applyCounted(const PendingTerminal& p) {
  ++countedTotal_;
  countedValue_ += p.value;
  if (p.status == TaskStatus::CompletedOnTime) onTimeValue_ += p.value;
  auto& type = perType_[static_cast<std::size_t>(p.type)];
  switch (p.status) {
    case TaskStatus::CompletedOnTime:
      ++type.completedOnTime;
      ++totals_.completedOnTime;
      if (p.hadFailures) ++failedThenMet_;
      break;
    case TaskStatus::CompletedLate:
      ++type.completedLate;
      ++totals_.completedLate;
      break;
    case TaskStatus::DroppedReactive:
      ++type.droppedReactive;
      ++totals_.droppedReactive;
      break;
    case TaskStatus::DroppedProactive:
      ++type.droppedProactive;
      ++totals_.droppedProactive;
      break;
    case TaskStatus::Abandoned:
      ++type.abandoned;
      ++totals_.abandoned;
      break;
    case TaskStatus::Rejected:
      ++type.rejected;
      ++totals_.rejected;
      break;
    default:
      break;
  }
}

void Metrics::recordTerminal(const Task& task) {
  if (!isTerminal(task.status)) {
    throw std::logic_error("Metrics::recordTerminal: task not terminal");
  }
  ++terminalTotal_;
  if (online_) {
    pending_.push_back({task.ordinal, task.type, task.status, task.value,
                        task.failures > 0});
    flushPending(false);
    return;
  }
  if (!isCounted(task.id)) return;
  applyCounted({task.ordinal, task.type, task.status, task.value,
                task.failures > 0});
}

void Metrics::enableOnlineCounting(std::size_t margin,
                                   const std::uint64_t* createdClock) {
  if (createdClock == nullptr) {
    throw std::invalid_argument("enableOnlineCounting: null creation clock");
  }
  online_ = true;
  margin_ = margin;
  createdClock_ = createdClock;
  counted_.clear();
}

void Metrics::flushPending(bool streamEnded) {
  // Verdicts are settled strictly from the FIFO head so counted accounting
  // runs in recordTerminal-call order — the same fold order the materialized
  // mask produces, keeping the double sums bitwise identical.
  const std::uint64_t clock = *createdClock_;
  while (!pending_.empty()) {
    const PendingTerminal& p = pending_.front();
    if (p.ordinal < margin_) {  // warm-up: never counted
      pending_.pop_front();
      continue;
    }
    // Counted iff ordinal < total - margin.  Mid-stream, total >= clock, so
    // clock > ordinal + margin already proves it; at stream end the clock IS
    // the total.
    if (clock > p.ordinal + margin_) {
      applyCounted(p);
      pending_.pop_front();
      continue;
    }
    if (!streamEnded) return;  // verdict unknown; later entries must wait
    pending_.pop_front();      // cool-down: not counted
  }
}

void Metrics::endStreamCounting() {
  if (!online_) return;
  flushPending(true);
  online_ = false;
}

void Metrics::merge(const Metrics& other) {
  if (!pending_.empty() || !other.pending_.empty()) {
    throw std::logic_error(
        "Metrics::merge: endStreamCounting() must settle pending terminals "
        "before merging");
  }
  if (perType_.size() < other.perType_.size()) {
    perType_.resize(other.perType_.size());
  }
  for (std::size_t k = 0; k < other.perType_.size(); ++k) {
    perType_[k].completedOnTime += other.perType_[k].completedOnTime;
    perType_[k].completedLate += other.perType_[k].completedLate;
    perType_[k].droppedReactive += other.perType_[k].droppedReactive;
    perType_[k].droppedProactive += other.perType_[k].droppedProactive;
    perType_[k].abandoned += other.perType_[k].abandoned;
    perType_[k].rejected += other.perType_[k].rejected;
  }
  totals_.completedOnTime += other.totals_.completedOnTime;
  totals_.completedLate += other.totals_.completedLate;
  totals_.droppedReactive += other.totals_.droppedReactive;
  totals_.droppedProactive += other.totals_.droppedProactive;
  totals_.abandoned += other.totals_.abandoned;
  totals_.rejected += other.totals_.rejected;
  countedTotal_ += other.countedTotal_;
  terminalTotal_ += other.terminalTotal_;
  deferrals_ += other.deferrals_;
  machineFailures_ += other.machineFailures_;
  retries_ += other.retries_;
  spillovers_ += other.spillovers_;
  failedThenMet_ += other.failedThenMet_;
  countedValue_ += other.countedValue_;
  onTimeValue_ += other.onTimeValue_;
  perMachine_.insert(perMachine_.end(), other.perMachine_.begin(),
                     other.perMachine_.end());
  // Machine types are global (a PET-matrix column), so per-type
  // machine-seconds sum across clusters instead of concatenating.
  if (perTypeSeconds_.size() < other.perTypeSeconds_.size()) {
    perTypeSeconds_.resize(other.perTypeSeconds_.size());
  }
  for (std::size_t k = 0; k < other.perTypeSeconds_.size(); ++k) {
    perTypeSeconds_[k].online += other.perTypeSeconds_[k].online;
    perTypeSeconds_[k].draining += other.perTypeSeconds_[k].draining;
    perTypeSeconds_[k].busy += other.perTypeSeconds_[k].busy;
  }
  scaleUps_ += other.scaleUps_;
  scaleDowns_ += other.scaleDowns_;
}

double Metrics::robustnessPercent() const {
  if (countedTotal_ == 0) return 0.0;
  return 100.0 * static_cast<double>(totals_.completedOnTime) /
         static_cast<double>(countedTotal_);
}

double Metrics::weightedRobustnessPercent() const {
  if (countedValue_ <= 0.0) return 0.0;
  return 100.0 * onTimeValue_ / countedValue_;
}

void Metrics::recordExecution(MachineId machine, Time duration, bool useful) {
  if (machine < 0) {
    throw std::invalid_argument("recordExecution: invalid machine");
  }
  const auto idx = static_cast<std::size_t>(machine);
  if (perMachine_.size() <= idx) perMachine_.resize(idx + 1);
  if (useful) {
    perMachine_[idx].useful += duration;
  } else {
    perMachine_[idx].wasted += duration;
  }
}

Time Metrics::usefulBusyTime() const {
  Time total = 0;
  for (const ExecutionSplit& split : perMachine_) total += split.useful;
  return total;
}

Time Metrics::wastedBusyTime() const {
  Time total = 0;
  for (const ExecutionSplit& split : perMachine_) total += split.wasted;
  return total;
}

void Metrics::recordMachineSeconds(int machineType, Time online,
                                   Time draining, Time busy) {
  if (machineType < 0) {
    throw std::invalid_argument("recordMachineSeconds: invalid machine type");
  }
  const auto idx = static_cast<std::size_t>(machineType);
  if (perTypeSeconds_.size() <= idx) perTypeSeconds_.resize(idx + 1);
  perTypeSeconds_[idx].online += online;
  perTypeSeconds_[idx].draining += draining;
  perTypeSeconds_[idx].busy += busy;
}

Time Metrics::onlineMachineSeconds() const {
  Time total = 0;
  for (const MachineSeconds& s : perTypeSeconds_) total += s.online;
  return total;
}

Time Metrics::drainingMachineSeconds() const {
  Time total = 0;
  for (const MachineSeconds& s : perTypeSeconds_) total += s.draining;
  return total;
}

Time Metrics::busyMachineSeconds() const {
  Time total = 0;
  for (const MachineSeconds& s : perTypeSeconds_) total += s.busy;
  return total;
}

double Metrics::utilizationPercent() const {
  const Time online = onlineMachineSeconds();
  if (online <= 0) return 0.0;
  return 100.0 * busyMachineSeconds() / online;
}

}  // namespace hcs::sim
