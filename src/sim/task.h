#pragma once
// Task model and lifecycle.

#include <cstddef>
#include <string_view>
#include <vector>

#include "sim/types.h"

namespace hcs::sim {

/// Lifecycle of a task inside one trial.
///
/// Terminal states mirror the paper's accounting: only CompletedOnTime
/// counts toward robustness; DroppedReactive is the mandatory drop of a task
/// already past its deadline (§II); DroppedProactive is the pruner's
/// predictive drop (§IV-C).
enum class TaskStatus {
  Created,           ///< generated, not yet arrived
  Batched,           ///< waiting in the batch (arrival) queue
  Queued,            ///< assigned to a machine queue, not yet running
  Running,           ///< executing on a machine
  CompletedOnTime,   ///< finished at or before its deadline
  CompletedLate,     ///< finished after its deadline
  DroppedReactive,   ///< evicted because its deadline had already passed
  DroppedProactive,  ///< evicted by the pruner (low chance of success)
  Abandoned,         ///< gave up after machine failures (retry policy)
  Rejected,          ///< refused at the federation gateway (admission)
};

bool isTerminal(TaskStatus s);
std::string_view toString(TaskStatus s);

struct Task {
  TaskId id = kInvalidTask;
  TaskType type = 0;
  Time arrival = 0;
  Time deadline = 0;
  /// Relative worth of completing this task on time (priority/cost-aware
  /// pruning, the paper's §VII future work).  1.0 = ordinary task.
  double value = 1.0;

  TaskStatus status = TaskStatus::Created;
  MachineId machine = kInvalidMachine;
  Time queuedAt = -1;    ///< when dispatched to a machine queue
  Time startTime = -1;   ///< when execution began
  Time finishTime = -1;  ///< when execution finished (or the task was dropped)
  int deferrals = 0;     ///< how many mapping events deferred this task
  /// How many machine failures this task has absorbed (aborted mid-run or
  /// orphaned from a dead machine's queue).  Drives the retry policy's
  /// max-attempts / backoff arithmetic and the failed-then-met metric.
  int failures = 0;

  bool missedDeadline(Time now) const { return now > deadline; }
};

/// Owns every task of a trial; TaskIds index into it.
class TaskPool {
 public:
  TaskId create(TaskType type, Time arrival, Time deadline,
                double value = 1.0);

  Task& operator[](TaskId id) { return tasks_[static_cast<std::size_t>(id)]; }
  const Task& operator[](TaskId id) const {
    return tasks_[static_cast<std::size_t>(id)];
  }

  std::size_t size() const { return tasks_.size(); }
  const std::vector<Task>& all() const { return tasks_; }

 private:
  std::vector<Task> tasks_;
};

}  // namespace hcs::sim
