#pragma once
// Task model and lifecycle.

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

#include "sim/types.h"

namespace hcs::sim {

/// Lifecycle of a task inside one trial.
///
/// Terminal states mirror the paper's accounting: only CompletedOnTime
/// counts toward robustness; DroppedReactive is the mandatory drop of a task
/// already past its deadline (§II); DroppedProactive is the pruner's
/// predictive drop (§IV-C).
enum class TaskStatus {
  Created,           ///< generated, not yet arrived
  Batched,           ///< waiting in the batch (arrival) queue
  Queued,            ///< assigned to a machine queue, not yet running
  Running,           ///< executing on a machine
  CompletedOnTime,   ///< finished at or before its deadline
  CompletedLate,     ///< finished after its deadline
  DroppedReactive,   ///< evicted because its deadline had already passed
  DroppedProactive,  ///< evicted by the pruner (low chance of success)
  Abandoned,         ///< gave up after machine failures (retry policy)
  Rejected,          ///< refused at the federation gateway (admission)
};

bool isTerminal(TaskStatus s);
std::string_view toString(TaskStatus s);

struct Task {
  TaskId id = kInvalidTask;
  /// Creation sequence number, monotone across the trial.  Equal to `id`
  /// until the pool recycles slots (streaming mode), after which `id` is a
  /// slot index and `ordinal` is the task's position in the arrival
  /// sequence — what warm-up trimming and trace labels key on.
  std::uint64_t ordinal = 0;
  TaskType type = 0;
  Time arrival = 0;
  Time deadline = 0;
  /// Relative worth of completing this task on time (priority/cost-aware
  /// pruning, the paper's §VII future work).  1.0 = ordinary task.
  double value = 1.0;

  TaskStatus status = TaskStatus::Created;
  MachineId machine = kInvalidMachine;
  Time queuedAt = -1;    ///< when dispatched to a machine queue
  Time startTime = -1;   ///< when execution began
  Time finishTime = -1;  ///< when execution finished (or the task was dropped)
  int deferrals = 0;     ///< how many mapping events deferred this task
  /// How many machine failures this task has absorbed (aborted mid-run or
  /// orphaned from a dead machine's queue).  Drives the retry policy's
  /// max-attempts / backoff arithmetic and the failed-then-met metric.
  int failures = 0;

  bool missedDeadline(Time now) const { return now > deadline; }
};

/// Owns every task of a trial; TaskIds index into it.
///
/// By default the pool only grows — every created task keeps its slot, and
/// `id == ordinal`.  A streamed trial calls enableRecycling() so that
/// retire()d (terminal) tasks return their slots to a free list and memory
/// stays bounded by the in-flight window: the slab then indexes by slot
/// (the BatchQueue position-index trick applied to task storage), while
/// `ordinal` keeps the arrival-sequence identity.
class TaskPool {
 public:
  TaskId create(TaskType type, Time arrival, Time deadline,
                double value = 1.0);

  /// Switches the pool to slot-reusing (streaming) mode.  Must be called
  /// before the first create().
  void enableRecycling() { recycling_ = true; }

  /// Returns a terminal task's slot to the free list.  No-op unless
  /// recycling is enabled, so engine code calls it unconditionally.  The
  /// caller guarantees no live references or pending events point at `id`.
  void retire(TaskId id);

  Task& operator[](TaskId id) { return tasks_[static_cast<std::size_t>(id)]; }
  const Task& operator[](TaskId id) const {
    return tasks_[static_cast<std::size_t>(id)];
  }

  std::size_t size() const { return tasks_.size(); }
  const std::vector<Task>& all() const { return tasks_; }

  /// Tasks ever created (monotone; = size() when not recycling).
  std::uint64_t createdCount() const { return created_; }
  /// Stable pointer to the creation counter — the clock online Metrics
  /// counting reads to decide when warm-up margins are settled.
  const std::uint64_t* createdClock() const { return &created_; }
  /// Allocated slots (the memory footprint; ≪ createdCount() when
  /// recycling a long stream).
  std::size_t slotCount() const { return tasks_.size(); }

 private:
  std::vector<Task> tasks_;
  std::vector<TaskId> freeSlots_;
  std::uint64_t created_ = 0;
  bool recycling_ = false;
};

}  // namespace hcs::sim
