#pragma once
// Deterministic fault injection: machine failure/recovery and join/leave
// churn delivered through the engine's EventQueue.
//
// Two sources of churn compose:
//  - A stochastic process per machine — alternating Exp(mtbf) up-times and
//    Exp(mttr) repair times drawn from a dedicated fault RNG stream that is
//    seed-paired with (but independent of) the execution stream, so a
//    fault-enabled sweep point sees the same workload and execution draws
//    as its fault-free twin.
//  - Scripted events — explicit fail/recover (alias leave/join) transitions
//    at fixed times from the scenario file, for reproducing a specific
//    capacity timeline.  A scripted `fail` pins the machine down (the
//    stochastic repair is cancelled and not re-armed) until a scripted
//    `recover` re-arms the process; a scripted event whose machine is
//    already in the target state is a no-op.
//
// The injector owns no engine state: it schedules MachineFailure /
// MachineRecovery events, and the engine calls onEvent() when one pops to
// learn whether the transition applies.  With no fault events scheduled
// (faults disabled, or enabled with zero rates and no scripted events) the
// event queue's contents — and therefore the whole trial — are byte-
// identical to the fault-free engine.

#include <cstdint>
#include <vector>

#include "prob/rng.h"
#include "sim/event_queue.h"
#include "sim/machine.h"
#include "sim/types.h"

namespace hcs::sim {

/// One scripted churn transition from the scenario file.
struct ScriptedFault {
  Time time = 0;
  MachineId machine = kInvalidMachine;
  bool fail = true;  ///< true = fail/leave, false = recover/join
};

/// Scenario-level fault model: churn process + retry policy.  The retry
/// fields live here (not on the injector) because the scheduler applies
/// them when a failure orphans tasks.
struct FaultConfig {
  bool enabled = false;

  /// Mean time between failures per machine (exponential).  <= 0 disables
  /// the stochastic process — the oracle case for zero-fault identity.
  double mtbf = 0.0;
  /// Mean time to repair per machine (exponential); must be positive when
  /// mtbf is.
  double mttr = 0.0;

  /// Retry policy for tasks lost to a failure: a task is abandoned after
  /// `maxAttempts` failed executions, or as soon as its backoff delay
  /// would push the retry past its deadline (deadline-aware give-up).
  int maxAttempts = 3;
  /// Backoff before the k-th retry: base * factor^(k-1), stretched by a
  /// uniform jitter draw in [0, jitter] from the fault stream.
  double backoffBase = 1.0;
  double backoffFactor = 2.0;
  double backoffJitter = 0.1;

  std::vector<ScriptedFault> events;
  /// Machines that start the trial offline (dead capacity until a scripted
  /// recover — the stochastic process never arms for them on its own).
  std::vector<int> initiallyOffline;

  /// True when this config can inject at least one event; false configs
  /// leave the engine untouched.
  bool active() const {
    return enabled &&
           (mtbf > 0.0 || !events.empty() || !initiallyOffline.empty());
  }

  /// Throws std::invalid_argument on inconsistent knobs (non-positive mttr
  /// with stochastic failures on, bad backoff shape, ...).
  void validate() const;
};

/// Per-trial churn driver.  Deterministic: the same config, seed, and
/// machine count always produce the same event times and transitions.
class FaultInjector {
 public:
  /// What onEvent() decided for a popped fault event.
  enum class Action {
    None,     ///< stale (machine already in the target state) — ignore
    Fail,     ///< take Event.machine offline
    Recover,  ///< bring Event.machine back online
  };

  FaultInjector(const FaultConfig& config, std::uint64_t seed,
                std::size_t numMachines);

  /// Arms the trial: pushes every scripted event, marks the
  /// initially-offline machines (directly — they were never up, so there
  /// is nothing to abort), and schedules the first stochastic failure of
  /// every other machine.  Call after the workload's arrivals are pushed
  /// so arrivals keep the lower sequence numbers (and win time ties).
  void beginTrial(EventQueue& events, std::vector<Machine>& machines,
                  const TaskPool& pool, const ExecutionModel& model);

  /// Classifies a popped MachineFailure/MachineRecovery event and re-arms
  /// the stochastic process for the machine's new state.  `machineOnline`
  /// is the machine's current state (the injector does not retain a
  /// pointer to the fleet).
  Action onEvent(EventQueue& events, const Event& event, bool machineOnline);

  /// The fault RNG stream — the scheduler draws retry-backoff jitter from
  /// it so all fault randomness stays on one seed-paired stream.
  prob::Rng& rng() { return rng_; }

  /// The capacity controller retired `m` (graceful scale-down): its pending
  /// stochastic fault event dies with the slot — without this, the stale
  /// failure would misfire after a later scale-up re-boots the slot.
  void onMachineRetired(EventQueue& events, MachineId m);

  /// The capacity controller booted `m` back into service: arm the
  /// machine's up-time process from this instant (no-op when the
  /// stochastic process is off).
  void onMachineBooted(EventQueue& events, MachineId m, Time now);

 private:
  static constexpr std::uint64_t kNoEvent = ~std::uint64_t{0};

  Time drawUptime() { return rng_.exponential(config_.mtbf); }
  Time drawRepair() { return rng_.exponential(config_.mttr); }
  void armFailure(EventQueue& events, MachineId m, Time now);
  void armRecovery(EventQueue& events, MachineId m, Time now);

  const FaultConfig& config_;
  prob::Rng rng_;
  std::size_t numMachines_;
  /// Per machine: seq of its outstanding *stochastic* event (kNoEvent when
  /// none).  A popped event with a different seq is scripted; a scripted
  /// transition cancels the outstanding stochastic event so a machine
  /// never holds two live fault events.
  std::vector<std::uint64_t> outstanding_;
};

}  // namespace hcs::sim
