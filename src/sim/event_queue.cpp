#include "sim/event_queue.h"

#include <stdexcept>
#include <utility>

namespace hcs::sim {

void EventQueue::push(Time time, EventKind kind, TaskId task,
                      MachineId machine) {
  if (pos_.size() >= compactAt_) compact();
  Event e;
  e.time = time;
  e.kind = kind;
  e.task = task;
  e.machine = machine;
  e.seq = nextSeq_++;
  pos_.push_back(kNotInHeap);
  heap_.push_back(std::move(e));
  const std::size_t i = heap_.size() - 1;
  pos_[heap_[i].seq - posBase_] = static_cast<std::uint32_t>(i);
  siftUp(i);
}

void EventQueue::compact() {
  // Slide the position window past the dead prefix: everything before the
  // oldest live seq can never be cancelled again (cancel of a dead seq is a
  // no-op by contract).  The O(heap) scan is amortized by doubling the next
  // trigger, and the pop order is untouched — this is pure bookkeeping.
  if (heap_.empty()) {
    pos_.clear();
    posBase_ = nextSeq_;
  } else {
    std::uint64_t minSeq = heap_.front().seq;
    for (const Event& e : heap_) {
      if (e.seq < minSeq) minSeq = e.seq;
    }
    pos_.erase(pos_.begin(),
               pos_.begin() + static_cast<std::ptrdiff_t>(minSeq - posBase_));
    posBase_ = minSeq;
  }
  compactAt_ = pos_.size() * 2 > 1024 ? pos_.size() * 2 : 1024;
}

Event EventQueue::pop() {
  auto e = tryPop();
  if (!e.has_value()) {
    throw std::logic_error("EventQueue::pop: queue is empty");
  }
  return *e;
}

std::optional<Event> EventQueue::tryPop() {
  if (heap_.empty()) return std::nullopt;
  Event e = heap_.front();
  removeAt(0);
  return e;
}

void EventQueue::cancel(std::uint64_t seq) {
  if (seq < posBase_) return;  // dead prefix, long since popped or cancelled
  const std::uint64_t idx = seq - posBase_;
  if (idx >= pos_.size()) return;  // never pushed
  const std::uint32_t i = pos_[idx];
  if (i == kNotInHeap) return;  // already popped or already cancelled
  removeAt(i);
}

void EventQueue::removeAt(std::size_t i) {
  pos_[heap_[i].seq - posBase_] = kNotInHeap;
  const std::size_t last = heap_.size() - 1;
  if (i != last) {
    place(i, std::move(heap_[last]));
    heap_.pop_back();
    // The transplanted event may violate the heap property in either
    // direction relative to its new neighbourhood.
    siftUp(i);
    siftDown(i);
  } else {
    heap_.pop_back();
  }
}

void EventQueue::siftUp(std::size_t i) {
  Event e = std::move(heap_[i]);
  while (i > 0) {
    const std::size_t parent = (i - 1) / 4;
    if (!earlier(e, heap_[parent])) break;
    place(i, std::move(heap_[parent]));
    i = parent;
  }
  place(i, std::move(e));
}

void EventQueue::siftDown(std::size_t i) {
  const std::size_t n = heap_.size();
  Event e = std::move(heap_[i]);
  for (;;) {
    const std::size_t first = 4 * i + 1;
    if (first >= n) break;
    std::size_t best = first;
    const std::size_t end = first + 4 < n ? first + 4 : n;
    for (std::size_t c = first + 1; c < end; ++c) {
      if (earlier(heap_[c], heap_[best])) best = c;
    }
    if (!earlier(heap_[best], e)) break;
    place(i, std::move(heap_[best]));
    i = best;
  }
  place(i, std::move(e));
}

}  // namespace hcs::sim
