#include "sim/event_queue.h"

#include <stdexcept>

namespace hcs::sim {

void EventQueue::push(Time time, EventKind kind, TaskId task,
                      MachineId machine) {
  Event e;
  e.time = time;
  e.kind = kind;
  e.task = task;
  e.machine = machine;
  e.seq = nextSeq_++;
  heap_.push(e);
}

Event EventQueue::pop() {
  auto e = tryPop();
  if (!e.has_value()) {
    throw std::logic_error("EventQueue::pop: queue is empty");
  }
  return *e;
}

std::optional<Event> EventQueue::tryPop() {
  while (!heap_.empty()) {
    Event e = heap_.top();
    heap_.pop();
    if (cancelled_.erase(e.seq) > 0) continue;
    return e;
  }
  return std::nullopt;
}

void EventQueue::cancel(std::uint64_t seq) { cancelled_.insert(seq); }

}  // namespace hcs::sim
