#include "sim/event_queue.h"

#include <algorithm>
#include <stdexcept>

namespace hcs::sim {

void EventQueue::push(Time time, EventKind kind, TaskId task,
                      MachineId machine) {
  Event e;
  e.time = time;
  e.kind = kind;
  e.task = task;
  e.machine = machine;
  e.seq = nextSeq_++;
  heap_.push(e);
}

Event EventQueue::pop() {
  auto e = tryPop();
  if (!e.has_value()) {
    throw std::logic_error("EventQueue::pop: queue is empty");
  }
  return *e;
}

std::optional<Event> EventQueue::tryPop() {
  while (!heap_.empty()) {
    Event e = heap_.top();
    heap_.pop();
    auto it = std::find(cancelled_.begin(), cancelled_.end(), e.seq);
    if (it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    return e;
  }
  return std::nullopt;
}

void EventQueue::cancel(std::uint64_t seq) { cancelled_.push_back(seq); }

}  // namespace hcs::sim
