#include "pruning/pruner.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace hcs::pruning {

Pruner::Pruner(const PruningConfig& config, int numTaskTypes)
    : config_(config),
      toggle_(config.toggle, config.droppingToggle),
      fairness_(numTaskTypes, config.fairnessFactor, config.fairnessClamp) {
  if (config.threshold < 0.0 || config.threshold > 1.0) {
    throw std::invalid_argument("Pruner: threshold outside [0, 1]");
  }
}

void Pruner::beginMappingEvent(const Accounting::Snapshot& sinceLastEvent) {
  if (!config_.enabled) {
    droppingEngaged_ = false;
    return;
  }
  for (sim::TaskType type : sinceLastEvent.onTimeTypes) {
    fairness_.recordOnTimeCompletion(type);
  }
  droppingEngaged_ = toggle_.engageDropping(sinceLastEvent.deadlineMisses);
}

double Pruner::pruningBar(sim::TaskType type, double value) const {
  double bar = fairness_.effectiveThreshold(type, config_.threshold);
  if (config_.priorityAware && value > 0.0) {
    // §VII: scale the bar by (reference / value)^w, keeping it a valid
    // probability bound (0.99 cap so even worthless tasks with certain
    // success stay).
    bar = std::clamp(
        bar * std::pow(config_.priorityReference / value,
                       config_.priorityWeight),
        0.0, 0.99);
  }
  return bar;
}

bool Pruner::belowBar(sim::TaskType type, double chance, double value) const {
  return chance <= pruningBar(type, value);
}

bool Pruner::shouldDrop(sim::TaskType type, double chance,
                        double value) const {
  return config_.enabled && droppingEngaged_ && belowBar(type, chance, value);
}

bool Pruner::shouldDefer(sim::TaskType type, double chance,
                         double value) const {
  return config_.enabled && config_.deferEnabled &&
         belowBar(type, chance, value);
}

void Pruner::recordDrop(sim::TaskType type) { fairness_.recordDrop(type); }

}  // namespace hcs::pruning
