#pragma once
// The Accounting module (Fig. 4): gathers task outcomes between mapping
// events for the Toggle and Fairness modules.

#include <cstddef>
#include <vector>

#include "sim/types.h"

namespace hcs::pruning {

/// Collects per-interval and lifetime outcome counts.  The scheduler feeds
/// it every terminal transition; the Pruner harvests it once per mapping
/// event.
class Accounting {
 public:
  explicit Accounting(int numTaskTypes);

  /// A task of `type` finished at or before its deadline.
  void recordOnTimeCompletion(sim::TaskType type);

  /// A task of `type` missed its deadline (late completion or reactive
  /// drop) — the signal the Toggle watches.
  void recordDeadlineMiss(sim::TaskType type);

  /// The pruner proactively dropped a task of `type`.
  void recordProactiveDrop(sim::TaskType type);

  /// What happened since the previous harvest.
  struct Snapshot {
    std::vector<sim::TaskType> onTimeTypes;  ///< one entry per completion
    std::size_t deadlineMisses = 0;
  };

  /// Returns the interval snapshot and resets the interval state
  /// (lifetime totals are preserved).
  Snapshot harvest();

  int numTaskTypes() const {
    return static_cast<int>(totalOnTime_.size());
  }
  const std::vector<std::size_t>& totalOnTime() const { return totalOnTime_; }
  const std::vector<std::size_t>& totalMisses() const { return totalMisses_; }
  const std::vector<std::size_t>& totalProactiveDrops() const {
    return totalProactiveDrops_;
  }

 private:
  Snapshot interval_;
  std::vector<std::size_t> totalOnTime_;
  std::vector<std::size_t> totalMisses_;
  std::vector<std::size_t> totalProactiveDrops_;
};

}  // namespace hcs::pruning
