#pragma once
// The Pruner module (Fig. 4/5): the policy core of the pruning mechanism.
//
// The Pruner owns the Toggle and Fairness sub-modules and exposes the three
// decisions of the Fig. 5 procedure; the *mechanics* (walking machine
// queues, computing chances, dispatching) stay in core/Scheduler so the
// pruner remains a pure policy object that can be plugged into any resource
// allocation system, exactly as the paper prescribes.

#include "pruning/accounting.h"
#include "pruning/config.h"
#include "pruning/fairness.h"
#include "pruning/toggle.h"
#include "sim/types.h"

namespace hcs::pruning {

class Pruner {
 public:
  Pruner(const PruningConfig& config, int numTaskTypes);

  /// Fig. 5 steps 2-3, at the start of a mapping event: fold the interval's
  /// on-time completions into the fairness scores and evaluate the Toggle
  /// against the interval's deadline misses.
  void beginMappingEvent(const Accounting::Snapshot& sinceLastEvent);

  /// Whether the proactive-dropping pass (steps 4-6) runs this event.
  bool droppingEngaged() const { return droppingEngaged_; }

  /// Step 6: should a task of `type` with this chance of success be
  /// proactively dropped?  (Only meaningful when droppingEngaged().)
  /// `value` participates only under priority-aware pruning (§VII).
  bool shouldDrop(sim::TaskType type, double chance, double value = 1.0) const;

  /// Step 10: should a freshly mapped task of `type` be deferred back to
  /// the batch queue instead of dispatched?
  bool shouldDefer(sim::TaskType type, double chance,
                   double value = 1.0) const;

  /// Whether shouldDefer() can ever read its `chance` argument under this
  /// configuration; when false, callers may skip the (convolution-heavy)
  /// chance computation entirely.
  bool deferUsesChance() const {
    return config_.enabled && config_.deferEnabled;
  }

  /// The pruning bar a task of `type` and `value` must clear.
  double pruningBar(sim::TaskType type, double value) const;

  /// Records a proactive drop so the Fairness module raises the type's
  /// sufferage score (step 6's "gamma_k <- gamma_k + c").
  void recordDrop(sim::TaskType type);

  const PruningConfig& config() const { return config_; }
  const Fairness& fairness() const { return fairness_; }
  const Toggle& toggle() const { return toggle_; }

 private:
  bool belowBar(sim::TaskType type, double chance, double value) const;

  PruningConfig config_;
  Toggle toggle_;
  Fairness fairness_;
  bool droppingEngaged_ = false;
};

}  // namespace hcs::pruning
