#include "pruning/toggle.h"

#include <stdexcept>

namespace hcs::pruning {

Toggle::Toggle(ToggleMode mode, std::size_t droppingToggle)
    : mode_(mode), alpha_(droppingToggle) {
  if (mode == ToggleMode::Reactive && droppingToggle == 0) {
    throw std::invalid_argument(
        "Toggle: reactive mode needs a positive dropping toggle");
  }
}

bool Toggle::engageDropping(std::size_t missesSinceLastEvent) const {
  switch (mode_) {
    case ToggleMode::NoDropping:
      return false;
    case ToggleMode::AlwaysDropping:
      return true;
    case ToggleMode::Reactive:
      return missesSinceLastEvent >= alpha_;
  }
  return false;
}

}  // namespace hcs::pruning
