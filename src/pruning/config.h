#pragma once
// Pruning Configuration (Fig. 4): the service-provider-tunable knobs.

#include <cstddef>

namespace hcs::pruning {

/// How the Toggle module engages proactive task dropping (§V-C's three
/// scenarios).
enum class ToggleMode {
  NoDropping,      ///< "no Toggle, no dropping"
  AlwaysDropping,  ///< "no Toggle, always dropping"
  Reactive,        ///< "reactive Toggle": drop when misses since the last
                   ///< mapping event reach the Dropping Toggle (alpha)
};

struct PruningConfig {
  /// Master switch; false reproduces the paper's no-pruning baselines.
  bool enabled = true;

  /// Reactive dropping (Fig. 5 step 1): evict pending tasks whose deadline
  /// has already passed at every mapping event.  This is part of the
  /// pruning mechanism, not the substrate — the paper's no-pruning
  /// baselines execute every mapped task, including ones that expire while
  /// queued, which is what makes them collapse under oversubscription
  /// (Fig. 8's 0% point sits at 5-23%).
  bool reactiveDropEnabled = true;

  /// Pruning Threshold (beta): minimum chance of success a task needs to be
  /// mapped (deferring) or to stay in a machine queue (dropping).
  /// Paper default: 50% (§V-A).
  double threshold = 0.5;

  ToggleMode toggle = ToggleMode::Reactive;

  /// Dropping Toggle (alpha): deadline misses since the previous mapping
  /// event needed to flag the system oversubscribed.  Paper's reactive
  /// setting engages dropping "in observation of at least one task missing
  /// its deadline" (§V-C).
  std::size_t droppingToggle = 1;

  /// Enables deferring of low-chance tasks back to the batch queue
  /// (batch-mode only; immediate-mode has no arrival queue to defer into).
  bool deferEnabled = true;

  /// Fairness factor (c): sufferage-score step per completion/drop.
  /// Paper default: 0.05 (§V-A).
  double fairnessFactor = 0.05;

  /// Clamp on |sufferage score| so the effective threshold beta - gamma_k
  /// stays inside (0, 1).
  double fairnessClamp = 0.45;

  /// Priority/cost-aware pruning — the paper's §VII future work.  When
  /// enabled, a task of value v faces the bar
  ///   (beta - gamma_k) * (priorityReference / v)^w,  clamped to [0, 0.99]:
  /// tasks worth more than the reference must look much more hopeless
  /// before being pruned, tasks worth less are pruned eagerly (their bar
  /// rises above beta), shifting capacity toward high-value work.
  bool priorityAware = false;

  /// Exponent w of the priority adjustment above.
  double priorityWeight = 1.0;

  /// The task value at which the bar equals the plain threshold.  Set it
  /// near the workload's mean value so the adjustment is a reallocation,
  /// not a global loosening/tightening.
  double priorityReference = 1.0;

  /// Returns a config with pruning disabled (baseline): no reactive drops,
  /// no proactive drops, no deferring — every mapped task executes.
  static PruningConfig disabled() {
    PruningConfig c;
    c.enabled = false;
    c.reactiveDropEnabled = false;
    c.deferEnabled = false;
    c.toggle = ToggleMode::NoDropping;
    return c;
  }
};

}  // namespace hcs::pruning
