#pragma once
// The Toggle module (Fig. 4, §IV-C): decides when the system is
// oversubscribed enough to escalate from deferring to proactive dropping.

#include <cstddef>

#include "pruning/config.h"

namespace hcs::pruning {

/// Stateless policy over the miss count the Accounting module observed
/// since the previous mapping event.
class Toggle {
 public:
  Toggle(ToggleMode mode, std::size_t droppingToggle);

  /// Should this mapping event run the proactive-dropping pass
  /// (Fig. 5, step 3: "If oversubscription level is greater than alpha")?
  bool engageDropping(std::size_t missesSinceLastEvent) const;

  ToggleMode mode() const { return mode_; }
  std::size_t droppingToggle() const { return alpha_; }

 private:
  ToggleMode mode_;
  std::size_t alpha_;
};

}  // namespace hcs::pruning
