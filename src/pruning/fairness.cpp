#include "pruning/fairness.h"

#include <algorithm>
#include <stdexcept>

namespace hcs::pruning {

Fairness::Fairness(int numTaskTypes, double fairnessFactor, double clamp)
    : scores_(static_cast<std::size_t>(numTaskTypes), 0.0),
      c_(fairnessFactor),
      clamp_(clamp) {
  if (numTaskTypes <= 0) {
    throw std::invalid_argument("Fairness: need at least one task type");
  }
  if (fairnessFactor < 0.0) {
    throw std::invalid_argument("Fairness: negative fairness factor");
  }
  if (clamp < 0.0) {
    throw std::invalid_argument("Fairness: negative clamp");
  }
}

void Fairness::bump(sim::TaskType type, double delta) {
  double& gamma = scores_[static_cast<std::size_t>(type)];
  gamma = std::clamp(gamma + delta, 0.0, clamp_);
}

void Fairness::recordOnTimeCompletion(sim::TaskType type) { bump(type, -c_); }

void Fairness::recordDrop(sim::TaskType type) { bump(type, c_); }

}  // namespace hcs::pruning
