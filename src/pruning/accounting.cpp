#include "pruning/accounting.h"

#include <stdexcept>

namespace hcs::pruning {

Accounting::Accounting(int numTaskTypes)
    : totalOnTime_(static_cast<std::size_t>(numTaskTypes), 0),
      totalMisses_(static_cast<std::size_t>(numTaskTypes), 0),
      totalProactiveDrops_(static_cast<std::size_t>(numTaskTypes), 0) {
  if (numTaskTypes <= 0) {
    throw std::invalid_argument("Accounting: need at least one task type");
  }
}

void Accounting::recordOnTimeCompletion(sim::TaskType type) {
  interval_.onTimeTypes.push_back(type);
  ++totalOnTime_[static_cast<std::size_t>(type)];
}

void Accounting::recordDeadlineMiss(sim::TaskType type) {
  ++interval_.deadlineMisses;
  ++totalMisses_[static_cast<std::size_t>(type)];
}

void Accounting::recordProactiveDrop(sim::TaskType type) {
  ++totalProactiveDrops_[static_cast<std::size_t>(type)];
}

Accounting::Snapshot Accounting::harvest() {
  Snapshot out = std::move(interval_);
  interval_ = Snapshot{};
  return out;
}

}  // namespace hcs::pruning
