#pragma once
// The Fairness module (Fig. 4, §IV-D): per-task-type sufferage scores that
// offset the Pruning Threshold so the pruner does not systematically starve
// long-running task types.

#include <vector>

#include "sim/types.h"

namespace hcs::pruning {

/// Sufferage scores gamma_k.  A drop of type k raises gamma_k by the
/// fairness factor c; an on-time completion lowers it by c, but never below
/// zero — sufferage measures accumulated harm, and a type that has not
/// suffered any drops has nothing to recover from.  (Without the zero
/// floor, types that complete steadily would accumulate an ever-stricter
/// bar beta + |gamma| > 1 and starve outright.)  The effective pruning
/// threshold of type k is beta - gamma_k: suffering types get a laxer bar.
class Fairness {
 public:
  /// `clamp` bounds gamma_k from above so the effective threshold stays
  /// meaningful.
  Fairness(int numTaskTypes, double fairnessFactor, double clamp);

  void recordOnTimeCompletion(sim::TaskType type);
  void recordDrop(sim::TaskType type);

  /// gamma_k.
  double score(sim::TaskType type) const {
    return scores_[static_cast<std::size_t>(type)];
  }

  /// beta - gamma_k, the per-type pruning bar (Fig. 5, steps 6 and 10).
  double effectiveThreshold(sim::TaskType type, double beta) const {
    return beta - score(type);
  }

  double fairnessFactor() const { return c_; }
  int numTaskTypes() const { return static_cast<int>(scores_.size()); }
  const std::vector<double>& scores() const { return scores_; }

 private:
  void bump(sim::TaskType type, double delta);

  std::vector<double> scores_;
  double c_;
  double clamp_;
};

}  // namespace hcs::pruning
