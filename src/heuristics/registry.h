#pragma once
// Name-based construction of mapping heuristics (Fig. 3's taxonomy).

#include <memory>
#include <string>
#include <vector>

#include "heuristics/batch.h"
#include "heuristics/heuristic.h"
#include "heuristics/homogeneous.h"
#include "heuristics/immediate.h"

namespace hcs::heuristics {

struct HeuristicOptions {
  double kpbPercent = 0.375;  ///< KPB's K (fraction of machines considered)
};

/// Names: "RR", "MET", "MCT", "KPB".
/// Throws std::invalid_argument for unknown names.
std::unique_ptr<ImmediateHeuristic> makeImmediate(
    const std::string& name, const HeuristicOptions& options = {});

/// Names: "MM", "MSD", "MMU" (heterogeneous); "FCFS-RR", "EDF", "SJF"
/// (homogeneous).  Throws std::invalid_argument for unknown names.
std::unique_ptr<BatchHeuristic> makeBatch(const std::string& name,
                                          const HeuristicOptions& options = {});

bool isImmediateHeuristic(const std::string& name);
bool isBatchHeuristic(const std::string& name);

const std::vector<std::string>& immediateHeuristicNames();
const std::vector<std::string>& batchHeteroHeuristicNames();
const std::vector<std::string>& homogeneousHeuristicNames();

}  // namespace hcs::heuristics
