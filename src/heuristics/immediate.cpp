#include "heuristics/immediate.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace hcs::heuristics {

// Every immediate heuristic places on machines that *accept work* only —
// online and not draining (a churned machine offers no capacity; a draining
// one is winding down).  With the whole fleet up and no drains the filters
// are behavioral no-ops and every selection is bit-identical to the
// fault-free fixed-capacity engine.  With no machine accepting they return
// kInvalidMachine and the scheduler routes the arrival through the retry
// policy.

sim::MachineId RoundRobin::selectMachine(const MappingContext& ctx,
                                         sim::TaskId /*task*/) {
  const int m = ctx.numMachines();
  for (int i = 0; i < m; ++i) {
    const auto j = static_cast<sim::MachineId>((next_ + i) % m);
    if (!ctx.machine(j).acceptsWork()) continue;
    next_ = (j + 1) % m;
    return j;
  }
  return sim::kInvalidMachine;
}

sim::MachineId MinimumExpectedExecutionTime::selectMachine(
    const MappingContext& ctx, sim::TaskId task) {
  const sim::TaskType type = ctx.pool()[task].type;
  sim::MachineId best = sim::kInvalidMachine;
  double bestExec = 0.0;
  for (sim::MachineId j = 0; j < ctx.numMachines(); ++j) {
    if (!ctx.machine(j).acceptsWork()) continue;
    const double exec = ctx.expectedExec(type, j);
    if (best == sim::kInvalidMachine || exec < bestExec) {
      bestExec = exec;
      best = j;
    }
  }
  return best;
}

sim::MachineId MinimumExpectedCompletionTime::selectMachine(
    const MappingContext& ctx, sim::TaskId task) {
  sim::MachineId best = sim::kInvalidMachine;
  double bestCompletion = 0.0;
  for (sim::MachineId j = 0; j < ctx.numMachines(); ++j) {
    if (!ctx.machine(j).acceptsWork()) continue;
    const double completion = ctx.expectedCompletion(task, j);
    if (best == sim::kInvalidMachine || completion < bestCompletion) {
      bestCompletion = completion;
      best = j;
    }
  }
  return best;
}

sim::MachineId MaxChance::selectMachine(const MappingContext& ctx,
                                        sim::TaskId task) {
  // Eq. 2 as the placement criterion: evaluate every machine's chance of
  // success in one bulk query (the Eq. 1 convolutions run batched through
  // the arena kernels) and take the argmax; ties fall to the lowest id and
  // then the scalar completion estimate never enters the decision.
  const std::vector<double> chances = ctx.successChances(task);
  sim::MachineId best = sim::kInvalidMachine;
  for (sim::MachineId j = 0; j < ctx.numMachines(); ++j) {
    if (!ctx.machine(j).acceptsWork()) continue;
    if (best == sim::kInvalidMachine ||
        chances[static_cast<std::size_t>(j)] >
            chances[static_cast<std::size_t>(best)]) {
      best = j;
    }
  }
  return best;
}

KPercentBest::KPercentBest(double kPercent) : kPercent_(kPercent) {
  if (kPercent <= 0.0 || kPercent > 1.0) {
    throw std::invalid_argument("KPercentBest: kPercent outside (0, 1]");
  }
}

sim::MachineId KPercentBest::selectMachine(const MappingContext& ctx,
                                           sim::TaskId task) {
  const sim::TaskType type = ctx.pool()[task].type;
  const int m = ctx.numMachines();
  std::vector<sim::MachineId> order;
  order.reserve(static_cast<std::size_t>(m));
  for (sim::MachineId j = 0; j < m; ++j) {
    if (ctx.machine(j).acceptsWork()) order.push_back(j);
  }
  if (order.empty()) return sim::kInvalidMachine;
  // k stays a fraction of the FULL fleet (the paper's heterogeneity knob),
  // clamped to the surviving machines.
  const int n = static_cast<int>(order.size());
  const int k = std::clamp(
      static_cast<int>(std::lround(kPercent_ * static_cast<double>(m))), 1, n);
  std::partial_sort(order.begin(), order.begin() + k, order.end(),
                    [&](sim::MachineId a, sim::MachineId b) {
                      return ctx.expectedExec(type, a) <
                             ctx.expectedExec(type, b);
                    });
  sim::MachineId best = order[0];
  double bestCompletion = ctx.expectedCompletion(task, best);
  for (int i = 1; i < k; ++i) {
    const double completion = ctx.expectedCompletion(task, order[static_cast<std::size_t>(i)]);
    if (completion < bestCompletion) {
      bestCompletion = completion;
      best = order[static_cast<std::size_t>(i)];
    }
  }
  return best;
}

}  // namespace hcs::heuristics
