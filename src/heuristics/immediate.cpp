#include "heuristics/immediate.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace hcs::heuristics {

sim::MachineId RoundRobin::selectMachine(const MappingContext& ctx,
                                         sim::TaskId /*task*/) {
  const sim::MachineId pick = next_;
  next_ = (next_ + 1) % ctx.numMachines();
  return pick;
}

sim::MachineId MinimumExpectedExecutionTime::selectMachine(
    const MappingContext& ctx, sim::TaskId task) {
  const sim::TaskType type = ctx.pool()[task].type;
  sim::MachineId best = 0;
  double bestExec = ctx.expectedExec(type, 0);
  for (sim::MachineId j = 1; j < ctx.numMachines(); ++j) {
    const double exec = ctx.expectedExec(type, j);
    if (exec < bestExec) {
      bestExec = exec;
      best = j;
    }
  }
  return best;
}

sim::MachineId MinimumExpectedCompletionTime::selectMachine(
    const MappingContext& ctx, sim::TaskId task) {
  sim::MachineId best = 0;
  double bestCompletion = ctx.expectedCompletion(task, 0);
  for (sim::MachineId j = 1; j < ctx.numMachines(); ++j) {
    const double completion = ctx.expectedCompletion(task, j);
    if (completion < bestCompletion) {
      bestCompletion = completion;
      best = j;
    }
  }
  return best;
}

sim::MachineId MaxChance::selectMachine(const MappingContext& ctx,
                                        sim::TaskId task) {
  // Eq. 2 as the placement criterion: evaluate every machine's chance of
  // success in one bulk query (the Eq. 1 convolutions run batched through
  // the arena kernels) and take the argmax; ties fall to the lowest id and
  // then the scalar completion estimate never enters the decision.
  const std::vector<double> chances = ctx.successChances(task);
  sim::MachineId best = 0;
  for (sim::MachineId j = 1; j < ctx.numMachines(); ++j) {
    if (chances[static_cast<std::size_t>(j)] >
        chances[static_cast<std::size_t>(best)]) {
      best = j;
    }
  }
  return best;
}

KPercentBest::KPercentBest(double kPercent) : kPercent_(kPercent) {
  if (kPercent <= 0.0 || kPercent > 1.0) {
    throw std::invalid_argument("KPercentBest: kPercent outside (0, 1]");
  }
}

sim::MachineId KPercentBest::selectMachine(const MappingContext& ctx,
                                           sim::TaskId task) {
  const sim::TaskType type = ctx.pool()[task].type;
  const int m = ctx.numMachines();
  const int k = std::clamp(
      static_cast<int>(std::lround(kPercent_ * static_cast<double>(m))), 1, m);
  std::vector<sim::MachineId> order(static_cast<std::size_t>(m));
  std::iota(order.begin(), order.end(), 0);
  std::partial_sort(order.begin(), order.begin() + k, order.end(),
                    [&](sim::MachineId a, sim::MachineId b) {
                      return ctx.expectedExec(type, a) <
                             ctx.expectedExec(type, b);
                    });
  sim::MachineId best = order[0];
  double bestCompletion = ctx.expectedCompletion(task, best);
  for (int i = 1; i < k; ++i) {
    const double completion = ctx.expectedCompletion(task, order[static_cast<std::size_t>(i)]);
    if (completion < bestCompletion) {
      bestCompletion = completion;
      best = order[static_cast<std::size_t>(i)];
    }
  }
  return best;
}

}  // namespace hcs::heuristics
