#include "heuristics/context.h"

#include <stdexcept>

#include "prob/pmf.h"

namespace hcs::heuristics {

MappingContext::MappingContext(sim::Time now, const sim::TaskPool& pool,
                               const std::vector<sim::Machine>& machines,
                               const sim::ExecutionModel& model,
                               std::size_t queueCapacity, PctCache* pctCache)
    : now_(now),
      pool_(&pool),
      machines_(&machines),
      model_(&model),
      capacity_(queueCapacity),
      pctCache_(pctCache),
      readyCache_(machines.size(), 0.0),
      readyCached_(machines.size(), false),
      execCache_(static_cast<std::size_t>(model.numTaskTypes()) *
                     machines.size(),
                 -1.0) {
  if (machines.empty()) {
    throw std::invalid_argument("MappingContext: no machines");
  }
  if (queueCapacity == 0) {
    throw std::invalid_argument("MappingContext: zero queue capacity");
  }
}

sim::Time MappingContext::expectedReady(sim::MachineId id) const {
  const auto idx = static_cast<std::size_t>(id);
  if (!readyCached_[idx]) {
    const sim::Machine& m = (*machines_)[idx];
    if (pctCache_ != nullptr) {
      // Same arithmetic as Machine::expectedReady, with the conditional
      // remaining mean of the running task memoized across events.
      sim::Time ready = now_;
      if (m.busy()) {
        ready += pctCache_->remainingMean(m, now_, *pool_, *model_);
      }
      for (sim::TaskId t : m.queue()) {
        ready += expectedExec((*pool_)[t].type, id);
      }
      readyCache_[idx] = ready;
    } else {
      readyCache_[idx] = m.expectedReady(now_, *pool_, *model_);
    }
    readyCached_[idx] = true;
  }
  return readyCache_[idx];
}

sim::Time MappingContext::expectedCompletion(sim::TaskId task,
                                             sim::MachineId id) const {
  return expectedCompletionForType((*pool_)[task].type, id);
}

sim::Time MappingContext::expectedCompletionForType(sim::TaskType type,
                                                    sim::MachineId id) const {
  return expectedReady(id) + expectedExec(type, id);
}

std::size_t MappingContext::freeSlots(sim::MachineId id) const {
  if (capacity_ == kUnbounded) return kUnbounded;
  const sim::Machine& m = (*machines_)[static_cast<std::size_t>(id)];
  const std::size_t inSystem = m.queueLength() + (m.busy() ? 1 : 0);
  return inSystem >= capacity_ ? 0 : capacity_ - inSystem;
}

double MappingContext::successChance(sim::TaskId task,
                                     sim::MachineId id) const {
  const sim::Task& t = (*pool_)[task];
  const sim::Machine& m = (*machines_)[static_cast<std::size_t>(id)];
  if (pctCache_ != nullptr) {
    return pctCache_->appendChance(m, now_, *pool_, *model_, t.type,
                                   t.deadline);
  }
  const prob::DiscretePmf pct =
      m.tailPct(now_, *pool_, *model_).convolve(model_->pet(t.type, id));
  return pct.successProbability(t.deadline);
}

}  // namespace hcs::heuristics
