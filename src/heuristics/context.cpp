#include "heuristics/context.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "prob/arena.h"
#include "prob/kernels.h"
#include "prob/pmf.h"

namespace hcs::heuristics {

MappingContext::MappingContext(sim::Time now, const sim::TaskPool& pool,
                               const std::vector<sim::Machine>& machines,
                               const sim::ExecutionModel& model,
                               std::size_t queueCapacity, PctCache* pctCache)
    : now_(now),
      pool_(&pool),
      machines_(&machines),
      model_(&model),
      capacity_(queueCapacity),
      pctCache_(pctCache),
      readyCache_(prob::PmfArena::local().acquire(machines.size(), -1.0)),
      execCache_(prob::PmfArena::local().acquire(
          static_cast<std::size_t>(model.numTaskTypes()) * machines.size(),
          -1.0)) {
  if (machines.empty()) {
    throw std::invalid_argument("MappingContext: no machines");
  }
  if (queueCapacity == 0) {
    throw std::invalid_argument("MappingContext: zero queue capacity");
  }
}

MappingContext::~MappingContext() {
  prob::PmfArena& arena = prob::PmfArena::local();
  arena.recycle(std::move(execCache_));
  arena.recycle(std::move(readyCache_));
}

sim::Time MappingContext::expectedReady(sim::MachineId id) const {
  const auto idx = static_cast<std::size_t>(id);
  if (readyCache_[idx] < 0.0) {
    const sim::Machine& m = (*machines_)[idx];
    if (pctCache_ != nullptr) {
      // Same arithmetic as Machine::expectedReady, with the conditional
      // remaining mean of the running task memoized across events.
      sim::Time ready = now_;
      if (m.busy()) {
        ready += pctCache_->remainingMean(m, now_, *pool_, *model_);
      }
      for (sim::TaskId t : m.queue()) {
        ready += expectedExec((*pool_)[t].type, id);
      }
      readyCache_[idx] = ready;
    } else {
      readyCache_[idx] = m.expectedReady(now_, *pool_, *model_);
    }
  }
  return readyCache_[idx];
}

sim::Time MappingContext::expectedCompletion(sim::TaskId task,
                                             sim::MachineId id) const {
  return expectedCompletionForType((*pool_)[task].type, id);
}

sim::Time MappingContext::expectedCompletionForType(sim::TaskType type,
                                                    sim::MachineId id) const {
  return expectedReady(id) + expectedExec(type, id);
}

std::size_t MappingContext::freeSlots(sim::MachineId id) const {
  if (capacity_ == kUnbounded) return kUnbounded;
  const sim::Machine& m = (*machines_)[static_cast<std::size_t>(id)];
  const std::size_t inSystem = m.queueLength() + (m.busy() ? 1 : 0);
  return inSystem >= capacity_ ? 0 : capacity_ - inSystem;
}

double MappingContext::successChance(sim::TaskId task,
                                     sim::MachineId id) const {
  const sim::Task& t = (*pool_)[task];
  const sim::Machine& m = (*machines_)[static_cast<std::size_t>(id)];
  if (pctCache_ != nullptr) {
    return pctCache_->appendChance(m, now_, *pool_, *model_, t.type,
                                   t.deadline);
  }
  prob::PmfArena& arena = prob::PmfArena::local();
  prob::DiscretePmf base = m.tailPct(now_, *pool_, *model_);
  prob::DiscretePmf pct = prob::convolveInto(arena, base, model_->pet(t.type, id));
  arena.recycle(std::move(base));
  const double chance = pct.successProbability(t.deadline);
  arena.recycle(std::move(pct));
  return chance;
}

std::vector<double> MappingContext::successChances(sim::TaskId task) const {
  const sim::Task& t = (*pool_)[task];
  const int m = numMachines();
  std::vector<double> chances;
  chances.reserve(static_cast<std::size_t>(m));
  if (pctCache_ != nullptr) {
    // Memoized append entries answer each machine without re-convolving.
    for (sim::MachineId j = 0; j < m; ++j) {
      chances.push_back(pctCache_->appendChance(
          (*machines_)[static_cast<std::size_t>(j)], now_, *pool_, *model_,
          t.type, t.deadline));
    }
    return chances;
  }
  // Uncached: materialize every machine's appended PCT once into arena
  // buffers, then score the whole batch against the deadline in one pass.
  prob::PmfArena& arena = prob::PmfArena::local();
  std::vector<prob::DiscretePmf> pcts;
  pcts.reserve(static_cast<std::size_t>(m));
  std::vector<const prob::DiscretePmf*> ptrs;
  ptrs.reserve(static_cast<std::size_t>(m));
  for (sim::MachineId j = 0; j < m; ++j) {
    const sim::Machine& machine = (*machines_)[static_cast<std::size_t>(j)];
    prob::DiscretePmf base = machine.tailPct(now_, *pool_, *model_);
    pcts.push_back(prob::convolveInto(arena, base, model_->pet(t.type, j)));
    arena.recycle(std::move(base));
  }
  for (const prob::DiscretePmf& pct : pcts) ptrs.push_back(&pct);
  chances = prob::successProbabilityBatch(ptrs, t.deadline);
  for (prob::DiscretePmf& pct : pcts) arena.recycle(std::move(pct));
  return chances;
}

}  // namespace hcs::heuristics
