#include "heuristics/context.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "prob/arena.h"
#include "prob/kernels.h"
#include "prob/pmf.h"

namespace hcs::heuristics {

MappingContext::MappingContext(sim::Time now, const sim::TaskPool& pool,
                               const std::vector<sim::Machine>& machines,
                               const sim::ExecutionModel& model,
                               std::size_t queueCapacity, PctCache* pctCache)
    : now_(now),
      pool_(&pool),
      machines_(&machines),
      model_(&model),
      capacity_(queueCapacity),
      pctCache_(pctCache),
      readyCache_(prob::PmfArena::local().acquire(machines.size(), -1.0)),
      execCache_(prob::PmfArena::local().acquire(
          static_cast<std::size_t>(model.numTaskTypes()) * machines.size(),
          -1.0)) {
  if (machines.empty()) {
    throw std::invalid_argument("MappingContext: no machines");
  }
  if (queueCapacity == 0) {
    throw std::invalid_argument("MappingContext: zero queue capacity");
  }
}

MappingContext::~MappingContext() {
  prob::PmfArena& arena = prob::PmfArena::local();
  arena.recycle(std::move(execCache_));
  arena.recycle(std::move(readyCache_));
}

void MappingContext::enablePersistence() {
  persistent_ = true;
  // Stamp 0 can never equal a live generation (readyGen_ starts at 1).
  readyEpoch_.assign(machines_->size(), 0);
  readyStamp_.assign(machines_->size(), 0);
}

void MappingContext::rebind(sim::Time now) {
  if (now == now_) return;
  now_ = now;
  // Ready times are anchored at `now`; a new event invalidates every entry
  // in O(1) by bumping the generation.  The exec memo survives: it depends
  // only on the model.  On the (harmless, ~4 billion events) wrap to 0,
  // entries stamped 0 are refused by expectedReady anyway since stamp 0 is
  // re-assigned below before any lookup.
  if (++readyGen_ == 0) {
    readyStamp_.assign(readyStamp_.size(), 0);
    readyGen_ = 1;
  }
}

sim::Time MappingContext::expectedReady(sim::MachineId id) const {
  const auto idx = static_cast<std::size_t>(id);
  const sim::Machine& m = (*machines_)[idx];
  if (persistent_) {
    // Entry valid iff computed at this `now` (generation) for this exact
    // queue configuration (epoch) — the dirty-machine invalidation: after
    // a dispatch, only the touched machine misses.
    if (readyStamp_[idx] == readyGen_ && readyEpoch_[idx] == m.queueEpoch()) {
      return readyCache_[idx];
    }
  } else if (readyCache_[idx] >= 0.0) {
    return readyCache_[idx];
  }
  sim::Time ready;
  if (pctCache_ != nullptr) {
    // Same arithmetic as Machine::expectedReady, with the conditional
    // remaining mean of the running task memoized across events.
    ready = now_;
    if (m.busy()) {
      ready += pctCache_->remainingMean(m, now_, *pool_, *model_);
    }
    for (sim::TaskId t : m.queue()) {
      ready += expectedExec((*pool_)[t].type, id);
    }
  } else {
    ready = m.expectedReady(now_, *pool_, *model_);
  }
  readyCache_[idx] = ready;
  if (persistent_) {
    readyStamp_[idx] = readyGen_;
    readyEpoch_[idx] = m.queueEpoch();
  }
  return ready;
}

const double* MappingContext::execRow(sim::TaskType type) const {
  const auto t = static_cast<std::size_t>(type);
  const auto m = static_cast<std::size_t>(numMachines());
  double* row = execCache_.data() + t * m;
  if (execRowFilled_.size() <= t) {
    execRowFilled_.resize(
        static_cast<std::size_t>(model_->numTaskTypes()), 0);
  }
  if (!execRowFilled_[t]) {
    for (std::size_t j = 0; j < m; ++j) {
      if (row[j] < 0.0) {
        row[j] =
            model_->expectedExec(type, static_cast<sim::MachineId>(j));
      }
    }
    execRowFilled_[t] = 1;
  }
  return row;
}

sim::Time MappingContext::expectedCompletion(sim::TaskId task,
                                             sim::MachineId id) const {
  return expectedCompletionForType((*pool_)[task].type, id);
}

sim::Time MappingContext::expectedCompletionForType(sim::TaskType type,
                                                    sim::MachineId id) const {
  return expectedReady(id) + expectedExec(type, id);
}

std::size_t MappingContext::freeSlots(sim::MachineId id) const {
  const sim::Machine& m = (*machines_)[static_cast<std::size_t>(id)];
  // An offline or draining machine offers no capacity regardless of the
  // queue bound — the single gate that makes both mapping engines skip
  // churned and winding-down machines identically (their eligibility diffs
  // key off this value).
  if (!m.acceptsWork()) return 0;
  if (capacity_ == kUnbounded) return kUnbounded;
  const std::size_t inSystem = m.queueLength() + (m.busy() ? 1 : 0);
  return inSystem >= capacity_ ? 0 : capacity_ - inSystem;
}

double MappingContext::successChance(sim::TaskId task,
                                     sim::MachineId id) const {
  const sim::Task& t = (*pool_)[task];
  const sim::Machine& m = (*machines_)[static_cast<std::size_t>(id)];
  if (pctCache_ != nullptr) {
    return pctCache_->appendChance(m, now_, *pool_, *model_, t.type,
                                   t.deadline);
  }
  prob::PmfArena& arena = prob::PmfArena::local();
  prob::DiscretePmf base = m.tailPct(now_, *pool_, *model_);
  prob::DiscretePmf pct = prob::convolveInto(arena, base, model_->pet(t.type, id));
  arena.recycle(std::move(base));
  const double chance = pct.successProbability(t.deadline);
  arena.recycle(std::move(pct));
  return chance;
}

std::vector<double> MappingContext::successChances(sim::TaskId task) const {
  const sim::Task& t = (*pool_)[task];
  const int m = numMachines();
  std::vector<double> chances;
  chances.reserve(static_cast<std::size_t>(m));
  if (pctCache_ != nullptr) {
    // Memoized append entries answer each machine without re-convolving.
    for (sim::MachineId j = 0; j < m; ++j) {
      chances.push_back(pctCache_->appendChance(
          (*machines_)[static_cast<std::size_t>(j)], now_, *pool_, *model_,
          t.type, t.deadline));
    }
    return chances;
  }
  // Uncached: materialize every machine's appended PCT once into arena
  // buffers, then score the whole batch against the deadline in one pass.
  prob::PmfArena& arena = prob::PmfArena::local();
  std::vector<prob::DiscretePmf> pcts;
  pcts.reserve(static_cast<std::size_t>(m));
  std::vector<const prob::DiscretePmf*> ptrs;
  ptrs.reserve(static_cast<std::size_t>(m));
  for (sim::MachineId j = 0; j < m; ++j) {
    const sim::Machine& machine = (*machines_)[static_cast<std::size_t>(j)];
    prob::DiscretePmf base = machine.tailPct(now_, *pool_, *model_);
    pcts.push_back(prob::convolveInto(arena, base, model_->pet(t.type, j)));
    arena.recycle(std::move(base));
  }
  for (const prob::DiscretePmf& pct : pcts) ptrs.push_back(&pct);
  chances = prob::successProbabilityBatch(ptrs, t.deadline);
  for (prob::DiscretePmf& pct : pcts) arena.recycle(std::move(pct));
  return chances;
}

}  // namespace hcs::heuristics
