#include "heuristics/pct_cache.h"

#include <cmath>
#include <utility>

#include "prob/arena.h"
#include "prob/kernels.h"

namespace hcs::heuristics {

namespace {

/// Returns every PMF owned by a memo container to the arena before the
/// container is cleared — the buffers feed the replacement chain's kernels.
void recycleValues(prob::PmfArena& arena,
                   std::vector<std::optional<prob::DiscretePmf>>& slots) {
  for (auto& slot : slots) {
    if (slot.has_value()) {
      arena.recycle(std::move(*slot));
      slot.reset();
    }
  }
}

void recycleValues(prob::PmfArena& arena,
                   std::vector<prob::DiscretePmf>& chain) {
  for (prob::DiscretePmf& pmf : chain) arena.recycle(std::move(pmf));
  chain.clear();
}

}  // namespace

std::int64_t PctCache::binAt(const sim::Machine& m, sim::Time t) {
  // Mirrors Machine::binAt.
  return static_cast<std::int64_t>(std::llround(t / m.binWidth()));
}

std::int64_t PctCache::elapsedBinOf(const sim::Machine& m, sim::Time now) {
  if (!m.busy()) return -1;
  // Mirrors the flooring inside DiscretePmf::conditionalRemaining: two
  // `now` values in the same floored bin produce the same remaining PMF.
  return static_cast<std::int64_t>(
      std::floor((now - m.runningSince()) / m.binWidth() + 1e-9));
}

prob::DiscretePmf PctCache::relativeAvailability(
    const sim::Machine& m, sim::Time now, const sim::TaskPool& pool,
    const sim::ExecutionModel& model) {
  prob::PmfArena& arena = prob::PmfArena::local();
  if (!m.busy()) {
    return prob::pointMassInto(arena, 0, m.binWidth());
  }
  const sim::Task& task = pool[m.runningTask()];
  return prob::conditionalRemainingInto(arena, model.pet(task.type, m.id()),
                                        now - m.runningSince());
}

PctCache::MachineEntry& PctCache::entryFor(const sim::Machine& m,
                                           sim::Time /*now*/) {
  const auto idx = static_cast<std::size_t>(m.id());
  if (entries_.size() <= idx) entries_.resize(idx + 1);
  MachineEntry& entry = entries_[idx];
  if (!entry.valid || entry.epoch != m.queueEpoch()) {
    // Invalidate in place: the dead memo PMFs feed the arena (their buffers
    // become the replacement chain's kernels' outputs) and the containers
    // keep their capacity.
    prob::PmfArena& arena = prob::PmfArena::local();
    recycleValues(arena, entry.appendByType);
    if (entry.relTail.has_value()) {
      arena.recycle(std::move(*entry.relTail));
      entry.relTail.reset();
    }
    if (entry.relChain.has_value()) {
      recycleValues(arena, *entry.relChain);
      entry.relChain.reset();
    }
    entry.elapsedBin = -2;
    entry.chainElapsedBin = -2;
    entry.valid = true;
    entry.epoch = m.queueEpoch();
    entry.tracked = m.tailTracked();
  }
  return entry;
}

const prob::DiscretePmf& PctCache::appendEntry(const sim::Machine& m,
                                               sim::Time now,
                                               const sim::TaskPool& pool,
                                               const sim::ExecutionModel& model,
                                               sim::TaskType type,
                                               std::int64_t& anchorOut) {
  MachineEntry& entry = entryFor(m, now);
  const prob::DiscretePmf& pet = model.pet(type, m.id());
  prob::PmfArena& arena = prob::PmfArena::local();
  const auto typeIdx = static_cast<std::size_t>(type);
  if (entry.appendByType.size() <= typeIdx) {
    entry.appendByType.resize(
        static_cast<std::size_t>(model.numTaskTypes()));
  }

  if (entry.tracked) {
    // The Eq. 1 tail is anchored at absolute times and independent of
    // `now`: memoized convolutions survive until the next queue mutation.
    anchorOut = 0;
    std::optional<prob::DiscretePmf>& slot = entry.appendByType[typeIdx];
    if (slot.has_value()) {
      ++stats_.appendHits;
      return *slot;
    }
    ++stats_.appendMisses;
    slot = prob::convolveInto(arena, m.tailPctRef(now, pool, model), pet);
    return *slot;
  }

  // Untracked tail: the chain is conditioned at `now`, so memoize on the
  // relative grid (valid while the head's elapsed bin holds) and re-anchor
  // with a shift.  Convolution never reads bin offsets, so the shifted
  // result is bit-identical to the uncached absolute-grid computation.
  const std::int64_t elapsedBin = elapsedBinOf(m, now);
  if (entry.elapsedBin != elapsedBin || !entry.relTail.has_value()) {
    entry.elapsedBin = elapsedBin;
    recycleValues(arena, entry.appendByType);
    prob::DiscretePmf acc = relativeAvailability(m, now, pool, model);
    for (const sim::TaskType qType : m.queueTypes()) {
      prob::convolveInPlace(arena, acc, model.pet(qType, m.id()));
    }
    if (entry.relTail.has_value()) arena.recycle(std::move(*entry.relTail));
    entry.relTail = std::move(acc);
  }
  anchorOut = binAt(m, now);
  std::optional<prob::DiscretePmf>& slot = entry.appendByType[typeIdx];
  if (slot.has_value()) {
    ++stats_.appendHits;
    return *slot;
  }
  ++stats_.appendMisses;
  slot = prob::convolveInto(arena, *entry.relTail, pet);
  return *slot;
}

prob::DiscretePmf PctCache::appendPct(const sim::Machine& m, sim::Time now,
                                      const sim::TaskPool& pool,
                                      const sim::ExecutionModel& model,
                                      sim::TaskType type) {
  std::int64_t anchor = 0;
  const prob::DiscretePmf& rel =
      appendEntry(m, now, pool, model, type, anchor);
  return anchor == 0 ? rel : rel.shifted(anchor);
}

double PctCache::appendChance(const sim::Machine& m, sim::Time now,
                              const sim::TaskPool& pool,
                              const sim::ExecutionModel& model,
                              sim::TaskType type, sim::Time deadline) {
  std::int64_t anchor = 0;
  const prob::DiscretePmf& rel =
      appendEntry(m, now, pool, model, type, anchor);
  return rel.cdfShiftedBy(anchor, deadline);
}

PctCache::QueueChainView PctCache::queueChain(const sim::Machine& m,
                                              sim::Time now,
                                              const sim::TaskPool& pool,
                                              const sim::ExecutionModel& model) {
  MachineEntry& entry = entryFor(m, now);
  const std::int64_t elapsedBin = elapsedBinOf(m, now);
  if (!entry.relChain.has_value() || entry.chainElapsedBin != elapsedBin) {
    ++stats_.chainMisses;
    entry.chainElapsedBin = elapsedBin;
    prob::PmfArena& arena = prob::PmfArena::local();
    std::vector<prob::DiscretePmf> chain;
    if (entry.relChain.has_value()) {
      chain = std::move(*entry.relChain);
      recycleValues(arena, chain);
    }
    chain.reserve(m.queueLength());
    prob::DiscretePmf avail = relativeAvailability(m, now, pool, model);
    const prob::DiscretePmf* prev = &avail;
    for (const sim::TaskType qType : m.queueTypes()) {
      chain.push_back(
          prob::convolveInto(arena, *prev, model.pet(qType, m.id())));
      prev = &chain.back();
    }
    arena.recycle(std::move(avail));
    entry.relChain = std::move(chain);
  } else {
    ++stats_.chainHits;
  }
  return QueueChainView{*entry.relChain, binAt(m, now)};
}

std::optional<prob::DiscretePmf> PctCache::peekAppendPct(
    const sim::Machine& m, sim::Time now, sim::TaskType type) const {
  const auto idx = static_cast<std::size_t>(m.id());
  if (idx >= entries_.size()) return std::nullopt;
  const MachineEntry& entry = entries_[idx];
  if (!entry.valid || entry.epoch != m.queueEpoch()) return std::nullopt;
  const auto typeIdx = static_cast<std::size_t>(type);
  if (typeIdx >= entry.appendByType.size() ||
      !entry.appendByType[typeIdx].has_value()) {
    return std::nullopt;
  }
  if (entry.tracked) return *entry.appendByType[typeIdx];
  if (entry.elapsedBin != elapsedBinOf(m, now)) return std::nullopt;
  return entry.appendByType[typeIdx]->shifted(binAt(m, now));
}

void PctCache::noteAppend(const sim::Machine& m, sim::Time now,
                          const sim::TaskPool& pool,
                          const sim::ExecutionModel& model, sim::TaskType type,
                          std::uint64_t preEpoch) {
  const auto idx = static_cast<std::size_t>(m.id());
  if (idx >= entries_.size()) return;
  MachineEntry& entry = entries_[idx];
  if (!entry.valid || entry.epoch != preEpoch ||
      !entry.relChain.has_value() ||
      entry.chainElapsedBin != elapsedBinOf(m, now)) {
    return;  // nothing provably extendable; normal invalidation applies
  }
  std::vector<prob::DiscretePmf>& chain = *entry.relChain;
  // The chain must mirror the pre-dispatch queue (the new task is already
  // in the machine's queue).
  if (chain.size() + 1 != m.queueLength()) return;
  prob::PmfArena& arena = prob::PmfArena::local();
  const prob::DiscretePmf& pet = model.pet(type, m.id());
  if (chain.empty()) {
    prob::DiscretePmf avail = relativeAvailability(m, now, pool, model);
    chain.push_back(prob::convolveInto(arena, avail, pet));
    arena.recycle(std::move(avail));
  } else {
    chain.push_back(prob::convolveInto(arena, chain.back(), pet));
  }
  // Adopt the post-dispatch epoch for the surviving chain; the append/tail
  // memos were derived from the old tail and die with it.
  recycleValues(arena, entry.appendByType);
  if (entry.relTail.has_value()) {
    arena.recycle(std::move(*entry.relTail));
    entry.relTail.reset();
  }
  entry.elapsedBin = -2;
  entry.epoch = m.queueEpoch();
  entry.tracked = m.tailTracked();
}

std::vector<prob::DiscretePmf> PctCache::queuePcts(
    const sim::Machine& m, sim::Time now, const sim::TaskPool& pool,
    const sim::ExecutionModel& model) {
  if (m.queueLength() == 0) return {};
  const QueueChainView view = queueChain(m, now, pool, model);
  std::vector<prob::DiscretePmf> absolute;
  absolute.reserve(view.rel.size());
  for (const prob::DiscretePmf& rel : view.rel) {
    absolute.push_back(rel.shifted(view.anchor));
  }
  return absolute;
}

double PctCache::remainingMean(const sim::Machine& m, sim::Time now,
                               const sim::TaskPool& pool,
                               const sim::ExecutionModel& model) {
  // An idle machine has no running task and therefore no remaining work.
  if (!m.busy()) return 0.0;
  const sim::Task& task = pool[m.runningTask()];
  const std::int64_t elapsedBin = elapsedBinOf(m, now);
  // (type, elapsed bin) packed collision-free; the map is per machine.
  // Bins beyond 2^44 would alias, so such (absurdly long) runs bypass the
  // memo instead of risking a wrong value.
  if (elapsedBin < 0 || elapsedBin >= (std::int64_t{1} << 44) ||
      task.type < 0 || task.type >= (1 << 20)) {
    return model.pet(task.type, m.id())
        .conditionalRemainingMean(now - m.runningSince());
  }
  const auto idx = static_cast<std::size_t>(m.id());
  if (remainingMeans_.size() <= idx) remainingMeans_.resize(idx + 1);
  const std::uint64_t key = (static_cast<std::uint64_t>(task.type) << 44) |
                            static_cast<std::uint64_t>(elapsedBin);
  MeanMemo& memo = remainingMeans_[idx];
  if (memo.hasLast && memo.lastKey == key) {
    ++stats_.meanHits;
    return memo.lastValue;
  }
  double mean;
  if (auto it = memo.byKey.find(key); it != memo.byKey.end()) {
    ++stats_.meanHits;
    mean = it->second;
  } else {
    ++stats_.meanMisses;
    mean = model.pet(task.type, m.id())
               .conditionalRemainingMean(now - m.runningSince());
    memo.byKey.emplace(key, mean);
  }
  memo.hasLast = true;
  memo.lastKey = key;
  memo.lastValue = mean;
  return mean;
}

void PctCache::clear() {
  entries_.clear();
  remainingMeans_.clear();
}

}  // namespace hcs::heuristics
