#pragma once
// Immediate-mode mapping heuristics for heterogeneous systems (§III-B):
// RR, MET, MCT, KPB.

#include <memory>

#include "heuristics/heuristic.h"

namespace hcs::heuristics {

/// Round Robin: machines in cyclic order, ignoring load and affinity.
class RoundRobin final : public ImmediateHeuristic {
 public:
  std::string_view name() const override { return "RR"; }
  sim::MachineId selectMachine(const MappingContext& ctx,
                               sim::TaskId task) override;

 private:
  int next_ = 0;
};

/// Minimum Expected Execution Time: best task-machine affinity, ignoring
/// queue lengths (prone to piling onto fast machines).
class MinimumExpectedExecutionTime final : public ImmediateHeuristic {
 public:
  std::string_view name() const override { return "MET"; }
  sim::MachineId selectMachine(const MappingContext& ctx,
                               sim::TaskId task) override;
};

/// Minimum Expected Completion Time: accounts for queued work.
class MinimumExpectedCompletionTime final : public ImmediateHeuristic {
 public:
  std::string_view name() const override { return "MCT"; }
  sim::MachineId selectMachine(const MappingContext& ctx,
                               sim::TaskId task) override;
};

/// Maximum Chance (extension): places each task on the machine maximizing
/// its Eq. 2 chance of success — the full probabilistic criterion instead
/// of MCT's scalar completion estimate.  Ranks every machine through
/// MappingContext::successChances (one bulk Eq. 1/Eq. 2 pass over the
/// candidate set); ties resolve to the lowest machine id.
class MaxChance final : public ImmediateHeuristic {
 public:
  std::string_view name() const override { return "MaxChance"; }
  sim::MachineId selectMachine(const MappingContext& ctx,
                               sim::TaskId task) override;
};

/// K-Percent Best: MCT restricted to the K% of machines with the lowest
/// expected execution time for the task's type (a blend of MET and MCT).
class KPercentBest final : public ImmediateHeuristic {
 public:
  /// `kPercent` in (0, 1]; the candidate set size is
  /// max(1, round(kPercent * numMachines)).
  explicit KPercentBest(double kPercent = 0.375);

  std::string_view name() const override { return "KPB"; }
  sim::MachineId selectMachine(const MappingContext& ctx,
                               sim::TaskId task) override;
  double kPercent() const { return kPercent_; }

 private:
  double kPercent_;
};

}  // namespace hcs::heuristics
