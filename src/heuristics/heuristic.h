#pragma once
// Mapping-heuristic interfaces (Section III).
//
// Immediate-mode heuristics place each task the moment it arrives; batch-
// mode heuristics run at every mapping event over the batch (arrival) queue
// and fill free machine-queue slots using a two-phase virtual-queue process.
// The pruning mechanism (Section IV) plugs in *around* these interfaces
// without altering them — that separation is the paper's central design
// claim.

#include <span>
#include <string_view>
#include <vector>

#include "heuristics/context.h"
#include "sim/types.h"

namespace hcs::heuristics {

struct Assignment {
  sim::TaskId task = sim::kInvalidTask;
  sim::MachineId machine = sim::kInvalidMachine;

  bool operator==(const Assignment&) const = default;
};

/// Immediate-mode: decide a machine for one arriving task, now.
class ImmediateHeuristic {
 public:
  virtual ~ImmediateHeuristic() = default;

  virtual std::string_view name() const = 0;

  /// Returns the machine for `task`.  Immediate mode must always place the
  /// task (machine queues are unbounded in this mode).
  virtual sim::MachineId selectMachine(const MappingContext& ctx,
                                       sim::TaskId task) = 0;
};

/// Batch-mode: map any subset of the batch queue to free machine-queue
/// slots.  `batch` is ordered by arrival time.  Implementations must respect
/// ctx.freeSlots() per machine and must not assign one task twice.
class BatchHeuristic {
 public:
  virtual ~BatchHeuristic() = default;

  virtual std::string_view name() const = 0;

  virtual std::vector<Assignment> map(const MappingContext& ctx,
                                      std::span<const sim::TaskId> batch) = 0;

  /// True when this heuristic reads candidates straight from
  /// ctx.batchQueue() (live, non-deferred tasks in arrival order — the
  /// same set a span would carry).  The incremental engine then skips the
  /// per-round candidate-vector rebuild and passes an empty span; the
  /// heuristic keeps its derived structures in sync through the queue's
  /// mutation journal.  Heuristics that ignore the queue keep receiving
  /// the span either way.
  virtual bool consumesBatchQueue() const { return false; }
};

}  // namespace hcs::heuristics
