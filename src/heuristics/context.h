#pragma once
// The read-only view of the system a mapping heuristic (and the pruner)
// works against at one mapping event.

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "heuristics/pct_cache.h"
#include "sim/batch_queue.h"
#include "sim/machine.h"
#include "sim/task.h"
#include "sim/types.h"

namespace hcs::heuristics {

/// Snapshot facade over the scheduler's state at a mapping event.
///
/// Caches per-machine expected-ready times (the scalar part of completion
/// estimates) because every batch heuristic queries them O(batch x machines)
/// times per event.
///
/// Two lifetimes exist:
///  - Throwaway (the default): built for one batch round and discarded, the
///    reference engine's behavior.  The memo tables ride the PMF arena and
///    use a -1 sentinel for "unfilled".
///  - Persistent (enablePersistence() + rebind()): owned by the scheduler
///    for a whole trial.  The exec memo is valid for the trial (it depends
///    only on the fixed execution model); each ready-memo entry carries the
///    machine's queue epoch and the context's rebind generation, so after a
///    dispatch only the touched machine recomputes — the dirty-machine
///    contract of the incremental mapping engine.  Every query answers
///    bit-identically in both modes.
class MappingContext {
 public:
  /// `queueCapacity` caps tasks in a machine's system (running + waiting);
  /// use kUnbounded for immediate-mode resource allocation.
  static constexpr std::size_t kUnbounded =
      std::numeric_limits<std::size_t>::max();

  /// `pctCache`, when non-null, memoizes successChance() convolutions
  /// across mapping events (invalidated by the machines' queue epochs); it
  /// must outlive the context.  Results are identical with or without it.
  MappingContext(sim::Time now, const sim::TaskPool& pool,
                 const std::vector<sim::Machine>& machines,
                 const sim::ExecutionModel& model, std::size_t queueCapacity,
                 PctCache* pctCache = nullptr);

  /// Switches this context to the persistent (epoch-validated) lifetime.
  /// Call once, before the first query.
  void enablePersistence();
  bool persistent() const { return persistent_; }

  /// The incremental engine's arrival queue (persistent batch-mode
  /// contexts only, else null).  Heuristics that announce
  /// consumesBatchQueue() read candidates and their arrival order straight
  /// from it — and keep derived structures in sync through its mutation
  /// journal — instead of receiving a rebuilt span every round.
  void attachBatchQueue(const sim::BatchQueue* queue) { batchQueue_ = queue; }
  const sim::BatchQueue* batchQueue() const { return batchQueue_; }

  /// Re-anchors a persistent context to a new mapping event.  A changed
  /// `now` starts a new ready-memo generation; entries for machines whose
  /// queue epoch is unchanged within one generation stay valid across the
  /// event's rounds.  The exec memo is untouched — it is now-independent.
  void rebind(sim::Time now);

  sim::Time now() const { return now_; }
  const sim::TaskPool& pool() const { return *pool_; }
  const sim::ExecutionModel& model() const { return *model_; }
  int numMachines() const { return static_cast<int>(machines_->size()); }
  const sim::Machine& machine(sim::MachineId id) const {
    return (*machines_)[static_cast<std::size_t>(id)];
  }

  /// Expected time machine `id` drains its current work (cached).
  sim::Time expectedReady(sim::MachineId id) const;

  /// model().expectedExec with the virtual call devirtualized through a
  /// memo — the batch heuristics query the same (type, machine) pairs
  /// O(batch × machines) times per event.  In persistent mode the memo
  /// lives for the whole trial (the model never changes under a context).
  double expectedExec(sim::TaskType type, sim::MachineId id) const {
    const std::size_t slot = static_cast<std::size_t>(type) *
                                 static_cast<std::size_t>(numMachines()) +
                             static_cast<std::size_t>(id);
    double& value = execCache_[slot];
    if (value < 0.0) value = model_->expectedExec(type, id);
    return value;
  }

  /// The machine-contiguous row of expectedExec values for `type` — the
  /// SoA input of the phase-1 ECT kernel (prob::kernels::ectRow).  The
  /// first call for a type fills its whole row at once (persistent
  /// contexts amortize that over the trial, and the per-element -1
  /// sentinel check disappears from the hot scan); the values are the
  /// same memo expectedExec() reads, so the two access paths never
  /// disagree.
  const double* execRow(sim::TaskType type) const;

  MappingContext(MappingContext&&) = default;
  ~MappingContext();

  /// Expected completion time of `task` if appended to machine `id` now:
  /// expectedReady + E[PET] (the scalar estimate MCT/MM/MSD/MMU use).
  sim::Time expectedCompletion(sim::TaskId task, sim::MachineId id) const;
  sim::Time expectedCompletionForType(sim::TaskType type,
                                      sim::MachineId id) const;

  /// Free machine-queue slots (running task counts against capacity).
  std::size_t freeSlots(sim::MachineId id) const;
  std::size_t queueCapacity() const { return capacity_; }

  /// Chance of success (Eq. 2) of `task` if appended to machine `id` now:
  /// P[tail PCT * PET <= deadline].  The probabilistic estimate the pruner
  /// uses; heavier than expectedCompletion (one convolution).
  double successChance(sim::TaskId task, sim::MachineId id) const;

  /// Chance of success of `task` on *every* machine, element j equal to
  /// successChance(task, j).  Evaluates the whole candidate set in one pass
  /// (prob::successProbabilityBatch over arena-backed PCTs, or the memoized
  /// append entries when the PCT cache is attached) — the bulk query for
  /// chance-aware heuristics that rank all machines at once.
  std::vector<double> successChances(sim::TaskId task) const;

  PctCache* pctCache() const { return pctCache_; }

 private:
  sim::Time now_;
  const sim::TaskPool* pool_;
  const std::vector<sim::Machine>* machines_;
  const sim::ExecutionModel* model_;
  std::size_t capacity_;
  PctCache* pctCache_;
  const sim::BatchQueue* batchQueue_ = nullptr;
  bool persistent_ = false;
  /// Throwaway contexts are built per batch round — the memo buffers ride
  /// the PMF arena instead of paying heap allocations each time.  -1 =
  /// unfilled in both caches (ready times and execution means are never
  /// negative); the destructor recycles the buffers.
  mutable std::vector<double> readyCache_;
  mutable std::vector<double> execCache_;
  /// Per-type "whole execCache_ row filled" flags for execRow(); sized
  /// lazily on first use.
  mutable std::vector<char> execRowFilled_;
  /// Persistent-mode validity stamps for readyCache_: an entry holds iff
  /// its generation equals readyGen_ (same `now`) and its epoch equals the
  /// machine's current queue epoch (no mutation since it was filled).
  /// Empty in throwaway mode.
  mutable std::vector<std::uint64_t> readyEpoch_;
  mutable std::vector<std::uint32_t> readyStamp_;
  std::uint32_t readyGen_ = 1;
};

}  // namespace hcs::heuristics
