#include "heuristics/batch.h"

#include <algorithm>
#include <limits>
#include <vector>

namespace hcs::heuristics {

std::vector<Assignment> TwoPhaseBatchHeuristic::map(
    const MappingContext& ctx, std::span<const sim::TaskId> batch) {
  const int m = ctx.numMachines();
  std::vector<double> virtualReady(static_cast<std::size_t>(m));
  std::vector<std::size_t> slots(static_cast<std::size_t>(m));
  for (sim::MachineId j = 0; j < m; ++j) {
    virtualReady[static_cast<std::size_t>(j)] = ctx.expectedReady(j);
    slots[static_cast<std::size_t>(j)] = ctx.freeSlots(j);
  }
  std::vector<sim::TaskId> unmapped(batch.begin(), batch.end());
  std::vector<Assignment> result;

  // One candidate per machine per round.
  struct Candidate {
    sim::TaskId task = sim::kInvalidTask;
    Score score;
    std::size_t unmappedIndex = 0;
  };

  while (!unmapped.empty()) {
    const bool anySlot =
        std::any_of(slots.begin(), slots.end(),
                    [](std::size_t s) { return s > 0; });
    if (!anySlot) break;

    std::vector<Candidate> best(static_cast<std::size_t>(m));
    bool anyCandidate = false;
    for (std::size_t i = 0; i < unmapped.size(); ++i) {
      const sim::TaskId task = unmapped[i];
      const sim::TaskType type = ctx.pool()[task].type;
      // Phase 1: machine with the minimum expected completion time among
      // those with a free virtual slot (the runner-up is kept for
      // sufferage-style scores).
      constexpr double kNoSecond = std::numeric_limits<double>::infinity();
      Phase1Result phase1;
      phase1.secondEct = kNoSecond;
      for (sim::MachineId j = 0; j < m; ++j) {
        if (slots[static_cast<std::size_t>(j)] == 0) continue;
        const double ect = virtualReady[static_cast<std::size_t>(j)] +
                           ctx.expectedExec(type, j);
        if (phase1.machine == sim::kInvalidMachine) {
          phase1.machine = j;
          phase1.ect = ect;
        } else if (ect < phase1.ect) {
          phase1.secondEct = phase1.ect;
          phase1.machine = j;
          phase1.ect = ect;
        } else if (ect < phase1.secondEct) {
          phase1.secondEct = ect;
        }
      }
      if (phase1.machine == sim::kInvalidMachine) continue;
      if (phase1.secondEct == kNoSecond) phase1.secondEct = phase1.ect;
      // Phase 2 bookkeeping: keep the best-scoring candidate per machine.
      const Score score = phase2Score(ctx, task, phase1);
      Candidate& slot = best[static_cast<std::size_t>(phase1.machine)];
      if (slot.task == sim::kInvalidTask || score < slot.score) {
        slot = Candidate{task, score, i};
      }
      anyCandidate = true;
    }
    if (!anyCandidate) break;

    // Commit this round's winners (highest unmapped index first so the
    // pending erases do not invalidate the stored indices).
    std::vector<Candidate> winners;
    for (sim::MachineId j = 0; j < m; ++j) {
      Candidate& c = best[static_cast<std::size_t>(j)];
      if (c.task == sim::kInvalidTask) continue;
      result.push_back(Assignment{c.task, j});
      slots[static_cast<std::size_t>(j)] -= 1;
      virtualReady[static_cast<std::size_t>(j)] +=
          ctx.expectedExec(ctx.pool()[c.task].type, j);
      winners.push_back(c);
    }
    std::sort(winners.begin(), winners.end(),
              [](const Candidate& a, const Candidate& b) {
                return a.unmappedIndex > b.unmappedIndex;
              });
    for (const Candidate& c : winners) {
      unmapped.erase(unmapped.begin() +
                     static_cast<std::ptrdiff_t>(c.unmappedIndex));
    }
  }
  return result;
}

TwoPhaseBatchHeuristic::Score MinCompletionMinCompletion::phase2Score(
    const MappingContext& /*ctx*/, sim::TaskId /*task*/,
    const Phase1Result& phase1) const {
  return Score{phase1.ect, phase1.ect};
}

TwoPhaseBatchHeuristic::Score MinCompletionSoonestDeadline::phase2Score(
    const MappingContext& ctx, sim::TaskId task,
    const Phase1Result& phase1) const {
  return Score{ctx.pool()[task].deadline, phase1.ect};
}

TwoPhaseBatchHeuristic::Score MinCompletionMaxUrgency::phase2Score(
    const MappingContext& ctx, sim::TaskId task,
    const Phase1Result& phase1) const {
  const double slack = ctx.pool()[task].deadline - phase1.ect;
  // Eq. 3: urgency = 1 / slack.  Maximal urgency (lowest score) when the
  // deadline is already at or past the expected completion.
  const double urgency =
      slack <= 1e-12 ? std::numeric_limits<double>::infinity() : 1.0 / slack;
  return Score{-urgency, phase1.ect};
}

TwoPhaseBatchHeuristic::Score MaxMin::phase2Score(
    const MappingContext& /*ctx*/, sim::TaskId /*task*/,
    const Phase1Result& phase1) const {
  return Score{-phase1.ect, phase1.ect};
}

TwoPhaseBatchHeuristic::Score SufferageHeuristic::phase2Score(
    const MappingContext& /*ctx*/, sim::TaskId /*task*/,
    const Phase1Result& phase1) const {
  // Largest sufferage (second-best minus best completion) wins the slot.
  return Score{-(phase1.secondEct - phase1.ect), phase1.ect};
}

}  // namespace hcs::heuristics
