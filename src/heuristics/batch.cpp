#include "heuristics/batch.h"

#include <algorithm>
#include <limits>
#include <vector>

namespace hcs::heuristics {

template <class ScoreFn>
std::vector<Assignment> TwoPhaseBatchHeuristic::mapImpl(
    const MappingContext& ctx, std::span<const sim::TaskId> batch,
    const ScoreFn& score) {
  const int m = ctx.numMachines();
  virtualReady_.resize(static_cast<std::size_t>(m));
  slots_.resize(static_cast<std::size_t>(m));
  for (sim::MachineId j = 0; j < m; ++j) {
    virtualReady_[static_cast<std::size_t>(j)] = ctx.expectedReady(j);
    slots_[static_cast<std::size_t>(j)] = ctx.freeSlots(j);
  }
  unmapped_.assign(batch.begin(), batch.end());
  std::vector<Assignment> result;

  const auto numTypes = static_cast<std::size_t>(ctx.model().numTaskTypes());
  phase1ByType_.resize(numTypes);
  phase1Stale_.assign(numTypes, true);

  while (!unmapped_.empty()) {
    const bool anySlot =
        std::any_of(slots_.begin(), slots_.end(),
                    [](std::size_t s) { return s > 0; });
    if (!anySlot) break;

    // One candidate per machine per round.
    best_.assign(static_cast<std::size_t>(m), Candidate{});
    bool anyCandidate = false;
    for (std::size_t i = 0; i < unmapped_.size(); ++i) {
      const sim::TaskId task = unmapped_[i];
      const sim::TaskType type = ctx.pool()[task].type;
      // Phase 1: machine with the minimum expected completion time among
      // those with a free virtual slot (the runner-up is kept for
      // sufferage-style scores).  The scan's inputs are the virtual queue
      // state and the task's TYPE — every unmapped task of a type shares
      // the identical result, so each round scans once per live type
      // instead of once per task.
      const auto typeIdx = static_cast<std::size_t>(type);
      if (phase1Stale_[typeIdx]) {
        constexpr double kNoSecond = std::numeric_limits<double>::infinity();
        Phase1Result phase1;
        phase1.secondEct = kNoSecond;
        for (sim::MachineId j = 0; j < m; ++j) {
          if (slots_[static_cast<std::size_t>(j)] == 0) continue;
          const double ect = virtualReady_[static_cast<std::size_t>(j)] +
                             ctx.expectedExec(type, j);
          if (phase1.machine == sim::kInvalidMachine) {
            phase1.machine = j;
            phase1.ect = ect;
          } else if (ect < phase1.ect) {
            phase1.secondEct = phase1.ect;
            phase1.machine = j;
            phase1.ect = ect;
          } else if (ect < phase1.secondEct) {
            phase1.secondEct = ect;
          }
        }
        if (phase1.machine != sim::kInvalidMachine &&
            phase1.secondEct == kNoSecond) {
          phase1.secondEct = phase1.ect;
        }
        phase1ByType_[typeIdx] = phase1;
        phase1Stale_[typeIdx] = false;
      }
      const Phase1Result& phase1 = phase1ByType_[typeIdx];
      if (phase1.machine == sim::kInvalidMachine) continue;
      // Phase 2 bookkeeping: keep the best-scoring candidate per machine.
      const Score s = score(ctx, task, phase1);
      Candidate& slot = best_[static_cast<std::size_t>(phase1.machine)];
      if (slot.task == sim::kInvalidTask || s < slot.score) {
        slot = Candidate{task, s, i};
      }
      anyCandidate = true;
    }
    if (!anyCandidate) break;

    // Commit this round's winners (highest unmapped index first so the
    // pending erases do not invalidate the stored indices).
    winners_.clear();
    for (sim::MachineId j = 0; j < m; ++j) {
      Candidate& c = best_[static_cast<std::size_t>(j)];
      if (c.task == sim::kInvalidTask) continue;
      result.push_back(Assignment{c.task, j});
      slots_[static_cast<std::size_t>(j)] -= 1;
      virtualReady_[static_cast<std::size_t>(j)] +=
          ctx.expectedExec(ctx.pool()[c.task].type, j);
      winners_.push_back(c);
    }
    std::sort(winners_.begin(), winners_.end(),
              [](const Candidate& a, const Candidate& b) {
                return a.unmappedIndex > b.unmappedIndex;
              });
    for (const Candidate& c : winners_) {
      unmapped_.erase(unmapped_.begin() +
                      static_cast<std::ptrdiff_t>(c.unmappedIndex));
    }
    // The winners changed the virtual queue state every phase-1 scan reads.
    std::fill(phase1Stale_.begin(), phase1Stale_.end(), char{1});
  }
  return result;
}

std::vector<Assignment> MinCompletionMinCompletion::map(
    const MappingContext& ctx, std::span<const sim::TaskId> batch) {
  return mapImpl(ctx, batch,
                 [](const MappingContext&, sim::TaskId,
                    const Phase1Result& phase1) {
                   return Score{phase1.ect, phase1.ect};
                 });
}

std::vector<Assignment> MinCompletionSoonestDeadline::map(
    const MappingContext& ctx, std::span<const sim::TaskId> batch) {
  return mapImpl(ctx, batch,
                 [](const MappingContext& c, sim::TaskId task,
                    const Phase1Result& phase1) {
                   return Score{c.pool()[task].deadline, phase1.ect};
                 });
}

std::vector<Assignment> MinCompletionMaxUrgency::map(
    const MappingContext& ctx, std::span<const sim::TaskId> batch) {
  return mapImpl(ctx, batch,
                 [](const MappingContext& c, sim::TaskId task,
                    const Phase1Result& phase1) {
                   const double slack = c.pool()[task].deadline - phase1.ect;
                   // Eq. 3: urgency = 1 / slack.  Maximal urgency (lowest
                   // score) when the deadline is already at or past the
                   // expected completion.
                   const double urgency =
                       slack <= 1e-12
                           ? std::numeric_limits<double>::infinity()
                           : 1.0 / slack;
                   return Score{-urgency, phase1.ect};
                 });
}

std::vector<Assignment> MaxMin::map(const MappingContext& ctx,
                                    std::span<const sim::TaskId> batch) {
  return mapImpl(ctx, batch,
                 [](const MappingContext&, sim::TaskId,
                    const Phase1Result& phase1) {
                   return Score{-phase1.ect, phase1.ect};
                 });
}

std::vector<Assignment> SufferageHeuristic::map(
    const MappingContext& ctx, std::span<const sim::TaskId> batch) {
  return mapImpl(ctx, batch,
                 [](const MappingContext&, sim::TaskId,
                    const Phase1Result& phase1) {
                   // Largest sufferage (second-best minus best completion)
                   // wins the slot.
                   return Score{-(phase1.secondEct - phase1.ect), phase1.ect};
                 });
}

}  // namespace hcs::heuristics
