#include "heuristics/batch.h"

#include <algorithm>
#include <limits>
#include <vector>

#include "prob/kernels.h"


namespace hcs::heuristics {

TwoPhaseBatchHeuristic::Phase1Result TwoPhaseBatchHeuristic::scanPhase1(
    const MappingContext& ctx, sim::TaskType type) {
  constexpr double kNoSecond = std::numeric_limits<double>::infinity();
  const int m = ctx.numMachines();
  Phase1Result phase1;
  phase1.secondEct = kNoSecond;
  if (soaActive_) {
    if (eligibleCount_ == 1) {
      // One free lane (the oversubscribed steady state: each completion
      // frees one slot): the scan's result is that machine with no
      // runner-up — exactly what the loop below computes, minus the loop.
      const auto j = static_cast<sim::MachineId>(soleEligible_);
      const double ect = virtualReady_[soleEligible_] +
                         ctx.expectedExec(type, j);
      return Phase1Result{j, ect, ect, j};
    }
    // Machine-axis SoA: one kernel pass prices all machines off the
    // contiguous ready / exec / mask rows, then the top-2 selection walks
    // the dense result.  Masked lanes hold +inf and are skipped outright
    // (an all-masked row must yield "no machine", never an infinite-ECT
    // winner); the strict-less updates keep the earlier machine on ties —
    // the scalar loop's exact semantics.
    const auto mz = static_cast<std::size_t>(m);
    prob::kernels::ectRow(virtualReady_.data(), ctx.execRow(type),
                          slotMask_.data(), ectScratch_.data(), mz);
    for (std::size_t jz = 0; jz < mz; ++jz) {
      if (slotMask_[jz] != 0.0) continue;
      const auto j = static_cast<sim::MachineId>(jz);
      const double ect = ectScratch_[jz];
      if (phase1.machine == sim::kInvalidMachine) {
        phase1.machine = j;
        phase1.ect = ect;
      } else if (ect < phase1.ect) {
        phase1.secondEct = phase1.ect;
        phase1.secondMachine = phase1.machine;
        phase1.machine = j;
        phase1.ect = ect;
      } else if (ect < phase1.secondEct) {
        phase1.secondEct = ect;
        phase1.secondMachine = j;
      }
    }
  } else {
    for (sim::MachineId j = 0; j < m; ++j) {
      if (slots_[static_cast<std::size_t>(j)] == 0) continue;
      const double ect = virtualReady_[static_cast<std::size_t>(j)] +
                         ctx.expectedExec(type, j);
      if (phase1.machine == sim::kInvalidMachine) {
        phase1.machine = j;
        phase1.ect = ect;
      } else if (ect < phase1.ect) {
        phase1.secondEct = phase1.ect;
        phase1.secondMachine = phase1.machine;
        phase1.machine = j;
        phase1.ect = ect;
      } else if (ect < phase1.secondEct) {
        phase1.secondEct = ect;
        phase1.secondMachine = j;
      }
    }
  }
  if (phase1.machine != sim::kInvalidMachine &&
      phase1.secondEct == kNoSecond) {
    phase1.secondEct = phase1.ect;
    phase1.secondMachine = phase1.machine;
  }
  return phase1;
}

void TwoPhaseBatchHeuristic::markStaleForTouched() {
  // Covers every memoized type — including ones whose tasks are all
  // assigned or that found no eligible machine this call — so the table
  // stays truthful for the *next* call too.
  for (std::size_t t = 0; t < phase1ByType_.size(); ++t) {
    if (phase1Stale_[t]) continue;
    const Phase1Result& p1 = phase1ByType_[t];
    if (p1.machine == sim::kInvalidMachine) continue;  // no machine to touch
    if (touched_[static_cast<std::size_t>(p1.machine)] ||
        touched_[static_cast<std::size_t>(p1.secondMachine)]) {
      phase1Stale_[t] = 1;
    }
  }
}

void TwoPhaseBatchHeuristic::mergeImprovedMachine(Phase1Result& p1,
                                                  double ect,
                                                  sim::MachineId j) {
  // Lexicographic (ect, id) order — the exact tie semantics of the scan's
  // strict-less updates (equal ects keep the earlier machine).
  const auto before = [](double e1, sim::MachineId m1, double e2,
                         sim::MachineId m2) {
    return e1 != e2 ? e1 < e2 : m1 < m2;
  };
  if (p1.machine == sim::kInvalidMachine) {
    p1 = Phase1Result{j, ect, ect, j};
    return;
  }
  const bool hasSecond = p1.secondMachine != p1.machine;
  if (j == p1.machine) {
    // The winner got cheaper: still the winner; keep the no-second
    // fallback (secondEct mirrors ect) in step.
    p1.ect = ect;
    if (!hasSecond) p1.secondEct = ect;
    return;
  }
  if (hasSecond && j == p1.secondMachine) {
    if (before(ect, j, p1.ect, p1.machine)) {
      p1.secondEct = p1.ect;
      p1.secondMachine = p1.machine;
      p1.machine = j;
      p1.ect = ect;
    } else {
      p1.secondEct = ect;
    }
    return;
  }
  if (before(ect, j, p1.ect, p1.machine)) {
    p1.secondEct = p1.ect;
    p1.secondMachine = p1.machine;
    p1.machine = j;
    p1.ect = ect;
  } else if (!hasSecond ||
             before(ect, j, p1.secondEct, p1.secondMachine)) {
    p1.secondEct = ect;
    p1.secondMachine = j;
  }
}

void TwoPhaseBatchHeuristic::applyImprovements(const MappingContext& ctx,
                                               std::size_t typeIdx) {
  Phase1Result& p1 = phase1ByType_[typeIdx];
  for (const sim::MachineId j : improvedScratch_) {
    // A commit may have exhausted the machine's virtual slots since the
    // call-start diff; the scan would skip it, so the merge must too.  Its
    // ready time is read live for the same reason (net of any commits) —
    // an improved-then-committed machine merges at its current value,
    // which is exactly what a rescan would see.
    if (slots_[static_cast<std::size_t>(j)] == 0) continue;
    mergeImprovedMachine(
        p1,
        virtualReady_[static_cast<std::size_t>(j)] +
            ctx.expectedExec(static_cast<sim::TaskType>(typeIdx), j),
        j);
  }
}

template <class ScoreFn, class KeyFn, class SaturatesFn>
std::vector<Assignment> TwoPhaseBatchHeuristic::mapImpl(
    const MappingContext& ctx, std::span<const sim::TaskId> batch,
    const ScoreFn& score, const KeyFn& withinTypeKey,
    const SaturatesFn& saturates) {
  // An empty span from a persistent, queue-attached caller means "read the
  // candidates off the queue" — the incremental path.  An explicit span
  // (every throwaway context, and the adaptive engine's narrow rounds)
  // runs the reference evaluation, which still benefits from whatever
  // memos the context carries.
  return ctx.persistent() && ctx.batchQueue() != nullptr && batch.empty()
             ? mapIncremental(ctx, score, withinTypeKey, saturates)
             : mapReference(ctx, batch, score);
}

template <class ScoreFn>
std::vector<Assignment> TwoPhaseBatchHeuristic::mapReference(
    const MappingContext& ctx, std::span<const sim::TaskId> batch,
    const ScoreFn& score) {
  soaActive_ = false;
  if (ctx.persistent()) {
    // Adaptive narrow round: this evaluation virtually commits against its
    // own round state, which leaves the memoized phase-1 table (and its
    // lastReady_ baseline) inconsistent for the incremental path.  Poison
    // the signature so the next incremental call starts from a clean
    // table.  The bucket/journal sync state is untouched — the journal
    // keeps recording through narrow rounds, so it stays replayable.
    lastNumMachines_ = -1;
  }
  const int m = ctx.numMachines();
  virtualReady_.resize(static_cast<std::size_t>(m));
  slots_.resize(static_cast<std::size_t>(m));
  for (sim::MachineId j = 0; j < m; ++j) {
    virtualReady_[static_cast<std::size_t>(j)] = ctx.expectedReady(j);
    slots_[static_cast<std::size_t>(j)] = ctx.freeSlots(j);
  }
  unmapped_.assign(batch.begin(), batch.end());
  std::vector<Assignment> result;

  const auto numTypes = static_cast<std::size_t>(ctx.model().numTaskTypes());
  phase1ByType_.resize(numTypes);
  phase1Stale_.assign(numTypes, char{1});

  while (!unmapped_.empty()) {
    const bool anySlot =
        std::any_of(slots_.begin(), slots_.end(),
                    [](std::size_t s) { return s > 0; });
    if (!anySlot) break;

    // One candidate per machine per round.
    best_.assign(static_cast<std::size_t>(m), Candidate{});
    bool anyCandidate = false;
    for (std::size_t i = 0; i < unmapped_.size(); ++i) {
      const sim::TaskId task = unmapped_[i];
      const sim::TaskType type = ctx.pool()[task].type;
      // Phase 1: machine with the minimum expected completion time among
      // those with a free virtual slot (the runner-up is kept for
      // sufferage-style scores).  The scan's inputs are the virtual queue
      // state and the task's TYPE — every unmapped task of a type shares
      // the identical result, so each round scans once per live type
      // instead of once per task.
      const auto typeIdx = static_cast<std::size_t>(type);
      if (phase1Stale_[typeIdx]) {
        phase1ByType_[typeIdx] = scanPhase1(ctx, type);
        phase1Stale_[typeIdx] = 0;
      }
      const Phase1Result& phase1 = phase1ByType_[typeIdx];
      if (phase1.machine == sim::kInvalidMachine) continue;
      // Phase 2 bookkeeping: keep the best-scoring candidate per machine.
      const Score s = score(ctx, task, phase1);
      Candidate& slot = best_[static_cast<std::size_t>(phase1.machine)];
      if (slot.task == sim::kInvalidTask || s < slot.score) {
        slot = Candidate{task, s, i};
      }
      anyCandidate = true;
    }
    if (!anyCandidate) break;

    // Commit this round's winners (highest unmapped index first so the
    // pending erases do not invalidate the stored indices).
    winners_.clear();
    for (sim::MachineId j = 0; j < m; ++j) {
      Candidate& c = best_[static_cast<std::size_t>(j)];
      if (c.task == sim::kInvalidTask) continue;
      result.push_back(Assignment{c.task, j});
      slots_[static_cast<std::size_t>(j)] -= 1;
      virtualReady_[static_cast<std::size_t>(j)] +=
          ctx.expectedExec(ctx.pool()[c.task].type, j);
      winners_.push_back(c);
    }
    std::sort(winners_.begin(), winners_.end(),
              [](const Candidate& a, const Candidate& b) {
                return a.unmappedIndex > b.unmappedIndex;
              });
    for (const Candidate& c : winners_) {
      unmapped_.erase(unmapped_.begin() +
                      static_cast<std::ptrdiff_t>(c.unmappedIndex));
    }
    // The winners changed the virtual queue state every phase-1 scan reads.
    std::fill(phase1Stale_.begin(), phase1Stale_.end(), char{1});
  }
  return result;
}

template <class ScoreFn, class KeyFn, class SaturatesFn>
std::vector<Assignment> TwoPhaseBatchHeuristic::mapIncremental(
    const MappingContext& ctx, const ScoreFn& score,
    const KeyFn& withinTypeKey, const SaturatesFn& saturates) {
  const sim::BatchQueue& queue = *ctx.batchQueue();
  const int m = ctx.numMachines();
  const auto mz = static_cast<std::size_t>(m);
  const auto numTypes = static_cast<std::size_t>(ctx.model().numTaskTypes());
  virtualReady_.resize(mz);
  slots_.resize(mz);
  slotMask_.resize(mz);
  ectScratch_.resize(mz);
  eligibleCount_ = 0;
  for (sim::MachineId j = 0; j < m; ++j) {
    const auto jz = static_cast<std::size_t>(j);
    slots_[jz] = ctx.freeSlots(j);
    const bool eligible = slots_[jz] > 0;
    // Ready times are priced only for machines a scan can pick: a masked
    // lane's +inf poisons it before its ready value could matter, commits
    // and improvement merges only touch eligible machines, and the next
    // call's diff reads a lane's baseline only if the lane was eligible at
    // this call's END — which implies eligible (so priced) here at entry.
    // In the oversubscribed steady state this is the difference between
    // repricing the whole cluster per event and repricing the one machine
    // whose completion freed a slot.
    virtualReady_[jz] = eligible ? ctx.expectedReady(j) : 0.0;
    slotMask_[jz] =
        eligible ? 0.0 : std::numeric_limits<double>::infinity();
    eligibleCount_ += eligible ? 1u : 0u;
    if (eligible) soleEligible_ = jz;
  }
  soaActive_ = true;
  ++callGen_;

  // Decide which memoized phase-1 results survived the world's mutations
  // since the previous call: diff each machine's (ready, eligibility)
  // against the end of that call.  A *worsening* of a type's winner or
  // runner-up forces that type to rescan (the third-best is unknown);
  // every other worsening is invisible to the memo (a worsened non-winner
  // cannot overtake a minimum).  An *improvement* — a machine regained
  // slots or got cheaper — merges into each memo's top-2 in O(1): it can
  // only enter from outside the pair.
  const bool signatureChanged =
      lastModel_ != static_cast<const void*>(&ctx.model()) ||
      lastMachines_ != static_cast<const void*>(&ctx.machine(0)) ||
      lastNumMachines_ != m || phase1ByType_.size() != numTypes;
  if (signatureChanged) {
    phase1ByType_.assign(numTypes, Phase1Result{});
    phase1Stale_.assign(numTypes, char{1});
    typeMergeGen_.assign(numTypes, 0);
    improvedScratch_.clear();
    lastModel_ = &ctx.model();
    lastMachines_ = &ctx.machine(0);
    lastNumMachines_ = m;
  } else if (ctx.now() != lastNow_) {
    // A new mapping event re-anchors every ready time at the new `now`
    // (conditional remaining means shift non-linearly), so the per-machine
    // diff below lands in its "most machines moved" wholesale branch
    // anyway — take it directly and skip the compare loop.  Wholesale
    // staling is always identity-safe: a stale memo is rescanned, and a
    // rescan is the ground truth.
    std::fill(phase1Stale_.begin(), phase1Stale_.end(), char{1});
    improvedScratch_.clear();
  } else {
    touched_.assign(mz, 0);
    improvedScratch_.clear();
    bool anyWorsened = false;
    std::size_t changed = 0;
    for (std::size_t j = 0; j < mz; ++j) {
      const bool eligible = slots_[j] > 0;
      const bool wasEligible = static_cast<bool>(lastEligible_[j]);
      if (eligible &&
          (!wasEligible || virtualReady_[j] < lastReady_[j])) {
        improvedScratch_.push_back(static_cast<sim::MachineId>(j));
        ++changed;
      } else if (eligible != wasEligible ||
                 (eligible && virtualReady_[j] != lastReady_[j])) {
        touched_[j] = 1;
        anyWorsened = true;
        ++changed;
      }
    }
    if (changed * 2 > mz) {
      // Most machines moved (typical across events: `now` shifted every
      // ready time) — per-type bookkeeping costs more than letting the
      // live types lazily rescan.
      std::fill(phase1Stale_.begin(), phase1Stale_.end(), char{1});
      improvedScratch_.clear();
    } else if (anyWorsened) {
      markStaleForTouched();
    }
    // Improvements fold in lazily, per type, at first read (below).
  }

  // Keep the per-type buckets — each sorted by (key, arrival seq) so its
  // head is the type's best phase-2 candidate — in sync with the arrival
  // queue by replaying its mutation journal: O(what changed) per call,
  // never a wholesale rebuild.
  const auto entryLess = [](const BucketEntry& a, const BucketEntry& b) {
    if (a.key != b.key) return a.key < b.key;
    return a.seq < b.seq;
  };
  bool rebuild = syncedQueue_ != &queue ||
                 syncedResetGen_ != queue.resetGeneration() ||
                 syncedPool_ != static_cast<const void*>(&ctx.pool()) ||
                 buckets_.size() != numTypes;
  if (!rebuild) {
    const std::size_t journalEnd = queue.journalSize();
    for (std::size_t i = syncedJournalPos_; i < journalEnd && !rebuild;
         ++i) {
      const sim::BatchQueue::JournalEntry& je = queue.journalAt(i);
      const auto typeIdx =
          static_cast<std::size_t>(ctx.pool()[je.task].type);
      auto& bucket = buckets_[typeIdx];
      const BucketEntry probe{withinTypeKey(ctx, je.task), je.seq, je.task,
                              0};
      if (je.op == sim::BatchQueue::JournalEntry::Op::Push) {
        if (bucket.empty() || entryLess(bucket.back(), probe)) {
          bucket.push_back(probe);  // common case: appended in key order
        } else {
          const auto it = std::upper_bound(bucket.begin(), bucket.end(),
                                           probe, entryLess);
          const auto pos =
              static_cast<std::uint32_t>(it - bucket.begin());
          bucket.insert(it, probe);
          if (pos < bucketHead_[typeIdx]) bucketHead_[typeIdx] = pos;
        }
      } else {
        // Winners are bucket heads, so the task being removed is almost
        // always the first live entry — check it before paying for a
        // binary search over the whole bucket (seq stamps are unique, so
        // a matching head IS the entry).
        auto it = bucket.begin() + bucketHead_[typeIdx];
        if (bucketHead_[typeIdx] >= bucket.size() || it->seq != je.seq) {
          it = std::lower_bound(bucket.begin(), bucket.end(), probe,
                                entryLess);
        }
        if (it == bucket.end() || it->seq != je.seq ||
            it->assignedCall == kDeadEntry) {
          rebuild = true;  // defensive: journal and buckets disagree
        } else {
          // Tombstone, never memmove: the dead entry keeps its (key, seq)
          // so later binary searches stay exact.
          it->assignedCall = kDeadEntry;
          ++bucketDead_[typeIdx];
          std::uint32_t& head = bucketHead_[typeIdx];
          while (head < bucket.size() &&
                 bucket[head].assignedCall == kDeadEntry) {
            ++head;
          }
          if (bucketDead_[typeIdx] >= 16 &&
              bucketDead_[typeIdx] * 2 >
                  static_cast<std::uint32_t>(bucket.size())) {
            std::erase_if(bucket, [](const BucketEntry& e) {
              return e.assignedCall == kDeadEntry;
            });
            bucketDead_[typeIdx] = 0;
            bucketHead_[typeIdx] = 0;
          }
        }
      }
    }
    syncedJournalPos_ = journalEnd;
  }
  if (rebuild) {
    buckets_.resize(numTypes);
    for (auto& bucket : buckets_) bucket.clear();
    bucketHead_.assign(numTypes, 0);
    bucketDead_.assign(numTypes, 0);
    queue.forEachLive([&](sim::TaskId task, std::uint64_t seq) {
      buckets_[static_cast<std::size_t>(ctx.pool()[task].type)].push_back(
          BucketEntry{withinTypeKey(ctx, task), seq, task, 0});
    });
    for (auto& bucket : buckets_) {
      if (!std::is_sorted(bucket.begin(), bucket.end(), entryLess)) {
        std::sort(bucket.begin(), bucket.end(), entryLess);
      }
    }
    syncedQueue_ = &queue;
    syncedResetGen_ = queue.resetGeneration();
    syncedJournalPos_ = queue.journalSize();
    syncedPool_ = &ctx.pool();
  }

  cursor_ = bucketHead_;
  liveTypes_.clear();
  for (std::size_t t = 0; t < numTypes; ++t) {
    if (bucketHead_[t] < buckets_[t].size()) {
      liveTypes_.push_back(static_cast<int>(t));
    }
  }

  std::vector<Assignment> result;
  while (!liveTypes_.empty()) {
    // O(1) saturation guard (the reference's any_of over slots_): once the
    // last virtual slot fills, every phase-1 scan would come back empty —
    // skip the whole candidate sweep.  The memo table needs no repair: the
    // commit that drained the last slot stale-marked its dependents, and
    // staleness only ever forces a rescan, never a wrong answer.
    if (eligibleCount_ == 0) break;
    best_.assign(mz, Candidate{});
    bool anyCandidate = false;
    for (std::size_t k = 0; k < liveTypes_.size();) {
      const auto typeIdx = static_cast<std::size_t>(liveTypes_[k]);
      const auto& bucket = buckets_[typeIdx];
      std::uint32_t& cur = cursor_[typeIdx];
      // Entries assigned this call or deferred this event are out of the
      // running; both states are sticky for the rest of the call, so the
      // cursor never has to back up.
      while (cur < bucket.size() &&
             (bucket[cur].assignedCall == callGen_ ||
              bucket[cur].assignedCall == kDeadEntry ||
              queue.deferredThisEvent(bucket[cur].task))) {
        ++cur;
      }
      if (cur == bucket.size()) {
        // Type exhausted for this call; its memo stays live (and keeps
        // being stale-marked) for the next one.
        liveTypes_[k] = liveTypes_.back();
        liveTypes_.pop_back();
        continue;
      }
      if (phase1Stale_[typeIdx]) {
        phase1ByType_[typeIdx] =
            scanPhase1(ctx, static_cast<sim::TaskType>(typeIdx));
        phase1Stale_[typeIdx] = 0;
        typeMergeGen_[typeIdx] = callGen_;
      } else if (typeMergeGen_[typeIdx] != callGen_) {
        if (!improvedScratch_.empty()) applyImprovements(ctx, typeIdx);
        typeMergeGen_[typeIdx] = callGen_;
      }
      const Phase1Result& phase1 = phase1ByType_[typeIdx];
      if (phase1.machine == sim::kInvalidMachine) {
        // No machine has slots for this type; virtual slots only shrink
        // within a call, so it is out for the rest of it.
        liveTypes_[k] = liveTypes_.back();
        liveTypes_.pop_back();
        continue;
      }
      // The type's best candidate.  Normally the head: the bucket is
      // sorted by (key, arrival seq) and the score is monotone in the
      // key, so the head carries the type's minimal (score, arrival)
      // pair.  But when the head's score SATURATES (MMU collapses every
      // hopeless slack to -inf urgency), all saturated tasks tie on score
      // and the reference breaks the tie by arrival order alone — so scan
      // the saturated prefix (contiguous: keys ascend, saturation is
      // downward-closed in the key) for the earliest arrival.
      std::uint32_t chosen = cur;
      if (saturates(bucket[cur].key, phase1)) {
        for (std::uint32_t i = cur + 1;
             i < bucket.size() && saturates(bucket[i].key, phase1); ++i) {
          if (bucket[i].assignedCall != callGen_ &&
              bucket[i].assignedCall != kDeadEntry &&
              bucket[i].seq < bucket[chosen].seq &&
              !queue.deferredThisEvent(bucket[i].task)) {
            chosen = i;
          }
        }
      }
      const sim::TaskId task = bucket[chosen].task;
      const Score s = score(ctx, task, phase1);
      // Exactly the reference's "first minimal wins": minimize
      // (score, arrival order) — per-machine minimum over the per-type
      // minima equals the reference's minimum over all candidates.
      Candidate& slot = best_[static_cast<std::size_t>(phase1.machine)];
      if (slot.task == sim::kInvalidTask || s < slot.score ||
          (!(slot.score < s) && bucket[chosen].seq < slot.unmappedIndex)) {
        slot = Candidate{task, s,
                         static_cast<std::size_t>(bucket[chosen].seq),
                         static_cast<int>(typeIdx), chosen};
      }
      anyCandidate = true;
      ++k;
    }
    if (!anyCandidate) break;

    // Commit this round's winners in machine order (the order the
    // reference emits) and invalidate exactly their dependents.
    touched_.assign(mz, 0);
    for (sim::MachineId j = 0; j < m; ++j) {
      const Candidate& c = best_[static_cast<std::size_t>(j)];
      if (c.task == sim::kInvalidTask) continue;
      result.push_back(Assignment{c.task, j});
      slots_[static_cast<std::size_t>(j)] -= 1;
      if (slots_[static_cast<std::size_t>(j)] == 0) {
        slotMask_[static_cast<std::size_t>(j)] =
            std::numeric_limits<double>::infinity();
        if (--eligibleCount_ == 1) {
          for (std::size_t jz = 0; jz < mz; ++jz) {
            if (slotMask_[jz] == 0.0) soleEligible_ = jz;
          }
        }
      }
      virtualReady_[static_cast<std::size_t>(j)] +=
          ctx.expectedExec(static_cast<sim::TaskType>(c.bucketType), j);
      buckets_[static_cast<std::size_t>(c.bucketType)][c.bucketIndex]
          .assignedCall = callGen_;
      touched_[static_cast<std::size_t>(j)] = 1;
    }
    markStaleForTouched();
  }

  // Types that never folded this call's improvements lose them for good
  // (the improved list dies with the call) — their memos must rescan on
  // next read.
  if (!improvedScratch_.empty()) {
    for (std::size_t t = 0; t < phase1ByType_.size(); ++t) {
      if (!phase1Stale_[t] && typeMergeGen_[t] != callGen_) {
        phase1Stale_[t] = 1;
      }
    }
  }

  // The baseline the next call diffs against: this call's final virtual
  // queue state (a dispatch turns the virtual assignment real, so an
  // unchanged machine reads back the same ready time).
  lastReady_.assign(virtualReady_.begin(), virtualReady_.end());
  lastEligible_.resize(mz);
  for (std::size_t j = 0; j < mz; ++j) {
    lastEligible_[j] = slots_[j] > 0 ? 1 : 0;
  }
  lastNow_ = ctx.now();
  return result;
}

std::vector<Assignment> MinCompletionMinCompletion::map(
    const MappingContext& ctx, std::span<const sim::TaskId> batch) {
  return mapImpl(ctx, batch,
                 [](const MappingContext&, sim::TaskId,
                    const Phase1Result& phase1) {
                   return Score{phase1.ect, phase1.ect};
                 },
                 [](const MappingContext&, sim::TaskId) { return 0.0; },
                 [](double, const Phase1Result&) { return false; });
}

std::vector<Assignment> MinCompletionSoonestDeadline::map(
    const MappingContext& ctx, std::span<const sim::TaskId> batch) {
  return mapImpl(ctx, batch,
                 [](const MappingContext& c, sim::TaskId task,
                    const Phase1Result& phase1) {
                   return Score{c.pool()[task].deadline, phase1.ect};
                 },
                 [](const MappingContext& c, sim::TaskId task) {
                   return c.pool()[task].deadline;
                 },
                 [](double, const Phase1Result&) { return false; });
}

std::vector<Assignment> MinCompletionMaxUrgency::map(
    const MappingContext& ctx, std::span<const sim::TaskId> batch) {
  return mapImpl(ctx, batch,
                 [](const MappingContext& c, sim::TaskId task,
                    const Phase1Result& phase1) {
                   const double slack = c.pool()[task].deadline - phase1.ect;
                   // Eq. 3: urgency = 1 / slack.  Maximal urgency (lowest
                   // score) when the deadline is already at or past the
                   // expected completion.
                   const double urgency =
                       slack <= 1e-12
                           ? std::numeric_limits<double>::infinity()
                           : 1.0 / slack;
                   return Score{-urgency, phase1.ect};
                 },
                 // -urgency is monotone non-decreasing in the deadline for
                 // any fixed ECT (and saturates to -inf for hopeless
                 // slack), so the deadline orders a type exactly as the
                 // score does.
                 [](const MappingContext& c, sim::TaskId task) {
                   return c.pool()[task].deadline;
                 },
                 // The plateau of Eq. 3: every deadline at or under
                 // ect + eps is "maximally urgent" and scores exactly
                 // -inf — the same arithmetic as the score lambda.
                 [](double key, const Phase1Result& phase1) {
                   return key - phase1.ect <= 1e-12;
                 });
}

std::vector<Assignment> MaxMin::map(const MappingContext& ctx,
                                    std::span<const sim::TaskId> batch) {
  return mapImpl(ctx, batch,
                 [](const MappingContext&, sim::TaskId,
                    const Phase1Result& phase1) {
                   return Score{-phase1.ect, phase1.ect};
                 },
                 [](const MappingContext&, sim::TaskId) { return 0.0; },
                 [](double, const Phase1Result&) { return false; });
}

std::vector<Assignment> SufferageHeuristic::map(
    const MappingContext& ctx, std::span<const sim::TaskId> batch) {
  return mapImpl(ctx, batch,
                 [](const MappingContext&, sim::TaskId,
                    const Phase1Result& phase1) {
                   // Largest sufferage (second-best minus best completion)
                   // wins the slot.
                   return Score{-(phase1.secondEct - phase1.ect), phase1.ect};
                 },
                 [](const MappingContext&, sim::TaskId) { return 0.0; },
                 [](double, const Phase1Result&) { return false; });
}

}  // namespace hcs::heuristics
