#pragma once
// Incremental memoization of PCT queries (Eq. 1) across mapping events.
//
// Every mapping event the pruner and the deferring check ask the same two
// questions about machine queues:
//
//   1. "What is the PCT of appending a task of type k to machine j now?"
//      (tailPct ⊛ PET — the deferring check of Fig. 5 step 10), and
//   2. "What is the PCT of each task already queued on machine j, freshly
//      conditioned on the head task's elapsed execution?"  (the proactive
//      dropping walk of Fig. 5 steps 4-6).
//
// Both answers only change when the machine's (running, queue) configuration
// changes — which sim::Machine announces through its queue-epoch counter —
// or, for the now-conditioned variants, when the head task's elapsed time
// crosses a grid bin.  PctCache keys the memoized PMFs on exactly
// (machine, queue-epoch, head-task elapsed bin) and therefore returns
// bit-identical results to the uncached recomputation: convolution operates
// on bin *contents* while absolute anchoring only shifts bin *offsets*, so
// chains cached on a relative grid can be re-anchored to any `now` with a
// cheap shift.

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "prob/pmf.h"
#include "sim/machine.h"
#include "sim/task.h"
#include "sim/types.h"

namespace hcs::heuristics {

class PctCache {
 public:
  struct Stats {
    std::uint64_t appendHits = 0;
    std::uint64_t appendMisses = 0;
    std::uint64_t chainHits = 0;
    std::uint64_t chainMisses = 0;
    std::uint64_t meanHits = 0;
    std::uint64_t meanMisses = 0;

    std::uint64_t hits() const { return appendHits + chainHits + meanHits; }
    std::uint64_t misses() const {
      return appendMisses + chainMisses + meanMisses;
    }
  };

  /// PCT of appending a task of `type` to machine `m` at `now`; equals
  /// m.tailPct(now, pool, model).convolve(model.pet(type, m.id())) exactly.
  prob::DiscretePmf appendPct(const sim::Machine& m, sim::Time now,
                              const sim::TaskPool& pool,
                              const sim::ExecutionModel& model,
                              sim::TaskType type);

  /// Chance of success (Eq. 2) of that same append:
  /// appendPct(...).successProbability(deadline), but evaluated on the
  /// memoized PMF in place — the hot path pays no PMF copy.
  double appendChance(const sim::Machine& m, sim::Time now,
                      const sim::TaskPool& pool,
                      const sim::ExecutionModel& model, sim::TaskType type,
                      sim::Time deadline);

  /// The proactive-pass chain of machine `m` on the relative grid plus the
  /// shift that re-anchors it to absolute time: rel[i].shifted(anchor) is
  /// the PCT of queued task i (all earlier queued tasks kept), conditioned
  /// on the running task's elapsed execution at `now`.
  ///
  /// The reference is valid only until the next call on this cache (machine
  /// entries live in one growable arena).
  struct QueueChainView {
    const std::vector<prob::DiscretePmf>& rel;
    std::int64_t anchor;
  };
  QueueChainView queueChain(const sim::Machine& m, sim::Time now,
                            const sim::TaskPool& pool,
                            const sim::ExecutionModel& model);

  /// Absolute-time PCTs of machine `m`'s queued tasks (element i is the PCT
  /// of queued task i with every earlier queued task kept), conditioned on
  /// the running task's elapsed execution at `now` — the chain the proactive
  /// dropping pass walks.  Empty when the queue is empty.
  std::vector<prob::DiscretePmf> queuePcts(const sim::Machine& m,
                                           sim::Time now,
                                           const sim::TaskPool& pool,
                                           const sim::ExecutionModel& model);

  /// appendPct, but only if the memo is already hot for `m`'s current
  /// configuration — never computes a convolution.  Lets a dispatch reuse
  /// the PMF the deferring check just produced without *forcing* one when
  /// the check was decided from support bounds alone (the machine's lazy
  /// pending-append covers the cold case bit-identically, and only if the
  /// tail is ever read).
  std::optional<prob::DiscretePmf> peekAppendPct(const sim::Machine& m,
                                                 sim::Time now,
                                                 sim::TaskType type) const;

  /// A task of `type` was just appended to machine `m`'s queue (the
  /// machine's epoch moved from `preEpoch` to its current value by that
  /// one dispatch).  When the memoized proactive chain was valid for
  /// `preEpoch` at the same head-elapsed bin, extend it by ONE convolution
  /// — chain ⊛ PET appended at the right of the same left-fold a rebuild
  /// would do, so the extended chain is bit-identical to a fresh one —
  /// instead of letting the epoch bump discard the whole thing (the
  /// append/tail memos genuinely died with the tail; they are still
  /// cleared).  No-op when the chain cannot be proven extendable.
  void noteAppend(const sim::Machine& m, sim::Time now,
                  const sim::TaskPool& pool, const sim::ExecutionModel& model,
                  sim::TaskType type, std::uint64_t preEpoch);

  /// Memoized pet(running task).conditionalRemainingMean(now − runStart):
  /// the expensive term of a busy machine's expected-ready estimate.  Keyed
  /// on (task type, machine, elapsed bin) — exact because the conditional
  /// remaining PMF only depends on the floored elapsed bin.
  double remainingMean(const sim::Machine& m, sim::Time now,
                       const sim::TaskPool& pool,
                       const sim::ExecutionModel& model);

  const Stats& stats() const { return stats_; }
  void resetStats() { stats_ = Stats{}; }
  void clear();

 private:
  struct MachineEntry {
    bool valid = false;
    std::uint64_t epoch = 0;
    bool tracked = false;
    /// Head-task elapsed-execution bin (floored, as conditionalRemaining
    /// floors; -1 when the machine is not busy) at which the untracked
    /// append entries / the proactive chain were computed.  The tracked
    /// Eq. 1 tail ignores it.  -2 = not yet computed.
    std::int64_t elapsedBin = -2;
    std::int64_t chainElapsedBin = -2;

    /// Memoized tailPct ⊛ PET per task type, indexed directly by type (task
    /// types are a small dense range — a flat array beats hashing on the
    /// per-candidate path).  On an absolute grid when the machine's Eq. 1
    /// tail is tracked (the tail itself is absolute and independent of
    /// `now`); otherwise on a grid relative to `now`'s bin.
    std::vector<std::optional<prob::DiscretePmf>> appendByType;

    /// Memoized untracked tail (relative grid), feeding appendByType misses.
    std::optional<prob::DiscretePmf> relTail;

    /// Memoized proactive-pass chain prefixes on a grid relative to `now`'s
    /// bin: relChain[i] = remaining(elapsed) ⊛ PET(q_0) ⊛ … ⊛ PET(q_i).
    std::optional<std::vector<prob::DiscretePmf>> relChain;
  };

  MachineEntry& entryFor(const sim::Machine& m, sim::Time now);
  static std::int64_t binAt(const sim::Machine& m, sim::Time t);
  static std::int64_t elapsedBinOf(const sim::Machine& m, sim::Time now);

  /// Locates (computing on miss) the memoized append PMF for `type`;
  /// `anchorOut` receives the shift to absolute time (0 when the entry is
  /// already absolute, i.e. the machine's Eq. 1 tail is tracked).
  const prob::DiscretePmf& appendEntry(const sim::Machine& m, sim::Time now,
                                       const sim::TaskPool& pool,
                                       const sim::ExecutionModel& model,
                                       sim::TaskType type,
                                       std::int64_t& anchorOut);

  /// Availability PCT on the relative grid (absolute = shifted by
  /// binAt(now)); mirrors Machine::availabilityPct exactly.
  static prob::DiscretePmf relativeAvailability(const sim::Machine& m,
                                                sim::Time now,
                                                const sim::TaskPool& pool,
                                                const sim::ExecutionModel& model);

  /// Per machine: (type, elapsed bin) → conditional remaining mean, with a
  /// one-entry front cache — expectedReady polls every machine at every
  /// mapping event, and consecutive events usually land in the same elapsed
  /// bin, so most lookups never touch the hash table.
  struct MeanMemo {
    bool hasLast = false;
    std::uint64_t lastKey = 0;
    double lastValue = 0.0;
    std::unordered_map<std::uint64_t, double> byKey;
  };

  std::vector<MachineEntry> entries_;
  std::vector<MeanMemo> remainingMeans_;
  Stats stats_;
};

}  // namespace hcs::heuristics
