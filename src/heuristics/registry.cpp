#include "heuristics/registry.h"

#include <algorithm>
#include <stdexcept>

namespace hcs::heuristics {

namespace {
const std::vector<std::string> kImmediate = {"RR", "MET", "MCT", "KPB",
                                             "MaxChance"};
const std::vector<std::string> kBatchHetero = {"MM", "MSD", "MMU", "MaxMin",
                                               "Sufferage"};
const std::vector<std::string> kHomogeneous = {"FCFS-RR", "EDF", "SJF"};

bool contains(const std::vector<std::string>& names, const std::string& n) {
  return std::find(names.begin(), names.end(), n) != names.end();
}
}  // namespace

std::unique_ptr<ImmediateHeuristic> makeImmediate(
    const std::string& name, const HeuristicOptions& options) {
  if (name == "RR") return std::make_unique<RoundRobin>();
  if (name == "MET") return std::make_unique<MinimumExpectedExecutionTime>();
  if (name == "MCT") return std::make_unique<MinimumExpectedCompletionTime>();
  if (name == "KPB") {
    return std::make_unique<KPercentBest>(options.kpbPercent);
  }
  if (name == "MaxChance") return std::make_unique<MaxChance>();
  throw std::invalid_argument("makeImmediate: unknown heuristic " + name);
}

std::unique_ptr<BatchHeuristic> makeBatch(const std::string& name,
                                          const HeuristicOptions& /*options*/) {
  if (name == "MM") return std::make_unique<MinCompletionMinCompletion>();
  if (name == "MSD") return std::make_unique<MinCompletionSoonestDeadline>();
  if (name == "MMU") return std::make_unique<MinCompletionMaxUrgency>();
  if (name == "MaxMin") return std::make_unique<MaxMin>();
  if (name == "Sufferage") return std::make_unique<SufferageHeuristic>();
  if (name == "FCFS-RR") return std::make_unique<FcfsRoundRobin>();
  if (name == "EDF") return std::make_unique<EarliestDeadlineFirst>();
  if (name == "SJF") return std::make_unique<ShortestJobFirst>();
  throw std::invalid_argument("makeBatch: unknown heuristic " + name);
}

bool isImmediateHeuristic(const std::string& name) {
  return contains(kImmediate, name);
}

bool isBatchHeuristic(const std::string& name) {
  return contains(kBatchHetero, name) || contains(kHomogeneous, name);
}

const std::vector<std::string>& immediateHeuristicNames() {
  return kImmediate;
}

const std::vector<std::string>& batchHeteroHeuristicNames() {
  return kBatchHetero;
}

const std::vector<std::string>& homogeneousHeuristicNames() {
  return kHomogeneous;
}

}  // namespace hcs::heuristics
