#include "heuristics/homogeneous.h"

#include <algorithm>
#include <vector>

namespace hcs::heuristics {

namespace {

/// Assigns tasks in the given order, each to its minimum expected completion
/// time machine, tracking virtual ready times and slots — the shared
/// second half of EDF and SJF.
std::vector<Assignment> greedyMinCompletion(
    const MappingContext& ctx, const std::vector<sim::TaskId>& order) {
  const int m = ctx.numMachines();
  std::vector<double> virtualReady(static_cast<std::size_t>(m));
  std::vector<std::size_t> slots(static_cast<std::size_t>(m));
  for (sim::MachineId j = 0; j < m; ++j) {
    virtualReady[static_cast<std::size_t>(j)] = ctx.expectedReady(j);
    slots[static_cast<std::size_t>(j)] = ctx.freeSlots(j);
  }
  std::vector<Assignment> result;
  for (sim::TaskId task : order) {
    const sim::TaskType type = ctx.pool()[task].type;
    sim::MachineId bestMachine = sim::kInvalidMachine;
    double bestEct = 0.0;
    for (sim::MachineId j = 0; j < m; ++j) {
      if (slots[static_cast<std::size_t>(j)] == 0) continue;
      const double ect = virtualReady[static_cast<std::size_t>(j)] +
                         ctx.expectedExec(type, j);
      if (bestMachine == sim::kInvalidMachine || ect < bestEct) {
        bestMachine = j;
        bestEct = ect;
      }
    }
    if (bestMachine == sim::kInvalidMachine) break;  // all queues full
    result.push_back(Assignment{task, bestMachine});
    slots[static_cast<std::size_t>(bestMachine)] -= 1;
    virtualReady[static_cast<std::size_t>(bestMachine)] +=
        ctx.expectedExec(type, bestMachine);
  }
  return result;
}

/// Cheapest expected execution across machines; on a homogeneous cluster
/// this is simply the type's execution mean.
double minExpectedExec(const MappingContext& ctx, sim::TaskType type) {
  double best = ctx.expectedExec(type, 0);
  for (sim::MachineId j = 1; j < ctx.numMachines(); ++j) {
    best = std::min(best, ctx.expectedExec(type, j));
  }
  return best;
}

}  // namespace

std::vector<Assignment> FcfsRoundRobin::map(
    const MappingContext& ctx, std::span<const sim::TaskId> batch) {
  const int m = ctx.numMachines();
  std::vector<std::size_t> slots(static_cast<std::size_t>(m));
  for (sim::MachineId j = 0; j < m; ++j) {
    slots[static_cast<std::size_t>(j)] = ctx.freeSlots(j);
  }
  std::vector<Assignment> result;
  for (sim::TaskId task : batch) {
    // Next machine in cyclic order with a free slot.
    int probes = 0;
    while (probes < m && slots[static_cast<std::size_t>(next_)] == 0) {
      next_ = (next_ + 1) % m;
      ++probes;
    }
    if (probes == m) break;  // no machine has space
    result.push_back(Assignment{task, next_});
    slots[static_cast<std::size_t>(next_)] -= 1;
    next_ = (next_ + 1) % m;
  }
  return result;
}

std::vector<Assignment> EarliestDeadlineFirst::map(
    const MappingContext& ctx, std::span<const sim::TaskId> batch) {
  std::vector<sim::TaskId> order(batch.begin(), batch.end());
  std::sort(order.begin(), order.end(),
            [&](sim::TaskId a, sim::TaskId b) {
              const auto& ta = ctx.pool()[a];
              const auto& tb = ctx.pool()[b];
              if (ta.deadline != tb.deadline) return ta.deadline < tb.deadline;
              return a < b;
            });
  return greedyMinCompletion(ctx, order);
}

std::vector<Assignment> ShortestJobFirst::map(
    const MappingContext& ctx, std::span<const sim::TaskId> batch) {
  std::vector<sim::TaskId> order(batch.begin(), batch.end());
  std::sort(order.begin(), order.end(),
            [&](sim::TaskId a, sim::TaskId b) {
              const double ea = minExpectedExec(ctx, ctx.pool()[a].type);
              const double eb = minExpectedExec(ctx, ctx.pool()[b].type);
              if (ea != eb) return ea < eb;
              return a < b;
            });
  return greedyMinCompletion(ctx, order);
}

}  // namespace hcs::heuristics
