#pragma once
// Batch-mode mapping heuristics for homogeneous systems (§III-D):
// FCFS-RR, EDF, SJF.
//
// These run against the same MappingContext as the heterogeneous batch
// heuristics — homogeneity comes from the execution model (all machines
// bound to the same PET column), not from special-casing here.

#include "heuristics/heuristic.h"

namespace hcs::heuristics {

/// First Come First Served - Round Robin: tasks in arrival order, each to
/// the next machine (cyclically) with a free queue slot.
class FcfsRoundRobin final : public BatchHeuristic {
 public:
  std::string_view name() const override { return "FCFS-RR"; }
  std::vector<Assignment> map(const MappingContext& ctx,
                              std::span<const sim::TaskId> batch) override;

 private:
  int next_ = 0;
};

/// Earliest Deadline First: the arrival queue sorted by deadline; the head
/// task goes to the machine with the minimum expected completion time.
class EarliestDeadlineFirst final : public BatchHeuristic {
 public:
  std::string_view name() const override { return "EDF"; }
  std::vector<Assignment> map(const MappingContext& ctx,
                              std::span<const sim::TaskId> batch) override;
};

/// Shortest Job First: the arrival queue sorted by expected execution time;
/// the head task goes to the machine with the minimum expected completion
/// time.
class ShortestJobFirst final : public BatchHeuristic {
 public:
  std::string_view name() const override { return "SJF"; }
  std::vector<Assignment> map(const MappingContext& ctx,
                              std::span<const sim::TaskId> batch) override;
};

}  // namespace hcs::heuristics
