#pragma once
// Batch-mode mapping heuristics for heterogeneous systems (§III-C):
// MM (MinCompletion-MinCompletion), MSD (MinCompletion-SoonestDeadline),
// MMU (MinCompletion-MaxUrgency).
//
// All three share the paper's two-phase virtual-queue process:
//   Phase 1 — for every unmapped task, find the machine offering the
//             minimum expected completion time (among machines with free
//             virtual queue slots).
//   Phase 2 — for each machine with a free slot, choose among its phase-1
//             candidates by a per-heuristic criterion, assign virtually,
//             and repeat until the virtual queues are full or the unmapped
//             queue is empty.
//
// The engine is statically bound to each heuristic's phase-2 score (a
// template, not a virtual call): the score runs O(batch × machines × rounds)
// times per mapping event, which made it the scheduler's single hottest
// virtual dispatch.  Scratch buffers live on the heuristic object — one
// warm-up allocation per trial instead of five per round.

#include <limits>

#include "heuristics/heuristic.h"

namespace hcs::heuristics {

/// Shared two-phase engine; subclasses supply the phase-2 selection score
/// (lower wins) through the statically bound mapImpl().
class TwoPhaseBatchHeuristic : public BatchHeuristic {
 protected:
  /// Lexicographic comparison: primary first, expected completion breaks
  /// ties (as MSD specifies; harmless for the others).
  struct Score {
    double primary = 0.0;
    double completion = 0.0;

    bool operator<(const Score& other) const {
      if (primary != other.primary) return primary < other.primary;
      return completion < other.completion;
    }
  };

  /// What phase 1 learned about a task this round.
  struct Phase1Result {
    sim::MachineId machine = sim::kInvalidMachine;  ///< min-ECT machine
    double ect = 0.0;                               ///< its completion time
    /// Completion time on the runner-up machine (= ect when only one
    /// machine has slots); secondEct - ect is the classic sufferage value.
    double secondEct = 0.0;
  };

  /// One machine's best phase-2 candidate this round.
  struct Candidate {
    sim::TaskId task = sim::kInvalidTask;
    Score score;
    std::size_t unmappedIndex = 0;
  };

  /// The two-phase loop with `score(ctx, task, phase1)` inlined at the
  /// call site; every concrete heuristic's map() delegates here.
  template <class ScoreFn>
  std::vector<Assignment> mapImpl(const MappingContext& ctx,
                                  std::span<const sim::TaskId> batch,
                                  const ScoreFn& score);

 private:
  /// Per-round working sets, reused across mapping events (the heuristic
  /// object lives for the whole trial).
  std::vector<double> virtualReady_;
  std::vector<std::size_t> slots_;
  std::vector<sim::TaskId> unmapped_;
  std::vector<Candidate> best_;
  std::vector<Candidate> winners_;
  /// Phase-1 results memoized per task type within a round (phase 1 reads
  /// only the virtual queue state and the task's type).
  std::vector<Phase1Result> phase1ByType_;
  std::vector<char> phase1Stale_;
};

/// MM: phase 2 also minimizes expected completion time (classic MinMin).
class MinCompletionMinCompletion final : public TwoPhaseBatchHeuristic {
 public:
  std::string_view name() const override { return "MM"; }
  std::vector<Assignment> map(const MappingContext& ctx,
                              std::span<const sim::TaskId> batch) override;
};

/// MSD: phase 2 picks the soonest deadline, ties broken by completion time.
class MinCompletionSoonestDeadline final : public TwoPhaseBatchHeuristic {
 public:
  std::string_view name() const override { return "MSD"; }
  std::vector<Assignment> map(const MappingContext& ctx,
                              std::span<const sim::TaskId> batch) override;
};

/// MMU: phase 2 maximizes urgency U = 1 / (deadline - E[C]) (Eq. 3).
/// A non-positive slack means the task is about to miss its deadline; it is
/// treated as maximally urgent — precisely the behaviour that makes MMU
/// benefit most from pruning (§V-E).
class MinCompletionMaxUrgency final : public TwoPhaseBatchHeuristic {
 public:
  std::string_view name() const override { return "MMU"; }
  std::vector<Assignment> map(const MappingContext& ctx,
                              std::span<const sim::TaskId> batch) override;
};

/// MaxMin (extension; Braun et al.'s classic counterpart to MinMin): phase 2
/// picks the *largest* minimum completion time, so long tasks claim their
/// machines before short ones fill the slots.
class MaxMin final : public TwoPhaseBatchHeuristic {
 public:
  std::string_view name() const override { return "MaxMin"; }
  std::vector<Assignment> map(const MappingContext& ctx,
                              std::span<const sim::TaskId> batch) override;
};

/// Sufferage (extension; Maheswaran et al. 1999): phase 2 prioritizes the
/// task that would suffer most from losing its best machine — the gap
/// between its second-best and best completion times.
class SufferageHeuristic final : public TwoPhaseBatchHeuristic {
 public:
  std::string_view name() const override { return "Sufferage"; }
  std::vector<Assignment> map(const MappingContext& ctx,
                              std::span<const sim::TaskId> batch) override;
};

}  // namespace hcs::heuristics
