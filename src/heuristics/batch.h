#pragma once
// Batch-mode mapping heuristics for heterogeneous systems (§III-C):
// MM (MinCompletion-MinCompletion), MSD (MinCompletion-SoonestDeadline),
// MMU (MinCompletion-MaxUrgency).
//
// All three share the paper's two-phase virtual-queue process:
//   Phase 1 — for every unmapped task, find the machine offering the
//             minimum expected completion time (among machines with free
//             virtual queue slots).
//   Phase 2 — for each machine with a free slot, choose among its phase-1
//             candidates by a per-heuristic criterion, assign virtually,
//             and repeat until the virtual queues are full or the unmapped
//             queue is empty.

#include <limits>

#include "heuristics/heuristic.h"

namespace hcs::heuristics {

/// Shared two-phase engine; subclasses supply the phase-2 selection score
/// (lower wins).
class TwoPhaseBatchHeuristic : public BatchHeuristic {
 public:
  std::vector<Assignment> map(const MappingContext& ctx,
                              std::span<const sim::TaskId> batch) override;

 protected:
  /// Lexicographic comparison: primary first, expected completion breaks
  /// ties (as MSD specifies; harmless for the others).
  struct Score {
    double primary = 0.0;
    double completion = 0.0;

    bool operator<(const Score& other) const {
      if (primary != other.primary) return primary < other.primary;
      return completion < other.completion;
    }
  };

  /// What phase 1 learned about a task this round.
  struct Phase1Result {
    sim::MachineId machine = sim::kInvalidMachine;  ///< min-ECT machine
    double ect = 0.0;                               ///< its completion time
    /// Completion time on the runner-up machine (= ect when only one
    /// machine has slots); secondEct - ect is the classic sufferage value.
    double secondEct = 0.0;
  };

  /// Phase-2 score of mapping `task` on its phase-1 machine.
  virtual Score phase2Score(const MappingContext& ctx, sim::TaskId task,
                            const Phase1Result& phase1) const = 0;
};

/// MM: phase 2 also minimizes expected completion time (classic MinMin).
class MinCompletionMinCompletion final : public TwoPhaseBatchHeuristic {
 public:
  std::string_view name() const override { return "MM"; }

 protected:
  Score phase2Score(const MappingContext& ctx, sim::TaskId task,
                    const Phase1Result& phase1) const override;
};

/// MSD: phase 2 picks the soonest deadline, ties broken by completion time.
class MinCompletionSoonestDeadline final : public TwoPhaseBatchHeuristic {
 public:
  std::string_view name() const override { return "MSD"; }

 protected:
  Score phase2Score(const MappingContext& ctx, sim::TaskId task,
                    const Phase1Result& phase1) const override;
};

/// MMU: phase 2 maximizes urgency U = 1 / (deadline - E[C]) (Eq. 3).
/// A non-positive slack means the task is about to miss its deadline; it is
/// treated as maximally urgent — precisely the behaviour that makes MMU
/// benefit most from pruning (§V-E).
class MinCompletionMaxUrgency final : public TwoPhaseBatchHeuristic {
 public:
  std::string_view name() const override { return "MMU"; }

 protected:
  Score phase2Score(const MappingContext& ctx, sim::TaskId task,
                    const Phase1Result& phase1) const override;
};

/// MaxMin (extension; Braun et al.'s classic counterpart to MinMin): phase 2
/// picks the *largest* minimum completion time, so long tasks claim their
/// machines before short ones fill the slots.
class MaxMin final : public TwoPhaseBatchHeuristic {
 public:
  std::string_view name() const override { return "MaxMin"; }

 protected:
  Score phase2Score(const MappingContext& ctx, sim::TaskId task,
                    const Phase1Result& phase1) const override;
};

/// Sufferage (extension; Maheswaran et al. 1999): phase 2 prioritizes the
/// task that would suffer most from losing its best machine — the gap
/// between its second-best and best completion times.
class SufferageHeuristic final : public TwoPhaseBatchHeuristic {
 public:
  std::string_view name() const override { return "Sufferage"; }

 protected:
  Score phase2Score(const MappingContext& ctx, sim::TaskId task,
                    const Phase1Result& phase1) const override;
};

}  // namespace hcs::heuristics
