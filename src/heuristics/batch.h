#pragma once
// Batch-mode mapping heuristics for heterogeneous systems (§III-C):
// MM (MinCompletion-MinCompletion), MSD (MinCompletion-SoonestDeadline),
// MMU (MinCompletion-MaxUrgency).
//
// All three share the paper's two-phase virtual-queue process:
//   Phase 1 — for every unmapped task, find the machine offering the
//             minimum expected completion time (among machines with free
//             virtual queue slots).
//   Phase 2 — for each machine with a free slot, choose among its phase-1
//             candidates by a per-heuristic criterion, assign virtually,
//             and repeat until the virtual queues are full or the unmapped
//             queue is empty.
//
// Two executions of that process live here, selected by the context's
// lifetime and bit-identical in their assignments:
//
//  - Reference (throwaway contexts): every round re-scans phase 1 per live
//    task type and re-scores phase 2 over every unmapped task, exactly as
//    the paper reads.
//  - Incremental (persistent contexts with an attached batch queue — the
//    incremental mapping engine): the per-type phase-1 results live in a
//    table that survives rounds and map() calls, invalidated only for
//    types whose min- or second-ECT machine was touched by a commit (the
//    virtual queue state of every other machine is unchanged, so their
//    scan would be byte-identical); phase 2 walks one candidate per type —
//    tasks of a type live in per-type buckets sorted by a static
//    within-type key, so the type's head is its best phase-2 candidate —
//    instead of the whole batch.  The buckets are not rebuilt per call:
//    they replay the batch queue's mutation journal, so a mapping event
//    costs O(what changed), not O(queue).  Between map() calls the
//    phase-1 table's validity is decided by comparing each machine's
//    (ready, eligibility) against the end of the previous call: if nothing
//    improved, only the worsened machines' dependent types rescan.
//
// The engine is statically bound to each heuristic's phase-2 score (a
// template, not a virtual call): the score runs on the hot path of every
// round.  Scratch buffers live on the heuristic object — one warm-up
// allocation per trial instead of five per round.

#include <cstdint>
#include <limits>

#include "heuristics/heuristic.h"

namespace hcs::heuristics {

/// Shared two-phase engine; subclasses supply the phase-2 selection score
/// (lower wins) through the statically bound mapImpl().
class TwoPhaseBatchHeuristic : public BatchHeuristic {
 public:
  /// The incremental path reads candidates straight off ctx.batchQueue().
  bool consumesBatchQueue() const override { return true; }

 protected:
  /// Lexicographic comparison: primary first, expected completion breaks
  /// ties (as MSD specifies; harmless for the others).
  struct Score {
    double primary = 0.0;
    double completion = 0.0;

    bool operator<(const Score& other) const {
      if (primary != other.primary) return primary < other.primary;
      return completion < other.completion;
    }
  };

  /// What phase 1 learned about a task type this round.
  struct Phase1Result {
    sim::MachineId machine = sim::kInvalidMachine;  ///< min-ECT machine
    double ect = 0.0;                               ///< its completion time
    /// Completion time on the runner-up machine (= ect when only one
    /// machine has slots); secondEct - ect is the classic sufferage value.
    double secondEct = 0.0;
    /// The runner-up machine itself (= machine when there is no second):
    /// with `machine`, the full support of the memoized result — a commit
    /// that touches neither leaves a rescan byte-identical.
    sim::MachineId secondMachine = sim::kInvalidMachine;
  };

  /// One machine's best phase-2 candidate this round.
  struct Candidate {
    sim::TaskId task = sim::kInvalidTask;
    Score score;
    /// Reference path: index into unmapped_.  Incremental path: the
    /// task's stable arrival sequence number (the tie-break).
    std::size_t unmappedIndex = 0;
    /// Incremental path only: where the winner lives, to stamp it
    /// assigned at commit.
    int bucketType = -1;
    std::uint32_t bucketIndex = 0;
  };

  /// The two-phase loop with `score(ctx, task, phase1)` inlined at the
  /// call site; every concrete heuristic's map() delegates here.
  ///
  /// Path selection: the incremental path runs iff the context is
  /// persistent with an attached batch queue AND `batch` is empty — an
  /// empty span is the scheduler's "read the candidates off the queue"
  /// signal.  A persistent caller that passes an explicit candidate span
  /// gets the reference evaluation against the persistent memos instead:
  /// that is how the adaptive engine bypasses the delta bookkeeping below
  /// its queue-depth threshold while keeping the trial-lifetime
  /// ready/exec caches.  Both paths assign identically.
  ///
  /// `withinTypeKey(ctx, task)` must order the tasks of one type exactly
  /// as the score does for ANY phase-1 result: score must be monotone
  /// non-decreasing in the key, and equal keys must give equal scores.
  /// (All five built-ins satisfy this with either a constant or the
  /// deadline.)  The incremental path sorts each type's tasks by
  /// (key, batch position) once and then scores only the head.
  ///
  /// `saturates(key, phase1)` must return true exactly when the score
  /// collapses to its minimal plateau at that key (MMU's -inf urgency for
  /// hopeless slack) — distinct keys inside the plateau share one score,
  /// so the winner is the earliest *batch position*, not the smallest key,
  /// and the incremental path must scan the saturated prefix instead of
  /// trusting the head.  Saturation must be downward-closed in the key.
  template <class ScoreFn, class KeyFn, class SaturatesFn>
  std::vector<Assignment> mapImpl(const MappingContext& ctx,
                                  std::span<const sim::TaskId> batch,
                                  const ScoreFn& score,
                                  const KeyFn& withinTypeKey,
                                  const SaturatesFn& saturates);

 private:
  template <class ScoreFn>
  std::vector<Assignment> mapReference(const MappingContext& ctx,
                                       std::span<const sim::TaskId> batch,
                                       const ScoreFn& score);
  /// Queue-direct delta evaluation; candidates come from ctx.batchQueue().
  template <class ScoreFn, class KeyFn, class SaturatesFn>
  std::vector<Assignment> mapIncremental(const MappingContext& ctx,
                                         const ScoreFn& score,
                                         const KeyFn& withinTypeKey,
                                         const SaturatesFn& saturates);

  /// Minimum-ECT scan over the machines with free virtual slots; reads
  /// slots_ / virtualReady_.  The single source of the phase-1 arithmetic
  /// for both paths.  On the incremental path (soaActive_) the ECTs for
  /// all machines come from one prob::kernels::ectRow pass over the
  /// contiguous ready / exec / slot-mask rows; the reference path keeps
  /// the scalar per-machine loop.  Identical results either way (the
  /// kernel's lane arithmetic is the scalar sum, see kernels.h).
  Phase1Result scanPhase1(const MappingContext& ctx, sim::TaskType type);

  /// Marks stale every memoized phase-1 result whose winner or runner-up
  /// machine is in touched_.
  void markStaleForTouched();

  /// Folds an improved machine (cheaper ready time, or newly eligible)
  /// into a memoized phase-1 result in O(1): the memo is exactly the
  /// top-2 of (ect, machine) pairs under the scan's lexicographic order,
  /// and an improvement can only enter from outside — no third-best
  /// knowledge needed (unlike a worsening of the winner/runner-up, which
  /// forces a rescan).
  static void mergeImprovedMachine(Phase1Result& p1, double ect,
                                   sim::MachineId j);

  /// Applies mergeImprovedMachine for every still-eligible machine in
  /// improvedScratch_ to one type's memo — called lazily, the first time a
  /// call actually reads that type (most types are never read in a given
  /// call, so eager merging across the whole table wastes the savings).
  void applyImprovements(const MappingContext& ctx, std::size_t typeIdx);

  /// Per-round working sets, reused across mapping events (the heuristic
  /// object lives for the whole trial).
  std::vector<double> virtualReady_;
  std::vector<std::size_t> slots_;
  std::vector<sim::TaskId> unmapped_;
  std::vector<Candidate> best_;
  std::vector<Candidate> winners_;
  /// SoA companions of slots_ on the incremental path: mask[j] is 0.0
  /// while machine j has free virtual slots and +inf once it does not, so
  /// one ectRow pass prices every machine with ineligible lanes poisoned
  /// to +inf; ectScratch_ receives the row.  eligibleCount_ mirrors the
  /// number of zero-mask lanes — the O(1) "any virtual slot left" guard
  /// that ends the round loop without another phase-1 sweep.
  std::vector<double> slotMask_;
  std::vector<double> ectScratch_;
  std::size_t eligibleCount_ = 0;
  /// Index of the only zero-mask lane while eligibleCount_ == 1 — the
  /// oversubscribed steady state (one slot frees per completion), where
  /// every phase-1 "scan" collapses to a single add.
  std::size_t soleEligible_ = 0;
  bool soaActive_ = false;  ///< scanPhase1 may read slotMask_/ectScratch_
  /// Phase-1 results memoized per task type (phase 1 reads only the
  /// virtual queue state and the task's type).  The reference path resets
  /// the stale flags wholesale every round; the incremental path clears
  /// exactly the types a commit invalidated and carries the table across
  /// rounds and calls.
  std::vector<Phase1Result> phase1ByType_;
  std::vector<char> phase1Stale_;

  // --- Incremental-path state (persistent contexts only) ---------------------

  /// assignedCall value marking a tombstone (the task left the queue).
  /// Removals never memmove the bucket — the dead entry keeps its
  /// (key, seq) so binary searches stay valid, a persistent head pointer
  /// hops the dead prefix (the common death site: winners are heads), and
  /// compaction sweeps when tombstones outnumber the living.
  static constexpr std::uint32_t kDeadEntry = 0xffffffffu;

  struct BucketEntry {
    double key = 0.0;             ///< within-type ordering key
    std::uint64_t seq = 0;        ///< stable arrival sequence (tie-break)
    sim::TaskId task = sim::kInvalidTask;
    std::uint32_t assignedCall = 0;  ///< callGen_ stamp, or kDeadEntry
  };
  /// Per type: its queued tasks sorted by (key, seq); head = best phase-2
  /// candidate of the type.  Maintained across calls by replaying the
  /// batch queue's mutation journal.
  std::vector<std::vector<BucketEntry>> buckets_;
  std::vector<std::uint32_t> bucketHead_;  ///< first maybe-live index
  std::vector<std::uint32_t> bucketDead_;  ///< tombstones in the bucket
  std::vector<std::uint32_t> cursor_;  ///< per type: first candidate entry
  std::vector<int> liveTypes_;         ///< types with candidate tasks
  std::vector<char> touched_;          ///< per machine, one commit's wake
  std::vector<sim::MachineId> improvedScratch_;  ///< cross-call gains
  /// Per type: callGen_ of the last call whose improvements were folded
  /// into (or whose rescan refreshed) the memo.
  std::vector<std::uint32_t> typeMergeGen_;
  std::uint32_t callGen_ = 0;          ///< map() call counter (stamps)
  /// Journal synchronization with the attached batch queue.
  const sim::BatchQueue* syncedQueue_ = nullptr;
  std::uint64_t syncedResetGen_ = 0;
  std::size_t syncedJournalPos_ = 0;
  const void* syncedPool_ = nullptr;  ///< keys read task data from here
  /// Virtual queue state at the end of the previous map() call — the
  /// baseline the next call diffs against to decide which memo entries
  /// survived the world's mutations.
  std::vector<double> lastReady_;
  std::vector<char> lastEligible_;
  /// `now` of the previous call: a changed now re-anchors every ready
  /// time, so the diff short-circuits to the wholesale-stale branch.
  /// NaN compares unequal to everything — the first call always stales.
  sim::Time lastNow_ = std::numeric_limits<double>::quiet_NaN();
  const void* lastModel_ = nullptr;
  const void* lastMachines_ = nullptr;
  int lastNumMachines_ = -1;
};

/// MM: phase 2 also minimizes expected completion time (classic MinMin).
class MinCompletionMinCompletion final : public TwoPhaseBatchHeuristic {
 public:
  std::string_view name() const override { return "MM"; }
  std::vector<Assignment> map(const MappingContext& ctx,
                              std::span<const sim::TaskId> batch) override;
};

/// MSD: phase 2 picks the soonest deadline, ties broken by completion time.
class MinCompletionSoonestDeadline final : public TwoPhaseBatchHeuristic {
 public:
  std::string_view name() const override { return "MSD"; }
  std::vector<Assignment> map(const MappingContext& ctx,
                              std::span<const sim::TaskId> batch) override;
};

/// MMU: phase 2 maximizes urgency U = 1 / (deadline - E[C]) (Eq. 3).
/// A non-positive slack means the task is about to miss its deadline; it is
/// treated as maximally urgent — precisely the behaviour that makes MMU
/// benefit most from pruning (§V-E).
class MinCompletionMaxUrgency final : public TwoPhaseBatchHeuristic {
 public:
  std::string_view name() const override { return "MMU"; }
  std::vector<Assignment> map(const MappingContext& ctx,
                              std::span<const sim::TaskId> batch) override;
};

/// MaxMin (extension; Braun et al.'s classic counterpart to MinMin): phase 2
/// picks the *largest* minimum completion time, so long tasks claim their
/// machines before short ones fill the slots.
class MaxMin final : public TwoPhaseBatchHeuristic {
 public:
  std::string_view name() const override { return "MaxMin"; }
  std::vector<Assignment> map(const MappingContext& ctx,
                              std::span<const sim::TaskId> batch) override;
};

/// Sufferage (extension; Maheswaran et al. 1999): phase 2 prioritizes the
/// task that would suffer most from losing its best machine — the gap
/// between its second-best and best completion times.
class SufferageHeuristic final : public TwoPhaseBatchHeuristic {
 public:
  std::string_view name() const override { return "Sufferage"; }
  std::vector<Assignment> map(const MappingContext& ctx,
                              std::span<const sim::TaskId> batch) override;
};

}  // namespace hcs::heuristics
