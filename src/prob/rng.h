#pragma once
// Seeded random-number generation for workload synthesis and simulation.
//
// Every stochastic component in the library draws from an explicitly seeded
// Rng so that whole experiments are reproducible from a single trial seed —
// the paper publishes its workload trials for exactly this reason (§V-B).

#include <cstdint>
#include <random>

namespace hcs::prob {

/// Thin wrapper over mt19937_64 with the distributions the library needs.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform in [0, 1).
  double uniform01() { return uniform_(engine_); }

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive).
  std::int64_t uniformInt(std::int64_t lo, std::int64_t hi);

  /// Gamma with the given shape and scale (mean = shape * scale).
  double gamma(double shape, double scale);

  /// Gamma parameterized by mean and shape (scale = mean / shape) — the
  /// form used when generating PET histograms (§V-B).
  double gammaByMeanShape(double mean, double shape) {
    return gamma(shape, mean / shape);
  }

  /// Exponential with the given mean.
  double exponential(double mean);

  /// Derives an independent child generator; useful for giving each
  /// subsystem (arrivals, execution sampling, PET synthesis) its own stream.
  Rng fork();

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::uniform_real_distribution<double> uniform_{0.0, 1.0};
};

}  // namespace hcs::prob
