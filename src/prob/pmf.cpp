#include "prob/pmf.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "prob/arena.h"
#include "prob/kernels.h"
#include "prob/rng.h"

namespace hcs::prob {

namespace detail {

// Destruction, moves, and copy-assignment all require the owning PMF to be
// exclusively held (no reader may be mid-query on an object being mutated or
// destroyed), so they use relaxed plain loads/stores — on x86 these compile
// to ordinary moves, keeping PMF moves as cheap as before the cache existed.
// Only the concurrent build/publish pair (ensure/get) needs acquire/release.

CdfCache::~CdfCache() { delete table_.load(std::memory_order_relaxed); }

CdfCache::CdfCache(CdfCache&& other) noexcept
    : table_(other.table_.load(std::memory_order_relaxed)) {
  other.table_.store(nullptr, std::memory_order_relaxed);
}

CdfCache& CdfCache::operator=(const CdfCache& other) noexcept {
  // The owning PMF's distribution is about to change: drop the stale table.
  if (this != &other) invalidate();
  return *this;
}

CdfCache& CdfCache::operator=(CdfCache&& other) noexcept {
  if (this != &other) {
    delete table_.load(std::memory_order_relaxed);
    table_.store(other.table_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
    other.table_.store(nullptr, std::memory_order_relaxed);
  }
  return *this;
}

void CdfCache::invalidate() {
  delete table_.load(std::memory_order_relaxed);
  table_.store(nullptr, std::memory_order_relaxed);
}

const std::vector<double>& CdfCache::ensure(
    std::span<const double> probs) const {
  if (const std::vector<double>* existing =
          table_.load(std::memory_order_acquire)) {
    return *existing;
  }
  auto* fresh = new std::vector<double>(probs.size() + 1);
  (*fresh)[0] = 0.0;
  for (std::size_t i = 0; i < probs.size(); ++i) {
    (*fresh)[i + 1] = (*fresh)[i] + probs[i];
  }
  const std::vector<double>* expected = nullptr;
  if (table_.compare_exchange_strong(expected, fresh,
                                     std::memory_order_acq_rel,
                                     std::memory_order_acquire)) {
    return *fresh;
  }
  // Another thread published first; both tables are identical (the build is
  // deterministic over the same immutable probs).
  delete fresh;
  return *expected;
}

}  // namespace detail

DiscretePmf::DiscretePmf(std::int64_t firstBin, std::vector<double> probs,
                         double binWidth)
    : first_(firstBin), probs_(std::move(probs)), width_(binWidth) {
  if (probs_.empty()) {
    throw std::invalid_argument("DiscretePmf: empty probability vector");
  }
  if (width_ <= 0.0) {
    throw std::invalid_argument("DiscretePmf: bin width must be positive");
  }
  for (double p : probs_) {
    if (p < 0.0 || !std::isfinite(p)) {
      throw std::invalid_argument("DiscretePmf: negative or non-finite mass");
    }
  }
  trimAndNormalize();
}

DiscretePmf::DiscretePmf(Internal, std::int64_t firstBin,
                         std::vector<double> probs, double binWidth)
    : first_(firstBin), probs_(std::move(probs)), width_(binWidth) {
  trimAndNormalize();
}

DiscretePmf::DiscretePmf(Internal, std::int64_t firstBin,
                         std::vector<double> probs, double binWidth,
                         double total)
    : first_(firstBin), probs_(std::move(probs)), width_(binWidth) {
  trimAndNormalize(total);
}

void DiscretePmf::trimAndNormalize() {
  // One pass finds the trim bounds and the total mass; the normalize pass
  // then writes each kept bin, already divided, straight into its final
  // slot — no erase() shifts and no second accumulate.  Summing the whole
  // buffer yields bit-identical accumulator values to summing the trimmed
  // range: the out-of-range entries are exact zeros, and adding +0.0 to a
  // non-negative accumulator is an identity.
  const std::size_t n = probs_.size();
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) total += probs_[i];
  trimAndNormalize(total);
}

void DiscretePmf::trimAndNormalize(double total) {
  const std::size_t n = probs_.size();
  std::size_t head = 0;
  while (head < n && !(probs_[head] > 0.0)) ++head;
  if (head == n) {
    throw std::invalid_argument("DiscretePmf: total mass is zero");
  }
  std::size_t tail = n - 1;
  while (!(probs_[tail] > 0.0)) --tail;
  for (std::size_t i = head; i <= tail; ++i) {
    probs_[i - head] = probs_[i] / total;
  }
  probs_.resize(tail - head + 1);
  first_ += static_cast<std::int64_t>(head);
}

DiscretePmf DiscretePmf::pointMass(double time, double binWidth) {
  if (binWidth <= 0.0) {
    throw std::invalid_argument("pointMass: bin width must be positive");
  }
  const auto bin = static_cast<std::int64_t>(std::llround(time / binWidth));
  return DiscretePmf(bin, {1.0}, binWidth);
}

DiscretePmf DiscretePmf::fromSamples(std::span<const double> samples,
                                     double binWidth) {
  if (samples.empty()) {
    throw std::invalid_argument("fromSamples: no samples");
  }
  if (binWidth <= 0.0) {
    throw std::invalid_argument("fromSamples: bin width must be positive");
  }
  std::int64_t lo = std::numeric_limits<std::int64_t>::max();
  std::int64_t hi = std::numeric_limits<std::int64_t>::min();
  std::vector<std::int64_t> bins;
  bins.reserve(samples.size());
  for (double s : samples) {
    if (s < 0.0 || !std::isfinite(s)) {
      throw std::invalid_argument("fromSamples: negative or non-finite sample");
    }
    const auto b = static_cast<std::int64_t>(std::llround(s / binWidth));
    bins.push_back(b);
    lo = std::min(lo, b);
    hi = std::max(hi, b);
  }
  std::vector<double> probs(static_cast<std::size_t>(hi - lo + 1), 0.0);
  const double w = 1.0 / static_cast<double>(samples.size());
  for (std::int64_t b : bins) probs[static_cast<std::size_t>(b - lo)] += w;
  return DiscretePmf(Internal{}, lo, std::move(probs), binWidth);
}

double DiscretePmf::mean() const {
  double m = 0.0;
  for (std::size_t i = 0; i < probs_.size(); ++i) m += probs_[i] * timeAt(i);
  return m;
}

double DiscretePmf::variance() const {
  const double m = mean();
  double v = 0.0;
  for (std::size_t i = 0; i < probs_.size(); ++i) {
    const double d = timeAt(i) - m;
    v += probs_[i] * d * d;
  }
  return v;
}

double DiscretePmf::stddev() const { return std::sqrt(variance()); }

double DiscretePmf::cdf(double t) const { return cdfShiftedBy(0, t); }

double DiscretePmf::cdfShiftedBy(std::int64_t bins, double t) const {
  // Tiny tolerance so a deadline exactly on a grid point includes that bin
  // despite floating-point drift.
  const double cutoff = t + width_ * 1e-6;
  if (const std::vector<double>* table = cdf_.get()) {
    // Binary search for the first bin at or past the cutoff.  Bin time is
    // weakly monotone in the bin index (multiplying by a positive width
    // preserves order under rounding), so the found index equals the linear
    // scan's break point, and table[idx] is that scan's exact accumulator
    // after idx additions.
    std::size_t lo = 0;
    std::size_t hi = probs_.size();
    while (lo < hi) {
      const std::size_t mid = lo + (hi - lo) / 2;
      const double timeAtBin =
          static_cast<double>(first_ + bins + static_cast<std::int64_t>(mid)) *
          width_;
      if (timeAtBin >= cutoff) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    return std::min((*table)[lo], 1.0);
  }
  double acc = 0.0;
  for (std::size_t i = 0; i < probs_.size(); ++i) {
    const double timeAtBin =
        static_cast<double>(first_ + bins + static_cast<std::int64_t>(i)) *
        width_;
    if (timeAtBin >= cutoff) break;
    acc += probs_[i];
  }
  return std::min(acc, 1.0);
}

double DiscretePmf::quantile(double p) const {
  if (p < 0.0 || p > 1.0) {
    throw std::invalid_argument("quantile: p outside [0,1]");
  }
  if (const std::vector<double>* table = cdf_.get()) {
    // First index whose running total reaches p; the totals are
    // non-decreasing, so the predicate is monotone.
    std::size_t lo = 0;
    std::size_t hi = probs_.size();
    while (lo < hi) {
      const std::size_t mid = lo + (hi - lo) / 2;
      if ((*table)[mid + 1] + kMassTolerance >= p) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    return lo < probs_.size() ? timeAt(lo) : maxTime();
  }
  double acc = 0.0;
  for (std::size_t i = 0; i < probs_.size(); ++i) {
    acc += probs_[i];
    if (acc + kMassTolerance >= p) return timeAt(i);
  }
  return maxTime();
}

DiscretePmf DiscretePmf::convolve(const DiscretePmf& other,
                                  std::size_t maxBins) const {
  // One code path with the destination-passing kernel; the thread's arena
  // supplies the output buffer (and the tiled kernel's scratch).
  return convolveInto(PmfArena::local(), *this, other, maxBins);
}

DiscretePmf DiscretePmf::shifted(std::int64_t bins) const {
  DiscretePmf out = *this;
  out.first_ += bins;
  return out;
}

DiscretePmf DiscretePmf::conditionalRemaining(double elapsed) const {
  const auto elapsedBins =
      static_cast<std::int64_t>(std::floor(elapsed / width_ + 1e-9));
  // Keep bins strictly beyond the elapsed time: X > e.
  const std::int64_t keepFrom = elapsedBins + 1;
  if (keepFrom > lastBin()) {
    // Task has outlived its whole support; model "finishes within one bin".
    return DiscretePmf(1, {1.0}, width_);
  }
  const std::int64_t skip = std::max<std::int64_t>(keepFrom - first_, 0);
  std::vector<double> kept(probs_.begin() + skip, probs_.end());
  return DiscretePmf(Internal{}, first_ + skip - elapsedBins, std::move(kept),
                     width_);
}

std::pair<std::int64_t, std::int64_t> DiscretePmf::conditionalRemainingBounds(
    double elapsed) const {
  const auto elapsedBins =
      static_cast<std::int64_t>(std::floor(elapsed / width_ + 1e-9));
  const std::int64_t keepFrom = elapsedBins + 1;
  if (keepFrom > lastBin()) return {1, 1};
  const std::int64_t skip = std::max<std::int64_t>(keepFrom - first_, 0);
  // The kept slice may start with zero bins that trimAndNormalize would
  // strip; the last kept bin is the original last bin, which is positive by
  // invariant.
  std::size_t head = static_cast<std::size_t>(skip);
  while (probs_[head] <= 0.0) ++head;
  const std::int64_t lo =
      first_ + static_cast<std::int64_t>(head) - elapsedBins;
  return {lo, lastBin() - elapsedBins};
}

double DiscretePmf::conditionalRemainingMean(double elapsed) const {
  const auto elapsedBins =
      static_cast<std::int64_t>(std::floor(elapsed / width_ + 1e-9));
  const std::int64_t keepFrom = elapsedBins + 1;
  if (keepFrom > lastBin()) {
    // conditionalRemaining's "finishes within one bin" point mass at bin 1.
    return 1.0 * (1.0 * width_);
  }
  const std::int64_t skip = std::max<std::int64_t>(keepFrom - first_, 0);
  const std::int64_t keptFirst = first_ + skip - elapsedBins;
  // Mirrors trimAndNormalize + mean on the kept slice bit for bit: zero
  // bins contribute exact 0.0 terms to both the total and the mean, so
  // skipping the trim changes nothing.
  double total = 0.0;
  for (std::size_t i = static_cast<std::size_t>(skip); i < probs_.size(); ++i) {
    total += probs_[i];
  }
  double m = 0.0;
  for (std::size_t i = static_cast<std::size_t>(skip); i < probs_.size(); ++i) {
    const auto bin = keptFirst + static_cast<std::int64_t>(i) - skip;
    m += (probs_[i] / total) * (static_cast<double>(bin) * width_);
  }
  return m;
}

DiscretePmf DiscretePmf::capped(std::size_t maxBins) const {
  if (maxBins == 0) {
    throw std::invalid_argument("capped: maxBins must be positive");
  }
  if (probs_.size() <= maxBins) return *this;
  std::vector<double> out(probs_.begin(),
                          probs_.begin() + static_cast<std::ptrdiff_t>(maxBins));
  out.back() += std::accumulate(
      probs_.begin() + static_cast<std::ptrdiff_t>(maxBins), probs_.end(), 0.0);
  return DiscretePmf(Internal{}, first_, std::move(out), width_);
}

double DiscretePmf::sample(Rng& rng) const {
  const double u = rng.uniform01();
  if (const std::vector<double>* table = cdf_.get()) {
    // First bin whose running total reaches u — identical to the linear
    // scan's first hit because the totals are its exact accumulators.
    std::size_t lo = 0;
    std::size_t hi = probs_.size();
    while (lo < hi) {
      const std::size_t mid = lo + (hi - lo) / 2;
      if (u <= (*table)[mid + 1]) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    return lo < probs_.size() ? timeAt(lo) : maxTime();
  }
  double acc = 0.0;
  for (std::size_t i = 0; i < probs_.size(); ++i) {
    acc += probs_[i];
    if (u <= acc) return timeAt(i);
  }
  return maxTime();
}

}  // namespace hcs::prob
