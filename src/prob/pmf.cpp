#include "prob/pmf.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "prob/rng.h"

namespace hcs::prob {

DiscretePmf::DiscretePmf(std::int64_t firstBin, std::vector<double> probs,
                         double binWidth)
    : first_(firstBin), probs_(std::move(probs)), width_(binWidth) {
  if (probs_.empty()) {
    throw std::invalid_argument("DiscretePmf: empty probability vector");
  }
  if (width_ <= 0.0) {
    throw std::invalid_argument("DiscretePmf: bin width must be positive");
  }
  for (double p : probs_) {
    if (p < 0.0 || !std::isfinite(p)) {
      throw std::invalid_argument("DiscretePmf: negative or non-finite mass");
    }
  }
  trimAndNormalize();
}

DiscretePmf::DiscretePmf(Internal, std::int64_t firstBin,
                         std::vector<double> probs, double binWidth)
    : first_(firstBin), probs_(std::move(probs)), width_(binWidth) {
  trimAndNormalize();
}

void DiscretePmf::trimAndNormalize() {
  auto isPositive = [](double p) { return p > 0.0; };
  auto head = std::find_if(probs_.begin(), probs_.end(), isPositive);
  if (head == probs_.end()) {
    throw std::invalid_argument("DiscretePmf: total mass is zero");
  }
  auto tail = std::find_if(probs_.rbegin(), probs_.rend(), isPositive).base();
  first_ += std::distance(probs_.begin(), head);
  probs_.erase(tail, probs_.end());
  probs_.erase(probs_.begin(), head);

  const double total = std::accumulate(probs_.begin(), probs_.end(), 0.0);
  for (double& p : probs_) p /= total;
}

DiscretePmf DiscretePmf::pointMass(double time, double binWidth) {
  if (binWidth <= 0.0) {
    throw std::invalid_argument("pointMass: bin width must be positive");
  }
  const auto bin = static_cast<std::int64_t>(std::llround(time / binWidth));
  return DiscretePmf(bin, {1.0}, binWidth);
}

DiscretePmf DiscretePmf::fromSamples(std::span<const double> samples,
                                     double binWidth) {
  if (samples.empty()) {
    throw std::invalid_argument("fromSamples: no samples");
  }
  if (binWidth <= 0.0) {
    throw std::invalid_argument("fromSamples: bin width must be positive");
  }
  std::int64_t lo = std::numeric_limits<std::int64_t>::max();
  std::int64_t hi = std::numeric_limits<std::int64_t>::min();
  std::vector<std::int64_t> bins;
  bins.reserve(samples.size());
  for (double s : samples) {
    if (s < 0.0 || !std::isfinite(s)) {
      throw std::invalid_argument("fromSamples: negative or non-finite sample");
    }
    const auto b = static_cast<std::int64_t>(std::llround(s / binWidth));
    bins.push_back(b);
    lo = std::min(lo, b);
    hi = std::max(hi, b);
  }
  std::vector<double> probs(static_cast<std::size_t>(hi - lo + 1), 0.0);
  const double w = 1.0 / static_cast<double>(samples.size());
  for (std::int64_t b : bins) probs[static_cast<std::size_t>(b - lo)] += w;
  return DiscretePmf(Internal{}, lo, std::move(probs), binWidth);
}

double DiscretePmf::mean() const {
  double m = 0.0;
  for (std::size_t i = 0; i < probs_.size(); ++i) m += probs_[i] * timeAt(i);
  return m;
}

double DiscretePmf::variance() const {
  const double m = mean();
  double v = 0.0;
  for (std::size_t i = 0; i < probs_.size(); ++i) {
    const double d = timeAt(i) - m;
    v += probs_[i] * d * d;
  }
  return v;
}

double DiscretePmf::stddev() const { return std::sqrt(variance()); }

double DiscretePmf::cdf(double t) const { return cdfShiftedBy(0, t); }

double DiscretePmf::cdfShiftedBy(std::int64_t bins, double t) const {
  // Tiny tolerance so a deadline exactly on a grid point includes that bin
  // despite floating-point drift.
  const double cutoff = t + width_ * 1e-6;
  double acc = 0.0;
  for (std::size_t i = 0; i < probs_.size(); ++i) {
    const double timeAtBin =
        static_cast<double>(first_ + bins + static_cast<std::int64_t>(i)) *
        width_;
    if (timeAtBin >= cutoff) break;
    acc += probs_[i];
  }
  return std::min(acc, 1.0);
}

double DiscretePmf::quantile(double p) const {
  if (p < 0.0 || p > 1.0) {
    throw std::invalid_argument("quantile: p outside [0,1]");
  }
  double acc = 0.0;
  for (std::size_t i = 0; i < probs_.size(); ++i) {
    acc += probs_[i];
    if (acc + kMassTolerance >= p) return timeAt(i);
  }
  return maxTime();
}

DiscretePmf DiscretePmf::convolve(const DiscretePmf& other,
                                  std::size_t maxBins) const {
  if (std::abs(width_ - other.width_) > 1e-12) {
    throw std::invalid_argument("convolve: mismatched bin widths");
  }
  const std::size_t fullSize = probs_.size() + other.probs_.size() - 1;
  const std::size_t outSize = std::min(fullSize, std::max<std::size_t>(maxBins, 1));
  std::vector<double> out(outSize, 0.0);
  if (outSize == fullSize) {
    // No capping: k = i + j always lands in range.  Keeping the inner loop
    // free of the clamp lets it vectorize; the accumulation order is
    // unchanged, so results are bit-identical to the clamped loop.
    for (std::size_t i = 0; i < probs_.size(); ++i) {
      const double p = probs_[i];
      if (p == 0.0) continue;
      double* dst = out.data() + i;
      const double* src = other.probs_.data();
      for (std::size_t j = 0; j < other.probs_.size(); ++j) {
        dst[j] += p * src[j];
      }
    }
  } else {
    for (std::size_t i = 0; i < probs_.size(); ++i) {
      if (probs_[i] == 0.0) continue;
      for (std::size_t j = 0; j < other.probs_.size(); ++j) {
        const std::size_t k = std::min(i + j, outSize - 1);
        out[k] += probs_[i] * other.probs_[j];
      }
    }
  }
  return DiscretePmf(Internal{}, first_ + other.first_, std::move(out), width_);
}

DiscretePmf DiscretePmf::shifted(std::int64_t bins) const {
  DiscretePmf out = *this;
  out.first_ += bins;
  return out;
}

DiscretePmf DiscretePmf::conditionalRemaining(double elapsed) const {
  const auto elapsedBins =
      static_cast<std::int64_t>(std::floor(elapsed / width_ + 1e-9));
  // Keep bins strictly beyond the elapsed time: X > e.
  const std::int64_t keepFrom = elapsedBins + 1;
  if (keepFrom > lastBin()) {
    // Task has outlived its whole support; model "finishes within one bin".
    return DiscretePmf(1, {1.0}, width_);
  }
  const std::int64_t skip = std::max<std::int64_t>(keepFrom - first_, 0);
  std::vector<double> kept(probs_.begin() + skip, probs_.end());
  return DiscretePmf(Internal{}, first_ + skip - elapsedBins, std::move(kept),
                     width_);
}

std::pair<std::int64_t, std::int64_t> DiscretePmf::conditionalRemainingBounds(
    double elapsed) const {
  const auto elapsedBins =
      static_cast<std::int64_t>(std::floor(elapsed / width_ + 1e-9));
  const std::int64_t keepFrom = elapsedBins + 1;
  if (keepFrom > lastBin()) return {1, 1};
  const std::int64_t skip = std::max<std::int64_t>(keepFrom - first_, 0);
  // The kept slice may start with zero bins that trimAndNormalize would
  // strip; the last kept bin is the original last bin, which is positive by
  // invariant.
  std::size_t head = static_cast<std::size_t>(skip);
  while (probs_[head] <= 0.0) ++head;
  const std::int64_t lo =
      first_ + static_cast<std::int64_t>(head) - elapsedBins;
  return {lo, lastBin() - elapsedBins};
}

double DiscretePmf::conditionalRemainingMean(double elapsed) const {
  const auto elapsedBins =
      static_cast<std::int64_t>(std::floor(elapsed / width_ + 1e-9));
  const std::int64_t keepFrom = elapsedBins + 1;
  if (keepFrom > lastBin()) {
    // conditionalRemaining's "finishes within one bin" point mass at bin 1.
    return 1.0 * (1.0 * width_);
  }
  const std::int64_t skip = std::max<std::int64_t>(keepFrom - first_, 0);
  const std::int64_t keptFirst = first_ + skip - elapsedBins;
  // Mirrors trimAndNormalize + mean on the kept slice bit for bit: zero
  // bins contribute exact 0.0 terms to both the total and the mean, so
  // skipping the trim changes nothing.
  double total = 0.0;
  for (std::size_t i = static_cast<std::size_t>(skip); i < probs_.size(); ++i) {
    total += probs_[i];
  }
  double m = 0.0;
  for (std::size_t i = static_cast<std::size_t>(skip); i < probs_.size(); ++i) {
    const auto bin = keptFirst + static_cast<std::int64_t>(i) - skip;
    m += (probs_[i] / total) * (static_cast<double>(bin) * width_);
  }
  return m;
}

DiscretePmf DiscretePmf::capped(std::size_t maxBins) const {
  if (maxBins == 0) {
    throw std::invalid_argument("capped: maxBins must be positive");
  }
  if (probs_.size() <= maxBins) return *this;
  std::vector<double> out(probs_.begin(),
                          probs_.begin() + static_cast<std::ptrdiff_t>(maxBins));
  out.back() += std::accumulate(
      probs_.begin() + static_cast<std::ptrdiff_t>(maxBins), probs_.end(), 0.0);
  return DiscretePmf(Internal{}, first_, std::move(out), width_);
}

double DiscretePmf::sample(Rng& rng) const {
  const double u = rng.uniform01();
  double acc = 0.0;
  for (std::size_t i = 0; i < probs_.size(); ++i) {
    acc += probs_[i];
    if (u <= acc) return timeAt(i);
  }
  return maxTime();
}

}  // namespace hcs::prob
