#pragma once
// Discrete probability mass functions over a uniform time grid.
//
// The paper models every task's execution time on every machine type as a
// Probability Mass Function (PMF) obtained by histogramming samples of a
// Gamma distribution (Section V-B).  Completion-time distributions (PCT,
// Eq. 1) are formed by convolving PMFs along a machine queue, and the
// "chance of success" (Eq. 2) is the CDF of a PCT evaluated at the task's
// deadline.  This header provides that machinery.
//
// Representation: point masses on a uniform grid.  Bin `i` of a PMF with
// offset `first()` and width `w` carries probability `prob(i)` at time
// `(first() + i) * w`.  Point-mass semantics make convolution exact:
// mass at time a convolved with mass at time b lands at time a + b.
// The bin probabilities live in one contiguous double array; an optional
// prefix-sum table (see ensureCdfCache) rides alongside for O(log n) CDF
// queries.  The hot-path kernels over this layout are in prob/kernels.h.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

namespace hcs::prob {

class Rng;
class PmfArena;

namespace detail {

struct PmfKernelAccess;

/// Lazily built prefix-sum table for O(log n) CDF queries, attached to an
/// immutable PMF.  table()[i] is the mass of the first i bins accumulated
/// left to right — the exact value a linear scan's accumulator holds after
/// i additions — so binary searches over it reproduce the linear scans bit
/// for bit.
///
/// Built at most once per PMF (PMFs are immutable after construction);
/// publication is an atomic pointer CAS so concurrent readers of a shared
/// PMF (e.g. parallel trials querying one PET matrix) may race to build
/// without ever observing a torn table.  Copies do not inherit the table —
/// they rebuild on demand — which keeps PMF copies as cheap as before the
/// cache existed.
class CdfCache {
 public:
  CdfCache() = default;
  ~CdfCache();
  CdfCache(const CdfCache&) noexcept {}
  CdfCache(CdfCache&& other) noexcept;
  CdfCache& operator=(const CdfCache& other) noexcept;
  CdfCache& operator=(CdfCache&& other) noexcept;

  /// The table, or nullptr when not built yet.
  const std::vector<double>* get() const {
    return table_.load(std::memory_order_acquire);
  }

  /// Builds (at most once) and returns the table for `probs`.
  const std::vector<double>& ensure(std::span<const double> probs) const;

  void invalidate();

 private:
  mutable std::atomic<const std::vector<double>*> table_{nullptr};
};

}  // namespace detail

/// A probability mass function over a uniform time grid.
///
/// Invariants: `probs()` is non-empty, every entry is >= 0, first and last
/// entries are > 0 (no dangling zero bins at either end), and the total mass
/// is 1 within `kMassTolerance` (enforced by normalize(); constructors
/// normalize by default).
class DiscretePmf {
 public:
  /// Total-mass tolerance accepted by validity checks.
  static constexpr double kMassTolerance = 1e-9;

  /// Default cap on support size; convolution results larger than the cap
  /// get their tail mass folded into the final retained bin.  Folded mass
  /// moves *earlier* in time, so a capped PCT is optimistic about extreme
  /// tails — the cap is set high enough that realistic machine queues never
  /// reach it (a queue must accumulate ~4096 bins of support first).
  static constexpr std::size_t kDefaultMaxBins = 4096;

  /// Constructs a PMF from bin probabilities starting at bin index
  /// `firstBin` on a grid of width `binWidth`.  The mass is normalized to 1.
  /// Throws std::invalid_argument if `probs` is empty, contains a negative
  /// entry, sums to ~0, or if `binWidth <= 0`.
  DiscretePmf(std::int64_t firstBin, std::vector<double> probs,
              double binWidth = 1.0);

  /// A degenerate PMF: all mass at `time` (rounded to the nearest bin).
  static DiscretePmf pointMass(double time, double binWidth = 1.0);

  /// Builds a histogram PMF from raw samples (all must be >= 0).
  /// Equivalent to the paper's 500-sample Gamma histograms.
  static DiscretePmf fromSamples(std::span<const double> samples,
                                 double binWidth = 1.0);

  // --- Accessors -----------------------------------------------------------

  std::int64_t firstBin() const { return first_; }
  std::int64_t lastBin() const {
    return first_ + static_cast<std::int64_t>(probs_.size()) - 1;
  }
  double binWidth() const { return width_; }
  std::size_t size() const { return probs_.size(); }
  std::span<const double> probs() const { return probs_; }

  /// Time value of the i-th bin (0-based within the support).
  double timeAt(std::size_t i) const {
    return static_cast<double>(first_ + static_cast<std::int64_t>(i)) * width_;
  }
  double minTime() const { return timeAt(0); }
  double maxTime() const { return timeAt(probs_.size() - 1); }

  // --- Moments -------------------------------------------------------------

  double mean() const;
  double variance() const;
  double stddev() const;

  // --- Probabilities -------------------------------------------------------

  /// P[X <= t]  (with a half-bin-width tolerance so that grid-aligned
  /// deadlines include their own bin).
  double cdf(double t) const;

  /// Exactly shifted(bins).cdf(t), without materializing the shifted PMF:
  /// lets callers keep one relative-grid PMF and evaluate it at any
  /// absolute anchor.
  double cdfShiftedBy(std::int64_t bins, double t) const;

  /// Chance of success per Eq. 2: P[completion <= deadline].
  double successProbability(double deadline) const { return cdf(deadline); }

  /// Smallest grid time t with P[X <= t] >= p.
  double quantile(double p) const;

  /// Builds the prefix-sum CDF table (idempotent, thread-safe).  With the
  /// table in place, cdf/cdfShiftedBy/quantile/sample answer in O(log n)
  /// binary searches instead of O(n) scans — bit-identically, because the
  /// table entries are the linear scans' exact intermediate accumulators.
  /// PMFs queried once are better off without it (the build is itself one
  /// O(n) pass plus an allocation), so the table is built only on request,
  /// for long-lived, repeatedly queried PMFs: PET matrix entries build it
  /// at construction (their CDFs and inverse-CDF samples run for the whole
  /// experiment), while the PCT cache's short-lived memo entries measure
  /// faster without it.
  void ensureCdfCache() const { cdf_.ensure(probs_); }

  /// Whether the prefix-sum table has been built (for tests/benchmarks).
  bool hasCdfCache() const { return cdf_.get() != nullptr; }

  // --- Transformations (all return new PMFs) --------------------------------

  /// Convolution (Eq. 1): distribution of the sum of two independent
  /// variables.  Both operands must share the same bin width.
  /// Support is capped at `maxBins`; excess tail mass folds into the last
  /// retained bin.
  DiscretePmf convolve(const DiscretePmf& other,
                       std::size_t maxBins = kDefaultMaxBins) const;

  /// Shift in time by a whole number of bins (may be negative; the
  /// support may move below zero — completion *times* in the simulator are
  /// absolute, so negative supports are legal for intermediate math).
  DiscretePmf shifted(std::int64_t bins) const;

  /// Remaining-time distribution after `elapsed` time units of execution:
  /// P[X - e | X > e] with e rounded down to the grid.  Used to rebuild a
  /// machine queue's PCT when its head task has been running for a while
  /// (Section II: dropping shortens queues and reduces compound
  /// uncertainty).  If the condition removes all mass (task overdue), the
  /// result is a point mass one bin wide — "should finish any moment now".
  DiscretePmf conditionalRemaining(double elapsed) const;

  /// Exactly conditionalRemaining(elapsed).mean(), without materializing
  /// the intermediate PMF — the scalar the expected-ready estimate needs
  /// for a busy machine's running task.
  double conditionalRemainingMean(double elapsed) const;

  /// Exactly {conditionalRemaining(elapsed).firstBin(), …lastBin()} without
  /// materializing the PMF: the support bounds that let completion-chance
  /// comparisons be decided by interval arithmetic instead of convolution.
  std::pair<std::int64_t, std::int64_t> conditionalRemainingBounds(
      double elapsed) const;

  /// Folds all mass beyond `maxBins` bins into the final retained bin.
  DiscretePmf capped(std::size_t maxBins) const;

  // --- Sampling ------------------------------------------------------------

  /// Draws a concrete time from this PMF (inverse-CDF on the grid).
  double sample(Rng& rng) const;

  /// Distributions are equal when their supports and probabilities match;
  /// the lazily built CDF table is derived state and does not participate.
  bool operator==(const DiscretePmf& other) const {
    return first_ == other.first_ && width_ == other.width_ &&
           probs_ == other.probs_;
  }

 private:
  /// Tag for internally produced probability vectors (convolutions, slices
  /// of already-validated PMFs): skips the per-element validation pass but
  /// still trims and normalizes identically.
  struct Internal {};
  DiscretePmf(Internal, std::int64_t firstBin, std::vector<double> probs,
              double binWidth);
  /// As above with the total mass already known — kernels that compute the
  /// ascending-index sum as a byproduct (convolveAddTiled) hand it over so
  /// normalization skips its own serial scan.  `total` must equal the
  /// ascending-index accumulation over `probs` bit for bit.
  DiscretePmf(Internal, std::int64_t firstBin, std::vector<double> probs,
              double binWidth, double total);

  void trimAndNormalize();
  void trimAndNormalize(double total);

  /// The destination-passing kernels (prob/kernels.cpp) build PMFs straight
  /// from arena buffers; the arena reclaims dead PMFs' buffers.
  friend struct detail::PmfKernelAccess;
  friend class PmfArena;

  std::int64_t first_ = 0;
  std::vector<double> probs_;
  double width_ = 1.0;
  detail::CdfCache cdf_;
};

}  // namespace hcs::prob
