#include "prob/arena.h"

#include <utility>

#include "prob/pmf.h"

namespace hcs::prob {

std::vector<double> PmfArena::acquire(std::size_t n, double fill) {
  ++stats_.acquires;
  // A buffer of capacity exactly n lives one bucket BELOW the first
  // guaranteed bucket (floor vs ceil of log2): peek there first — recurring
  // operation sizes make this the common hit.
  if (n > 0) {
    std::vector<std::vector<double>>& floorBucket =
        pool_[std::min(bucketForCapacity(n), kBuckets - 1)];
    if (!floorBucket.empty() && floorBucket.back().capacity() >= n) {
      std::vector<double> buf = std::move(floorBucket.back());
      floorBucket.pop_back();
      if (floorBucket.empty()) {
        nonEmpty_ &=
            ~(std::uint32_t{1} << std::min(bucketForCapacity(n), kBuckets - 1));
      }
      buf.assign(n, fill);
      return buf;
    }
  }
  // First bucket that guarantees capacity >= n, then any larger one.  A hit
  // never reallocates: assign() reuses the existing capacity.
  const std::uint32_t usable =
      nonEmpty_ & (~std::uint32_t{0} << bucketForRequest(n));
  if (usable != 0) {
    const auto k = static_cast<std::size_t>(std::countr_zero(usable));
    std::vector<std::vector<double>>& bucket = pool_[k];
    std::vector<double> buf = std::move(bucket.back());
    bucket.pop_back();
    if (bucket.empty()) nonEmpty_ &= ~(std::uint32_t{1} << k);
    buf.assign(n, fill);
    return buf;
  }
  ++stats_.allocations;
  return std::vector<double>(n, fill);
}

void PmfArena::recycle(std::vector<double>&& buf) {
  const std::size_t capacity = buf.capacity();
  if (capacity == 0) return;
  const std::size_t k = std::min(bucketForCapacity(capacity), kBuckets - 1);
  std::vector<std::vector<double>>& bucket = pool_[k];
  if (bucket.size() >= kMaxPooledPerBucket) return;
  ++stats_.recycles;
  bucket.push_back(std::move(buf));
  nonEmpty_ |= std::uint32_t{1} << k;
}

void PmfArena::recycle(DiscretePmf&& pmf) {
  recycle(std::move(pmf.probs_));
}

void PmfArena::clear() {
  for (auto& bucket : pool_) bucket.clear();
  nonEmpty_ = 0;
}

std::size_t PmfArena::pooledBuffers() const {
  std::size_t total = 0;
  for (const auto& bucket : pool_) total += bucket.size();
  return total;
}

PmfArena& PmfArena::local() {
  thread_local PmfArena arena;
  return arena;
}

}  // namespace hcs::prob
