#include "prob/histogram.h"

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace hcs::prob {

DiscretePmf gammaHistogramPmf(Rng& rng, double mean, double shape,
                              std::size_t samples, double binWidth) {
  if (mean <= 0.0) {
    throw std::invalid_argument("gammaHistogramPmf: mean must be positive");
  }
  if (shape <= 0.0) {
    throw std::invalid_argument("gammaHistogramPmf: shape must be positive");
  }
  if (samples == 0) {
    throw std::invalid_argument("gammaHistogramPmf: need at least one sample");
  }
  std::vector<double> draws;
  draws.reserve(samples);
  for (std::size_t i = 0; i < samples; ++i) {
    draws.push_back(std::max(rng.gammaByMeanShape(mean, shape), binWidth));
  }
  return DiscretePmf::fromSamples(draws, binWidth);
}

}  // namespace hcs::prob
