#pragma once
// A recycling pool of probability buffers for the PMF hot path.
//
// Every Eq. 1 / Eq. 2 primitive used to heap-allocate a fresh
// std::vector<double> per operation; on the scheduler's candidate loops that
// is thousands of short-lived allocations per mapping event, all of roughly
// the same few sizes.  A PmfArena keeps the buffers of dead PMFs and hands
// their capacity back to the next operation, so a steady-state convolution
// chain (acquire → compute → recycle the previous accumulator) performs no
// heap allocation at all once the pool has warmed up.
//
// The pool is size-classed like an allocator's small-bin cache: recycled
// buffers land in the bucket of their capacity's floor-log2, and acquire(n)
// pops from the first bucket guaranteed to satisfy n (ceil-log2) — a pooled
// hit therefore never reallocates, no matter how mixed the operation sizes
// are (1-bin point masses next to 4096-bin tails).
//
// Arenas are deliberately NOT synchronized: each simulation trial runs on
// one thread, so consumers reach their arena through the thread-local
// PmfArena::local().  Buffers never migrate between threads.

#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace hcs::prob {

class DiscretePmf;

/// Pool of probability buffers recycled across PMF operations.
class PmfArena {
 public:
  /// Size-class buckets; bucket k holds buffers with capacity in
  /// [2^k, 2^(k+1)).  2^(kBuckets-1) doubles comfortably covers the largest
  /// convolution the PMF cap allows (kDefaultMaxBins plus slack).
  static constexpr std::size_t kBuckets = 16;

  /// Buffers kept per bucket; excess recycles free their memory.  Worst
  /// case pooled footprint is dominated by the top bucket: a few MB per
  /// thread, only ever reached if the workload actually used such sizes.
  static constexpr std::size_t kMaxPooledPerBucket = 8;

  PmfArena() = default;
  PmfArena(const PmfArena&) = delete;
  PmfArena& operator=(const PmfArena&) = delete;

  /// A zero-filled buffer of `n` doubles.  A pooled hit reuses capacity and
  /// never touches the heap; only an empty pool (or a size beyond every
  /// pooled buffer) allocates.
  std::vector<double> acquire(std::size_t n) { return acquire(n, 0.0); }

  /// As above, filled with `fill` — consumers that want a sentinel other
  /// than zero (e.g. the mapping context's -1 = unfilled memo slots) pay
  /// one fill pass instead of two.
  std::vector<double> acquire(std::size_t n, double fill);

  /// Returns a buffer's capacity to the pool.
  void recycle(std::vector<double>&& buf);

  /// Reclaims the probability buffer of a PMF that is no longer needed.
  void recycle(DiscretePmf&& pmf);

  struct Stats {
    std::uint64_t acquires = 0;     ///< total acquire() calls
    std::uint64_t allocations = 0;  ///< acquires that touched the heap
    std::uint64_t recycles = 0;     ///< buffers returned to the pool
  };
  const Stats& stats() const { return stats_; }
  void resetStats() { stats_ = Stats{}; }

  /// Drops all pooled buffers (frees their memory).
  void clear();

  std::size_t pooledBuffers() const;

  /// The calling thread's arena.  Single-threaded consumers (machines, the
  /// PCT cache, the scheduler's candidate loops) all share it, which is what
  /// lets one mapping event's dead buffers feed the next one's kernels.
  static PmfArena& local();

 private:
  /// Smallest bucket whose every buffer can hold `n` doubles.
  static std::size_t bucketForRequest(std::size_t n) {
    return n <= 1 ? 0 : static_cast<std::size_t>(std::bit_width(n - 1));
  }
  /// Bucket a buffer of `capacity` doubles belongs to.
  static std::size_t bucketForCapacity(std::size_t capacity) {
    return static_cast<std::size_t>(std::bit_width(capacity)) - 1;
  }

  std::array<std::vector<std::vector<double>>, kBuckets> pool_;
  /// Bit k set iff pool_[k] is non-empty: acquire() finds the first usable
  /// bucket with one countr_zero instead of scanning sixteen vectors.
  std::uint32_t nonEmpty_ = 0;
  Stats stats_;
};

}  // namespace hcs::prob
