#include "prob/kernels.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace hcs::prob {

namespace detail {

/// Private-access shim: lets the kernels build PMFs through the internal
/// (skip-validation) constructor from arena buffers.
struct PmfKernelAccess {
  static DiscretePmf make(std::int64_t firstBin, std::vector<double> probs,
                          double binWidth) {
    return DiscretePmf(DiscretePmf::Internal{}, firstBin, std::move(probs),
                       binWidth);
  }
  static DiscretePmf makeWithTotal(std::int64_t firstBin,
                                   std::vector<double> probs, double binWidth,
                                   double total) {
    return DiscretePmf(DiscretePmf::Internal{}, firstBin, std::move(probs),
                       binWidth, total);
  }
};

}  // namespace detail

namespace kernels {

// Runtime ISA dispatch: the inner loops are pure element-wise multiply-add
// (no reduction, no reassociation), so the AVX2/AVX-512 clones compute
// bit-identical results to the baseline SSE2 build — wider vmulpd / vaddpd
// round each lane exactly like the scalar ops.  This relies on this
// translation unit being built with -ffp-contract=off (see CMakeLists.txt):
// AVX-512F implies FMA, and a contracted vfmadd would round once where the
// scalar path rounds twice.  The dynamic linker picks the widest clone the
// CPU supports via the ifunc resolver.
#if defined(__x86_64__) && defined(__has_attribute)
#if __has_attribute(target_clones)
#define HCS_CONVOLVE_CLONES \
  __attribute__((target_clones("default", "avx2", "avx512f")))
#endif
#endif
#ifndef HCS_CONVOLVE_CLONES
#define HCS_CONVOLVE_CLONES
#endif

HCS_CONVOLVE_CLONES
void convolveAdd(const double* __restrict a, std::size_t na,
                 const double* __restrict b, std::size_t nb,
                 double* __restrict out, std::size_t nout) {
  if (nout == na + nb - 1) {
    // No capping: k = i + j always lands in range.  The inner loop touches
    // each output bin once per i, so it vectorizes without reassociating
    // any per-bin sum.
    for (std::size_t i = 0; i < na; ++i) {
      const double p = a[i];
      if (p == 0.0) continue;
      double* __restrict dst = out + i;
      for (std::size_t j = 0; j < nb; ++j) {
        dst[j] += p * b[j];
      }
    }
    return;
  }
  // Capped: split each row at the fold boundary instead of clamping every
  // index.  j < direct lands below the cap (vectorizable exactly as above);
  // the rest folds into the last bin in the same ascending-j order the
  // clamped loop used.
  const std::size_t last = nout - 1;
  for (std::size_t i = 0; i < na; ++i) {
    const double p = a[i];
    if (p == 0.0) continue;
    const std::size_t direct = i < last ? std::min(nb, last - i) : 0;
    double* __restrict dst = out + i;
    for (std::size_t j = 0; j < direct; ++j) {
      dst[j] += p * b[j];
    }
    for (std::size_t j = direct; j < nb; ++j) {
      out[last] += p * b[j];
    }
  }
}

#if defined(__GNUC__) && defined(__x86_64__)
// Explicit 4-lane vectors keep the per-bin accumulators pinned in registers
// — auto-SLP spills them to the stack, which reintroduces the exact memory
// dependence this kernel exists to remove.  Element-wise vector mul/add are
// the same IEEE operations as their scalar forms, so every lane's sum is
// bit-identical to the scalar per-bin loop.  Under the baseline (SSE2)
// clone GCC lowers each v4df op to two xmm ops — still element-wise.
typedef double v4df __attribute__((vector_size(32), aligned(8)));

#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wpsabi"

namespace {

// always_inline: the loads must be folded into each ISA clone of the kernel
// (they never exist as standalone functions, so the vector-ABI caveat the
// pragma silences cannot arise).
__attribute__((always_inline)) inline v4df loadu4(const double* p) {
  v4df v;
  __builtin_memcpy(&v, p, sizeof v);
  return v;
}

__attribute__((always_inline)) inline void storeu4(double* p, v4df v) {
  __builtin_memcpy(p, &v, sizeof v);
}

}  // namespace

HCS_CONVOLVE_CLONES
double convolveAddTiled(const double* __restrict a, std::size_t na,
                        const double* __restrict bPadded, std::size_t nb,
                        double* __restrict out, std::size_t nout) {
  constexpr std::size_t kBlock = 16;  // output bins per pass: 4 x v4df
  double total = 0.0;
  static_assert(kBlock - 1 <= kConvolvePad,
                "padding must cover the widest tile overhang");
  const std::int64_t nbS = static_cast<std::int64_t>(nb);
  const std::int64_t naS = static_cast<std::int64_t>(na);
  std::size_t k0 = 0;
  for (; k0 + kBlock <= nout; k0 += kBlock) {
    const std::int64_t k0S = static_cast<std::int64_t>(k0);
    // Only i with some lane inside b's real support contributes non-zero
    // terms; lanes that land in the padding add exact +0.0, which leaves
    // every accumulator bit-unchanged.
    const std::int64_t iLo = std::max<std::int64_t>(0, k0S - (nbS - 1));
    const std::int64_t iHi =
        std::min<std::int64_t>(naS - 1, k0S + (kBlock - 1));
    v4df acc0 = {}, acc1 = {}, acc2 = {}, acc3 = {};
    for (std::int64_t i = iLo; i <= iHi; ++i) {
      const double pa = a[i];
      const v4df p = {pa, pa, pa, pa};
      const double* bp = bPadded + (k0S - i);
      acc0 += p * loadu4(bp);
      acc1 += p * loadu4(bp + 4);
      acc2 += p * loadu4(bp + 8);
      acc3 += p * loadu4(bp + 12);
    }
    storeu4(out + k0, acc0);
    storeu4(out + k0 + 4, acc1);
    storeu4(out + k0 + 8, acc2);
    storeu4(out + k0 + 12, acc3);
    // Ascending-k lane sum; the chain hides behind the next block's
    // convolution arithmetic.
    for (std::size_t w = 0; w < 4; ++w) total += acc0[w];
    for (std::size_t w = 0; w < 4; ++w) total += acc1[w];
    for (std::size_t w = 0; w < 4; ++w) total += acc2[w];
    for (std::size_t w = 0; w < 4; ++w) total += acc3[w];
  }
  // Remainder bins, scalar, in the same ascending-i per-bin order.
  for (; k0 < nout; ++k0) {
    const std::int64_t kS = static_cast<std::int64_t>(k0);
    const std::int64_t iLo = std::max<std::int64_t>(0, kS - (nbS - 1));
    const std::int64_t iHi = std::min<std::int64_t>(naS - 1, kS);
    double acc = 0.0;
    for (std::int64_t i = iLo; i <= iHi; ++i) {
      acc += a[i] * bPadded[kS - i];
    }
    out[k0] = acc;
    total += acc;
  }
  return total;
}

#pragma GCC diagnostic pop

#else  // portable fallback: same order, compiler-scheduled

double convolveAddTiled(const double* __restrict a, std::size_t na,
                        const double* __restrict bPadded, std::size_t nb,
                        double* __restrict out, std::size_t nout) {
  const std::int64_t nbS = static_cast<std::int64_t>(nb);
  const std::int64_t naS = static_cast<std::int64_t>(na);
  double total = 0.0;
  for (std::size_t k0 = 0; k0 < nout; ++k0) {
    const std::int64_t kS = static_cast<std::int64_t>(k0);
    const std::int64_t iLo = std::max<std::int64_t>(0, kS - (nbS - 1));
    const std::int64_t iHi = std::min<std::int64_t>(naS - 1, kS);
    double acc = 0.0;
    for (std::int64_t i = iLo; i <= iHi; ++i) {
      acc += a[i] * bPadded[kS - i];
    }
    out[k0] = acc;
    total += acc;
  }
  return total;
}

#endif

HCS_CONVOLVE_CLONES
void ectRow(const double* __restrict ready, const double* __restrict exec,
            const double* __restrict mask, double* __restrict out,
            std::size_t m) {
  // Pure element-wise adds over three contiguous machine-axis rows: the
  // clones vectorize across lanes with per-lane rounding identical to the
  // scalar loop (no reduction, no contraction — this TU is built with
  // -ffp-contract=off).
  for (std::size_t j = 0; j < m; ++j) {
    out[j] = ready[j] + exec[j] + mask[j];
  }
}

}  // namespace kernels

namespace {

/// Minimum work (na*nb products) before the tiled kernel's padded-copy
/// setup pays for itself; below it the plain axpy kernel wins.  A pure
/// performance knob — both kernels produce identical bits.
constexpr std::size_t kTiledThreshold = 512;

/// Shared core of DiscretePmf::convolve and convolveInto: convolve into a
/// ready (pre-zeroed) destination buffer, borrowing tiled-kernel scratch
/// from `arena`.  Returns the ascending-index total mass when the kernel
/// produced it as a byproduct (so normalization can skip its own scan),
/// or a negative sentinel when it did not.
double convolveDispatch(PmfArena& arena, const DiscretePmf& a,
                        const DiscretePmf& b, std::vector<double>& out,
                        std::size_t outSize, std::size_t fullSize) {
  const std::size_t na = a.size();
  const std::size_t nb = b.size();
  if (outSize == fullSize && na * nb >= kTiledThreshold) {
    std::vector<double> bpad =
        arena.acquire(nb + 2 * kernels::kConvolvePad);
    std::copy(b.probs().begin(), b.probs().end(),
              bpad.begin() + kernels::kConvolvePad);
    const double total = kernels::convolveAddTiled(
        a.probs().data(), na, bpad.data() + kernels::kConvolvePad, nb,
        out.data(), outSize);
    arena.recycle(std::move(bpad));
    return total;
  }
  kernels::convolveAdd(a.probs().data(), na, b.probs().data(), nb, out.data(),
                       outSize);
  return -1.0;
}

}  // namespace

DiscretePmf convolveInto(PmfArena& arena, const DiscretePmf& a,
                         const DiscretePmf& b, std::size_t maxBins) {
  if (std::abs(a.binWidth() - b.binWidth()) > 1e-12) {
    throw std::invalid_argument("convolve: mismatched bin widths");
  }
  const std::size_t fullSize = a.size() + b.size() - 1;
  const std::size_t outSize =
      std::min(fullSize, std::max<std::size_t>(maxBins, 1));
  std::vector<double> out = arena.acquire(outSize);
  const double total = convolveDispatch(arena, a, b, out, outSize, fullSize);
  const std::int64_t firstBin = a.firstBin() + b.firstBin();
  return total >= 0.0
             ? detail::PmfKernelAccess::makeWithTotal(firstBin, std::move(out),
                                                      a.binWidth(), total)
             : detail::PmfKernelAccess::make(firstBin, std::move(out),
                                             a.binWidth());
}

void convolveInPlace(PmfArena& arena, DiscretePmf& acc, const DiscretePmf& b,
                     std::size_t maxBins) {
  DiscretePmf next = convolveInto(arena, acc, b, maxBins);
  arena.recycle(std::move(acc));
  acc = std::move(next);
}

DiscretePmf cappedInto(PmfArena& arena, const DiscretePmf& a,
                       std::size_t maxBins) {
  if (maxBins == 0) {
    throw std::invalid_argument("capped: maxBins must be positive");
  }
  // Identity case: DiscretePmf::capped returns *this WITHOUT renormalizing;
  // running the folded buffer through trimAndNormalize would divide by a
  // total one ulp off 1 and change bits.  A plain copy preserves them.
  if (a.size() <= maxBins) return a;
  const std::span<const double> probs = a.probs();
  std::vector<double> out = arena.acquire(maxBins);
  std::copy(probs.begin(),
            probs.begin() + static_cast<std::ptrdiff_t>(maxBins),
            out.begin());
  // Same order as DiscretePmf::capped: the tail is summed from zero and
  // then added onto the final retained bin.
  double tailMass = 0.0;
  for (std::size_t i = maxBins; i < a.size(); ++i) tailMass += probs[i];
  out.back() += tailMass;
  return detail::PmfKernelAccess::make(a.firstBin(), std::move(out),
                                       a.binWidth());
}

DiscretePmf pointMassInto(PmfArena& arena, std::int64_t bin, double binWidth) {
  if (binWidth <= 0.0) {
    throw std::invalid_argument("pointMass: bin width must be positive");
  }
  std::vector<double> out = arena.acquire(1);
  out[0] = 1.0;
  return detail::PmfKernelAccess::make(bin, std::move(out), binWidth);
}

DiscretePmf conditionalRemainingInto(PmfArena& arena, const DiscretePmf& a,
                                     double elapsed, std::int64_t shiftBins) {
  const double width = a.binWidth();
  const auto elapsedBins =
      static_cast<std::int64_t>(std::floor(elapsed / width + 1e-9));
  const std::int64_t keepFrom = elapsedBins + 1;
  if (keepFrom > a.lastBin()) {
    std::vector<double> out = arena.acquire(1);
    out[0] = 1.0;
    return detail::PmfKernelAccess::make(1 + shiftBins, std::move(out), width);
  }
  const std::int64_t skip = std::max<std::int64_t>(keepFrom - a.firstBin(), 0);
  const std::span<const double> probs = a.probs();
  const std::size_t kept = a.size() - static_cast<std::size_t>(skip);
  std::vector<double> out = arena.acquire(kept);
  std::copy(probs.begin() + skip, probs.end(), out.begin());
  return detail::PmfKernelAccess::make(
      a.firstBin() + skip - elapsedBins + shiftBins, std::move(out), width);
}

std::vector<double> successProbabilityBatch(
    std::span<const DiscretePmf* const> pcts, double deadline) {
  std::vector<double> chances;
  chances.reserve(pcts.size());
  for (const DiscretePmf* pct : pcts) {
    chances.push_back(pct->successProbability(deadline));
  }
  return chances;
}

}  // namespace hcs::prob
