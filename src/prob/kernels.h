#pragma once
// Destination-passing kernels over the PMF bin layout.
//
// These are the Eq. 1 / Eq. 2 primitives of prob/pmf.h rewritten to (a) take
// their output buffer from a PmfArena instead of the heap, and (b) run over
// __restrict pointers with a fixed per-output-bin accumulation order, so the
// compiler can auto-vectorize across bins while every result stays
// byte-identical to the DiscretePmf member functions.  Consumers that chain
// operations (machine tail rebuilds, the PCT cache's prefix chains, the
// scheduler's candidate loops) recycle each dead intermediate back into the
// arena, making the steady-state path allocation-free.
//
// Identity contracts (verified bin by bin by tests/kernels_test.cpp):
//   convolveInto(arena, a, b, m)            == a.convolve(b, m)
//   cappedInto(arena, a, m)                 == a.capped(m)
//   conditionalRemainingInto(arena, a, e, s) == a.conditionalRemaining(e)
//                                               .shifted(s)

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "prob/arena.h"
#include "prob/pmf.h"

namespace hcs::prob {

namespace kernels {

/// Adds the discrete convolution of (a, na) and (b, nb) into `out`, which
/// must hold `nout` pre-zeroed bins with nout <= na + nb - 1; contributions
/// to bins at or past nout-1 fold into out[nout-1].  For every output bin
/// the contributions a[i]*b[k-i] are accumulated in ascending i (and, for
/// the fold bin, ascending (i, j)) — the exact order of the original scalar
/// loop, so results are bit-identical while the in-range inner loop is a
/// clean `out[i + j] += a[i] * b[j]` the compiler vectorizes across bins.
void convolveAdd(const double* __restrict a, std::size_t na,
                 const double* __restrict b, std::size_t nb,
                 double* __restrict out, std::size_t nout);

/// Zero padding convolveAddTiled() requires on BOTH sides of operand b
/// (in doubles): bPadded must point at the first real b value inside a
/// buffer laid out as [kConvolvePad zeros][b...][kConvolvePad zeros].
inline constexpr std::size_t kConvolvePad = 31;

/// Uncapped convolution (nout must equal na + nb - 1) with the per-output-
/// bin accumulation order held entirely in registers: each output bin's sum
/// Σ_i a[i]·b[k-i] is accumulated in ascending i — the identical order (and
/// therefore identical bits) as convolveAdd — but a register tile covers a
/// block of adjacent bins, so the compiler vectorizes ACROSS bins with no
/// load/store of `out` inside the loop.  The axpy form above is limited by
/// store-to-load forwarding between overlapping dst vectors; this form has
/// no memory dependence at all.  Out-of-range b terms read the zero padding
/// and contribute exact +0.0, which leaves every accumulator bit-unchanged.
/// `out` is overwritten (not accumulated into).
///
/// Returns the total mass Σ_k out[k], accumulated strictly in ascending k —
/// the exact value normalization's own scan would produce — computed as a
/// byproduct: the serial FP sum chain overlaps the next block's independent
/// convolution work instead of costing a dedicated O(n) latency chain.
double convolveAddTiled(const double* __restrict a, std::size_t na,
                        const double* __restrict bPadded, std::size_t nb,
                        double* __restrict out, std::size_t nout);

/// Phase-1 ECT row for the batch-mapping engine's machine-axis SoA layout:
/// out[j] = ready[j] + exec[j] + mask[j] for every machine j in one pass
/// over three contiguous rows.  `mask` is 0.0 for machines with free
/// virtual queue slots and +infinity for ineligible ones, so a single
/// branch-free sweep prices every machine and poisons the ineligible lanes
/// to +inf in the same instruction.  Bit-identity with the scalar
/// ready + exec sum holds lane by lane: the adds are element-wise (no
/// reduction, no reassociation, same -ffp-contract=off discipline as the
/// convolution kernels), and x + 0.0 == x bitwise for every non-negative
/// finite x (ready and exec are never negative, so no lane is -0.0).
void ectRow(const double* __restrict ready, const double* __restrict exec,
            const double* __restrict mask, double* __restrict out,
            std::size_t m);

}  // namespace kernels

/// a.convolve(b, maxBins) with the result buffer drawn from `arena`.
DiscretePmf convolveInto(PmfArena& arena, const DiscretePmf& a,
                         const DiscretePmf& b,
                         std::size_t maxBins = DiscretePmf::kDefaultMaxBins);

/// acc = acc ⊛ b with the dead accumulator's buffer recycled into `arena`:
/// the steady-state step of Eq. 1 chains, allocation-free once warm.
void convolveInPlace(PmfArena& arena, DiscretePmf& acc, const DiscretePmf& b,
                     std::size_t maxBins = DiscretePmf::kDefaultMaxBins);

/// a.capped(maxBins) with the result buffer drawn from `arena`.
DiscretePmf cappedInto(PmfArena& arena, const DiscretePmf& a,
                       std::size_t maxBins);

/// A one-bin PMF with all mass on grid bin `bin` — identical to
/// DiscretePmf(bin, {1.0}, binWidth) but with the buffer drawn from `arena`
/// (the idle-machine availability point mass of Eq. 1 chains).
DiscretePmf pointMassInto(PmfArena& arena, std::int64_t bin, double binWidth);

/// a.conditionalRemaining(elapsed).shifted(shiftBins) in one step with the
/// result buffer drawn from `arena`; `shiftBins` re-anchors the remaining
/// distribution to absolute time without the intermediate copy.
DiscretePmf conditionalRemainingInto(PmfArena& arena, const DiscretePmf& a,
                                     double elapsed,
                                     std::int64_t shiftBins = 0);

/// Eq. 2 over a batch of completion-time distributions: element i is
/// pcts[i]->successProbability(deadline), evaluated in one call so a
/// mapping context can score every candidate machine's PCT against a
/// task's deadline together.  Each PMF answers through its prefix-sum
/// table when it has one; the batching is an API convenience (one
/// result vector, one call site), not a fused kernel.
std::vector<double> successProbabilityBatch(
    std::span<const DiscretePmf* const> pcts, double deadline);

}  // namespace hcs::prob
