#include "prob/rng.h"

#include <stdexcept>

namespace hcs::prob {

double Rng::uniform(double lo, double hi) {
  if (hi < lo) throw std::invalid_argument("Rng::uniform: hi < lo");
  return lo + (hi - lo) * uniform01();
}

std::int64_t Rng::uniformInt(std::int64_t lo, std::int64_t hi) {
  if (hi < lo) throw std::invalid_argument("Rng::uniformInt: hi < lo");
  return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
}

double Rng::gamma(double shape, double scale) {
  if (shape <= 0.0 || scale <= 0.0) {
    throw std::invalid_argument("Rng::gamma: shape and scale must be positive");
  }
  return std::gamma_distribution<double>(shape, scale)(engine_);
}

double Rng::exponential(double mean) {
  if (mean <= 0.0) {
    throw std::invalid_argument("Rng::exponential: mean must be positive");
  }
  return std::exponential_distribution<double>(1.0 / mean)(engine_);
}

Rng Rng::fork() {
  // Two draws give a full 64-bit child seed with negligible correlation.
  const std::uint64_t hi = engine_();
  const std::uint64_t lo = engine_();
  return Rng((hi << 32) ^ lo ^ 0x9e3779b97f4a7c15ULL);
}

}  // namespace hcs::prob
