#!/usr/bin/env python3
"""Structural diff of hcs scenario reports (or any two JSON files).

Strings, booleans, nulls, keys and array lengths must match exactly;
numbers match exactly by default, or within --rtol/--atol when given (CI
compares cross-compiler/cross-libm runs against the committed golden with a
tiny rtol, so a last-ulp libm difference doesn't fail the build while any
real regression does).

Exit status: 0 = match, 1 = mismatch, 2 = usage/IO error.
"""

import argparse
import json
import math
import sys


def compare(a, b, path, rtol, atol, diffs, limit=20):
    if len(diffs) >= limit:
        return
    if type(a) is not type(b) and not (
        isinstance(a, (int, float)) and isinstance(b, (int, float))
        and not isinstance(a, bool) and not isinstance(b, bool)
    ):
        diffs.append(f"{path}: type {type(a).__name__} != {type(b).__name__}")
        return
    if isinstance(a, dict):
        for key in a.keys() | b.keys():
            if key not in a:
                diffs.append(f"{path}.{key}: only in second file")
            elif key not in b:
                diffs.append(f"{path}.{key}: only in first file")
            else:
                compare(a[key], b[key], f"{path}.{key}", rtol, atol, diffs,
                        limit)
    elif isinstance(a, list):
        if len(a) != len(b):
            diffs.append(f"{path}: array length {len(a)} != {len(b)}")
            return
        for i, (x, y) in enumerate(zip(a, b)):
            compare(x, y, f"{path}[{i}]", rtol, atol, diffs, limit)
    elif isinstance(a, bool) or a is None or isinstance(a, str):
        if a != b:
            diffs.append(f"{path}: {a!r} != {b!r}")
    else:  # number
        if a == b:
            return
        if math.isclose(a, b, rel_tol=rtol, abs_tol=atol):
            return
        diffs.append(f"{path}: {a!r} != {b!r}")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current", help="freshly produced report")
    parser.add_argument("golden", help="committed golden report")
    parser.add_argument("--rtol", type=float, default=0.0,
                        help="relative tolerance for numbers (default exact)")
    parser.add_argument("--atol", type=float, default=0.0,
                        help="absolute tolerance for numbers (default exact)")
    args = parser.parse_args()

    try:
        with open(args.current) as f:
            current = json.load(f)
        with open(args.golden) as f:
            golden = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"report_diff: {e}", file=sys.stderr)
        return 2

    diffs = []
    compare(current, golden, "$", args.rtol, args.atol, diffs)
    if diffs:
        print(f"report_diff: {args.current} deviates from {args.golden}:")
        for d in diffs:
            print(f"  {d}")
        if len(diffs) >= 20:
            print("  ... (truncated)")
        return 1
    print(f"report_diff: {args.current} matches {args.golden}"
          + (f" (rtol={args.rtol:g}, atol={args.atol:g})"
             if args.rtol or args.atol else " (exact)"))
    return 0


if __name__ == "__main__":
    sys.exit(main())
