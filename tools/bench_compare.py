#!/usr/bin/env python3
"""Compare freshly produced BENCH_*.json artifacts against committed baselines.

Each bench binary writes a flat JSON object (see bench/bench_util.h).  This
script diffs a curated set of tracked metrics against the committed numbers
under bench/baselines/ and fails (exit 1) when a metric regressed by more
than the threshold (default 15%), or when a metric with an absolute FLOOR
(e.g. every mapping-engine speedup_* must stay >= 1.0) dips below it on the
current artifact regardless of the baseline.  Metrics move with container
weather, so
the tracked set sticks to ratios and relative costs that are stable across
machines rather than raw wall-clock where possible.

Usage:
  tools/bench_compare.py --current-dir build [--baseline-dir bench/baselines]
                         [--threshold 0.15]

A missing current artifact is skipped with a warning (benches are optional
build targets); a missing baseline for a present artifact is a hard failure —
every bench that runs must have its baseline committed alongside it, or the
comparison silently stops guarding that bench.
"""

import argparse
import json
import os
import sys

# metric -> direction: "lower" = smaller is better, "higher" = bigger is
# better.  Regression = worse than baseline by more than the threshold.
TRACKED = {
    "BENCH_pct_cache.json": {
        "cache_speedup": "higher",
        "cached_serial_ms": "lower",
    },
    "BENCH_pmf_kernel.json": {
        "speedup": "higher",
        "cdf_speedup": "higher",
    },
    "BENCH_mapping_engine.json": {
        "speedup_512": "higher",
        "engine_us_512_incremental": "lower",
    },
    # Gateway overhead sits at ~0% and flips sign with container weather, so
    # the tracked set sticks to the per-task routing costs.
    "BENCH_federation.json": {
        "n4_round_robin_us_per_task": "lower",
        "n4_max_chance_us_per_task": "lower",
    },
    # Churn overhead relative to the fault-free run is a machine-stable
    # ratio; the raw per-task cost backs it up.
    "BENCH_faults.json": {
        "churn_overhead_ratio": "lower",
        "churn_us_per_task": "lower",
    },
    # Controller cost relative to the fixed-capacity run is a machine-stable
    # ratio; the raw per-task cost backs it up.  (The pinned-identity gate
    # is pass/fail inside the bench binary itself, not a tracked number.)
    "BENCH_elasticity.json": {
        "elastic_overhead_ratio": "lower",
        "elastic_us_per_task": "lower",
    },
    # Streamed-vs-materialized cost is a machine-stable ratio; the
    # large-run throughput is the service-mode headline.  (The
    # streamed-identity gate is pass/fail inside the bench binary.)
    "BENCH_streaming.json": {
        "streamed_overhead_ratio": "lower",
        "streamed_tasks_per_sec": "higher",
    },
}

# Absolute floors, checked on the CURRENT artifact alone — no baseline, no
# threshold slack.  Every field whose name starts with the prefix must stay
# >= the floor.  The mapping-engine entry is the adaptive-engine contract
# itself: the shipped engine must never be slower than the reference engine
# at ANY measured burst size, regardless of what the committed baseline
# says.  ("event_speedup_*" fields are deliberately NOT matched: the whole-
# event ratio is diluted by simulation substrate shared between engines.)
FLOORS = {
    "BENCH_mapping_engine.json": {
        "speedup_": 1.0,
    },
}


def load(path):
    with open(path) as f:
        return json.load(f)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline-dir", default="bench/baselines")
    parser.add_argument("--current-dir", default="build")
    parser.add_argument("--threshold", type=float, default=0.15,
                        help="allowed relative regression (default 0.15)")
    args = parser.parse_args()

    failures = []
    compared = 0
    for artifact, metrics in TRACKED.items():
        current_path = os.path.join(args.current_dir, artifact)
        baseline_path = os.path.join(args.baseline_dir, artifact)
        if not os.path.exists(current_path):
            print(f"skip  {artifact}: not produced in {args.current_dir}")
            continue
        current = load(current_path)
        # Floors are checked before (and independently of) the baseline
        # diff: an absolute contract violation must fail even on a machine
        # whose committed baseline is missing or stale.
        for prefix, floor in FLOORS.get(artifact, {}).items():
            for metric in sorted(current):
                if not metric.startswith(prefix):
                    continue
                value = float(current[metric])
                compared += 1
                ok = value >= floor
                print(f"{'ok' if ok else 'FAIL':4}  {artifact}:{metric}  "
                      f"floor {floor:g}  current {value:g}")
                if not ok:
                    failures.append(f"{artifact}:{metric}<floor")
        if not os.path.exists(baseline_path):
            print(f"FAIL  {artifact}: no committed baseline in "
                  f"{args.baseline_dir} — commit one")
            failures.append(f"{artifact}:missing-baseline")
            continue
        baseline = load(baseline_path)
        for metric, direction in metrics.items():
            if metric not in current or metric not in baseline:
                print(f"warn  {artifact}:{metric} missing on one side")
                continue
            cur, base = float(current[metric]), float(baseline[metric])
            if base == 0:
                continue
            if direction == "lower":
                change = (cur - base) / base
            else:
                change = (base - cur) / base
            compared += 1
            status = "FAIL" if change > args.threshold else "ok"
            trend = (f"+{change * 100:.1f}% worse" if change >= 0
                     else f"{-change * 100:.1f}% better")
            print(f"{status:4}  {artifact}:{metric}  baseline {base:g}  "
                  f"current {cur:g}  ({trend})")
            if change > args.threshold:
                failures.append(f"{artifact}:{metric}")

    if not compared:
        print("no metrics compared — nothing produced or no baselines")
    if failures:
        print(f"\nbench_compare: {len(failures)} check(s) failed (regression "
              f">{args.threshold * 100:.0f}%, floor violation, or missing "
              f"baseline): {', '.join(failures)}")
        return 1
    print(f"\nbench_compare: {compared} tracked metric(s) within threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
