// hcs_sim — command-line driver for the simulation platform.
//
// Runs a multi-trial experiment for any heuristic/pruning configuration
// without writing C++.  Examples:
//
//   hcs_sim --heuristic MM --rate 20000 --trials 10
//   hcs_sim --heuristic MSD --no-pruning --pattern constant
//   hcs_sim --heuristic EDF --homogeneous --threshold 0.25 --csv
//   hcs_sim --heuristic KPB --toggle always --no-defer --scale 0.05
//   hcs_sim --trace trial.trace --heuristic MM       # replay a saved trace

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "exp/experiment.h"
#include "exp/report.h"
#include "exp/scenario.h"
#include "workload/trace_io.h"

namespace {

using namespace hcs;

void usage(const char* argv0) {
  std::printf(
      "usage: %s [options]\n"
      "  --heuristic NAME   RR|MET|MCT|KPB|MaxChance|MM|MSD|MMU|MaxMin|Sufferage|\n"
      "                     FCFS-RR|EDF|SJF            (default MM)\n"
      "  --rate N           paper-equivalent tasks (default 20000)\n"
      "  --pattern P        spiky|constant             (default spiky)\n"
      "  --homogeneous      use the homogeneous cluster\n"
      "  --trials N         trials (default 8)\n"
      "  --scale X          workload scale factor (default 0.1)\n"
      "  --jobs N           trial threads: 1 serial, 0 all cores (default 1)\n"
      "  --seed N           base seed (default 2019)\n"
      "  --no-pruning       disable the pruning mechanism entirely\n"
      "  --threshold X      pruning threshold beta in [0,1] (default 0.5)\n"
      "  --toggle T         reactive|always|never      (default reactive)\n"
      "  --no-defer         disable task deferring\n"
      "  --fairness C       fairness factor (default 0.05)\n"
      "  --capacity N       machine queue capacity (default 4)\n"
      "  --kpb X            KPB's K fraction (default 0.375)\n"
      "  --abort-overdue    abort running tasks at their deadline\n"
      "  --no-pct-cache     disable PCT memoization (results identical;\n"
      "                     for timing comparisons)\n"
      "  --no-incremental-map  use the reference mapping engine (fresh\n"
      "                     context + full re-evaluation per round; results\n"
      "                     identical, for timing comparisons)\n"
      "  --trace FILE       replay a saved workload trace (single trial)\n"
      "  --save-trace FILE  save trial 0's workload to FILE and exit\n"
      "  --csv              machine-readable output\n",
      argv0);
}

[[noreturn]] void die(const std::string& message) {
  std::fprintf(stderr, "hcs_sim: %s\n", message.c_str());
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  exp::PaperScenario::Options options = exp::PaperScenario::optionsFromEnv();
  std::string heuristic = "MM";
  std::size_t rate = 20000;
  workload::ArrivalPattern pattern = workload::ArrivalPattern::Spiky;
  bool homogeneous = false;
  bool csv = false;
  std::uint64_t seed = 2019;
  std::string tracePath;
  std::string saveTracePath;
  core::SimulationConfig sim;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) die("missing argument after " + arg);
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (arg == "--heuristic") {
      heuristic = next();
    } else if (arg == "--rate") {
      rate = std::strtoul(next(), nullptr, 10);
    } else if (arg == "--pattern") {
      const std::string p = next();
      if (p == "spiky") {
        pattern = workload::ArrivalPattern::Spiky;
      } else if (p == "constant") {
        pattern = workload::ArrivalPattern::Constant;
      } else {
        die("unknown pattern " + p);
      }
    } else if (arg == "--homogeneous") {
      homogeneous = true;
    } else if (arg == "--trials") {
      options.trials = std::strtoul(next(), nullptr, 10);
    } else if (arg == "--scale") {
      options.scale = std::strtod(next(), nullptr);
    } else if (arg == "--jobs") {
      options.jobs = std::strtoul(next(), nullptr, 10);
    } else if (arg == "--seed") {
      seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--no-pruning") {
      sim.pruning = pruning::PruningConfig::disabled();
    } else if (arg == "--threshold") {
      sim.pruning.threshold = std::strtod(next(), nullptr);
    } else if (arg == "--toggle") {
      const std::string t = next();
      if (t == "reactive") {
        sim.pruning.toggle = pruning::ToggleMode::Reactive;
      } else if (t == "always") {
        sim.pruning.toggle = pruning::ToggleMode::AlwaysDropping;
      } else if (t == "never") {
        sim.pruning.toggle = pruning::ToggleMode::NoDropping;
      } else {
        die("unknown toggle mode " + t);
      }
    } else if (arg == "--no-defer") {
      sim.pruning.deferEnabled = false;
    } else if (arg == "--fairness") {
      sim.pruning.fairnessFactor = std::strtod(next(), nullptr);
    } else if (arg == "--capacity") {
      sim.machineQueueCapacity = std::strtoul(next(), nullptr, 10);
    } else if (arg == "--kpb") {
      sim.heuristicOptions.kpbPercent = std::strtod(next(), nullptr);
    } else if (arg == "--abort-overdue") {
      sim.abortRunningAtDeadline = true;
    } else if (arg == "--no-pct-cache") {
      sim.pctCacheEnabled = false;
    } else if (arg == "--no-incremental-map") {
      sim.incrementalMappingEnabled = false;
    } else if (arg == "--trace") {
      tracePath = next();
    } else if (arg == "--save-trace") {
      saveTracePath = next();
    } else if (arg == "--csv") {
      csv = true;
    } else {
      die("unknown argument " + arg + " (try --help)");
    }
  }

  try {
    const exp::PaperScenario scenario(options);
    const workload::BoundExecutionModel& cluster =
        homogeneous ? scenario.homo() : scenario.hetero();
    sim.heuristic = heuristic;
    sim.warmupMargin = scenario.warmupMargin(rate);

    if (!saveTracePath.empty()) {
      const workload::Workload wl = workload::Workload::generate(
          *scenario.pet(), scenario.arrivalSpec(rate, pattern), {}, seed);
      workload::saveWorkloadFile(wl, saveTracePath);
      std::printf("saved %zu tasks to %s\n", wl.size(),
                  saveTracePath.c_str());
      return 0;
    }

    if (!tracePath.empty()) {
      const workload::Workload wl = workload::loadWorkloadFile(tracePath);
      const core::TrialResult result =
          core::Simulation(cluster, wl, sim).run();
      std::printf("trace: %zu tasks, robustness %.2f%%\n", wl.size(),
                  result.robustnessPercent);
      std::printf(
          "on-time %zu, late %zu, reactive drops %zu, proactive drops %zu, "
          "deferrals %zu\n",
          result.metrics.completedOnTime(), result.metrics.completedLate(),
          result.metrics.droppedReactive(),
          result.metrics.droppedProactive(), result.metrics.deferrals());
      return 0;
    }

    exp::ExperimentSpec spec = scenario.experimentSpec(rate, pattern);
    spec.sim = sim;
    spec.baseSeed = seed;
    const exp::ExperimentResult result = exp::runExperiment(cluster, spec);

    exp::Table table({"metric", "mean ±95% CI"});
    table.addRow({"robustness (% on time)", exp::formatCi(result.robustnessCi)});
    table.addRow({"completed late %",
                  exp::formatCi(stats::meanConfidenceInterval(
                      result.completedLatePct))});
    table.addRow({"dropped reactive %",
                  exp::formatCi(stats::meanConfidenceInterval(
                      result.droppedReactivePct))});
    table.addRow({"dropped proactive %",
                  exp::formatCi(stats::meanConfidenceInterval(
                      result.droppedProactivePct))});
    table.addRow({"deferrals per task",
                  exp::formatCi(stats::meanConfidenceInterval(
                      result.deferralsPerTask), 2)});
    table.addRow({"mean machine utilization",
                  exp::formatCi(stats::meanConfidenceInterval(
                      result.meanUtilization), 2)});
    if (csv) {
      table.printCsv(std::cout);
    } else {
      std::printf("heuristic=%s rate=%zu pattern=%s cluster=%s trials=%zu "
                  "scale=%g\n\n",
                  heuristic.c_str(), rate,
                  pattern == workload::ArrivalPattern::Spiky ? "spiky"
                                                             : "constant",
                  homogeneous ? "homogeneous" : "heterogeneous",
                  options.trials, options.scale);
      table.print(std::cout);
    }
  } catch (const std::exception& e) {
    die(e.what());
  }
  return 0;
}
