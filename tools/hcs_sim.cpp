// hcs_sim — command-line driver for the simulation platform.
//
// Scenario mode (preferred): declarative JSON scenario files, optionally
// with parameter-sweep axes, executed through the shared sweep runner —
// the same engine the figure benches wrap.
//
//   hcs_sim run scenarios/fig09_batch_pruning.json
//   hcs_sim run scenarios/smoke.json --out report.json
//   hcs_sim run scenarios/fig08_deferring_threshold.json \
//       --set run.scale=0.05 --set run.trials=3 --csv
//   hcs_sim expand scenarios/fig09_batch_pruning.json   # dry-run the grid
//   hcs_sim print scenarios/smoke.json                  # canonical form
//
// Legacy flag mode (one ad-hoc experiment without a file):
//
//   hcs_sim --heuristic MM --rate 20000 --trials 10
//   hcs_sim --heuristic EDF --homogeneous --threshold 0.25 --csv
//   hcs_sim --trace trial.trace --heuristic MM     # replay a saved trace

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "exp/experiment.h"
#include "exp/report.h"
#include "exp/scenario.h"
#include "exp/scenario_spec.h"
#include "exp/sweep.h"
#include "util/json.h"
#include "workload/trace_io.h"

namespace {

using namespace hcs;

void usage(const char* argv0, std::FILE* out) {
  std::fprintf(out,
      "usage: %s <command> [options]\n"
      "\n"
      "scenario commands:\n"
      "  run <scenario.json>    execute the scenario (and its sweep grid)\n"
      "    --set path=value     override any field (repeatable), e.g.\n"
      "                         --set sim.heuristic=MSD --set run.scale=0.05\n"
      "    --out FILE           write the machine-readable JSON report\n"
      "    --csv                tables as CSV (flat per-point CSV on stdout\n"
      "                         with --flat)\n"
      "    --flat               flat per-grid-point CSV instead of tables\n"
      "    --quiet              suppress progress lines on stderr\n"
      "  expand <scenario.json> [--set ...]  list the expanded grid, no runs\n"
      "  print <scenario.json> [--set ...]   canonical full-form scenario\n"
      "  validate <scenario.json> [--set ...]  strict-parse and show the\n"
      "                         resolved config without running; exit 2 with\n"
      "                         a line-numbered error on schema violations\n"
      "\n"
      "legacy single-experiment flags (no scenario file):\n"
      "  --heuristic NAME   RR|MET|MCT|KPB|MaxChance|MM|MSD|MMU|MaxMin|\n"
      "                     Sufferage|FCFS-RR|EDF|SJF      (default MM)\n"
      "  --rate N           paper-equivalent tasks (default 20000)\n"
      "  --pattern P        spiky|constant                (default spiky)\n"
      "  --homogeneous      use the homogeneous cluster\n"
      "  --trials N         trials (default 8)\n"
      "  --scale X          workload scale factor (default 0.1)\n"
      "  --jobs N           trial threads: 1 serial, 0 all cores (default 1)\n"
      "  --seed N           base seed (default 2019)\n"
      "  --no-pruning       disable the pruning mechanism entirely\n"
      "  --threshold X      pruning threshold beta in [0,1] (default 0.5)\n"
      "  --toggle T         reactive|always|never         (default reactive)\n"
      "  --no-defer         disable task deferring\n"
      "  --fairness C       fairness factor (default 0.05)\n"
      "  --capacity N       machine queue capacity (default 4)\n"
      "  --kpb X            KPB's K fraction (default 0.375)\n"
      "  --abort-overdue    abort running tasks at their deadline\n"
      "  --no-pct-cache     disable PCT memoization (results identical)\n"
      "  --no-incremental-map  use the reference mapping engine\n"
      "  --map-min-queue N  adaptive engine: rounds with fewer than N\n"
      "                     queued tasks use the reference evaluation\n"
      "                     (0 = always incremental; default 16)\n"
      "  --stream           streamed arrivals: generate tasks as the trial\n"
      "                     reaches them (bounded memory, same results)\n"
      "  --trace FILE       replay a saved workload trace (single trial)\n"
      "  --save-trace FILE  save trial 0's workload to FILE and exit\n"
      "  --csv              machine-readable output\n",
      argv0);
}

[[noreturn]] void die(const std::string& message) {
  std::fprintf(stderr, "hcs_sim: %s\n", message.c_str());
  std::exit(2);
}

[[noreturn]] void dieWithUsage(const char* argv0, const std::string& message) {
  std::fprintf(stderr, "hcs_sim: %s\n\n", message.c_str());
  usage(argv0, stderr);
  std::exit(2);
}

// --- Scenario mode ----------------------------------------------------------

struct ScenarioArgs {
  std::string path;
  std::vector<std::string> sets;
  std::string outPath;
  bool csv = false;
  bool flat = false;
  bool quiet = false;
};

ScenarioArgs parseScenarioArgs(const char* argv0, int argc, char** argv,
                               int first, bool runOptions) {
  ScenarioArgs args;
  for (int i = first; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) dieWithUsage(argv0, "missing argument after " + arg);
      return argv[++i];
    };
    // --out/--csv/--flat/--quiet only mean something for `run`; accepting
    // them elsewhere would silently not do what the user asked.
    if (arg == "--set") {
      args.sets.emplace_back(next());
    } else if (arg == "--out" && runOptions) {
      args.outPath = next();
    } else if (arg == "--csv" && runOptions) {
      args.csv = true;
    } else if (arg == "--flat" && runOptions) {
      args.flat = true;
    } else if (arg == "--quiet" && runOptions) {
      args.quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv0, stdout);
      std::exit(0);
    } else if (!arg.empty() && arg[0] == '-') {
      dieWithUsage(argv0, "unknown option " + arg);
    } else if (args.path.empty()) {
      args.path = arg;
    } else {
      dieWithUsage(argv0, "unexpected argument " + arg);
    }
  }
  if (args.path.empty()) {
    dieWithUsage(argv0, "missing scenario file");
  }
  return args;
}

/// Loads the scenario, applies --set overrides, re-validates.
exp::ScenarioDoc loadWithOverrides(const ScenarioArgs& args) {
  exp::ScenarioDoc doc = exp::loadScenarioDoc(args.path);
  if (args.sets.empty()) return doc;
  for (const std::string& directive : args.sets) {
    // The file's sweep axes were already split off doc.base and would
    // clobber a "sweep" assignment on re-serialization — reject instead of
    // silently ignoring it.
    if (directive.rfind("sweep=", 0) == 0 ||
        directive.rfind("sweep.", 0) == 0) {
      die("--set cannot override \"sweep\"; edit the scenario file");
    }
    exp::applySetDirective(doc.base, directive);
  }
  // Overridden documents must still satisfy the schema end-to-end.  Error
  // line numbers now refer to the re-serialized document (`hcs_sim print`
  // shows it), not the original file — say so in the origin.
  return exp::parseScenarioDoc(exp::writeScenarioDoc(doc),
                               args.path + " (after --set; lines refer to "
                                           "the canonical form)");
}

int cmdRun(const char* argv0, int argc, char** argv) {
  const ScenarioArgs args =
      parseScenarioArgs(argv0, argc, argv, 2, /*runOptions=*/true);
  const exp::ScenarioDoc doc = loadWithOverrides(args);
  const auto progress = [&](std::size_t i, std::size_t n,
                            const std::string& label) {
    if (args.quiet) return;
    std::fprintf(stderr, "[%zu/%zu] %s\n", i + 1, n,
                 label.empty() ? "run" : label.c_str());
  };
  const std::vector<exp::SweepOutcome> outcomes =
      exp::runSweep(doc, progress);
  if (args.flat) {
    exp::printSweepCsv(std::cout, doc, outcomes);
  } else {
    const exp::ScenarioSpec base = doc.baseSpec();
    if (!args.csv) {
      std::printf("scenario: %s\n",
                  base.name.empty() ? args.path.c_str() : base.name.c_str());
      if (!base.description.empty()) {
        std::printf("%s\n", base.description.c_str());
      }
      std::printf("scale=%g trials=%zu seed=%llu grid=%zu\n\n", base.scale,
                  base.trials, static_cast<unsigned long long>(base.seed),
                  outcomes.size());
    }
    exp::printSweepTables(std::cout, doc, outcomes, args.csv);
  }
  std::cout << std::flush;
  if (!args.outPath.empty()) {
    const std::string json =
        util::writeJson(exp::sweepReportJson(doc, outcomes));
    std::ofstream out(args.outPath, std::ios::binary);
    if (!out) die("cannot write " + args.outPath);
    out << json;
    if (!args.quiet) {
      std::fprintf(stderr, "wrote %s\n", args.outPath.c_str());
    }
  }
  return 0;
}

int cmdExpand(const char* argv0, int argc, char** argv) {
  const ScenarioArgs args =
      parseScenarioArgs(argv0, argc, argv, 2, /*runOptions=*/false);
  const exp::ScenarioDoc doc = loadWithOverrides(args);
  const std::vector<exp::GridPoint> grid = exp::expandGrid(doc);
  std::printf("%zu grid point%s", grid.size(), grid.size() == 1 ? "" : "s");
  if (!doc.axes.empty()) {
    std::printf(" (");
    for (std::size_t a = 0; a < doc.axes.size(); ++a) {
      if (a > 0) std::printf(" x ");
      std::printf("%zu %s", doc.axes[a].size(), doc.axes[a].label.c_str());
    }
    std::printf(")");
  }
  std::printf("\n");
  for (const exp::GridPoint& point : grid) {
    std::printf("  [");
    for (std::size_t a = 0; a < point.labels.size(); ++a) {
      if (a > 0) std::printf(", ");
      std::printf("%s", point.labels[a].c_str());
    }
    std::printf("] heuristic=%s cluster=%s trials=%zu seed=%llu\n",
                point.spec.heuristic.c_str(),
                point.spec.clusterKind ==
                        exp::ScenarioSpec::ClusterKind::Homogeneous
                    ? "homogeneous"
                    : (point.spec.clusterKind ==
                               exp::ScenarioSpec::ClusterKind::Custom
                           ? "custom"
                           : "heterogeneous"),
                point.spec.trials,
                static_cast<unsigned long long>(point.spec.seed));
  }
  return 0;
}

int cmdPrint(const char* argv0, int argc, char** argv) {
  const ScenarioArgs args =
      parseScenarioArgs(argv0, argc, argv, 2, /*runOptions=*/false);
  const exp::ScenarioDoc doc = loadWithOverrides(args);
  exp::ScenarioDoc canonical;
  canonical.base = exp::scenarioSpecToJson(doc.baseSpec());
  canonical.axes = doc.axes;
  std::fputs(exp::writeScenarioDoc(canonical).c_str(), stdout);
  return 0;
}

int cmdValidate(const char* argv0, int argc, char** argv) {
  const ScenarioArgs args =
      parseScenarioArgs(argv0, argc, argv, 2, /*runOptions=*/false);
  // loadWithOverrides is the full strict parse (unknown keys, types,
  // ranges, cross-field rules); any ScenarioError propagates to main's
  // handler, which prints the line-numbered message and exits 2.
  const exp::ScenarioDoc doc = loadWithOverrides(args);
  const exp::ScenarioSpec spec = doc.baseSpec();
  const std::vector<exp::GridPoint> grid = exp::expandGrid(doc);
  std::fprintf(stderr, "%s: OK\n", args.path.c_str());
  std::fprintf(stderr,
               "  name=%s heuristic=%s trials=%zu scale=%g seed=%llu "
               "grid=%zu\n",
               spec.name.empty() ? "(unnamed)" : spec.name.c_str(),
               spec.heuristic.c_str(), spec.trials, spec.scale,
               static_cast<unsigned long long>(spec.seed), grid.size());
  if (spec.faults.active()) {
    std::fprintf(stderr,
                 "  faults: mtbf=%g mttr=%g max_attempts=%d scripted=%zu\n",
                 spec.faults.mtbf, spec.faults.mttr, spec.faults.maxAttempts,
                 spec.faults.events.size());
  }
  if (spec.federationEnabled) {
    std::fprintf(stderr, "  federation: clusters=%zu admission=%s\n",
                 spec.fedClusters,
                 std::string(fed::toString(spec.admission.policy)).c_str());
  }
  if (spec.stream.enabled) {
    std::fprintf(stderr, "  stream: %s max_tasks=%zu max_time=%g\n",
                 spec.stream.trace.empty()
                     ? "generated"
                     : (spec.stream.trace + " (" + spec.stream.format + ")")
                           .c_str(),
                 spec.stream.maxTasks, spec.stream.maxTime);
  }
  if (spec.elasticity.active()) {
    int lo = 0, hi = 0;
    for (const sim::ElasticGroup& g : spec.elasticity.pool) {
      lo += g.minMachines;
      hi += g.maxMachines;
    }
    std::fprintf(stderr,
                 "  elasticity: policy=%s groups=%zu bounds=[%d, %d] "
                 "period=%g boot_latency=%g overrides=%zu\n",
                 sim::toString(spec.elasticity.policy),
                 spec.elasticity.pool.size(), lo, hi, spec.elasticity.period,
                 spec.elasticity.bootLatency, spec.elasticityOverrides.size());
  }
  // The resolved canonical document goes to stdout so it can be piped or
  // diffed; diagnostics above stay on stderr.
  exp::ScenarioDoc canonical;
  canonical.base = exp::scenarioSpecToJson(spec);
  canonical.axes = doc.axes;
  std::fputs(exp::writeScenarioDoc(canonical).c_str(), stdout);
  return 0;
}

// --- Legacy flag mode -------------------------------------------------------

int legacyMain(int argc, char** argv) {
  exp::PaperScenario::Options options = exp::PaperScenario::optionsFromEnv();
  std::string heuristic = "MM";
  std::size_t rate = 20000;
  workload::ArrivalPattern pattern = workload::ArrivalPattern::Spiky;
  bool homogeneous = false;
  bool csv = false;
  std::uint64_t seed = 2019;
  std::string tracePath;
  std::string saveTracePath;
  bool stream = false;
  core::SimulationConfig sim;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) dieWithUsage(argv[0], "missing argument after " + arg);
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      usage(argv[0], stdout);
      return 0;
    } else if (arg == "--heuristic") {
      heuristic = next();
    } else if (arg == "--rate") {
      rate = std::strtoul(next(), nullptr, 10);
    } else if (arg == "--pattern") {
      const std::string p = next();
      if (p == "spiky") {
        pattern = workload::ArrivalPattern::Spiky;
      } else if (p == "constant") {
        pattern = workload::ArrivalPattern::Constant;
      } else {
        dieWithUsage(argv[0], "unknown pattern " + p);
      }
    } else if (arg == "--homogeneous") {
      homogeneous = true;
    } else if (arg == "--trials") {
      options.trials = std::strtoul(next(), nullptr, 10);
    } else if (arg == "--scale") {
      options.scale = std::strtod(next(), nullptr);
    } else if (arg == "--jobs") {
      options.jobs = std::strtoul(next(), nullptr, 10);
    } else if (arg == "--seed") {
      seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--no-pruning") {
      sim.pruning = pruning::PruningConfig::disabled();
    } else if (arg == "--threshold") {
      sim.pruning.threshold = std::strtod(next(), nullptr);
    } else if (arg == "--toggle") {
      const std::string t = next();
      if (t == "reactive") {
        sim.pruning.toggle = pruning::ToggleMode::Reactive;
      } else if (t == "always") {
        sim.pruning.toggle = pruning::ToggleMode::AlwaysDropping;
      } else if (t == "never") {
        sim.pruning.toggle = pruning::ToggleMode::NoDropping;
      } else {
        dieWithUsage(argv[0], "unknown toggle mode " + t);
      }
    } else if (arg == "--no-defer") {
      sim.pruning.deferEnabled = false;
    } else if (arg == "--fairness") {
      sim.pruning.fairnessFactor = std::strtod(next(), nullptr);
    } else if (arg == "--capacity") {
      sim.machineQueueCapacity = std::strtoul(next(), nullptr, 10);
    } else if (arg == "--kpb") {
      sim.heuristicOptions.kpbPercent = std::strtod(next(), nullptr);
    } else if (arg == "--abort-overdue") {
      sim.abortRunningAtDeadline = true;
    } else if (arg == "--no-pct-cache") {
      sim.pctCacheEnabled = false;
    } else if (arg == "--no-incremental-map") {
      sim.incrementalMappingEnabled = false;
    } else if (arg == "--map-min-queue") {
      sim.incrementalMapMinQueue = std::strtoul(next(), nullptr, 10);
    } else if (arg == "--stream") {
      stream = true;
    } else if (arg == "--trace") {
      tracePath = next();
    } else if (arg == "--save-trace") {
      saveTracePath = next();
    } else if (arg == "--csv") {
      csv = true;
    } else {
      dieWithUsage(argv[0], "unknown argument " + arg);
    }
  }

  try {
    const exp::PaperScenario scenario(options);
    const workload::BoundExecutionModel& cluster =
        homogeneous ? scenario.homo() : scenario.hetero();
    sim.heuristic = heuristic;
    sim.warmupMargin = scenario.warmupMargin(rate);

    if (!saveTracePath.empty()) {
      const workload::Workload wl = workload::Workload::generate(
          *scenario.pet(), scenario.arrivalSpec(rate, pattern), {}, seed);
      workload::saveWorkloadFile(wl, saveTracePath);
      std::printf("saved %zu tasks to %s\n", wl.size(),
                  saveTracePath.c_str());
      return 0;
    }

    if (!tracePath.empty()) {
      const workload::Workload wl = workload::loadWorkloadFile(tracePath);
      const core::TrialResult result =
          core::Simulation(cluster, wl, sim).run();
      std::printf("trace: %zu tasks, robustness %.2f%%\n", wl.size(),
                  result.robustnessPercent);
      std::printf(
          "on-time %zu, late %zu, reactive drops %zu, proactive drops %zu, "
          "deferrals %zu\n",
          result.metrics.completedOnTime(), result.metrics.completedLate(),
          result.metrics.droppedReactive(),
          result.metrics.droppedProactive(), result.metrics.deferrals());
      return 0;
    }

    exp::ExperimentSpec spec = scenario.experimentSpec(rate, pattern);
    spec.sim = sim;
    spec.baseSeed = seed;
    spec.stream.enabled = stream;
    const exp::ExperimentResult result = exp::runExperiment(cluster, spec);

    const exp::Table table = exp::experimentMetricsTable(result);
    if (csv) {
      table.printCsv(std::cout);
    } else {
      std::printf("heuristic=%s rate=%zu pattern=%s cluster=%s trials=%zu "
                  "scale=%g\n\n",
                  heuristic.c_str(), rate,
                  pattern == workload::ArrivalPattern::Spiky ? "spiky"
                                                             : "constant",
                  homogeneous ? "homogeneous" : "heterogeneous",
                  options.trials, options.scale);
      table.print(std::cout);
    }
  } catch (const std::exception& e) {
    die(e.what());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    dieWithUsage(argv[0], "no command given");
  }
  const std::string command = argv[1];
  try {
    if (command == "run") return cmdRun(argv[0], argc, argv);
    if (command == "expand") return cmdExpand(argv[0], argc, argv);
    if (command == "print") return cmdPrint(argv[0], argc, argv);
    if (command == "validate") return cmdValidate(argv[0], argc, argv);
  } catch (const std::exception& e) {
    die(e.what());
  }
  if (command == "--help" || command == "-h") {
    usage(argv[0], stdout);
    return 0;
  }
  if (!command.empty() && command[0] == '-') {
    return legacyMain(argc, argv);
  }
  dieWithUsage(argv[0], "unknown command " + command);
}
