#!/usr/bin/env python3
"""Fail on dead relative links in README.md and docs/*.md.

Walks every markdown link whose target is a relative path (external
http(s)/mailto links are skipped), resolves it against the linking file,
and fails (exit 1) when the target does not exist in the repo.  Fragment
targets are checked against the destination file's headings using
GitHub's anchor slugging, so renamed sections break the build instead of
rotting silently.

Usage:
  tools/check_doc_links.py [--root REPO_ROOT]
"""

import argparse
import os
import re
import sys

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$")
FENCE_RE = re.compile(r"^(```|~~~)")


def strip_code(text):
    """Drops fenced code blocks and inline code spans (not real links)."""
    lines, out, fenced = text.splitlines(), [], False
    for line in lines:
        if FENCE_RE.match(line.strip()):
            fenced = not fenced
            continue
        if not fenced:
            out.append(re.sub(r"`[^`]*`", "", line))
    return "\n".join(out)


def slug(heading):
    """GitHub's heading -> anchor slug (lowercase, drop punctuation,
    spaces to hyphens)."""
    text = re.sub(r"`([^`]*)`", r"\1", heading.strip())
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # linked headings
    text = text.lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def anchors_of(path, cache):
    if path not in cache:
        found = set()
        with open(path, encoding="utf-8") as f:
            text = f.read()
        for line in strip_code(text).splitlines():
            m = HEADING_RE.match(line)
            if m:
                found.add(slug(m.group(1)))
        cache[path] = found
    return cache[path]


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=".")
    args = parser.parse_args()
    root = os.path.abspath(args.root)

    docs = []
    readme = os.path.join(root, "README.md")
    if os.path.exists(readme):
        docs.append(readme)
    docs_dir = os.path.join(root, "docs")
    if os.path.isdir(docs_dir):
        docs.extend(
            os.path.join(docs_dir, name)
            for name in sorted(os.listdir(docs_dir))
            if name.endswith(".md"))

    anchor_cache = {}
    checked = 0
    dead = []
    for doc in docs:
        with open(doc, encoding="utf-8") as f:
            text = strip_code(f.read())
        rel_doc = os.path.relpath(doc, root)
        for target in LINK_RE.findall(text):
            if re.match(r"^[a-z][a-z0-9+.-]*:", target):  # http:, mailto:, …
                continue
            path_part, _, fragment = target.partition("#")
            if path_part:
                dest = os.path.normpath(
                    os.path.join(os.path.dirname(doc), path_part))
            else:
                dest = doc  # pure in-page anchor
            checked += 1
            if not os.path.exists(dest):
                dead.append(f"{rel_doc}: [{target}] -> missing file "
                            f"{os.path.relpath(dest, root)}")
                continue
            if fragment and dest.endswith(".md"):
                if fragment not in anchors_of(dest, anchor_cache):
                    dead.append(f"{rel_doc}: [{target}] -> no heading "
                                f"#{fragment} in {os.path.relpath(dest, root)}")

    for line in dead:
        print(f"DEAD  {line}")
    if dead:
        print(f"\ncheck_doc_links: {len(dead)} dead link(s) "
              f"across {len(docs)} file(s)")
        return 1
    print(f"check_doc_links: {checked} relative link(s) OK "
          f"across {len(docs)} file(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
