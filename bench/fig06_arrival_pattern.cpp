// Fig. 6: the spiky task-arrival pattern.  Prints the per-type arrival rate
// over time (bucketed counts) for four task types, the same series the
// figure plots, plus the underlying piecewise-constant rate profile.  The
// arrival configuration comes from scenarios/fig06_arrival_pattern.json;
// this binary only buckets and renders.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "workload/arrival.h"

int main(int argc, char** argv) {
  using namespace hcs;
  const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
  const exp::ScenarioDoc doc =
      bench::loadScenario(args, "fig06_arrival_pattern.json");
  const exp::ScenarioSpec scenarioSpec = doc.baseSpec();
  const exp::BoundScenario bound = exp::bindScenario(scenarioSpec);
  bench::BenchArgs shown = args;
  shown.scenario.petSeed = scenarioSpec.petSeed;
  bench::printHeader(shown, "Fig. 6",
                     "Spiky arrival pattern: per-type arrival rate vs time "
                     "(4 of 12 task types shown, as in the paper).");

  const workload::ArrivalSpec& spec = bound.experiment.arrival;
  prob::Rng rng(scenarioSpec.petSeed);
  const auto arrivals = workload::generateArrivals(spec, rng);

  constexpr int kBuckets = 40;
  constexpr int kTypesShown = 4;
  const double bucketWidth = spec.span / kBuckets;
  std::vector<std::vector<int>> counts(
      kTypesShown, std::vector<int>(kBuckets, 0));
  for (const auto& a : arrivals) {
    if (a.type >= kTypesShown) continue;
    const int b = std::min(static_cast<int>(a.time / bucketWidth),
                           kBuckets - 1);
    ++counts[static_cast<std::size_t>(a.type)][static_cast<std::size_t>(b)];
  }

  exp::Table table({"time", "rate_type0", "rate_type1", "rate_type2",
                    "rate_type3", "profile_rate_per_type"});
  const auto profile = workload::RateProfile::spiky(
      spec.span, static_cast<double>(spec.totalTasks) / spec.numTaskTypes,
      spec.numSpikes, spec.spikeFactor);
  for (int b = 0; b < kBuckets; ++b) {
    const double t = (b + 0.5) * bucketWidth;
    std::vector<std::string> row = {exp::formatValue(t, 1)};
    for (int k = 0; k < kTypesShown; ++k) {
      row.push_back(exp::formatValue(
          counts[static_cast<std::size_t>(k)][static_cast<std::size_t>(b)] /
              bucketWidth,
          3));
    }
    row.push_back(exp::formatValue(profile.rateAt(t), 3));
    table.addRow(std::move(row));
  }
  bench::emit(args, table);

  if (!args.csv) {
    std::printf(
        "\nExpected shape: rate alternates between a lull and spikes of "
        "%gx the lull rate;\neach spike lasts 1/3 of the lull period "
        "(paper Section V-B).\n",
        spec.spikeFactor);
  }
  return 0;
}
