// Micro-benchmarks for whole-trial simulation throughput: the cost of a
// mapping heuristic with and without the pruning mechanism attached.
// Supports the paper's §V-A claim that pruning's overhead is modest and
// sits entirely on the resource-allocation node.
//
// After the google-benchmark suites, main() times one 8-trial MM experiment
// three ways — serial/uncached (the recompute-per-candidate reference),
// serial/cached (incremental PCT reuse), and parallel/cached — and writes
// the comparison to BENCH_pct_cache.json so the speedup is tracked across
// PRs.  HCS_SCALE / HCS_TRIALS / HCS_JOBS override the defaults.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "bench_util.h"
#include "core/simulation.h"
#include "exp/experiment.h"
#include "exp/parallel.h"
#include "exp/scenario.h"

namespace {

using namespace hcs;

struct Fixture {
  Fixture() {
    exp::PaperScenario::Options options;
    options.scale = 0.02;  // ~300 tasks per trial: fast enough to iterate
    options.trials = 1;
    scenario = std::make_unique<exp::PaperScenario>(options);
    workload = std::make_unique<workload::Workload>(
        workload::Workload::generate(
            *scenario->pet(),
            scenario->arrivalSpec(exp::PaperScenario::kRate20k,
                                  workload::ArrivalPattern::Spiky),
            {}, 99));
  }

  std::unique_ptr<exp::PaperScenario> scenario;
  std::unique_ptr<workload::Workload> workload;
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

void runTrial(benchmark::State& state, const std::string& heuristic,
              bool prune) {
  Fixture& f = fixture();
  core::SimulationConfig config;
  config.heuristic = heuristic;
  config.pruning =
      prune ? pruning::PruningConfig{} : pruning::PruningConfig::disabled();
  config.warmupMargin = 0;
  std::size_t tasks = 0;
  for (auto _ : state) {
    core::TrialResult result =
        core::Simulation(f.scenario->hetero(), *f.workload, config).run();
    benchmark::DoNotOptimize(result.robustnessPercent);
    tasks += f.workload->size();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(tasks));
}

void BM_Trial_MM(benchmark::State& state) { runTrial(state, "MM", false); }
void BM_Trial_MM_Pruned(benchmark::State& state) {
  runTrial(state, "MM", true);
}
void BM_Trial_MSD(benchmark::State& state) { runTrial(state, "MSD", false); }
void BM_Trial_MSD_Pruned(benchmark::State& state) {
  runTrial(state, "MSD", true);
}
void BM_Trial_MMU(benchmark::State& state) { runTrial(state, "MMU", false); }
void BM_Trial_MMU_Pruned(benchmark::State& state) {
  runTrial(state, "MMU", true);
}
void BM_Trial_MCT(benchmark::State& state) { runTrial(state, "MCT", false); }
void BM_Trial_MCT_Pruned(benchmark::State& state) {
  runTrial(state, "MCT", true);
}
void BM_Trial_KPB(benchmark::State& state) { runTrial(state, "KPB", false); }
void BM_Trial_RR(benchmark::State& state) { runTrial(state, "RR", false); }

BENCHMARK(BM_Trial_MM);
BENCHMARK(BM_Trial_MM_Pruned);
BENCHMARK(BM_Trial_MSD);
BENCHMARK(BM_Trial_MSD_Pruned);
BENCHMARK(BM_Trial_MMU);
BENCHMARK(BM_Trial_MMU_Pruned);
BENCHMARK(BM_Trial_MCT);
BENCHMARK(BM_Trial_MCT_Pruned);
BENCHMARK(BM_Trial_KPB);
BENCHMARK(BM_Trial_RR);

// --- PCT-cache / parallel-trials comparison ----------------------------------

double timeExperimentMs(const exp::PaperScenario& scenario,
                        const exp::ExperimentSpec& spec) {
  const auto start = std::chrono::steady_clock::now();
  const exp::ExperimentResult result =
      exp::runExperiment(scenario.hetero(), spec);
  benchmark::DoNotOptimize(result.robustnessMean());
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(end - start).count();
}

void runPctCacheComparison() {
  exp::PaperScenario::Options options = exp::PaperScenario::optionsFromEnv();
  if (std::getenv("HCS_TRIALS") == nullptr) options.trials = 8;
  // Parallel leg defaults to all cores unless HCS_JOBS pins it explicitly.
  const std::size_t jobs =
      std::getenv("HCS_JOBS") != nullptr ? options.jobs : 0;
  options.jobs = 1;
  const exp::PaperScenario scenario(options);

  exp::ExperimentSpec spec = scenario.experimentSpec(
      exp::PaperScenario::kRate20k, workload::ArrivalPattern::Spiky);
  spec.sim.heuristic = "MM";

  spec.sim.pctCacheEnabled = false;
  spec.jobs = 1;
  const double uncachedSerialMs = timeExperimentMs(scenario, spec);

  spec.sim.pctCacheEnabled = true;
  const double cachedSerialMs = timeExperimentMs(scenario, spec);

  spec.jobs = jobs;
  const double cachedParallelMs = timeExperimentMs(scenario, spec);

  const std::size_t resolvedJobs = exp::resolveJobs(jobs);
  const double cacheSpeedup = cachedSerialMs > 0.0
                                  ? uncachedSerialMs / cachedSerialMs
                                  : 0.0;
  const double combinedSpeedup = cachedParallelMs > 0.0
                                     ? uncachedSerialMs / cachedParallelMs
                                     : 0.0;

  std::printf(
      "\nPCT cache comparison (MM, %zu trials, scale %.3g):\n"
      "  uncached serial   %8.1f ms\n"
      "  cached   serial   %8.1f ms   (%.2fx)\n"
      "  cached   jobs=%-3zu %8.1f ms   (%.2fx combined)\n",
      options.trials, options.scale, uncachedSerialMs, cachedSerialMs,
      cacheSpeedup, resolvedJobs, cachedParallelMs, combinedSpeedup);

  hcs::bench::JsonWriter json;
  json.field("bench", "pct_cache")
      .field("heuristic", "MM")
      .field("trials", static_cast<std::uint64_t>(options.trials))
      .field("scale", options.scale)
      .field("jobs", static_cast<std::uint64_t>(resolvedJobs))
      .field("uncached_serial_ms", uncachedSerialMs)
      .field("cached_serial_ms", cachedSerialMs)
      .field("cached_parallel_ms", cachedParallelMs)
      .field("cache_speedup", cacheSpeedup)
      .field("combined_speedup", combinedSpeedup);
  json.write("BENCH_pct_cache.json");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  runPctCacheComparison();
  return 0;
}
