// Micro-benchmarks for whole-trial simulation throughput: the cost of a
// mapping heuristic with and without the pruning mechanism attached.
// Supports the paper's §V-A claim that pruning's overhead is modest and
// sits entirely on the resource-allocation node.

#include <benchmark/benchmark.h>

#include <memory>

#include "core/simulation.h"
#include "exp/scenario.h"

namespace {

using namespace hcs;

struct Fixture {
  Fixture() {
    exp::PaperScenario::Options options;
    options.scale = 0.02;  // ~300 tasks per trial: fast enough to iterate
    options.trials = 1;
    scenario = std::make_unique<exp::PaperScenario>(options);
    workload = std::make_unique<workload::Workload>(
        workload::Workload::generate(
            *scenario->pet(),
            scenario->arrivalSpec(exp::PaperScenario::kRate20k,
                                  workload::ArrivalPattern::Spiky),
            {}, 99));
  }

  std::unique_ptr<exp::PaperScenario> scenario;
  std::unique_ptr<workload::Workload> workload;
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

void runTrial(benchmark::State& state, const std::string& heuristic,
              bool prune) {
  Fixture& f = fixture();
  core::SimulationConfig config;
  config.heuristic = heuristic;
  config.pruning =
      prune ? pruning::PruningConfig{} : pruning::PruningConfig::disabled();
  config.warmupMargin = 0;
  std::size_t tasks = 0;
  for (auto _ : state) {
    core::TrialResult result =
        core::Simulation(f.scenario->hetero(), *f.workload, config).run();
    benchmark::DoNotOptimize(result.robustnessPercent);
    tasks += f.workload->size();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(tasks));
}

void BM_Trial_MM(benchmark::State& state) { runTrial(state, "MM", false); }
void BM_Trial_MM_Pruned(benchmark::State& state) {
  runTrial(state, "MM", true);
}
void BM_Trial_MSD(benchmark::State& state) { runTrial(state, "MSD", false); }
void BM_Trial_MSD_Pruned(benchmark::State& state) {
  runTrial(state, "MSD", true);
}
void BM_Trial_MMU(benchmark::State& state) { runTrial(state, "MMU", false); }
void BM_Trial_MMU_Pruned(benchmark::State& state) {
  runTrial(state, "MMU", true);
}
void BM_Trial_MCT(benchmark::State& state) { runTrial(state, "MCT", false); }
void BM_Trial_MCT_Pruned(benchmark::State& state) {
  runTrial(state, "MCT", true);
}
void BM_Trial_KPB(benchmark::State& state) { runTrial(state, "KPB", false); }
void BM_Trial_RR(benchmark::State& state) { runTrial(state, "RR", false); }

BENCHMARK(BM_Trial_MM);
BENCHMARK(BM_Trial_MM_Pruned);
BENCHMARK(BM_Trial_MSD);
BENCHMARK(BM_Trial_MSD_Pruned);
BENCHMARK(BM_Trial_MMU);
BENCHMARK(BM_Trial_MMU_Pruned);
BENCHMARK(BM_Trial_MCT);
BENCHMARK(BM_Trial_MCT_Pruned);
BENCHMARK(BM_Trial_KPB);
BENCHMARK(BM_Trial_RR);

}  // namespace

BENCHMARK_MAIN();
