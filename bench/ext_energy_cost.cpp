// Extension (§VII future work): measuring the energy and cost improvements
// the paper conjectures.  Runs MM bare vs pruned across oversubscription
// levels and reports the fraction of busy machine-energy wasted on failing
// tasks and the cloud cost per on-time task.

#include <iostream>

#include "bench_util.h"
#include "ext/energy.h"
#include "stats/confidence.h"

int main(int argc, char** argv) {
  using namespace hcs;
  const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
  const exp::PaperScenario scenario(args.scenario);
  bench::printHeader(
      args, "Extension: energy & cost (§VII)",
      "MM bare vs pruned, spiky arrivals.  Wasted-energy = busy energy "
      "spent on tasks\nthat missed their deadline; cost/on-time = full-"
      "cluster rental divided by on-time\ncompletions (uniform 100W busy / "
      "30W idle, 1 cost-unit per machine-time-unit).");

  const ext::PowerModel power =
      ext::PowerModel::uniform(scenario.hetero().numMachines(), 100.0, 30.0);
  const ext::CostModel cost =
      ext::CostModel::uniform(scenario.hetero().numMachines(), 1.0);

  exp::Table table({"rate", "config", "robustness %", "wasted busy energy %",
                    "cost per on-time task"});
  for (std::size_t rate :
       {exp::PaperScenario::kRate15k, exp::PaperScenario::kRate20k,
        exp::PaperScenario::kRate25k}) {
    for (bool prune : {false, true}) {
      stats::RunningStats robustness, wasted, costPer;
      for (std::size_t trial = 0; trial < args.scenario.trials; ++trial) {
        const workload::Workload wl = workload::Workload::generate(
            *scenario.pet(),
            scenario.arrivalSpec(rate, workload::ArrivalPattern::Spiky), {},
            2019 + trial);
        core::SimulationConfig config;
        config.heuristic = "MM";
        config.warmupMargin = scenario.warmupMargin(rate);
        config.pruning = prune ? pruning::PruningConfig{}
                               : pruning::PruningConfig::disabled();
        const core::TrialResult result =
            core::Simulation(scenario.hetero(), wl, config).run();
        const ext::EnergyCostReport report =
            ext::assess(result, power, cost);
        robustness.add(result.robustnessPercent);
        wasted.add(100.0 * report.wastedBusyFraction());
        costPer.add(report.costPerOnTimeTask);
      }
      table.addRow({std::to_string(rate / 1000) + "k",
                    prune ? "MM-P" : "MM",
                    exp::formatCi(stats::meanConfidenceInterval(robustness)),
                    exp::formatCi(stats::meanConfidenceInterval(wasted)),
                    exp::formatCi(stats::meanConfidenceInterval(costPer), 2)});
    }
  }
  bench::emit(args, table);

  if (!args.csv) {
    std::cout << "\nExpected (the paper's conjecture): pruning slashes the "
                 "wasted-energy share and the\ncost per on-time task, "
                 "increasingly so with oversubscription.\n";
  }
  return 0;
}
