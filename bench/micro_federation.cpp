// Micro-benchmark for the federated dispatch tier: what the gateway costs
// on top of the single-cluster engine, and what each routing policy costs
// per routed task once several clusters are in play.
//
// After the google-benchmark suites, main() verifies the federation's
// keystone contract — a 1-cluster federation with zero dispatch latency
// reproduces core::Simulation exactly — then times the gateway overhead
// (direct vs federated N=1) and every routing policy at N=4 on an
// oversubscribed stream, writing the comparison to BENCH_federation.json.
// Exits nonzero if the N=1 federation ever diverges from the direct engine.
// HCS_FED_REPS overrides the best-of repetition count (default 3).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/simulation.h"
#include "exp/scenario.h"
#include "fed/federation.h"
#include "sim/trace.h"
#include "workload/workload.h"

namespace {

using namespace hcs;

const exp::PaperScenario& scenario() {
  static exp::PaperScenario s;  // the paper's 12-type x 8-machine cluster
  return s;
}

workload::Workload oversubscribedWorkload(std::uint64_t seed) {
  return workload::Workload::generate(
      *scenario().pet(),
      scenario().arrivalSpec(exp::PaperScenario::kRate25k,
                             workload::ArrivalPattern::Spiky),
      {}, seed);
}

core::SimulationConfig baseConfig() {
  core::SimulationConfig config;
  config.heuristic = "MM";
  config.warmupMargin = 0;
  return config;
}

fed::FederatedTrialResult runFederation(const workload::Workload& wl,
                                        std::size_t clusters,
                                        fed::RoutingPolicyKind routing) {
  fed::FederationSpec spec;
  spec.clusters = clusters;
  spec.routing = routing;
  std::vector<const sim::ExecutionModel*> models(clusters,
                                                 &scenario().hetero());
  return fed::FederatedSimulation(models, wl, baseConfig(), spec).run();
}

void BM_Direct_SingleCluster(benchmark::State& state) {
  const workload::Workload wl = oversubscribedWorkload(7);
  const core::SimulationConfig config = baseConfig();
  for (auto _ : state) {
    const core::TrialResult r =
        core::Simulation(scenario().hetero(), wl, config).run();
    benchmark::DoNotOptimize(r.robustnessPercent);
  }
}
void BM_Federated_N1(benchmark::State& state) {
  const workload::Workload wl = oversubscribedWorkload(7);
  for (auto _ : state) {
    const fed::FederatedTrialResult r =
        runFederation(wl, 1, fed::RoutingPolicyKind::RoundRobin);
    benchmark::DoNotOptimize(r.total.robustnessPercent);
  }
}
void BM_Federated_N4_MaxChance(benchmark::State& state) {
  const workload::Workload wl = oversubscribedWorkload(7);
  for (auto _ : state) {
    const fed::FederatedTrialResult r =
        runFederation(wl, 4, fed::RoutingPolicyKind::MaxChance);
    benchmark::DoNotOptimize(r.total.robustnessPercent);
  }
}
BENCHMARK(BM_Direct_SingleCluster);
BENCHMARK(BM_Federated_N1);
BENCHMARK(BM_Federated_N4_MaxChance);

double bestOfUs(int reps, const std::function<double()>& run) {
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    const double us = run();
    if (r == 0 || us < best) best = us;
  }
  return best;
}

int runFederationComparison() {
  const char* repsEnv = std::getenv("HCS_FED_REPS");
  const int reps = repsEnv != nullptr ? std::max(1, std::atoi(repsEnv)) : 3;
  const workload::Workload wl = oversubscribedWorkload(7);
  const double tasks = static_cast<double>(wl.size());

  hcs::bench::JsonWriter json;
  json.field("bench", "federation").field("heuristic", "MM");
  json.field("tasks", static_cast<std::uint64_t>(wl.size()));

  // Keystone check: the N=1, zero-latency federation must reproduce the
  // direct engine exactly (the full trace-level oracle lives in
  // tests/federation_test.cpp; here the digest guards the bench numbers).
  const core::TrialResult direct =
      core::Simulation(scenario().hetero(), wl, baseConfig()).run();
  const fed::FederatedTrialResult identity =
      runFederation(wl, 1, fed::RoutingPolicyKind::RoundRobin);
  bool diverged = false;
  if (identity.total.robustnessPercent != direct.robustnessPercent ||
      identity.total.mappingEvents != direct.mappingEvents ||
      identity.total.makespan != direct.makespan) {
    std::fprintf(stderr,
                 "micro_federation: N=1 federation DIVERGED from the direct "
                 "engine\n");
    diverged = true;
  }

  const double directUs = bestOfUs(reps, [&] {
    const auto start = std::chrono::steady_clock::now();
    const core::TrialResult r =
        core::Simulation(scenario().hetero(), wl, baseConfig()).run();
    benchmark::DoNotOptimize(r.robustnessPercent);
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - start)
        .count();
  });
  const double fedN1Us = bestOfUs(reps, [&] {
    const auto start = std::chrono::steady_clock::now();
    const fed::FederatedTrialResult r =
        runFederation(wl, 1, fed::RoutingPolicyKind::RoundRobin);
    benchmark::DoNotOptimize(r.total.robustnessPercent);
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - start)
        .count();
  });
  const double overheadPct =
      directUs > 0.0 ? 100.0 * (fedN1Us - directUs) / directUs : 0.0;
  std::printf("\nfederation comparison (MM, 25k-equivalent stream, best of "
              "%d):\n", reps);
  std::printf(
      "  gateway overhead (N=1): direct %.0f us -> federated %.0f us "
      "(%+.1f%%, %.3f us/task)\n",
      directUs, fedN1Us, overheadPct, (fedN1Us - directUs) / tasks);
  json.field("direct_trial_us", directUs);
  json.field("federated_n1_trial_us", fedN1Us);
  json.field("gateway_overhead_pct", overheadPct);

  for (const fed::RoutingPolicyKind kind :
       {fed::RoutingPolicyKind::RoundRobin,
        fed::RoutingPolicyKind::LeastQueueDepth,
        fed::RoutingPolicyKind::LeastExpectedCompletion,
        fed::RoutingPolicyKind::MaxChance}) {
    double robustness = 0.0;
    const double us = bestOfUs(reps, [&] {
      const auto start = std::chrono::steady_clock::now();
      const fed::FederatedTrialResult r = runFederation(wl, 4, kind);
      robustness = r.total.robustnessPercent;
      return std::chrono::duration<double, std::micro>(
                 std::chrono::steady_clock::now() - start)
          .count();
    });
    std::printf("  N=4 %-12s: %8.0f us/trial (%.3f us/task), robustness "
                "%.1f%%\n",
                std::string(toString(kind)).c_str(), us, us / tasks,
                robustness);
    char name[64];
    std::snprintf(name, sizeof name, "n4_%s_trial_us",
                  std::string(toString(kind)).c_str());
    json.field(name, us);
    std::snprintf(name, sizeof name, "n4_%s_us_per_task",
                  std::string(toString(kind)).c_str());
    json.field(name, us / tasks);
    std::snprintf(name, sizeof name, "n4_%s_robustness",
                  std::string(toString(kind)).c_str());
    json.field(name, robustness);
  }

  json.write("BENCH_federation.json");
  return diverged ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return runFederationComparison();
}
