// Fig. 7a: impact of the Toggle module on immediate-mode mapping heuristics
// (RR, MCT, MET, KPB) in a heterogeneous system.  Three scenarios:
//   no Toggle / no dropping      — the plain heuristic (no pruning at all)
//   no Toggle / always dropping  — proactive dropping at every event
//   reactive Toggle              — dropping engaged on observed misses
// Deferring is not applicable in immediate mode (no arrival queue).

#include <iostream>

#include "bench_util.h"
#include "exp/experiment.h"

int main(int argc, char** argv) {
  using namespace hcs;
  const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
  const exp::PaperScenario scenario(args.scenario);
  bench::printHeader(
      args, "Fig. 7a",
      "Toggle impact on immediate-mode heuristics, heterogeneous cluster,\n"
      "spiky arrivals, 15k-equivalent load.  Cells: % tasks completed on "
      "time (mean ±95% CI).");

  const std::vector<std::pair<std::string, pruning::PruningConfig>> modes = [] {
    pruning::PruningConfig off = pruning::PruningConfig::disabled();
    pruning::PruningConfig always;
    always.deferEnabled = false;
    always.toggle = pruning::ToggleMode::AlwaysDropping;
    pruning::PruningConfig reactive;
    reactive.deferEnabled = false;
    reactive.toggle = pruning::ToggleMode::Reactive;
    return std::vector<std::pair<std::string, pruning::PruningConfig>>{
        {"no Toggle, no dropping", off},
        {"no Toggle, always dropping", always},
        {"reactive Toggle", reactive}};
  }();

  exp::Table table({"scenario", "RR", "MCT", "MET", "KPB"});
  for (const auto& [label, pruningConfig] : modes) {
    std::vector<std::string> row = {label};
    for (const char* heuristic : {"RR", "MCT", "MET", "KPB"}) {
      exp::ExperimentSpec spec = scenario.experimentSpec(
          exp::PaperScenario::kRate15k, workload::ArrivalPattern::Spiky);
      spec.sim.heuristic = heuristic;
      spec.sim.pruning = pruningConfig;
      const exp::ExperimentResult result =
          exp::runExperiment(scenario.hetero(), spec);
      row.push_back(exp::formatCi(result.robustnessCi));
    }
    table.addRow(std::move(row));
  }
  bench::emit(args, table);

  if (!args.csv) {
    std::cout << "\nPaper shape: dropping (always or reactive) improves "
                 "every completion-aware heuristic\n(MCT/MET/KPB, up to "
                 "~12 points); KPB is the strongest immediate heuristic.\n"
                 "Known deviation: the paper's RR slightly *loses* from "
                 "dropping; here RR gains\n(see EXPERIMENTS.md).\n";
  }
  return 0;
}
