// Fig. 7a — thin wrapper over scenarios/fig07a_toggle_immediate.json; the
// Toggle-mode grid lives in the scenario file, execution and the pivot
// table in the shared sweep runner.

#include <iostream>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace hcs;
  const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
  bench::runScenarioFigure(
      args, "fig07a_toggle_immediate.json", "Fig. 7a",
      "Toggle impact on immediate-mode heuristics, heterogeneous cluster,\n"
      "spiky arrivals, 15k-equivalent load.  Cells: % tasks completed on "
      "time (mean ±95% CI).");
  if (!args.csv) {
    std::cout << "\nPaper shape: dropping (always or reactive) improves "
                 "every completion-aware heuristic\n(MCT/MET/KPB, up to "
                 "~12 points); KPB is the strongest immediate heuristic.\n"
                 "Known deviation: the paper's RR slightly *loses* from "
                 "dropping; here RR gains\n(see EXPERIMENTS.md).\n";
  }
  return 0;
}
