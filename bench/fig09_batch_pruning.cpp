// Fig. 9 — thin wrapper over scenarios/fig09_batch_pruning.json; the
// pattern x rate x (heuristic, pruning) grid is declarative, with the
// paired base seed giving every variant the same workload trials.

#include <iostream>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace hcs;
  const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
  bench::runScenarioFigure(
      args, "fig09_batch_pruning.json", "Fig. 9",
      "Pruning mechanism on batch-mode heuristics vs oversubscription "
      "level,\nheterogeneous cluster.  Cells: % tasks completed on time "
      "(mean ±95% CI).\n\"-P\" = with pruning (reactive Toggle, 50% "
      "threshold, deferring + dropping).");
  if (!args.csv) {
    std::cout << "\nPaper shape: pruning improves robustness everywhere; the "
                 "gain grows with\noversubscription and is largest for "
                 "MSD/MMU (tens of points; MM ~15 points).\n";
  }
  return 0;
}
