// Fig. 9: the full pruning mechanism (reactive Toggle + 50% threshold,
// deferring + dropping) on batch-mode heuristics across oversubscription
// levels (15k/20k/25k) under (a) constant and (b) spiky arrival patterns.
// "-P" marks a heuristic with the pruning mechanism attached.

#include <iostream>

#include "bench_util.h"
#include "exp/experiment.h"

namespace {

void runPattern(const hcs::bench::BenchArgs& args,
                const hcs::exp::PaperScenario& scenario,
                hcs::workload::ArrivalPattern pattern, const char* label) {
  using namespace hcs;
  if (!args.csv) std::cout << "--- " << label << " arrival pattern ---\n";
  exp::Table table({"rate", "MM", "MSD", "MMU", "MM-P", "MSD-P", "MMU-P"});
  for (std::size_t rate :
       {exp::PaperScenario::kRate15k, exp::PaperScenario::kRate20k,
        exp::PaperScenario::kRate25k}) {
    std::vector<std::string> row = {std::to_string(rate / 1000) + "k"};
    for (bool prune : {false, true}) {
      for (const char* heuristic : {"MM", "MSD", "MMU"}) {
        exp::ExperimentSpec spec = scenario.experimentSpec(rate, pattern);
        spec.sim.heuristic = heuristic;
        spec.sim.pruning = prune ? pruning::PruningConfig{}
                                 : pruning::PruningConfig::disabled();
        const exp::ExperimentResult result =
            exp::runExperiment(scenario.hetero(), spec);
        row.push_back(exp::formatCi(result.robustnessCi));
      }
    }
    table.addRow(std::move(row));
  }
  bench::emit(args, table);
  if (!args.csv) std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hcs;
  const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
  const exp::PaperScenario scenario(args.scenario);
  bench::printHeader(
      args, "Fig. 9",
      "Pruning mechanism on batch-mode heuristics vs oversubscription "
      "level,\nheterogeneous cluster.  Cells: % tasks completed on time "
      "(mean ±95% CI).\n\"-P\" = with pruning (reactive Toggle, 50% "
      "threshold, deferring + dropping).");

  runPattern(args, scenario, workload::ArrivalPattern::Constant, "Constant");
  runPattern(args, scenario, workload::ArrivalPattern::Spiky, "Spiky");

  if (!args.csv) {
    std::cout << "Paper shape: pruning improves robustness everywhere; the "
                 "gain grows with\noversubscription and is largest for "
                 "MSD/MMU (tens of points; MM ~15 points).\n";
  }
  return 0;
}
