// Fig. 10 — thin wrapper over scenarios/fig10_homogeneous_pruning.json.

#include <iostream>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace hcs;
  const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
  bench::runScenarioFigure(
      args, "fig10_homogeneous_pruning.json", "Fig. 10",
      "Pruning mechanism on homogeneous-system heuristics vs "
      "oversubscription level.\nCells: % tasks completed on time (mean "
      "±95% CI).  \"-P\" = with pruning.");
  if (!args.csv) {
    std::cout << "\nPaper shape: pruning raises homogeneous-system robustness "
                 "at every load (up to ~28\npoints), more so as "
                 "oversubscription grows; EDF/SJF collapse at 25k without "
                 "pruning and\nrecover to >30% with it.\n";
  }
  return 0;
}
