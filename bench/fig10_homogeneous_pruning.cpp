// Fig. 10: the pruning mechanism on homogeneous-system mapping heuristics
// (FCFS-RR, SJF, EDF) across oversubscription levels under (a) constant and
// (b) spiky arrival patterns.  The cluster is the same machine count as the
// heterogeneous one, all bound to the median-speed machine type.

#include <iostream>

#include "bench_util.h"
#include "exp/experiment.h"

namespace {

void runPattern(const hcs::bench::BenchArgs& args,
                const hcs::exp::PaperScenario& scenario,
                hcs::workload::ArrivalPattern pattern, const char* label) {
  using namespace hcs;
  if (!args.csv) std::cout << "--- " << label << " arrival pattern ---\n";
  exp::Table table({"rate", "FCFS-RR", "SJF", "EDF", "FCFS-RR-P", "SJF-P",
                    "EDF-P"});
  for (std::size_t rate :
       {exp::PaperScenario::kRate15k, exp::PaperScenario::kRate20k,
        exp::PaperScenario::kRate25k}) {
    std::vector<std::string> row = {std::to_string(rate / 1000) + "k"};
    for (bool prune : {false, true}) {
      for (const char* heuristic : {"FCFS-RR", "SJF", "EDF"}) {
        exp::ExperimentSpec spec = scenario.experimentSpec(rate, pattern);
        spec.sim.heuristic = heuristic;
        spec.sim.pruning = prune ? pruning::PruningConfig{}
                                 : pruning::PruningConfig::disabled();
        const exp::ExperimentResult result =
            exp::runExperiment(scenario.homo(), spec);
        row.push_back(exp::formatCi(result.robustnessCi));
      }
    }
    table.addRow(std::move(row));
  }
  bench::emit(args, table);
  if (!args.csv) std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hcs;
  const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
  const exp::PaperScenario scenario(args.scenario);
  bench::printHeader(
      args, "Fig. 10",
      "Pruning mechanism on homogeneous-system heuristics vs "
      "oversubscription level.\nCells: % tasks completed on time (mean "
      "±95% CI).  \"-P\" = with pruning.");

  runPattern(args, scenario, workload::ArrivalPattern::Constant, "Constant");
  runPattern(args, scenario, workload::ArrivalPattern::Spiky, "Spiky");

  if (!args.csv) {
    std::cout << "Paper shape: pruning raises homogeneous-system robustness "
                 "at every load (up to ~28\npoints), more so as "
                 "oversubscription grows; EDF/SJF collapse at 25k without "
                 "pruning and\nrecover to >30% with it.\n";
  }
  return 0;
}
