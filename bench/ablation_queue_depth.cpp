// Ablation: machine-queue capacity — thin wrapper over
// scenarios/ablation_queue_depth.json, plus the derived "pruning gain"
// column the generic pivot doesn't compute.

#include <iostream>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace hcs;
  const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
  const exp::ScenarioDoc doc =
      bench::loadScenario(args, "ablation_queue_depth.json");
  bench::printHeader(
      args, "Ablation: machine-queue capacity",
      "MM with and without pruning at 20k-equivalent spiky load, varying "
      "the\nper-machine queue capacity (running + waiting slots).");

  const std::vector<exp::SweepOutcome> outcomes = exp::runSweep(doc);
  // Grid: capacity (rows) x {baseline, pruned} (2 columns, last axis
  // fastest).
  exp::Table table(
      {"capacity", "MM baseline", "MM pruned", "pruning gain (pp)"});
  for (std::size_t r = 0; r + 1 < outcomes.size(); r += 2) {
    const exp::SweepOutcome& base = outcomes[r];
    const exp::SweepOutcome& pruned = outcomes[r + 1];
    table.addRow({base.point.labels[0],
                  exp::formatCi(base.result.robustnessCi),
                  exp::formatCi(pruned.result.robustnessCi),
                  exp::formatValue(pruned.result.robustnessCi.mean -
                                       base.result.robustnessCi.mean,
                                   1)});
  }
  bench::emit(args, table);

  if (!args.csv) {
    std::cout << "\nExpected: the baseline degrades as capacity grows "
                 "(earlier commitment to machine\nqueues); the pruned "
                 "system stays flat, so the gain widens.\n";
  }
  return 0;
}
