// Ablation: machine-queue capacity (the paper fixes it implicitly; DESIGN.md
// defaults to 4 = running + 3 waiting).  Deeper queues commit tasks to
// machines earlier — exactly what lazy mapping (deferring) argues against —
// so pruning's advantage should widen as capacity grows.

#include <iostream>

#include "bench_util.h"
#include "exp/experiment.h"

int main(int argc, char** argv) {
  using namespace hcs;
  const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
  const exp::PaperScenario scenario(args.scenario);
  bench::printHeader(
      args, "Ablation: machine-queue capacity",
      "MM with and without pruning at 20k-equivalent spiky load, varying "
      "the\nper-machine queue capacity (running + waiting slots).");

  exp::Table table(
      {"capacity", "MM baseline", "MM pruned", "pruning gain (pp)"});
  for (std::size_t capacity : {1u, 2u, 4u, 8u, 16u}) {
    exp::ExperimentSpec spec = scenario.experimentSpec(
        exp::PaperScenario::kRate20k, workload::ArrivalPattern::Spiky);
    spec.sim.heuristic = "MM";
    spec.sim.machineQueueCapacity = capacity;
    spec.sim.pruning = pruning::PruningConfig::disabled();
    const exp::ExperimentResult base =
        exp::runExperiment(scenario.hetero(), spec);
    spec.sim.pruning = pruning::PruningConfig{};
    const exp::ExperimentResult pruned =
        exp::runExperiment(scenario.hetero(), spec);
    table.addRow({std::to_string(capacity), exp::formatCi(base.robustnessCi),
                  exp::formatCi(pruned.robustnessCi),
                  exp::formatValue(pruned.robustnessCi.mean -
                                       base.robustnessCi.mean,
                                   1)});
  }
  bench::emit(args, table);

  if (!args.csv) {
    std::cout << "\nExpected: the baseline degrades as capacity grows "
                 "(earlier commitment to machine\nqueues); the pruned "
                 "system stays flat, so the gain widens.\n";
  }
  return 0;
}
