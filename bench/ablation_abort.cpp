// Ablation: abort-at-deadline policy — thin wrapper over
// scenarios/ablation_abort.json.

#include <iostream>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace hcs;
  const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
  bench::runScenarioFigure(
      args, "ablation_abort.json", "Ablation: abort running task at deadline",
      "Batch heuristics + full pruning at 25k-equivalent spiky load, with "
      "the\nrun-to-completion policy (paper) vs abort-at-deadline.");
  if (!args.csv) {
    std::cout << "\nExpected: with pruning already deferring and dropping "
                 "doomed tasks, few overdue\ntasks ever start, so aborting "
                 "adds only a small gain.\n";
  }
  return 0;
}
