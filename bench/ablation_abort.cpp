// Ablation: the abort-at-deadline policy (DESIGN.md).  The paper lets a
// started task finish even after its deadline passes; the alternative
// aborts it at the next mapping event and frees the machine.  This bench
// quantifies that design choice for the batch heuristics.

#include <iostream>

#include "bench_util.h"
#include "exp/experiment.h"

int main(int argc, char** argv) {
  using namespace hcs;
  const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
  const exp::PaperScenario scenario(args.scenario);
  bench::printHeader(
      args, "Ablation: abort running task at deadline",
      "Batch heuristics + full pruning at 25k-equivalent spiky load, with "
      "the\nrun-to-completion policy (paper) vs abort-at-deadline.");

  exp::Table table({"heuristic", "run to completion", "abort at deadline"});
  for (const char* heuristic : {"MM", "MSD", "MMU"}) {
    std::vector<std::string> row = {heuristic};
    for (bool abort : {false, true}) {
      exp::ExperimentSpec spec = scenario.experimentSpec(
          exp::PaperScenario::kRate25k, workload::ArrivalPattern::Spiky);
      spec.sim.heuristic = heuristic;
      spec.sim.abortRunningAtDeadline = abort;
      const exp::ExperimentResult result =
          exp::runExperiment(scenario.hetero(), spec);
      row.push_back(exp::formatCi(result.robustnessCi));
    }
    table.addRow(std::move(row));
  }
  bench::emit(args, table);

  if (!args.csv) {
    std::cout << "\nExpected: with pruning already deferring and dropping "
                 "doomed tasks, few overdue\ntasks ever start, so aborting "
                 "adds only a small gain.\n";
  }
  return 0;
}
