// Micro-benchmark for the mapping-event engine itself: per-event cost of
// the batch-mode hot loop when arrival bursts pile B tasks into the batch
// queue — the O(B^2 x M) regime the incremental engine (persistent context,
// delta two-phase evaluation, indexed batch queue) was built for.
//
// After the google-benchmark suites, main() replays identical burst
// workloads (sizes 8 / 64 / 512) through both engines, verifies the trial
// reports agree exactly, and writes the per-event comparison to
// BENCH_mapping_engine.json.  Exits nonzero if the engines ever diverge.
// HCS_MAPPING_REPS overrides the best-of repetition count (default 3).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "core/simulation.h"
#include "exp/scenario.h"
#include "workload/workload.h"

namespace {

using namespace hcs;

const exp::PaperScenario& scenario() {
  static exp::PaperScenario s;  // the paper's 12-type x 8-machine cluster
  return s;
}

/// The oversubscribed standing-queue regime the incremental engine was
/// built for: an opening burst piles `burst` tasks into the batch queue,
/// then a sustained stretch arrives at the cluster's service rate so the
/// queue *stays* that deep for the whole measured run (the paper's
/// oversubscribed-HCS steady state), then the queue drains.  Deadlines sit
/// far beyond the horizon so no pruning path interferes — the measurement
/// isolates the mapping loop.  Every burst size processes the same
/// sustained task total, so per-event costs are comparable.
workload::Workload burstWorkload(std::size_t burst) {
  const workload::BoundExecutionModel& cluster = scenario().hetero();
  const int numTypes = cluster.numTaskTypes();
  double meanExec = 0.0;
  for (int k = 0; k < numTypes; ++k) {
    for (int j = 0; j < cluster.numMachines(); ++j) {
      meanExec += cluster.expectedExec(k, j);
    }
  }
  meanExec /= static_cast<double>(numTypes * cluster.numMachines());

  constexpr std::size_t kSustained = 2048;
  // One arrival per expected completion keeps the standing queue at the
  // burst depth through the sustained stretch.
  const double serviceInterval =
      meanExec / static_cast<double>(cluster.numMachines());

  std::vector<workload::TaskSpec> specs;
  specs.reserve(burst + kSustained);
  std::uint64_t lcg = 0x2545f4914f6cdd1dull;
  auto nextType = [&]() {
    lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<sim::TaskType>(
        (lcg >> 33) % static_cast<std::uint64_t>(numTypes));
  };
  const double horizon =
      static_cast<double>(burst + kSustained) * serviceInterval * 20.0;
  // Opening burst: distinct arrival instants, each its own mapping event.
  for (std::size_t i = 0; i < burst; ++i) {
    specs.push_back(workload::TaskSpec{
        nextType(), static_cast<double>(i) * 1e-7, horizon, 1.0});
  }
  // Sustained stretch at the service rate.
  for (std::size_t i = 0; i < kSustained; ++i) {
    specs.push_back(workload::TaskSpec{
        nextType(), 1.0 + static_cast<double>(i) * serviceInterval, horizon,
        1.0});
  }
  return workload::Workload(std::move(specs), numTypes);
}

core::SimulationConfig engineConfig(bool incremental) {
  core::SimulationConfig config;
  config.heuristic = "MM";
  config.pruning = pruning::PruningConfig::disabled();
  config.incrementalMappingEnabled = incremental;
  // Sweep knob for tuning the adaptive-engine threshold without a rebuild.
  if (const char* minQ = std::getenv("HCS_MAP_MIN_QUEUE")) {
    config.incrementalMapMinQueue =
        static_cast<std::size_t>(std::atoll(minQ));
  }
  config.measureMappingEngine = true;
  config.warmupMargin = 0;
  return config;
}

struct EngineTiming {
  double perEventUs = 0.0;      ///< whole trial / mapping events
  double engineUs = 0.0;        ///< batch-mapping section only, per event
  double eventsPerSec = 0.0;
  std::size_t mappingEvents = 0;
  double robustness = 0.0;
  double makespan = 0.0;
};

EngineTiming timeEngine(const workload::Workload& wl, bool incremental,
                        int reps) {
  const workload::BoundExecutionModel& cluster = scenario().hetero();
  const core::SimulationConfig config = engineConfig(incremental);
  // One untimed warmup trial: the first run on a fresh thread grows the
  // thread-local PmfArena pools and faults in the binary's cold pages, a
  // one-time cost that used to land inside rep 0's timed region and (via
  // best-of) could only be shed if another rep happened to win.  After the
  // throwaway trial every timed rep starts from the same warm steady
  // state, so the comparison measures the engines, not the allocator.
  (void)core::Simulation(cluster, wl, config).run();
  EngineTiming best;
  for (int r = 0; r < reps; ++r) {
    const auto start = std::chrono::steady_clock::now();
    const core::TrialResult result =
        core::Simulation(cluster, wl, config).run();
    const auto end = std::chrono::steady_clock::now();
    const double us =
        std::chrono::duration<double, std::micro>(end - start).count();
    const double perEvent = us / static_cast<double>(result.mappingEvents);
    const double engineUs = result.mappingEngineSeconds * 1e6 /
                            static_cast<double>(result.mappingEvents);
    if (r == 0 || perEvent < best.perEventUs) {
      best.perEventUs = perEvent;
      best.eventsPerSec = 1e6 / perEvent;
    }
    if (r == 0 || engineUs < best.engineUs) best.engineUs = engineUs;
    best.mappingEvents = result.mappingEvents;
    best.robustness = result.robustnessPercent;
    best.makespan = result.makespan;
  }
  return best;
}

void runBurst(benchmark::State& state, std::size_t burst, bool incremental) {
  const workload::Workload wl = burstWorkload(burst);
  const workload::BoundExecutionModel& cluster = scenario().hetero();
  const core::SimulationConfig config = engineConfig(incremental);
  std::size_t events = 0;
  for (auto _ : state) {
    const core::TrialResult result =
        core::Simulation(cluster, wl, config).run();
    benchmark::DoNotOptimize(result.robustnessPercent);
    events += result.mappingEvents;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
}

void BM_Burst8_Incremental(benchmark::State& state) {
  runBurst(state, 8, true);
}
void BM_Burst8_Reference(benchmark::State& state) {
  runBurst(state, 8, false);
}
void BM_Burst64_Incremental(benchmark::State& state) {
  runBurst(state, 64, true);
}
void BM_Burst64_Reference(benchmark::State& state) {
  runBurst(state, 64, false);
}
void BM_Burst512_Incremental(benchmark::State& state) {
  runBurst(state, 512, true);
}
void BM_Burst512_Reference(benchmark::State& state) {
  runBurst(state, 512, false);
}
BENCHMARK(BM_Burst8_Incremental);
BENCHMARK(BM_Burst8_Reference);
BENCHMARK(BM_Burst64_Incremental);
BENCHMARK(BM_Burst64_Reference);
BENCHMARK(BM_Burst512_Incremental);
BENCHMARK(BM_Burst512_Reference);

int runEngineComparison() {
  const char* repsEnv = std::getenv("HCS_MAPPING_REPS");
  const int reps =
      repsEnv != nullptr ? std::max(1, std::atoi(repsEnv)) : 3;

  hcs::bench::JsonWriter json;
  json.field("bench", "mapping_engine").field("heuristic", "MM");
  std::printf("\nmapping-engine comparison (MM, best of %d):\n", reps);

  bool diverged = false;
  for (const std::size_t burst : {std::size_t{8}, std::size_t{64},
                                  std::size_t{512}}) {
    const workload::Workload wl = burstWorkload(burst);
    const EngineTiming inc = timeEngine(wl, /*incremental=*/true, reps);
    const EngineTiming ref = timeEngine(wl, /*incremental=*/false, reps);
    if (inc.mappingEvents != ref.mappingEvents ||
        inc.robustness != ref.robustness || inc.makespan != ref.makespan) {
      std::fprintf(stderr,
                   "micro_mapping: engines DIVERGED at burst %zu\n", burst);
      diverged = true;
    }
    // Two views: the engine section alone (what this PR rewrote — the
    // headline speedup) and the whole event (simulation substrate
    // included — the end-to-end win, diluted by sampling/heap/metrics
    // costs common to both engines).
    const double engineSpeedup =
        inc.engineUs > 0.0 ? ref.engineUs / inc.engineUs : 0.0;
    const double eventSpeedup =
        inc.perEventUs > 0.0 ? ref.perEventUs / inc.perEventUs : 0.0;
    std::printf(
        "  burst %3zu: %7zu events | engine %7.3f -> %7.3f us/event "
        "(%5.2fx) | whole event %5.2f -> %5.2f us (%4.2fx)\n",
        burst, inc.mappingEvents, ref.engineUs, inc.engineUs, engineSpeedup,
        ref.perEventUs, inc.perEventUs, eventSpeedup);

    char name[64];
    std::snprintf(name, sizeof name, "engine_us_%zu_reference", burst);
    json.field(name, ref.engineUs);
    std::snprintf(name, sizeof name, "engine_us_%zu_incremental", burst);
    json.field(name, inc.engineUs);
    std::snprintf(name, sizeof name, "per_event_us_%zu_reference", burst);
    json.field(name, ref.perEventUs);
    std::snprintf(name, sizeof name, "per_event_us_%zu_incremental", burst);
    json.field(name, inc.perEventUs);
    std::snprintf(name, sizeof name, "events_per_sec_%zu_incremental",
                  burst);
    json.field(name, inc.eventsPerSec);
    std::snprintf(name, sizeof name, "speedup_%zu", burst);
    json.field(name, engineSpeedup);
    std::snprintf(name, sizeof name, "event_speedup_%zu", burst);
    json.field(name, eventSpeedup);
  }
  json.write("BENCH_mapping_engine.json");
  return diverged ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return runEngineComparison();
}
