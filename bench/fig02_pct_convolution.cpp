// Fig. 2: forming a task's Probabilistic Completion Time (PCT) by
// convolving its PET with the PCT of the last task on the machine (Eq. 1),
// and reading its chance of success off the result (Eq. 2).
//
// The binary prints the exact example of the figure: a 3-bin PET, a 3-bin
// tail PCT, their convolution, and the resulting chance of success for a
// range of deadlines.

#include <cstdio>

#include "prob/pmf.h"

int main() {
  using hcs::prob::DiscretePmf;

  // PET of arriving task i on machine j (Fig. 2, left).
  const DiscretePmf pet(1, {0.75, 0.125, 0.125});
  // PCT of the last task already assigned to machine j (Fig. 2, middle).
  const DiscretePmf lastPct(4, {0.17, 0.33, 0.50});
  // Eq. 1: PCT(i, j) = PET(i, j) * PCT(i-1, j).
  const DiscretePmf pct = pet.convolve(lastPct);

  std::puts("=== Fig. 2: PET * PCT -> PCT (Eq. 1) ===\n");
  auto dump = [](const char* name, const DiscretePmf& pmf) {
    std::printf("%-22s", name);
    for (std::size_t i = 0; i < pmf.size(); ++i) {
      if (pmf.probs()[i] > 0) {
        std::printf("  P(%g)=%.4f", pmf.timeAt(i), pmf.probs()[i]);
      }
    }
    std::printf("   mean=%.3f stddev=%.3f\n", pmf.mean(), pmf.stddev());
  };
  dump("PET(i,j)", pet);
  dump("PCT(i-1,j)", lastPct);
  dump("PCT(i,j) = conv", pct);

  std::puts("\nChance of success S(i,j) = P[PCT <= deadline] (Eq. 2):");
  for (double deadline = 4.0; deadline <= 10.0; deadline += 1.0) {
    std::printf("  deadline %4.1f -> S = %.4f\n", deadline,
                pct.successProbability(deadline));
  }

  // The compound-uncertainty effect of Section II: queueing a second and a
  // third identical task widens the completion distribution.
  std::puts("\nCompound uncertainty along a queue (stddev of PCT):");
  DiscretePmf chain = pet.convolve(DiscretePmf::pointMass(0.0));
  for (int depth = 1; depth <= 5; ++depth) {
    std::printf("  queue depth %d: mean=%.3f stddev=%.3f\n", depth,
                chain.mean(), chain.stddev());
    chain = chain.convolve(pet);
  }
  return 0;
}
