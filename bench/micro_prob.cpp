// Micro-benchmarks for the PMF machinery — the per-decision costs behind
// the paper's overhead discussion (§V-A: convolution cost is the pruning
// mechanism's main overhead; memoization and a dedicated scheduling node
// keep it off the worker machines).
//
// After the google-benchmark suites, main() times the Eq. 1 kernel two ways
// — the seed's heap-allocating scalar convolution versus the arena-backed
// register-tiled kernel — counts their heap allocations through a hooked
// global allocator, adds a linear-scan vs prefix-sum CDF comparison, and
// writes BENCH_pmf_kernel.json so the kernel-level perf trajectory is
// machine-readable alongside BENCH_pct_cache.json.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <new>
#include <numeric>

#include "bench_util.h"
#include "prob/arena.h"
#include "prob/histogram.h"
#include "prob/kernels.h"
#include "prob/pmf.h"
#include "prob/rng.h"

// --- Hooked allocator: counts every heap allocation in this binary ----------

namespace {
std::atomic<std::uint64_t> gAllocCount{0};
}

void* operator new(std::size_t size) {
  gAllocCount.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc{};
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  gAllocCount.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace {

using hcs::prob::DiscretePmf;
using hcs::prob::PmfArena;
using hcs::prob::Rng;

DiscretePmf makePmf(std::size_t bins, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> probs;
  probs.reserve(bins);
  for (std::size_t i = 0; i < bins; ++i) probs.push_back(rng.uniform(0.01, 1.0));
  return DiscretePmf(1, std::move(probs));
}

void BM_Convolve(benchmark::State& state) {
  const auto a = makePmf(static_cast<std::size_t>(state.range(0)), 1);
  const auto b = makePmf(static_cast<std::size_t>(state.range(1)), 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.convolve(b));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Convolve)->Args({16, 16})->Args({64, 64})->Args({256, 64})
    ->Args({1024, 64})->Args({4096, 64});

void BM_Cdf(benchmark::State& state) {
  const auto pmf = makePmf(static_cast<std::size_t>(state.range(0)), 3);
  const double deadline = pmf.minTime() + 0.7 * (pmf.maxTime() - pmf.minTime());
  for (auto _ : state) {
    benchmark::DoNotOptimize(pmf.successProbability(deadline));
  }
}
BENCHMARK(BM_Cdf)->Arg(16)->Arg(256)->Arg(4096);

void BM_ConditionalRemaining(benchmark::State& state) {
  const auto pmf = makePmf(static_cast<std::size_t>(state.range(0)), 4);
  const double elapsed = pmf.mean() * 0.5;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pmf.conditionalRemaining(elapsed));
  }
}
BENCHMARK(BM_ConditionalRemaining)->Arg(16)->Arg(256)->Arg(4096);

void BM_GammaHistogramPmf(benchmark::State& state) {
  Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hcs::prob::gammaHistogramPmf(
        rng, 12.0, 6.0, static_cast<std::size_t>(state.range(0))));
  }
}
BENCHMARK(BM_GammaHistogramPmf)->Arg(500)->Arg(5000);

void BM_Sample(benchmark::State& state) {
  const auto pmf = makePmf(64, 6);
  Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pmf.sample(rng));
  }
}
BENCHMARK(BM_Sample);

// --- Arena-kernel vs heap-scalar comparison (BENCH_pmf_kernel.json) ---------

/// The seed's convolution, retained verbatim as the uncached reference: a
/// fresh heap vector per operation, scalar clamp loop, erase-based trim.
DiscretePmf heapNaiveConvolve(const DiscretePmf& a, const DiscretePmf& b) {
  const std::size_t outSize = a.size() + b.size() - 1;
  std::vector<double> out(outSize, 0.0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double p = a.probs()[i];
    if (p == 0.0) continue;
    double* dst = out.data() + i;
    const double* src = b.probs().data();
    for (std::size_t j = 0; j < b.size(); ++j) dst[j] += p * src[j];
  }
  auto isPositive = [](double v) { return v > 0.0; };
  auto head = std::find_if(out.begin(), out.end(), isPositive);
  auto tail = std::find_if(out.rbegin(), out.rend(), isPositive).base();
  const auto first = a.firstBin() + b.firstBin() +
                     std::distance(out.begin(), head);
  out.erase(tail, out.end());
  out.erase(out.begin(), head);
  const double total = std::accumulate(out.begin(), out.end(), 0.0);
  for (double& v : out) v /= total;
  return DiscretePmf(first, std::move(out));
}

bool gPathsDiverged = false;

double elapsedMs(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

void runKernelComparison() {
  // Representative Eq. 1 shape: a machine-tail PCT convolved with a PET.
  constexpr std::size_t kTailBins = 256;
  constexpr std::size_t kPetBins = 64;
  constexpr int kChain = 4;    // convolutions per simulated mapping event
  constexpr int kEvents = 800;
  const DiscretePmf tailSeed = makePmf(kTailBins, 11);
  const DiscretePmf pet = makePmf(kPetBins, 12);

  // Leg A — seed behavior: heap-allocated scalar convolutions.
  auto runNaive = [&] {
    double sink = 0.0;
    for (int e = 0; e < kEvents; ++e) {
      DiscretePmf acc = tailSeed;
      for (int c = 0; c < kChain; ++c) acc = heapNaiveConvolve(acc, pet);
      sink += acc.mean();
    }
    return sink;
  };
  // Leg B — destination-passing kernel, dead buffers recycled.
  PmfArena arena;
  auto runArena = [&] {
    double sink = 0.0;
    for (int e = 0; e < kEvents; ++e) {
      DiscretePmf acc = hcs::prob::convolveInto(arena, tailSeed, pet);
      for (int c = 1; c < kChain; ++c) {
        hcs::prob::convolveInPlace(arena, acc, pet);
      }
      sink += acc.mean();
      arena.recycle(std::move(acc));
    }
    return sink;
  };

  runNaive();  // warm both legs (page faults, pool population)
  runArena();

  gAllocCount.store(0, std::memory_order_relaxed);
  auto start = std::chrono::steady_clock::now();
  double naiveSink = runNaive();
  const double naiveMs = elapsedMs(start);
  const std::uint64_t naiveAllocs =
      gAllocCount.load(std::memory_order_relaxed);

  gAllocCount.store(0, std::memory_order_relaxed);
  start = std::chrono::steady_clock::now();
  double arenaSink = runArena();
  const double arenaMs = elapsedMs(start);
  const std::uint64_t arenaAllocs =
      gAllocCount.load(std::memory_order_relaxed);

  benchmark::DoNotOptimize(naiveSink);
  benchmark::DoNotOptimize(arenaSink);
  if (naiveSink != arenaSink) {
    std::fprintf(stderr,
                 "micro_prob: kernel paths diverged (%.17g vs %.17g)\n",
                 naiveSink, arenaSink);
    gPathsDiverged = true;
  }

  // Linear-scan vs prefix-sum CDF on a long PCT (the pruner's Eq. 2 query).
  const DiscretePmf pct = makePmf(4096, 13);
  constexpr int kQueries = 200000;
  Rng probeRng(14);
  std::vector<double> probes;
  probes.reserve(kQueries);
  for (int q = 0; q < kQueries; ++q) {
    probes.push_back(probeRng.uniform(pct.minTime(), pct.maxTime()));
  }
  double linearSink = 0.0;
  start = std::chrono::steady_clock::now();
  for (double t : probes) linearSink += pct.cdf(t);
  const double cdfLinearMs = elapsedMs(start);
  pct.ensureCdfCache();
  double prefixSink = 0.0;
  start = std::chrono::steady_clock::now();
  for (double t : probes) prefixSink += pct.cdf(t);
  const double cdfPrefixMs = elapsedMs(start);
  benchmark::DoNotOptimize(linearSink);
  benchmark::DoNotOptimize(prefixSink);
  if (linearSink != prefixSink) {
    std::fprintf(stderr, "micro_prob: cdf paths diverged\n");
    gPathsDiverged = true;
  }

  const double speedup = arenaMs > 0.0 ? naiveMs / arenaMs : 0.0;
  const double cdfSpeedup =
      cdfPrefixMs > 0.0 ? cdfLinearMs / cdfPrefixMs : 0.0;
  std::printf(
      "\nPMF kernel comparison (%zux%zu Eq. 1 chain, %d events x %d):\n"
      "  heap naive   %8.1f ms   %8llu allocations\n"
      "  arena kernel %8.1f ms   %8llu allocations   (%.2fx)\n"
      "CDF of a %zu-bin PCT, %d queries:\n"
      "  linear scan  %8.1f ms\n"
      "  prefix sums  %8.1f ms   (%.2fx)\n",
      kTailBins, kPetBins, kEvents, kChain, naiveMs,
      static_cast<unsigned long long>(naiveAllocs), arenaMs,
      static_cast<unsigned long long>(arenaAllocs), speedup, pct.size(),
      kQueries, cdfLinearMs, cdfPrefixMs, cdfSpeedup);

  hcs::bench::JsonWriter json;
  json.field("bench", "pmf_kernel")
      .field("tail_bins", static_cast<std::uint64_t>(kTailBins))
      .field("pet_bins", static_cast<std::uint64_t>(kPetBins))
      .field("events", static_cast<std::uint64_t>(kEvents))
      .field("chain", static_cast<std::uint64_t>(kChain))
      .field("naive_ms", naiveMs)
      .field("arena_ms", arenaMs)
      .field("speedup", speedup)
      .field("naive_allocations", naiveAllocs)
      .field("arena_allocations", arenaAllocs)
      .field("cdf_linear_ms", cdfLinearMs)
      .field("cdf_prefix_ms", cdfPrefixMs)
      .field("cdf_speedup", cdfSpeedup);
  json.write("BENCH_pmf_kernel.json");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  runKernelComparison();
  // Divergence between the reference and kernel paths is a bit-identity
  // regression: fail the process so CI catches it.
  return gPathsDiverged ? 1 : 0;
}
