// Micro-benchmarks for the PMF machinery — the per-decision costs behind
// the paper's overhead discussion (§V-A: convolution cost is the pruning
// mechanism's main overhead; memoization and a dedicated scheduling node
// keep it off the worker machines).

#include <benchmark/benchmark.h>

#include "prob/histogram.h"
#include "prob/pmf.h"
#include "prob/rng.h"

namespace {

using hcs::prob::DiscretePmf;
using hcs::prob::Rng;

DiscretePmf makePmf(std::size_t bins, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> probs;
  probs.reserve(bins);
  for (std::size_t i = 0; i < bins; ++i) probs.push_back(rng.uniform(0.01, 1.0));
  return DiscretePmf(1, std::move(probs));
}

void BM_Convolve(benchmark::State& state) {
  const auto a = makePmf(static_cast<std::size_t>(state.range(0)), 1);
  const auto b = makePmf(static_cast<std::size_t>(state.range(1)), 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.convolve(b));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Convolve)->Args({16, 16})->Args({64, 64})->Args({256, 64})
    ->Args({1024, 64})->Args({4096, 64});

void BM_Cdf(benchmark::State& state) {
  const auto pmf = makePmf(static_cast<std::size_t>(state.range(0)), 3);
  const double deadline = pmf.minTime() + 0.7 * (pmf.maxTime() - pmf.minTime());
  for (auto _ : state) {
    benchmark::DoNotOptimize(pmf.successProbability(deadline));
  }
}
BENCHMARK(BM_Cdf)->Arg(16)->Arg(256)->Arg(4096);

void BM_ConditionalRemaining(benchmark::State& state) {
  const auto pmf = makePmf(static_cast<std::size_t>(state.range(0)), 4);
  const double elapsed = pmf.mean() * 0.5;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pmf.conditionalRemaining(elapsed));
  }
}
BENCHMARK(BM_ConditionalRemaining)->Arg(16)->Arg(256)->Arg(4096);

void BM_GammaHistogramPmf(benchmark::State& state) {
  Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hcs::prob::gammaHistogramPmf(
        rng, 12.0, 6.0, static_cast<std::size_t>(state.range(0))));
  }
}
BENCHMARK(BM_GammaHistogramPmf)->Arg(500)->Arg(5000);

void BM_Sample(benchmark::State& state) {
  const auto pmf = makePmf(64, 6);
  Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pmf.sample(rng));
  }
}
BENCHMARK(BM_Sample);

}  // namespace

BENCHMARK_MAIN();
