// Micro-benchmark for the elastic capacity controller: what autoscaling
// costs on top of the fixed-capacity engine, and that an armed-but-pinned
// (min == max everywhere) controller costs nothing at all.
//
// After the google-benchmark suites, main() verifies the layer's keystone
// contract — a pinned controller reproduces the fixed-capacity engine
// exactly — then times a fixed trial against an active queue_bound trial on
// an oversubscribed stream, writing the comparison to BENCH_elasticity.json.
// Exits nonzero if the pinned config ever diverges from the plain engine.
// HCS_ELASTICITY_REPS overrides the best-of repetition count (default 3).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <numeric>
#include <vector>

#include "bench_util.h"
#include "core/simulation.h"
#include "exp/experiment.h"
#include "exp/scenario.h"
#include "workload/pet_matrix.h"
#include "workload/workload.h"

namespace {

using namespace hcs;

const exp::PaperScenario& scenario() {
  static exp::PaperScenario s;  // the paper's 12-type x 8-machine cluster
  return s;
}

/// Base cluster plus parked surplus: types 0 and 1 may scale to 3 machines.
const workload::BoundExecutionModel& elasticModel() {
  static const workload::BoundExecutionModel model = [] {
    std::vector<int> types(
        static_cast<std::size_t>(scenario().hetero().numMachines()));
    std::iota(types.begin(), types.end(), 0);
    types.insert(types.end(), {0, 0, 1, 1});
    return workload::BoundExecutionModel(scenario().pet(), types);
  }();
  return model;
}

workload::Workload oversubscribedWorkload(std::uint64_t seed) {
  return workload::Workload::generate(
      *scenario().pet(),
      scenario().arrivalSpec(exp::PaperScenario::kRate25k,
                             workload::ArrivalPattern::Spiky),
      {}, seed);
}

core::SimulationConfig baseConfig() {
  core::SimulationConfig config;
  config.heuristic = "MM";
  config.warmupMargin = 0;
  config.elasticitySeed = exp::elasticitySeedFor(7);
  return config;
}

/// Armed but pinned: every machine type bounded at its base count, so the
/// controller ticks but can never act — the identity case.
core::SimulationConfig pinnedConfig() {
  core::SimulationConfig config = baseConfig();
  config.elasticity.enabled = true;
  config.elasticity.period = 2.0;
  config.elasticity.baseMachines =
      static_cast<std::size_t>(scenario().hetero().numMachines());
  for (int t = 0; t < scenario().hetero().numMachines(); ++t) {
    config.elasticity.pool.push_back({t, 1, 1});
  }
  return config;
}

/// Active queue_bound scaling over the expanded cluster.
core::SimulationConfig elasticConfig() {
  core::SimulationConfig config = baseConfig();
  config.elasticity.enabled = true;
  config.elasticity.policy = sim::ElasticityPolicy::QueueBound;
  config.elasticity.period = 1.0;
  config.elasticity.bootLatency = 1.0;
  config.elasticity.scaleUpQueue = 2.0;
  config.elasticity.scaleDownQueue = 1.0;
  config.elasticity.baseMachines =
      static_cast<std::size_t>(scenario().hetero().numMachines());
  config.elasticity.pool.push_back({0, 1, 3});
  config.elasticity.pool.push_back({1, 1, 3});
  return config;
}

void BM_FixedCapacity(benchmark::State& state) {
  const workload::Workload wl = oversubscribedWorkload(7);
  const core::SimulationConfig config = baseConfig();
  for (auto _ : state) {
    const core::TrialResult r =
        core::Simulation(scenario().hetero(), wl, config).run();
    benchmark::DoNotOptimize(r.robustnessPercent);
  }
}
void BM_PinnedController(benchmark::State& state) {
  const workload::Workload wl = oversubscribedWorkload(7);
  const core::SimulationConfig config = pinnedConfig();
  for (auto _ : state) {
    const core::TrialResult r =
        core::Simulation(scenario().hetero(), wl, config).run();
    benchmark::DoNotOptimize(r.robustnessPercent);
  }
}
void BM_ElasticController(benchmark::State& state) {
  const workload::Workload wl = oversubscribedWorkload(7);
  const core::SimulationConfig config = elasticConfig();
  for (auto _ : state) {
    const core::TrialResult r =
        core::Simulation(elasticModel(), wl, config).run();
    benchmark::DoNotOptimize(r.robustnessPercent);
  }
}
BENCHMARK(BM_FixedCapacity);
BENCHMARK(BM_PinnedController);
BENCHMARK(BM_ElasticController);

double bestOfUs(int reps, const std::function<double()>& run) {
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    const double us = run();
    if (r == 0 || us < best) best = us;
  }
  return best;
}

double timeTrialUs(int reps, const sim::ExecutionModel& model,
                   const workload::Workload& wl,
                   const core::SimulationConfig& config) {
  return bestOfUs(reps, [&] {
    const auto start = std::chrono::steady_clock::now();
    const core::TrialResult r = core::Simulation(model, wl, config).run();
    benchmark::DoNotOptimize(r.robustnessPercent);
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - start)
        .count();
  });
}

int runElasticityComparison() {
  const char* repsEnv = std::getenv("HCS_ELASTICITY_REPS");
  const int reps = repsEnv != nullptr ? std::max(1, std::atoi(repsEnv)) : 3;
  const workload::Workload wl = oversubscribedWorkload(7);
  const double tasks = static_cast<double>(wl.size());

  hcs::bench::JsonWriter json;
  json.field("bench", "elasticity").field("heuristic", "MM");
  json.field("tasks", static_cast<std::uint64_t>(wl.size()));

  // Keystone check: the controller armed with min == max everywhere must
  // reproduce the fixed-capacity engine exactly (the full trace-level
  // oracle lives in tests/elasticity_test.cpp; here the digest guards the
  // bench numbers).
  const core::TrialResult plain =
      core::Simulation(scenario().hetero(), wl, baseConfig()).run();
  const core::TrialResult pinned =
      core::Simulation(scenario().hetero(), wl, pinnedConfig()).run();
  bool diverged = false;
  if (pinned.robustnessPercent != plain.robustnessPercent ||
      pinned.mappingEvents != plain.mappingEvents ||
      pinned.makespan != plain.makespan) {
    std::fprintf(stderr,
                 "micro_elasticity: pinned controller DIVERGED from the "
                 "fixed-capacity engine\n");
    diverged = true;
  }

  const double fixedUs = timeTrialUs(reps, scenario().hetero(), wl,
                                     baseConfig());
  const double pinnedUs = timeTrialUs(reps, scenario().hetero(), wl,
                                      pinnedConfig());
  const core::TrialResult elastic =
      core::Simulation(elasticModel(), wl, elasticConfig()).run();
  const double elasticUs =
      timeTrialUs(reps, elasticModel(), wl, elasticConfig());
  const double ratio = fixedUs > 0.0 ? elasticUs / fixedUs : 0.0;

  std::printf("\nelasticity comparison (MM, 25k-equivalent stream, best of "
              "%d):\n", reps);
  std::printf("  fixed capacity:  %8.0f us/trial\n", fixedUs);
  std::printf("  pinned armed:    %8.0f us/trial (%+.1f%%)\n", pinnedUs,
              fixedUs > 0.0 ? 100.0 * (pinnedUs - fixedUs) / fixedUs : 0.0);
  std::printf(
      "  elastic 1..3x:   %8.0f us/trial (%.2fx, %.3f us/task), "
      "robustness %.1f%%, %llu ups, %llu downs, %.0f machine-seconds "
      "(%.1f%% utilized)\n",
      elasticUs, ratio, elasticUs / tasks, elastic.robustnessPercent,
      static_cast<unsigned long long>(elastic.metrics.scaleUps()),
      static_cast<unsigned long long>(elastic.metrics.scaleDowns()),
      elastic.metrics.onlineMachineSeconds(),
      elastic.metrics.utilizationPercent());

  json.field("fixed_trial_us", fixedUs);
  json.field("pinned_trial_us", pinnedUs);
  json.field("elastic_trial_us", elasticUs);
  json.field("elastic_overhead_ratio", ratio);
  json.field("elastic_us_per_task", elasticUs / tasks);
  json.field("elastic_robustness", elastic.robustnessPercent);
  json.field("elastic_scale_ups",
             static_cast<std::uint64_t>(elastic.metrics.scaleUps()));
  json.field("elastic_scale_downs",
             static_cast<std::uint64_t>(elastic.metrics.scaleDowns()));
  json.field("elastic_machine_seconds",
             elastic.metrics.onlineMachineSeconds());
  json.field("elastic_utilization_pct", elastic.metrics.utilizationPercent());

  json.write("BENCH_elasticity.json");
  return diverged ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return runElasticityComparison();
}
