// Micro-benchmark for the streaming engine: what pull-based arrivals cost
// against the materialized path, and the headline number the roadmap's
// million-task service mode is about — streamed tasks per second in a flat
// memory envelope.
//
// After the google-benchmark suites, main() verifies the layer's keystone
// contract — a streamed trial reproduces the materialized TrialResult
// exactly — then times (a) the paired trials on the paper's oversubscribed
// stream and (b) a large streamed-only run (HCS_STREAM_TASKS tasks, default
// 10M) that no materialized trial of the same size would fit in memory,
// writing the comparison to BENCH_streaming.json.  Exits nonzero if the
// streamed trial ever diverges.  HCS_STREAM_REPS overrides the best-of
// repetition count (default 3).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>

#include "bench_util.h"
#include "core/simulation.h"
#include "exp/experiment.h"
#include "exp/scenario.h"
#include "workload/stream.h"
#include "workload/workload.h"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#define HCS_HAVE_RUSAGE 1
#endif

namespace {

using namespace hcs;

const exp::PaperScenario& scenario() {
  static exp::PaperScenario s;  // the paper's 12-type x 8-machine cluster
  return s;
}

workload::ArrivalSpec oversubscribedArrival() {
  return scenario().arrivalSpec(exp::PaperScenario::kRate25k,
                                workload::ArrivalPattern::Spiky);
}

core::SimulationConfig baseConfig() {
  core::SimulationConfig config;
  config.heuristic = "MM";
  config.warmupMargin = 0;
  return config;
}

void BM_MaterializedTrial(benchmark::State& state) {
  const workload::Workload wl = workload::Workload::generate(
      *scenario().pet(), oversubscribedArrival(), {}, 7);
  const core::SimulationConfig config = baseConfig();
  for (auto _ : state) {
    const core::TrialResult r =
        core::Simulation(scenario().hetero(), wl, config).run();
    benchmark::DoNotOptimize(r.robustnessPercent);
  }
}
void BM_StreamedTrial(benchmark::State& state) {
  const core::SimulationConfig config = baseConfig();
  for (auto _ : state) {
    workload::GeneratedTaskStream stream(*scenario().pet(),
                                         oversubscribedArrival(), {}, 7);
    const core::TrialResult r =
        core::Simulation(scenario().hetero(), stream, config).run();
    benchmark::DoNotOptimize(r.robustnessPercent);
  }
}
void BM_EagerGenerate(benchmark::State& state) {
  for (auto _ : state) {
    const workload::Workload wl = workload::Workload::generate(
        *scenario().pet(), oversubscribedArrival(), {}, 7);
    benchmark::DoNotOptimize(wl.size());
  }
}
void BM_StreamedGenerate(benchmark::State& state) {
  for (auto _ : state) {
    workload::GeneratedTaskStream stream(*scenario().pet(),
                                         oversubscribedArrival(), {}, 7);
    std::size_t n = 0;
    while (stream.peek() != nullptr) {
      benchmark::DoNotOptimize(stream.pop().arrival);
      ++n;
    }
    benchmark::DoNotOptimize(n);
  }
}
BENCHMARK(BM_MaterializedTrial);
BENCHMARK(BM_StreamedTrial);
BENCHMARK(BM_EagerGenerate);
BENCHMARK(BM_StreamedGenerate);

double bestOfUs(int reps, const std::function<double()>& run) {
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    const double us = run();
    if (r == 0 || us < best) best = us;
  }
  return best;
}

double rssMb() {
#if defined(HCS_HAVE_RUSAGE)
  struct rusage u {};
  getrusage(RUSAGE_SELF, &u);
#if defined(__APPLE__)
  return static_cast<double>(u.ru_maxrss) / (1024.0 * 1024.0);
#else
  return static_cast<double>(u.ru_maxrss) / 1024.0;
#endif
#else
  return 0.0;
#endif
}

/// True when the two trials report identical results (everything the
/// experiment layer consumes).
bool sameResult(const core::TrialResult& a, const core::TrialResult& b) {
  return a.robustnessPercent == b.robustnessPercent &&
         a.mappingEvents == b.mappingEvents && a.makespan == b.makespan &&
         a.metrics.completedOnTime() == b.metrics.completedOnTime() &&
         a.metrics.completedLate() == b.metrics.completedLate() &&
         a.metrics.droppedReactive() == b.metrics.droppedReactive() &&
         a.metrics.droppedProactive() == b.metrics.droppedProactive() &&
         a.metrics.deferrals() == b.metrics.deferrals() &&
         a.machineUtilization == b.machineUtilization;
}

int runStreamingComparison() {
  const char* repsEnv = std::getenv("HCS_STREAM_REPS");
  const int reps = repsEnv != nullptr ? std::max(1, std::atoi(repsEnv)) : 3;
  std::size_t bigTasks = 10000000;
  if (const char* env = std::getenv("HCS_STREAM_TASKS")) {
    const unsigned long long n = std::strtoull(env, nullptr, 10);
    if (n > 0) bigTasks = static_cast<std::size_t>(n);
  }

  hcs::bench::JsonWriter json;
  json.field("bench", "streaming").field("heuristic", "MM");

  // Keystone check: the streamed trial must reproduce the materialized
  // TrialResult exactly (the full digest oracle lives in
  // tests/stream_test.cpp; here it guards the bench numbers).
  const workload::Workload wl = workload::Workload::generate(
      *scenario().pet(), oversubscribedArrival(), {}, 7);
  const core::TrialResult materialized =
      core::Simulation(scenario().hetero(), wl, baseConfig()).run();
  workload::GeneratedTaskStream identityStream(*scenario().pet(),
                                               oversubscribedArrival(), {}, 7);
  const core::TrialResult streamed =
      core::Simulation(scenario().hetero(), identityStream, baseConfig())
          .run();
  bool diverged = false;
  if (!sameResult(materialized, streamed)) {
    std::fprintf(stderr,
                 "micro_streaming: streamed trial DIVERGED from the "
                 "materialized engine\n");
    diverged = true;
  }
  json.field("tasks", static_cast<std::uint64_t>(wl.size()));

  // Paired cost on the paper's stream (generation included on both sides).
  const double materializedUs = bestOfUs(reps, [&] {
    const auto start = std::chrono::steady_clock::now();
    const workload::Workload w = workload::Workload::generate(
        *scenario().pet(), oversubscribedArrival(), {}, 7);
    const core::TrialResult r =
        core::Simulation(scenario().hetero(), w, baseConfig()).run();
    benchmark::DoNotOptimize(r.robustnessPercent);
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - start)
        .count();
  });
  const double streamedUs = bestOfUs(reps, [&] {
    const auto start = std::chrono::steady_clock::now();
    workload::GeneratedTaskStream stream(*scenario().pet(),
                                         oversubscribedArrival(), {}, 7);
    const core::TrialResult r =
        core::Simulation(scenario().hetero(), stream, baseConfig()).run();
    benchmark::DoNotOptimize(r.robustnessPercent);
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - start)
        .count();
  });
  const double ratio =
      materializedUs > 0.0 ? streamedUs / materializedUs : 0.0;

  // The headline: a trial far beyond materialized reach.  A fast flat
  // cluster keeps the scheduler from being the bottleneck under study, and
  // the constant pattern streams arrivals at ~2.4x the cluster's service
  // capacity so drops, queues, and completions all stay exercised.
  workload::ArrivalSpec big;
  big.pattern = workload::ArrivalPattern::Constant;
  big.totalTasks = bigTasks;
  big.numTaskTypes = 2;
  big.span = static_cast<double>(bigTasks) / 8.0;
  const workload::PetMatrix flatPet = workload::PetMatrix::fromMeans(
      {{1.0, 1.2, 1.4, 1.6}, {0.8, 1.0, 1.2, 1.4}}, 4.0, 99);
  const workload::BoundExecutionModel flatCluster(
      std::make_shared<const workload::PetMatrix>(flatPet), {0, 1, 2, 3});
  core::SimulationConfig bigConfig;
  bigConfig.heuristic = "MCT";

  const double rssBeforeMb = rssMb();
  std::size_t bigTerminal = 0;
  const double bigUs = bestOfUs(std::min(reps, 2), [&] {
    const auto start = std::chrono::steady_clock::now();
    workload::GeneratedTaskStream stream(flatPet, big, {}, 17);
    const core::TrialResult r =
        core::Simulation(flatCluster, stream, bigConfig).run();
    bigTerminal = r.metrics.terminalCount();
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - start)
        .count();
  });
  const double rssAfterMb = rssMb();
  const double tasksPerSec =
      bigUs > 0.0 ? static_cast<double>(bigTasks) / (bigUs / 1e6) : 0.0;

  std::printf("\nstreaming comparison (MM, 25k-equivalent stream, best of "
              "%d):\n", reps);
  std::printf("  materialized trial: %8.0f us\n", materializedUs);
  std::printf("  streamed trial:     %8.0f us (%.2fx)\n", streamedUs, ratio);
  std::printf(
      "  streamed %zu-task run (MCT, flat 4-machine cluster): %.2f s, "
      "%.0f tasks/s, %zu terminal, RSS %.0f -> %.0f MB\n",
      bigTasks, bigUs / 1e6, tasksPerSec, bigTerminal, rssBeforeMb,
      rssAfterMb);

  json.field("materialized_trial_us", materializedUs);
  json.field("streamed_trial_us", streamedUs);
  json.field("streamed_overhead_ratio", ratio);
  json.field("big_run_tasks", static_cast<std::uint64_t>(bigTasks));
  json.field("big_run_s", bigUs / 1e6);
  json.field("streamed_tasks_per_sec", tasksPerSec);
  json.field("big_run_terminal",
             static_cast<std::uint64_t>(bigTerminal));
  json.field("big_run_rss_mb", rssAfterMb);

  json.write("BENCH_streaming.json");
  return diverged ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return runStreamingComparison();
}
