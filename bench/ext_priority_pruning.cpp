// Extension (§VII future work): priority/cost-aware pruning.  20% of tasks
// are premium (value 4).  Value-blind pruning maximizes the *count* of
// on-time tasks; priority-aware pruning scales each task's pruning bar by
// 1/value so premium tasks survive longer and cheap tasks are pruned
// eagerly — raising value-weighted robustness.

#include <iostream>

#include "bench_util.h"
#include "ext/priority.h"
#include "stats/confidence.h"

int main(int argc, char** argv) {
  using namespace hcs;
  const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
  const exp::PaperScenario scenario(args.scenario);
  bench::printHeader(
      args, "Extension: priority-aware pruning (§VII)",
      "MM + pruning at 25k-equivalent spiky load; 20% of tasks are premium "
      "(value 4).\nWeighted robustness counts a premium completion 4x.");

  const ext::ValueSpec values;  // 20% at value 4

  exp::Table table({"pruning policy", "robustness %",
                    "value-weighted robustness %"});
  struct Policy {
    const char* label;
    bool enabled;
    bool priorityAware;
  };
  for (const Policy& policy :
       {Policy{"no pruning", false, false},
        Policy{"value-blind pruning", true, false},
        Policy{"priority-aware pruning", true, true}}) {
    stats::RunningStats plain, weighted;
    for (std::size_t trial = 0; trial < args.scenario.trials; ++trial) {
      const workload::Workload base = workload::Workload::generate(
          *scenario.pet(),
          scenario.arrivalSpec(exp::PaperScenario::kRate25k,
                               workload::ArrivalPattern::Spiky),
          {}, 2019 + trial);
      const workload::Workload wl =
          ext::assignValues(base, values, 55 + trial);
      core::SimulationConfig config;
      config.heuristic = "MM";
      config.warmupMargin = scenario.warmupMargin(exp::PaperScenario::kRate25k);
      if (!policy.enabled) {
        config.pruning = pruning::PruningConfig::disabled();
      } else {
        config.pruning.priorityAware = policy.priorityAware;
        // Reference at the workload's mean value (0.8*1 + 0.2*4) so the
        // adjustment reallocates capacity instead of loosening every bar.
        config.pruning.priorityReference =
            (1.0 - values.highFraction) * 1.0 +
            values.highFraction * values.highValue;
      }
      const core::TrialResult result =
          core::Simulation(scenario.hetero(), wl, config).run();
      plain.add(result.robustnessPercent);
      weighted.add(result.metrics.weightedRobustnessPercent());
    }
    table.addRow({policy.label,
                  exp::formatCi(stats::meanConfidenceInterval(plain)),
                  exp::formatCi(stats::meanConfidenceInterval(weighted))});
  }
  bench::emit(args, table);

  if (!args.csv) {
    std::cout << "\nExpected: priority-aware pruning raises the value-"
                 "weighted score — premium tasks meet\ntheir deadlines at "
                 "the expense of cheap ones (whose bar rises above the "
                 "plain\nthreshold) — realizing the policy the paper "
                 "sketches as future work.\n";
  }
  return 0;
}
