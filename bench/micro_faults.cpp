// Micro-benchmark for the fault-injection layer: what churn costs on top of
// the fault-free engine, and that an armed-but-silent fault config costs
// nothing at all.
//
// After the google-benchmark suites, main() verifies the layer's keystone
// contract — a fault-enabled config with zero failure rate and no scripted
// events reproduces the plain engine exactly — then times a fault-free trial
// against an MTBF-driven churn trial on an oversubscribed stream, writing
// the comparison to BENCH_faults.json.  Exits nonzero if the zero-fault
// config ever diverges from the plain engine.  HCS_FAULT_REPS overrides the
// best-of repetition count (default 3).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>

#include "bench_util.h"
#include "core/simulation.h"
#include "exp/experiment.h"
#include "exp/scenario.h"
#include "workload/workload.h"

namespace {

using namespace hcs;

const exp::PaperScenario& scenario() {
  static exp::PaperScenario s;  // the paper's 12-type x 8-machine cluster
  return s;
}

workload::Workload oversubscribedWorkload(std::uint64_t seed) {
  return workload::Workload::generate(
      *scenario().pet(),
      scenario().arrivalSpec(exp::PaperScenario::kRate25k,
                             workload::ArrivalPattern::Spiky),
      {}, seed);
}

core::SimulationConfig baseConfig() {
  core::SimulationConfig config;
  config.heuristic = "MM";
  config.warmupMargin = 0;
  config.faultSeed = exp::faultSeedFor(7);
  return config;
}

/// Fault-enabled but inert: the zero-fault identity case.
core::SimulationConfig zeroFaultConfig() {
  core::SimulationConfig config = baseConfig();
  config.faults.enabled = true;
  config.faults.mtbf = 0.0;
  config.faults.mttr = 0.0;
  return config;
}

/// Active churn: every machine fails a handful of times per trial.
core::SimulationConfig churnConfig() {
  core::SimulationConfig config = baseConfig();
  config.faults.enabled = true;
  config.faults.mtbf = 60.0;
  config.faults.mttr = 8.0;
  return config;
}

void BM_FaultFree(benchmark::State& state) {
  const workload::Workload wl = oversubscribedWorkload(7);
  const core::SimulationConfig config = baseConfig();
  for (auto _ : state) {
    const core::TrialResult r =
        core::Simulation(scenario().hetero(), wl, config).run();
    benchmark::DoNotOptimize(r.robustnessPercent);
  }
}
void BM_ZeroFaultArmed(benchmark::State& state) {
  const workload::Workload wl = oversubscribedWorkload(7);
  const core::SimulationConfig config = zeroFaultConfig();
  for (auto _ : state) {
    const core::TrialResult r =
        core::Simulation(scenario().hetero(), wl, config).run();
    benchmark::DoNotOptimize(r.robustnessPercent);
  }
}
void BM_Churn(benchmark::State& state) {
  const workload::Workload wl = oversubscribedWorkload(7);
  const core::SimulationConfig config = churnConfig();
  for (auto _ : state) {
    const core::TrialResult r =
        core::Simulation(scenario().hetero(), wl, config).run();
    benchmark::DoNotOptimize(r.robustnessPercent);
  }
}
BENCHMARK(BM_FaultFree);
BENCHMARK(BM_ZeroFaultArmed);
BENCHMARK(BM_Churn);

double bestOfUs(int reps, const std::function<double()>& run) {
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    const double us = run();
    if (r == 0 || us < best) best = us;
  }
  return best;
}

double timeTrialUs(int reps, const workload::Workload& wl,
                   const core::SimulationConfig& config) {
  return bestOfUs(reps, [&] {
    const auto start = std::chrono::steady_clock::now();
    const core::TrialResult r =
        core::Simulation(scenario().hetero(), wl, config).run();
    benchmark::DoNotOptimize(r.robustnessPercent);
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - start)
        .count();
  });
}

int runFaultsComparison() {
  const char* repsEnv = std::getenv("HCS_FAULT_REPS");
  const int reps = repsEnv != nullptr ? std::max(1, std::atoi(repsEnv)) : 3;
  const workload::Workload wl = oversubscribedWorkload(7);
  const double tasks = static_cast<double>(wl.size());

  hcs::bench::JsonWriter json;
  json.field("bench", "faults").field("heuristic", "MM");
  json.field("tasks", static_cast<std::uint64_t>(wl.size()));

  // Keystone check: fault machinery armed with nothing to inject must
  // reproduce the plain engine exactly (the full trace-level oracle lives
  // in tests/faults_test.cpp; here the digest guards the bench numbers).
  const core::TrialResult plain =
      core::Simulation(scenario().hetero(), wl, baseConfig()).run();
  const core::TrialResult armed =
      core::Simulation(scenario().hetero(), wl, zeroFaultConfig()).run();
  bool diverged = false;
  if (armed.robustnessPercent != plain.robustnessPercent ||
      armed.mappingEvents != plain.mappingEvents ||
      armed.makespan != plain.makespan) {
    std::fprintf(stderr,
                 "micro_faults: zero-fault armed config DIVERGED from the "
                 "plain engine\n");
    diverged = true;
  }

  const double plainUs = timeTrialUs(reps, wl, baseConfig());
  const double armedUs = timeTrialUs(reps, wl, zeroFaultConfig());
  const core::TrialResult churned =
      core::Simulation(scenario().hetero(), wl, churnConfig()).run();
  const double churnUs = timeTrialUs(reps, wl, churnConfig());
  const double ratio = plainUs > 0.0 ? churnUs / plainUs : 0.0;

  std::printf("\nfaults comparison (MM, 25k-equivalent stream, best of "
              "%d):\n", reps);
  std::printf("  fault-free:      %8.0f us/trial\n", plainUs);
  std::printf("  zero-fault armed:%8.0f us/trial (%+.1f%%)\n", armedUs,
              plainUs > 0.0 ? 100.0 * (armedUs - plainUs) / plainUs : 0.0);
  std::printf(
      "  churn mtbf=60 mttr=8: %8.0f us/trial (%.2fx, %.3f us/task), "
      "robustness %.1f%%, %llu failures, %llu retries, %llu abandoned\n",
      churnUs, ratio, churnUs / tasks, churned.robustnessPercent,
      static_cast<unsigned long long>(churned.metrics.machineFailures()),
      static_cast<unsigned long long>(churned.metrics.retries()),
      static_cast<unsigned long long>(churned.metrics.abandoned()));

  json.field("faultfree_trial_us", plainUs);
  json.field("zero_fault_armed_trial_us", armedUs);
  json.field("churn_trial_us", churnUs);
  json.field("churn_overhead_ratio", ratio);
  json.field("churn_us_per_task", churnUs / tasks);
  json.field("churn_robustness", churned.robustnessPercent);
  json.field("churn_machine_failures",
             static_cast<std::uint64_t>(churned.metrics.machineFailures()));
  json.field("churn_retries",
             static_cast<std::uint64_t>(churned.metrics.retries()));
  json.field("churn_abandoned",
             static_cast<std::uint64_t>(churned.metrics.abandoned()));

  json.write("BENCH_faults.json");
  return diverged ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return runFaultsComparison();
}
