// Fig. 8: impact of task deferring on batch-mode heuristics under heavy
// oversubscription (25k-equivalent).  Pruning Threshold swept over
// {0, 25, 50, 75}%; dropping disabled so deferring is isolated.  The 0%
// point is the paper's "no task pruning" baseline (no pruning mechanism at
// all).

#include <iostream>

#include "bench_util.h"
#include "exp/experiment.h"

int main(int argc, char** argv) {
  using namespace hcs;
  const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
  const exp::PaperScenario scenario(args.scenario);
  bench::printHeader(
      args, "Fig. 8",
      "Task deferring vs Pruning Threshold, batch-mode heuristics,\n"
      "heterogeneous cluster, spiky arrivals, 25k-equivalent load.\n"
      "Cells: % tasks completed on time (mean ±95% CI).");

  exp::Table table({"threshold", "MM", "MSD", "MMU"});
  for (double threshold : {0.0, 0.25, 0.50, 0.75}) {
    std::vector<std::string> row = {
        exp::formatValue(threshold * 100.0, 0) + "%"};
    for (const char* heuristic : {"MM", "MSD", "MMU"}) {
      exp::ExperimentSpec spec = scenario.experimentSpec(
          exp::PaperScenario::kRate25k, workload::ArrivalPattern::Spiky);
      spec.sim.heuristic = heuristic;
      if (threshold == 0.0) {
        spec.sim.pruning = pruning::PruningConfig::disabled();
      } else {
        spec.sim.pruning.toggle = pruning::ToggleMode::NoDropping;
        spec.sim.pruning.threshold = threshold;
      }
      const exp::ExperimentResult result =
          exp::runExperiment(scenario.hetero(), spec);
      row.push_back(exp::formatCi(result.robustnessCi));
    }
    table.addRow(std::move(row));
  }
  bench::emit(args, table);

  if (!args.csv) {
    std::cout
        << "\nPaper shape: without deferring (0%) robustness collapses "
           "(5-23%); any threshold >= 25%\nrecovers it to >= 44% and "
           "equalizes the three heuristics.  The paper plateaus at 50%;\n"
           "here gains continue mildly past 50% because deferred tasks are "
           "re-evaluated at every\nmapping event (see EXPERIMENTS.md).\n";
  }
  return 0;
}
