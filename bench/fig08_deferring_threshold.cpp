// Fig. 8 — thin wrapper over scenarios/fig08_deferring_threshold.json.

#include <iostream>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace hcs;
  const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
  bench::runScenarioFigure(
      args, "fig08_deferring_threshold.json", "Fig. 8",
      "Task deferring vs Pruning Threshold, batch-mode heuristics,\n"
      "heterogeneous cluster, spiky arrivals, 25k-equivalent load.\n"
      "Cells: % tasks completed on time (mean ±95% CI).");
  if (!args.csv) {
    std::cout
        << "\nPaper shape: without deferring (0%) robustness collapses "
           "(5-23%); any threshold >= 25%\nrecovers it to >= 44% and "
           "equalizes the three heuristics.  The paper plateaus at 50%;\n"
           "here gains continue mildly past 50% because deferred tasks are "
           "re-evaluated at every\nmapping event (see EXPERIMENTS.md).\n";
  }
  return 0;
}
