// Fig. 7b — thin wrapper over scenarios/fig07b_toggle_batch.json.

#include <iostream>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace hcs;
  const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
  bench::runScenarioFigure(
      args, "fig07b_toggle_batch.json", "Fig. 7b",
      "Toggle impact on batch-mode heuristics, heterogeneous cluster,\n"
      "spiky arrivals, 15k-equivalent load.  Cells: % tasks completed on "
      "time (mean ±95% CI).");
  if (!args.csv) {
    std::cout << "\nPaper shape: task dropping raises batch-mode robustness "
                 "(up to ~19 points), with the\nreactive Toggle at least "
                 "matching always-dropping; MSD/MMU gain the most.\n";
  }
  return 0;
}
