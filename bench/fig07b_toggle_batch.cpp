// Fig. 7b: impact of the Toggle module on batch-mode mapping heuristics
// (MM, MSD, MMU) in a heterogeneous system — same three scenarios as
// Fig. 7a, with deferring disabled to isolate the dropping operation.

#include <iostream>

#include "bench_util.h"
#include "exp/experiment.h"

int main(int argc, char** argv) {
  using namespace hcs;
  const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
  const exp::PaperScenario scenario(args.scenario);
  bench::printHeader(
      args, "Fig. 7b",
      "Toggle impact on batch-mode heuristics, heterogeneous cluster,\n"
      "spiky arrivals, 15k-equivalent load.  Cells: % tasks completed on "
      "time (mean ±95% CI).");

  const std::vector<std::pair<std::string, pruning::PruningConfig>> modes = [] {
    pruning::PruningConfig off = pruning::PruningConfig::disabled();
    pruning::PruningConfig always;
    always.deferEnabled = false;
    always.toggle = pruning::ToggleMode::AlwaysDropping;
    pruning::PruningConfig reactive;
    reactive.deferEnabled = false;
    reactive.toggle = pruning::ToggleMode::Reactive;
    return std::vector<std::pair<std::string, pruning::PruningConfig>>{
        {"no Toggle, no dropping", off},
        {"no Toggle, always dropping", always},
        {"reactive Toggle", reactive}};
  }();

  exp::Table table({"scenario", "MM", "MSD", "MMU"});
  for (const auto& [label, pruningConfig] : modes) {
    std::vector<std::string> row = {label};
    for (const char* heuristic : {"MM", "MSD", "MMU"}) {
      exp::ExperimentSpec spec = scenario.experimentSpec(
          exp::PaperScenario::kRate15k, workload::ArrivalPattern::Spiky);
      spec.sim.heuristic = heuristic;
      spec.sim.pruning = pruningConfig;
      const exp::ExperimentResult result =
          exp::runExperiment(scenario.hetero(), spec);
      row.push_back(exp::formatCi(result.robustnessCi));
    }
    table.addRow(std::move(row));
  }
  bench::emit(args, table);

  if (!args.csv) {
    std::cout << "\nPaper shape: task dropping raises batch-mode robustness "
                 "(up to ~19 points), with the\nreactive Toggle at least "
                 "matching always-dropping; MSD/MMU gain the most.\n";
  }
  return 0;
}
