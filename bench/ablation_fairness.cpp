// Ablation: the Fairness module (§IV-D).  Sweeps the fairness factor c and
// reports both robustness and the *spread* of per-type drop rates — the
// quantity fairness is supposed to compress.  c = 0 disables the module.

#include <algorithm>
#include <iostream>

#include "bench_util.h"
#include "core/simulation.h"
#include "exp/experiment.h"

namespace {

using namespace hcs;

/// Max-minus-min per-type on-time completion rate over one experiment's
/// trials (lower = fairer).
struct FairnessProbe {
  stats::RunningStats robustness;
  stats::RunningStats spread;
};

FairnessProbe probe(const exp::PaperScenario& scenario, double factor,
                    std::size_t trials) {
  FairnessProbe out;
  for (std::size_t trial = 0; trial < trials; ++trial) {
    const workload::Workload wl = workload::Workload::generate(
        *scenario.pet(),
        scenario.arrivalSpec(exp::PaperScenario::kRate25k,
                             workload::ArrivalPattern::Spiky),
        {}, 2019 + trial);
    core::SimulationConfig config;
    config.heuristic = "MM";
    config.pruning.fairnessFactor = factor;
    config.warmupMargin = scenario.warmupMargin(exp::PaperScenario::kRate25k);
    const core::TrialResult result =
        core::Simulation(scenario.hetero(), wl, config).run();
    out.robustness.add(result.robustnessPercent);

    double lo = 101.0, hi = -1.0;
    for (const auto& type : result.metrics.perType()) {
      if (type.total() == 0) continue;
      const double rate = 100.0 * static_cast<double>(type.completedOnTime) /
                          static_cast<double>(type.total());
      lo = std::min(lo, rate);
      hi = std::max(hi, rate);
    }
    if (hi >= lo) out.spread.add(hi - lo);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
  const exp::PaperScenario scenario(args.scenario);
  bench::printHeader(
      args, "Ablation: fairness factor",
      "MM + full pruning at 25k-equivalent spiky load.  Spread = max-min "
      "per-type\non-time completion rate (lower = fairer).  c = 0 disables "
      "the Fairness module;\nthe paper default is c = 0.05.");

  exp::Table table({"fairness c", "robustness %", "per-type spread (pp)"});
  for (double c : {0.0, 0.025, 0.05, 0.1, 0.2, 0.4}) {
    const FairnessProbe result = probe(scenario, c, args.scenario.trials);
    table.addRow({exp::formatValue(c, 3),
                  exp::formatCi(stats::meanConfidenceInterval(
                      result.robustness)),
                  exp::formatCi(stats::meanConfidenceInterval(result.spread))});
  }
  bench::emit(args, table);

  if (!args.csv) {
    std::cout
        << "\nFinding: with Eq. 4 deadlines (slack proportional to each "
           "type's own mean), the\nchance-based policy is already nearly "
           "type-neutral, so the Fairness module's score\nrarely leaves "
           "zero and c has little effect — the bias §IV-D guards against "
           "shows up\nonly when deadlines are type-blind.  The paper never "
           "evaluates fairness\nquantitatively; this ablation documents "
           "why.\n";
  }
  return 0;
}
