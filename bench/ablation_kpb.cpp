// Ablation: KPB's K parameter (§III-B).  K -> 100% degenerates to MCT,
// K -> 1/M degenerates to MET; the sweet spot balances affinity against
// load awareness.  Run with and without dropping to show pruning shifts
// the optimum.

#include <iostream>

#include "bench_util.h"
#include "exp/experiment.h"

int main(int argc, char** argv) {
  using namespace hcs;
  const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
  const exp::PaperScenario scenario(args.scenario);
  bench::printHeader(
      args, "Ablation: KPB's K",
      "KPB at 15k-equivalent spiky load; K is the fraction of machines "
      "(by affinity)\nconsidered for completion-time mapping.");

  exp::Table table({"K", "baseline", "reactive dropping"});
  for (double k : {0.125, 0.25, 0.375, 0.5, 0.75, 1.0}) {
    exp::ExperimentSpec spec = scenario.experimentSpec(
        exp::PaperScenario::kRate15k, workload::ArrivalPattern::Spiky);
    spec.sim.heuristic = "KPB";
    spec.sim.heuristicOptions.kpbPercent = k;
    spec.sim.pruning = pruning::PruningConfig::disabled();
    const exp::ExperimentResult base =
        exp::runExperiment(scenario.hetero(), spec);
    spec.sim.pruning = pruning::PruningConfig{};
    spec.sim.pruning.deferEnabled = false;  // immediate mode: dropping only
    const exp::ExperimentResult dropped =
        exp::runExperiment(scenario.hetero(), spec);
    table.addRow({exp::formatValue(k * 100.0, 1) + "%",
                  exp::formatCi(base.robustnessCi),
                  exp::formatCi(dropped.robustnessCi)});
  }
  bench::emit(args, table);

  if (!args.csv) {
    std::cout << "\nExpected: small K behaves like MET (affinity-blinkered), "
                 "K=100% like MCT;\ndropping lifts the whole curve.\n";
  }
  return 0;
}
