// Ablation: KPB's K parameter — thin wrapper over
// scenarios/ablation_kpb.json.

#include <iostream>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace hcs;
  const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
  bench::runScenarioFigure(
      args, "ablation_kpb.json", "Ablation: KPB's K",
      "KPB at 15k-equivalent spiky load; K is the fraction of machines "
      "(by affinity)\nconsidered for completion-time mapping.");
  if (!args.csv) {
    std::cout << "\nExpected: small K behaves like MET (affinity-blinkered), "
                 "K=100% like MCT;\ndropping lifts the whole curve.\n";
  }
  return 0;
}
