#pragma once
// Shared plumbing for the figure-reproduction binaries.
//
// Every figure bench accepts:
//   --full         paper scale (15k/20k/25k tasks, 30 trials)
//   --scale X      workload scale factor (default 0.1)
//   --trials N     trials per configuration (default 8)
//   --jobs N       trial-execution threads (1 = serial, 0 = all cores)
//   --csv          machine-readable output instead of the ASCII table
// Environment variables HCS_FULL / HCS_SCALE / HCS_TRIALS / HCS_JOBS act as
// defaults.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "exp/report.h"
#include "exp/scenario.h"
#include "exp/sweep.h"

namespace hcs::bench {

/// Minimal machine-readable artifact writer for the BENCH_*.json files that
/// track perf across PRs (flat object, insertion order preserved).
class JsonWriter {
 public:
  JsonWriter& field(const char* name, const char* value) {
    char buf[256];
    std::snprintf(buf, sizeof buf, "\"%s\"", value);
    fields_.emplace_back(name, buf);
    return *this;
  }
  JsonWriter& field(const char* name, double value) {
    char buf[64];
    // %g keeps small configuration values (scale factors, sub-ms timings)
    // from collapsing to 0.000.
    std::snprintf(buf, sizeof buf, "%.6g", value);
    fields_.emplace_back(name, buf);
    return *this;
  }
  JsonWriter& field(const char* name, std::uint64_t value) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%llu",
                  static_cast<unsigned long long>(value));
    fields_.emplace_back(name, buf);
    return *this;
  }

  /// Writes `{ ... }` to `path`; returns false (with a stderr note) on
  /// failure.
  bool write(const char* path) const {
    FILE* out = std::fopen(path, "w");
    if (out == nullptr) {
      std::fprintf(stderr, "bench: could not write %s\n", path);
      return false;
    }
    std::fprintf(out, "{\n");
    for (std::size_t i = 0; i < fields_.size(); ++i) {
      std::fprintf(out, "  \"%s\": %s%s\n", fields_[i].first.c_str(),
                   fields_[i].second.c_str(),
                   i + 1 < fields_.size() ? "," : "");
    }
    std::fprintf(out, "}\n");
    std::fclose(out);
    std::printf("wrote %s\n", path);
    return true;
  }

 private:
  std::vector<std::pair<std::string, std::string>> fields_;
};

struct BenchArgs {
  exp::PaperScenario::Options scenario;
  bool csv = false;

  static BenchArgs parse(int argc, char** argv) {
    BenchArgs args;
    args.scenario = exp::PaperScenario::optionsFromEnv();
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--full") {
        args.scenario.scale = 1.0;
        args.scenario.trials = 30;
      } else if (arg == "--csv") {
        args.csv = true;
      } else if (arg == "--scale" && i + 1 < argc) {
        args.scenario.scale = std::strtod(argv[++i], nullptr);
      } else if (arg == "--trials" && i + 1 < argc) {
        args.scenario.trials = std::strtoul(argv[++i], nullptr, 10);
      } else if (arg == "--jobs" && i + 1 < argc) {
        args.scenario.jobs = std::strtoul(argv[++i], nullptr, 10);
      } else if (arg == "--help" || arg == "-h") {
        std::printf(
            "usage: %s [--full] [--scale X] [--trials N] [--jobs N] [--csv]\n",
            argv[0]);
        std::exit(0);
      } else {
        std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
        std::exit(2);
      }
    }
    return args;
  }
};

inline void printHeader(const BenchArgs& args, const char* figure,
                        const char* caption) {
  if (args.csv) return;
  std::printf("=== %s ===\n%s\n", figure, caption);
  std::printf(
      "scale=%.3g (tasks x%.3g, span self-calibrated), trials=%zu, "
      "PET seed=%llu\n\n",
      args.scenario.scale, args.scenario.scale, args.scenario.trials,
      static_cast<unsigned long long>(args.scenario.petSeed));
}

inline void emit(const BenchArgs& args, const exp::Table& table) {
  if (args.csv) {
    table.printCsv(std::cout);
  } else {
    table.print(std::cout);
  }
  std::cout << std::flush;
}

/// Loads `fileName` from the committed scenarios/ library and overrides its
/// run block with the bench flags (--full/--scale/--trials/--jobs and the
/// HCS_* env defaults), so the wrappers stay drivable exactly like the old
/// hardcoded benches.
inline exp::ScenarioDoc loadScenario(const BenchArgs& args,
                                     const char* fileName) {
  const std::string path = std::string(HCS_SCENARIO_DIR) + "/" + fileName;
  exp::ScenarioDoc doc = exp::loadScenarioDoc(path);
  exp::setJsonPath(doc.base, "run.scale",
                   util::JsonValue(args.scenario.scale));
  exp::setJsonPath(doc.base, "run.trials",
                   util::JsonValue(args.scenario.trials));
  exp::setJsonPath(doc.base, "run.jobs", util::JsonValue(args.scenario.jobs));
  return doc;
}

/// The whole body of a scenario-driven figure bench: load, sweep, pivot.
/// Returns the outcomes for benches that post-process (derived columns).
inline std::vector<exp::SweepOutcome> runScenarioFigure(
    const BenchArgs& args, const char* fileName, const char* figure,
    const char* caption) {
  const exp::ScenarioDoc doc = loadScenario(args, fileName);
  // The header's provenance line must show the seed actually used — the
  // scenario file's pet.seed, not the BenchArgs default.
  BenchArgs shown = args;
  shown.scenario.petSeed = doc.baseSpec().petSeed;
  printHeader(shown, figure, caption);
  const std::vector<exp::SweepOutcome> outcomes = exp::runSweep(doc);
  exp::printSweepTables(std::cout, doc, outcomes, args.csv);
  std::cout << std::flush;
  return outcomes;
}

}  // namespace hcs::bench
