#pragma once
// Shared plumbing for the figure-reproduction binaries.
//
// Every figure bench accepts:
//   --full         paper scale (15k/20k/25k tasks, 30 trials)
//   --scale X      workload scale factor (default 0.1)
//   --trials N     trials per configuration (default 8)
//   --jobs N       trial-execution threads (1 = serial, 0 = all cores)
//   --csv          machine-readable output instead of the ASCII table
// Environment variables HCS_FULL / HCS_SCALE / HCS_TRIALS / HCS_JOBS act as
// defaults.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "exp/report.h"
#include "exp/scenario.h"

namespace hcs::bench {

struct BenchArgs {
  exp::PaperScenario::Options scenario;
  bool csv = false;

  static BenchArgs parse(int argc, char** argv) {
    BenchArgs args;
    args.scenario = exp::PaperScenario::optionsFromEnv();
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--full") {
        args.scenario.scale = 1.0;
        args.scenario.trials = 30;
      } else if (arg == "--csv") {
        args.csv = true;
      } else if (arg == "--scale" && i + 1 < argc) {
        args.scenario.scale = std::strtod(argv[++i], nullptr);
      } else if (arg == "--trials" && i + 1 < argc) {
        args.scenario.trials = std::strtoul(argv[++i], nullptr, 10);
      } else if (arg == "--jobs" && i + 1 < argc) {
        args.scenario.jobs = std::strtoul(argv[++i], nullptr, 10);
      } else if (arg == "--help" || arg == "-h") {
        std::printf(
            "usage: %s [--full] [--scale X] [--trials N] [--jobs N] [--csv]\n",
            argv[0]);
        std::exit(0);
      } else {
        std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
        std::exit(2);
      }
    }
    return args;
  }
};

inline void printHeader(const BenchArgs& args, const char* figure,
                        const char* caption) {
  if (args.csv) return;
  std::printf("=== %s ===\n%s\n", figure, caption);
  std::printf(
      "scale=%.3g (tasks x%.3g, span self-calibrated), trials=%zu, "
      "PET seed=%llu\n\n",
      args.scenario.scale, args.scenario.scale, args.scenario.trials,
      static_cast<unsigned long long>(args.scenario.petSeed));
}

inline void emit(const BenchArgs& args, const exp::Table& table) {
  if (args.csv) {
    table.printCsv(std::cout);
  } else {
    table.print(std::cout);
  }
  std::cout << std::flush;
}

}  // namespace hcs::bench
