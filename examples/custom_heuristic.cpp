// Plugging the pruning mechanism into YOUR OWN mapping heuristic.
//
// The paper's central design claim is that the pruner attaches to an
// existing resource-allocation system "without requiring any change in the
// existing mapping heuristic" (§IV).  This example demonstrates that: it
// implements a Least-Laxity-First batch heuristic the library does not
// ship, runs it through the same Scheduler, and shows the pruning gain —
// no pruning-aware code anywhere in the heuristic.

#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "core/scheduler.h"
#include "core/simulation.h"
#include "heuristics/heuristic.h"
#include "workload/pet_matrix.h"
#include "workload/workload.h"

namespace {

using namespace hcs;

/// Least-Laxity-First: map the task with the smallest laxity
/// (deadline - now - best expected execution) first, each to its
/// minimum-expected-completion machine.  Knows nothing about pruning.
class LeastLaxityFirst final : public heuristics::BatchHeuristic {
 public:
  std::string_view name() const override { return "LLF"; }

  std::vector<heuristics::Assignment> map(
      const heuristics::MappingContext& ctx,
      std::span<const sim::TaskId> batch) override {
    std::vector<sim::TaskId> order(batch.begin(), batch.end());
    std::sort(order.begin(), order.end(), [&](sim::TaskId a, sim::TaskId b) {
      return laxity(ctx, a) < laxity(ctx, b);
    });

    std::vector<double> ready(static_cast<std::size_t>(ctx.numMachines()));
    std::vector<std::size_t> slots(
        static_cast<std::size_t>(ctx.numMachines()));
    for (sim::MachineId j = 0; j < ctx.numMachines(); ++j) {
      ready[static_cast<std::size_t>(j)] = ctx.expectedReady(j);
      slots[static_cast<std::size_t>(j)] = ctx.freeSlots(j);
    }
    std::vector<heuristics::Assignment> out;
    for (sim::TaskId task : order) {
      const sim::TaskType type = ctx.pool()[task].type;
      sim::MachineId best = sim::kInvalidMachine;
      double bestEct = 0;
      for (sim::MachineId j = 0; j < ctx.numMachines(); ++j) {
        if (slots[static_cast<std::size_t>(j)] == 0) continue;
        const double ect = ready[static_cast<std::size_t>(j)] +
                           ctx.model().expectedExec(type, j);
        if (best == sim::kInvalidMachine || ect < bestEct) {
          best = j;
          bestEct = ect;
        }
      }
      if (best == sim::kInvalidMachine) break;
      out.push_back({task, best});
      slots[static_cast<std::size_t>(best)] -= 1;
      ready[static_cast<std::size_t>(best)] +=
          ctx.model().expectedExec(type, best);
    }
    return out;
  }

 private:
  double laxity(const heuristics::MappingContext& ctx, sim::TaskId id) const {
    const sim::Task& t = ctx.pool()[id];
    double bestExec = ctx.model().expectedExec(t.type, 0);
    for (sim::MachineId j = 1; j < ctx.numMachines(); ++j) {
      bestExec = std::min(bestExec, ctx.model().expectedExec(t.type, j));
    }
    return t.deadline - ctx.now() - bestExec;
  }
};

}  // namespace

int main() {
  const auto pet = std::make_shared<const workload::PetMatrix>(
      workload::PetMatrix::specLike(21));
  const auto cluster = workload::BoundExecutionModel::heterogeneous(pet);

  workload::ArrivalSpec arrival;
  arrival.span = 900.0;
  arrival.totalTasks = 1800;
  arrival.numTaskTypes = pet->numTaskTypes();
  const workload::Workload wl =
      workload::Workload::generate(*pet, arrival, {}, 13);

  std::printf("custom Least-Laxity-First heuristic, %zu tasks, %d machines\n\n",
              wl.size(), cluster.numMachines());
  for (const bool prune : {false, true}) {
    core::SimulationConfig config;
    config.customBatchHeuristic = [] {
      return std::make_unique<LeastLaxityFirst>();
    };
    config.pruning =
        prune ? pruning::PruningConfig{} : pruning::PruningConfig::disabled();
    config.warmupMargin = 50;
    const core::TrialResult result =
        core::Simulation(cluster, wl, config).run();
    std::printf("LLF %-14s robustness %5.1f%%  (deferrals %zu, proactive "
                "drops %zu)\n",
                prune ? "+ pruning:" : "bare:", result.robustnessPercent,
                result.metrics.deferrals(),
                result.metrics.droppedProactive());
  }
  std::printf("\nThe heuristic contains zero pruning-aware code — the "
              "mechanism wraps it.\n");
  return 0;
}
