// Live video transcoding on a heterogeneous serverless backend — the
// paper's motivating scenario (§I, §II).
//
// Each task is one Group-Of-Pictures (GOP) to transcode before its
// presentation time (a hard deadline: a late GOP is useless and must be
// dropped).  Four transcoding operations with different machine affinities
// model the qualitative task heterogeneity:
//
//     operation           fast on              slow on
//     spatial rescale     GPU nodes            small-memory CPUs
//     bitrate change      any                  -
//     codec conversion    big-memory CPUs      GPU nodes
//     frame-rate change   GPU nodes            CPUs
//
// A viewer surge (spiky arrivals) oversubscribes the cluster; the example
// shows per-operation QoS with and without the pruning mechanism and how
// the Fairness module keeps slow operations from being starved.

#include <cstdio>
#include <memory>
#include <vector>

#include "core/simulation.h"
#include "workload/pet_matrix.h"
#include "workload/workload.h"

namespace {

const char* kOperation[] = {"rescale", "bitrate", "codec", "framerate"};

/// 4 operations x 6 machines (2 GPU, 2 big-CPU, 2 small-CPU): mean seconds
/// per GOP.  Inconsistent heterogeneity: no machine is best for everything.
hcs::workload::PetMatrix transcodingPet() {
  const std::vector<std::vector<double>> means = {
      // GPU0  GPU1  bigC0 bigC1 smC0  smC1
      {2.0, 2.2, 6.0, 6.5, 12.0, 13.0},   // spatial rescale
      {3.0, 3.2, 3.0, 3.1, 4.0, 4.2},     // bitrate change
      {14.0, 15.0, 5.0, 5.2, 9.0, 9.5},   // codec conversion
      {2.5, 2.7, 8.0, 8.4, 11.0, 12.0},   // frame-rate change
  };
  // Shape 4: wide execution-time uncertainty, as GOP sizes vary a lot.
  return hcs::workload::PetMatrix::fromMeans(means, /*shape=*/4.0,
                                             /*seed=*/11);
}

void perTypeReport(const hcs::core::TrialResult& result) {
  for (std::size_t k = 0; k < 4; ++k) {
    const auto& t = result.metrics.perType()[k];
    if (t.total() == 0) continue;
    std::printf("    %-10s on-time %4.1f%%  (of %zu GOPs)\n", kOperation[k],
                100.0 * static_cast<double>(t.completedOnTime) /
                    static_cast<double>(t.total()),
                t.total());
  }
}

}  // namespace

int main() {
  using namespace hcs;

  const auto pet =
      std::make_shared<const workload::PetMatrix>(transcodingPet());
  const auto cluster = workload::BoundExecutionModel::heterogeneous(pet);

  // A 20-minute (1200 s) live event with 6 viewer surges; each surge
  // triples the GOP arrival rate.  ~2600 GOPs total: ~1.6x the cluster's
  // capacity — the stream cannot be fully served.
  workload::ArrivalSpec arrival;
  arrival.pattern = workload::ArrivalPattern::Spiky;
  arrival.span = 1200.0;
  arrival.totalTasks = 2600;
  arrival.numTaskTypes = pet->numTaskTypes();
  arrival.numSpikes = 6;

  // Presentation deadlines: Eq. 4 with tight slack — live streaming leaves
  // little room between encode and display.
  workload::DeadlineSpec deadline;
  deadline.betaLo = 0.8;
  deadline.betaHi = 1.6;

  const workload::Workload wl =
      workload::Workload::generate(*pet, arrival, deadline, /*seed=*/3);
  std::printf("live stream: %zu GOPs over %.0f s on %d machines "
              "(2 GPU, 2 big-CPU, 2 small-CPU)\n\n",
              wl.size(), arrival.span, cluster.numMachines());

  core::SimulationConfig config;
  config.heuristic = "MM";
  config.warmupMargin = 50;

  config.pruning = pruning::PruningConfig::disabled();
  const core::TrialResult bare = core::Simulation(cluster, wl, config).run();
  std::printf("MM without pruning: %.1f%% GOPs on time\n",
              bare.robustnessPercent);
  perTypeReport(bare);

  config.pruning = pruning::PruningConfig{};
  const core::TrialResult prunedRun =
      core::Simulation(cluster, wl, config).run();
  std::printf("\nMM + pruning mechanism: %.1f%% GOPs on time "
              "(%zu deferred, %zu proactively dropped)\n",
              prunedRun.robustnessPercent, prunedRun.metrics.deferrals(),
              prunedRun.metrics.droppedProactive());
  perTypeReport(prunedRun);

  // Fairness off: long operations (codec conversion) get starved.
  config.pruning.fairnessFactor = 0.0;
  const core::TrialResult unfair = core::Simulation(cluster, wl, config).run();
  std::printf("\nsame but fairness factor c=0 (no Fairness module):\n");
  perTypeReport(unfair);

  std::printf("\npruning gain: %+.1f percentage points of on-time GOPs\n",
              prunedRun.robustnessPercent - bare.robustnessPercent);
  return 0;
}
