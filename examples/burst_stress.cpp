// Bursty inhomogeneous-Poisson arrival stress.
//
// The paper's spiky pattern rescales Gamma gaps through a piecewise-
// constant rate profile; here we stress the other classic construction
// (cf. Hohmann's simulation methods for inhomogeneous Poisson point
// processes): Lewis-Shedler THINNING against a smooth intensity
//
//   lambda(t) = base + sum_k peak * exp(-((t - c_k) / width)^2 / 2)
//
// whose Gaussian burst trains pile tens to hundreds of tasks into the
// batch queue within a few time units — the oversubscribed regime the
// incremental mapping engine exists for.  The example reports the QoS
// story (MM bare vs MM + pruning), the peak batch-queue depth reached,
// and the wall-clock of the incremental vs the reference mapping engine
// on the identical workload.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <vector>

#include "core/simulation.h"
#include "exp/scenario.h"
#include "prob/rng.h"
#include "sim/trace.h"
#include "workload/deadline.h"
#include "workload/workload.h"

namespace {

using namespace hcs;

struct BurstIntensity {
  double base;       ///< lull arrivals per time unit
  double peak;       ///< extra rate at a burst center
  double width;      ///< burst standard deviation (time units)
  double period;     ///< burst spacing
  double span;

  double operator()(double t) const {
    double rate = base;
    for (double c = period / 2; c < span; c += period) {
      const double z = (t - c) / width;
      rate += peak * std::exp(-0.5 * z * z);
    }
    return rate;
  }
  double max() const { return base + peak; }
};

/// Lewis-Shedler thinning: homogeneous candidates at the intensity's
/// ceiling, each kept with probability lambda(t)/max.
workload::Workload thinningWorkload(const workload::PetMatrix& pet,
                                    const BurstIntensity& intensity,
                                    int numTaskTypes, std::uint64_t seed) {
  prob::Rng rng(seed);
  std::vector<workload::TaskSpec> specs;
  const workload::DeadlineSpec deadlineSpec;
  double t = 0.0;
  while (true) {
    t += -std::log(1.0 - rng.uniform01()) / intensity.max();
    if (t >= intensity.span) break;
    if (rng.uniform01() * intensity.max() > intensity(t)) continue;
    workload::TaskSpec spec;
    spec.type = static_cast<sim::TaskType>(rng.uniformInt(0, numTaskTypes - 1));
    spec.arrival = t;
    spec.deadline =
        workload::assignDeadline(pet, spec.type, spec.arrival, deadlineSpec,
                                 rng);
    specs.push_back(spec);
  }
  return workload::Workload(std::move(specs), numTaskTypes);
}

struct RunResult {
  core::TrialResult trial;
  std::size_t peakBatchQueue = 0;
  double wallMs = 0.0;
};

RunResult run(const workload::BoundExecutionModel& model,
              const workload::Workload& wl, bool prune, bool incremental) {
  core::SimulationConfig config;
  config.heuristic = "MM";
  config.pruning =
      prune ? pruning::PruningConfig{} : pruning::PruningConfig::disabled();
  config.incrementalMappingEnabled = incremental;
  config.warmupMargin = 0;

  // Batch-queue depth from the lifecycle trace: a task occupies the
  // arrival queue from Arrival until Dispatched, or until a drop that
  // happened *in* the batch queue (drops out of a machine queue carry the
  // machine id).
  RunResult r;
  std::size_t depth = 0;
  config.traceSink = [&](const sim::TraceEvent& e) {
    switch (e.kind) {
      case sim::TraceEventKind::Arrival:
        r.peakBatchQueue = std::max(r.peakBatchQueue, ++depth);
        break;
      case sim::TraceEventKind::Dispatched:
        --depth;
        break;
      case sim::TraceEventKind::DroppedReactive:
      case sim::TraceEventKind::DroppedProactive:
        if (e.machine == sim::kInvalidMachine) --depth;
        break;
      default:
        break;
    }
  };

  const auto start = std::chrono::steady_clock::now();
  r.trial = core::Simulation(model, wl, config).run();
  const auto end = std::chrono::steady_clock::now();
  r.wallMs = std::chrono::duration<double, std::milli>(end - start).count();
  return r;
}

}  // namespace

int main() {
  const exp::PaperScenario scenario;  // 12-type x 8-machine PET matrix
  const workload::BoundExecutionModel& cluster = scenario.hetero();

  // Calibrate the intensity to the cluster: lulls near capacity, bursts
  // ~8x over it.
  double meanExec = 0.0;
  for (int k = 0; k < cluster.numTaskTypes(); ++k) {
    for (int j = 0; j < cluster.numMachines(); ++j) {
      meanExec += cluster.expectedExec(k, j);
    }
  }
  meanExec /= static_cast<double>(cluster.numTaskTypes() *
                                  cluster.numMachines());
  const double capacity = cluster.numMachines() / meanExec;  // tasks/unit

  BurstIntensity intensity;
  intensity.span = 400.0;
  intensity.period = 80.0;
  intensity.base = 0.9 * capacity;
  intensity.peak = 7.0 * capacity;
  intensity.width = 4.0;

  const workload::Workload wl =
      thinningWorkload(*scenario.pet(), intensity, cluster.numTaskTypes(),
                       7919);

  std::printf(
      "burst stress: thinning-sampled inhomogeneous Poisson arrivals\n"
      "  %zu tasks over %.0f time units, %d machines\n"
      "  lull rate %.1f/unit (%.2fx capacity), burst peak %.1f/unit "
      "(%.2fx)\n\n",
      wl.size(), intensity.span, cluster.numMachines(), intensity.base,
      intensity.base / capacity, intensity.base + intensity.peak,
      (intensity.base + intensity.peak) / capacity);

  const RunResult bare = run(cluster, wl, /*prune=*/false, true);
  const RunResult pruned = run(cluster, wl, /*prune=*/true, true);
  const RunResult reference = run(cluster, wl, /*prune=*/false, false);

  auto report = [](const char* label, const RunResult& r) {
    std::printf(
        "%-12s robustness %5.1f%%  late %5zu  dropped %5zu  deferred %5zu  "
        "peak batch queue %4zu  mapping events %6zu  %7.1f ms\n",
        label, r.trial.robustnessPercent, r.trial.metrics.completedLate(),
        r.trial.metrics.droppedReactive() +
            r.trial.metrics.droppedProactive(),
        r.trial.metrics.deferrals(), r.peakBatchQueue,
        r.trial.mappingEvents, r.wallMs);
  };
  report("MM bare", bare);
  report("MM + prune", pruned);

  std::printf(
      "\nmapping engines on the bare run (identical reports required):\n");
  report("incremental", bare);
  report("reference", reference);
  if (bare.trial.robustnessPercent != reference.trial.robustnessPercent ||
      bare.trial.mappingEvents != reference.trial.mappingEvents ||
      bare.trial.makespan != reference.trial.makespan) {
    std::fprintf(stderr, "burst_stress: engine reports DIVERGED\n");
    return 1;
  }
  std::printf("engines agree; incremental %.2fx faster on this workload\n",
              bare.wallMs > 0 ? reference.wallMs / bare.wallMs : 0.0);
  return 0;
}
