// Quickstart: the smallest end-to-end use of the library.
//
//   1. Synthesize a PET matrix (12 task types x 8 machine types).
//   2. Generate an oversubscribed workload with hard deadlines.
//   3. Run the MM mapping heuristic bare, then with the probabilistic
//      pruning mechanism plugged in, and compare robustness.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>
#include <memory>

#include "core/simulation.h"
#include "workload/pet_matrix.h"
#include "workload/workload.h"

int main() {
  using namespace hcs;

  // 1. Execution-time distributions for every (task type, machine type).
  const auto pet = std::make_shared<const workload::PetMatrix>(
      workload::PetMatrix::specLike(/*seed=*/42));
  const auto cluster = workload::BoundExecutionModel::heterogeneous(pet);

  // 2. A spiky, oversubscribed workload: 2000 tasks over 1000 time units.
  workload::ArrivalSpec arrival;
  arrival.pattern = workload::ArrivalPattern::Spiky;
  arrival.span = 1000.0;
  arrival.totalTasks = 2000;
  arrival.numTaskTypes = pet->numTaskTypes();
  const workload::Workload wl =
      workload::Workload::generate(*pet, arrival, workload::DeadlineSpec{},
                                   /*seed=*/7);
  std::printf("workload: %zu tasks, %d types, %d machines\n\n", wl.size(),
              pet->numTaskTypes(), cluster.numMachines());

  // 3a. Plain MM (MinCompletion-MinCompletion), no pruning.
  core::SimulationConfig config;
  config.heuristic = "MM";
  config.warmupMargin = 50;
  config.pruning = pruning::PruningConfig::disabled();
  const core::TrialResult bare =
      core::Simulation(cluster, wl, config).run();

  // 3b. Same heuristic with the pruning mechanism attached: 50% threshold,
  // reactive Toggle, deferring + dropping (all defaults).
  config.pruning = pruning::PruningConfig{};
  const core::TrialResult prunedRun =
      core::Simulation(cluster, wl, config).run();

  auto report = [](const char* label, const core::TrialResult& r) {
    std::printf("%-12s robustness %5.1f%%  (on-time %zu, late %zu, "
                "dropped reactive %zu, proactive %zu, deferrals %zu)\n",
                label, r.robustnessPercent, r.metrics.completedOnTime(),
                r.metrics.completedLate(), r.metrics.droppedReactive(),
                r.metrics.droppedProactive(), r.metrics.deferrals());
  };
  report("MM:", bare);
  report("MM + prune:", prunedRun);
  std::printf("\npruning gain: %+.1f percentage points\n",
              prunedRun.robustnessPercent - bare.robustnessPercent);
  return 0;
}
