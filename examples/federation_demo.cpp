// Federation demo: one oversubscribed arrival stream, sharded across a
// growing federation of clusters by each gateway routing policy.
//
//   1. Synthesize the paper's 12-type x 8-machine cluster.
//   2. Generate a 25k-equivalent spiky stream that oversubscribes ONE
//      cluster (~1.25x its capacity).
//   3. Route it through federations of 1, 2, and 4 mirrored clusters under
//      every routing policy, and show how robustness recovers — and how the
//      chance-aware gateway beats blind round-robin at 2 clusters.
//   4. Break one federated trial down per cluster (tasks routed, share of
//      on-time completions, mean utilization).
//
// Build & run:  ./build/example_federation_demo

#include <cstdio>
#include <vector>

#include "core/simulation.h"
#include "exp/scenario.h"
#include "fed/federation.h"
#include "workload/workload.h"

int main() {
  using namespace hcs;

  // 1-2. The paper's cluster at bench scale, and an oversubscribed stream.
  const exp::PaperScenario scenario;
  const workload::BoundExecutionModel& cluster = scenario.hetero();
  const workload::Workload wl = workload::Workload::generate(
      *scenario.pet(),
      scenario.arrivalSpec(exp::PaperScenario::kRate25k,
                           workload::ArrivalPattern::Spiky),
      {}, /*seed=*/7);
  std::printf("stream: %zu tasks over ~%.0f time units, %d machines per "
              "cluster\n\n",
              wl.size(), scenario.span(), cluster.numMachines());

  core::SimulationConfig config;
  config.heuristic = "MM";
  config.warmupMargin = 0;

  // 3. Robustness as the federation grows, per routing policy.
  const fed::RoutingPolicyKind policies[] = {
      fed::RoutingPolicyKind::RoundRobin,
      fed::RoutingPolicyKind::LeastQueueDepth,
      fed::RoutingPolicyKind::LeastExpectedCompletion,
      fed::RoutingPolicyKind::MaxChance,
  };
  std::printf("robustness (%% on time) by federation size and routing "
              "policy:\n");
  std::printf("  %-12s %10s %10s %10s\n", "routing", "1 cluster",
              "2 clusters", "4 clusters");
  for (const fed::RoutingPolicyKind kind : policies) {
    std::printf("  %-12s", std::string(toString(kind)).c_str());
    for (const std::size_t n : {1u, 2u, 4u}) {
      fed::FederationSpec spec;
      spec.clusters = n;
      spec.routing = kind;
      const std::vector<const sim::ExecutionModel*> models(n, &cluster);
      const fed::FederatedTrialResult r =
          fed::FederatedSimulation(models, wl, config, spec).run();
      std::printf(" %9.1f%%", r.total.robustnessPercent);
    }
    std::printf("\n");
  }

  // 4. Per-cluster breakdown of one chance-aware federated trial.
  fed::FederationSpec spec;
  spec.clusters = 4;
  spec.routing = fed::RoutingPolicyKind::MaxChance;
  const std::vector<const sim::ExecutionModel*> models(4, &cluster);
  const fed::FederatedTrialResult r =
      fed::FederatedSimulation(models, wl, config, spec).run();
  std::printf("\nmax_chance federation of 4, per cluster:\n");
  for (std::size_t c = 0; c < r.clusters.size(); ++c) {
    const fed::ClusterOutcome& o = r.clusters[c];
    double util = 0.0;
    for (const double u : o.machineUtilization) util += u;
    if (!o.machineUtilization.empty()) {
      util /= static_cast<double>(o.machineUtilization.size());
    }
    std::printf("  cluster %zu: %5zu routed, %5zu on time, %6zu mapping "
                "events, mean utilization %.2f\n",
                c, o.tasksRouted, o.metrics.completedOnTime(),
                o.mappingEvents, util);
  }
  std::printf("  aggregate robustness: %.1f%% (makespan %.0f)\n",
              r.total.robustnessPercent, r.total.makespan);
  return 0;
}
