// Reproducible workload trials: generate, persist, reload, replay.
//
// The paper published its workload trials "for reproducing purposes"
// (§V-B).  This example shows the library's equivalent: a trial saved to a
// plain-text trace replays bit-for-bit, so experiments can be shared and
// re-run across machines and versions.

#include <cstdio>
#include <memory>

#include "core/simulation.h"
#include "workload/pet_matrix.h"
#include "workload/trace_io.h"
#include "workload/workload.h"

int main() {
  using namespace hcs;

  const auto pet = std::make_shared<const workload::PetMatrix>(
      workload::PetMatrix::specLike(2019));
  const auto cluster = workload::BoundExecutionModel::heterogeneous(pet);

  workload::ArrivalSpec arrival;
  arrival.span = 600.0;
  arrival.totalTasks = 1200;
  arrival.numTaskTypes = pet->numTaskTypes();
  const workload::Workload original =
      workload::Workload::generate(*pet, arrival, {}, /*seed=*/17);

  const std::string path = "/tmp/hcs_trial_017.trace";
  workload::saveWorkloadFile(original, path);
  std::printf("saved trial: %zu tasks -> %s\n", original.size(), path.c_str());

  const workload::Workload replayed = workload::loadWorkloadFile(path);
  std::printf("loaded trial: %zu tasks\n\n", replayed.size());

  core::SimulationConfig config;
  config.heuristic = "MSD";
  config.warmupMargin = 50;
  const core::TrialResult a = core::Simulation(cluster, original, config).run();
  const core::TrialResult b = core::Simulation(cluster, replayed, config).run();

  std::printf("robustness from generated trial: %.4f%%\n", a.robustnessPercent);
  std::printf("robustness from replayed trial:  %.4f%%\n", b.robustnessPercent);
  std::printf("identical: %s\n",
              a.robustnessPercent == b.robustnessPercent &&
                      a.metrics.completedOnTime() ==
                          b.metrics.completedOnTime()
                  ? "yes"
                  : "NO — replay broke!");
  return 0;
}
