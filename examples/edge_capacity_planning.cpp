// Capacity planning for an edge serverless site (§II motivates serverless
// on heterogeneous edge machines with budget constraints).
//
// Question a provider actually asks: "demand is about to double — do I buy
// more machines, or do I turn on probabilistic pruning?"  This example
// sweeps offered load on a fixed 8-machine edge site and prints the QoS
// (robustness) curve for MM bare vs MM + pruning, using the experiment
// framework's multi-trial confidence intervals.

#include <cstdio>
#include <iostream>

#include "exp/experiment.h"
#include "exp/report.h"
#include "exp/scenario.h"

int main() {
  using namespace hcs;

  exp::PaperScenario::Options options;
  options.scale = 0.1;  // keep the example snappy; intensity is unchanged
  options.trials = 6;
  const exp::PaperScenario site(options);

  std::printf("edge site: %d heterogeneous machines, workload span %.0f "
              "time units, %zu trials per point\n\n",
              site.hetero().numMachines(), site.span(),
              options.trials);

  exp::Table table({"offered load (tasks)", "oversubscription",
                    "MM robustness %", "MM+prune robustness %",
                    "gain (pp)"});

  // 10k-equivalent is under capacity; 30k-equivalent is 2.5x oversubscribed.
  for (std::size_t rate : {10000u, 15000u, 20000u, 25000u, 30000u}) {
    exp::ExperimentSpec spec =
        site.experimentSpec(rate, workload::ArrivalPattern::Spiky);
    spec.sim.heuristic = "MM";
    spec.sim.pruning = pruning::PruningConfig::disabled();
    const exp::ExperimentResult bare = exp::runExperiment(site.hetero(), spec);
    spec.sim.pruning = pruning::PruningConfig{};
    const exp::ExperimentResult prunedRun =
        exp::runExperiment(site.hetero(), spec);

    const double rho = 1.25 * static_cast<double>(rate) / 15000.0;
    table.addRow({std::to_string(site.scaledTasks(rate)),
                  exp::formatValue(rho, 2) + "x",
                  exp::formatCi(bare.robustnessCi),
                  exp::formatCi(prunedRun.robustnessCi),
                  exp::formatValue(prunedRun.robustnessCi.mean -
                                       bare.robustnessCi.mean,
                                   1)});
  }
  table.print(std::cout);

  std::printf(
      "\nReading the table: pruning buys the most QoS exactly where "
      "capacity planning is\nhardest — past the saturation point — without "
      "adding a single machine.\n");
  return 0;
}
