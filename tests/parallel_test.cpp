// Tests for the parallel experiment engine: the executor itself, and the
// determinism guarantee that any job count produces identical experiment
// results.

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "exp/experiment.h"
#include "exp/parallel.h"
#include "exp/scenario.h"

namespace {

using namespace hcs;

// --- Spawn-failure machinery -------------------------------------------------

std::thread spawnAlwaysFails(const std::function<void()>&) {
  throw std::runtime_error("spawn refused");
}

int g_spawnBudget = 0;
std::thread spawnWithBudget(const std::function<void()>& fn) {
  if (g_spawnBudget <= 0) throw std::runtime_error("spawn refused");
  --g_spawnBudget;
  return std::thread(fn);
}

/// Restores the real std::thread path no matter how the test exits.
struct SpawnHookGuard {
  explicit SpawnHookGuard(std::thread (*hook)(const std::function<void()>&)) {
    exp::ParallelExecutor::setSpawnHookForTesting(hook);
  }
  ~SpawnHookGuard() { exp::ParallelExecutor::setSpawnHookForTesting(nullptr); }
};

// --- ParallelExecutor --------------------------------------------------------

TEST(ParallelExecutorTest, RunsEveryIndexExactlyOnce) {
  for (std::size_t jobs : {std::size_t{1}, std::size_t{3}, std::size_t{16},
                           std::size_t{0}}) {
    std::vector<std::atomic<int>> counts(37);
    exp::ParallelExecutor(jobs).run(
        counts.size(), [&](std::size_t i) { ++counts[i]; });
    for (std::size_t i = 0; i < counts.size(); ++i) {
      EXPECT_EQ(counts[i].load(), 1) << "jobs=" << jobs << " index " << i;
    }
  }
}

TEST(ParallelExecutorTest, ZeroTasksIsANoOp) {
  exp::ParallelExecutor(4).run(0, [](std::size_t) { FAIL(); });
}

TEST(ParallelExecutorTest, ResolveJobs) {
  EXPECT_EQ(exp::resolveJobs(1), 1u);
  EXPECT_EQ(exp::resolveJobs(7), 7u);
  EXPECT_GE(exp::resolveJobs(0), 1u);  // auto: at least one
}

TEST(ParallelExecutorTest, RethrowsLowestIndexException) {
  for (std::size_t jobs : {std::size_t{1}, std::size_t{4}}) {
    try {
      exp::ParallelExecutor(jobs).run(8, [](std::size_t i) {
        if (i == 2 || i == 5) {
          throw std::runtime_error("boom " + std::to_string(i));
        }
      });
      FAIL() << "expected an exception (jobs=" << jobs << ")";
    } catch (const std::runtime_error& e) {
      // jobs=1 runs in order so index 2 throws first; with more jobs the
      // lowest-index exception wins deterministically.
      EXPECT_STREQ(e.what(), "boom 2") << "jobs=" << jobs;
    }
  }
}

// --- Degraded path: worker threads fail to spawn -----------------------------

TEST(ParallelExecutorTest, DegradesToCallingThreadWhenNoWorkerSpawns) {
  const SpawnHookGuard guard(&spawnAlwaysFails);
  std::vector<std::atomic<int>> counts(23);
  exp::ParallelExecutor(8).run(counts.size(),
                               [&](std::size_t i) { ++counts[i]; });
  for (std::size_t i = 0; i < counts.size(); ++i) {
    EXPECT_EQ(counts[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelExecutorTest, DegradesWithPartialWorkerComplement) {
  const SpawnHookGuard guard(&spawnWithBudget);
  g_spawnBudget = 1;  // one worker spawns, the rest hit the resource limit
  std::vector<std::atomic<int>> counts(41);
  exp::ParallelExecutor(8).run(counts.size(),
                               [&](std::size_t i) { ++counts[i]; });
  for (std::size_t i = 0; i < counts.size(); ++i) {
    EXPECT_EQ(counts[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelExecutorTest, DegradedRunStillRethrowsLowestIndexException) {
  const SpawnHookGuard guard(&spawnAlwaysFails);
  try {
    exp::ParallelExecutor(4).run(8, [](std::size_t i) {
      if (i == 2 || i == 5) {
        throw std::runtime_error("boom " + std::to_string(i));
      }
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom 2");
  }
}

TEST(ParallelExperimentTest, SpawnFailureKeepsResultsIdenticalToSerial) {
  exp::PaperScenario::Options options;
  options.scale = 0.02;
  options.trials = 5;
  const exp::PaperScenario scenario(options);

  exp::ExperimentSpec spec = scenario.experimentSpec(
      exp::PaperScenario::kRate20k, workload::ArrivalPattern::Spiky);
  spec.sim.heuristic = "MM";

  spec.jobs = 1;
  const exp::ExperimentResult serial =
      exp::runExperiment(scenario.hetero(), spec);

  const SpawnHookGuard guard(&spawnAlwaysFails);
  spec.jobs = 4;  // requests 3 workers; all spawns fail, caller drains
  const exp::ExperimentResult degraded =
      exp::runExperiment(scenario.hetero(), spec);

  ASSERT_EQ(serial.perTrialRobustness.size(),
            degraded.perTrialRobustness.size());
  for (std::size_t i = 0; i < serial.perTrialRobustness.size(); ++i) {
    EXPECT_EQ(serial.perTrialRobustness[i], degraded.perTrialRobustness[i]);
  }
  EXPECT_EQ(serial.robustnessCi.mean, degraded.robustnessCi.mean);
  EXPECT_EQ(serial.robustnessCi.halfWidth, degraded.robustnessCi.halfWidth);
  EXPECT_EQ(serial.meanUtilization.mean(), degraded.meanUtilization.mean());
  EXPECT_EQ(serial.machineSeconds.mean(), degraded.machineSeconds.mean());
  EXPECT_EQ(serial.utilizationPct.mean(), degraded.utilizationPct.mean());
}

// --- Experiment determinism --------------------------------------------------

TEST(ParallelExperimentTest, JobCountDoesNotChangeResults) {
  exp::PaperScenario::Options options;
  options.scale = 0.02;
  options.trials = 5;
  const exp::PaperScenario scenario(options);

  exp::ExperimentSpec spec = scenario.experimentSpec(
      exp::PaperScenario::kRate20k, workload::ArrivalPattern::Spiky);
  spec.sim.heuristic = "MM";

  spec.jobs = 1;
  const exp::ExperimentResult serial =
      exp::runExperiment(scenario.hetero(), spec);
  spec.jobs = 4;
  const exp::ExperimentResult parallel =
      exp::runExperiment(scenario.hetero(), spec);

  ASSERT_EQ(serial.perTrialRobustness.size(),
            parallel.perTrialRobustness.size());
  for (std::size_t i = 0; i < serial.perTrialRobustness.size(); ++i) {
    EXPECT_EQ(serial.perTrialRobustness[i], parallel.perTrialRobustness[i]);
  }
  // Aggregates fold in trial order, so they are bit-identical too.
  EXPECT_EQ(serial.robustnessCi.mean, parallel.robustnessCi.mean);
  EXPECT_EQ(serial.robustnessCi.halfWidth, parallel.robustnessCi.halfWidth);
  EXPECT_EQ(serial.meanUtilization.mean(), parallel.meanUtilization.mean());
  EXPECT_EQ(serial.deferralsPerTask.mean(), parallel.deferralsPerTask.mean());
}

TEST(ParallelExperimentTest, TrialRunnerMatchesExperimentTrials) {
  exp::PaperScenario::Options options;
  options.scale = 0.02;
  options.trials = 3;
  const exp::PaperScenario scenario(options);

  exp::ExperimentSpec spec = scenario.experimentSpec(
      exp::PaperScenario::kRate20k, workload::ArrivalPattern::Spiky);
  spec.sim.heuristic = "MSD";

  const exp::ExperimentResult result =
      exp::runExperiment(scenario.hetero(), spec);
  const exp::TrialRunner runner(scenario.hetero(), spec);
  ASSERT_EQ(runner.trials(), 3u);
  for (std::size_t t = 0; t < spec.trials; ++t) {
    EXPECT_EQ(runner.runTrial(t).robustnessPercent,
              result.perTrialRobustness[t]);
  }
}

}  // namespace
