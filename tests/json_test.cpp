// util/json: parsing, line-numbered errors, canonical writing, round-trip.

#include "util/json.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace {

using hcs::util::JsonError;
using hcs::util::JsonValue;
using hcs::util::formatJsonNumber;
using hcs::util::parseJson;
using hcs::util::writeJson;

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(parseJson("null").isNull());
  EXPECT_EQ(parseJson("true").asBool(), true);
  EXPECT_EQ(parseJson("false").asBool(), false);
  EXPECT_DOUBLE_EQ(parseJson("42").asNumber(), 42.0);
  EXPECT_DOUBLE_EQ(parseJson("-0.5e2").asNumber(), -50.0);
  EXPECT_EQ(parseJson("\"hi\\n\\u0041\"").asString(), "hi\nA");
}

TEST(Json, ParsesNested) {
  const JsonValue v = parseJson(
      R"({"a": [1, 2, {"b": "x"}], "c": {"d": null}})");
  ASSERT_TRUE(v.isObject());
  const JsonValue* a = v.find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->array().size(), 3u);
  EXPECT_EQ(a->array()[2].find("b")->asString(), "x");
  EXPECT_TRUE(v.find("c")->find("d")->isNull());
  EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(Json, ObjectKeepsInsertionOrder) {
  const JsonValue v = parseJson(R"({"z": 1, "a": 2, "m": 3})");
  const auto& members = v.object();
  ASSERT_EQ(members.size(), 3u);
  EXPECT_EQ(members[0].first, "z");
  EXPECT_EQ(members[1].first, "a");
  EXPECT_EQ(members[2].first, "m");
}

TEST(Json, TracksLineNumbers) {
  const JsonValue v = parseJson("{\n  \"a\": 1,\n  \"b\": [\n    true\n  ]\n}");
  EXPECT_EQ(v.line(), 1);
  EXPECT_EQ(v.find("a")->line(), 2);
  EXPECT_EQ(v.find("b")->line(), 3);
  EXPECT_EQ(v.find("b")->array()[0].line(), 4);
}

TEST(Json, ErrorsCarryLineNumbers) {
  try {
    parseJson("{\n  \"a\": 1,\n  \"b\": oops\n}");
    FAIL() << "expected JsonError";
  } catch (const JsonError& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos)
        << e.what();
  }
  try {
    parseJson("{\"a\": 1", "spec.json");
    FAIL() << "expected JsonError";
  } catch (const JsonError& e) {
    EXPECT_NE(std::string(e.what()).find("spec.json:"), std::string::npos)
        << e.what();
  }
}

TEST(Json, RejectsMalformedDocuments) {
  EXPECT_THROW(parseJson(""), JsonError);
  EXPECT_THROW(parseJson("{} trailing"), JsonError);
  EXPECT_THROW(parseJson("{\"a\": 1,}"), JsonError);
  EXPECT_THROW(parseJson("[1, 2,]"), JsonError);
  EXPECT_THROW(parseJson("\"unterminated"), JsonError);
  EXPECT_THROW(parseJson("1."), JsonError);
  EXPECT_THROW(parseJson("nul"), JsonError);
  EXPECT_THROW(parseJson(R"({"a": 1, "a": 2})"), JsonError);  // duplicate key
}

TEST(Json, DeepNestingIsAnErrorNotAStackOverflow) {
  const std::string deep(100000, '[');
  try {
    parseJson(deep);
    FAIL() << "expected JsonError";
  } catch (const JsonError& e) {
    EXPECT_NE(std::string(e.what()).find("nesting"), std::string::npos);
  }
}

TEST(Json, TypeMismatchMentionsLine) {
  const JsonValue v = parseJson("{\n  \"a\": 1\n}");
  try {
    (void)v.find("a")->asString();
    FAIL() << "expected JsonError";
  } catch (const JsonError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("expected string"),
              std::string::npos);
  }
}

TEST(Json, NumberFormatRoundTrips) {
  const double cases[] = {0.0,
                          1.0,
                          -1.0,
                          0.1,
                          1.0 / 3.0,
                          6.02214076e23,
                          -2.2250738585072014e-308,
                          90.89398062077541,
                          1e15,
                          9007199254740991.0,
                          std::nextafter(1.0, 2.0)};
  for (const double x : cases) {
    const std::string text = formatJsonNumber(x);
    EXPECT_EQ(parseJson(text).asNumber(), x) << text;
  }
  // Integral doubles print without fraction or exponent.
  EXPECT_EQ(formatJsonNumber(42.0), "42");
  EXPECT_EQ(formatJsonNumber(-7.0), "-7");
  EXPECT_THROW(formatJsonNumber(std::numeric_limits<double>::infinity()),
               JsonError);
}

TEST(Json, WriteParseIsIdentity) {
  const char* doc = R"({
    "name": "x",
    "values": [1, 0.25, -3e-7, true, null, "s\"t"],
    "nested": {"a": {}, "b": [], "c": [[1], {"d": 2}]}
  })";
  const JsonValue v = parseJson(doc);
  const JsonValue reparsed = parseJson(writeJson(v));
  EXPECT_TRUE(v == reparsed);
  // And the canonical form is a fixed point.
  EXPECT_EQ(writeJson(v), writeJson(reparsed));
}

TEST(Json, SetAndAppend) {
  JsonValue obj = JsonValue::makeObject();
  obj.set("a", 1);
  obj.set("b", "x");
  obj.set("a", 2);  // overwrite keeps position
  ASSERT_EQ(obj.object().size(), 2u);
  EXPECT_EQ(obj.object()[0].first, "a");
  EXPECT_DOUBLE_EQ(obj.find("a")->asNumber(), 2.0);
  JsonValue arr = JsonValue::makeArray();
  arr.append(1);
  arr.append(false);
  EXPECT_EQ(arr.array().size(), 2u);
  EXPECT_THROW(arr.set("k", 1), JsonError);
  EXPECT_THROW(obj.append(1), JsonError);
}

}  // namespace
