// Randomized model-check of sim::BatchQueue — the PR-3 indexed arrival
// queue — against a naive vector reference.  Random insert / remove /
// defer / begin-event / clear sequences (with journal-replay consumers kept
// in sync the way TwoPhaseBatchHeuristic does it) must agree with the
// obviously-correct model at every step, across tens of thousands of ops
// and multiple seeds.  This pins down the tombstone/compaction machinery,
// the O(1) generation-stamped deferral expiry, and the mutation journal —
// previously exercised only indirectly through mapping_engine_test.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

#include "sim/batch_queue.h"

namespace {

using hcs::sim::BatchQueue;
using hcs::sim::TaskId;

/// The obviously-correct reference: a plain vector in arrival order.
class NaiveQueue {
 public:
  void push(TaskId task) { entries_.push_back({task, nextSeq_++, 0}); }

  void remove(TaskId task) {
    entries_.erase(std::find_if(
        entries_.begin(), entries_.end(),
        [task](const Entry& e) { return e.task == task; }));
  }

  void beginEvent() { ++eventGen_; }

  void markDeferred(TaskId task) {
    std::find_if(entries_.begin(), entries_.end(), [task](const Entry& e) {
      return e.task == task;
    })->deferGen = eventGen_;
  }

  bool contains(TaskId task) const {
    return std::any_of(entries_.begin(), entries_.end(),
                       [task](const Entry& e) { return e.task == task; });
  }

  bool deferredThisEvent(TaskId task) const {
    const auto it = std::find_if(
        entries_.begin(), entries_.end(),
        [task](const Entry& e) { return e.task == task; });
    return it != entries_.end() && it->deferGen == eventGen_;
  }

  std::uint64_t arrivalSeq(TaskId task) const {
    return std::find_if(entries_.begin(), entries_.end(),
                        [task](const Entry& e) { return e.task == task; })
        ->seq;
  }

  std::size_t size() const { return entries_.size(); }

  std::vector<TaskId> live() const {
    std::vector<TaskId> out;
    for (const Entry& e : entries_) out.push_back(e.task);
    return out;
  }

  std::vector<TaskId> candidates() const {
    std::vector<TaskId> out;
    for (const Entry& e : entries_) {
      if (e.deferGen != eventGen_) out.push_back(e.task);
    }
    return out;
  }

  void clear() { entries_.clear(); }

 private:
  struct Entry {
    TaskId task;
    std::uint64_t seq;
    std::uint64_t deferGen;
  };
  std::vector<Entry> entries_;
  std::uint64_t nextSeq_ = 0;
  std::uint64_t eventGen_ = 1;
};

/// A journal consumer in the style of TwoPhaseBatchHeuristic's per-type
/// buckets: replays only the delta since its last position and must always
/// reconstruct the live task set.
class JournalConsumer {
 public:
  void sync(const BatchQueue& queue) {
    if (resetGen_ != queue.resetGeneration()) {
      // History was discarded: rebuild from scratch.
      live_.clear();
      pos_ = 0;
      resetGen_ = queue.resetGeneration();
    }
    for (; pos_ < queue.journalSize(); ++pos_) {
      const BatchQueue::JournalEntry& e = queue.journalAt(pos_);
      if (e.op == BatchQueue::JournalEntry::Op::Push) {
        live_.push_back({e.task, e.seq});
      } else {
        live_.erase(std::find_if(
            live_.begin(), live_.end(),
            [&](const auto& p) { return p.second == e.seq; }));
      }
    }
  }

  std::vector<TaskId> liveTasks() const {
    std::vector<TaskId> out;
    for (const auto& [task, seq] : live_) out.push_back(task);
    return out;
  }

 private:
  std::vector<std::pair<TaskId, std::uint64_t>> live_;
  std::size_t pos_ = 0;
  std::uint64_t resetGen_ = 0;
};

std::vector<TaskId> liveOf(const BatchQueue& queue) {
  std::vector<TaskId> out;
  queue.forEachLive(
      [&](TaskId task, std::uint64_t) { out.push_back(task); });
  return out;
}

void checkAgreement(const BatchQueue& queue, const NaiveQueue& model,
                    JournalConsumer& consumer, const std::vector<TaskId>& all,
                    std::mt19937_64& rng) {
  ASSERT_EQ(queue.size(), model.size());
  ASSERT_EQ(queue.empty(), model.size() == 0);
  ASSERT_EQ(liveOf(queue), model.live());
  std::vector<TaskId> candidates;
  queue.liveCandidates(candidates);
  ASSERT_EQ(candidates, model.candidates());
  consumer.sync(queue);
  ASSERT_EQ(consumer.liveTasks(), model.live());

  // Point queries on a random sample of every task ever created.
  for (int probe = 0; probe < 8 && !all.empty(); ++probe) {
    const TaskId task = all[rng() % all.size()];
    ASSERT_EQ(queue.contains(task), model.contains(task)) << task;
    ASSERT_EQ(queue.deferredThisEvent(task), model.deferredThisEvent(task))
        << task;
    if (model.contains(task)) {
      ASSERT_EQ(queue.arrivalSeq(task), model.arrivalSeq(task)) << task;
    }
  }
}

class BatchQueueModelCheck : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(BatchQueueModelCheck, RandomOpSequencesMatchNaiveReference) {
  std::mt19937_64 rng(GetParam());
  BatchQueue queue;
  NaiveQueue model;
  JournalConsumer consumer;
  std::vector<TaskId> all;   // every id ever pushed (probe pool)
  std::vector<TaskId> live;  // ids currently in the queue
  TaskId nextId = 0;

  constexpr int kOps = 10000;
  for (int op = 0; op < kOps; ++op) {
    const std::uint64_t roll = rng() % 100;
    if (roll < 40 || live.empty()) {
      const TaskId id = nextId++;
      queue.push(id);
      model.push(id);
      all.push_back(id);
      live.push_back(id);
    } else if (roll < 65) {
      const std::size_t pick = rng() % live.size();
      const TaskId id = live[pick];
      queue.remove(id);
      model.remove(id);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
    } else if (roll < 85) {
      const TaskId id = live[rng() % live.size()];
      queue.markDeferred(id);
      model.markDeferred(id);
    } else if (roll < 99) {
      queue.beginEvent();
      model.beginEvent();
    } else {
      queue.clear();
      model.clear();
      live.clear();
    }
    // Full-state agreement every 64 ops (keeps the test O(ops * probes)),
    // cheap point agreement every op.
    if (op % 64 == 0) {
      checkAgreement(queue, model, consumer, all, rng);
      if (::testing::Test::HasFatalFailure()) return;
    } else {
      ASSERT_EQ(queue.size(), model.size()) << "op " << op;
    }
  }
  checkAgreement(queue, model, consumer, all, rng);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BatchQueueModelCheck,
                         ::testing::Values(1u, 2u, 3u, 0xfeedfaceu));

TEST(BatchQueueTest, DeferralMarksSurviveCompaction) {
  // Force the tombstone compaction (live < half, >= 16 entries) while a
  // deferral mark is outstanding in the current event: the mark must
  // survive the entry moves.
  BatchQueue queue;
  for (TaskId id = 0; id < 32; ++id) queue.push(id);
  queue.beginEvent();
  queue.markDeferred(30);
  for (TaskId id = 0; id < 24; ++id) queue.remove(id);  // triggers compact
  EXPECT_EQ(queue.size(), 8u);
  EXPECT_TRUE(queue.deferredThisEvent(30));
  EXPECT_FALSE(queue.deferredThisEvent(31));
  std::vector<TaskId> candidates;
  queue.liveCandidates(candidates);
  EXPECT_EQ(candidates, (std::vector<TaskId>{24, 25, 26, 27, 28, 29, 31}));
  queue.beginEvent();
  EXPECT_FALSE(queue.deferredThisEvent(30));  // expired in O(1)
}

TEST(BatchQueueTest, JournalCarriesSeqsAcrossRemovalAndReuse) {
  BatchQueue queue;
  queue.push(5);
  queue.push(9);
  queue.remove(5);
  queue.push(5);  // same task id, new arrival seq
  ASSERT_EQ(queue.journalSize(), 4u);
  EXPECT_EQ(queue.journalAt(0).op, BatchQueue::JournalEntry::Op::Push);
  EXPECT_EQ(queue.journalAt(0).seq, 0u);
  EXPECT_EQ(queue.journalAt(2).op, BatchQueue::JournalEntry::Op::Remove);
  EXPECT_EQ(queue.journalAt(2).seq, 0u);
  EXPECT_EQ(queue.journalAt(3).seq, 2u);
  EXPECT_EQ(queue.arrivalSeq(5), 2u);
  // Iteration order is arrival order of the *current* entries.
  std::vector<TaskId> liveNow;
  queue.forEachLive(
      [&](TaskId task, std::uint64_t) { liveNow.push_back(task); });
  EXPECT_EQ(liveNow, (std::vector<TaskId>{9, 5}));
}

}  // namespace
