// The fault-injection layer's contracts:
//  - ORACLE: a fault-ENABLED config with zero failure rate and no scripted
//    events is byte-identical — trace-for-trace, metric-for-metric — to the
//    plain engine, across heuristic × pruning configurations, BOTH mapping
//    engines, and through the N=1 federation.
//  - Under ACTIVE churn the incremental mapping engine stays trace-identical
//    to the --no-incremental-map reference engine (machine-set edits are
//    handled, not just task edits).
//  - Model check: every injected machine failure produces a coherent
//    accounting trail — each TaskFailed is resolved by exactly one Retried
//    or Abandoned, the Metrics counters equal the trace counts, and every
//    task still terminates exactly once.
//  - Scripted events pin machines down/up at fixed times; initially-offline
//    machines execute nothing until recovered.
//  - Gateway admission control bounds cluster depth, spills refused work to
//    siblings, and rejections are terminal outcomes summing with the rest.
//  - The scenario schema's `faults` and `admission` blocks round-trip and
//    reject malformed input with line numbers.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "core/simulation.h"
#include "exp/scenario.h"
#include "exp/scenario_spec.h"
#include "fed/admission.h"
#include "fed/federation.h"
#include "sim/trace.h"
#include "workload/workload.h"

namespace {

using namespace hcs;

double testScale() {
  if (const char* env = std::getenv("HCS_SCALE")) {
    const double s = std::strtod(env, nullptr);
    if (s > 0.0) return std::min(s, 0.03);
  }
  return 0.03;
}

/// Full lifecycle trace + result digest of one trial.
struct TrialDigest {
  std::vector<sim::TraceEvent> trace;
  double robustness = 0.0;
  std::size_t mappingEvents = 0;
  double makespan = 0.0;
  std::size_t onTime = 0, late = 0, reactive = 0, proactive = 0, defers = 0;
  std::size_t abandoned = 0, retries = 0, failures = 0;
  std::vector<double> utilization;

  bool operator==(const TrialDigest&) const = default;
};

TrialDigest digestOf(const core::TrialResult& r,
                     std::vector<sim::TraceEvent> trace) {
  TrialDigest d;
  d.trace = std::move(trace);
  d.robustness = r.robustnessPercent;
  d.mappingEvents = r.mappingEvents;
  d.makespan = r.makespan;
  d.onTime = r.metrics.completedOnTime();
  d.late = r.metrics.completedLate();
  d.reactive = r.metrics.droppedReactive();
  d.proactive = r.metrics.droppedProactive();
  d.defers = r.metrics.deferrals();
  d.abandoned = r.metrics.abandoned();
  d.retries = r.metrics.retries();
  d.failures = r.metrics.machineFailures();
  d.utilization = r.machineUtilization;
  return d;
}

TrialDigest runDirect(const core::SimulationConfig& base,
                      const sim::ExecutionModel& model,
                      const workload::Workload& wl) {
  core::SimulationConfig config = base;
  sim::TraceLog log;
  config.traceSink = log.sink();
  const core::TrialResult r = core::Simulation(model, wl, config).run();
  return digestOf(r, log.events());
}

workload::Workload makeWorkload(const exp::PaperScenario& scenario,
                                std::size_t rate, std::uint64_t seed) {
  return workload::Workload::generate(
      *scenario.pet(),
      scenario.arrivalSpec(rate, workload::ArrivalPattern::Spiky), {}, seed);
}

core::SimulationConfig zeroFaultConfig(const core::SimulationConfig& base) {
  core::SimulationConfig config = base;
  config.faults.enabled = true;  // armed, but nothing to inject
  config.faults.mtbf = 0.0;
  config.faults.mttr = 0.0;
  return config;
}

core::SimulationConfig churnConfig(const core::SimulationConfig& base,
                                   double mtbf = 40.0, double mttr = 6.0) {
  core::SimulationConfig config = base;
  config.faults.enabled = true;
  config.faults.mtbf = mtbf;
  config.faults.mttr = mttr;
  return config;
}

// --- The oracle: zero-fault armed config == plain engine --------------------

class ZeroFaultOracle : public ::testing::TestWithParam<const char*> {};

TEST_P(ZeroFaultOracle, ArmedButSilentConfigIsTraceIdentical) {
  exp::PaperScenario::Options options;
  options.scale = testScale();
  const exp::PaperScenario scenario(options);
  const workload::Workload wl =
      makeWorkload(scenario, exp::PaperScenario::kRate25k, 7);

  for (const bool prune : {true, false}) {
    for (const bool incremental : {true, false}) {
      core::SimulationConfig config;
      config.heuristic = GetParam();
      config.pruning = prune ? pruning::PruningConfig{}
                             : pruning::PruningConfig::disabled();
      config.incrementalMappingEnabled = incremental;
      config.warmupMargin = 0;
      const TrialDigest plain = runDirect(config, scenario.hetero(), wl);
      const TrialDigest armed =
          runDirect(zeroFaultConfig(config), scenario.hetero(), wl);
      EXPECT_EQ(plain, armed)
          << GetParam() << " diverged with faults armed (prune=" << prune
          << ", incremental=" << incremental << ")";
    }
  }
}

// Batch two-phase, immediate, and chance-aware heuristics — the same roster
// the federation oracle covers.
INSTANTIATE_TEST_SUITE_P(HeuristicsTimesPruning, ZeroFaultOracle,
                         ::testing::Values("MM", "MSD", "MMU", "MaxMin",
                                           "Sufferage", "MCT", "KPB",
                                           "MaxChance"));

TEST(ZeroFaultOracleTest, FederatedN1MatchesDirectEngine) {
  exp::PaperScenario::Options options;
  options.scale = testScale();
  const exp::PaperScenario scenario(options);
  const workload::Workload wl =
      makeWorkload(scenario, exp::PaperScenario::kRate25k, 11);

  core::SimulationConfig config;
  config.heuristic = "MM";
  config.warmupMargin = 0;
  const core::SimulationConfig armed = zeroFaultConfig(config);

  const TrialDigest direct = runDirect(armed, scenario.hetero(), wl);

  std::vector<sim::TraceEvent> trace;
  fed::FederationSpec spec;
  spec.traceSink = [&trace](std::size_t, const sim::TraceEvent& e) {
    trace.push_back(e);
  };
  const fed::FederatedTrialResult r =
      fed::FederatedSimulation({&scenario.hetero()}, wl, armed, spec).run();
  EXPECT_EQ(direct, digestOf(r.total, std::move(trace)));
}

// --- Incremental engine == reference engine under active churn --------------

TEST(ChurnEngineIdentityTest, IncrementalMatchesReferenceUnderChurn) {
  exp::PaperScenario::Options options;
  options.scale = testScale();
  const exp::PaperScenario scenario(options);
  const workload::Workload wl =
      makeWorkload(scenario, exp::PaperScenario::kRate25k, 19);

  for (const char* heuristic : {"MM", "MSD", "MaxChance"}) {
    core::SimulationConfig config;
    config.heuristic = heuristic;
    config.warmupMargin = 0;
    const core::SimulationConfig churned = churnConfig(config);

    core::SimulationConfig incremental = churned;
    incremental.incrementalMappingEnabled = true;
    core::SimulationConfig reference = churned;
    reference.incrementalMappingEnabled = false;

    const TrialDigest a = runDirect(incremental, scenario.hetero(), wl);
    const TrialDigest b = runDirect(reference, scenario.hetero(), wl);
    EXPECT_GT(a.failures, 0u) << "churn config injected nothing";
    EXPECT_EQ(a, b) << heuristic
                    << ": mapping engines diverged under machine churn";
  }
}

TEST(ChurnEngineIdentityTest, ChurnRunsAreDeterministic) {
  exp::PaperScenario::Options options;
  options.scale = testScale();
  const exp::PaperScenario scenario(options);
  const workload::Workload wl =
      makeWorkload(scenario, exp::PaperScenario::kRate20k, 23);

  core::SimulationConfig config;
  config.heuristic = "MM";
  config.warmupMargin = 0;
  const core::SimulationConfig churned = churnConfig(config);
  const TrialDigest first = runDirect(churned, scenario.hetero(), wl);
  const TrialDigest second = runDirect(churned, scenario.hetero(), wl);
  EXPECT_EQ(first, second);
}

// Regression: with a warm-up margin the trimmed tasks never enter totals(),
// so a termination check built on totals() spins forever once churn keeps
// the event queue populated.  The engines must key off the unconditional
// terminal count instead.
TEST(ChurnEngineIdentityTest, TerminatesWithWarmupMargin) {
  exp::PaperScenario::Options options;
  options.scale = testScale();
  const exp::PaperScenario scenario(options);
  const workload::Workload wl =
      makeWorkload(scenario, exp::PaperScenario::kRate25k, 11);

  core::SimulationConfig config;
  config.heuristic = "MM";
  config.warmupMargin = scenario.warmupMargin(exp::PaperScenario::kRate25k);
  ASSERT_GT(config.warmupMargin, 0);
  const core::SimulationConfig churned = churnConfig(config);
  const core::TrialResult r =
      core::Simulation(scenario.hetero(), wl, churned).run();
  EXPECT_GT(r.metrics.machineFailures(), 0u) << "churn config injected nothing";
  EXPECT_EQ(r.metrics.terminalCount(), wl.size());
  EXPECT_EQ(r.metrics.totals().total(), r.metrics.countedTasks());
  EXPECT_LT(r.metrics.countedTasks(), wl.size());
}

// --- Model check: every failure leaves a coherent accounting trail ----------

TEST(ChurnModelCheckTest, EveryFailureResolvesToRetryOrAbandon) {
  exp::PaperScenario::Options options;
  options.scale = testScale();
  const exp::PaperScenario scenario(options);

  // Several seeds × churn intensities: a randomized sweep over fault
  // timelines, each checked against the invariants.
  for (const std::uint64_t seed : {3u, 29u, 71u}) {
    for (const double mtbf : {25.0, 60.0}) {
      const workload::Workload wl =
          makeWorkload(scenario, exp::PaperScenario::kRate20k, seed);
      core::SimulationConfig config;
      config.heuristic = "MM";
      config.warmupMargin = 0;
      config.faultSeed = seed * 977 + 1;
      const core::SimulationConfig churned =
          churnConfig(config, mtbf, /*mttr=*/5.0);

      sim::TraceLog log;
      core::SimulationConfig traced = churned;
      traced.traceSink = log.sink();
      const core::TrialResult r =
          core::Simulation(scenario.hetero(), wl, traced).run();

      std::size_t machineFailed = 0, machineRecovered = 0;
      std::size_t retried = 0, abandonedEvents = 0;
      std::map<sim::TaskId, std::size_t> taskFailed, taskResolved;
      std::map<sim::TaskId, std::size_t> terminals;
      for (const sim::TraceEvent& e : log.events()) {
        switch (e.kind) {
          case sim::TraceEventKind::MachineFailed:
            ++machineFailed;
            break;
          case sim::TraceEventKind::MachineRecovered:
            ++machineRecovered;
            break;
          case sim::TraceEventKind::TaskFailed:
            ++taskFailed[e.task];
            break;
          case sim::TraceEventKind::Retried:
            ++retried;
            ++taskResolved[e.task];
            break;
          case sim::TraceEventKind::Abandoned:
            ++abandonedEvents;
            ++taskResolved[e.task];
            ++terminals[e.task];
            break;
          case sim::TraceEventKind::Completed:
          case sim::TraceEventKind::DroppedReactive:
          case sim::TraceEventKind::DroppedProactive:
            ++terminals[e.task];
            break;
          default:
            break;
        }
      }

      ASSERT_GT(machineFailed, 0u) << "churn config injected nothing";
      // Metrics counters equal the trace counts.
      EXPECT_EQ(r.metrics.machineFailures(), machineFailed);
      EXPECT_EQ(r.metrics.retries(), retried);
      EXPECT_EQ(r.metrics.abandoned(), abandonedEvents);
      // A machine only recovers after a failure (repairs never outnumber
      // failures).
      EXPECT_LE(machineRecovered, machineFailed);
      // Each TaskFailed is resolved by exactly one Retried or Abandoned.
      for (const auto& [task, failed] : taskFailed) {
        EXPECT_EQ(taskResolved[task], failed)
            << "task " << task << " has unresolved failures";
      }
      for (const auto& [task, resolved] : taskResolved) {
        EXPECT_EQ(taskFailed.count(task), 1u)
            << "task " << task << " retried/abandoned without a failure";
      }
      // Every task terminates exactly once, and the terminal classes sum up.
      EXPECT_EQ(r.metrics.totals().total(), wl.size());
      for (const auto& [task, count] : terminals) {
        EXPECT_EQ(count, 1u) << "task " << task << " terminated twice";
      }
      // failedThenMet only counts tasks that failed at least once.
      EXPECT_LE(r.metrics.failedThenMet(), r.metrics.retries());
    }
  }
}

// --- Scripted events and initially-offline machines -------------------------

TEST(ScriptedFaultsTest, ScriptedFailAndRecoverPinTheMachine) {
  exp::PaperScenario::Options options;
  options.scale = testScale();
  const exp::PaperScenario scenario(options);
  const workload::Workload wl =
      makeWorkload(scenario, exp::PaperScenario::kRate20k, 31);

  core::SimulationConfig config;
  config.heuristic = "MM";
  config.warmupMargin = 0;
  config.faults.enabled = true;  // scripted only — no stochastic process
  config.faults.events.push_back({10.0, 2, /*fail=*/true});
  config.faults.events.push_back({50.0, 2, /*fail=*/false});

  sim::TraceLog log;
  config.traceSink = log.sink();
  const core::TrialResult r =
      core::Simulation(scenario.hetero(), wl, config).run();

  const auto failures = log.ofKind(sim::TraceEventKind::MachineFailed);
  const auto recoveries = log.ofKind(sim::TraceEventKind::MachineRecovered);
  ASSERT_EQ(failures.size(), 1u);
  ASSERT_EQ(recoveries.size(), 1u);
  EXPECT_DOUBLE_EQ(failures[0].time, 10.0);
  EXPECT_EQ(failures[0].machine, 2);
  EXPECT_DOUBLE_EQ(recoveries[0].time, 50.0);
  EXPECT_EQ(recoveries[0].machine, 2);
  EXPECT_EQ(r.metrics.machineFailures(), 1u);

  // While pinned down, machine 2 starts nothing.
  for (const sim::TraceEvent& e : log.ofKind(sim::TraceEventKind::Started)) {
    if (e.machine == 2) {
      EXPECT_TRUE(e.time < 10.0 || e.time >= 50.0)
          << "task started on a failed machine at t=" << e.time;
    }
  }
  EXPECT_EQ(r.metrics.totals().total(), wl.size());
}

TEST(ScriptedFaultsTest, InitiallyOfflineMachineIsDeadCapacity) {
  exp::PaperScenario::Options options;
  options.scale = testScale();
  const exp::PaperScenario scenario(options);
  const workload::Workload wl =
      makeWorkload(scenario, exp::PaperScenario::kRate15k, 37);

  core::SimulationConfig config;
  config.heuristic = "MM";
  config.warmupMargin = 0;
  config.faults.enabled = true;
  config.faults.initiallyOffline = {0};

  sim::TraceLog log;
  config.traceSink = log.sink();
  const core::TrialResult r =
      core::Simulation(scenario.hetero(), wl, config).run();

  for (const sim::TraceEvent& e : log.ofKind(sim::TraceEventKind::Started)) {
    EXPECT_NE(e.machine, 0) << "initially-offline machine executed a task";
  }
  // Never up, never failed: dead capacity is not a churn event.
  EXPECT_EQ(r.metrics.machineFailures(), 0u);
  EXPECT_EQ(r.metrics.totals().total(), wl.size());
}

// --- Gateway admission control ----------------------------------------------

fed::FederatedTrialResult runFederation(const core::SimulationConfig& config,
                                        const sim::ExecutionModel& model,
                                        const workload::Workload& wl,
                                        std::size_t clusters,
                                        fed::FederationSpec spec) {
  spec.clusters = clusters;
  std::vector<const sim::ExecutionModel*> models(clusters, &model);
  return fed::FederatedSimulation(models, wl, config, spec).run();
}

TEST(AdmissionTest, QueueBoundCapsClusterDepthAndRejectsOverflow) {
  exp::PaperScenario::Options options;
  options.scale = testScale();
  const exp::PaperScenario scenario(options);
  const workload::Workload wl =
      makeWorkload(scenario, exp::PaperScenario::kRate25k, 41);

  core::SimulationConfig config;
  config.heuristic = "MM";
  config.warmupMargin = 0;

  fed::FederationSpec tight;
  tight.routing = fed::RoutingPolicyKind::LeastQueueDepth;
  tight.admission.policy = fed::AdmissionPolicyKind::QueueBound;
  tight.admission.queueBound = 8;
  tight.admission.spillover = false;
  const fed::FederatedTrialResult bounded =
      runFederation(config, scenario.hetero(), wl, 2, tight);
  EXPECT_GT(bounded.total.metrics.rejected(), 0u)
      << "an oversubscribed stream against a tight bound must reject";
  EXPECT_EQ(bounded.total.metrics.totals().total(), wl.size());
  EXPECT_EQ(bounded.total.metrics.spillovers(), 0u) << "spillover disabled";

  // Spillover recovers work a single cluster refused: same bound, siblings
  // allowed — strictly fewer rejections.
  fed::FederationSpec spill = tight;
  spill.admission.spillover = true;
  const fed::FederatedTrialResult spilled =
      runFederation(config, scenario.hetero(), wl, 2, spill);
  EXPECT_LE(spilled.total.metrics.rejected(),
            bounded.total.metrics.rejected());
  EXPECT_EQ(spilled.total.metrics.totals().total(), wl.size());
}

TEST(AdmissionTest, AcceptAllNeverRejects) {
  exp::PaperScenario::Options options;
  options.scale = testScale();
  const exp::PaperScenario scenario(options);
  const workload::Workload wl =
      makeWorkload(scenario, exp::PaperScenario::kRate25k, 43);

  core::SimulationConfig config;
  config.heuristic = "MM";
  config.warmupMargin = 0;
  const fed::FederatedTrialResult r =
      runFederation(config, scenario.hetero(), wl, 2, fed::FederationSpec{});
  EXPECT_EQ(r.total.metrics.rejected(), 0u);
  EXPECT_EQ(r.total.metrics.spillovers(), 0u);
  EXPECT_EQ(r.total.metrics.totals().total(), wl.size());
}

TEST(AdmissionTest, ChanceThresholdShedsHopelessWorkUnderChurn) {
  exp::PaperScenario::Options options;
  options.scale = testScale();
  const exp::PaperScenario scenario(options);
  const workload::Workload wl =
      makeWorkload(scenario, exp::PaperScenario::kRate25k, 47);

  core::SimulationConfig config;
  config.heuristic = "MM";
  config.warmupMargin = 0;
  const core::SimulationConfig churned = churnConfig(config, 30.0, 8.0);

  fed::FederationSpec spec;
  spec.routing = fed::RoutingPolicyKind::MaxChance;
  spec.admission.policy = fed::AdmissionPolicyKind::ChanceThreshold;
  spec.admission.chanceThreshold = 0.25;
  const fed::FederatedTrialResult r =
      runFederation(churned, scenario.hetero(), wl, 2, spec);
  // Every task still terminates exactly once, whatever the gate decides.
  EXPECT_EQ(r.total.metrics.totals().total(), wl.size());
  EXPECT_GT(r.total.metrics.machineFailures(), 0u);
}

TEST(AdmissionTest, FederatedChurnRunsAreDeterministic) {
  exp::PaperScenario::Options options;
  options.scale = testScale();
  const exp::PaperScenario scenario(options);
  const workload::Workload wl =
      makeWorkload(scenario, exp::PaperScenario::kRate25k, 53);

  core::SimulationConfig config;
  config.heuristic = "MM";
  config.warmupMargin = 0;
  const core::SimulationConfig churned = churnConfig(config);

  fed::FederationSpec spec;
  spec.routing = fed::RoutingPolicyKind::LeastQueueDepth;
  spec.admission.policy = fed::AdmissionPolicyKind::QueueBound;
  spec.admission.queueBound = 16;
  auto digest = [&](const fed::FederatedTrialResult& r) {
    return std::tuple(r.total.robustnessPercent,
                      r.total.metrics.rejected(),
                      r.total.metrics.spillovers(),
                      r.total.metrics.retries(),
                      r.total.metrics.machineFailures());
  };
  const auto first =
      digest(runFederation(churned, scenario.hetero(), wl, 3, spec));
  const auto second =
      digest(runFederation(churned, scenario.hetero(), wl, 3, spec));
  EXPECT_EQ(first, second);
}

TEST(AdmissionTest, RejectsMalformedConfig) {
  fed::AdmissionConfig zeroBound;
  zeroBound.policy = fed::AdmissionPolicyKind::QueueBound;
  zeroBound.queueBound = 0;
  EXPECT_THROW(zeroBound.validate(), std::invalid_argument);

  fed::AdmissionConfig badChance;
  badChance.policy = fed::AdmissionPolicyKind::ChanceThreshold;
  badChance.chanceThreshold = 1.5;
  EXPECT_THROW(badChance.validate(), std::invalid_argument);

  EXPECT_THROW(fed::parseAdmissionPolicy("open_door"), std::invalid_argument);
  EXPECT_EQ(fed::parseAdmissionPolicy("queue_bound"),
            fed::AdmissionPolicyKind::QueueBound);
  EXPECT_EQ(fed::toString(fed::AdmissionPolicyKind::ChanceThreshold),
            "chance_threshold");
}

// --- Scenario schema --------------------------------------------------------

TEST(FaultsScenarioTest, BlocksParseAndRoundTrip) {
  const util::JsonValue json = util::parseJson(R"({
    "faults": {
      "enabled": true,
      "mtbf": 120.0,
      "mttr": 15.0,
      "max_attempts": 4,
      "backoff": { "base": 0.5, "factor": 3.0, "jitter": 0.2 },
      "events": [
        { "at": 10.0, "machine": 1, "kind": "fail" },
        { "at": 40.0, "machine": 1, "kind": "join" }
      ],
      "initially_offline": [3]
    },
    "federation": { "enabled": true, "clusters": 2 },
    "admission": {
      "policy": "queue_bound",
      "queue_bound": 12,
      "spillover": false
    }
  })");
  const exp::ScenarioSpec spec = exp::parseScenarioSpec(json);
  EXPECT_TRUE(spec.faults.enabled);
  EXPECT_DOUBLE_EQ(spec.faults.mtbf, 120.0);
  EXPECT_DOUBLE_EQ(spec.faults.mttr, 15.0);
  EXPECT_EQ(spec.faults.maxAttempts, 4);
  EXPECT_DOUBLE_EQ(spec.faults.backoffBase, 0.5);
  EXPECT_DOUBLE_EQ(spec.faults.backoffFactor, 3.0);
  EXPECT_DOUBLE_EQ(spec.faults.backoffJitter, 0.2);
  ASSERT_EQ(spec.faults.events.size(), 2u);
  EXPECT_TRUE(spec.faults.events[0].fail);
  EXPECT_FALSE(spec.faults.events[1].fail);
  EXPECT_EQ(spec.faults.initiallyOffline, (std::vector<int>{3}));
  EXPECT_EQ(spec.admission.policy, fed::AdmissionPolicyKind::QueueBound);
  EXPECT_EQ(spec.admission.queueBound, 12u);
  EXPECT_FALSE(spec.admission.spillover);

  // parse -> serialize -> parse is the identity.
  const exp::ScenarioSpec again =
      exp::parseScenarioSpec(exp::scenarioSpecToJson(spec));
  EXPECT_EQ(exp::scenarioSpecToJson(again), exp::scenarioSpecToJson(spec));
  EXPECT_EQ(again.faults.events.size(), spec.faults.events.size());
  EXPECT_EQ(again.admission.policy, spec.admission.policy);
}

TEST(FaultsScenarioTest, DefaultIsDisabledAndAbsentFromLegacyFiles) {
  const exp::ScenarioSpec spec =
      exp::parseScenarioSpec(util::parseJson("{}"));
  EXPECT_FALSE(spec.faults.enabled);
  EXPECT_FALSE(spec.faults.active());
  EXPECT_EQ(spec.admission.policy, fed::AdmissionPolicyKind::AcceptAll);
}

void expectRejected(const char* text, const char* needle) {
  try {
    (void)exp::parseScenarioSpec(util::parseJson(text));
    FAIL() << "expected rejection mentioning \"" << needle << "\"";
  } catch (const exp::ScenarioError& e) {
    EXPECT_NE(std::string(e.what()).find("line "), std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << e.what();
  }
}

TEST(FaultsScenarioTest, RejectsMalformedBlocksWithLineNumbers) {
  expectRejected(R"({"faults": {"mtbf": -1}})", "mtbf");
  expectRejected(R"({"faults": {"enabled": true, "mtbf": 10}})", "mttr");
  expectRejected(R"({"faults": {"max_attempts": 0}})", "max_attempts");
  expectRejected(R"({"faults": {"backoff": {"factor": 0.5}}})", "factor");
  expectRejected(R"({"faults": {"events": [{"at": 1}]}})", "machine");
  expectRejected(R"({"faults": {"events": [
                   {"at": 1, "machine": 0, "kind": "explode"}]}})", "kind");
  expectRejected(R"({"faults": {"surprise": 1}})", "unknown key");
  expectRejected(R"({"admission": {"policy": "open_door"}})", "policy");
  expectRejected(R"({"admission": {"queue_bound": 0}})", "queue_bound");
  expectRejected(R"({"admission": {"chance_threshold": 2}})",
                 "chance_threshold");
  // Admission control lives in the gateway: no federation, no gateway.
  expectRejected(R"({"admission": {"policy": "queue_bound"}})", "federation");
}

}  // namespace
