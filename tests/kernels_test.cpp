// Bit-exactness tests for the arena-backed PMF kernels (src/prob/kernels)
// and the prefix-sum CDF cache.
//
// The destination-passing kernels and the binary-search CDF paths promise
// BYTE-identical results to the original scalar algorithms.  This file
// retains straight-line naive reference implementations of those algorithms
// (the fully clamped O(n·m) convolution loop, erase-based trim+normalize,
// linear CDF scans) and drives thousands of randomized cases through both
// sides, comparing every bin with exact floating-point equality.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <numeric>
#include <thread>
#include <vector>

#include "prob/arena.h"
#include "prob/kernels.h"
#include "prob/pmf.h"
#include "prob/rng.h"

namespace {

using hcs::prob::DiscretePmf;
using hcs::prob::PmfArena;
using hcs::prob::Rng;

// --- Naive reference implementations (the seed's algorithms) -----------------

struct RawPmf {
  std::int64_t first = 0;
  std::vector<double> probs;
  double width = 1.0;
};

/// The seed's trimAndNormalize: find bounds, two erase() shifts, a separate
/// accumulate over the trimmed range, then an in-place divide.
RawPmf naiveTrimNormalize(std::int64_t first, std::vector<double> probs,
                          double width) {
  auto isPositive = [](double p) { return p > 0.0; };
  auto head = std::find_if(probs.begin(), probs.end(), isPositive);
  EXPECT_NE(head, probs.end());
  auto tail = std::find_if(probs.rbegin(), probs.rend(), isPositive).base();
  first += std::distance(probs.begin(), head);
  probs.erase(tail, probs.end());
  probs.erase(probs.begin(), head);
  const double total = std::accumulate(probs.begin(), probs.end(), 0.0);
  for (double& p : probs) p /= total;
  return RawPmf{first, std::move(probs), width};
}

/// The fully clamped convolution loop — every (i, j) pair visited in
/// lexicographic order, no zero-row skip, no branch-free fast path.
RawPmf naiveConvolveRaw(const RawPmf& a, const DiscretePmf& b,
                        std::size_t maxBins) {
  const std::size_t fullSize = a.probs.size() + b.size() - 1;
  const std::size_t outSize =
      std::min(fullSize, std::max<std::size_t>(maxBins, 1));
  std::vector<double> out(outSize, 0.0);
  for (std::size_t i = 0; i < a.probs.size(); ++i) {
    for (std::size_t j = 0; j < b.size(); ++j) {
      const std::size_t k = std::min(i + j, outSize - 1);
      out[k] += a.probs[i] * b.probs()[j];
    }
  }
  return naiveTrimNormalize(a.first + b.firstBin(), std::move(out), a.width);
}

RawPmf asRaw(const DiscretePmf& a) {
  return RawPmf{a.firstBin(),
                std::vector<double>(a.probs().begin(), a.probs().end()),
                a.binWidth()};
}

RawPmf naiveConvolve(const DiscretePmf& a, const DiscretePmf& b,
                     std::size_t maxBins) {
  return naiveConvolveRaw(asRaw(a), b, maxBins);
}

RawPmf naiveCapped(const DiscretePmf& a, std::size_t maxBins) {
  if (a.size() <= maxBins) {
    return RawPmf{a.firstBin(),
                  std::vector<double>(a.probs().begin(), a.probs().end()),
                  a.binWidth()};
  }
  std::vector<double> out(a.probs().begin(),
                          a.probs().begin() +
                              static_cast<std::ptrdiff_t>(maxBins));
  out.back() += std::accumulate(
      a.probs().begin() + static_cast<std::ptrdiff_t>(maxBins),
      a.probs().end(), 0.0);
  return naiveTrimNormalize(a.firstBin(), std::move(out), a.binWidth());
}

RawPmf naiveConditionalRemaining(const DiscretePmf& a, double elapsed) {
  const double width = a.binWidth();
  const auto elapsedBins =
      static_cast<std::int64_t>(std::floor(elapsed / width + 1e-9));
  const std::int64_t keepFrom = elapsedBins + 1;
  if (keepFrom > a.lastBin()) {
    return RawPmf{1, {1.0}, width};
  }
  const std::int64_t skip = std::max<std::int64_t>(keepFrom - a.firstBin(), 0);
  std::vector<double> kept(a.probs().begin() + skip, a.probs().end());
  return naiveTrimNormalize(a.firstBin() + skip - elapsedBins,
                            std::move(kept), width);
}

/// The seed's linear cdf scan.
double naiveCdfShiftedBy(const DiscretePmf& pmf, std::int64_t bins, double t) {
  const double cutoff = t + pmf.binWidth() * 1e-6;
  double acc = 0.0;
  for (std::size_t i = 0; i < pmf.size(); ++i) {
    const double timeAtBin =
        static_cast<double>(pmf.firstBin() + bins +
                            static_cast<std::int64_t>(i)) *
        pmf.binWidth();
    if (timeAtBin >= cutoff) break;
    acc += pmf.probs()[i];
  }
  return std::min(acc, 1.0);
}

double naiveQuantile(const DiscretePmf& pmf, double p) {
  double acc = 0.0;
  for (std::size_t i = 0; i < pmf.size(); ++i) {
    acc += pmf.probs()[i];
    if (acc + DiscretePmf::kMassTolerance >= p) return pmf.timeAt(i);
  }
  return pmf.maxTime();
}

/// Bit-exact comparison: every bin must match to the last ulp.
void expectBitIdentical(const DiscretePmf& got, const RawPmf& want,
                        const char* what) {
  ASSERT_EQ(got.firstBin(), want.first) << what;
  ASSERT_EQ(got.size(), want.probs.size()) << what;
  ASSERT_EQ(got.binWidth(), want.width) << what;
  for (std::size_t i = 0; i < want.probs.size(); ++i) {
    ASSERT_EQ(std::memcmp(&got.probs()[i], &want.probs[i], sizeof(double)), 0)
        << what << ": bin " << i << " got " << got.probs()[i] << " want "
        << want.probs[i];
  }
}

DiscretePmf randomPmf(Rng& rng, int maxBinsInSupport = 120,
                      double width = 1.0) {
  const int size = static_cast<int>(rng.uniformInt(1, maxBinsInSupport));
  std::vector<double> probs;
  probs.reserve(static_cast<std::size_t>(size));
  for (int i = 0; i < size; ++i) {
    // ~25% interior zero bins exercise the zero-row skip and trimming.
    const double p =
        rng.uniform01() < 0.25 ? 0.0 : rng.uniform(1e-6, 1.0);
    probs.push_back(p);
  }
  // Positive ends so the support is exactly [0, size).
  probs.front() = rng.uniform(0.1, 1.0);
  probs.back() = rng.uniform(0.1, 1.0);
  const auto first = rng.uniformInt(0, 120) - 60;  // negative offsets too
  return DiscretePmf(first, std::move(probs), width);
}

// --- Convolution -------------------------------------------------------------

TEST(KernelBitExactness, ConvolveMatchesNaiveReference) {
  Rng rng(1001);
  PmfArena arena;
  int tiledCases = 0;
  for (int c = 0; c < 600; ++c) {
    const DiscretePmf a = randomPmf(rng);
    const DiscretePmf b = randomPmf(rng);
    if (a.size() * b.size() >= 512) ++tiledCases;
    const RawPmf want = naiveConvolve(a, b, DiscretePmf::kDefaultMaxBins);
    expectBitIdentical(a.convolve(b), want, "member convolve");
    expectBitIdentical(hcs::prob::convolveInto(arena, a, b), want,
                       "convolveInto");
  }
  // The random mix must actually exercise the tiled (register-blocked) path.
  EXPECT_GT(tiledCases, 100);
}

TEST(KernelBitExactness, CappedConvolveFoldsIdentically) {
  Rng rng(1002);
  PmfArena arena;
  for (int c = 0; c < 400; ++c) {
    const DiscretePmf a = randomPmf(rng);
    const DiscretePmf b = randomPmf(rng);
    // Caps from "absurdly tight" to "just above full size".
    const std::size_t full = a.size() + b.size() - 1;
    const std::size_t cap = static_cast<std::size_t>(
        rng.uniformInt(1, static_cast<int>(full) + 4));
    const RawPmf want = naiveConvolve(a, b, cap);
    expectBitIdentical(a.convolve(b, cap), want, "member capped convolve");
    expectBitIdentical(hcs::prob::convolveInto(arena, a, b, cap), want,
                       "capped convolveInto");
  }
}

TEST(KernelBitExactness, ConvolveInPlaceChainsMatchFoldedNaive) {
  Rng rng(1003);
  PmfArena arena;
  for (int c = 0; c < 50; ++c) {
    DiscretePmf acc = randomPmf(rng, 40);
    RawPmf want = asRaw(acc);
    for (int step = 0; step < 6; ++step) {
      const DiscretePmf pet = randomPmf(rng, 40);
      want = naiveConvolveRaw(want, pet, DiscretePmf::kDefaultMaxBins);
      hcs::prob::convolveInPlace(arena, acc, pet);
      expectBitIdentical(acc, want, "convolveInPlace chain");
    }
  }
}

TEST(KernelBitExactness, TileBoundarySizesAreExact) {
  // Sizes straddling the 16-bin tile width and the tiled-kernel threshold.
  Rng rng(1004);
  PmfArena arena;
  for (std::size_t na : {1u, 2u, 15u, 16u, 17u, 31u, 33u, 48u, 64u}) {
    for (std::size_t nb : {1u, 7u, 8u, 16u, 17u, 32u, 65u}) {
      std::vector<double> pa(na), pb(nb);
      for (double& p : pa) p = rng.uniform(0.01, 1.0);
      for (double& p : pb) p = rng.uniform(0.01, 1.0);
      const DiscretePmf a(-3, std::move(pa));
      const DiscretePmf b(5, std::move(pb));
      const RawPmf want = naiveConvolve(a, b, DiscretePmf::kDefaultMaxBins);
      expectBitIdentical(hcs::prob::convolveInto(arena, a, b), want,
                         "tile boundary");
    }
  }
}

// --- capped / conditionalRemaining / pointMass -------------------------------

TEST(KernelBitExactness, CappedIntoMatchesNaive) {
  Rng rng(1005);
  PmfArena arena;
  for (int c = 0; c < 400; ++c) {
    const DiscretePmf a = randomPmf(rng);
    const std::size_t cap = static_cast<std::size_t>(
        rng.uniformInt(1, static_cast<int>(a.size()) + 4));
    const RawPmf want = naiveCapped(a, cap);
    expectBitIdentical(a.capped(cap), want, "member capped");
    expectBitIdentical(hcs::prob::cappedInto(arena, a, cap), want,
                       "cappedInto");
  }
}

TEST(KernelBitExactness, ConditionalRemainingIntoMatchesNaive) {
  Rng rng(1006);
  PmfArena arena;
  for (int c = 0; c < 500; ++c) {
    const DiscretePmf a = randomPmf(rng);
    // Elapsed from before the support to past its end (the overdue branch);
    // supports may sit entirely below zero (negative offsets).
    const double elapsed = rng.uniform(0.0, std::max(0.0, a.maxTime()) + 5.0);
    const RawPmf want = naiveConditionalRemaining(a, elapsed);
    expectBitIdentical(a.conditionalRemaining(elapsed), want,
                       "member conditionalRemaining");
    expectBitIdentical(
        hcs::prob::conditionalRemainingInto(arena, a, elapsed), want,
        "conditionalRemainingInto");
    // The fused re-anchoring shift must equal shifted() exactly.
    const std::int64_t shift = rng.uniformInt(0, 40) - 20;
    const DiscretePmf anchored =
        hcs::prob::conditionalRemainingInto(arena, a, elapsed, shift);
    EXPECT_EQ(anchored, a.conditionalRemaining(elapsed).shifted(shift));
  }
}

TEST(KernelBitExactness, PointMassIntoMatchesConstructor) {
  PmfArena arena;
  for (std::int64_t bin : {-7, 0, 3, 1000}) {
    EXPECT_EQ(hcs::prob::pointMassInto(arena, bin, 0.5),
              DiscretePmf(bin, {1.0}, 0.5));
  }
  EXPECT_THROW(hcs::prob::pointMassInto(arena, 0, 0.0),
               std::invalid_argument);
}

// --- Prefix-sum CDF cache ----------------------------------------------------

TEST(PrefixCdf, CdfQuantileSampleAreBitIdenticalWithAndWithoutCache) {
  Rng rng(1007);
  for (int c = 0; c < 500; ++c) {
    const DiscretePmf plain = randomPmf(rng);
    DiscretePmf cached = plain;
    ASSERT_FALSE(cached.hasCdfCache());
    cached.ensureCdfCache();
    ASSERT_TRUE(cached.hasCdfCache());
    // Probe around the support, at bin edges, and far outside.
    for (int probe = 0; probe < 12; ++probe) {
      const double t =
          rng.uniform(plain.minTime() - 3.0, plain.maxTime() + 3.0);
      const std::int64_t shift = rng.uniformInt(0, 60) - 30;
      ASSERT_EQ(cached.cdf(t), naiveCdfShiftedBy(plain, 0, t));
      ASSERT_EQ(cached.cdf(t), plain.cdf(t));
      ASSERT_EQ(cached.cdfShiftedBy(shift, t),
                naiveCdfShiftedBy(plain, shift, t));
      ASSERT_EQ(cached.cdfShiftedBy(shift, t), plain.cdfShiftedBy(shift, t));
    }
    for (std::size_t i = 0; i < plain.size(); ++i) {
      const double edge = plain.timeAt(i);
      ASSERT_EQ(cached.cdf(edge), plain.cdf(edge));
    }
    for (int probe = 0; probe < 12; ++probe) {
      const double p = rng.uniform01();
      ASSERT_EQ(cached.quantile(p), naiveQuantile(plain, p));
      ASSERT_EQ(cached.quantile(p), plain.quantile(p));
    }
    ASSERT_EQ(cached.quantile(0.0), plain.quantile(0.0));
    ASSERT_EQ(cached.quantile(1.0), plain.quantile(1.0));
    // Identical inverse-CDF sampling: same rng stream, same draws.
    Rng sampleA(42 + static_cast<std::uint64_t>(c));
    Rng sampleB(42 + static_cast<std::uint64_t>(c));
    for (int draw = 0; draw < 8; ++draw) {
      ASSERT_EQ(cached.sample(sampleA), plain.sample(sampleB));
    }
  }
}

TEST(PrefixCdf, CopiesDropTheCacheAndEqualityIgnoresIt) {
  const DiscretePmf a(2, {0.25, 0.5, 0.25});
  a.ensureCdfCache();
  const DiscretePmf copy = a;
  EXPECT_FALSE(copy.hasCdfCache());
  EXPECT_EQ(copy, a);  // derived cache state does not affect equality
  DiscretePmf assigned(0, {1.0});
  assigned.ensureCdfCache();
  assigned = a;  // stale table must not survive the assignment
  EXPECT_FALSE(assigned.hasCdfCache());
  EXPECT_EQ(assigned, a);
  // Moves carry the table along (the distribution moves with it).
  DiscretePmf b(2, {0.25, 0.5, 0.25});
  b.ensureCdfCache();
  const DiscretePmf moved = std::move(b);
  EXPECT_TRUE(moved.hasCdfCache());
  EXPECT_EQ(moved.cdf(3.0), 0.75);
}

TEST(PrefixCdf, ConcurrentEnsureIsSafe) {
  Rng rng(1008);
  const DiscretePmf pmf = randomPmf(rng, 500);
  const double probe = pmf.minTime() + 0.6 * (pmf.maxTime() - pmf.minTime());
  const double want = pmf.cdf(probe);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      pmf.ensureCdfCache();
      for (int i = 0; i < 100; ++i) {
        if (pmf.cdf(probe) != want) std::abort();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_TRUE(pmf.hasCdfCache());
  EXPECT_EQ(pmf.cdf(probe), want);
}

// --- Batched Eq. 2 -----------------------------------------------------------

TEST(SuccessProbabilityBatch, MatchesPerPmfEvaluation) {
  Rng rng(1009);
  std::vector<DiscretePmf> pcts;
  for (int i = 0; i < 16; ++i) pcts.push_back(randomPmf(rng));
  std::vector<const DiscretePmf*> ptrs;
  for (const DiscretePmf& p : pcts) ptrs.push_back(&p);
  for (int probe = 0; probe < 50; ++probe) {
    const double deadline = rng.uniform(-40.0, 120.0);
    const std::vector<double> got =
        hcs::prob::successProbabilityBatch(ptrs, deadline);
    ASSERT_EQ(got.size(), pcts.size());
    for (std::size_t i = 0; i < pcts.size(); ++i) {
      ASSERT_EQ(got[i], pcts[i].successProbability(deadline));
    }
  }
}

// --- Arena -------------------------------------------------------------------

TEST(PmfArenaTest, RecycledCapacityIsReusedWithoutAllocation) {
  PmfArena arena;
  std::vector<double> buf = arena.acquire(100);
  const double* data = buf.data();
  arena.recycle(std::move(buf));
  std::vector<double> again = arena.acquire(80);  // fits in the 100-capacity
  EXPECT_EQ(again.data(), data);
  EXPECT_EQ(arena.stats().acquires, 2u);
  EXPECT_EQ(arena.stats().allocations, 1u);
  EXPECT_TRUE(std::all_of(again.begin(), again.end(),
                          [](double v) { return v == 0.0; }));
}

TEST(PmfArenaTest, SteadyStateConvolutionChainsAreAllocationFree) {
  PmfArena arena;
  Rng rng(1010);
  const DiscretePmf pet = randomPmf(rng, 40);
  // Mimic a mapping event's chain: availability ⊛ PET ⊛ PET ⊛ PET, with
  // every dead intermediate recycled.  After a warm-up pass the pool serves
  // every buffer.
  auto runChain = [&] {
    DiscretePmf acc = hcs::prob::pointMassInto(arena, 10, 1.0);
    for (int step = 0; step < 4; ++step) {
      hcs::prob::convolveInPlace(arena, acc, pet);
    }
    arena.recycle(std::move(acc));
  };
  runChain();
  runChain();
  arena.resetStats();
  for (int event = 0; event < 50; ++event) runChain();
  EXPECT_GT(arena.stats().acquires, 0u);
  EXPECT_EQ(arena.stats().allocations, 0u);
}

TEST(PmfArenaTest, ThreadLocalArenasAreDistinct) {
  PmfArena* main = &PmfArena::local();
  PmfArena* other = nullptr;
  std::thread([&] { other = &PmfArena::local(); }).join();
  EXPECT_NE(main, other);
}

}  // namespace
