// Tests for the discrete-PMF machinery (src/prob) and the statistics
// utilities (src/stats) that everything else builds on.

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <vector>

#include "prob/histogram.h"
#include "prob/pmf.h"
#include "prob/rng.h"
#include "stats/confidence.h"
#include "stats/running_stats.h"

namespace {

using hcs::prob::DiscretePmf;
using hcs::prob::Rng;

double totalMass(const DiscretePmf& pmf) {
  const auto probs = pmf.probs();
  return std::accumulate(probs.begin(), probs.end(), 0.0);
}

// --- Construction -----------------------------------------------------------

TEST(DiscretePmfTest, NormalizesOnConstruction) {
  const DiscretePmf pmf(1, {2.0, 1.0, 1.0});
  EXPECT_NEAR(totalMass(pmf), 1.0, 1e-12);
  EXPECT_NEAR(pmf.probs()[0], 0.5, 1e-12);
}

TEST(DiscretePmfTest, TrimsZeroBinsAtBothEnds) {
  const DiscretePmf pmf(0, {0.0, 0.0, 1.0, 1.0, 0.0});
  EXPECT_EQ(pmf.firstBin(), 2);
  EXPECT_EQ(pmf.size(), 2u);
  EXPECT_EQ(pmf.lastBin(), 3);
}

TEST(DiscretePmfTest, RejectsEmptyAndNegativeAndZeroMass) {
  EXPECT_THROW(DiscretePmf(0, {}), std::invalid_argument);
  EXPECT_THROW(DiscretePmf(0, {0.5, -0.1}), std::invalid_argument);
  EXPECT_THROW(DiscretePmf(0, {0.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(DiscretePmf(0, {1.0}, 0.0), std::invalid_argument);
  EXPECT_THROW(DiscretePmf(0, {1.0}, -1.0), std::invalid_argument);
}

TEST(DiscretePmfTest, PointMassPutsAllMassOnOneBin) {
  const DiscretePmf pmf = DiscretePmf::pointMass(7.0);
  EXPECT_EQ(pmf.size(), 1u);
  EXPECT_DOUBLE_EQ(pmf.minTime(), 7.0);
  EXPECT_DOUBLE_EQ(pmf.mean(), 7.0);
  EXPECT_DOUBLE_EQ(pmf.variance(), 0.0);
}

TEST(DiscretePmfTest, PointMassRoundsToGrid) {
  const DiscretePmf pmf = DiscretePmf::pointMass(7.3, 0.5);
  EXPECT_DOUBLE_EQ(pmf.minTime(), 7.5);
}

TEST(DiscretePmfTest, FromSamplesBuildsNormalizedHistogram) {
  const std::vector<double> samples = {1.0, 1.0, 2.0, 3.0};
  const DiscretePmf pmf = DiscretePmf::fromSamples(samples);
  EXPECT_EQ(pmf.firstBin(), 1);
  EXPECT_EQ(pmf.size(), 3u);
  EXPECT_NEAR(pmf.probs()[0], 0.5, 1e-12);
  EXPECT_NEAR(pmf.probs()[1], 0.25, 1e-12);
  EXPECT_NEAR(pmf.probs()[2], 0.25, 1e-12);
}

TEST(DiscretePmfTest, FromSamplesRejectsBadInput) {
  EXPECT_THROW(DiscretePmf::fromSamples({}), std::invalid_argument);
  const std::vector<double> negative = {-1.0};
  EXPECT_THROW(DiscretePmf::fromSamples(negative), std::invalid_argument);
}

// --- Moments ----------------------------------------------------------------

TEST(DiscretePmfTest, MeanAndVarianceMatchHandComputation) {
  // P(1)=0.5, P(3)=0.5: mean 2, variance 1.
  const DiscretePmf pmf(1, {0.5, 0.0, 0.5});
  EXPECT_DOUBLE_EQ(pmf.mean(), 2.0);
  EXPECT_DOUBLE_EQ(pmf.variance(), 1.0);
  EXPECT_DOUBLE_EQ(pmf.stddev(), 1.0);
}

TEST(DiscretePmfTest, MomentsRespectBinWidth) {
  const DiscretePmf pmf(2, {0.5, 0.5}, 0.5);  // mass at 1.0 and 1.5
  EXPECT_DOUBLE_EQ(pmf.mean(), 1.25);
  EXPECT_NEAR(pmf.variance(), 0.0625, 1e-12);
}

// --- CDF / chance of success (Eq. 2) ---------------------------------------

TEST(DiscretePmfTest, CdfStepsThroughSupport) {
  const DiscretePmf pmf(1, {0.25, 0.25, 0.5});
  EXPECT_DOUBLE_EQ(pmf.cdf(0.0), 0.0);
  EXPECT_DOUBLE_EQ(pmf.cdf(1.0), 0.25);
  EXPECT_DOUBLE_EQ(pmf.cdf(2.0), 0.5);
  EXPECT_DOUBLE_EQ(pmf.cdf(2.7), 0.5);
  EXPECT_DOUBLE_EQ(pmf.cdf(3.0), 1.0);
  EXPECT_DOUBLE_EQ(pmf.cdf(100.0), 1.0);
}

TEST(DiscretePmfTest, SuccessProbabilityIsCdfAtDeadline) {
  const DiscretePmf pmf(4, {0.2, 0.3, 0.5});
  EXPECT_DOUBLE_EQ(pmf.successProbability(5.0), 0.5);
}

TEST(DiscretePmfTest, QuantileInvertsTheCdf) {
  const DiscretePmf pmf(1, {0.25, 0.25, 0.5});
  EXPECT_DOUBLE_EQ(pmf.quantile(0.2), 1.0);
  EXPECT_DOUBLE_EQ(pmf.quantile(0.25), 1.0);
  EXPECT_DOUBLE_EQ(pmf.quantile(0.5), 2.0);
  EXPECT_DOUBLE_EQ(pmf.quantile(1.0), 3.0);
  EXPECT_THROW(pmf.quantile(-0.1), std::invalid_argument);
  EXPECT_THROW(pmf.quantile(1.1), std::invalid_argument);
}

// --- Convolution (Eq. 1, Fig. 2) --------------------------------------------

TEST(DiscretePmfTest, ConvolutionOfPointMassesAddsTimes) {
  const DiscretePmf a = DiscretePmf::pointMass(3.0);
  const DiscretePmf b = DiscretePmf::pointMass(4.0);
  const DiscretePmf c = a.convolve(b);
  EXPECT_EQ(c.size(), 1u);
  EXPECT_DOUBLE_EQ(c.minTime(), 7.0);
}

TEST(DiscretePmfTest, ConvolutionMatchesFig2HandExample) {
  // PET of the arriving task: P(1)=.75, P(2)=.125, P(3)=.125 (Fig. 2 left).
  const DiscretePmf pet(1, {0.75, 0.125, 0.125});
  // PCT of the last task on the machine: P(4)=.17, P(5)=.33, P(6)=.50.
  const DiscretePmf lastPct(4, {0.17, 0.33, 0.50});
  const DiscretePmf pct = pet.convolve(lastPct);
  // Support is 5..9.
  EXPECT_EQ(pct.firstBin(), 5);
  EXPECT_EQ(pct.lastBin(), 9);
  EXPECT_NEAR(pct.probs()[0], 0.75 * 0.17, 1e-12);
  EXPECT_NEAR(pct.probs()[1], 0.75 * 0.33 + 0.125 * 0.17, 1e-12);
  EXPECT_NEAR(pct.probs()[2], 0.75 * 0.50 + 0.125 * 0.33 + 0.125 * 0.17,
              1e-12);
  EXPECT_NEAR(pct.probs()[3], 0.125 * 0.50 + 0.125 * 0.33, 1e-12);
  EXPECT_NEAR(pct.probs()[4], 0.125 * 0.50, 1e-12);
  EXPECT_NEAR(totalMass(pct), 1.0, 1e-12);
}

TEST(DiscretePmfTest, ConvolutionIsCommutative) {
  const DiscretePmf a(1, {0.3, 0.7});
  const DiscretePmf b(2, {0.5, 0.25, 0.25});
  EXPECT_EQ(a.convolve(b), b.convolve(a));
}

TEST(DiscretePmfTest, ConvolutionMeanIsSumOfMeans) {
  const DiscretePmf a(1, {0.3, 0.2, 0.5});
  const DiscretePmf b(4, {0.1, 0.9});
  EXPECT_NEAR(a.convolve(b).mean(), a.mean() + b.mean(), 1e-12);
}

TEST(DiscretePmfTest, ConvolutionVarianceIsSumOfVariances) {
  const DiscretePmf a(1, {0.3, 0.2, 0.5});
  const DiscretePmf b(4, {0.1, 0.9});
  EXPECT_NEAR(a.convolve(b).variance(), a.variance() + b.variance(), 1e-12);
}

TEST(DiscretePmfTest, ConvolutionRejectsMixedBinWidths) {
  const DiscretePmf a(1, {1.0}, 1.0);
  const DiscretePmf b(1, {1.0}, 0.5);
  EXPECT_THROW(a.convolve(b), std::invalid_argument);
}

TEST(DiscretePmfTest, ConvolutionCapFoldsTailMass) {
  const DiscretePmf a(0, std::vector<double>(100, 1.0));
  const DiscretePmf b(0, std::vector<double>(100, 1.0));
  const DiscretePmf c = a.convolve(b, 50);
  EXPECT_EQ(c.size(), 50u);
  EXPECT_NEAR(totalMass(c), 1.0, 1e-9);
  // Folded tail mass moves earlier in time: the capped PMF is
  // stochastically *smaller* than the exact convolution.
  const DiscretePmf full = a.convolve(b);
  EXPECT_GE(c.cdf(60.0), full.cdf(60.0) - 1e-12);
  EXPECT_LE(c.mean(), full.mean() + 1e-9);
  // Mass below the cap is exact.
  EXPECT_NEAR(c.cdf(30.0), full.cdf(30.0), 1e-12);
}

// --- Conditioning / shifting -----------------------------------------------

TEST(DiscretePmfTest, ShiftedMovesSupport) {
  const DiscretePmf pmf(1, {0.5, 0.5});
  const DiscretePmf moved = pmf.shifted(10);
  EXPECT_EQ(moved.firstBin(), 11);
  EXPECT_DOUBLE_EQ(moved.mean(), pmf.mean() + 10.0);
}

TEST(DiscretePmfTest, ConditionalRemainingRemovesElapsedMass) {
  // P(1)=.5, P(2)=.25, P(3)=.25; after 1 elapsed time unit the remaining
  // time is P(1)=.5, P(2)=.5 (renormalized over X > 1, shifted left by 1).
  const DiscretePmf pmf(1, {0.5, 0.25, 0.25});
  const DiscretePmf remaining = pmf.conditionalRemaining(1.0);
  EXPECT_EQ(remaining.firstBin(), 1);
  EXPECT_EQ(remaining.size(), 2u);
  EXPECT_NEAR(remaining.probs()[0], 0.5, 1e-12);
  EXPECT_NEAR(remaining.probs()[1], 0.5, 1e-12);
}

TEST(DiscretePmfTest, ConditionalRemainingWithZeroElapsedKeepsDistribution) {
  const DiscretePmf pmf(1, {0.5, 0.25, 0.25});
  EXPECT_EQ(pmf.conditionalRemaining(0.0), pmf);
}

TEST(DiscretePmfTest, ConditionalRemainingPastSupportIsOneBin) {
  const DiscretePmf pmf(1, {0.5, 0.5});
  const DiscretePmf remaining = pmf.conditionalRemaining(10.0);
  EXPECT_EQ(remaining.size(), 1u);
  EXPECT_DOUBLE_EQ(remaining.minTime(), 1.0);
}

TEST(DiscretePmfTest, ConditionalRemainingReducesUncertainty) {
  // Conditioning on progress can only narrow the support.
  const DiscretePmf pmf(1, std::vector<double>{0.2, 0.2, 0.2, 0.2, 0.2});
  const DiscretePmf remaining = pmf.conditionalRemaining(2.0);
  EXPECT_LT(remaining.size(), pmf.size());
  EXPECT_NEAR(totalMass(remaining), 1.0, 1e-12);
}

TEST(DiscretePmfTest, CappedIsIdentityWhenUnderLimit) {
  const DiscretePmf pmf(1, {0.5, 0.5});
  EXPECT_EQ(pmf.capped(10), pmf);
  EXPECT_THROW(pmf.capped(0), std::invalid_argument);
}

// --- Sampling ---------------------------------------------------------------

TEST(DiscretePmfTest, SampleStaysInSupportAndMatchesMean) {
  const DiscretePmf pmf(2, {0.25, 0.5, 0.25});
  Rng rng(7);
  double sum = 0.0;
  constexpr int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) {
    const double x = pmf.sample(rng);
    ASSERT_GE(x, pmf.minTime());
    ASSERT_LE(x, pmf.maxTime());
    sum += x;
  }
  EXPECT_NEAR(sum / kDraws, pmf.mean(), 0.02);
}

// --- Parameterized properties over random PMFs ------------------------------

class PmfPropertyTest : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  DiscretePmf randomPmf(Rng& rng) {
    const int size = static_cast<int>(rng.uniformInt(1, 40));
    std::vector<double> probs;
    probs.reserve(static_cast<std::size_t>(size));
    for (int i = 0; i < size; ++i) probs.push_back(rng.uniform(0.01, 1.0));
    return DiscretePmf(rng.uniformInt(0, 30), std::move(probs));
  }
};

TEST_P(PmfPropertyTest, ConvolutionPreservesMassAndMoments) {
  Rng rng(GetParam());
  const DiscretePmf a = randomPmf(rng);
  const DiscretePmf b = randomPmf(rng);
  const DiscretePmf c = a.convolve(b);
  EXPECT_NEAR(totalMass(c), 1.0, 1e-9);
  EXPECT_NEAR(c.mean(), a.mean() + b.mean(), 1e-7);
  EXPECT_NEAR(c.variance(), a.variance() + b.variance(), 1e-6);
  EXPECT_EQ(c.firstBin(), a.firstBin() + b.firstBin());
  EXPECT_EQ(c.lastBin(), a.lastBin() + b.lastBin());
}

TEST_P(PmfPropertyTest, CdfIsMonotoneFromZeroToOne) {
  Rng rng(GetParam());
  const DiscretePmf pmf = randomPmf(rng);
  double previous = 0.0;
  for (double t = pmf.minTime() - 2.0; t <= pmf.maxTime() + 2.0; t += 0.5) {
    const double c = pmf.cdf(t);
    EXPECT_GE(c, previous - 1e-12);
    EXPECT_GE(c, 0.0);
    EXPECT_LE(c, 1.0);
    previous = c;
  }
  EXPECT_DOUBLE_EQ(pmf.cdf(pmf.maxTime()), 1.0);
}

TEST_P(PmfPropertyTest, ConditionalRemainingIsProperDistribution) {
  Rng rng(GetParam());
  const DiscretePmf pmf = randomPmf(rng);
  for (double elapsed = 0.0; elapsed < pmf.maxTime() + 2.0; elapsed += 1.0) {
    const DiscretePmf remaining = pmf.conditionalRemaining(elapsed);
    EXPECT_NEAR(totalMass(remaining), 1.0, 1e-9);
    EXPECT_GE(remaining.minTime(), 1.0 - 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PmfPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 21));

// --- Gamma histogram (the paper's PET recipe) -------------------------------

TEST(GammaHistogramTest, MeanTracksRequestedMean) {
  Rng rng(11);
  const DiscretePmf pmf = hcs::prob::gammaHistogramPmf(rng, 12.0, 8.0, 5000);
  EXPECT_NEAR(pmf.mean(), 12.0, 0.5);
}

TEST(GammaHistogramTest, LowShapeGivesMoreSpread) {
  Rng rng1(13);
  Rng rng2(13);
  const DiscretePmf spiky = hcs::prob::gammaHistogramPmf(rng1, 20.0, 1.5, 4000);
  const DiscretePmf tight = hcs::prob::gammaHistogramPmf(rng2, 20.0, 19.0, 4000);
  EXPECT_GT(spiky.stddev(), tight.stddev());
}

TEST(GammaHistogramTest, SamplesAreFlooredAtOneBin) {
  Rng rng(17);
  const DiscretePmf pmf = hcs::prob::gammaHistogramPmf(rng, 1.0, 1.0, 2000);
  EXPECT_GE(pmf.minTime(), 1.0 - 1e-12);
}

TEST(GammaHistogramTest, RejectsBadParameters) {
  Rng rng(1);
  EXPECT_THROW(hcs::prob::gammaHistogramPmf(rng, -1.0, 2.0),
               std::invalid_argument);
  EXPECT_THROW(hcs::prob::gammaHistogramPmf(rng, 1.0, 0.0),
               std::invalid_argument);
  EXPECT_THROW(hcs::prob::gammaHistogramPmf(rng, 1.0, 2.0, 0),
               std::invalid_argument);
}

// --- Rng --------------------------------------------------------------------

TEST(RngTest, IsDeterministicPerSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform01(), b.uniform01());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform01() == b.uniform01()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(RngTest, GammaMeanMatchesShapeTimesScale) {
  Rng rng(3);
  double sum = 0.0;
  constexpr int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) sum += rng.gamma(4.0, 2.5);
  EXPECT_NEAR(sum / kDraws, 10.0, 0.25);
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(3.0, 7.0);
    ASSERT_GE(x, 3.0);
    ASSERT_LT(x, 7.0);
  }
  EXPECT_THROW(rng.uniform(7.0, 3.0), std::invalid_argument);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(9);
  Rng child = parent.fork();
  // The child stream should differ from the parent's continuation.
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.uniform01() == child.uniform01()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

// --- RunningStats ------------------------------------------------------------

TEST(RunningStatsTest, MatchesHandComputedMoments) {
  hcs::stats::RunningStats stats;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.add(x);
  EXPECT_EQ(stats.count(), 8u);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_NEAR(stats.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
}

TEST(RunningStatsTest, EmptyAndSingleSampleAreSafe) {
  hcs::stats::RunningStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
  stats.add(3.0);
  EXPECT_DOUBLE_EQ(stats.mean(), 3.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
  EXPECT_DOUBLE_EQ(stats.stderrMean(), 0.0);
}

TEST(RunningStatsTest, MergeEqualsSequentialAccumulation) {
  hcs::stats::RunningStats all, left, right;
  hcs::prob::Rng rng(21);
  for (int i = 0; i < 500; ++i) {
    const double x = rng.uniform(-5.0, 5.0);
    all.add(x);
    (i % 2 == 0 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

// --- Confidence intervals ----------------------------------------------------

TEST(ConfidenceTest, TCriticalMatchesTables) {
  EXPECT_NEAR(hcs::stats::tCritical(0.95, 1), 12.706, 1e-3);
  EXPECT_NEAR(hcs::stats::tCritical(0.95, 29), 2.045, 1e-3);
  EXPECT_NEAR(hcs::stats::tCritical(0.99, 10), 3.169, 1e-3);
  EXPECT_NEAR(hcs::stats::tCritical(0.90, 5), 2.015, 1e-3);
  // Large df approaches the normal quantile 1.96.
  EXPECT_NEAR(hcs::stats::tCritical(0.95, 1000), 1.962, 5e-3);
}

TEST(ConfidenceTest, TCriticalRejectsBadInput) {
  EXPECT_THROW(hcs::stats::tCritical(0.95, 0), std::invalid_argument);
  EXPECT_THROW(hcs::stats::tCritical(0.0, 5), std::invalid_argument);
  EXPECT_THROW(hcs::stats::tCritical(1.0, 5), std::invalid_argument);
}

TEST(ConfidenceTest, IntervalCoversTrueMeanMostOfTheTime) {
  // 95% CI over repeated samples of a uniform should cover the true mean
  // about 95% of the time; check a loose lower bound.
  hcs::prob::Rng rng(33);
  int covered = 0;
  constexpr int kReps = 400;
  for (int rep = 0; rep < kReps; ++rep) {
    hcs::stats::RunningStats stats;
    for (int i = 0; i < 20; ++i) stats.add(rng.uniform(0.0, 1.0));
    const auto ci = hcs::stats::meanConfidenceInterval(stats);
    if (ci.contains(0.5)) ++covered;
  }
  EXPECT_GT(covered, kReps * 85 / 100);
}

TEST(ConfidenceTest, IntervalShrinksWithMoreSamples) {
  hcs::prob::Rng rng(35);
  hcs::stats::RunningStats small, large;
  for (int i = 0; i < 10; ++i) small.add(rng.uniform(0.0, 1.0));
  for (int i = 0; i < 1000; ++i) large.add(rng.uniform(0.0, 1.0));
  EXPECT_LT(hcs::stats::meanConfidenceInterval(large).halfWidth,
            hcs::stats::meanConfidenceInterval(small).halfWidth);
}

}  // namespace
