// Tests for the experiment framework: multi-trial runs, the paper scenario
// setup, and table reporting.

#include <gtest/gtest.h>

#include <sstream>

#include "exp/experiment.h"
#include "exp/report.h"
#include "exp/scenario.h"

namespace {

using namespace hcs;

exp::PaperScenario::Options tinyOptions() {
  exp::PaperScenario::Options options;
  options.scale = 0.02;  // ~300 tasks at 15k-equivalent
  options.trials = 3;
  return options;
}

// --- PaperScenario -------------------------------------------------------------

TEST(PaperScenarioTest, BuildsPaperShapedClusters) {
  const exp::PaperScenario scenario(tinyOptions());
  EXPECT_EQ(scenario.hetero().numMachines(), 8);
  EXPECT_EQ(scenario.hetero().numTaskTypes(), 12);
  EXPECT_EQ(scenario.homo().numMachines(), 8);
  // Homogeneous cluster: all machines identical.
  for (int j = 1; j < scenario.homo().numMachines(); ++j) {
    for (int t = 0; t < scenario.homo().numTaskTypes(); ++t) {
      EXPECT_DOUBLE_EQ(scenario.homo().expectedExec(t, j),
                       scenario.homo().expectedExec(t, 0));
    }
  }
}

TEST(PaperScenarioTest, ScaleControlsTaskCountsNotIntensity) {
  exp::PaperScenario::Options small = tinyOptions();
  exp::PaperScenario::Options large = tinyOptions();
  large.scale = 0.04;
  const exp::PaperScenario a(small);
  const exp::PaperScenario b(large);
  EXPECT_EQ(a.scaledTasks(15000), 300u);
  EXPECT_EQ(b.scaledTasks(15000), 600u);
  // Span scales linearly with task count, so arrival intensity (tasks per
  // time unit) is scale-invariant.
  const double intensityA = 300.0 / a.span();
  const double intensityB = 600.0 / b.span();
  EXPECT_NEAR(intensityA, intensityB, 1e-9);
}

TEST(PaperScenarioTest, HigherRateMeansProportionallyMoreTasksOverSameSpan) {
  const exp::PaperScenario scenario(tinyOptions());
  const auto spec15 = scenario.arrivalSpec(
      exp::PaperScenario::kRate15k, workload::ArrivalPattern::Spiky);
  const auto spec25 = scenario.arrivalSpec(
      exp::PaperScenario::kRate25k, workload::ArrivalPattern::Spiky);
  EXPECT_DOUBLE_EQ(spec15.span, spec25.span);
  EXPECT_NEAR(static_cast<double>(spec25.totalTasks) /
                  static_cast<double>(spec15.totalTasks),
              25.0 / 15.0, 1e-6);
}

TEST(PaperScenarioTest, WarmupMarginTracksPaperRatio) {
  exp::PaperScenario::Options options;
  options.scale = 1.0;
  const exp::PaperScenario scenario(options);
  EXPECT_EQ(scenario.warmupMargin(15000), 100u);  // paper: 100 of 15000
  EXPECT_GE(scenario.warmupMargin(25000), 100u);
  const exp::PaperScenario small(tinyOptions());
  EXPECT_GE(small.warmupMargin(15000), 10u);  // floor
}

TEST(PaperScenarioTest, RejectsBadOptions) {
  exp::PaperScenario::Options options;
  options.scale = 0.0;
  EXPECT_THROW(exp::PaperScenario{options}, std::invalid_argument);
  options = tinyOptions();
  options.targetRhoAt15k = -1.0;
  EXPECT_THROW(exp::PaperScenario{options}, std::invalid_argument);
}

// --- runExperiment --------------------------------------------------------------

TEST(ExperimentTest, AggregatesRequestedTrials) {
  const exp::PaperScenario scenario(tinyOptions());
  exp::ExperimentSpec spec = scenario.experimentSpec(
      exp::PaperScenario::kRate15k, workload::ArrivalPattern::Spiky);
  spec.sim.heuristic = "MM";
  const exp::ExperimentResult result =
      exp::runExperiment(scenario.hetero(), spec);
  EXPECT_EQ(result.robustness.count(), 3u);
  EXPECT_EQ(result.perTrialRobustness.size(), 3u);
  EXPECT_GE(result.robustnessCi.mean, 0.0);
  EXPECT_LE(result.robustnessCi.mean, 100.0);
  EXPECT_GE(result.robustnessCi.halfWidth, 0.0);
}

TEST(ExperimentTest, IsDeterministicPerBaseSeed) {
  const exp::PaperScenario scenario(tinyOptions());
  exp::ExperimentSpec spec = scenario.experimentSpec(
      exp::PaperScenario::kRate15k, workload::ArrivalPattern::Constant);
  spec.sim.heuristic = "MSD";
  const auto a = exp::runExperiment(scenario.hetero(), spec);
  const auto b = exp::runExperiment(scenario.hetero(), spec);
  EXPECT_EQ(a.perTrialRobustness, b.perTrialRobustness);
  spec.baseSeed = 777;
  const auto c = exp::runExperiment(scenario.hetero(), spec);
  EXPECT_NE(a.perTrialRobustness, c.perTrialRobustness);
}

TEST(ExperimentTest, TrialsVaryWithinAnExperiment) {
  const exp::PaperScenario scenario(tinyOptions());
  exp::ExperimentSpec spec = scenario.experimentSpec(
      exp::PaperScenario::kRate20k, workload::ArrivalPattern::Spiky);
  spec.sim.heuristic = "MM";
  const auto result = exp::runExperiment(scenario.hetero(), spec);
  // Different workload seeds per trial: robustness should not be constant.
  EXPECT_GT(result.robustness.stddev(), 0.0);
}

TEST(ExperimentTest, SharesWorkloadsAcrossSpecsForPairedComparison) {
  // Two specs differing only in pruning see identical workload trials, so
  // their comparison is paired (same arrival times, same deadlines).
  const exp::PaperScenario scenario(tinyOptions());
  exp::ExperimentSpec spec = scenario.experimentSpec(
      exp::PaperScenario::kRate25k, workload::ArrivalPattern::Spiky);
  spec.sim.heuristic = "MM";
  spec.sim.pruning = pruning::PruningConfig::disabled();
  const auto base = exp::runExperiment(scenario.hetero(), spec);
  spec.sim.pruning = pruning::PruningConfig{};
  const auto pruned = exp::runExperiment(scenario.hetero(), spec);
  // Oversubscribed at 25k-equivalent: pruning must win on paired trials.
  EXPECT_GT(pruned.robustnessCi.mean, base.robustnessCi.mean);
}

TEST(ExperimentTest, RejectsZeroTrials) {
  const exp::PaperScenario scenario(tinyOptions());
  exp::ExperimentSpec spec = scenario.experimentSpec(
      exp::PaperScenario::kRate15k, workload::ArrivalPattern::Spiky);
  spec.trials = 0;
  EXPECT_THROW(exp::runExperiment(scenario.hetero(), spec),
               std::invalid_argument);
}

// --- Table / formatting -----------------------------------------------------------

TEST(TableTest, PrintsAlignedColumns) {
  exp::Table table({"name", "value"});
  table.addRow({"alpha", "1"});
  table.addRow({"b", "12345"});
  std::ostringstream out;
  table.print(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("| name  | value |"), std::string::npos);
  EXPECT_NE(text.find("| alpha | 1     |"), std::string::npos);
  EXPECT_NE(text.find("| b     | 12345 |"), std::string::npos);
}

TEST(TableTest, AlignsMultibyteCells) {
  exp::Table table({"v"});
  table.addRow({"62.3 ±1.8"});  // '±' is two bytes, one display cell
  table.addRow({"100.0 ±0.0"});
  std::ostringstream out;
  table.print(out);
  std::istringstream lines(out.str());
  std::string line;
  std::vector<std::size_t> widths;
  while (std::getline(lines, line)) {
    std::size_t cells = 0;
    for (unsigned char c : line) {
      if ((c & 0xC0) != 0x80) ++cells;
    }
    widths.push_back(cells);
  }
  ASSERT_EQ(widths.size(), 4u);
  EXPECT_EQ(widths[0], widths[1]);
  EXPECT_EQ(widths[1], widths[2]);
  EXPECT_EQ(widths[2], widths[3]);
}

TEST(TableTest, CsvEscapesNothingButRoundTrips) {
  exp::Table table({"a", "b"});
  table.addRow({"1", "2"});
  std::ostringstream out;
  table.printCsv(out);
  EXPECT_EQ(out.str(), "a,b\n1,2\n");
}

TEST(TableTest, RejectsMalformedRows) {
  EXPECT_THROW(exp::Table({}), std::invalid_argument);
  exp::Table table({"a", "b"});
  EXPECT_THROW(table.addRow({"only-one"}), std::invalid_argument);
}

TEST(FormatTest, FormatsValuesAndIntervals) {
  EXPECT_EQ(exp::formatValue(3.14159, 2), "3.14");
  EXPECT_EQ(exp::formatValue(10.0, 0), "10");
  stats::ConfidenceInterval ci;
  ci.mean = 62.345;
  ci.halfWidth = 1.84;
  EXPECT_EQ(exp::formatCi(ci), "62.3 ±1.8");
}

}  // namespace
