// End-to-end tests for the resource-allocation core: the Scheduler's
// Fig. 5 procedure and the Simulation trial runner.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/config.h"
#include "core/simulation.h"
#include "test_util.h"
#include "workload/pet_matrix.h"
#include "workload/workload.h"

namespace {

using hcs::core::AllocationMode;
using hcs::core::Simulation;
using hcs::core::SimulationConfig;
using hcs::core::TrialResult;
using hcs::pruning::PruningConfig;
using hcs::pruning::ToggleMode;
using hcs::sim::TaskStatus;
using hcs::testutil::FakeModel;
using hcs::workload::TaskSpec;
using hcs::workload::Workload;

SimulationConfig baseline(const std::string& heuristic) {
  SimulationConfig config;
  config.heuristic = heuristic;
  config.pruning = PruningConfig::disabled();
  config.warmupMargin = 0;
  return config;
}

SimulationConfig pruned(const std::string& heuristic) {
  SimulationConfig config;
  config.heuristic = heuristic;
  config.warmupMargin = 0;
  return config;
}

Workload workloadOf(std::vector<TaskSpec> tasks, int numTypes) {
  return Workload(std::move(tasks), numTypes);
}

// --- Mode resolution ------------------------------------------------------------

TEST(AllocationModeTest, ResolvesFromHeuristicName) {
  EXPECT_EQ(hcs::core::allocationModeFor("RR"), AllocationMode::Immediate);
  EXPECT_EQ(hcs::core::allocationModeFor("KPB"), AllocationMode::Immediate);
  EXPECT_EQ(hcs::core::allocationModeFor("MM"), AllocationMode::Batch);
  EXPECT_EQ(hcs::core::allocationModeFor("EDF"), AllocationMode::Batch);
  EXPECT_THROW(hcs::core::allocationModeFor("bogus"), std::invalid_argument);
}

// --- Basic lifecycle --------------------------------------------------------------

TEST(SimulationTest, SingleTaskCompletesOnTime) {
  const FakeModel model = FakeModel::deterministic({{3.0}});
  const Workload wl = workloadOf({TaskSpec{0, 1.0, 10.0}}, 1);
  const TrialResult result = Simulation(model, wl, baseline("MCT")).run();
  EXPECT_EQ(result.metrics.completedOnTime(), 1u);
  EXPECT_DOUBLE_EQ(result.robustnessPercent, 100.0);
  EXPECT_DOUBLE_EQ(result.makespan, 4.0);  // arrival 1 + exec 3
}

TEST(SimulationTest, LateCompletionCountsAsMiss) {
  const FakeModel model = FakeModel::deterministic({{5.0}});
  const Workload wl = workloadOf({TaskSpec{0, 0.0, 2.0}}, 1);
  const TrialResult result = Simulation(model, wl, baseline("MCT")).run();
  EXPECT_EQ(result.metrics.completedOnTime(), 0u);
  EXPECT_EQ(result.metrics.completedLate(), 1u);
  EXPECT_DOUBLE_EQ(result.robustnessPercent, 0.0);
}

TEST(SimulationTest, CompletionExactlyAtDeadlineIsOnTime) {
  const FakeModel model = FakeModel::deterministic({{5.0}});
  const Workload wl = workloadOf({TaskSpec{0, 0.0, 5.0}}, 1);
  const TrialResult result = Simulation(model, wl, baseline("MCT")).run();
  EXPECT_EQ(result.metrics.completedOnTime(), 1u);
}

TEST(SimulationTest, FifoExecutionOnOneMachine) {
  // Three 4-unit tasks on one machine: completions at 4, 8, 12.
  const FakeModel model = FakeModel::deterministic({{4.0}});
  const Workload wl = workloadOf(
      {TaskSpec{0, 0.0, 100.0}, TaskSpec{0, 0.0, 100.0},
       TaskSpec{0, 0.0, 100.0}},
      1);
  const TrialResult result = Simulation(model, wl, baseline("MCT")).run();
  EXPECT_EQ(result.metrics.completedOnTime(), 3u);
  EXPECT_DOUBLE_EQ(result.makespan, 12.0);
}

TEST(SimulationTest, ImmediateHeuristicUsesAffinity) {
  // Type 0 runs 10x faster on machine 1; MET must send it there.
  const FakeModel model = FakeModel::deterministic({{20.0, 2.0}});
  const Workload wl = workloadOf({TaskSpec{0, 0.0, 5.0}}, 1);
  const TrialResult result = Simulation(model, wl, baseline("MET")).run();
  EXPECT_EQ(result.metrics.completedOnTime(), 1u);
  EXPECT_DOUBLE_EQ(result.makespan, 2.0);
}

TEST(SimulationTest, BatchHeuristicMapsOnArrivalWhenSlotsFree) {
  const FakeModel model = FakeModel::deterministic({{2.0, 2.0}});
  const Workload wl = workloadOf(
      {TaskSpec{0, 0.0, 50.0}, TaskSpec{0, 0.0, 50.0}}, 1);
  const TrialResult result = Simulation(model, wl, baseline("MM")).run();
  EXPECT_EQ(result.metrics.completedOnTime(), 2u);
  // Two machines, both idle: tasks run in parallel, makespan 2.
  EXPECT_DOUBLE_EQ(result.makespan, 2.0);
}

// --- Reactive dropping (step 1) -----------------------------------------------------

TEST(SimulationTest, TasksStuckInBatchQueueAreReactivelyDropped) {
  // One machine, capacity 1 (running only): a long task hogs the machine
  // while short-deadline tasks wait in the batch queue past their deadlines.
  // Reactive dropping (Fig. 5 step 1) evicts them at later mapping events.
  const FakeModel model = FakeModel::deterministic({{30.0}, {30.0}});
  SimulationConfig config = pruned("MM");
  config.machineQueueCapacity = 1;
  const Workload wl = workloadOf(
      {TaskSpec{0, 0.0, 35.0}, TaskSpec{1, 1.0, 5.0}, TaskSpec{1, 2.0, 6.0}},
      2);
  const TrialResult result = Simulation(model, wl, config).run();
  EXPECT_EQ(result.metrics.completedOnTime(), 1u);
  EXPECT_EQ(result.metrics.droppedReactive(), 2u);
}

TEST(SimulationTest, QueuedTasksPastDeadlineAreReactivelyDropped) {
  // Machine queue holds a task whose deadline passes while it waits; the
  // pruning mechanism's reactive pass drops it before it can start.
  const FakeModel model = FakeModel::deterministic({{10.0}, {4.0}});
  const Workload wl = workloadOf(
      {TaskSpec{0, 0.0, 50.0},   // runs 0..10
       TaskSpec{1, 1.0, 6.0},    // queued behind it, dead by 6
       TaskSpec{1, 20.0, 30.0}}, // triggers a mapping event after the miss
      2);
  const TrialResult result = Simulation(model, wl, pruned("MCT")).run();
  EXPECT_EQ(result.metrics.droppedReactive(), 1u);
  EXPECT_EQ(result.metrics.completedOnTime(), 2u);
}

TEST(SimulationTest, BaselineExecutesExpiredQueuedTasks) {
  // With pruning disabled there are NO reactive drops: a task that expires
  // while queued still runs (late), wasting the machine — the paper's
  // baselines collapse under oversubscription precisely because of this.
  const FakeModel model = FakeModel::deterministic({{10.0}, {4.0}});
  const Workload wl = workloadOf(
      {TaskSpec{0, 0.0, 50.0}, TaskSpec{1, 1.0, 6.0},
       TaskSpec{1, 20.0, 30.0}},
      2);
  const TrialResult result = Simulation(model, wl, baseline("MCT")).run();
  EXPECT_EQ(result.metrics.droppedReactive(), 0u);
  EXPECT_EQ(result.metrics.completedLate(), 1u);  // the expired task
  EXPECT_EQ(result.metrics.completedOnTime(), 2u);
}

// --- Proactive dropping (steps 4-6) ---------------------------------------------------

TEST(SimulationTest, ReactiveToggleEngagesDropAfterMiss) {
  // Deterministic 10-unit execs on one machine.  A runs 0..10; M1 and M2
  // queue behind it with deadlines 5 and 6.5.  At B's arrival (t=6) M1's
  // reactive drop engages the Toggle, and the proactive pass catches M2
  // (chance 0: earliest completion 20) while it is still within deadline.
  // B itself maps after the passes; at later events no new misses occur,
  // the Toggle stays off, and B — equally doomed — survives to run late.
  // This pins down both sides of reactive gating.
  const FakeModel model = FakeModel::deterministic({{10.0}});
  SimulationConfig config = pruned("MCT");
  config.pruning.toggle = ToggleMode::Reactive;
  config.pruning.deferEnabled = false;
  const Workload wl = workloadOf(
      {TaskSpec{0, 0.0, 100.0},  // A: runs 0..10
       TaskSpec{0, 0.0, 5.0},    // M1: expires at 5
       TaskSpec{0, 0.0, 6.5},    // M2: proactively dropped at t=6
       TaskSpec{0, 6.0, 12.0},   // B: zero chance but toggle is off later
       TaskSpec{0, 7.0, 100.0}}, // C: healthy
      1);
  const TrialResult result = Simulation(model, wl, config).run();
  EXPECT_EQ(result.metrics.droppedReactive(), 1u);   // M1
  EXPECT_EQ(result.metrics.droppedProactive(), 1u);  // M2
  EXPECT_EQ(result.metrics.completedLate(), 1u);     // B (runs 10..20)
  // A (0..10) and C (20..30, deadline 100) complete on time.
  EXPECT_EQ(result.metrics.completedOnTime(), 2u);
}

TEST(SimulationTest, NoDroppingToggleNeverDropsProactively) {
  const FakeModel model = FakeModel::deterministic({{10.0}});
  SimulationConfig config = pruned("MCT");
  config.pruning.toggle = ToggleMode::NoDropping;
  std::vector<TaskSpec> tasks;
  for (int i = 0; i < 20; ++i) {
    tasks.push_back(TaskSpec{0, static_cast<double>(i), i + 12.0});
  }
  const Workload wl = workloadOf(std::move(tasks), 1);
  const TrialResult result = Simulation(model, wl, config).run();
  EXPECT_EQ(result.metrics.droppedProactive(), 0u);
}

TEST(SimulationTest, AlwaysDroppingPrunesDoomedTasksImmediately) {
  const FakeModel model = FakeModel::deterministic({{10.0}});
  SimulationConfig config = pruned("MCT");
  config.pruning.toggle = ToggleMode::AlwaysDropping;
  config.pruning.deferEnabled = false;
  const Workload wl = workloadOf(
      {TaskSpec{0, 0.0, 100.0},  // runs 0..10
       TaskSpec{0, 1.0, 8.0},    // queued, completion 20 -> chance 0
       TaskSpec{0, 2.0, 100.0}}, // healthy; its arrival triggers the pass
      1);
  const TrialResult result = Simulation(model, wl, config).run();
  EXPECT_EQ(result.metrics.droppedProactive(), 1u);
  EXPECT_EQ(result.metrics.completedOnTime(), 2u);
}

// --- Deferring (step 10) ----------------------------------------------------------------

TEST(SimulationTest, LowChanceTasksAreDeferredNotDispatched) {
  // One machine; a 30-unit task is running.  A task with deadline 12 has
  // zero chance if queued now — deferring keeps it in the batch queue.
  const FakeModel model = FakeModel::deterministic({{30.0}, {5.0}});
  SimulationConfig config = pruned("MM");
  config.pruning.toggle = ToggleMode::NoDropping;
  const Workload wl = workloadOf(
      {TaskSpec{0, 0.0, 100.0}, TaskSpec{1, 1.0, 12.0}}, 2);
  const TrialResult result = Simulation(model, wl, config).run();
  EXPECT_GE(result.metrics.deferrals(), 1u);
  // The deferred task dies in the batch queue (reactive drop at a later
  // event or the trial drain), never on the machine.
  EXPECT_EQ(result.metrics.completedLate(), 0u);
}

TEST(SimulationTest, WithoutPruningDoomedTaskIsDispatchedAndLate) {
  // Pruning disabled and a deadline (32) that is still alive when the
  // machine frees at t=30: the doomed task starts anyway, finishes at 35,
  // and wastes the machine — the exact pathology §I describes.  (With a
  // deadline that expires while queued, even the baseline drops it
  // reactively; the waste happens for tasks that are not-yet-expired but
  // unwinnable.)
  const FakeModel model = FakeModel::deterministic({{30.0}, {5.0}});
  const Workload wl = workloadOf(
      {TaskSpec{0, 0.0, 100.0}, TaskSpec{1, 1.0, 32.0}}, 2);
  const TrialResult result = Simulation(model, wl, baseline("MM")).run();
  EXPECT_EQ(result.metrics.deferrals(), 0u);
  EXPECT_EQ(result.metrics.completedLate(), 1u);

  // With pruning, the same task is deferred (chance 0 at mapping time) and
  // never wastes the machine.
  const TrialResult kept = Simulation(model, wl, pruned("MM")).run();
  EXPECT_EQ(kept.metrics.completedLate(), 0u);
  EXPECT_GE(kept.metrics.deferrals(), 1u);
}

TEST(SimulationTest, DeferredTaskRunsWhenAffineMachineFreesUp) {
  // Queue capacity 1: both machines run an 8-unit type-0 task.  The type-1
  // task (40 units on machine 0, 4 on machine 1, deadline 30) arrives at
  // t=1 and must wait.  Machine 0 frees first (lower event sequence); the
  // only open slot would complete at 48 — deferring holds the task for the
  // affine machine 1, which frees at the same timestamp and finishes it by
  // t=12.  §IV-B's motivating case.
  const FakeModel model =
      FakeModel::deterministic({{8.0, 8.0}, {40.0, 4.0}});
  SimulationConfig config = pruned("MM");
  config.pruning.toggle = ToggleMode::NoDropping;
  config.machineQueueCapacity = 1;
  const Workload wl = workloadOf(
      {TaskSpec{0, 0.0, 100.0},  // occupies machine 0 (phase-1 tie -> 0)
       TaskSpec{0, 0.0, 100.0},  // occupies machine 1
       TaskSpec{1, 1.0, 30.0}},
      2);
  const TrialResult result = Simulation(model, wl, config).run();
  EXPECT_EQ(result.metrics.completedOnTime(), 3u);
  EXPECT_GE(result.metrics.deferrals(), 1u);

  // Without pruning the task is dispatched to the first free (wrong)
  // machine and finishes at t=48, hopelessly late.
  SimulationConfig off = baseline("MM");
  off.machineQueueCapacity = 1;
  const TrialResult late = Simulation(model, wl, off).run();
  EXPECT_EQ(late.metrics.completedLate(), 1u);
  EXPECT_EQ(late.metrics.deferrals(), 0u);
}

// --- Abort-at-deadline policy -------------------------------------------------------------

TEST(SimulationTest, AbortPolicyFreesTheMachineEarly) {
  const FakeModel model = FakeModel::deterministic({{30.0}, {5.0}});
  SimulationConfig config = baseline("MCT");
  config.abortRunningAtDeadline = true;
  const Workload wl = workloadOf(
      {TaskSpec{0, 0.0, 10.0},   // aborted at the first event past t=10
       TaskSpec{1, 12.0, 20.0}}, // would be late behind a 30-unit task
      2);
  const TrialResult result = Simulation(model, wl, config).run();
  EXPECT_EQ(result.metrics.droppedReactive(), 1u);
  EXPECT_EQ(result.metrics.completedOnTime(), 1u);
}

TEST(SimulationTest, WithoutAbortPolicyRunningTaskFinishesLate) {
  const FakeModel model = FakeModel::deterministic({{30.0}, {5.0}});
  const Workload wl = workloadOf(
      {TaskSpec{0, 0.0, 10.0}, TaskSpec{1, 12.0, 20.0}}, 2);
  const TrialResult result = Simulation(model, wl, baseline("MCT")).run();
  // No abort policy and no pruning: the running task finishes late at
  // t=30 and the queued task (deadline 20) runs 30..35, also late.
  EXPECT_EQ(result.metrics.completedLate(), 2u);
  EXPECT_EQ(result.metrics.droppedReactive(), 0u);
  EXPECT_EQ(result.metrics.completedOnTime(), 0u);
}

// --- Conservation & determinism --------------------------------------------------------------

class ConservationTest
    : public ::testing::TestWithParam<std::tuple<std::string, std::uint64_t>> {
};

TEST_P(ConservationTest, EveryTaskReachesExactlyOneTerminalState) {
  const auto& [heuristic, seed] = GetParam();
  const auto pet = hcs::workload::PetMatrix::specLike(seed);
  const auto petPtr =
      std::make_shared<const hcs::workload::PetMatrix>(pet);
  const auto model =
      hcs::workload::BoundExecutionModel::heterogeneous(petPtr);
  hcs::workload::ArrivalSpec arrival;
  arrival.span = 150.0;
  arrival.totalTasks = 300;
  const Workload wl = Workload::generate(pet, arrival, {}, seed);
  SimulationConfig config = pruned(heuristic);
  config.warmupMargin = 0;
  const TrialResult result = Simulation(model, wl, config).run();
  const auto& m = result.metrics;
  EXPECT_EQ(m.completedOnTime() + m.completedLate() + m.droppedReactive() +
                m.droppedProactive(),
            wl.size());
  EXPECT_GE(result.robustnessPercent, 0.0);
  EXPECT_LE(result.robustnessPercent, 100.0);
  EXPECT_GT(result.mappingEvents, wl.size() / 2);
  for (double u : result.machineUtilization) {
    EXPECT_GE(u, 0.0);
    EXPECT_LE(u, 1.0 + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    HeuristicsAndSeeds, ConservationTest,
    ::testing::Combine(::testing::Values("RR", "MET", "MCT", "KPB", "MM",
                                         "MSD", "MMU"),
                       ::testing::Values(1u, 2u, 3u)));

TEST(SimulationTest, DisabledPruningYieldsNoProactiveDropsOrDeferrals) {
  const auto pet = hcs::workload::PetMatrix::specLike(4);
  const auto petPtr = std::make_shared<const hcs::workload::PetMatrix>(pet);
  const auto model = hcs::workload::BoundExecutionModel::heterogeneous(petPtr);
  hcs::workload::ArrivalSpec arrival;
  arrival.span = 100.0;
  arrival.totalTasks = 200;
  const Workload wl = Workload::generate(pet, arrival, {}, 4);
  const TrialResult result = Simulation(model, wl, baseline("MM")).run();
  EXPECT_EQ(result.metrics.droppedProactive(), 0u);
  EXPECT_EQ(result.metrics.deferrals(), 0u);
  const auto& m = result.metrics;
  EXPECT_EQ(m.completedOnTime() + m.completedLate() + m.droppedReactive(),
            wl.size());
}

TEST(SimulationTest, RunsAreDeterministic) {
  const auto pet = hcs::workload::PetMatrix::specLike(5);
  const auto petPtr = std::make_shared<const hcs::workload::PetMatrix>(pet);
  const auto model = hcs::workload::BoundExecutionModel::heterogeneous(petPtr);
  hcs::workload::ArrivalSpec arrival;
  arrival.span = 120.0;
  arrival.totalTasks = 250;
  const Workload wl = Workload::generate(pet, arrival, {}, 5);
  const SimulationConfig config = pruned("MSD");
  const TrialResult a = Simulation(model, wl, config).run();
  const TrialResult b = Simulation(model, wl, config).run();
  EXPECT_DOUBLE_EQ(a.robustnessPercent, b.robustnessPercent);
  EXPECT_EQ(a.metrics.completedOnTime(), b.metrics.completedOnTime());
  EXPECT_EQ(a.metrics.droppedProactive(), b.metrics.droppedProactive());
  EXPECT_EQ(a.mappingEvents, b.mappingEvents);
}

TEST(SimulationTest, ExecutionSeedChangesOutcomesButNotConservation) {
  const auto pet = hcs::workload::PetMatrix::specLike(6);
  const auto petPtr = std::make_shared<const hcs::workload::PetMatrix>(pet);
  const auto model = hcs::workload::BoundExecutionModel::heterogeneous(petPtr);
  hcs::workload::ArrivalSpec arrival;
  arrival.span = 120.0;
  arrival.totalTasks = 250;
  const Workload wl = Workload::generate(pet, arrival, {}, 6);
  SimulationConfig config = pruned("MM");
  config.executionSeed = 1;
  const TrialResult a = Simulation(model, wl, config).run();
  config.executionSeed = 2;
  const TrialResult b = Simulation(model, wl, config).run();
  const auto total = [&](const TrialResult& r) {
    return r.metrics.completedOnTime() + r.metrics.completedLate() +
           r.metrics.droppedReactive() + r.metrics.droppedProactive();
  };
  EXPECT_EQ(total(a), wl.size());
  EXPECT_EQ(total(b), wl.size());
}

TEST(SimulationTest, RejectsTypeCountMismatch) {
  const FakeModel model = FakeModel::deterministic({{1.0}});
  const Workload wl = workloadOf({TaskSpec{1, 0.0, 5.0}}, 2);
  EXPECT_THROW(Simulation(model, wl, baseline("MCT")), std::invalid_argument);
}

// --- Custom heuristic plumbing ------------------------------------------------------

namespace {

/// Trivial batch heuristic: first unmapped task to the first open machine.
class FirstFit final : public hcs::heuristics::BatchHeuristic {
 public:
  std::string_view name() const override { return "FirstFit"; }
  std::vector<hcs::heuristics::Assignment> map(
      const hcs::heuristics::MappingContext& ctx,
      std::span<const hcs::sim::TaskId> batch) override {
    std::vector<hcs::heuristics::Assignment> out;
    std::vector<std::size_t> slots(
        static_cast<std::size_t>(ctx.numMachines()));
    for (int j = 0; j < ctx.numMachines(); ++j) {
      slots[static_cast<std::size_t>(j)] = ctx.freeSlots(j);
    }
    for (hcs::sim::TaskId task : batch) {
      for (int j = 0; j < ctx.numMachines(); ++j) {
        if (slots[static_cast<std::size_t>(j)] > 0) {
          out.push_back({task, j});
          slots[static_cast<std::size_t>(j)] -= 1;
          break;
        }
      }
    }
    return out;
  }
};

}  // namespace

TEST(SimulationTest, CustomBatchHeuristicRunsThroughTheScheduler) {
  const FakeModel model = FakeModel::deterministic({{2.0, 2.0}});
  const Workload wl = workloadOf(
      {TaskSpec{0, 0.0, 50.0}, TaskSpec{0, 0.0, 50.0}}, 1);
  SimulationConfig config;
  config.customBatchHeuristic = [] { return std::make_unique<FirstFit>(); };
  config.warmupMargin = 0;
  const TrialResult result = Simulation(model, wl, config).run();
  EXPECT_EQ(result.metrics.completedOnTime(), 2u);
}

TEST(SimulationTest, BothCustomFactoriesIsAnError) {
  SimulationConfig config;
  config.customBatchHeuristic = [] { return std::make_unique<FirstFit>(); };
  config.customImmediateHeuristic = [] {
    return hcs::heuristics::makeImmediate("RR");
  };
  EXPECT_THROW(hcs::core::allocationModeFor(config), std::invalid_argument);
}

TEST(SimulationTest, ExecutionSplitSeparatesUsefulFromWasted) {
  // Two 4-unit tasks on one machine; the second misses its deadline of 6.
  const FakeModel model = FakeModel::deterministic({{4.0}});
  const Workload wl = workloadOf(
      {TaskSpec{0, 0.0, 100.0}, TaskSpec{0, 0.0, 6.0}}, 1);
  const TrialResult result = Simulation(model, wl, baseline("MCT")).run();
  EXPECT_DOUBLE_EQ(result.metrics.usefulBusyTime(), 4.0);
  EXPECT_DOUBLE_EQ(result.metrics.wastedBusyTime(), 4.0);
  ASSERT_EQ(result.metrics.perMachineExecution().size(), 1u);
  EXPECT_DOUBLE_EQ(result.metrics.perMachineExecution()[0].useful, 4.0);
}

// --- Event tracing -------------------------------------------------------------------

TEST(TraceTest, RecordsFullLifecycleOfACompletedTask) {
  const FakeModel model = FakeModel::deterministic({{3.0}});
  const Workload wl = workloadOf({TaskSpec{0, 1.0, 10.0}}, 1);
  hcs::sim::TraceLog log;
  SimulationConfig config = baseline("MM");
  config.traceSink = log.sink();
  Simulation(model, wl, config).run();

  const auto events = log.forTask(0);
  ASSERT_EQ(events.size(), 4u);
  using K = hcs::sim::TraceEventKind;
  EXPECT_EQ(events[0].kind, K::Arrival);
  EXPECT_DOUBLE_EQ(events[0].time, 1.0);
  EXPECT_EQ(events[1].kind, K::Dispatched);
  EXPECT_EQ(events[2].kind, K::Started);
  EXPECT_EQ(events[2].machine, 0);
  EXPECT_EQ(events[3].kind, K::Completed);
  EXPECT_DOUBLE_EQ(events[3].time, 4.0);
}

TEST(TraceTest, RecordsDeferralsAndDrops) {
  // One machine runs a 30-unit task; a doomed task (deadline 12) is
  // deferred by the pruner and later dies reactively in the batch queue.
  const FakeModel model = FakeModel::deterministic({{30.0}, {5.0}});
  hcs::sim::TraceLog log;
  SimulationConfig config = pruned("MM");
  config.pruning.toggle = ToggleMode::NoDropping;
  config.traceSink = log.sink();
  const Workload wl = workloadOf(
      {TaskSpec{0, 0.0, 100.0}, TaskSpec{1, 1.0, 12.0}}, 2);
  Simulation(model, wl, config).run();

  using K = hcs::sim::TraceEventKind;
  EXPECT_FALSE(log.ofKind(K::Deferred).empty());
  ASSERT_EQ(log.ofKind(K::DroppedReactive).size(), 1u);
  EXPECT_EQ(log.ofKind(K::DroppedReactive)[0].task, 1);
  // The doomed task never reached a machine.
  for (const auto& e : log.forTask(1)) {
    EXPECT_NE(e.kind, K::Started);
  }
}

TEST(TraceTest, CsvExportHasHeaderAndOneRowPerEvent) {
  const FakeModel model = FakeModel::deterministic({{2.0}});
  const Workload wl = workloadOf({TaskSpec{0, 0.0, 10.0}}, 1);
  hcs::sim::TraceLog log;
  SimulationConfig config = baseline("MCT");
  config.traceSink = log.sink();
  Simulation(model, wl, config).run();

  std::ostringstream out;
  log.writeCsv(out);
  std::istringstream lines(out.str());
  std::string line;
  std::size_t rows = 0;
  while (std::getline(lines, line)) ++rows;
  EXPECT_EQ(rows, log.size() + 1);  // header + events
  EXPECT_EQ(out.str().rfind("time,kind,task,machine", 0), 0u);
}

TEST(TraceTest, NoSinkMeansNoTracing) {
  const FakeModel model = FakeModel::deterministic({{2.0}});
  const Workload wl = workloadOf({TaskSpec{0, 0.0, 10.0}}, 1);
  // Simply runs without a sink — exercising the null-sink fast path.
  const TrialResult result =
      Simulation(model, wl, baseline("MCT")).run();
  EXPECT_EQ(result.metrics.completedOnTime(), 1u);
}

// --- Full-matrix integration sweep ----------------------------------------------------

class IntegrationSweep
    : public ::testing::TestWithParam<
          std::tuple<std::string, hcs::workload::ArrivalPattern, bool>> {};

TEST_P(IntegrationSweep, InvariantsHoldAcrossTheConfigurationMatrix) {
  const auto& [heuristic, pattern, prune] = GetParam();
  const auto pet = hcs::workload::PetMatrix::specLike(99);
  const auto petPtr = std::make_shared<const hcs::workload::PetMatrix>(pet);
  const auto model = hcs::workload::BoundExecutionModel::heterogeneous(petPtr);
  hcs::workload::ArrivalSpec arrival;
  arrival.pattern = pattern;
  arrival.span = 150.0;
  arrival.totalTasks = 300;
  const Workload wl = Workload::generate(pet, arrival, {}, 99);

  SimulationConfig config = prune ? pruned(heuristic) : baseline(heuristic);
  hcs::sim::TraceLog log;
  config.traceSink = log.sink();
  const TrialResult result = Simulation(model, wl, config).run();

  // Conservation.
  const auto& m = result.metrics;
  EXPECT_EQ(m.completedOnTime() + m.completedLate() + m.droppedReactive() +
                m.droppedProactive(),
            wl.size());
  // Baselines never drop or defer.
  if (!prune) {
    EXPECT_EQ(m.droppedReactive() + m.droppedProactive(), 0u);
    EXPECT_EQ(m.deferrals(), 0u);
  }
  // Trace sanity: every task arrives exactly once; a task starts at most
  // once and only after being dispatched.
  using K = hcs::sim::TraceEventKind;
  EXPECT_EQ(log.ofKind(K::Arrival).size(), wl.size());
  for (std::size_t id = 0; id < wl.size(); ++id) {
    const auto events = log.forTask(static_cast<hcs::sim::TaskId>(id));
    int started = 0;
    bool dispatched = false;
    for (const auto& e : events) {
      if (e.kind == K::Dispatched) dispatched = true;
      if (e.kind == K::Started) {
        ++started;
        EXPECT_TRUE(dispatched);
      }
    }
    EXPECT_LE(started, 1);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, IntegrationSweep,
    ::testing::Combine(
        ::testing::Values("MCT", "KPB", "MM", "MSD", "MMU", "MaxMin",
                          "Sufferage"),
        ::testing::Values(hcs::workload::ArrivalPattern::Constant,
                          hcs::workload::ArrivalPattern::Spiky),
        ::testing::Bool()));

// --- Pruning improves robustness under oversubscription (the paper's thesis) ---

TEST(SimulationTest, PruningImprovesRobustnessWhenOversubscribed) {
  const auto pet = hcs::workload::PetMatrix::specLike(2019);
  const auto petPtr = std::make_shared<const hcs::workload::PetMatrix>(pet);
  const auto model = hcs::workload::BoundExecutionModel::heterogeneous(petPtr);
  hcs::workload::ArrivalSpec arrival;
  // Heavily oversubscribed: ~2x what 8 machines can serve.
  arrival.span = 400.0;
  arrival.totalTasks = 800;
  const Workload wl = Workload::generate(pet, arrival, {}, 7);

  const TrialResult without = Simulation(model, wl, baseline("MM")).run();
  const TrialResult with = Simulation(model, wl, pruned("MM")).run();
  EXPECT_GT(with.robustnessPercent, without.robustnessPercent);
}

}  // namespace
