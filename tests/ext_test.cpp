// Tests for the §VII future-work extensions: energy/cost accounting,
// priority values, and priority-aware pruning.

#include <gtest/gtest.h>

#include <memory>

#include "core/simulation.h"
#include "ext/energy.h"
#include "ext/priority.h"
#include "pruning/pruner.h"
#include "test_util.h"
#include "workload/pet_matrix.h"

namespace {

using namespace hcs;
using hcs::testutil::FakeModel;
using hcs::workload::TaskSpec;
using hcs::workload::Workload;

// --- Power / cost models ---------------------------------------------------------

TEST(PowerModelTest, UniformFillsEveryMachine) {
  const auto model = ext::PowerModel::uniform(3, 100.0, 30.0);
  EXPECT_EQ(model.busyPower.size(), 3u);
  EXPECT_DOUBLE_EQ(model.busyPower[2], 100.0);
  EXPECT_DOUBLE_EQ(model.idlePower[0], 30.0);
  EXPECT_THROW(ext::PowerModel::uniform(0, 100.0, 30.0),
               std::invalid_argument);
  EXPECT_THROW(ext::PowerModel::uniform(2, 10.0, 30.0),
               std::invalid_argument);  // busy < idle
}

TEST(PowerModelTest, ProportionalScalesBusyPower) {
  const auto model = ext::PowerModel::proportional({1.0, 2.0}, 50.0, 10.0);
  EXPECT_DOUBLE_EQ(model.busyPower[0], 50.0);
  EXPECT_DOUBLE_EQ(model.busyPower[1], 100.0);
  EXPECT_DOUBLE_EQ(model.idlePower[1], 10.0);
  EXPECT_THROW(ext::PowerModel::proportional({-1.0}, 50.0, 10.0),
               std::invalid_argument);
}

TEST(CostModelTest, UniformAndValidation) {
  const auto model = ext::CostModel::uniform(4, 2.5);
  EXPECT_EQ(model.pricePerTimeUnit.size(), 4u);
  EXPECT_THROW(ext::CostModel::uniform(0, 1.0), std::invalid_argument);
  EXPECT_THROW(ext::CostModel::uniform(1, -1.0), std::invalid_argument);
}

// --- Energy assessment -------------------------------------------------------------

TEST(EnergyTest, SplitsUsefulAndWastedEnergy) {
  // One machine, two tasks: the first (4 units) completes on time, the
  // second (4 units) finishes at 8 > deadline 6 — late, so wasted.
  const FakeModel model = FakeModel::deterministic({{4.0}});
  const Workload wl = Workload(
      {TaskSpec{0, 0.0, 100.0}, TaskSpec{0, 0.0, 6.0}}, 1);
  core::SimulationConfig config;
  config.heuristic = "MCT";
  config.pruning = pruning::PruningConfig::disabled();
  config.warmupMargin = 0;
  const core::TrialResult trial = core::Simulation(model, wl, config).run();

  ASSERT_DOUBLE_EQ(trial.makespan, 8.0);
  EXPECT_DOUBLE_EQ(trial.metrics.usefulBusyTime(), 4.0);
  EXPECT_DOUBLE_EQ(trial.metrics.wastedBusyTime(), 4.0);

  const auto power = ext::PowerModel::uniform(1, 100.0, 25.0);
  const auto cost = ext::CostModel::uniform(1, 2.0);
  const ext::EnergyCostReport report = ext::assess(trial, power, cost);
  EXPECT_DOUBLE_EQ(report.usefulEnergy, 400.0);
  EXPECT_DOUBLE_EQ(report.wastedEnergy, 400.0);
  EXPECT_DOUBLE_EQ(report.idleEnergy, 0.0);  // machine busy the whole trial
  EXPECT_DOUBLE_EQ(report.totalEnergy, 800.0);
  EXPECT_DOUBLE_EQ(report.wastedBusyFraction(), 0.5);
  EXPECT_DOUBLE_EQ(report.totalCost, 16.0);          // 8 units x 2.0
  EXPECT_DOUBLE_EQ(report.costPerOnTimeTask, 16.0);  // one on-time task
}

TEST(EnergyTest, IdleMachinesDrawIdlePower) {
  const FakeModel model = FakeModel::deterministic({{4.0, 4.0}});
  const Workload wl = Workload({TaskSpec{0, 0.0, 100.0}}, 1);
  core::SimulationConfig config;
  config.heuristic = "MCT";
  config.pruning = pruning::PruningConfig::disabled();
  config.warmupMargin = 0;
  const core::TrialResult trial = core::Simulation(model, wl, config).run();
  const auto power = ext::PowerModel::uniform(2, 100.0, 10.0);
  const auto cost = ext::CostModel::uniform(2, 1.0);
  const ext::EnergyCostReport report = ext::assess(trial, power, cost);
  // Machine 0 busy 0..4; machine 1 idle for the whole 4-unit makespan.
  EXPECT_DOUBLE_EQ(report.usefulEnergy, 400.0);
  EXPECT_DOUBLE_EQ(report.idleEnergy, 40.0);
  EXPECT_DOUBLE_EQ(report.totalCost, 8.0);
}

TEST(EnergyTest, RejectsUndersizedModels) {
  const FakeModel model = FakeModel::deterministic({{4.0, 4.0}});
  const Workload wl = Workload(
      {TaskSpec{0, 0.0, 100.0}, TaskSpec{0, 0.0, 100.0}}, 1);
  core::SimulationConfig config;
  config.heuristic = "MCT";
  config.warmupMargin = 0;
  const core::TrialResult trial = core::Simulation(model, wl, config).run();
  EXPECT_THROW(ext::assess(trial, ext::PowerModel::uniform(1, 100.0, 10.0),
                           ext::CostModel::uniform(2, 1.0)),
               std::invalid_argument);
}

TEST(EnergyTest, PruningReducesWastedEnergyShare) {
  // The §VII conjecture, as a regression test on a seeded oversubscribed
  // workload.
  const auto pet = std::make_shared<const workload::PetMatrix>(
      workload::PetMatrix::specLike(77));
  const auto cluster = workload::BoundExecutionModel::heterogeneous(pet);
  workload::ArrivalSpec arrival;
  arrival.span = 300.0;
  arrival.totalTasks = 700;
  arrival.numTaskTypes = pet->numTaskTypes();
  const Workload wl = Workload::generate(*pet, arrival, {}, 8);
  const auto power = ext::PowerModel::uniform(cluster.numMachines(), 100, 30);
  const auto cost = ext::CostModel::uniform(cluster.numMachines(), 1.0);

  core::SimulationConfig config;
  config.heuristic = "MM";
  config.warmupMargin = 0;
  config.pruning = pruning::PruningConfig::disabled();
  const auto bare =
      ext::assess(core::Simulation(cluster, wl, config).run(), power, cost);
  config.pruning = pruning::PruningConfig{};
  const auto pruned =
      ext::assess(core::Simulation(cluster, wl, config).run(), power, cost);
  EXPECT_LT(pruned.wastedBusyFraction(), bare.wastedBusyFraction());
  EXPECT_LT(pruned.costPerOnTimeTask, bare.costPerOnTimeTask);
}

// --- Priority values ----------------------------------------------------------------

TEST(PriorityTest, AssignValuesIsDeterministicAndInRange) {
  const auto pet = std::make_shared<const workload::PetMatrix>(
      workload::PetMatrix::specLike(78));
  workload::ArrivalSpec arrival;
  arrival.span = 100.0;
  arrival.totalTasks = 400;
  arrival.numTaskTypes = pet->numTaskTypes();
  const Workload base = Workload::generate(*pet, arrival, {}, 9);
  ext::ValueSpec spec;
  const Workload a = ext::assignValues(base, spec, 1);
  const Workload b = ext::assignValues(base, spec, 1);
  std::size_t premium = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.tasks()[i].value, b.tasks()[i].value);
    EXPECT_TRUE(a.tasks()[i].value == 1.0 ||
                a.tasks()[i].value == spec.highValue);
    if (a.tasks()[i].value == spec.highValue) ++premium;
  }
  // ~20% premium.
  EXPECT_NEAR(static_cast<double>(premium) / static_cast<double>(a.size()),
              spec.highFraction, 0.06);
  EXPECT_THROW(ext::assignValues(base, ext::ValueSpec{-1.0, 0.2}, 1),
               std::invalid_argument);
}

TEST(PriorityTest, WeightedRobustnessCountsValues) {
  sim::Metrics metrics(1);
  sim::Task cheap;
  cheap.id = 0;
  cheap.value = 1.0;
  cheap.status = sim::TaskStatus::DroppedReactive;
  sim::Task premium;
  premium.id = 1;
  premium.value = 4.0;
  premium.status = sim::TaskStatus::CompletedOnTime;
  metrics.recordTerminal(cheap);
  metrics.recordTerminal(premium);
  EXPECT_DOUBLE_EQ(metrics.robustnessPercent(), 50.0);
  EXPECT_DOUBLE_EQ(metrics.weightedRobustnessPercent(), 80.0);
}

// --- Priority-aware pruning bar -------------------------------------------------------

TEST(PriorityPruningTest, BarScalesWithValue) {
  pruning::PruningConfig config;
  config.priorityAware = true;
  config.priorityWeight = 1.0;
  config.priorityReference = 1.0;
  pruning::Pruner pruner(config, 1);
  EXPECT_DOUBLE_EQ(pruner.pruningBar(0, 1.0), 0.5);
  EXPECT_DOUBLE_EQ(pruner.pruningBar(0, 4.0), 0.125);
  EXPECT_DOUBLE_EQ(pruner.pruningBar(0, 0.5), 0.99);  // clamped
}

TEST(PriorityPruningTest, ReferenceRecentersTheBar) {
  pruning::PruningConfig config;
  config.priorityAware = true;
  config.priorityReference = 1.6;
  pruning::Pruner pruner(config, 1);
  EXPECT_DOUBLE_EQ(pruner.pruningBar(0, 1.6), 0.5);
  EXPECT_NEAR(pruner.pruningBar(0, 1.0), 0.8, 1e-12);
  EXPECT_NEAR(pruner.pruningBar(0, 4.0), 0.2, 1e-12);
}

TEST(PriorityPruningTest, DisabledIgnoresValue) {
  pruning::PruningConfig config;  // priorityAware = false
  pruning::Pruner pruner(config, 1);
  EXPECT_DOUBLE_EQ(pruner.pruningBar(0, 4.0), 0.5);
  EXPECT_DOUBLE_EQ(pruner.pruningBar(0, 0.1), 0.5);
}

TEST(PriorityPruningTest, DeferAndDropRespectValues) {
  pruning::PruningConfig config;
  config.priorityAware = true;
  config.toggle = pruning::ToggleMode::AlwaysDropping;
  pruning::Pruner pruner(config, 1);
  pruner.beginMappingEvent({});
  // chance 0.3: pruned at value 1 (bar 0.5), kept at value 4 (bar 0.125).
  EXPECT_TRUE(pruner.shouldDefer(0, 0.3, 1.0));
  EXPECT_FALSE(pruner.shouldDefer(0, 0.3, 4.0));
  EXPECT_TRUE(pruner.shouldDrop(0, 0.3, 1.0));
  EXPECT_FALSE(pruner.shouldDrop(0, 0.3, 4.0));
}

}  // namespace
